// bench_ablation_classifier_knobs — design-choice sweeps behind the
// reproduction's classifier model and lib·erate's own parameters:
//
//  1. classifier inspection-window size k: what the prepend probe reports
//     and whether the lead-with-tiny-pieces split still wins;
//  2. classifier matching mode (per-packet / in-order stream / full
//     reassembly): which technique families survive — the mechanism behind
//     the testbed vs T-Mobile vs GFC columns of Table 3;
//  3. blinding granularity: characterization cost vs matching-field
//     precision ("there is a trade-off between time and accuracy", §4.2).
#include <cstdio>

#include "bench/common.h"
#include "core/evaluation.h"
#include "trace/generators.h"

namespace {

using namespace liberate;
using namespace liberate::core;

std::unique_ptr<dpi::Environment> env_with(dpi::ClassifierConfig c) {
  auto base = dpi::make_testbed();
  dpi::MiddleboxConfig mc = base->dpi->config();
  mc.classifier = std::move(c);
  auto env = std::make_unique<dpi::Environment>();
  env->signal = dpi::Environment::Signal::kDirect;
  env->net.emplace<netsim::RouterHop>(netsim::ip_addr("10.9.2.1"));
  env->dpi = &env->net.emplace<dpi::DpiMiddlebox>(mc);
  env->net.emplace<netsim::RouterHop>(netsim::ip_addr("10.9.2.2"));
  env->hops_before_middlebox = 1;
  return env;
}

dpi::ClassifierConfig testbed_classifier() {
  return dpi::make_testbed()->dpi->config().classifier;
}

}  // namespace

int main() {
  bench::JsonReport json("ablation_classifier_knobs");
  auto app = trace::amazon_video_trace(48 * 1024);

  bench::print_header(
      "1. inspection-window sweep (per-packet matcher, window = k payload "
      "packets)");
  std::printf("%8s %18s %18s %14s\n", "k", "probe-detected k",
              "split evades?", "char. rounds");
  bench::print_rule(64);
  for (std::size_t k : {1u, 2u, 3u, 5u, 8u, 0u}) {
    auto c = testbed_classifier();
    c.packet_inspection_limit = k;
    auto env = env_with(c);
    ReplayRunner runner(*env);
    CharacterizationOptions copts;
    copts.probe_ttl = false;
    auto report = characterize_classifier(runner, app, copts);
    EvasionEvaluator evaluator(runner, report);
    TcpSegmentSplit split(false);
    auto outcome = evaluator.evaluate_one(split, app);
    std::printf("%8s %18s %18s %14d\n",
                k == 0 ? "inf" : std::to_string(k).c_str(),
                report.packet_limit
                    ? std::to_string(*report.packet_limit).c_str()
                    : (report.inspects_all_packets ? "all" : "?"),
                outcome.evaded ? "Y" : "x", report.replay_rounds);
    json.row("window_k=" + (k == 0 ? std::string("inf") : std::to_string(k)));
    json.field("detected_k",
               report.packet_limit
                   ? std::to_string(*report.packet_limit)
                   : std::string(report.inspects_all_packets ? "all" : "?"));
    json.field("split_evades", outcome.evaded);
    json.field("rounds", report.replay_rounds);
  }
  std::printf(
      "(splitting cuts every matching field across boundaries, so even an\n"
      "unlimited per-packet matcher never sees an intact keyword)\n");

  bench::print_header(
      "2. matching-mode sweep: which technique families survive");
  std::printf("%-26s %10s %10s %10s %12s\n", "classifier mode", "inert",
              "split", "reorder", "rst-flush");
  bench::print_rule(74);
  struct Mode {
    const char* name;
    dpi::ClassifierConfig::Mode mode;
    bool ooo;
  };
  for (const Mode& m :
       {Mode{"per-packet (testbed)", dpi::ClassifierConfig::Mode::kPerPacket,
             false},
        Mode{"stream, in-order (TMUS)", dpi::ClassifierConfig::Mode::kStream,
             false},
        Mode{"stream, full reasm (GFC)", dpi::ClassifierConfig::Mode::kStream,
             true}}) {
    auto c = testbed_classifier();
    c.mode = m.mode;
    c.stream_handles_out_of_order = m.ooo;
    c.packet_inspection_limit = m.ooo ? 0 : 5;
    c.flush_flow_on_rst = true;
    c.result_cache_after_rst = netsim::seconds(10);
    auto env = env_with(c);
    ReplayRunner runner(*env);
    CharacterizationOptions copts;
    copts.probe_ttl = true;
    auto report = characterize_classifier(runner, app, copts);
    EvasionEvaluator evaluator(runner, report);

    InertInsertion inert(InertVariant::kLowTtl);
    TcpSegmentSplit split(false);
    TcpSegmentSplit reorder(true);
    RstBeforeMatch rst;
    bool inert_e = evaluator.evaluate_one(inert, app).evaded;
    bool split_e = evaluator.evaluate_one(split, app).evaded;
    bool reorder_e = evaluator.evaluate_one(reorder, app).evaded;
    bool rst_e = evaluator.evaluate_one(rst, app).evaded;
    std::printf("%-26s %10s %10s %10s %12s\n", m.name, inert_e ? "Y" : "x",
                split_e ? "Y" : "x", reorder_e ? "Y" : "x", rst_e ? "Y" : "x");
    json.row(m.name);
    json.field("inert_evades", inert_e);
    json.field("split_evades", split_e);
    json.field("reorder_evades", reorder_e);
    json.field("rst_flush_evades", rst_e);
  }
  std::printf("(matches Table 3's testbed / T-Mobile / GFC columns: full\n"
              "reassembly is the only mode that resists splitting)\n");

  bench::print_header(
      "3. blinding granularity: rounds vs field precision (§4.2 trade-off)");
  std::printf("%14s %10s %18s %20s\n", "granularity", "rounds",
              "field bytes found", "keyword covered?");
  bench::print_rule(68);
  for (std::size_t g : {1u, 2u, 4u, 8u, 16u}) {
    auto env = env_with(testbed_classifier());
    ReplayRunner runner(*env);
    CharacterizationOptions copts;
    copts.blinding_granularity = g;
    copts.probe_ttl = false;
    copts.max_prepend_packets = 0;  // isolate the blinding cost
    auto report = characterize_classifier(runner, app, copts);
    std::size_t field_bytes = 0;
    bool covered = false;
    for (const auto& f : report.fields) {
      field_bytes += f.length;
      if (to_string(BytesView(f.content)).find("cloudfront") !=
          std::string::npos) {
        covered = true;
      }
    }
    std::printf("%14zu %10d %18zu %20s\n", g, report.replay_rounds,
                field_bytes, covered ? "Y" : "x");
    json.row("granularity=" + std::to_string(g));
    json.field("rounds", report.replay_rounds);
    json.field("field_bytes", static_cast<std::uint64_t>(field_bytes));
    json.field("keyword_covered", covered);
  }
  std::printf("(finer granularity tightens the reported fields at the cost "
              "of replay rounds;\nany granularity suffices for evasion since "
              "split points only need to land\ninside the field)\n");
  return 0;
}
