// bench_ablation_countermeasures — §4.3 "Evasion countermeasures": what each
// defensive upgrade costs lib·erate's suite.
//
// Starting from the (most permissive) testbed classifier, deploy the
// countermeasures the paper enumerates, cumulatively:
//   A  baseline testbed
//   B  + traffic normalizer (drop malformed inert packets, raise low TTLs,
//        reassemble fragments) — Kreibich-style `norm`
//   C  + full byte-stream reassembly, out-of-order handling, no packet
//        window, sequence validation
//   D  + durable state (no RST flush, no result timeout, no idle eviction)
// and count how many of the 26 techniques still evade. The paper's claim:
// every technique has a countermeasure ("intrinsic to unilateral evasion"),
// but each one costs the operator state/processing.
#include <cstdio>

#include "bench/common.h"
#include "core/evaluation.h"
#include "dpi/normalizer.h"
#include "trace/generators.h"
#include "util/strings.h"

namespace {

using namespace liberate;
using namespace liberate::core;

struct Tier {
  const char* name;
  bool normalizer;
  bool full_reassembly;
  bool durable_state;
};

std::unique_ptr<dpi::Environment> build_env(const Tier& tier) {
  auto base = dpi::make_testbed();
  dpi::MiddleboxConfig mc = base->dpi->config();

  if (tier.full_reassembly) {
    mc.classifier.mode = dpi::ClassifierConfig::Mode::kStream;
    mc.classifier.stream_handles_out_of_order = true;
    mc.classifier.packet_inspection_limit = 0;
    mc.classifier.validate_tcp_seq = true;
  }
  if (tier.durable_state) {
    mc.classifier.flush_flow_on_rst = false;
    mc.classifier.result_cache_after_rst.reset();
    mc.classifier.result_timeout.reset();
    mc.classifier.idle_eviction_threshold = nullptr;
  }

  auto env = std::make_unique<dpi::Environment>();
  env->name = std::string("testbed+") + tier.name;
  env->signal = dpi::Environment::Signal::kDirect;
  env->net.emplace<netsim::RouterHop>(netsim::ip_addr("10.9.1.1"));
  if (tier.normalizer) {
    dpi::NormalizerConfig nc;
    nc.drop_malformed = true;
    nc.ttl_floor = 16;
    nc.reassemble_fragments = true;
    env->net.emplace<dpi::NormalizerElement>(nc);
  }
  env->pre_middlebox_tap = &env->net.emplace<netsim::TapElement>("pre");
  env->dpi = &env->net.emplace<dpi::DpiMiddlebox>(mc);
  env->net.emplace<netsim::RouterHop>(netsim::ip_addr("10.9.1.2"));
  env->hops_before_middlebox = 1;
  env->total_router_hops = 2;
  return env;
}

}  // namespace

int main() {
  const Tier tiers[] = {
      {"baseline", false, false, false},
      {"normalizer", true, false, false},
      {"normalizer+reassembly", true, true, false},
      {"normalizer+reassembly+durable-state", true, true, true},
  };

  bench::print_header(
      "Ablation — §4.3 countermeasures vs the 26-technique suite (TCP video "
      "flow)");
  std::printf("%-40s %8s %8s  %s\n", "countermeasure tier", "evading",
              "CC-only", "surviving techniques");
  bench::print_rule(100);

  bench::JsonReport json("ablation_countermeasures");
  int previous = -1;
  for (const Tier& tier : tiers) {
    auto env = build_env(tier);
    ReplayRunner runner(*env);
    auto app = trace::amazon_video_trace(48 * 1024);
    CharacterizationOptions copts;
    copts.unique_port_per_round = true;
    auto report = characterize_classifier(runner, app, copts);
    EvasionEvaluator evaluator(runner, report);
    auto eval = evaluator.evaluate(app, /*run_pruned=*/true);

    int evading = 0;
    int cc_only = 0;
    std::string survivors;
    int listed = 0;
    for (const auto& o : eval.outcomes) {
      if (o.technique.find("udp") != std::string::npos) continue;
      if (o.evaded) {
        evading += 1;
        if (listed < 5) {
          if (!survivors.empty()) survivors += ", ";
          survivors += o.technique;
          listed += 1;
        }
      } else if (o.changed_classification) {
        cc_only += 1;
      }
    }
    if (evading > listed) {
      survivors += format(", +%d more", evading - listed);
    }
    std::printf("%-40s %8d %8d  %s\n", tier.name, evading, cc_only,
                survivors.c_str());
    json.row(tier.name);
    json.field("evading", evading);
    json.field("cc_only", cc_only);
    json.field("survivors", survivors);
    if (previous >= 0 && evading > previous) {
      std::printf("  (!) countermeasure tier did not reduce the surface\n");
    }
    previous = evading;
  }
  bench::print_rule(100);
  std::printf(
      "paper: \"all of our evasion techniques are susceptible to "
      "countermeasures...\nintrinsic to unilateral evasion\" — but each tier "
      "costs the operator packet\nnormalization, full reassembly, or "
      "long-lived per-flow state (\"engineering such\nsolutions will become "
      "only more costly as connection volumes continue to increase\").\n");
  return 0;
}
