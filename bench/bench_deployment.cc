// bench_deployment — the deployment control plane under load: fleet
// throughput (live flows/sec through per-shard evasion shims), the latency
// from a scripted classifier countermeasure to a confirmed re-deployment,
// and the headline cost claim — incremental re-characterization from the
// fingerprint cache at a fraction of a full analyze() (acceptance: < 25% of
// the full-analysis probe rounds).
#include <chrono>
#include <cstdio>

#include "bench/common.h"
#include "deploy/fleet.h"
#include "dpi/normalizer.h"
#include "trace/generators.h"

using namespace liberate;
using namespace liberate::deploy;

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

/// The soak shape from tests/deploy/fleet_test.cc, parameterized: a
/// normalizer reassembling IP fragments lands mid-run and kills the
/// deployed fragment-based technique without touching the rule set.
FleetOptions drift_options(std::size_t change_at_wave) {
  FleetOptions opts;
  opts.shards = 4;
  opts.flows_per_wave = 16;
  opts.waves = 8;
  opts.faults = netsim::FaultPolicy::reorder_heavy();
  opts.change_at_wave = change_at_wave;
  opts.classifier_change = [](dpi::Environment& env) {
    dpi::NormalizerConfig cfg;
    cfg.reassemble_fragments = true;
    env.net.emplace_at<dpi::NormalizerElement>(0, cfg);
  };
  return opts;
}

}  // namespace

int main() {
  bench::JsonReport json("deployment");
  const auto trace = trace::amazon_video_trace(8 * 1024);

  bench::print_header(
      "fleet throughput — live flows/sec through sharded evasion shims");
  std::printf("%-8s %8s %8s %10s %10s\n", "workers", "shards", "flows",
              "wall s", "flows/s");
  bench::print_rule(50);
  for (std::size_t workers : {std::size_t{0}, std::size_t{2}, std::size_t{4}}) {
    FleetOptions opts;
    opts.shards = 4;
    opts.flows_per_wave = 16;
    opts.waves = 4;
    opts.workers = workers;
    FleetEngine engine(opts);
    auto start = Clock::now();
    FleetReport report = engine.run(trace);
    double wall = seconds_since(start);
    double rate = static_cast<double>(report.totals.flows) / wall;
    std::printf("%-8zu %8zu %8llu %10.3f %10.1f\n", workers, opts.shards,
                static_cast<unsigned long long>(report.totals.flows), wall,
                rate);
    json.row("workers=" + std::to_string(workers));
    json.field("workers", static_cast<std::uint64_t>(workers));
    json.field("flows", report.totals.flows);
    json.field("wall_s", wall);
    json.field("flow_rate", rate);
  }
  bench::print_rule(50);
  std::printf(
      "Shards are isolated worlds, so throughput scales with cores; the\n"
      "deploy-time analysis (same for every worker count) is included.\n");

  bench::print_header(
      "drift detection -> incremental re-adaptation (scripted countermeasure)");
  {
    FleetEngine engine(drift_options(3));
    auto start = Clock::now();
    FleetReport report = engine.run(trace);
    double wall = seconds_since(start);

    std::size_t change_wave = 3;
    std::size_t redeploy_wave = 0;
    bool redeployed = false;
    // Replay rounds spent between the countermeasure landing and the
    // confirmed re-deployment (every readapt's ladder walk up to and
    // including the wave that re-deployed).
    int drift_to_redeploy_rounds = 0;
    for (const FleetWaveReport& w : report.waves) {
      if (w.readapt_path) {
        redeploy_wave = w.wave;
        redeployed = true;
        drift_to_redeploy_rounds += w.readapt_rounds;
      }
    }
    const std::size_t drift_latency_waves =
        redeployed ? redeploy_wave - change_wave : 0;
    const double incremental_pct =
        report.initial_analysis_rounds == 0
            ? 0.0
            : 100.0 * static_cast<double>(report.readapt_rounds) /
                  static_cast<double>(report.initial_analysis_rounds);

    std::printf("deployed technique      %s\n",
                report.technique_initial.c_str());
    std::printf("after re-adaptation     %s\n", report.technique_final.c_str());
    std::printf("countermeasure at wave  %zu\n", change_wave);
    std::printf("re-deployed at wave     %zu (%zu wave(s) later, %d rounds)\n",
                redeploy_wave, drift_latency_waves, drift_to_redeploy_rounds);
    std::printf("full analysis cost      %d rounds, %llu bytes\n",
                report.initial_analysis_rounds,
                static_cast<unsigned long long>(report.initial_analysis_bytes));
    std::printf("incremental cost        %d rounds, %llu bytes (%.1f%% of "
                "full)\n",
                report.readapt_rounds,
                static_cast<unsigned long long>(report.readapt_bytes),
                incremental_pct);
    std::printf("acceptance (<25%%)       %s\n",
                incremental_pct < 25.0 ? "PASS" : "FAIL");

    json.metric("technique_initial", report.technique_initial);
    json.metric("technique_final", report.technique_final);
    json.metric("readapts", report.readapts);
    json.metric("drift_wall_s", wall);
    json.metric("drift_to_redeploy_waves",
                static_cast<std::uint64_t>(drift_latency_waves));
    // Gated by scripts/bench_compare.py ("rounds" suffix, lower is better):
    // a regression here means drift recovery got more expensive.
    json.metric("drift_to_redeploy_rounds", drift_to_redeploy_rounds);
    json.metric("full_analysis_rounds", report.initial_analysis_rounds);
    json.metric("full_analysis_bytes", report.initial_analysis_bytes);
    json.metric("readapt_rounds", report.readapt_rounds);
    json.metric("readapt_bytes", report.readapt_bytes);
    json.metric("incremental_cost_fraction", incremental_pct / 100.0);
    json.metric("incremental_under_25pct", incremental_pct < 25.0);
    json.metric("faults_injected", report.faults_injected);
  }

  bench::print_header(
      "fingerprint cache — cold deploy vs warm deploy (analysis skipped)");
  {
    ClassifierFingerprintCache cache;
    FleetOptions opts;
    opts.shards = 2;
    opts.flows_per_wave = 8;
    opts.waves = 2;
    opts.cache = &cache;

    auto start = Clock::now();
    FleetReport cold = FleetEngine(opts).run(trace);
    double cold_wall = seconds_since(start);
    start = Clock::now();
    FleetReport warm = FleetEngine(opts).run(trace);
    double warm_wall = seconds_since(start);

    std::printf("%-8s %10s %10s %12s\n", "deploy", "rounds", "wall s",
                "from cache");
    bench::print_rule(44);
    std::printf("%-8s %10d %10.3f %12s\n", "cold", cold.initial_analysis_rounds,
                cold_wall, cold.initial_from_cache ? "yes" : "no");
    std::printf("%-8s %10d %10.3f %12s\n", "warm", warm.initial_analysis_rounds,
                warm_wall, warm.initial_from_cache ? "yes" : "no");
    bench::print_rule(44);
    json.metric("cold_deploy_rounds", cold.initial_analysis_rounds);
    json.metric("cold_deploy_wall_s", cold_wall);
    json.metric("warm_deploy_rounds", warm.initial_analysis_rounds);
    json.metric("warm_deploy_wall_s", warm_wall);
    json.metric("warm_from_cache", warm.initial_from_cache);
  }
  return 0;
}
