// bench_fig4_flushing — regenerates Figure 4: the minimum pause-before-match
// delay that evades the GFC, as a function of (virtual) time of day.
//
// Paper finding: during busy hours short delays (~40 s) evade because the
// censor's per-flow state is evicted under load; during quiet hours even
// 240 s (the longest interval tested) fails. The shape comes from the
// load-dependent idle-eviction model in dpi::gfc_eviction_threshold.
#include <cstdio>

#include "bench/common.h"
#include "core/evaluation.h"
#include "trace/generators.h"

namespace {

using namespace liberate;
using namespace liberate::core;

/// Smallest delay in `candidates` that evades at the environment's current
/// virtual hour; -1 if none does.
int min_successful_delay(dpi::Environment& env, ReplayRunner& runner,
                         const CharacterizationReport& report,
                         const trace::ApplicationTrace& app,
                         const std::vector<int>& candidates) {
  // One evaluator across the sweep: every attempt draws a fresh server port
  // (two blocked flows on one port would trip the GFC's endpoint
  // escalation and poison the remaining attempts).
  EvasionEvaluator evaluator(runner, report);
  PauseBeforeMatch pause;
  for (int delay : candidates) {
    evaluator.mutable_context().pause_seconds = delay;
    auto outcome = evaluator.evaluate_one(pause, app);
    if (outcome.evaded) return delay;
  }
  (void)env;
  return -1;
}

}  // namespace

int main() {
  const std::vector<int> kDelays = {10, 20, 40, 60, 90, 120, 180, 240};
  auto app = trace::economist_trace();

  bench::print_header(
      "Figure 4 — successful pause-before-match intervals over the day "
      "(GFC)\nper hour: minimum delay (s) that evades, or '-' if even 240 s "
      "fails");
  std::printf("%5s  %14s  %22s  %s\n", "hour", "min delay (s)",
              "eviction threshold (s)", "sparkline");
  bench::print_rule(78);

  bench::JsonReport json("fig4_flushing");
  int busy_hours_evadable = 0;
  int quiet_hours_blocked = 0;
  for (int hour = 0; hour < 24; hour += 2) {
    // Fresh environment pinned to this virtual hour; one characterization
    // reused for the delay sweep.
    auto env = dpi::make_gfc();
    env->loop.run_until(netsim::hours(static_cast<std::uint64_t>(hour)));
    ReplayRunner runner(*env);
    CharacterizationOptions copts;
    copts.unique_port_per_round = true;
    copts.probe_ttl = false;
    auto report = characterize_classifier(runner, app, copts);

    int delay = min_successful_delay(*env, runner, report, app, kDelays);
    double threshold = netsim::to_seconds(dpi::gfc_eviction_threshold(
        netsim::hours(static_cast<std::uint64_t>(hour))));

    int bars = delay < 0 ? 24 : delay / 10;
    std::string spark(static_cast<std::size_t>(std::min(bars, 24)), '#');
    if (delay < 0) {
      std::printf("%02d:00  %14s  %22.0f  %s (blocked all day part)\n", hour,
                  "-", threshold, spark.c_str());
    } else {
      std::printf("%02d:00  %14d  %22.0f  %s\n", hour, delay, threshold,
                  spark.c_str());
    }
    bool busy = hour >= 12 && hour <= 20;
    if (busy && delay > 0 && delay <= 180) busy_hours_evadable += 1;
    bool quiet = hour <= 8;
    if (quiet && delay < 0) quiet_hours_blocked += 1;

    char label[8];
    std::snprintf(label, sizeof(label), "%02d:00", hour);
    json.row(label);
    json.field("min_delay_s", delay);
    json.field("evadable", delay >= 0);
    json.field("eviction_threshold_s", threshold);
  }

  bench::print_rule(78);
  std::printf(
      "shape check: busy hours (12:00-20:00) evadable with <=180 s in %d/5 "
      "samples;\nquiet hours (00:00-08:00) with no successful delay in %d/5 "
      "samples.\npaper: \"traditional busy hours permit shorter delays ... "
      "during quiet hours\neven long delays do not work\" (Fig. 4).\n",
      busy_hours_evadable, quiet_hours_blocked);
  return 0;
}
