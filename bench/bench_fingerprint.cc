// bench_fingerprint — the ambiguity probe engine under measurement: probe
// catalog cost per classifier profile (wall time + flows for a full digest),
// pairwise digest discrimination across the shipped profiles, and the
// headline deployment claim — a swap to a previously-fingerprinted
// classifier re-deploys via the nearest-fingerprint match in FEWER replay
// rounds than the verified-cached ladder walk (docs/fingerprinting.md).
#include <chrono>
#include <cstdio>
#include <vector>

#include "bench/common.h"
#include "deploy/fleet.h"
#include "dpi/classifier.h"
#include "dpi/normalizer.h"
#include "dpi/profiles.h"
#include "fingerprint/probe.h"
#include "trace/generators.h"

using namespace liberate;
using namespace liberate::deploy;

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

/// The fleet soak of examples/fleet_deploy act 3: deployed on the testbed,
/// the live classifier is swapped mid-run to the nDPI-style engine behind a
/// reassembling normalizer, killing the deployed fragment technique.
FleetOptions swap_options(ClassifierFingerprintCache* cache,
                          bool ambiguity_probes) {
  FleetOptions opts;
  opts.shards = 4;
  opts.flows_per_wave = 8;
  opts.waves = 6;
  opts.faults = netsim::FaultPolicy::reorder_heavy();
  opts.cache = cache;
  opts.ambiguity_probes = ambiguity_probes;
  opts.ambiguity_max_distance = 8;
  opts.change_at_wave = 2;
  opts.classifier_change = [](dpi::Environment& env) {
    dpi::NormalizerConfig cfg;
    cfg.reassemble_fragments = true;
    env.net.emplace_at<dpi::NormalizerElement>(0, cfg);
    env.dpi->engine().set_config(dpi::ambiguity_profile_config("ndpi"));
  };
  return opts;
}

int readapt_rounds_of(const FleetReport& report, const char* path_name) {
  for (const FleetWaveReport& w : report.waves) {
    if (w.readapt_path &&
        std::string(readapt_path_name(*w.readapt_path)) == path_name) {
      return w.readapt_rounds;
    }
  }
  return -1;
}

}  // namespace

int main() {
  bench::JsonReport json("fingerprint");
  const auto trace = trace::amazon_video_trace(8 * 1024);

  bench::print_header(
      "ambiguity probe catalog — full digest cost per classifier profile");
  const std::vector<std::string> profiles = {
      "testbed", "suricata", "zeek", "ndpi", "conntrack-strict", "permissive"};
  std::printf("%-18s %8s %6s %12s  %s\n", "profile", "flows", "dims", "wall ms",
              "digest");
  bench::print_rule(76);
  std::vector<fingerprint::AmbiguityDigest> digests;
  double probe_wall_total = 0.0;
  for (const std::string& name : profiles) {
    auto start = Clock::now();
    fingerprint::AmbiguityProbeResult r = fingerprint::probe_environment(name);
    double wall = seconds_since(start);
    probe_wall_total += wall;
    std::printf("%-18s %8zu %6zu %12.2f  %s\n", name.c_str(), r.probe_flows,
                r.digest.dims.size(), wall * 1e3,
                r.digest.fingerprint_hex().c_str());
    json.row(name);
    json.field("probe_flows", static_cast<std::uint64_t>(r.probe_flows));
    json.field("dims", static_cast<std::uint64_t>(r.digest.dims.size()));
    json.field("wall_ms", wall * 1e3);
    json.field("digest", r.digest.fingerprint_hex());
    digests.push_back(std::move(r.digest));
  }
  bench::print_rule(76);
  std::size_t distinct_pairs = 0, pairs = 0, min_distance = SIZE_MAX;
  for (std::size_t i = 0; i < digests.size(); ++i) {
    for (std::size_t j = i + 1; j < digests.size(); ++j) {
      const std::size_t d = fingerprint::ambiguity_distance(digests[i],
                                                            digests[j]);
      ++pairs;
      if (d > 0) ++distinct_pairs;
      if (d < min_distance) min_distance = d;
    }
  }
  std::printf("pairwise discrimination  %zu/%zu pairs distinct (min distance "
              "%zu)\n",
              distinct_pairs, pairs, min_distance);
  json.metric("probe_wall_s", probe_wall_total);
  json.metric("profiles_probed", static_cast<std::uint64_t>(digests.size()));
  json.metric("distinct_pairs", static_cast<std::uint64_t>(distinct_pairs));
  json.metric("pairs", static_cast<std::uint64_t>(pairs));
  json.metric("all_pairs_distinct", distinct_pairs == pairs);

  bench::print_header(
      "nearest-fingerprint redeploy vs verified-cached ladder walk");
  {
    // Baseline: the same classifier swap handled WITHOUT ambiguity probes —
    // the readapt ladder falls through to field verification plus a walk of
    // the stale testbed ranking.
    ClassifierFingerprintCache cache_off;
    auto start = Clock::now();
    FleetReport off = FleetEngine(swap_options(&cache_off, false)).run(trace);
    double off_wall = seconds_since(start);
    const int verified_rounds = readapt_rounds_of(off, "verified-cached");

    // With probes: fingerprint the nDPI profile once, then the same swap
    // nearest-matches the cached entry at the fingerprint-verify stage.
    ClassifierFingerprintCache cache_on;
    FleetOptions learn = swap_options(&cache_on, true);
    learn.environment = "ndpi";
    learn.waves = 1;
    learn.change_at_wave = static_cast<std::size_t>(-1);
    learn.classifier_change = nullptr;
    FleetEngine(learn).run(trace);
    start = Clock::now();
    FleetReport on = FleetEngine(swap_options(&cache_on, true)).run(trace);
    double on_wall = seconds_since(start);
    const int fingerprint_rounds = readapt_rounds_of(on, "fingerprint-matched");

    std::printf("%-28s %8s %10s %12s\n", "path", "rounds", "wall s",
                "technique");
    bench::print_rule(64);
    std::printf("%-28s %8d %10.3f %12s\n", "verified-cached (no probes)",
                verified_rounds, off_wall, off.technique_final.c_str());
    std::printf("%-28s %8d %10.3f %12s\n", "fingerprint-matched",
                fingerprint_rounds, on_wall, on.technique_final.c_str());
    bench::print_rule(64);
    const bool fewer = fingerprint_rounds >= 0 && verified_rounds >= 0 &&
                       fingerprint_rounds < verified_rounds;
    std::printf("acceptance (fingerprint < verified)  %s\n",
                fewer ? "PASS" : "FAIL");

    json.metric("verified_cached_redeploy_rounds", verified_rounds);
    json.metric("fingerprint_matched_redeploy_rounds", fingerprint_rounds);
    json.metric("fingerprint_probe_flows", on.fingerprint_probe_flows);
    json.metric("fingerprint_digest", on.fingerprint_digest);
    json.metric("fingerprint_profile", on.fingerprint_profile);
    json.metric("fingerprint_source", on.fingerprint_source);
    json.metric("fingerprint_fewer_rounds", fewer);
  }
  return 0;
}
