// bench_fleet_1m — the million-flow soak. One process, shard-affine packet-
// level flows through every shim, a classifier change dropped mid-run, and
// snapshot-delta merging feeding the control plane. Reports:
//
//  * soak throughput (flows/sec) and the number of flows actually resident
//    in the shim flow tables when the run ended (the "concurrent" claim);
//  * snapshot-delta compression: counter entries shipped to the merge point
//    vs. what dense full-report merging would have shipped;
//  * the merge-equivalence matrix at reduced size: delta-merged reports must
//    be byte-identical to a full-merge baseline across {serial, 2, 8}
//    workers x {reference, compiled} match backends.
//
// Default is 1M flows (~8 GB-scale traffic through the simulated path); CI
// smoke runs `--flows 65536`. Mixed traffic: every 4th flow uploads the
// decoy (non-matching) payload instead of the classified one.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "bench/common.h"
#include "core/evasion/registry.h"
#include "deploy/fleet.h"
#include "dpi/match_program.h"
#include "dpi/normalizer.h"
#include "obs/snapshot.h"
#include "obs/timeseries.h"
#include "trace/generators.h"

using namespace liberate;
using namespace liberate::deploy;

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

void reset_obs() {
  obs::reset_all();
  obs::TimeSeriesStore::instance().reset();
}

FleetOptions packet_options(std::size_t shards, std::size_t flows_per_wave,
                            std::size_t waves) {
  FleetOptions opts;
  opts.shards = shards;
  opts.flows_per_wave = flows_per_wave;
  opts.waves = waves;
  opts.flow_mode = FlowMode::kPacketLevel;
  opts.packet_alt_payload = core::decoy_request_payload();
  opts.packet_alt_every = 4;  // every 4th flow is benign cross-traffic
  return opts;
}

/// The classifier change dropped mid-soak: the middlebox learns to
/// reassemble fragments, which defeats fragmentation-family techniques and
/// must push the fleet through its drift -> readapt walk at full scale.
void add_normalizer(dpi::Environment& env) {
  dpi::NormalizerConfig cfg;
  cfg.reassemble_fragments = true;
  env.net.emplace_at<dpi::NormalizerElement>(0, cfg);
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t flows_target = 1'000'000;
  std::size_t shards = 8;
  std::size_t waves = 8;
  std::size_t workers = 8;
  for (int i = 1; i + 1 < argc; i += 2) {
    if (std::strcmp(argv[i], "--flows") == 0) {
      flows_target = std::strtoull(argv[i + 1], nullptr, 10);
    } else if (std::strcmp(argv[i], "--shards") == 0) {
      shards = std::strtoull(argv[i + 1], nullptr, 10);
    } else if (std::strcmp(argv[i], "--waves") == 0) {
      waves = std::strtoull(argv[i + 1], nullptr, 10);
    } else if (std::strcmp(argv[i], "--workers") == 0) {
      workers = std::strtoull(argv[i + 1], nullptr, 10);
    }
  }
  const std::size_t flows_per_wave =
      std::max<std::size_t>(1, flows_target / (shards * waves));
  const std::size_t flows_total = flows_per_wave * shards * waves;

  bench::JsonReport json("fleet_1m");
  json.set_workers(static_cast<int>(workers));
  const auto trace = trace::amazon_video_trace(4 * 1024);

  bench::print_header("million-flow soak (packet-level, delta merge)");
  std::printf("flows=%zu shards=%zu waves=%zu workers=%zu\n", flows_total,
              shards, waves, workers);
  {
    reset_obs();
    FleetOptions opts = packet_options(shards, flows_per_wave, waves);
    opts.workers = workers;
    // Every flow stays resident: the cap is sized so the soak never evicts,
    // which is the point — a million live flow-table entries in one process.
    opts.max_flows_per_shim = flows_total / shards + flows_per_wave;
    opts.change_at_wave = waves / 2;
    opts.classifier_change = add_normalizer;

    FleetEngine engine(opts);
    const auto start = Clock::now();
    const FleetReport report = engine.run(trace);
    const double wall = seconds_since(start);

    const double fps = static_cast<double>(report.totals.flows) / wall;
    const double compression =
        report.delta_entries_shipped == 0
            ? 0.0
            : static_cast<double>(report.delta_entries_full) /
                  static_cast<double>(report.delta_entries_shipped);
    std::printf("  wall          %8.2f s\n", wall);
    std::printf("  flows/sec     %8.0f\n", fps);
    std::printf("  resident      %8llu (evicted %llu)\n",
                static_cast<unsigned long long>(report.flows_resident),
                static_cast<unsigned long long>(report.flows_evicted));
    std::printf("  incomplete    %8llu\n",
                static_cast<unsigned long long>(report.totals.incomplete));
    std::printf("  delta entries %8llu shipped / %llu full (%.2fx)\n",
                static_cast<unsigned long long>(report.delta_entries_shipped),
                static_cast<unsigned long long>(report.delta_entries_full),
                compression);
    std::printf("  readapts      %8llu (%s -> %s)\n",
                static_cast<unsigned long long>(report.readapts),
                report.technique_initial.c_str(),
                report.technique_final.c_str());

    json.metric("flows_total", static_cast<std::uint64_t>(report.totals.flows));
    json.metric("flows_resident", report.flows_resident);
    json.metric("flows_evicted", report.flows_evicted);
    json.metric("incomplete",
                static_cast<std::uint64_t>(report.totals.incomplete));
    json.metric("wall_s", wall);
    json.metric("flows_per_sec", fps);
    json.metric("delta_entries_shipped", report.delta_entries_shipped);
    json.metric("delta_entries_full", report.delta_entries_full);
    json.metric("delta_compression", compression);
    json.metric("readapts", report.readapts);
    json.metric("soak_ok", report.flows_resident ==
                               static_cast<std::uint64_t>(flows_total) &&
                               report.totals.incomplete == 0);
  }

  // Merge-equivalence matrix, reduced size so it stays cheap at any obs
  // level: a delta-merged report must be byte-identical to the dense
  // full-merge baseline for every worker count and match backend.
  bench::print_header("delta-merge equivalence matrix (reduced size)");
  {
    auto run_with = [&](MergeMode mode, std::size_t w) {
      reset_obs();
      FleetOptions opts = packet_options(4, 64, 3);
      opts.workers = w;
      opts.merge_mode = mode;
      opts.max_flows_per_shim = 1 << 14;
      FleetEngine engine(opts);
      const FleetReport r = engine.run(trace);
      return r.summary() + r.telemetry_json;
    };
    dpi::set_match_backend(dpi::MatchBackend::kCompiled);
    const std::string baseline = run_with(MergeMode::kFull, 0);
    bool identical = true;
    for (auto backend :
         {dpi::MatchBackend::kReference, dpi::MatchBackend::kCompiled}) {
      dpi::set_match_backend(backend);
      for (std::size_t w : {std::size_t{0}, std::size_t{2}, std::size_t{8}}) {
        const bool same = run_with(MergeMode::kDelta, w) == baseline;
        identical = identical && same;
        std::printf("  backend=%s workers=%zu  %s\n",
                    backend == dpi::MatchBackend::kReference ? "reference"
                                                             : "compiled ",
                    w, same ? "identical" : "DIVERGED");
      }
    }
    dpi::set_match_backend(dpi::MatchBackend::kCompiled);
    json.metric("merge_identical", identical);
    if (!identical) {
      json.write();
      return 1;
    }
  }
  return 0;
}
