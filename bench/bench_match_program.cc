// bench_match_program — the compiled rule matcher vs the reference linear
// matcher on a realistic rule set: one-time compile cost, then match
// throughput (evaluations/second) for both backends over HTTP-shaped
// contents, at working-set batch sizes 1 / 16 / 64 (a stream-mode classifier
// re-matches one growing buffer; a fleet shard cycles across many flows).
//
// Emits BENCH_match_program.json. The interesting numbers are the speedup
// column (compiled vs reference on identical inputs) and compile_us (paid
// once per profile per process thanks to the compile cache).
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/common.h"
#include "dpi/match_program.h"
#include "dpi/rules.h"
#include "dpi/stun_parser.h"
#include "util/rng.h"

using namespace liberate;
using namespace liberate::dpi;

namespace {

using Clock = std::chrono::steady_clock;

/// A rule set shaped like the reproduced classifiers (dpi/profiles.cc): a
/// mix of anchored HTTP matchers, host/SNI substrings, a port-constrained
/// rule, a STUN-guarded rule and a packet-index rule.
std::vector<MatchRule> realistic_rules() {
  std::vector<MatchRule> rules;
  auto add = [&rules](const char* name, std::vector<std::string> kws,
                      bool anchored) {
    MatchRule r;
    r.name = name;
    r.traffic_class = "video";
    r.keywords = std::move(kws);
    r.anchored = anchored;
    rules.push_back(std::move(r));
  };
  add("http-get-video", {"GET ", "videoplayback"}, true);
  add("host-googlevideo", {"Host: ", "googlevideo.com"}, false);
  add("host-youtube", {"Host: ", "youtube.com"}, false);
  add("host-netflix", {"Host: ", "nflxvideo.net"}, false);
  add("sni-youtube", {"youtube.com"}, false);
  add("sni-googlevideo", {"googlevideo.com"}, false);
  add("http-post", {"POST ", "upload"}, true);
  add("ua-dash", {"User-Agent:", "dash"}, false);
  rules[0].dst_port = 80;
  rules[6].dst_port = 80;
  MatchRule stun;
  stun.name = "skype-stun";
  stun.traffic_class = "voip";
  stun.udp = true;
  stun.stun_attribute = kStunAttrMsServiceQuality;
  stun.only_packet_index = 1;
  rules.push_back(std::move(stun));
  MatchRule first_pkt;
  first_pkt.name = "first-packet-tls";
  first_pkt.traffic_class = "video";
  first_pkt.keywords = {"\x16\x03\x01"};
  first_pkt.only_packet_index = 1;
  rules.push_back(std::move(first_pkt));
  return rules;
}

/// HTTP-request-shaped contents, ~1.4 KB like a full segment; one in four
/// carries a rule keyword so both hit and miss paths are measured.
std::vector<Bytes> make_contents(std::size_t count) {
  Rng rng(0xBE7C);
  std::vector<Bytes> contents;
  contents.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    std::string s;
    if (i % 4 == 0) {
      s = "GET /videoplayback?id=" + std::to_string(i) + " HTTP/1.1\r\n"
          "Host: r" + std::to_string(i % 8) + "---sn.googlevideo.com\r\n";
    } else {
      s = "GET /page/" + std::to_string(i) + " HTTP/1.1\r\n"
          "Host: example" + std::to_string(i % 8) + ".com\r\n";
    }
    s += "User-Agent: bench/1.0\r\nAccept: */*\r\n\r\n";
    Bytes b = to_bytes(s);
    Bytes junk = rng.bytes(1400 - b.size());
    // Printable filler: DPI content is mostly ASCII, and random bytes >=
    // 0x80 would land in the automaton's "other" column too often.
    for (std::uint8_t& c : junk) c = static_cast<std::uint8_t>(' ' + c % 94);
    b.insert(b.end(), junk.begin(), junk.end());
    contents.push_back(std::move(b));
  }
  return contents;
}

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

}  // namespace

int main() {
  bench::JsonReport json("match_program");
  const std::vector<MatchRule> rules = realistic_rules();

  // --- compile cost (paid once per profile per process) -------------------
  constexpr int kCompiles = 2000;
  auto t0 = Clock::now();
  std::size_t nodes = 0;
  for (int i = 0; i < kCompiles; ++i) {
    MatchProgram p = MatchProgram::compile(rules);
    nodes = p.node_count();
  }
  const double compile_us = seconds_since(t0) * 1e6 / kCompiles;

  bench::print_header("match program — compile cost and match throughput");
  std::printf("rules=%zu automaton_nodes=%zu compile=%.1f us\n", rules.size(),
              nodes, compile_us);
  json.metric("rules", static_cast<std::uint64_t>(rules.size()));
  json.metric("automaton_nodes", static_cast<std::uint64_t>(nodes));
  json.metric("compile_us", compile_us);

  // --- throughput: compiled vs reference, batch sizes 1/16/64 -------------
  const MatchProgram prog = MatchProgram::compile(rules);
  MatchProgram::Scratch scratch;
  RuleContext ctx;
  ctx.dst_port = 80;
  ctx.packet_index = 1;
  std::printf("%-8s %6s %14s %14s %9s\n", "batch", "hit%", "compiled/s",
              "reference/s", "speedup");

  for (std::size_t batch : {std::size_t{1}, std::size_t{16}, std::size_t{64}}) {
    const std::vector<Bytes> contents = make_contents(batch);
    const std::size_t evals = 200000;

    std::size_t hits = 0;
    t0 = Clock::now();
    for (std::size_t i = 0; i < evals; ++i) {
      BytesView content(contents[i % batch]);
      if (prog.run(rules, content, ctx, nullptr, scratch)) ++hits;
    }
    const double compiled_s = seconds_since(t0);

    std::size_t ref_hits = 0;
    t0 = Clock::now();
    for (std::size_t i = 0; i < evals; ++i) {
      BytesView content(contents[i % batch]);
      if (match_rules_reference(rules, content, ctx)) ++ref_hits;
    }
    const double reference_s = seconds_since(t0);

    if (hits != ref_hits) {
      std::printf("BACKEND DISAGREEMENT: compiled=%zu reference=%zu\n", hits,
                  ref_hits);
      return 1;
    }

    const double compiled_rate = static_cast<double>(evals) / compiled_s;
    const double reference_rate = static_cast<double>(evals) / reference_s;
    // batch=1 is the all-hit degenerate case: the reference matcher short-
    // circuits on rule 0's keywords at offset ~0 while the automaton walks
    // the whole content, so the reference wins there; the mixed batches are
    // the realistic (mostly-miss) workload. docs/match_program.md discusses.
    std::printf("%-8zu %5.0f%% %14.0f %14.0f %8.1fx\n", batch,
                100.0 * static_cast<double>(hits) / static_cast<double>(evals),
                compiled_rate, reference_rate,
                compiled_rate / reference_rate);
    json.row("batch_" + std::to_string(batch));
    json.field("batch", static_cast<std::uint64_t>(batch));
    json.field("compiled_matches_per_s", compiled_rate);
    json.field("reference_matches_per_s", reference_rate);
    json.field("speedup", compiled_rate / reference_rate);
    json.field("hit_fraction", static_cast<double>(hits) / evals);
  }
  return 0;
}
