// bench_micro_codec — google-benchmark micro suite for the substrate: packet
// codecs, checksums, classifier inspection throughput, and the evasion
// shim's per-packet cost. These bound the overhead lib·erate's deployment
// path adds per packet (§5.3: "negligible overhead").
#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>
#include <vector>

#include "core/evasion/registry.h"
#include "core/evasion/shim.h"
#include "dpi/classifier.h"
#include "dpi/profiles.h"
#include "netsim/checksum.h"
#include "netsim/packet.h"
#include "obs/obs.h"
#include "util/rng.h"

namespace {

using namespace liberate;
using namespace liberate::netsim;

Bytes sample_datagram(std::size_t payload_size) {
  Rng rng(7);
  Ipv4Header ip;
  ip.src = ip_addr("10.0.0.1");
  ip.dst = ip_addr("10.9.9.9");
  TcpHeader tcp;
  tcp.src_port = 40000;
  tcp.dst_port = 80;
  tcp.seq = 1000;
  tcp.flags = TcpFlags::kAck | TcpFlags::kPsh;
  return make_tcp_datagram(ip, tcp, rng.bytes(payload_size));
}

void BM_InternetChecksum(benchmark::State& state) {
  Rng rng(3);
  Bytes data = rng.bytes(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(internet_checksum(data));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_InternetChecksum)->Arg(64)->Arg(576)->Arg(1460);

void BM_SerializeTcpDatagram(benchmark::State& state) {
  Rng rng(5);
  Bytes payload = rng.bytes(static_cast<std::size_t>(state.range(0)));
  Ipv4Header ip;
  ip.src = 1;
  ip.dst = 2;
  TcpHeader tcp;
  tcp.flags = TcpFlags::kAck;
  for (auto _ : state) {
    benchmark::DoNotOptimize(make_tcp_datagram(ip, tcp, payload));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SerializeTcpDatagram)->Arg(64)->Arg(1400);

void BM_ParsePacket(benchmark::State& state) {
  Bytes dgram = sample_datagram(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(parse_packet(dgram));
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(dgram.size()));
}
BENCHMARK(BM_ParsePacket)->Arg(64)->Arg(1400);

void BM_AnomalyScan(benchmark::State& state) {
  Bytes dgram = sample_datagram(1400);
  auto pkt = parse_packet(dgram).value();
  for (auto _ : state) {
    benchmark::DoNotOptimize(anomalies_of(pkt));
  }
}
BENCHMARK(BM_AnomalyScan);

void BM_ClassifierInspectPerPacket(benchmark::State& state) {
  dpi::ClassifierConfig c;
  c.requires_syn = false;
  c.mode = dpi::ClassifierConfig::Mode::kPerPacket;
  dpi::MatchRule r;
  r.traffic_class = "video";
  r.keywords = {"Host: d25xi40x97liuc.cloudfront.net"};
  dpi::DpiEngine engine(c, {r});

  std::string req =
      "GET /x HTTP/1.1\r\nHost: www.plain-example.org\r\nUA: y\r\n\r\n";
  Bytes dgram = [&] {
    Ipv4Header ip;
    ip.src = 1;
    ip.dst = 2;
    TcpHeader tcp;
    tcp.src_port = 1;
    tcp.dst_port = 80;
    tcp.flags = TcpFlags::kAck;
    return make_tcp_datagram(ip, tcp, to_bytes(req));
  }();
  auto pkt = parse_packet(dgram).value();
  std::uint64_t now = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        engine.inspect(pkt, Direction::kClientToServer, now++));
  }
}
BENCHMARK(BM_ClassifierInspectPerPacket);

// The deployment-path cost: one data packet through the evasion shim with an
// inert-insertion technique armed (after the first packet it is pure
// matching + pass-through).
void BM_ShimPassThrough(benchmark::State& state) {
  struct NullPort : NetworkPort {
    EventLoop loop_;
    void send(Bytes d) override { benchmark::DoNotOptimize(d.data()); }
    EventLoop& loop() override { return loop_; }
  };
  NullPort port;
  core::TechniqueContext ctx;
  ctx.matching_snippets = {to_bytes("Host: d25xi40x97liuc.cloudfront.net")};
  ctx.decoy_payload = core::decoy_request_payload();
  core::InertInsertion inert(core::InertVariant::kLowTtl);
  core::EvasionShim shim(port, &inert, ctx);
  Bytes dgram = sample_datagram(1400);
  for (auto _ : state) {
    shim.send(Bytes(dgram));
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(dgram.size()));
}
BENCHMARK(BM_ShimPassThrough);

void BM_SplitPlanAndTransform(benchmark::State& state) {
  core::TechniqueContext ctx;
  ctx.matching_snippets = {to_bytes("needle-field")};
  Bytes payload(1200, 'a');
  std::string needle = "needle-field";
  std::copy(needle.begin(), needle.end(), payload.begin() + 600);
  Ipv4Header ip;
  ip.src = 1;
  ip.dst = 2;
  TcpHeader tcp;
  tcp.src_port = 1;
  tcp.dst_port = 80;
  tcp.flags = TcpFlags::kAck;
  Bytes dgram = make_tcp_datagram(ip, tcp, payload);
  auto pkt = parse_packet(dgram).value();
  core::TcpSegmentSplit split(false);
  for (auto _ : state) {
    core::FlowShimState st;
    benchmark::DoNotOptimize(
        split.transform_matching_packet(Bytes(dgram), pkt, st, ctx));
  }
}
BENCHMARK(BM_SplitPlanAndTransform);

// Cost of one hot-path obs macro at the build's configured level: a relaxed
// fetch_add on a per-worker cell when enabled, nothing when compiled out.
// Satellite guard for the "<5% regression at level=full" acceptance bound —
// compare BM_ShimPassThrough/BM_ClassifierInspectPerPacket across
// LIBERATE_OBS_LEVEL settings.
void BM_ObsCounterAdd(benchmark::State& state) {
  for (auto _ : state) {
    LIBERATE_COUNTER_ADD("bench.counter_add", 1);
  }
}
BENCHMARK(BM_ObsCounterAdd);

void BM_ObsHistogramObserve(benchmark::State& state) {
  double v = 0;
  for (auto _ : state) {
    LIBERATE_HISTOGRAM_OBSERVE("bench.histogram_observe",
                               ({0.001, 0.01, 0.1, 1, 10}), v);
    v += 0.25;
    if (v > 16) v = 0;
  }
}
BENCHMARK(BM_ObsHistogramObserve);

}  // namespace

// BENCHMARK_MAIN plus a default --benchmark_out: console output unchanged,
// and the same results land in BENCH_micro_codec.json like every other
// bench. An explicit --benchmark_out on the command line wins.
int main(int argc, char** argv) {
  std::vector<char*> args(argv, argv + argc);
  bool has_out = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]).rfind("--benchmark_out", 0) == 0) has_out = true;
  }
  std::string out_flag = "--benchmark_out=BENCH_micro_codec.json";
  std::string fmt_flag = "--benchmark_out_format=json";
  if (!has_out) {
    args.push_back(out_flag.data());
    args.push_back(fmt_flag.data());
  }
  int args_count = static_cast<int>(args.size());
  benchmark::Initialize(&args_count, args.data());
  if (benchmark::ReportUnrecognizedArguments(args_count, args.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  if (!has_out) std::printf("wrote BENCH_micro_codec.json\n");
  benchmark::Shutdown();
  return 0;
}
