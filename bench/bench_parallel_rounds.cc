// bench_parallel_rounds — throughput of the parallel round scheduler:
// rounds/second versus worker count on a fixed probe workload, plus the
// probe-cache hit rate when the same analysis repeats (the §4.2 "have the
// rules changed?" re-characterization path).
//
// Each round is a fully isolated simulation world, so scaling is embarrassing
// in principle; the measured curve shows how close the scheduler gets on the
// host it runs on (`hw` below reports the available cores — on a single-core
// host every worker count collapses to ~1x, which is expected).
#include <chrono>
#include <cstdio>
#include <thread>
#include <vector>

#include "bench/common.h"
#include "core/parallel_analysis.h"
#include "core/round_scheduler.h"
#include "obs/snapshot.h"
#include "trace/generators.h"

using namespace liberate;
using namespace liberate::core;

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

/// A fixed wave of independent rounds, shaped like a blinding search layer:
/// the same trace with one byte region zeroed per request.
std::vector<RoundRequest> probe_wave(const trace::ApplicationTrace& trace,
                                     std::size_t rounds) {
  std::vector<RoundRequest> wave;
  wave.reserve(rounds);
  for (std::size_t i = 0; i < rounds; ++i) {
    RoundRequest req;
    req.trace = trace;
    auto& payload = req.trace.messages[0].payload;
    payload[i % payload.size()] = 0;
    req.server_port_override = static_cast<std::uint16_t>(21000 + i);
    wave.push_back(std::move(req));
  }
  return wave;
}

}  // namespace

int main() {
  const unsigned cores = std::thread::hardware_concurrency();
  std::printf("hw: %u core(s) visible to this process\n", cores);
  bench::JsonReport json("parallel_rounds");
  json.metric("hw_cores", static_cast<std::uint64_t>(cores));

  bench::print_header(
      "parallel scheduler — rounds/sec vs worker count (64-round probe wave)");
  std::printf("%-8s %8s %10s %10s %8s\n", "workers", "rounds", "wall s",
              "rounds/s", "speedup");
  bench::print_rule(50);

  const auto trace = trace::amazon_video_trace(16 * 1024);
  constexpr std::size_t kRounds = 64;
  double serial_seconds = 0;
  for (std::size_t workers : {std::size_t{0}, std::size_t{1}, std::size_t{2},
                              std::size_t{4}, std::size_t{8}}) {
    WorldSpec spec;
    // Caching off: every round in the wave must actually replay, so the
    // numbers measure execution throughput, not cache luck.
    RoundScheduler scheduler(spec, {.workers = workers, .cache_capacity = 0});
    auto wave = probe_wave(trace, kRounds);
    auto start = Clock::now();
    auto results = scheduler.run_batch(wave);
    double wall = seconds_since(start);
    if (workers == 0) serial_seconds = wall;
    std::printf("%-8zu %8zu %10.3f %10.1f %7.2fx\n",
                workers, results.size(), wall,
                static_cast<double>(results.size()) / wall,
                serial_seconds / wall);
    json.row("workers=" + std::to_string(workers));
    json.field("workers", static_cast<std::uint64_t>(workers));
    json.field("rounds", static_cast<std::uint64_t>(results.size()));
    json.field("wall_s", wall);
    json.field("rounds_per_sec", static_cast<double>(results.size()) / wall);
    json.field("speedup", serial_seconds / wall);
  }
  bench::print_rule(50);
  std::printf(
      "workers=0 is the serial inline reference. Rounds are independent\n"
      "isolated worlds, so on an N-core host the expected speedup at N\n"
      "workers is ~Nx (acceptance: >=3x at 8 workers on >=4 cores).\n");

  bench::print_header(
      "probe cache — hit rate across repeated analysis (testbed pipeline)");
  {
    // Scope the obs snapshot to the cache experiment: the counters below
    // (core.rounds_executed / core.rounds_from_cache) should describe the
    // three analysis passes, not the throughput sweep above.
    obs::reset_all();
    WorldSpec spec;
    RoundScheduler scheduler(spec, {.workers = cores > 1 ? 4u : 0u,
                                    .cache_capacity = 8192});
    const auto app = trace::amazon_video_trace(8 * 1024);
    std::printf("%-22s %10s %10s %10s %9s\n", "pass", "submitted", "executed",
                "cached", "hit rate");
    bench::print_rule(66);
    double total_analysis_wall = 0;
    for (int pass = 1; pass <= 3; ++pass) {
      auto start = Clock::now();
      SessionReport report = analyze_parallel(scheduler, app);
      double wall = seconds_since(start);
      total_analysis_wall += wall;
      std::printf("analysis #%d %8.3fs %10llu %10llu %10llu %8.1f%%\n", pass,
                  wall,
                  static_cast<unsigned long long>(scheduler.rounds_submitted()),
                  static_cast<unsigned long long>(scheduler.rounds_executed()),
                  static_cast<unsigned long long>(scheduler.rounds_from_cache()),
                  100.0 * scheduler.cache().hit_rate());
      json.row("analysis_pass=" + std::to_string(pass));
      json.field("wall_s", wall);
      json.field("rounds_submitted", scheduler.rounds_submitted());
      json.field("rounds_executed", scheduler.rounds_executed());
      json.field("rounds_from_cache", scheduler.rounds_from_cache());
      json.field("cache_hit_rate", scheduler.cache().hit_rate());
      if (pass == 1) {
        std::printf("  (selected technique: %s, %d logical rounds)\n",
                    report.selected_technique.value_or("(none)").c_str(),
                    report.total_rounds);
        json.metric("selected_technique",
                    report.selected_technique.value_or("(none)"));
      }
    }
    bench::print_rule(66);

    // Fold the observability snapshot into the JSON artifact: the same
    // story (executed vs cached, per-round latency) as told by the obs
    // layer's own counters/histograms. At LIBERATE_OBS_LEVEL=0 these
    // counters are absent and the metrics below report zero.
    obs::Snapshot snap = obs::capture();
    std::uint64_t obs_executed = 0, obs_cached = 0;
    for (const auto& [name, total] : snap.metrics.counters) {
      if (name == "core.rounds_executed") obs_executed = total;
      if (name == "core.rounds_from_cache") obs_cached = total;
    }
    json.metric("obs_rounds_executed", obs_executed);
    json.metric("obs_rounds_from_cache", obs_cached);
    json.metric("obs_cache_hit_rate",
                obs_executed + obs_cached == 0
                    ? 0.0
                    : static_cast<double>(obs_cached) /
                          static_cast<double>(obs_executed + obs_cached));
    json.metric("obs_rounds_per_sec",
                total_analysis_wall == 0
                    ? 0.0
                    : static_cast<double>(obs_executed + obs_cached) /
                          total_analysis_wall);
    for (const auto& [name, h] : snap.metrics.histograms) {
      if (name != "core.round_virtual_seconds") continue;
      json.metric("round_virtual_seconds_count", h.count);
      json.metric("round_virtual_seconds_sum", h.sum);
    }
    std::printf(
        "pass 1 is all misses; passes 2-3 re-ask every probe and the cache\n"
        "answers them without replaying — executed stays flat while the hit\n"
        "rate climbs toward the repeat fraction of the workload.\n");
  }
  return 0;
}
