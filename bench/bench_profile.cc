// bench_profile — what continuous profiling costs. Three numbers:
//
//  * ns/op for the hot-path primitives: a full ScopedSpan enter/exit (span
//    ring + profiler cell), the same with the profiler disabled, and a bare
//    CostLedger::tick;
//  * fleet soak wall-clock with the profiler + cost ledger enabled vs
//    runtime-disabled (set_enabled(false)) — the acceptance target is <= 5%
//    soak overhead at obs level 2;
//  * profile-tree size after a soak (nodes, dropped — dropped must be 0).
//
// The measured soak is cold (deploy-time analysis + a forced mid-soak
// readapt), so every instrumented chokepoint is actually on the measured
// path; the work is identical on both sides of the A/B.
#include <chrono>
#include <cstdio>

#include "bench/common.h"
#include "deploy/fleet.h"
#include "dpi/normalizer.h"
#include "obs/prof/cost_ledger.h"
#include "obs/prof/profiler.h"
#include "obs/span.h"
#include "trace/generators.h"

using namespace liberate;
using namespace liberate::deploy;

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

FleetOptions soak_options() {
  FleetOptions opts;
  opts.shards = 4;
  opts.flows_per_wave = 8;
  opts.waves = 6;
  // A mid-soak countermeasure forces the readapt ladder, so the measured
  // soak covers every span/ledger chokepoint: analysis, waves, readapt.
  opts.change_at_wave = 3;
  opts.classifier_change = [](dpi::Environment& env) {
    dpi::NormalizerConfig cfg;
    cfg.reassemble_fragments = true;
    env.net.emplace_at<dpi::NormalizerElement>(0, cfg);
  };
  return opts;
}

/// Best-of-`reps` wall time for one cold-cache fleet soak (deploy-time
/// analysis included — identical work on both sides of the A/B, and the
/// part that actually drives the profiler hot path).
double soak_wall_s(const trace::ApplicationTrace& trace, int reps) {
  double best = 1e9;
  for (int r = 0; r < reps; ++r) {
    obs::prof::Profiler::instance().reset();
    obs::CostLedger::instance().reset();
    FleetEngine engine(soak_options());
    auto start = Clock::now();
    engine.run(trace);
    const double wall = seconds_since(start);
    if (wall < best) best = wall;
  }
  return best;
}

}  // namespace

int main() {
  bench::JsonReport json("profile");
  const auto trace = trace::amazon_video_trace(8 * 1024);

  bench::print_header("profiler hot-path primitives");
  {
    constexpr std::uint64_t kSpans = 200'000;
    std::uint64_t now = 0;
    obs::SimClockFn clock = [&now] { return ++now; };

    obs::prof::Profiler::instance().reset();
    obs::SpanLog::instance().reset();
    auto start = Clock::now();
    for (std::uint64_t i = 0; i < kSpans; ++i) {
      obs::ScopedSpan span("bench.span", clock);
    }
    const double span_ns = seconds_since(start) * 1e9 / kSpans;

    obs::prof::Profiler::instance().set_enabled(false);
    start = Clock::now();
    for (std::uint64_t i = 0; i < kSpans; ++i) {
      obs::ScopedSpan span("bench.span", clock);
    }
    const double span_off_ns = seconds_since(start) * 1e9 / kSpans;
    obs::prof::Profiler::instance().set_enabled(true);
    obs::prof::Profiler::instance().reset();
    obs::SpanLog::instance().reset();

    constexpr std::uint64_t kTicks = 2'000'000;
    obs::CostLedger::instance().reset();
    obs::CostLedger::PhaseScope scope(obs::CostPhase::kEvaluation);
    start = Clock::now();
    for (std::uint64_t i = 0; i < kTicks; ++i) {
      obs::CostLedger::instance().tick(obs::CostKind::kMatchOps, 1);
    }
    const double tick_ns = seconds_since(start) * 1e9 / kTicks;
    obs::CostLedger::instance().reset();

    std::printf("%-34s %10.1f ns/op\n", "ScopedSpan enter/exit", span_ns);
    std::printf("%-34s %10.1f ns/op\n", "ScopedSpan (profiler disabled)",
                span_off_ns);
    std::printf("%-34s %10.1f ns/op\n", "CostLedger::tick", tick_ns);
    json.metric("span_ns", span_ns);
    json.metric("span_profiler_off_ns", span_off_ns);
    json.metric("ledger_tick_ns", tick_ns);
  }

  bench::print_header(
      "fleet soak wall-clock — profiler + ledger enabled vs disabled "
      "(cold cache, readapt included)");
  {
    {
      // Throwaway run to warm allocators and code paths; not measured.
      FleetOptions warmup = soak_options();
      warmup.waves = 1;
      FleetEngine(warmup).run(trace);
    }

    obs::prof::Profiler::instance().set_enabled(false);
    obs::CostLedger::instance().set_enabled(false);
    const double wall_off = soak_wall_s(trace, 5);
    obs::prof::Profiler::instance().set_enabled(true);
    obs::CostLedger::instance().set_enabled(true);
    const double wall_on = soak_wall_s(trace, 5);
    const double overhead_pct = (wall_on - wall_off) / wall_off * 100.0;

    std::printf("%-12s %10s\n", "profiling", "wall s");
    bench::print_rule(24);
    std::printf("%-12s %10.3f\n", "off", wall_off);
    std::printf("%-12s %10.3f\n", "on", wall_on);
    bench::print_rule(24);
    std::printf("overhead                %+.2f%%\n", overhead_pct);
    std::printf("acceptance (<=5%%)       %s\n",
                overhead_pct <= 5.0 ? "PASS" : "FAIL");
    json.metric("soak_wall_off_s", wall_off);
    json.metric("soak_wall_on_s", wall_on);
    json.metric("overhead_pct", overhead_pct);
    json.metric("overhead_under_5pct", overhead_pct <= 5.0);

    const obs::prof::ProfileSnapshot snap =
        obs::prof::Profiler::instance().snapshot();
    std::printf("profile tree            %llu nodes, %llu dropped\n",
                static_cast<unsigned long long>(snap.node_count),
                static_cast<unsigned long long>(snap.dropped));
    json.metric("profile_nodes", snap.node_count);
    json.metric("profile_dropped", snap.dropped);
  }

  // Like bench_telemetry: report, don't gate — CI runs on noisy shared
  // hardware, so the PASS/FAIL line and the JSON carry the verdict.
  return 0;
}
