// bench_robustness — throughput of the robustness subsystem: seeded fuzz
// iterations per second (codec and stateful campaigns) and the overhead a
// FaultyLink adds to an isolated replay round. Emits BENCH_robustness.json.
#include <chrono>
#include <cstdio>

#include "bench/common.h"
#include "core/round_scheduler.h"
#include "fuzz/fuzz.h"
#include "trace/generators.h"

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

}  // namespace

int main() {
  using namespace liberate;
  bench::JsonReport report("robustness");
  report.set_workers(1);

  bench::print_header("Robustness: seeded fuzz throughput");
  {
    constexpr std::uint64_t kIters = 2000;
    auto t0 = Clock::now();
    fuzz::FuzzStats stats = fuzz::run_codec_campaign(1, kIters);
    double dt = seconds_since(t0);
    std::printf("codec campaign:    %6llu iters in %6.2fs  (%8.0f iters/s, "
                "%llu inputs, %llu roundtrips, %llu mismatches)\n",
                static_cast<unsigned long long>(stats.iterations), dt,
                static_cast<double>(stats.iterations) / dt,
                static_cast<unsigned long long>(stats.inputs),
                static_cast<unsigned long long>(stats.roundtrips_checked),
                static_cast<unsigned long long>(stats.roundtrip_mismatches));
    report.metric("codec_iters_per_s",
                  static_cast<double>(stats.iterations) / dt);
    report.metric("codec_roundtrip_mismatches", stats.roundtrip_mismatches);
  }
  {
    constexpr std::uint64_t kIters = 300;
    auto t0 = Clock::now();
    fuzz::FuzzStats stats = fuzz::run_stateful_campaign(1, kIters);
    double dt = seconds_since(t0);
    std::printf("stateful campaign: %6llu iters in %6.2fs  (%8.0f iters/s, "
                "%llu fragments, %llu segments, %llu stream bytes)\n",
                static_cast<unsigned long long>(stats.iterations), dt,
                static_cast<double>(stats.iterations) / dt,
                static_cast<unsigned long long>(stats.fragments_pushed),
                static_cast<unsigned long long>(stats.segments_injected),
                static_cast<unsigned long long>(stats.stream_bytes_delivered));
    report.metric("stateful_iters_per_s",
                  static_cast<double>(stats.iterations) / dt);
    report.metric("stateful_mismatches", stats.roundtrip_mismatches);
  }

  bench::print_header("Robustness: FaultyLink overhead per replay round");
  {
    core::RoundRequest req;
    req.trace = trace::amazon_video_trace(32 * 1024);
    core::WorldSpec clean;
    clean.seed = 5;
    core::WorldSpec faulted = clean;
    faulted.faults = netsim::FaultPolicy::reorder_heavy();

    constexpr int kRounds = 40;
    auto time_rounds = [&](const core::WorldSpec& spec) {
      auto t0 = Clock::now();
      for (int i = 0; i < kRounds; ++i) {
        (void)core::run_isolated_round(spec, req);
      }
      return seconds_since(t0) / kRounds;
    };
    double clean_s = time_rounds(clean);
    double faulted_s = time_rounds(faulted);
    std::printf("clean round:   %8.2f ms\n", clean_s * 1e3);
    std::printf("faulted round: %8.2f ms  (%.2fx)\n", faulted_s * 1e3,
                faulted_s / clean_s);
    report.metric("clean_round_ms", clean_s * 1e3);
    report.metric("faulted_round_ms", faulted_s * 1e3);
    report.metric("faulty_link_overhead_x", faulted_s / clean_s);
  }

  report.write();
  return 0;
}
