// bench_sec53_performance — §5.3 "Performance of lib·erate": end-to-end cost
// of the one-time analysis (characterization 10-35 minutes, 300 KB-140 MB)
// and the negligible runtime overhead of deployed evasion.
#include <cstdio>

#include "bench/common.h"
#include "core/liberate.h"
#include "trace/generators.h"

using namespace liberate;
using namespace liberate::core;

int main() {
  bench::print_header(
      "§5.3 — one-time analysis cost per environment (rounds / data / "
      "virtual time)");
  std::printf("%-10s %-22s %7s %10s %10s %-28s\n", "network", "application",
              "rounds", "data", "minutes", "selected technique");
  bench::print_rule(92);

  struct Case {
    const char* env;
    trace::ApplicationTrace trace;
  };
  std::vector<Case> cases;
  cases.push_back({"testbed", trace::amazon_video_trace(32 * 1024)});
  cases.push_back({"tmus", trace::amazon_video_trace(220 * 1024)});
  cases.push_back({"gfc", trace::economist_trace()});
  cases.push_back({"iran", trace::facebook_trace()});

  for (auto& c : cases) {
    auto env = dpi::make_environment(c.env);
    env->loop.run_until(netsim::hours(16));
    Liberate lib(*env);
    auto report = lib.analyze(c.trace);
    double mb = static_cast<double>(report.total_bytes) / 1e6;
    std::printf("%-10s %-22s %7d %9.2fM %10.1f %-28s\n", c.env,
                c.trace.app_name.c_str(), report.total_rounds, mb,
                report.total_virtual_minutes,
                report.selected_technique.value_or("(none)").c_str());
  }
  bench::print_rule(92);
  std::printf(
      "paper: characterization takes 10-35 minutes and 300 KB (web pages) to\n"
      "140 MB (video streams); it is a one-time cost per classifier rule and\n"
      "results can be shared between users.\n");

  bench::print_header("§5.3 — runtime overhead of deployed evasion");
  {
    auto env = dpi::make_testbed();
    Liberate lib(*env);
    auto app = trace::amazon_video_trace(64 * 1024);
    auto report = lib.analyze(app);
    // Per-flow cost of the selected technique.
    auto suite = build_full_suite();
    for (const auto& t : suite) {
      if (report.selected_technique && t->name() == *report.selected_technique) {
        TechniqueContext ctx;
        ctx.matching_snippets = report.characterization.snippets();
        ctx.decoy_payload = decoy_request_payload();
        Overhead o = t->overhead(ctx);
        double pct = 100.0 * static_cast<double>(o.extra_bytes) /
                     static_cast<double>(app.total_bytes());
        std::printf(
            "selected: %s -> +%zu packets, +%zu bytes (%0.3f%% of a %zu-KB\n"
            "session), +%.1f s  (paper: k < 5 extra packets; \"small\n"
            "fractions of a percent of data overhead\" on video)\n",
            t->name().c_str(), o.extra_packets, o.extra_bytes, pct,
            app.total_bytes() / 1024, o.extra_seconds);
      }
    }
  }
  return 0;
}
