// bench_sec53_performance — §5.3 "Performance of lib·erate": end-to-end cost
// of the one-time analysis (characterization 10-35 minutes, 300 KB-140 MB)
// and the negligible runtime overhead of deployed evasion.
#include <chrono>
#include <cstdio>
#include <thread>

#include "bench/common.h"
#include "core/liberate.h"
#include "core/parallel_analysis.h"
#include "core/round_scheduler.h"
#include "trace/generators.h"

using namespace liberate;
using namespace liberate::core;

int main() {
  bench::JsonReport json("sec53_performance");
  bench::print_header(
      "§5.3 — one-time analysis cost per environment (rounds / data / "
      "virtual time)");
  std::printf("%-10s %-22s %7s %10s %10s %-28s\n", "network", "application",
              "rounds", "data", "minutes", "selected technique");
  bench::print_rule(92);

  struct Case {
    const char* env;
    trace::ApplicationTrace trace;
  };
  std::vector<Case> cases;
  cases.push_back({"testbed", trace::amazon_video_trace(32 * 1024)});
  cases.push_back({"tmus", trace::amazon_video_trace(220 * 1024)});
  cases.push_back({"gfc", trace::economist_trace()});
  cases.push_back({"iran", trace::facebook_trace()});

  for (auto& c : cases) {
    auto env = dpi::make_environment(c.env);
    env->loop.run_until(netsim::hours(16));
    Liberate lib(*env);
    auto report = lib.analyze(c.trace);
    double mb = static_cast<double>(report.total_bytes) / 1e6;
    std::printf("%-10s %-22s %7d %9.2fM %10.1f %-28s\n", c.env,
                c.trace.app_name.c_str(), report.total_rounds, mb,
                report.total_virtual_minutes,
                report.selected_technique.value_or("(none)").c_str());
    json.row(c.env);
    json.field("application", c.trace.app_name);
    json.field("rounds", report.total_rounds);
    json.field("data_mb", mb);
    json.field("virtual_minutes", report.total_virtual_minutes);
    json.field("selected_technique",
               report.selected_technique.value_or("(none)"));
  }
  bench::print_rule(92);
  std::printf(
      "paper: characterization takes 10-35 minutes and 300 KB (web pages) to\n"
      "140 MB (video streams); it is a one-time cost per classifier rule and\n"
      "results can be shared between users.\n");

  bench::print_header("§5.3 — runtime overhead of deployed evasion");
  {
    auto env = dpi::make_testbed();
    Liberate lib(*env);
    auto app = trace::amazon_video_trace(64 * 1024);
    auto report = lib.analyze(app);
    // Per-flow cost of the selected technique.
    auto suite = build_full_suite();
    for (const auto& t : suite) {
      if (report.selected_technique && t->name() == *report.selected_technique) {
        TechniqueContext ctx;
        ctx.matching_snippets = report.characterization.snippets();
        ctx.decoy_payload = decoy_request_payload();
        Overhead o = t->overhead(ctx);
        double pct = 100.0 * static_cast<double>(o.extra_bytes) /
                     static_cast<double>(app.total_bytes());
        std::printf(
            "selected: %s -> +%zu packets, +%zu bytes (%0.3f%% of a %zu-KB\n"
            "session), +%.1f s  (paper: k < 5 extra packets; \"small\n"
            "fractions of a percent of data overhead\" on video)\n",
            t->name().c_str(), o.extra_packets, o.extra_bytes, pct,
            app.total_bytes() / 1024, o.extra_seconds);
        json.metric("deployed_technique", t->name());
        json.metric("deployed_extra_packets",
                    static_cast<std::uint64_t>(o.extra_packets));
        json.metric("deployed_extra_bytes",
                    static_cast<std::uint64_t>(o.extra_bytes));
        json.metric("deployed_overhead_pct", pct);
      }
    }
  }

  bench::print_header(
      "§5.3 — wall-clock analysis cost, sequential vs parallel scheduler");
  {
    // The one-time analysis above is virtual-time accounting; this measures
    // the real seconds the reproduction burns producing it, and how the
    // parallel scheduler + probe cache shrink that on multi-core hosts.
    const unsigned cores = std::thread::hardware_concurrency();
    const auto app = trace::amazon_video_trace(32 * 1024);
    using Clock = std::chrono::steady_clock;

    auto seq_start = Clock::now();
    auto env = dpi::make_testbed();
    Liberate lib(*env);
    auto seq_report = lib.analyze(app);
    double seq_wall =
        std::chrono::duration<double>(Clock::now() - seq_start).count();

    std::printf("%-26s %8s %10s %10s %9s\n", "mode", "rounds", "wall s",
                "speedup", "hit rate");
    bench::print_rule(68);
    std::printf("%-26s %8d %10.3f %10s %9s\n", "sequential (Liberate)",
                seq_report.total_rounds, seq_wall, "1.00x", "-");
    for (std::size_t workers : {std::size_t{0}, std::size_t{2}, std::size_t{8}}) {
      WorldSpec spec;
      RoundScheduler scheduler(spec, {.workers = workers});
      auto start = Clock::now();
      auto report = analyze_parallel(scheduler, app);
      double wall = std::chrono::duration<double>(Clock::now() - start).count();
      char mode[32];
      std::snprintf(mode, sizeof(mode), "parallel, %zu worker(s)", workers);
      std::printf("%-26s %8d %10.3f %9.2fx %8.1f%%\n", mode,
                  report.total_rounds, wall, seq_wall / wall,
                  100.0 * scheduler.cache().hit_rate());
      json.row(mode);
      json.field("rounds", report.total_rounds);
      json.field("wall_s", wall);
      json.field("speedup_vs_sequential", seq_wall / wall);
      json.field("cache_hit_rate", scheduler.cache().hit_rate());
    }
    bench::print_rule(68);
    std::printf(
        "%u core(s) visible; rounds are isolated worlds, so speedup tracks\n"
        "core count (see bench_parallel_rounds for the full scaling curve).\n",
        cores);
  }
  return 0;
}
