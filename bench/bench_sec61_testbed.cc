// bench_sec61_testbed — §6.1 "Testbed experiments": efficiency of classifier
// analysis for HTTP and UDP (Skype) traffic, the identified matching fields,
// and the classification-state timeouts.
#include <cstdio>

#include "bench/common.h"
#include "core/liberate.h"
#include "trace/generators.h"
#include "util/strings.h"

using namespace liberate;
using namespace liberate::core;

namespace {

bench::JsonReport json("sec61_testbed");

void report_characterization(const char* label,
                             const CharacterizationReport& r,
                             int paper_rounds) {
  std::printf("%-22s rounds=%3d (paper: <=%d)  bytes=%.0f KB  virtual=%0.1f "
              "min\n",
              label, r.replay_rounds, paper_rounds,
              static_cast<double>(r.bytes_replayed) / 1024.0,
              r.virtual_seconds / 60.0);
  json.row(label);
  json.field("rounds", r.replay_rounds);
  json.field("paper_rounds_max", paper_rounds);
  json.field("bytes_replayed", static_cast<std::uint64_t>(r.bytes_replayed));
  json.field("virtual_minutes", r.virtual_seconds / 60.0);
  json.field("fields_found", static_cast<std::uint64_t>(r.fields.size()));
  json.field("position_sensitive", r.position_sensitive);
  for (const auto& f : r.fields) {
    std::printf("    field: msg %zu off %zu  \"%s\"\n", f.message_index,
                f.offset, printable(BytesView(f.content), 48).c_str());
  }
  std::printf("    position-sensitive=%s packet-limit=%s inspects-all=%s "
              "port-sensitive=%s hops=%d\n",
              r.position_sensitive ? "yes" : "no",
              r.packet_limit ? std::to_string(*r.packet_limit).c_str() : "-",
              r.inspects_all_packets ? "yes" : "no",
              r.port_sensitive ? "yes" : "no", r.middlebox_hops.value_or(-1));
}

}  // namespace

int main() {
  bench::print_header("§6.1 Testbed — efficiency of classifier analysis");

  // HTTP (Amazon Prime Video over CloudFront).
  {
    auto env = dpi::make_testbed();
    ReplayRunner runner(*env);
    auto report =
        characterize_classifier(runner, trace::amazon_video_trace(32 * 1024));
    report_characterization("HTTP (video)", report, 70);
  }
  // HTTP (Spotify).
  {
    auto env = dpi::make_testbed();
    ReplayRunner runner(*env);
    auto report =
        characterize_classifier(runner, trace::spotify_trace(32 * 1024));
    report_characterization("HTTP (music)", report, 70);
  }
  // UDP (Skype / STUN).
  {
    auto env = dpi::make_testbed();
    ReplayRunner runner(*env);
    CharacterizationOptions opts;
    opts.probe_ttl = false;
    auto report =
        characterize_classifier(runner, trace::make_skype_trace({}), opts);
    report_characterization("UDP (Skype)", report, 115);
    std::printf(
        "    paper: matching fields in the first six packets; classifier\n"
        "    keyed on STUN attribute MS-SERVICE-QUALITY (0x8055) in the\n"
        "    FIRST client packet; prepending one 1-byte packet changes the\n"
        "    classification result.\n");
  }

  // Classification-state persistence: 120 s timeout, 10 s after a RST.
  bench::print_header("§6.1 Testbed — classification state retention");
  {
    auto env = dpi::make_testbed();
    ReplayRunner runner(*env);
    auto app = trace::amazon_video_trace(16 * 1024);
    auto baseline = runner.run(app);
    bool classified_now = runner.differentiated(baseline);
    // The replay round itself consumed a few seconds after the match, so
    // probe comfortably inside and outside the 120 s window.
    env->loop.run_for(netsim::seconds(100));
    bool still_at_100 =
        env->dpi->engine().active_class_now(baseline.flow, env->loop.now())
            .has_value();
    env->loop.run_for(netsim::seconds(30));
    bool still_at_130 =
        env->dpi->engine().active_class_now(baseline.flow, env->loop.now())
            .has_value();
    std::printf(
        "result active right after classification: %s\n"
        "result active ~+100 s: %s   ~+130 s: %s   (paper: 120 s timeout)\n",
        classified_now ? "yes" : "no", still_at_100 ? "yes" : "no",
        still_at_130 ? "yes" : "no");
    json.metric("state_active_at_100s", still_at_100);
    json.metric("state_active_at_130s", still_at_130);
  }
  {
    // RST reduces the retention to 10 s.
    auto env = dpi::make_testbed();
    ReplayRunner runner(*env);
    CharacterizationOptions copts;
    copts.probe_ttl = true;
    auto app = trace::amazon_video_trace(16 * 1024);
    auto report = characterize_classifier(runner, app, copts);
    EvasionEvaluator evaluator(runner, report);
    RstAfterMatch rst;
    auto outcome = evaluator.evaluate_one(rst, app);
    std::printf(
        "TTL-limited RST after match + 12 s pause evades: %s (paper: RST\n"
        "collapses the 120 s timeout to 10 s)\n",
        outcome.evaded ? "yes" : "no");
    json.metric("rst_flush_evades", outcome.evaded);
  }
  return 0;
}
