// bench_sec62_tmus — §6.2 "T-Mobile US": classifier analysis efficiency over
// the laggy/noisy zero-rating signal, identified matching fields (Host and
// SNI), and the headline throughput result: Amazon Prime Video replay at
// 1.48 Mbps average without lib·erate vs 4.1 Mbps with evasion (peak 4.8 vs
// 11.2 Mbps).
#include <cstdio>

#include "bench/common.h"
#include "core/liberate.h"
#include "trace/generators.h"
#include "util/strings.h"

using namespace liberate;
using namespace liberate::core;

namespace {

/// Replay a video trace with a time-varying base bandwidth (as a cellular
/// link has), with and without the selected technique, and report
/// average/peak application goodput. The base-rate schedule is deterministic.
struct ThroughputResult {
  double avg_mbps = 0;
  double peak_mbps = 0;
};

ThroughputResult measure_video(dpi::Environment& env, ReplayRunner& runner,
                               Technique* technique,
                               const TechniqueContext& ctx,
                               std::uint16_t port) {
  // A real radio link's capacity varies over time; replay the 10 MB-ish
  // session in segments under a deterministic rate schedule (Mbps) and
  // report mean and peak goodput across segments.
  ThroughputResult r;
  const double kRadioScheduleMbps[] = {3.0, 4.8, 7.0, 5.5, 2.5, 8.0};
  double total_mbps = 0;
  int n = 0;
  for (double rate : kRadioScheduleMbps) {
    if (env.base_bandwidth != nullptr) {
      env.base_bandwidth->set_rate(rate * 1e6 / 8);
    }
    auto t = trace::amazon_video_trace(384 * 1024);
    ReplayOptions opts;
    opts.technique = technique;
    opts.context = ctx;
    opts.server_port_override = port++;
    auto out = runner.run(t, opts);
    if (!out.completed) continue;
    total_mbps += out.goodput_mbps;
    r.peak_mbps = std::max(r.peak_mbps, out.goodput_mbps);
    n += 1;
  }
  if (env.base_bandwidth != nullptr) {
    env.base_bandwidth->set_rate(15e6 / 8);  // restore
  }
  r.avg_mbps = n > 0 ? total_mbps / n : 0;
  return r;
}

}  // namespace

int main() {
  bench::JsonReport json("sec62_tmus");
  auto env = dpi::make_tmus();
  ReplayRunner runner(*env);
  auto app = trace::amazon_video_trace(220 * 1024);

  bench::print_header("§6.2 T-Mobile US (Binge On) — classifier analysis");
  CharacterizationOptions copts;
  auto report = characterize_classifier(runner, app, copts);
  std::printf(
      "rounds=%d (paper: 80-95)  data=%.1f MB (paper: 18 MB; >=200 KB per\n"
      "round against the noisy usage counter)  virtual=%.0f min (paper: 23)\n",
      report.replay_rounds,
      static_cast<double>(report.bytes_replayed) / 1e6,
      report.virtual_seconds / 60.0);
  for (const auto& f : report.fields) {
    std::printf("  field: \"%s\"\n", printable(BytesView(f.content), 48).c_str());
  }
  std::printf("  position-sensitive=%s (paper: 1-byte prepend changes "
              "classification)\n  middlebox hops=%d (paper: TTL=3 suffices)\n",
              report.position_sensitive ? "yes" : "no",
              report.middlebox_hops.value_or(-1));
  json.metric("characterization_rounds", report.replay_rounds);
  json.metric("bytes_replayed",
              static_cast<std::uint64_t>(report.bytes_replayed));
  json.metric("virtual_minutes", report.virtual_seconds / 60.0);
  json.metric("middlebox_hops", report.middlebox_hops.value_or(-1));

  // YouTube via TLS SNI.
  {
    auto env2 = dpi::make_tmus();
    ReplayRunner runner2(*env2);
    CharacterizationOptions o2;
    o2.probe_ttl = false;
    auto r2 = characterize_classifier(runner2, trace::youtube_tls_trace(220 * 1024), o2);
    std::printf("YouTube/TLS: rounds=%d fields:\n", r2.replay_rounds);
    for (const auto& f : r2.fields) {
      std::printf("  field: \"%s\" (SNI bytes)\n",
                  printable(BytesView(f.content), 48).c_str());
    }
  }

  // UDP is not classified: QUIC evades Binge On entirely.
  {
    auto out = runner.run(trace::make_generic_udp_trace());
    std::printf("UDP flow zero-rated/classified: %s (paper: TMUS does not\n"
                "classify UDP; QUIC traffic is neither throttled nor "
                "zero-rated)\n",
                runner.differentiated(out) ? "yes" : "no");
  }

  bench::print_header(
      "§6.2 — Amazon Prime Video replay throughput, with/without lib.erate");
  EvasionEvaluator evaluator(runner, report);
  auto eval = evaluator.evaluate(app, false);
  std::string selected = eval.selected.value_or("(none)");
  Technique* chosen = nullptr;
  auto suite = build_full_suite();
  for (auto& t : suite) {
    if (t->name() == selected) chosen = t.get();
  }

  auto without = measure_video(*env, runner, nullptr, evaluator.context(), 31000);
  auto with = measure_video(*env, runner, chosen, evaluator.context(), 32000);
  std::printf("%-22s %10s %10s\n", "", "avg Mbps", "peak Mbps");
  std::printf("%-22s %10.2f %10.2f   (paper: 1.48 avg, 4.8 peak)\n",
              "without lib.erate", without.avg_mbps, without.peak_mbps);
  std::printf("%-22s %10.2f %10.2f   (paper: 4.1 avg, 11.2 peak)\n",
              "with lib.erate", with.avg_mbps, with.peak_mbps);
  std::printf("selected technique: %s\n", selected.c_str());
  double speedup = without.avg_mbps > 0 ? with.avg_mbps / without.avg_mbps : 0;
  std::printf("speedup: %.1fx (paper: ~2.8x)\n", speedup);
  json.metric("selected_technique", selected);
  json.row("without_liberate");
  json.field("avg_mbps", without.avg_mbps);
  json.field("peak_mbps", without.peak_mbps);
  json.row("with_liberate");
  json.field("avg_mbps", with.avg_mbps);
  json.field("peak_mbps", with.peak_mbps);
  json.metric("throughput_speedup", speedup);
  return 0;
}
