// bench_sec63_att — §6.3 "AT&T Stream Saver": analysis efficiency over the
// throughput signal, the matching fields (request keywords AND response
// Content-Type), the finding that no packet-level technique evades a
// TCP-terminating proxy, and the trivial port-change evasion.
#include <cstdio>

#include "bench/common.h"
#include "core/evaluation.h"
#include "trace/generators.h"
#include "util/strings.h"

using namespace liberate;
using namespace liberate::core;

int main() {
  bench::JsonReport json("sec63_att");
  auto env = dpi::make_att();
  ReplayRunner runner(*env);
  auto app = trace::nbcsports_trace(1536 * 1024);

  bench::print_header("§6.3 AT&T Stream Saver — classifier analysis");
  auto report = characterize_classifier(runner, app,
                                        {.probe_ttl = false});
  std::printf(
      "rounds=%d (paper: 71)  data=%.1f MB (paper: ~2 MB/round)\n"
      "virtual=%.0f min\n",
      report.replay_rounds, static_cast<double>(report.bytes_replayed) / 1e6,
      report.virtual_seconds / 60.0);
  bool response_side_field = false;
  for (const auto& f : report.fields) {
    std::printf("  field: msg %zu \"%s\"%s\n", f.message_index,
                printable(BytesView(f.content), 44).c_str(),
                f.message_index >= 1 ? "  <- server-to-client" : "");
    if (f.message_index >= 1) response_side_field = true;
  }
  std::printf(
      "server-to-client content used for classification: %s (paper: yes —\n"
      "the keyword Content-Type: video)\n",
      response_side_field ? "yes" : "no");
  std::printf("port-sensitive: %s (paper: only port 80 is classified)\n",
              report.port_sensitive ? "yes" : "no");
  json.metric("characterization_rounds", report.replay_rounds);
  json.metric("bytes_replayed",
              static_cast<std::uint64_t>(report.bytes_replayed));
  json.metric("response_side_field", response_side_field);
  json.metric("port_sensitive", report.port_sensitive);

  bench::print_header("§6.3 — evasion against a TCP-terminating proxy");
  EvasionEvaluator evaluator(runner, report);
  auto eval = evaluator.evaluate(app, /*run_pruned=*/true);
  int attempted = 0, worked = 0;
  for (const auto& o : eval.outcomes) {
    if (o.technique.find("udp") != std::string::npos) continue;
    attempted += 1;
    if (o.changed_classification) worked += 1;
  }
  std::printf(
      "packet-level techniques that changed classification: %d/%d (paper: "
      "0 —\n\"None of the evasion techniques is effective for Stream Saver\")\n",
      worked, attempted);

  // The straightforward alternative: a different server port.
  auto moved = app;
  moved.server_port = 8080;
  auto outcome = runner.run(moved);
  std::printf(
      "video on port 8080: completed=%s goodput=%.1f Mbps (paper: moving off\n"
      "port 80 \"makes evading it even more straightforward\")\n",
      outcome.completed ? "yes" : "no", outcome.goodput_mbps);
  std::printf("proxy sessions opened=%llu, throttled=%llu, crafted packets "
              "absorbed=%llu\n",
              static_cast<unsigned long long>(env->proxy->sessions_opened()),
              static_cast<unsigned long long>(env->proxy->throttled_sessions()),
              static_cast<unsigned long long>(
                  env->proxy->crafted_packets_absorbed()));
  json.metric("techniques_attempted", attempted);
  json.metric("techniques_changed_classification", worked);
  json.metric("port_8080_completed", outcome.completed);
  json.metric("port_8080_goodput_mbps", outcome.goodput_mbps);
  json.metric("proxy_sessions_opened", env->proxy->sessions_opened());
  json.metric("proxy_sessions_throttled", env->proxy->throttled_sessions());
  return 0;
}
