// bench_sec64_sprint — §6.4 "Sprint": the negative result. Replays across
// IPs/ports/applications, original and bit-inverted, find no pattern of
// differential treatment: no DPI or header-space policy in evidence.
#include <cstdio>

#include "bench/common.h"
#include "core/detection.h"
#include "trace/generators.h"

using namespace liberate;
using namespace liberate::core;

int main() {
  auto env = dpi::make_sprint();
  ReplayRunner runner(*env);

  bench::print_header(
      "§6.4 Sprint — testing for DPI / header-space differentiation");
  std::printf("%-28s %8s %12s %12s %9s\n", "replay", "port", "goodput Mbps",
              "usage(KB)", "blocked");
  bench::print_rule(76);

  struct Probe {
    const char* label;
    trace::ApplicationTrace trace;
  };
  std::vector<Probe> probes;
  probes.push_back({"video (original)", trace::amazon_video_trace(128 * 1024)});
  probes.push_back(
      {"video (bit-inverted)", trace::amazon_video_trace(128 * 1024).bit_inverted()});
  probes.push_back({"music streaming", trace::spotify_trace(96 * 1024)});
  probes.push_back({"video via TLS", trace::youtube_tls_trace(128 * 1024)});
  probes.push_back({"plain web", trace::plain_web_trace()});
  {
    auto moved = trace::amazon_video_trace(128 * 1024);
    moved.server_port = 8080;
    probes.push_back({"video on port 8080", std::move(moved)});
  }
  probes.push_back({"gaming-like UDP", trace::make_generic_udp_trace()});

  bench::JsonReport json("sec64_sprint");
  double min_tcp_goodput = 1e9, max_tcp_goodput = 0;
  bool any_differentiated = false;
  for (auto& p : probes) {
    auto outcome = runner.run(p.trace);
    any_differentiated |= runner.differentiated(outcome);
    json.row(p.label);
    json.field("port", static_cast<std::uint64_t>(p.trace.server_port));
    json.field("goodput_mbps", outcome.goodput_mbps);
    json.field("usage_kb", static_cast<double>(outcome.usage_delta) / 1024.0);
    json.field("blocked", outcome.blocked);
    if (p.trace.transport == trace::Transport::kTcp &&
        p.trace.total_bytes() > 64 * 1024 && outcome.goodput_mbps > 0) {
      min_tcp_goodput = std::min(min_tcp_goodput, outcome.goodput_mbps);
      max_tcp_goodput = std::max(max_tcp_goodput, outcome.goodput_mbps);
    }
    std::printf("%-28s %8u %12.2f %12.1f %9s\n", p.label,
                p.trace.server_port, outcome.goodput_mbps,
                static_cast<double>(outcome.usage_delta) / 1024.0,
                outcome.blocked ? "yes" : "no");
  }
  bench::print_rule(76);
  std::printf(
      "differential treatment detected: %s (paper: \"We found no pattern to\n"
      "which flows received relatively more or less bandwidth\")\n",
      any_differentiated ? "YES (unexpected)" : "no");
  if (max_tcp_goodput > 0) {
    std::printf("bulk-TCP goodput spread: %.2f-%.2f Mbps (ratio %.2fx)\n",
                min_tcp_goodput, max_tcp_goodput,
                max_tcp_goodput / min_tcp_goodput);
    json.metric("tcp_goodput_spread_ratio",
                max_tcp_goodput / min_tcp_goodput);
  }
  json.metric("any_differentiated", any_differentiated);
  return 0;
}
