// bench_sec65_gfc — §6.5 "The Great Firewall of China": analysis efficiency
// over the blocking signal, the GET+hostname matching fields, the RST burst,
// the server:port escalation after two classified replays, UDP passing
// unclassified, and the RST-before vs RST-after asymmetry.
#include <cstdio>

#include "bench/common.h"
#include "core/evaluation.h"
#include "trace/generators.h"
#include "util/strings.h"

using namespace liberate;
using namespace liberate::core;

int main() {
  bench::JsonReport json("sec65_gfc");
  auto env = dpi::make_gfc();
  env->loop.run_until(netsim::hours(16));
  ReplayRunner runner(*env);
  auto app = trace::economist_trace();

  bench::print_header("§6.5 Great Firewall of China — blocking signal");
  {
    auto outcome = runner.run(app);
    std::printf(
        "economist.com over HTTP: blocked=%s rsts-at-client=%llu (paper:\n"
        "blocked with 3-5 RSTs)\n",
        outcome.blocked ? "yes" : "no",
        static_cast<unsigned long long>(outcome.rsts_at_client));
    json.metric("http_blocked", outcome.blocked);
    json.metric("rsts_at_client",
                static_cast<std::uint64_t>(outcome.rsts_at_client));
  }

  bench::print_header("§6.5 — classifier analysis");
  CharacterizationOptions copts;
  copts.unique_port_per_round = true;  // fresh ports per replay (see below)
  auto report = characterize_classifier(runner, app, copts);
  std::printf(
      "rounds=%d (paper: 86 replays x 4 KB, <15 min, <400 KB)\n"
      "data=%.0f KB  virtual=%.1f min\n",
      report.replay_rounds, static_cast<double>(report.bytes_replayed) / 1024,
      report.virtual_seconds / 60.0);
  for (const auto& f : report.fields) {
    std::printf("  field: \"%s\"\n",
                printable(BytesView(f.content), 44).c_str());
  }
  std::printf(
      "position-sensitive=%s (paper: 1-byte dummy prepend evades)\n"
      "middlebox hops=%d (paper: TTL of 10)\nport-sensitive=%s (paper: no — "
      "any port is censored)\n",
      report.position_sensitive ? "yes" : "no",
      report.middlebox_hops.value_or(-1),
      report.port_sensitive ? "yes" : "no");
  json.metric("characterization_rounds", report.replay_rounds);
  json.metric("bytes_replayed",
              static_cast<std::uint64_t>(report.bytes_replayed));
  json.metric("virtual_minutes", report.virtual_seconds / 60.0);
  json.metric("position_sensitive", report.position_sensitive);
  json.metric("middlebox_hops", report.middlebox_hops.value_or(-1));

  bench::print_header("§6.5 — endpoint escalation after two classified flows");
  {
    auto env2 = dpi::make_gfc();
    ReplayRunner runner2(*env2);
    auto t = trace::economist_trace();
    runner2.run(t);
    runner2.run(t);
    auto innocuous = trace::plain_web_trace();
    innocuous.server_port = t.server_port;
    auto third = runner2.run(innocuous);
    std::printf(
        "after 2 blocked replays, innocuous content to the same server:port\n"
        "blocked=%s (paper: \"the GFC blocks all traffic toward a server...\n"
        "after it blocks two replays for that server and port\")\n",
        third.blocked ? "yes" : "no");
    json.metric("endpoint_escalation", third.blocked);
  }

  bench::print_header("§6.5 — UDP is not classified");
  {
    auto out = runner.run(trace::make_generic_udp_trace());
    std::printf(
        "UDP flow blocked=%s completed=%s (paper: QUIC would let users view\n"
        "otherwise censored content)\n",
        out.blocked ? "yes" : "no", out.completed ? "yes" : "no");
  }

  bench::print_header("§6.5 — RST flush asymmetry and checksum validation");
  EvasionEvaluator evaluator(runner, report);
  {
    RstBeforeMatch before;
    RstAfterMatch after;
    auto b = evaluator.evaluate_one(before, app);
    auto a = evaluator.evaluate_one(after, app);
    std::printf(
        "TTL-limited RST before match evades: %s (paper: yes)\n"
        "TTL-limited RST after match evades:  %s (paper: no — classification\n"
        "already triggered blocking)\n",
        b.evaded ? "yes" : "no", a.changed_classification ? "yes" : "no");
    json.metric("rst_before_evades", b.evaded);
    json.metric("rst_after_changes_classification", a.changed_classification);
  }
  {
    InertInsertion cks(InertVariant::kWrongTcpChecksum);
    InertInsertion noack(InertVariant::kTcpNoAckFlag);
    InertInsertion ttl(InertVariant::kLowTtl);
    auto c = evaluator.evaluate_one(cks, app);
    auto n = evaluator.evaluate_one(noack, app);
    auto t = evaluator.evaluate_one(ttl, app);
    std::printf(
        "wrong-TCP-checksum decoy changes classification: %s, reaches server\n"
        "  (checksum repaired in path, note 4): %s   (paper: yes / yes)\n"
        "no-ACK decoy changes classification: %s (paper: yes)\n"
        "TTL-limited decoy evades: %s (paper: yes)\n",
        c.changed_classification ? "yes" : "no",
        c.crafted_reached_server ? "yes" : "no",
        n.changed_classification ? "yes" : "no", t.evaded ? "yes" : "no");
  }
  {
    TcpSegmentSplit reorder(true);
    auto r = evaluator.evaluate_one(reorder, app);
    std::printf(
        "segment reordering evades: %s (paper: no — the GFC reassembles)\n",
        r.changed_classification ? "yes" : "no");
  }
  return 0;
}
