// bench_sec66_iran — §6.6 "Iran": analysis efficiency over the 403+RST
// signal, the port-80-only + inspect-every-packet classifier, the
// misclassification footnote (an inert packet carrying blocked content gets
// the flow blocked), per-packet matching beaten by splitting, and fragments
// dying in the path.
#include <cstdio>

#include "bench/common.h"
#include "core/evaluation.h"
#include "trace/generators.h"
#include "util/strings.h"

using namespace liberate;
using namespace liberate::core;

int main() {
  bench::JsonReport json("sec66_iran");
  auto env = dpi::make_iran();
  ReplayRunner runner(*env);
  auto app = trace::facebook_trace();

  bench::print_header("§6.6 Iran — blocking signal");
  {
    auto out = runner.run(app);
    std::printf(
        "facebook.com over HTTP: blocked=%s got-403=%s rsts=%llu (paper:\n"
        "\"HTTP/1.1 403 Forbidden\" plus two RST packets)\n",
        out.blocked ? "yes" : "no", out.got_403 ? "yes" : "no",
        static_cast<unsigned long long>(out.rsts_at_client));
    json.metric("http_blocked", out.blocked);
    json.metric("got_403", out.got_403);
    json.metric("rsts_at_client",
                static_cast<std::uint64_t>(out.rsts_at_client));
  }

  bench::print_header("§6.6 — classifier analysis");
  auto report = characterize_classifier(runner, app);
  std::printf(
      "rounds=%d (paper: 75 replays, ~10 min, 300 KB)  data=%.0f KB\n"
      "virtual=%.1f min\n",
      report.replay_rounds,
      static_cast<double>(report.bytes_replayed) / 1024.0,
      report.virtual_seconds / 60.0);
  for (const auto& f : report.fields) {
    std::printf("  field: \"%s\"\n",
                printable(BytesView(f.content), 44).c_str());
  }
  std::printf(
      "inspects-every-packet=%s (paper: yes — 1,000 prepended packets made\n"
      "no difference)\nport-sensitive=%s (paper: yes — port 8080 is not "
      "blocked)\nmiddlebox hops=%d (paper: eight hops away)\n",
      report.inspects_all_packets ? "yes" : "no",
      report.port_sensitive ? "yes" : "no", report.middlebox_hops.value_or(-1));
  json.metric("characterization_rounds", report.replay_rounds);
  json.metric("bytes_replayed",
              static_cast<std::uint64_t>(report.bytes_replayed));
  json.metric("inspects_all_packets", report.inspects_all_packets);
  json.metric("port_sensitive", report.port_sensitive);
  json.metric("middlebox_hops", report.middlebox_hops.value_or(-1));

  bench::print_header(
      "§6.6 — misclassification: inert packet WITH blocked content");
  {
    // A flow with entirely innocuous content, preceded by a TTL-limited
    // inert packet whose payload contains the censored request: Iran
    // inspects every packet, so the inert packet itself triggers blocking.
    auto env2 = dpi::make_iran();
    ReplayRunner runner2(*env2);
    auto innocuous = trace::plain_web_trace();
    InertInsertion bait(InertVariant::kLowTtl);
    ReplayOptions opts;
    opts.technique = &bait;
    opts.context.decoy_payload =
        Bytes(app.messages[0].payload);  // the blocked GET as "decoy"
    opts.context.middlebox_ttl = 8;
    auto out = runner2.run(innocuous, opts);
    std::printf(
        "innocuous flow preceded by inert packet carrying the blocked GET:\n"
        "blocked=%s (paper note 3: \"an inert packet with blocked content\n"
        "causes the connection to be blocked\")\n",
        out.blocked ? "yes" : "no");
  }

  bench::print_header("§6.6 — evasion");
  EvasionEvaluator evaluator(runner, report);
  {
    TcpSegmentSplit split(false);
    TcpSegmentSplit reorder(true);
    IpFragmentSplit frag(false);
    auto s = evaluator.evaluate_one(split, app);
    auto r = evaluator.evaluate_one(reorder, app);
    auto f = evaluator.evaluate_one(frag, app);
    std::printf(
        "payload splitting evades: %s (paper: yes — per-packet matcher)\n"
        "splitting + reordering evades: %s (paper: yes)\n"
        "IP fragmentation: evades=%s, fragments reached server=%s (paper:\n"
        "no / no — \"IP fragments were dropped before reaching our "
        "server\")\n",
        s.evaded ? "yes" : "no", r.evaded ? "yes" : "no",
        f.changed_classification ? "yes" : "no",
        f.crafted_reached_server ? "yes" : "no");
    json.metric("splitting_evades", s.evaded);
    json.metric("reordering_evades", r.evaded);
    json.metric("fragmentation_evades", f.changed_classification);
  }
  {
    auto eval = evaluator.evaluate(app, /*run_pruned=*/false);
    std::printf("production suite (after pruning) selected: %s\n",
                eval.selected.value_or("(none)").c_str());
    json.metric("selected_technique", eval.selected.value_or("(none)"));
    std::printf(
        "pruning dropped inert insertion and flushing entirely (paper:\n"
        "\"inert packet insertion techniques do not work ... the classifier\n"
        "inspects every packet in a flow\")\n");
  }
  return 0;
}
