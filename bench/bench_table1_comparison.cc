// bench_table1_comparison — regenerates Table 1: lib·erate vs other
// classifier-evasion methods.
//
// The per-flow overhead column is MEASURED by running each implemented
// method (VPN tunnel, obfuscation, domain fronting, lib·erate's selected
// technique) over the same n-packet flow and counting rewritten packets /
// extra bytes. The capability columns are properties of each method's
// deployment model, printed alongside.
#include <cstdio>
#include <memory>

#include "baselines/baselines.h"
#include "baselines/incoming_shim.h"
#include "bench/common.h"
#include "core/liberate.h"
#include "stack/host.h"
#include "trace/generators.h"

namespace {

using namespace liberate;
using namespace liberate::core;
using stack::Host;
using stack::OsProfile;
using stack::TcpConnection;

struct Measured {
  std::uint64_t flow_packets = 0;
  std::uint64_t rewritten_packets = 0;
  std::uint64_t extra_bytes = 0;
  bool evaded = true;
};

/// Run one censored exchange (GFC profile) through an arbitrary outgoing
/// client shim and count packets.
template <typename MakeShim>
Measured run_with_shim(MakeShim make_shim, std::uint64_t key) {
  Measured m;
  auto env = dpi::make_gfc();
  netsim::EventLoop& loop = env->loop;
  auto& tap = *env->pre_middlebox_tap;

  auto shim = make_shim(env->net.client_port());
  Host client(*shim, netsim::ip_addr("10.0.0.1"), OsProfile::linux_profile());
  Host server(env->net.server_port(), netsim::ip_addr("198.51.100.20"),
              OsProfile::linux_profile());
  baselines::VpnTunnelShim decryptor(env->net.client_port(), key, false);
  baselines::IncomingShim server_in(server, [&](BytesView d) {
    return key != 0 ? decryptor.transform_incoming(d) : std::nullopt;
  });
  baselines::IncomingShim client_in(client, [&](BytesView d) {
    return key != 0 ? decryptor.transform_incoming(d) : std::nullopt;
  });
  env->net.attach_client(&client_in);
  env->net.attach_server(&server_in);

  auto t = trace::economist_trace();
  std::string got;
  server.tcp_listen(80, [&](TcpConnection& c) {
    c.on_data([&, pc = &c](BytesView d) {
      got += to_string(d);
      if (got.find("\r\n\r\n") != std::string::npos && got.size() < 4096) {
        Bytes body(16 * 1024, 'b');
        pc->send(std::string_view("HTTP/1.1 200 OK\r\n\r\n"));
        pc->send(BytesView(body));
        got += "    ";  // don't re-trigger
      }
    });
  });
  std::string page;
  auto& conn = client.tcp_connect(netsim::ip_addr("198.51.100.20"), 80);
  conn.on_data([&](BytesView d) { page += to_string(d); });
  conn.on_established([&] {
    conn.send(std::string_view(
        "GET /news HTTP/1.1\r\nHost: www.economist.com\r\n\r\n"));
  });
  loop.run_for(netsim::minutes(3));

  m.flow_packets = tap.seen().size();
  m.evaded = !conn.was_reset() && page.size() > 16 * 1024;
  return m;
}

}  // namespace

int main() {
  // lib·erate: analyze + deploy on the GFC environment, then measure the
  // deployed technique's per-flow cost on the SAME exchange.
  auto env = dpi::make_gfc();
  env->loop.run_until(netsim::hours(16));
  Liberate lib(*env);
  auto report = lib.analyze(trace::economist_trace());
  std::string selected =
      report.selected_technique.value_or("(none selected)");

  // Count lib·erate's overhead from the technique's own cost model plus a
  // deployed run.
  Measured lib_measured;
  {
    auto deployment = lib.deploy(report, env->net.client_port());
    Host client(deployment != nullptr ? deployment->port()
                                      : env->net.client_port(),
                netsim::ip_addr("10.0.0.1"), OsProfile::linux_profile());
    Host server(env->net.server_port(), netsim::ip_addr("198.51.100.20"),
                OsProfile::linux_profile());
    env->net.attach_client(&client);
    env->net.attach_server(&server);
    std::string got, page;
    server.tcp_listen(80, [&](TcpConnection& c) {
      c.on_data([&, pc = &c](BytesView d) {
        got += to_string(d);
        if (got.find("\r\n\r\n") != std::string::npos) {
          Bytes body(16 * 1024, 'b');
          pc->send(std::string_view("HTTP/1.1 200 OK\r\n\r\n"));
          pc->send(BytesView(body));
          got.clear();
        }
      });
    });
    auto& conn = client.tcp_connect(netsim::ip_addr("198.51.100.20"), 80);
    conn.on_data([&](BytesView d) { page += to_string(d); });
    conn.on_established([&] {
      conn.send(std::string_view(
          "GET /news HTTP/1.1\r\nHost: www.economist.com\r\n\r\n"));
    });
    env->loop.run_for(netsim::minutes(3));
    lib_measured.evaded = !conn.was_reset() && page.size() > 16 * 1024;
    env->net.attach_client(nullptr);
    env->net.attach_server(nullptr);
  }

  // Baselines, each over a fresh GFC environment.
  auto vpn = run_with_shim(
      [](netsim::NetworkPort& p) {
        return std::make_unique<baselines::VpnTunnelShim>(p, 0x5eed, true);
      },
      0x5eed);
  auto obfs = run_with_shim(
      [](netsim::NetworkPort& p) {
        return std::make_unique<baselines::ObfuscationShim>(p, 0x0bf5);
      },
      0x0bf5);
  auto front = run_with_shim(
      [](netsim::NetworkPort& p) {
        return std::make_unique<baselines::DomainFrontingShim>(
            p, "www.economist.com", "cdn.static-ms.com");
      },
      0);

  liberate::bench::print_header(
      "Table 1 — comparison with other classifier-evasion methods");
  std::printf("%-18s %-12s %-7s %-6s %-6s %-7s %-6s %-6s %-7s\n", "Method",
              "Overhead", "evades", "client", "app-", "rule", "split/",
              "inert", "flush-");
  std::printf("%-18s %-12s %-7s %-6s %-6s %-7s %-6s %-6s %-7s\n", "",
              "per flow", "GFC?", "only", "agn.", "detect", "reord", "inj",
              "ing");
  liberate::bench::print_rule(78);
  std::printf("%-18s %-12s %-7s %-6s %-6s %-7s %-6s %-6s %-7s\n", "VPN",
              "O(n)", vpn.evaded ? "Y" : "x", "x", "Y", "x", "x", "x", "x");
  std::printf("%-18s %-12s %-7s %-6s %-6s %-7s %-6s %-6s %-7s\n",
              "Obfuscation", "O(n)", obfs.evaded ? "Y" : "x", "x", "x", "x",
              "x", "x", "x");
  std::printf("%-18s %-12s %-7s %-6s %-6s %-7s %-6s %-6s %-7s\n",
              "Domain fronting", "O(1)", front.evaded ? "Y" : "x", "x", "x",
              "x", "x", "x", "x");
  std::printf("%-18s %-12s %-7s %-6s %-6s %-7s %-6s %-6s %-7s\n", "lib.erate",
              "O(1)", lib_measured.evaded ? "Y" : "x", "Y", "Y", "Y", "Y",
              "Y", "Y");
  liberate::bench::print_rule(78);
  std::printf("lib.erate selected technique on the GFC: %s\n",
              selected.c_str());
  {
    liberate::bench::JsonReport json("table1_comparison");
    json.metric("selected_technique", selected);
    json.row("vpn");
    json.field("overhead", "O(n)");
    json.field("evades_gfc", vpn.evaded);
    json.row("obfuscation");
    json.field("overhead", "O(n)");
    json.field("evades_gfc", obfs.evaded);
    json.row("domain_fronting");
    json.field("overhead", "O(1)");
    json.field("evades_gfc", front.evaded);
    json.row("liberate");
    json.field("overhead", "O(1)");
    json.field("evades_gfc", lib_measured.evaded);
  }
  std::printf(
      "paper row: VPN O(n) not-client-only; covert/obfuscation O(n); domain\n"
      "fronting O(1); lib.erate O(1) client-only app-agnostic with rule\n"
      "detection, splitting/reordering, inert injection and flushing.\n");
  return 0;
}
