// bench_table2_overhead — regenerates Table 2: per-flow overhead of each
// high-level evasion technique, from the techniques' cost models AND from a
// measured run against the testbed (counting injected/rewritten packets on
// the wire).
#include <cstdio>

#include "bench/common.h"
#include "core/evaluation.h"
#include "trace/generators.h"

namespace {

using namespace liberate;
using namespace liberate::core;

struct Row {
  const char* name;
  const char* paper_overhead;
  std::unique_ptr<Technique> technique;
};

}  // namespace

int main() {
  auto env = dpi::make_testbed();
  ReplayRunner runner(*env);
  auto app = trace::amazon_video_trace(64 * 1024);
  CharacterizationOptions copts;
  copts.probe_ttl = true;
  auto report = characterize_classifier(runner, app, copts);
  EvasionEvaluator evaluator(runner, report);
  TechniqueContext ctx = evaluator.context();

  std::vector<Row> rows;
  rows.push_back(Row{"Inert packet insertion", "k packets",
                     std::make_unique<InertInsertion>(InertVariant::kLowTtl)});
  rows.push_back(Row{"Payload splitting", "k*40 bytes (+reassembly)",
                     std::make_unique<TcpSegmentSplit>(false)});
  rows.push_back(Row{"Payload reordering", "k*40 bytes (+reassembly)",
                     std::make_unique<TcpSegmentSplit>(true)});
  rows.push_back(Row{"Classification flushing", "t seconds or 1 packet",
                     std::make_unique<RstAfterMatch>()});
  rows.push_back(Row{"Classification flushing (pause)", "t seconds",
                     std::make_unique<PauseAfterMatch>()});

  bench::print_header(
      "Table 2 — per-flow overhead of lib.erate's evasion techniques "
      "(measured on the testbed)");
  std::printf("%-32s %-26s %8s %8s %9s %7s\n", "Technique", "paper overhead",
              "pkts", "bytes", "seconds", "evaded");
  bench::print_rule(96);

  bench::JsonReport json("table2_overhead");
  for (auto& row : rows) {
    Overhead o = row.technique->overhead(ctx);
    auto outcome = evaluator.evaluate_one(*row.technique, app);
    std::printf("%-32s %-26s %8zu %8zu %9.1f %7s\n", row.name,
                row.paper_overhead, o.extra_packets, o.extra_bytes,
                o.extra_seconds, outcome.evaded ? "Y" : "x");
    json.row(row.name);
    json.field("paper_overhead", row.paper_overhead);
    json.field("extra_packets", static_cast<std::uint64_t>(o.extra_packets));
    json.field("extra_bytes", static_cast<std::uint64_t>(o.extra_bytes));
    json.field("extra_seconds", o.extra_seconds);
    json.field("evaded", outcome.evaded);
  }
  bench::print_rule(96);
  std::printf(
      "paper: inert insertion costs k extra packets (k < 5 in practice);\n"
      "splitting/reordering cost ~40 header bytes per extra segment plus\n"
      "nominal server reassembly; flushing costs one inert RST (effects\n"
      "nearly immediate) or a t-second pause (t in 40..240 s).\n");
  return 0;
}
