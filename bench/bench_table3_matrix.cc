// bench_table3_matrix — regenerates Table 3: the effectiveness of every
// evasion technique against every environment, reporting CC? (changes
// classification) and RS? (crafted packet reaches the server), and comparing
// each cell against the paper's published value.
//
// The measured cells EMERGE from the per-environment mechanism
// configurations in src/dpi/profiles.cc — nothing in this bench hardcodes an
// outcome; the `expected` strings below are the paper's Table 3, used only
// for the agreement report.
#include <cstdio>
#include <map>
#include <memory>

#include "bench/common.h"
#include "core/evaluation.h"
#include "trace/generators.h"

namespace {

using namespace liberate;
using namespace liberate::core;
using liberate::bench::Agreement;

struct ExpectedRow {
  const char* technique;
  // Five characters each, env order testbed/tmus/gfc/iran/att.
  const char* cc;
  const char* rs;
};

// Transcription of Table 3 (CC? and RS? columns). '-' = cell not applicable
// (UDP rows in networks that do not classify UDP; AT&T's terminating proxy
// has no meaningful RS).
const ExpectedRow kExpected[] = {
    {"inert/ip-low-ttl", "11100", "0000-"},
    {"inert/ip-invalid-version", "00000", "0000-"},
    {"inert/ip-invalid-header-length", "00000", "0000-"},
    {"inert/ip-total-length-long", "10000", "0000-"},
    {"inert/ip-total-length-short", "00000", "0000-"},
    {"inert/ip-wrong-protocol", "10000", "1110-"},
    {"inert/ip-wrong-checksum", "10000", "0000-"},
    {"inert/ip-invalid-options", "11000", "1000-"},
    {"inert/ip-deprecated-options", "11000", "1000-"},
    {"inert/tcp-wrong-seq", "10000", "1010-"},
    {"inert/tcp-wrong-checksum", "10100", "1010-"},
    {"inert/tcp-no-ack-flag", "10100", "0010-"},
    {"inert/tcp-invalid-data-offset", "00000", "1010-"},
    {"inert/tcp-invalid-flag-combo", "10000", "1010-"},
    {"inert/udp-invalid-checksum", "1----", "1011-"},
    {"inert/udp-length-long", "1----", "1001-"},
    {"inert/udp-length-short", "1----", "1001-"},
    {"split/ip-fragmentation", "10000", "1110-"},
    {"split/tcp-segmentation", "11010", "1111-"},
    {"reorder/ip-fragments-out-of-order", "10000", "1110-"},
    {"reorder/tcp-segments-out-of-order", "11010", "1111-"},
    {"reorder/udp-out-of-order", "1----", "1111-"},
    {"flush/pause-after-match", "10000", "1111-"},
    {"flush/pause-before-match", "10100", "1111-"},
    {"flush/ttl-limited-rst-after", "11000", "0000-"},
    {"flush/ttl-limited-rst-before", "11100", "0000-"},
};

struct EnvResult {
  std::map<std::string, TechniqueOutcome> tcp;  // technique name -> outcome
  std::map<std::string, TechniqueOutcome> udp;
  bool udp_classified = false;
};

char cc_of(const TechniqueOutcome& o) {
  return o.changed_classification ? '1' : '0';
}
char rs_of(const TechniqueOutcome& o) {
  if (o.technique.find("pause") != std::string::npos) {
    // Pauses craft no packets and drop none: the technique itself never
    // keeps traffic from the server (Table 3 marks these rows deliverable).
    return '1';
  }
  if (o.technique == "reorder/udp-out-of-order") {
    // Order swap, nothing crafted: RS? asks whether the (reordered)
    // datagrams still arrived.
    return o.completed ? '1' : '0';
  }
  return o.crafted_reached_server ? '1' : '0';
}

EnvResult evaluate_environment(const std::string& name) {
  EnvResult result;

  auto env = dpi::make_environment(name);
  // The GFC's pause-before row depends on time of day (Fig. 4); the paper's
  // Table 3 cell reflects hours when flushing works, so evaluate at a busy
  // hour.
  env->loop.run_until(netsim::hours(16));
  ReplayRunner runner(*env);

  trace::ApplicationTrace tcp_trace =
      name == "gfc"    ? trace::economist_trace()
      : name == "iran" ? trace::facebook_trace()
      : name == "att"  ? trace::nbcsports_trace(768 * 1024)
      : name == "tmus" ? trace::amazon_video_trace(220 * 1024)
                       : trace::amazon_video_trace(48 * 1024);

  CharacterizationOptions copts;
  copts.unique_port_per_round = true;
  auto report = characterize_classifier(runner, tcp_trace, copts);
  EvasionEvaluator evaluator(runner, report);
  auto eval = evaluator.evaluate(tcp_trace, /*run_pruned=*/true);
  for (const auto& o : eval.outcomes) result.tcp[o.technique] = o;

  // UDP rows, with the Skype trace.
  auto skype = trace::make_skype_trace({});
  auto baseline = runner.run(skype);
  result.udp_classified = runner.differentiated(baseline);
  if (result.udp_classified || name != "att") {
    CharacterizationOptions uopts;
    uopts.probe_ttl = false;
    CharacterizationReport udp_report;
    if (result.udp_classified) {
      udp_report = characterize_classifier(runner, skype, uopts);
    }
    udp_report.middlebox_hops = report.middlebox_hops;
    EvasionEvaluator udp_eval(runner, udp_report);
    auto ueval = udp_eval.evaluate(skype, /*run_pruned=*/true);
    for (const auto& o : ueval.outcomes) result.udp[o.technique] = o;
  }
  return result;
}

}  // namespace

int main() {
  const std::vector<std::string> envs = {"testbed", "tmus", "gfc", "iran",
                                         "att"};
  std::map<std::string, EnvResult> results;
  for (const auto& e : envs) {
    std::printf("evaluating %s ...\n", e.c_str());
    std::fflush(stdout);
    results[e] = evaluate_environment(e);
  }

  bench::print_header(
      "Table 3 — technique effectiveness: CC? (changes classification) / "
      "RS? (reaches server)\n"
      "columns: Testbed  T-Mobile  GFC  Iran  AT&T    "
      "[measured(paper)]  Y=yes x=no -=n/a");

  bench::JsonReport json("table3_matrix");
  Agreement cc_agree, rs_agree;
  for (const auto& row : kExpected) {
    const bool is_udp_row = std::string(row.technique).find("udp") !=
                            std::string::npos;
    std::printf("%-36s", row.technique);
    json.row(row.technique);
    std::string cc_measured, rs_measured;
    for (std::size_t i = 0; i < envs.size(); ++i) {
      const EnvResult& er = results[envs[i]];
      const auto& table = is_udp_row ? er.udp : er.tcp;
      auto it = table.find(row.technique);
      char cc = '?';
      char rs = '?';
      if (it != table.end()) {
        cc = cc_of(it->second);
        rs = rs_of(it->second);
        if (is_udp_row && !er.udp_classified) cc = '-';
      } else if (is_udp_row) {
        cc = '-';
        rs = '-';
      }
      if (envs[i] == "att") rs = '-';  // terminating proxy: RS inapplicable
      std::printf("  %s/%s(%c%c)", bench::glyph(cc), bench::glyph(rs),
                  row.cc[i] == '1'   ? 'Y'
                  : row.cc[i] == '0' ? 'x'
                                     : '-',
                  row.rs[i] == '1'   ? 'Y'
                  : row.rs[i] == '0' ? 'x'
                                     : '-');
      if (cc != '?' && cc != '-') cc_agree.tally(row.cc[i], cc);
      if (rs != '?' && rs != '-') rs_agree.tally(row.rs[i], rs);
      cc_measured.push_back(cc);
      rs_measured.push_back(rs);
    }
    json.field("cc_measured", cc_measured);
    json.field("cc_paper", row.cc);
    json.field("rs_measured", rs_measured);
    json.field("rs_paper", row.rs);
    std::printf("\n");
  }

  bench::print_rule(78);
  std::printf("CC agreement with paper: %d/%d (%.1f%%)\n", cc_agree.matched,
              cc_agree.compared, cc_agree.percent());
  std::printf("RS agreement with paper: %d/%d (%.1f%%)\n", rs_agree.matched,
              rs_agree.compared, rs_agree.percent());
  json.metric("cc_agreement_pct", cc_agree.percent());
  json.metric("cc_compared", cc_agree.compared);
  json.metric("cc_matched", cc_agree.matched);
  json.metric("rs_agreement_pct", rs_agree.percent());
  json.metric("rs_compared", rs_agree.compared);
  json.metric("rs_matched", rs_agree.matched);
  return 0;
}
