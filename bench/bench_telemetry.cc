// bench_telemetry — what the telemetry hub costs. Three numbers:
//
//  * ns/op for the hot-path primitives (HdrHistogram::record, a
//    TimeSeriesStore::sample, an AnomalyDetector::observe);
//  * fleet wave throughput with per-wave telemetry sampling on vs off
//    (FleetOptions::sample_telemetry) — the acceptance target is <= 5%
//    wave-throughput overhead at obs level 1;
//  * the size of the exported fleet time-series document.
//
// Both fleet runs ride a warm fingerprint cache so the deploy-time analysis
// (identical either way) doesn't dilute the per-wave delta being measured.
#include <chrono>
#include <cstdio>

#include "bench/common.h"
#include "deploy/fleet.h"
#include "obs/anomaly.h"
#include "obs/hdr_histogram.h"
#include "obs/timeseries.h"
#include "trace/generators.h"

using namespace liberate;
using namespace liberate::deploy;

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

FleetOptions soak_options(bool sample_telemetry) {
  FleetOptions opts;
  opts.shards = 4;
  opts.flows_per_wave = 8;
  opts.waves = 6;
  opts.sample_telemetry = sample_telemetry;
  return opts;
}

/// Best-of-`reps` wall time for one warm-cache fleet soak.
double soak_wall_s(bool sample_telemetry, ClassifierFingerprintCache& cache,
                   const trace::ApplicationTrace& trace, int reps,
                   std::size_t* waves_out) {
  double best = 1e9;
  for (int r = 0; r < reps; ++r) {
    obs::TimeSeriesStore::instance().reset();
    FleetOptions opts = soak_options(sample_telemetry);
    opts.cache = &cache;
    FleetEngine engine(opts);
    auto start = Clock::now();
    FleetReport report = engine.run(trace);
    const double wall = seconds_since(start);
    if (wall < best) best = wall;
    *waves_out = report.waves.size();
  }
  return best;
}

}  // namespace

int main() {
  bench::JsonReport json("telemetry");
  const auto trace = trace::amazon_video_trace(8 * 1024);

  bench::print_header("telemetry hot-path primitives");
  {
    constexpr std::uint64_t kOps = 2'000'000;
    obs::HdrHistogram hdr;
    auto start = Clock::now();
    for (std::uint64_t i = 0; i < kOps; ++i) hdr.record(i * 37 + 11);
    const double hdr_ns = seconds_since(start) * 1e9 / kOps;

    obs::TimeSeriesStore::instance().reset();
    constexpr std::uint64_t kSamples = 1'000'000;
    start = Clock::now();
    for (std::uint64_t i = 0; i < kSamples; ++i) {
      obs::TimeSeriesStore::instance().sample("bench.ts", -1, i,
                                              static_cast<double>(i & 255));
    }
    const double ts_ns = seconds_since(start) * 1e9 / kSamples;
    obs::TimeSeriesStore::instance().reset();

    obs::AnomalyDetector detector;
    start = Clock::now();
    for (std::uint64_t i = 0; i < kSamples; ++i) {
      detector.observe(static_cast<double>(i & 15));
    }
    const double anomaly_ns = seconds_since(start) * 1e9 / kSamples;

    std::printf("%-28s %10.1f ns/op  (count=%llu)\n", "HdrHistogram::record",
                hdr_ns, static_cast<unsigned long long>(hdr.count()));
    std::printf("%-28s %10.1f ns/op\n", "TimeSeriesStore::sample", ts_ns);
    std::printf("%-28s %10.1f ns/op\n", "AnomalyDetector::observe", anomaly_ns);
    json.metric("hdr_record_ns", hdr_ns);
    json.metric("ts_sample_ns", ts_ns);
    json.metric("anomaly_observe_ns", anomaly_ns);
  }

  bench::print_header(
      "fleet wave throughput — telemetry sampling on vs off (warm cache)");
  {
    ClassifierFingerprintCache cache;
    {
      // Cold run to warm the cache; not measured.
      FleetOptions warmup = soak_options(false);
      warmup.waves = 1;
      warmup.cache = &cache;
      FleetEngine(warmup).run(trace);
    }

    std::size_t waves = 0;
    const double wall_off = soak_wall_s(false, cache, trace, 3, &waves);
    const double wall_on = soak_wall_s(true, cache, trace, 3, &waves);
    const double waves_per_s_off = static_cast<double>(waves) / wall_off;
    const double waves_per_s_on = static_cast<double>(waves) / wall_on;
    const double overhead_pct = (wall_on - wall_off) / wall_off * 100.0;

    std::printf("%-12s %10s %12s\n", "sampling", "wall s", "waves/s");
    bench::print_rule(36);
    std::printf("%-12s %10.3f %12.2f\n", "off", wall_off, waves_per_s_off);
    std::printf("%-12s %10.3f %12.2f\n", "on", wall_on, waves_per_s_on);
    bench::print_rule(36);
    std::printf("overhead                %+.2f%%\n", overhead_pct);
    std::printf("acceptance (<=5%%)       %s\n",
                overhead_pct <= 5.0 ? "PASS" : "FAIL");
    json.metric("waves_per_s_off", waves_per_s_off);
    json.metric("waves_per_s_on", waves_per_s_on);
    json.metric("overhead_pct", overhead_pct);
    json.metric("overhead_under_5pct", overhead_pct <= 5.0);

    obs::TimeSeriesStore::instance().reset();
    FleetOptions opts = soak_options(true);
    opts.cache = &cache;
    FleetReport report = FleetEngine(opts).run(trace);
    std::printf("telemetry_json          %zu bytes\n",
                report.telemetry_json.size());
    json.metric("telemetry_json_bytes",
                static_cast<std::uint64_t>(report.telemetry_json.size()));
  }
  json.set_workers(0);
  return 0;
}
