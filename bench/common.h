// common.h — shared helpers for the reproduction benches: table printing,
// paper-vs-measured agreement accounting, and the machine-readable
// BENCH_<name>.json emitter every bench binary writes next to its stdout
// tables (CI uploads these as artifacts).
#pragma once

#include <cstdio>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "obs/obs.h"  // LIBERATE_OBS_LEVEL (defaulted if CMake didn't set it)
#include "util/json.h"

// Short git SHA baked in by bench/CMakeLists.txt at configure time; a tarball
// build (no .git) reports "unknown".
#ifndef LIBERATE_GIT_SHA
#define LIBERATE_GIT_SHA "unknown"
#endif

namespace liberate::bench {

/// Tri-state cell: '1' = check mark, '0' = cross, '-' = not applicable.
inline const char* glyph(char c) {
  switch (c) {
    case '1':
      return "Y";
    case '0':
      return "x";
    default:
      return "-";
  }
}

struct Agreement {
  int compared = 0;
  int matched = 0;

  void tally(char expected, char measured) {
    if (expected == '-' || measured == '?') return;
    compared += 1;
    if (expected == measured) matched += 1;
  }
  double percent() const {
    return compared == 0 ? 100.0 : 100.0 * matched / compared;
  }
};

inline void print_rule(int width) {
  for (int i = 0; i < width; ++i) std::putchar('-');
  std::putchar('\n');
}

inline void print_header(const std::string& title) {
  std::printf("\n");
  print_rule(78);
  std::printf("%s\n", title.c_str());
  print_rule(78);
}

/// Machine-readable results file: BENCH_<name>.json in the working
/// directory. Collects flat metrics plus labelled rows, all in insertion
/// order, and writes on destruction (or an explicit write()).
///
///   bench::JsonReport report("table3_matrix");
///   report.metric("agreement_pct", agreement.percent());
///   report.row("inert/ip-low-ttl");
///   report.field("cc", true);
class JsonReport {
 public:
  explicit JsonReport(std::string name) : name_(std::move(name)) {}
  ~JsonReport() { write(); }

  JsonReport(const JsonReport&) = delete;
  JsonReport& operator=(const JsonReport&) = delete;

  void metric(const std::string& key, double v) { metrics_.push_back({key, Value::num(v)}); }
  void metric(const std::string& key, std::uint64_t v) { metrics_.push_back({key, Value::uint(v)}); }
  void metric(const std::string& key, int v) { metrics_.push_back({key, Value::integer(v)}); }
  void metric(const std::string& key, bool v) { metrics_.push_back({key, Value::boolean(v)}); }
  void metric(const std::string& key, const std::string& v) { metrics_.push_back({key, Value::str(v)}); }
  void metric(const std::string& key, const char* v) { metrics_.push_back({key, Value::str(v)}); }

  /// Start a new labelled row; subsequent field() calls attach to it.
  void row(const std::string& label) { rows_.push_back({label, {}}); }
  void field(const std::string& key, double v) { rows_.back().fields.push_back({key, Value::num(v)}); }
  void field(const std::string& key, std::uint64_t v) { rows_.back().fields.push_back({key, Value::uint(v)}); }
  void field(const std::string& key, int v) { rows_.back().fields.push_back({key, Value::integer(v)}); }
  void field(const std::string& key, bool v) { rows_.back().fields.push_back({key, Value::boolean(v)}); }
  void field(const std::string& key, const std::string& v) { rows_.back().fields.push_back({key, Value::str(v)}); }
  void field(const std::string& key, const char* v) { rows_.back().fields.push_back({key, Value::str(v)}); }

  std::string path() const { return "BENCH_" + name_ + ".json"; }

  /// Worker-thread count recorded in the context block. Benches that run a
  /// parallel scheduler should set this to the pool size they actually used;
  /// the default is the machine's concurrency (what a serial bench competes
  /// with for turbo headroom — still relevant when comparing runs).
  void set_workers(int workers) { workers_ = workers; }

  void write() {
    if (written_) return;
    written_ = true;
    JsonWriter w;
    w.begin_object();
    w.key("bench").value(name_);
    // Build/run context: lets scripts/bench_compare.py reject comparisons
    // across different commits, obs levels, or worker counts.
    w.key("context").begin_object();
    w.key("git_sha").value(LIBERATE_GIT_SHA);
    w.key("obs_level").value(static_cast<int>(LIBERATE_OBS_LEVEL));
    w.key("workers").value(workers_);
    w.end_object();
    w.key("metrics").begin_object();
    for (const auto& m : metrics_) {
      w.key(m.first);
      m.second.emit(w);
    }
    w.end_object();
    w.key("rows").begin_array();
    for (const auto& r : rows_) {
      w.begin_object();
      w.key("label").value(r.label);
      for (const auto& f : r.fields) {
        w.key(f.first);
        f.second.emit(w);
      }
      w.end_object();
    }
    w.end_array();
    w.end_object();
    std::FILE* f = std::fopen(path().c_str(), "w");
    if (f == nullptr) return;  // read-only cwd: stdout tables still stand
    const std::string& doc = w.str();
    std::fwrite(doc.data(), 1, doc.size(), f);
    std::fputc('\n', f);
    std::fclose(f);
    std::printf("wrote %s\n", path().c_str());
  }

 private:
  struct Value {
    enum class Kind { kNum, kUint, kInt, kBool, kStr } kind = Kind::kNum;
    double num_v = 0;
    std::uint64_t uint_v = 0;
    std::int64_t int_v = 0;
    bool bool_v = false;
    std::string str_v;

    static Value num(double v) { Value x; x.kind = Kind::kNum; x.num_v = v; return x; }
    static Value uint(std::uint64_t v) { Value x; x.kind = Kind::kUint; x.uint_v = v; return x; }
    static Value integer(std::int64_t v) { Value x; x.kind = Kind::kInt; x.int_v = v; return x; }
    static Value boolean(bool v) { Value x; x.kind = Kind::kBool; x.bool_v = v; return x; }
    static Value str(std::string v) { Value x; x.kind = Kind::kStr; x.str_v = std::move(v); return x; }

    void emit(JsonWriter& w) const {
      switch (kind) {
        case Kind::kNum: w.value(num_v); break;
        case Kind::kUint: w.value(uint_v); break;
        case Kind::kInt: w.value(int_v); break;
        case Kind::kBool: w.value(bool_v); break;
        case Kind::kStr: w.value(str_v); break;
      }
    }
  };
  struct Row {
    std::string label;
    std::vector<std::pair<std::string, Value>> fields;
  };

  std::string name_;
  int workers_ = static_cast<int>(std::thread::hardware_concurrency());
  std::vector<std::pair<std::string, Value>> metrics_;
  std::vector<Row> rows_;
  bool written_ = false;
};

}  // namespace liberate::bench
