// common.h — shared helpers for the reproduction benches: table printing and
// paper-vs-measured agreement accounting.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

namespace liberate::bench {

/// Tri-state cell: '1' = check mark, '0' = cross, '-' = not applicable.
inline const char* glyph(char c) {
  switch (c) {
    case '1':
      return "Y";
    case '0':
      return "x";
    default:
      return "-";
  }
}

struct Agreement {
  int compared = 0;
  int matched = 0;

  void tally(char expected, char measured) {
    if (expected == '-' || measured == '?') return;
    compared += 1;
    if (expected == measured) matched += 1;
  }
  double percent() const {
    return compared == 0 ? 100.0 : 100.0 * matched / compared;
  }
};

inline void print_rule(int width) {
  for (int i = 0; i < width; ++i) std::putchar('-');
  std::putchar('\n');
}

inline void print_header(const std::string& title) {
  std::printf("\n");
  print_rule(78);
  std::printf("%s\n", title.c_str());
  print_rule(78);
}

}  // namespace liberate::bench
