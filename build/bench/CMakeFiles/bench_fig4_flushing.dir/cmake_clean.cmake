file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_flushing.dir/bench_fig4_flushing.cc.o"
  "CMakeFiles/bench_fig4_flushing.dir/bench_fig4_flushing.cc.o.d"
  "bench_fig4_flushing"
  "bench_fig4_flushing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_flushing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
