file(REMOVE_RECURSE
  "CMakeFiles/bench_sec53_performance.dir/bench_sec53_performance.cc.o"
  "CMakeFiles/bench_sec53_performance.dir/bench_sec53_performance.cc.o.d"
  "bench_sec53_performance"
  "bench_sec53_performance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec53_performance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
