file(REMOVE_RECURSE
  "CMakeFiles/bench_sec61_testbed.dir/bench_sec61_testbed.cc.o"
  "CMakeFiles/bench_sec61_testbed.dir/bench_sec61_testbed.cc.o.d"
  "bench_sec61_testbed"
  "bench_sec61_testbed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec61_testbed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
