# Empty compiler generated dependencies file for bench_sec61_testbed.
# This may be replaced when dependencies are built.
