file(REMOVE_RECURSE
  "CMakeFiles/bench_sec62_tmus.dir/bench_sec62_tmus.cc.o"
  "CMakeFiles/bench_sec62_tmus.dir/bench_sec62_tmus.cc.o.d"
  "bench_sec62_tmus"
  "bench_sec62_tmus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec62_tmus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
