file(REMOVE_RECURSE
  "CMakeFiles/bench_sec63_att.dir/bench_sec63_att.cc.o"
  "CMakeFiles/bench_sec63_att.dir/bench_sec63_att.cc.o.d"
  "bench_sec63_att"
  "bench_sec63_att.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec63_att.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
