# Empty dependencies file for bench_sec63_att.
# This may be replaced when dependencies are built.
