file(REMOVE_RECURSE
  "CMakeFiles/bench_sec64_sprint.dir/bench_sec64_sprint.cc.o"
  "CMakeFiles/bench_sec64_sprint.dir/bench_sec64_sprint.cc.o.d"
  "bench_sec64_sprint"
  "bench_sec64_sprint.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec64_sprint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
