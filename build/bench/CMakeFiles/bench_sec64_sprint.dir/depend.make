# Empty dependencies file for bench_sec64_sprint.
# This may be replaced when dependencies are built.
