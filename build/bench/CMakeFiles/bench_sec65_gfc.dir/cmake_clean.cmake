file(REMOVE_RECURSE
  "CMakeFiles/bench_sec65_gfc.dir/bench_sec65_gfc.cc.o"
  "CMakeFiles/bench_sec65_gfc.dir/bench_sec65_gfc.cc.o.d"
  "bench_sec65_gfc"
  "bench_sec65_gfc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec65_gfc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
