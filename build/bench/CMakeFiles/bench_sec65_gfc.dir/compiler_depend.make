# Empty compiler generated dependencies file for bench_sec65_gfc.
# This may be replaced when dependencies are built.
