file(REMOVE_RECURSE
  "CMakeFiles/bench_sec66_iran.dir/bench_sec66_iran.cc.o"
  "CMakeFiles/bench_sec66_iran.dir/bench_sec66_iran.cc.o.d"
  "bench_sec66_iran"
  "bench_sec66_iran.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec66_iran.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
