# Empty dependencies file for bench_sec66_iran.
# This may be replaced when dependencies are built.
