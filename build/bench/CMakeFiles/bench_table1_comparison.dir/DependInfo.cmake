
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_table1_comparison.cc" "bench/CMakeFiles/bench_table1_comparison.dir/bench_table1_comparison.cc.o" "gcc" "bench/CMakeFiles/bench_table1_comparison.dir/bench_table1_comparison.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/liberate_core.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/liberate_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/liberate_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/dpi/CMakeFiles/liberate_dpi.dir/DependInfo.cmake"
  "/root/repo/build/src/stack/CMakeFiles/liberate_stack.dir/DependInfo.cmake"
  "/root/repo/build/src/netsim/CMakeFiles/liberate_netsim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/liberate_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
