file(REMOVE_RECURSE
  "CMakeFiles/censorship_circumvention.dir/censorship_circumvention.cpp.o"
  "CMakeFiles/censorship_circumvention.dir/censorship_circumvention.cpp.o.d"
  "censorship_circumvention"
  "censorship_circumvention.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/censorship_circumvention.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
