# Empty dependencies file for censorship_circumvention.
# This may be replaced when dependencies are built.
