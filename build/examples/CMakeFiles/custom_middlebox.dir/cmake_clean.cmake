file(REMOVE_RECURSE
  "CMakeFiles/custom_middlebox.dir/custom_middlebox.cpp.o"
  "CMakeFiles/custom_middlebox.dir/custom_middlebox.cpp.o.d"
  "custom_middlebox"
  "custom_middlebox.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/custom_middlebox.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
