# Empty compiler generated dependencies file for custom_middlebox.
# This may be replaced when dependencies are built.
