file(REMOVE_RECURSE
  "CMakeFiles/liberate_cli.dir/liberate_cli.cpp.o"
  "CMakeFiles/liberate_cli.dir/liberate_cli.cpp.o.d"
  "liberate_cli"
  "liberate_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/liberate_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
