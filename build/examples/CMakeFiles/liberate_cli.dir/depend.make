# Empty dependencies file for liberate_cli.
# This may be replaced when dependencies are built.
