file(REMOVE_RECURSE
  "CMakeFiles/video_unthrottling.dir/video_unthrottling.cpp.o"
  "CMakeFiles/video_unthrottling.dir/video_unthrottling.cpp.o.d"
  "video_unthrottling"
  "video_unthrottling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/video_unthrottling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
