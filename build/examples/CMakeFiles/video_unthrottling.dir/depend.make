# Empty dependencies file for video_unthrottling.
# This may be replaced when dependencies are built.
