file(REMOVE_RECURSE
  "CMakeFiles/liberate_baselines.dir/baselines.cc.o"
  "CMakeFiles/liberate_baselines.dir/baselines.cc.o.d"
  "libliberate_baselines.a"
  "libliberate_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/liberate_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
