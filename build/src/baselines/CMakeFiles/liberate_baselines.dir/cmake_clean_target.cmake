file(REMOVE_RECURSE
  "libliberate_baselines.a"
)
