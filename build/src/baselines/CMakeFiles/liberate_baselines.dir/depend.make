# Empty dependencies file for liberate_baselines.
# This may be replaced when dependencies are built.
