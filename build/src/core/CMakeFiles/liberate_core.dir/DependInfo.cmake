
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/bilateral.cc" "src/core/CMakeFiles/liberate_core.dir/bilateral.cc.o" "gcc" "src/core/CMakeFiles/liberate_core.dir/bilateral.cc.o.d"
  "/root/repo/src/core/blinding.cc" "src/core/CMakeFiles/liberate_core.dir/blinding.cc.o" "gcc" "src/core/CMakeFiles/liberate_core.dir/blinding.cc.o.d"
  "/root/repo/src/core/characterization.cc" "src/core/CMakeFiles/liberate_core.dir/characterization.cc.o" "gcc" "src/core/CMakeFiles/liberate_core.dir/characterization.cc.o.d"
  "/root/repo/src/core/detection.cc" "src/core/CMakeFiles/liberate_core.dir/detection.cc.o" "gcc" "src/core/CMakeFiles/liberate_core.dir/detection.cc.o.d"
  "/root/repo/src/core/evaluation.cc" "src/core/CMakeFiles/liberate_core.dir/evaluation.cc.o" "gcc" "src/core/CMakeFiles/liberate_core.dir/evaluation.cc.o.d"
  "/root/repo/src/core/evasion/flush.cc" "src/core/CMakeFiles/liberate_core.dir/evasion/flush.cc.o" "gcc" "src/core/CMakeFiles/liberate_core.dir/evasion/flush.cc.o.d"
  "/root/repo/src/core/evasion/inert.cc" "src/core/CMakeFiles/liberate_core.dir/evasion/inert.cc.o" "gcc" "src/core/CMakeFiles/liberate_core.dir/evasion/inert.cc.o.d"
  "/root/repo/src/core/evasion/registry.cc" "src/core/CMakeFiles/liberate_core.dir/evasion/registry.cc.o" "gcc" "src/core/CMakeFiles/liberate_core.dir/evasion/registry.cc.o.d"
  "/root/repo/src/core/evasion/shim.cc" "src/core/CMakeFiles/liberate_core.dir/evasion/shim.cc.o" "gcc" "src/core/CMakeFiles/liberate_core.dir/evasion/shim.cc.o.d"
  "/root/repo/src/core/evasion/split.cc" "src/core/CMakeFiles/liberate_core.dir/evasion/split.cc.o" "gcc" "src/core/CMakeFiles/liberate_core.dir/evasion/split.cc.o.d"
  "/root/repo/src/core/evasion/technique.cc" "src/core/CMakeFiles/liberate_core.dir/evasion/technique.cc.o" "gcc" "src/core/CMakeFiles/liberate_core.dir/evasion/technique.cc.o.d"
  "/root/repo/src/core/liberate.cc" "src/core/CMakeFiles/liberate_core.dir/liberate.cc.o" "gcc" "src/core/CMakeFiles/liberate_core.dir/liberate.cc.o.d"
  "/root/repo/src/core/replay.cc" "src/core/CMakeFiles/liberate_core.dir/replay.cc.o" "gcc" "src/core/CMakeFiles/liberate_core.dir/replay.cc.o.d"
  "/root/repo/src/core/report_io.cc" "src/core/CMakeFiles/liberate_core.dir/report_io.cc.o" "gcc" "src/core/CMakeFiles/liberate_core.dir/report_io.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/dpi/CMakeFiles/liberate_dpi.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/liberate_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/stack/CMakeFiles/liberate_stack.dir/DependInfo.cmake"
  "/root/repo/build/src/netsim/CMakeFiles/liberate_netsim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/liberate_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
