file(REMOVE_RECURSE
  "CMakeFiles/liberate_core.dir/bilateral.cc.o"
  "CMakeFiles/liberate_core.dir/bilateral.cc.o.d"
  "CMakeFiles/liberate_core.dir/blinding.cc.o"
  "CMakeFiles/liberate_core.dir/blinding.cc.o.d"
  "CMakeFiles/liberate_core.dir/characterization.cc.o"
  "CMakeFiles/liberate_core.dir/characterization.cc.o.d"
  "CMakeFiles/liberate_core.dir/detection.cc.o"
  "CMakeFiles/liberate_core.dir/detection.cc.o.d"
  "CMakeFiles/liberate_core.dir/evaluation.cc.o"
  "CMakeFiles/liberate_core.dir/evaluation.cc.o.d"
  "CMakeFiles/liberate_core.dir/evasion/flush.cc.o"
  "CMakeFiles/liberate_core.dir/evasion/flush.cc.o.d"
  "CMakeFiles/liberate_core.dir/evasion/inert.cc.o"
  "CMakeFiles/liberate_core.dir/evasion/inert.cc.o.d"
  "CMakeFiles/liberate_core.dir/evasion/registry.cc.o"
  "CMakeFiles/liberate_core.dir/evasion/registry.cc.o.d"
  "CMakeFiles/liberate_core.dir/evasion/shim.cc.o"
  "CMakeFiles/liberate_core.dir/evasion/shim.cc.o.d"
  "CMakeFiles/liberate_core.dir/evasion/split.cc.o"
  "CMakeFiles/liberate_core.dir/evasion/split.cc.o.d"
  "CMakeFiles/liberate_core.dir/evasion/technique.cc.o"
  "CMakeFiles/liberate_core.dir/evasion/technique.cc.o.d"
  "CMakeFiles/liberate_core.dir/liberate.cc.o"
  "CMakeFiles/liberate_core.dir/liberate.cc.o.d"
  "CMakeFiles/liberate_core.dir/replay.cc.o"
  "CMakeFiles/liberate_core.dir/replay.cc.o.d"
  "CMakeFiles/liberate_core.dir/report_io.cc.o"
  "CMakeFiles/liberate_core.dir/report_io.cc.o.d"
  "libliberate_core.a"
  "libliberate_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/liberate_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
