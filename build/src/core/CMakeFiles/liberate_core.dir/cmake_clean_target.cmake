file(REMOVE_RECURSE
  "libliberate_core.a"
)
