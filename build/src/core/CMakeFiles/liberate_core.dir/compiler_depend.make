# Empty compiler generated dependencies file for liberate_core.
# This may be replaced when dependencies are built.
