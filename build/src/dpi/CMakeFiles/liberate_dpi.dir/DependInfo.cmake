
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dpi/classifier.cc" "src/dpi/CMakeFiles/liberate_dpi.dir/classifier.cc.o" "gcc" "src/dpi/CMakeFiles/liberate_dpi.dir/classifier.cc.o.d"
  "/root/repo/src/dpi/http_parser.cc" "src/dpi/CMakeFiles/liberate_dpi.dir/http_parser.cc.o" "gcc" "src/dpi/CMakeFiles/liberate_dpi.dir/http_parser.cc.o.d"
  "/root/repo/src/dpi/middlebox.cc" "src/dpi/CMakeFiles/liberate_dpi.dir/middlebox.cc.o" "gcc" "src/dpi/CMakeFiles/liberate_dpi.dir/middlebox.cc.o.d"
  "/root/repo/src/dpi/normalizer.cc" "src/dpi/CMakeFiles/liberate_dpi.dir/normalizer.cc.o" "gcc" "src/dpi/CMakeFiles/liberate_dpi.dir/normalizer.cc.o.d"
  "/root/repo/src/dpi/profiles.cc" "src/dpi/CMakeFiles/liberate_dpi.dir/profiles.cc.o" "gcc" "src/dpi/CMakeFiles/liberate_dpi.dir/profiles.cc.o.d"
  "/root/repo/src/dpi/rules.cc" "src/dpi/CMakeFiles/liberate_dpi.dir/rules.cc.o" "gcc" "src/dpi/CMakeFiles/liberate_dpi.dir/rules.cc.o.d"
  "/root/repo/src/dpi/stun_parser.cc" "src/dpi/CMakeFiles/liberate_dpi.dir/stun_parser.cc.o" "gcc" "src/dpi/CMakeFiles/liberate_dpi.dir/stun_parser.cc.o.d"
  "/root/repo/src/dpi/tls_parser.cc" "src/dpi/CMakeFiles/liberate_dpi.dir/tls_parser.cc.o" "gcc" "src/dpi/CMakeFiles/liberate_dpi.dir/tls_parser.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/netsim/CMakeFiles/liberate_netsim.dir/DependInfo.cmake"
  "/root/repo/build/src/stack/CMakeFiles/liberate_stack.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/liberate_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
