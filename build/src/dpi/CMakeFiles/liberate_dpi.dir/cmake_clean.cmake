file(REMOVE_RECURSE
  "CMakeFiles/liberate_dpi.dir/classifier.cc.o"
  "CMakeFiles/liberate_dpi.dir/classifier.cc.o.d"
  "CMakeFiles/liberate_dpi.dir/http_parser.cc.o"
  "CMakeFiles/liberate_dpi.dir/http_parser.cc.o.d"
  "CMakeFiles/liberate_dpi.dir/middlebox.cc.o"
  "CMakeFiles/liberate_dpi.dir/middlebox.cc.o.d"
  "CMakeFiles/liberate_dpi.dir/normalizer.cc.o"
  "CMakeFiles/liberate_dpi.dir/normalizer.cc.o.d"
  "CMakeFiles/liberate_dpi.dir/profiles.cc.o"
  "CMakeFiles/liberate_dpi.dir/profiles.cc.o.d"
  "CMakeFiles/liberate_dpi.dir/rules.cc.o"
  "CMakeFiles/liberate_dpi.dir/rules.cc.o.d"
  "CMakeFiles/liberate_dpi.dir/stun_parser.cc.o"
  "CMakeFiles/liberate_dpi.dir/stun_parser.cc.o.d"
  "CMakeFiles/liberate_dpi.dir/tls_parser.cc.o"
  "CMakeFiles/liberate_dpi.dir/tls_parser.cc.o.d"
  "libliberate_dpi.a"
  "libliberate_dpi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/liberate_dpi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
