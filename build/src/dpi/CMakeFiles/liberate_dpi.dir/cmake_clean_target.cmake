file(REMOVE_RECURSE
  "libliberate_dpi.a"
)
