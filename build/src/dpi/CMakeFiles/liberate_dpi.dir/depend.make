# Empty dependencies file for liberate_dpi.
# This may be replaced when dependencies are built.
