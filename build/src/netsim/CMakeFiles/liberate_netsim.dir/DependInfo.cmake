
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/netsim/checksum.cc" "src/netsim/CMakeFiles/liberate_netsim.dir/checksum.cc.o" "gcc" "src/netsim/CMakeFiles/liberate_netsim.dir/checksum.cc.o.d"
  "/root/repo/src/netsim/icmp.cc" "src/netsim/CMakeFiles/liberate_netsim.dir/icmp.cc.o" "gcc" "src/netsim/CMakeFiles/liberate_netsim.dir/icmp.cc.o.d"
  "/root/repo/src/netsim/ipv4.cc" "src/netsim/CMakeFiles/liberate_netsim.dir/ipv4.cc.o" "gcc" "src/netsim/CMakeFiles/liberate_netsim.dir/ipv4.cc.o.d"
  "/root/repo/src/netsim/network.cc" "src/netsim/CMakeFiles/liberate_netsim.dir/network.cc.o" "gcc" "src/netsim/CMakeFiles/liberate_netsim.dir/network.cc.o.d"
  "/root/repo/src/netsim/packet.cc" "src/netsim/CMakeFiles/liberate_netsim.dir/packet.cc.o" "gcc" "src/netsim/CMakeFiles/liberate_netsim.dir/packet.cc.o.d"
  "/root/repo/src/netsim/tcp.cc" "src/netsim/CMakeFiles/liberate_netsim.dir/tcp.cc.o" "gcc" "src/netsim/CMakeFiles/liberate_netsim.dir/tcp.cc.o.d"
  "/root/repo/src/netsim/udp.cc" "src/netsim/CMakeFiles/liberate_netsim.dir/udp.cc.o" "gcc" "src/netsim/CMakeFiles/liberate_netsim.dir/udp.cc.o.d"
  "/root/repo/src/netsim/validation.cc" "src/netsim/CMakeFiles/liberate_netsim.dir/validation.cc.o" "gcc" "src/netsim/CMakeFiles/liberate_netsim.dir/validation.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/liberate_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
