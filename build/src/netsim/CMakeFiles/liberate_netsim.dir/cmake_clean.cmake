file(REMOVE_RECURSE
  "CMakeFiles/liberate_netsim.dir/checksum.cc.o"
  "CMakeFiles/liberate_netsim.dir/checksum.cc.o.d"
  "CMakeFiles/liberate_netsim.dir/icmp.cc.o"
  "CMakeFiles/liberate_netsim.dir/icmp.cc.o.d"
  "CMakeFiles/liberate_netsim.dir/ipv4.cc.o"
  "CMakeFiles/liberate_netsim.dir/ipv4.cc.o.d"
  "CMakeFiles/liberate_netsim.dir/network.cc.o"
  "CMakeFiles/liberate_netsim.dir/network.cc.o.d"
  "CMakeFiles/liberate_netsim.dir/packet.cc.o"
  "CMakeFiles/liberate_netsim.dir/packet.cc.o.d"
  "CMakeFiles/liberate_netsim.dir/tcp.cc.o"
  "CMakeFiles/liberate_netsim.dir/tcp.cc.o.d"
  "CMakeFiles/liberate_netsim.dir/udp.cc.o"
  "CMakeFiles/liberate_netsim.dir/udp.cc.o.d"
  "CMakeFiles/liberate_netsim.dir/validation.cc.o"
  "CMakeFiles/liberate_netsim.dir/validation.cc.o.d"
  "libliberate_netsim.a"
  "libliberate_netsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/liberate_netsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
