file(REMOVE_RECURSE
  "libliberate_netsim.a"
)
