# Empty dependencies file for liberate_netsim.
# This may be replaced when dependencies are built.
