
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/stack/host.cc" "src/stack/CMakeFiles/liberate_stack.dir/host.cc.o" "gcc" "src/stack/CMakeFiles/liberate_stack.dir/host.cc.o.d"
  "/root/repo/src/stack/ip_reassembly.cc" "src/stack/CMakeFiles/liberate_stack.dir/ip_reassembly.cc.o" "gcc" "src/stack/CMakeFiles/liberate_stack.dir/ip_reassembly.cc.o.d"
  "/root/repo/src/stack/os_profile.cc" "src/stack/CMakeFiles/liberate_stack.dir/os_profile.cc.o" "gcc" "src/stack/CMakeFiles/liberate_stack.dir/os_profile.cc.o.d"
  "/root/repo/src/stack/tcp_endpoint.cc" "src/stack/CMakeFiles/liberate_stack.dir/tcp_endpoint.cc.o" "gcc" "src/stack/CMakeFiles/liberate_stack.dir/tcp_endpoint.cc.o.d"
  "/root/repo/src/stack/udp_endpoint.cc" "src/stack/CMakeFiles/liberate_stack.dir/udp_endpoint.cc.o" "gcc" "src/stack/CMakeFiles/liberate_stack.dir/udp_endpoint.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/netsim/CMakeFiles/liberate_netsim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/liberate_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
