file(REMOVE_RECURSE
  "CMakeFiles/liberate_stack.dir/host.cc.o"
  "CMakeFiles/liberate_stack.dir/host.cc.o.d"
  "CMakeFiles/liberate_stack.dir/ip_reassembly.cc.o"
  "CMakeFiles/liberate_stack.dir/ip_reassembly.cc.o.d"
  "CMakeFiles/liberate_stack.dir/os_profile.cc.o"
  "CMakeFiles/liberate_stack.dir/os_profile.cc.o.d"
  "CMakeFiles/liberate_stack.dir/tcp_endpoint.cc.o"
  "CMakeFiles/liberate_stack.dir/tcp_endpoint.cc.o.d"
  "CMakeFiles/liberate_stack.dir/udp_endpoint.cc.o"
  "CMakeFiles/liberate_stack.dir/udp_endpoint.cc.o.d"
  "libliberate_stack.a"
  "libliberate_stack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/liberate_stack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
