file(REMOVE_RECURSE
  "libliberate_stack.a"
)
