# Empty dependencies file for liberate_stack.
# This may be replaced when dependencies are built.
