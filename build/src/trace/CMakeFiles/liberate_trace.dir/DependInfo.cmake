
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/trace/generators.cc" "src/trace/CMakeFiles/liberate_trace.dir/generators.cc.o" "gcc" "src/trace/CMakeFiles/liberate_trace.dir/generators.cc.o.d"
  "/root/repo/src/trace/pcap.cc" "src/trace/CMakeFiles/liberate_trace.dir/pcap.cc.o" "gcc" "src/trace/CMakeFiles/liberate_trace.dir/pcap.cc.o.d"
  "/root/repo/src/trace/trace.cc" "src/trace/CMakeFiles/liberate_trace.dir/trace.cc.o" "gcc" "src/trace/CMakeFiles/liberate_trace.dir/trace.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/liberate_util.dir/DependInfo.cmake"
  "/root/repo/build/src/dpi/CMakeFiles/liberate_dpi.dir/DependInfo.cmake"
  "/root/repo/build/src/stack/CMakeFiles/liberate_stack.dir/DependInfo.cmake"
  "/root/repo/build/src/netsim/CMakeFiles/liberate_netsim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
