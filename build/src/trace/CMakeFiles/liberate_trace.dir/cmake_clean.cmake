file(REMOVE_RECURSE
  "CMakeFiles/liberate_trace.dir/generators.cc.o"
  "CMakeFiles/liberate_trace.dir/generators.cc.o.d"
  "CMakeFiles/liberate_trace.dir/pcap.cc.o"
  "CMakeFiles/liberate_trace.dir/pcap.cc.o.d"
  "CMakeFiles/liberate_trace.dir/trace.cc.o"
  "CMakeFiles/liberate_trace.dir/trace.cc.o.d"
  "libliberate_trace.a"
  "libliberate_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/liberate_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
