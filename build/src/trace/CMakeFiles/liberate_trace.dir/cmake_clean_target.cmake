file(REMOVE_RECURSE
  "libliberate_trace.a"
)
