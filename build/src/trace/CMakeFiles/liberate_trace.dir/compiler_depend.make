# Empty compiler generated dependencies file for liberate_trace.
# This may be replaced when dependencies are built.
