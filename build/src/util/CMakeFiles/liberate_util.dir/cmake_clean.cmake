file(REMOVE_RECURSE
  "CMakeFiles/liberate_util.dir/bytes.cc.o"
  "CMakeFiles/liberate_util.dir/bytes.cc.o.d"
  "CMakeFiles/liberate_util.dir/strings.cc.o"
  "CMakeFiles/liberate_util.dir/strings.cc.o.d"
  "libliberate_util.a"
  "libliberate_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/liberate_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
