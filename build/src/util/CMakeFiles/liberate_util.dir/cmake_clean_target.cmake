file(REMOVE_RECURSE
  "libliberate_util.a"
)
