# Empty dependencies file for liberate_util.
# This may be replaced when dependencies are built.
