file(REMOVE_RECURSE
  "CMakeFiles/test_core.dir/core/adversarial_test.cc.o"
  "CMakeFiles/test_core.dir/core/adversarial_test.cc.o.d"
  "CMakeFiles/test_core.dir/core/bilateral_test.cc.o"
  "CMakeFiles/test_core.dir/core/bilateral_test.cc.o.d"
  "CMakeFiles/test_core.dir/core/blinding_test.cc.o"
  "CMakeFiles/test_core.dir/core/blinding_test.cc.o.d"
  "CMakeFiles/test_core.dir/core/characterization_test.cc.o"
  "CMakeFiles/test_core.dir/core/characterization_test.cc.o.d"
  "CMakeFiles/test_core.dir/core/evaluation_test.cc.o"
  "CMakeFiles/test_core.dir/core/evaluation_test.cc.o.d"
  "CMakeFiles/test_core.dir/core/liberate_test.cc.o"
  "CMakeFiles/test_core.dir/core/liberate_test.cc.o.d"
  "CMakeFiles/test_core.dir/core/replay_test.cc.o"
  "CMakeFiles/test_core.dir/core/replay_test.cc.o.d"
  "CMakeFiles/test_core.dir/core/report_io_test.cc.o"
  "CMakeFiles/test_core.dir/core/report_io_test.cc.o.d"
  "CMakeFiles/test_core.dir/core/shim_test.cc.o"
  "CMakeFiles/test_core.dir/core/shim_test.cc.o.d"
  "CMakeFiles/test_core.dir/core/technique_test.cc.o"
  "CMakeFiles/test_core.dir/core/technique_test.cc.o.d"
  "test_core"
  "test_core.pdb"
  "test_core[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
