
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/dpi/classifier_test.cc" "tests/CMakeFiles/test_dpi.dir/dpi/classifier_test.cc.o" "gcc" "tests/CMakeFiles/test_dpi.dir/dpi/classifier_test.cc.o.d"
  "/root/repo/tests/dpi/engine_edge_test.cc" "tests/CMakeFiles/test_dpi.dir/dpi/engine_edge_test.cc.o" "gcc" "tests/CMakeFiles/test_dpi.dir/dpi/engine_edge_test.cc.o.d"
  "/root/repo/tests/dpi/middlebox_test.cc" "tests/CMakeFiles/test_dpi.dir/dpi/middlebox_test.cc.o" "gcc" "tests/CMakeFiles/test_dpi.dir/dpi/middlebox_test.cc.o.d"
  "/root/repo/tests/dpi/normalizer_test.cc" "tests/CMakeFiles/test_dpi.dir/dpi/normalizer_test.cc.o" "gcc" "tests/CMakeFiles/test_dpi.dir/dpi/normalizer_test.cc.o.d"
  "/root/repo/tests/dpi/parser_fuzz_test.cc" "tests/CMakeFiles/test_dpi.dir/dpi/parser_fuzz_test.cc.o" "gcc" "tests/CMakeFiles/test_dpi.dir/dpi/parser_fuzz_test.cc.o.d"
  "/root/repo/tests/dpi/parsers_test.cc" "tests/CMakeFiles/test_dpi.dir/dpi/parsers_test.cc.o" "gcc" "tests/CMakeFiles/test_dpi.dir/dpi/parsers_test.cc.o.d"
  "/root/repo/tests/dpi/profiles_test.cc" "tests/CMakeFiles/test_dpi.dir/dpi/profiles_test.cc.o" "gcc" "tests/CMakeFiles/test_dpi.dir/dpi/profiles_test.cc.o.d"
  "/root/repo/tests/dpi/proxy_test.cc" "tests/CMakeFiles/test_dpi.dir/dpi/proxy_test.cc.o" "gcc" "tests/CMakeFiles/test_dpi.dir/dpi/proxy_test.cc.o.d"
  "/root/repo/tests/dpi/rules_test.cc" "tests/CMakeFiles/test_dpi.dir/dpi/rules_test.cc.o" "gcc" "tests/CMakeFiles/test_dpi.dir/dpi/rules_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/dpi/CMakeFiles/liberate_dpi.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/liberate_core.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/liberate_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/stack/CMakeFiles/liberate_stack.dir/DependInfo.cmake"
  "/root/repo/build/src/netsim/CMakeFiles/liberate_netsim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/liberate_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
