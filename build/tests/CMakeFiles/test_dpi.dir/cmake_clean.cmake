file(REMOVE_RECURSE
  "CMakeFiles/test_dpi.dir/dpi/classifier_test.cc.o"
  "CMakeFiles/test_dpi.dir/dpi/classifier_test.cc.o.d"
  "CMakeFiles/test_dpi.dir/dpi/engine_edge_test.cc.o"
  "CMakeFiles/test_dpi.dir/dpi/engine_edge_test.cc.o.d"
  "CMakeFiles/test_dpi.dir/dpi/middlebox_test.cc.o"
  "CMakeFiles/test_dpi.dir/dpi/middlebox_test.cc.o.d"
  "CMakeFiles/test_dpi.dir/dpi/normalizer_test.cc.o"
  "CMakeFiles/test_dpi.dir/dpi/normalizer_test.cc.o.d"
  "CMakeFiles/test_dpi.dir/dpi/parser_fuzz_test.cc.o"
  "CMakeFiles/test_dpi.dir/dpi/parser_fuzz_test.cc.o.d"
  "CMakeFiles/test_dpi.dir/dpi/parsers_test.cc.o"
  "CMakeFiles/test_dpi.dir/dpi/parsers_test.cc.o.d"
  "CMakeFiles/test_dpi.dir/dpi/profiles_test.cc.o"
  "CMakeFiles/test_dpi.dir/dpi/profiles_test.cc.o.d"
  "CMakeFiles/test_dpi.dir/dpi/proxy_test.cc.o"
  "CMakeFiles/test_dpi.dir/dpi/proxy_test.cc.o.d"
  "CMakeFiles/test_dpi.dir/dpi/rules_test.cc.o"
  "CMakeFiles/test_dpi.dir/dpi/rules_test.cc.o.d"
  "test_dpi"
  "test_dpi.pdb"
  "test_dpi[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dpi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
