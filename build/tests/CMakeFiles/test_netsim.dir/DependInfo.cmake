
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/netsim/checksum_test.cc" "tests/CMakeFiles/test_netsim.dir/netsim/checksum_test.cc.o" "gcc" "tests/CMakeFiles/test_netsim.dir/netsim/checksum_test.cc.o.d"
  "/root/repo/tests/netsim/element_io_test.cc" "tests/CMakeFiles/test_netsim.dir/netsim/element_io_test.cc.o" "gcc" "tests/CMakeFiles/test_netsim.dir/netsim/element_io_test.cc.o.d"
  "/root/repo/tests/netsim/event_loop_test.cc" "tests/CMakeFiles/test_netsim.dir/netsim/event_loop_test.cc.o" "gcc" "tests/CMakeFiles/test_netsim.dir/netsim/event_loop_test.cc.o.d"
  "/root/repo/tests/netsim/icmp_test.cc" "tests/CMakeFiles/test_netsim.dir/netsim/icmp_test.cc.o" "gcc" "tests/CMakeFiles/test_netsim.dir/netsim/icmp_test.cc.o.d"
  "/root/repo/tests/netsim/ipv4_test.cc" "tests/CMakeFiles/test_netsim.dir/netsim/ipv4_test.cc.o" "gcc" "tests/CMakeFiles/test_netsim.dir/netsim/ipv4_test.cc.o.d"
  "/root/repo/tests/netsim/network_test.cc" "tests/CMakeFiles/test_netsim.dir/netsim/network_test.cc.o" "gcc" "tests/CMakeFiles/test_netsim.dir/netsim/network_test.cc.o.d"
  "/root/repo/tests/netsim/packet_test.cc" "tests/CMakeFiles/test_netsim.dir/netsim/packet_test.cc.o" "gcc" "tests/CMakeFiles/test_netsim.dir/netsim/packet_test.cc.o.d"
  "/root/repo/tests/netsim/tcp_test.cc" "tests/CMakeFiles/test_netsim.dir/netsim/tcp_test.cc.o" "gcc" "tests/CMakeFiles/test_netsim.dir/netsim/tcp_test.cc.o.d"
  "/root/repo/tests/netsim/udp_test.cc" "tests/CMakeFiles/test_netsim.dir/netsim/udp_test.cc.o" "gcc" "tests/CMakeFiles/test_netsim.dir/netsim/udp_test.cc.o.d"
  "/root/repo/tests/netsim/validation_test.cc" "tests/CMakeFiles/test_netsim.dir/netsim/validation_test.cc.o" "gcc" "tests/CMakeFiles/test_netsim.dir/netsim/validation_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/netsim/CMakeFiles/liberate_netsim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/liberate_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
