file(REMOVE_RECURSE
  "CMakeFiles/test_netsim.dir/netsim/checksum_test.cc.o"
  "CMakeFiles/test_netsim.dir/netsim/checksum_test.cc.o.d"
  "CMakeFiles/test_netsim.dir/netsim/element_io_test.cc.o"
  "CMakeFiles/test_netsim.dir/netsim/element_io_test.cc.o.d"
  "CMakeFiles/test_netsim.dir/netsim/event_loop_test.cc.o"
  "CMakeFiles/test_netsim.dir/netsim/event_loop_test.cc.o.d"
  "CMakeFiles/test_netsim.dir/netsim/icmp_test.cc.o"
  "CMakeFiles/test_netsim.dir/netsim/icmp_test.cc.o.d"
  "CMakeFiles/test_netsim.dir/netsim/ipv4_test.cc.o"
  "CMakeFiles/test_netsim.dir/netsim/ipv4_test.cc.o.d"
  "CMakeFiles/test_netsim.dir/netsim/network_test.cc.o"
  "CMakeFiles/test_netsim.dir/netsim/network_test.cc.o.d"
  "CMakeFiles/test_netsim.dir/netsim/packet_test.cc.o"
  "CMakeFiles/test_netsim.dir/netsim/packet_test.cc.o.d"
  "CMakeFiles/test_netsim.dir/netsim/tcp_test.cc.o"
  "CMakeFiles/test_netsim.dir/netsim/tcp_test.cc.o.d"
  "CMakeFiles/test_netsim.dir/netsim/udp_test.cc.o"
  "CMakeFiles/test_netsim.dir/netsim/udp_test.cc.o.d"
  "CMakeFiles/test_netsim.dir/netsim/validation_test.cc.o"
  "CMakeFiles/test_netsim.dir/netsim/validation_test.cc.o.d"
  "test_netsim"
  "test_netsim.pdb"
  "test_netsim[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_netsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
