
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/stack/ip_reassembly_test.cc" "tests/CMakeFiles/test_stack.dir/stack/ip_reassembly_test.cc.o" "gcc" "tests/CMakeFiles/test_stack.dir/stack/ip_reassembly_test.cc.o.d"
  "/root/repo/tests/stack/os_profile_test.cc" "tests/CMakeFiles/test_stack.dir/stack/os_profile_test.cc.o" "gcc" "tests/CMakeFiles/test_stack.dir/stack/os_profile_test.cc.o.d"
  "/root/repo/tests/stack/tcp_endpoint_test.cc" "tests/CMakeFiles/test_stack.dir/stack/tcp_endpoint_test.cc.o" "gcc" "tests/CMakeFiles/test_stack.dir/stack/tcp_endpoint_test.cc.o.d"
  "/root/repo/tests/stack/tcp_stress_test.cc" "tests/CMakeFiles/test_stack.dir/stack/tcp_stress_test.cc.o" "gcc" "tests/CMakeFiles/test_stack.dir/stack/tcp_stress_test.cc.o.d"
  "/root/repo/tests/stack/udp_host_test.cc" "tests/CMakeFiles/test_stack.dir/stack/udp_host_test.cc.o" "gcc" "tests/CMakeFiles/test_stack.dir/stack/udp_host_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/stack/CMakeFiles/liberate_stack.dir/DependInfo.cmake"
  "/root/repo/build/src/netsim/CMakeFiles/liberate_netsim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/liberate_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
