file(REMOVE_RECURSE
  "CMakeFiles/test_stack.dir/stack/ip_reassembly_test.cc.o"
  "CMakeFiles/test_stack.dir/stack/ip_reassembly_test.cc.o.d"
  "CMakeFiles/test_stack.dir/stack/os_profile_test.cc.o"
  "CMakeFiles/test_stack.dir/stack/os_profile_test.cc.o.d"
  "CMakeFiles/test_stack.dir/stack/tcp_endpoint_test.cc.o"
  "CMakeFiles/test_stack.dir/stack/tcp_endpoint_test.cc.o.d"
  "CMakeFiles/test_stack.dir/stack/tcp_stress_test.cc.o"
  "CMakeFiles/test_stack.dir/stack/tcp_stress_test.cc.o.d"
  "CMakeFiles/test_stack.dir/stack/udp_host_test.cc.o"
  "CMakeFiles/test_stack.dir/stack/udp_host_test.cc.o.d"
  "test_stack"
  "test_stack.pdb"
  "test_stack[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_stack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
