// censorship_circumvention — lib·erate against a GFC-style censor.
//
// Shows the paper's §6.5 story end to end: a censored page dies with
// injected RSTs; lib·erate reverse-engineers the censor (keywords, hop
// distance, RST-flush behaviour), picks a unilateral technique, and the same
// page then loads through the deployed shim. Also demonstrates the
// time-of-day flushing trick (Fig. 4) and the endpoint-escalation hazard.
#include <cstdio>

#include "core/liberate.h"
#include "stack/host.h"
#include "trace/generators.h"
#include "util/strings.h"

using namespace liberate;

namespace {

/// Fetch a page from a censored host through `port`; returns bytes received
/// and whether the connection was reset.
struct FetchResult {
  std::size_t bytes = 0;
  bool reset = false;
};

FetchResult fetch(dpi::Environment& env, netsim::NetworkPort& port,
                  std::uint16_t client_port) {
  stack::Host client(port, netsim::ip_addr("10.0.0.1"),
                     stack::OsProfile::linux_profile());
  stack::Host server(env.net.server_port(), netsim::ip_addr("198.51.100.20"),
                     stack::OsProfile::linux_profile());
  env.net.attach_client(&client);
  env.net.attach_server(&server);

  server.tcp_listen(80, [](stack::TcpConnection& c) {
    c.on_data([&c](BytesView) {
      c.send(std::string_view("HTTP/1.1 200 OK\r\n\r\n"));
      Bytes article(20 * 1024, 'n');
      c.send(BytesView(article));
    });
  });

  FetchResult result;
  auto& conn = client.tcp_connect(netsim::ip_addr("198.51.100.20"), 80,
                                  client_port);
  conn.on_data([&](BytesView d) { result.bytes += d.size(); });
  conn.on_reset([&] { result.reset = true; });
  conn.on_established([&] {
    conn.send(std::string_view(
        "GET /china/article HTTP/1.1\r\nHost: www.economist.com\r\n\r\n"));
  });
  env.loop.run_for(netsim::minutes(2));
  env.net.attach_client(nullptr);
  env.net.attach_server(nullptr);
  return result;
}

}  // namespace

int main() {
  auto env = dpi::make_gfc();
  env->loop.run_until(netsim::hours(16));  // a busy-hours afternoon

  std::printf("=== without lib.erate ===\n");
  auto blocked = fetch(*env, env->net.client_port(), 50001);
  std::printf("fetched %zu bytes, connection reset: %s (the censor injected "
              "%llu RSTs)\n\n",
              blocked.bytes, blocked.reset ? "yes" : "no",
              static_cast<unsigned long long>(env->dpi->rsts_injected()));

  std::printf("=== lib.erate analysis ===\n");
  core::Liberate lib(*env);
  auto report = lib.analyze(trace::economist_trace());
  for (const auto& f : report.characterization.fields) {
    std::printf("censor matches on: \"%s\"\n",
                printable(BytesView(f.content), 40).c_str());
  }
  std::printf("censor is %d hops away; flushes flow state on RST; "
              "selected: %s\n\n",
              report.characterization.middlebox_hops.value_or(-1),
              report.selected_technique.value_or("(none)").c_str());

  std::printf("=== with lib.erate deployed ===\n");
  auto deployment = lib.deploy(report, env->net.client_port());
  if (deployment == nullptr) {
    std::printf("no working technique found\n");
    return 1;
  }
  auto freed = fetch(*env, deployment->port(), 50301);
  std::printf("fetched %zu bytes, connection reset: %s\n\n", freed.bytes,
              freed.reset ? "yes" : "no");

  std::printf("=== the escalation hazard (why probing uses fresh ports) ===\n");
  {
    auto env2 = dpi::make_gfc();
    core::ReplayRunner runner(*env2);
    auto t = trace::economist_trace();
    runner.run(t);
    runner.run(t);  // two classified flows to the same server:port...
    auto innocuous = trace::plain_web_trace();
    innocuous.server_port = t.server_port;
    auto out = runner.run(innocuous);
    std::printf("after two censored fetches, even innocuous content to the\n"
                "same server:port is blocked: %s\n\n",
                out.blocked ? "yes" : "no");
  }

  std::printf("=== the quiet-hours caveat (Fig. 4) ===\n");
  {
    for (std::uint64_t hour : {4ull, 16ull}) {
      auto env3 = dpi::make_gfc();
      env3->loop.run_until(netsim::hours(hour));
      core::ReplayRunner runner(*env3);
      core::CharacterizationOptions copts;
      copts.unique_port_per_round = true;
      copts.probe_ttl = false;
      auto r = characterize_classifier(runner, trace::economist_trace(), copts);
      core::EvasionEvaluator ev(runner, r);
      ev.mutable_context().pause_seconds = 130;
      core::PauseBeforeMatch pause;
      auto o = ev.evaluate_one(pause, trace::economist_trace());
      std::printf("connect-then-pause-130s at %02llu:00 evades: %s\n",
                  static_cast<unsigned long long>(hour),
                  o.evaded ? "yes" : "no");
    }
    std::printf("(busy hours flush idle censor state quickly; at night even\n"
                "240 s pauses fail — use a packet-level technique instead)\n");
  }
  return 0;
}
