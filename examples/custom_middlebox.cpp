// custom_middlebox — using the library against a middlebox YOU define.
//
// The paper's approach is deliberately general: lib·erate never hardcodes an
// operator, it probes mechanisms. This example builds a custom network with
// a hand-configured classifier (stream-reassembling, seq-validating,
// RST-flushing, port-8000-only, blocking a fictional "gamevoice" protocol),
// then lets lib·erate discover all of that from the outside and defeat it.
// It also shows the §7 masquerading extension.
#include <cstdio>

#include "core/liberate.h"
#include "core/masquerade.h"
#include "trace/generators.h"
#include "util/strings.h"

using namespace liberate;
using namespace liberate::core;

namespace {

std::unique_ptr<dpi::Environment> make_custom_network() {
  auto env = std::make_unique<dpi::Environment>();
  env->name = "custom-isp";
  env->signal = dpi::Environment::Signal::kBlocking;

  dpi::ClassifierConfig c;
  c.name = "custom-isp-dpi";
  c.validated_anomalies = netsim::ValidationPolicy::strict().checked;
  c.requires_syn = true;
  c.match_and_forget = true;
  c.mode = dpi::ClassifierConfig::Mode::kStream;
  c.stream_handles_out_of_order = false;  // the weakness we expect found
  c.packet_inspection_limit = 4;
  c.validate_tcp_seq = true;
  c.flush_flow_on_rst = true;
  c.only_ports = {8000};

  dpi::MatchRule rule;
  rule.name = "gamevoice";
  rule.traffic_class = "gamevoice";
  rule.keywords = {"GVOICE/1 JOIN room="};
  rule.anchored = true;

  dpi::MatchRule benign;
  benign.name = "benign-news";
  benign.traffic_class = "news";
  benign.keywords = {"news-decoy.example.net"};

  dpi::MiddleboxConfig mc;
  mc.classifier = c;
  mc.rules = {rule, benign};
  dpi::PolicyAction block;
  block.block = true;
  mc.actions["gamevoice"] = block;

  env->net.emplace<netsim::RouterHop>(netsim::ip_addr("10.7.0.1"));
  env->net.emplace<netsim::RouterHop>(netsim::ip_addr("10.7.0.2"));
  env->pre_middlebox_tap =
      &env->net.emplace<netsim::TapElement>("pre-dpi");
  env->dpi = &env->net.emplace<dpi::DpiMiddlebox>(mc);
  env->net.emplace<netsim::RouterHop>(netsim::ip_addr("10.7.0.3"));
  env->hops_before_middlebox = 2;
  env->total_router_hops = 3;
  return env;
}

trace::ApplicationTrace gamevoice_trace() {
  trace::ApplicationTrace t;
  t.app_name = "GameVoice";
  t.transport = trace::Transport::kTcp;
  t.server_port = 8000;
  trace::Message join;
  join.sender = trace::Sender::kClient;
  join.payload = to_bytes("GVOICE/1 JOIN room=alpha nick=player1\n");
  t.messages.push_back(join);
  trace::Message ok;
  ok.sender = trace::Sender::kServer;
  ok.payload = to_bytes("GVOICE/1 OK motd=welcome\n");
  t.messages.push_back(ok);
  for (int i = 0; i < 6; ++i) {
    trace::Message voice;
    voice.sender = i % 2 == 0 ? trace::Sender::kClient : trace::Sender::kServer;
    voice.payload = Bytes(400, static_cast<std::uint8_t>(0x30 + i));
    voice.gap_us = 20000;
    t.messages.push_back(voice);
  }
  return t;
}

}  // namespace

int main() {
  auto env = make_custom_network();
  Liberate lib(*env);

  std::printf("=== discovering a classifier we defined ourselves ===\n");
  auto report = lib.analyze(gamevoice_trace());
  std::printf("differentiation: %s, content-based: %s\n",
              report.detection.differentiation ? "yes" : "no",
              report.detection.content_based ? "yes" : "no");
  for (const auto& f : report.characterization.fields) {
    std::printf("found matching field: \"%s\"\n",
                printable(BytesView(f.content), 44).c_str());
  }
  std::printf("position-sensitive: %s   packet-limit: %s   port-sensitive: "
              "%s\nmiddlebox hops: %d (we built it 3 hops out)\n",
              report.characterization.position_sensitive ? "yes" : "no",
              report.characterization.packet_limit
                  ? std::to_string(*report.characterization.packet_limit)
                        .c_str()
                  : "-",
              report.characterization.port_sensitive ? "yes" : "no",
              report.characterization.middlebox_hops.value_or(-1));
  std::printf("selected technique: %s\n\n",
              report.selected_technique.value_or("(none)").c_str());

  std::printf("=== §7 extension: masquerading ===\n");
  // The inverse problem: make PLAIN web traffic look like a favorably
  // treated class (e.g. one the operator zero-rates). A TTL-limited bait
  // packet carrying a valid "news" request re-labels the whole flow.
  {
    auto env2 = make_custom_network();
    ReplayRunner runner(*env2);
    Masquerade masq(InertVariant::kLowTtl,
                    to_bytes("GET /feed HTTP/1.1\r\n"
                             "Host: news-decoy.example.net\r\n\r\n"));
    ReplayOptions opts;
    opts.technique = &masq;
    opts.context.middlebox_ttl = 3;
    auto plain = trace::plain_web_trace();
    plain.server_port = 8000;
    auto out = runner.run(plain, opts);
    std::printf("plain flow now classified as: %s (completed=%s)\n",
                out.classifications.empty()
                    ? "(none)"
                    : out.classifications.front().traffic_class.c_str(),
                out.completed ? "yes" : "no");
    std::printf("\"users may want to masquerade as a type of differentiated\n"
                "traffic (e.g., if it is zero rated)\" — §7\n");
  }
  return 0;
}
