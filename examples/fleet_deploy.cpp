// fleet_deploy — the deployment control plane end to end: characterize once,
// deploy the cheapest evasion to a sharded fleet of live flows, ride out an
// adversarial path, detect the classifier countermeasure when it lands, and
// re-adapt incrementally from the fingerprint cache instead of re-running
// the full analysis.
//
// Every FLEET line is a pure function of the options (simulated clock,
// seeded randomness), so the output diffs clean across runs, worker counts,
// and observability levels.
#include <cstdio>

#include "deploy/fleet.h"
#include "dpi/normalizer.h"
#include "trace/generators.h"

using namespace liberate;
using namespace liberate::deploy;

int main() {
  ClassifierFingerprintCache cache;

  FleetOptions opts;
  opts.shards = 4;
  opts.flows_per_wave = 8;
  opts.waves = 6;
  opts.faults = netsim::FaultPolicy::reorder_heavy();
  opts.cache = &cache;
  // Wave 3: the operator deploys a normalizer that reassembles IP fragments
  // in front of the classifier — the deployed fragment-based technique dies,
  // but the rule set (and so the cached fingerprint) is unchanged.
  opts.change_at_wave = 3;
  opts.classifier_change = [](dpi::Environment& env) {
    dpi::NormalizerConfig cfg;
    cfg.reassemble_fragments = true;
    env.net.emplace_at<dpi::NormalizerElement>(0, cfg);
  };

  FleetEngine engine(opts);
  FleetReport report = engine.run(trace::amazon_video_trace(8 * 1024));
  std::printf("%s", report.summary().c_str());

  // A second deployment against the same classifier rides the warm cache:
  // no analysis rounds at all before the first wave of traffic.
  FleetOptions again = opts;
  again.waves = 2;
  again.change_at_wave = static_cast<std::size_t>(-1);
  again.classifier_change = nullptr;
  FleetReport warm = FleetEngine(again).run(trace::amazon_video_trace(8 * 1024));
  std::printf("FLEET warm-redeploy from-cache=%d analysis-rounds=%d "
              "technique=%s\n",
              warm.initial_from_cache ? 1 : 0, warm.initial_analysis_rounds,
              warm.technique_initial.c_str());
  return 0;
}
