// fleet_deploy — the deployment control plane end to end: characterize once,
// deploy the cheapest evasion to a sharded fleet of live flows, ride out an
// adversarial path, detect the classifier countermeasure when it lands, and
// re-adapt incrementally from the fingerprint cache instead of re-running
// the full analysis.
//
// Every FLEET line is a pure function of the options (simulated clock,
// seeded randomness), so the output diffs clean across runs, worker counts,
// and observability levels.
//
// `--serve PORT` (instrumented builds only) starts the ObsServer scrape
// endpoint before the soak and keeps the process alive `--linger-ms N`
// milliseconds after the summary, so an external poller can hit /metrics,
// /profile, /timeseries.json, and /healthz mid-run — the CI scrape-smoke
// step drives exactly this. Neither flag changes any FLEET line.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <thread>

#include "deploy/fleet.h"
#include "dpi/classifier.h"
#include "dpi/normalizer.h"
#include "dpi/profiles.h"
#include "obs/level.h"
#include "trace/generators.h"

#if LIBERATE_OBS_LEVEL >= LIBERATE_OBS_LEVEL_METRICS
#include "obs/serve/obs_server.h"
#endif

using namespace liberate;
using namespace liberate::deploy;

int main(int argc, char** argv) {
  int serve_port = -1;
  int linger_ms = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--serve") == 0 && i + 1 < argc) {
      serve_port = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--linger-ms") == 0 && i + 1 < argc) {
      linger_ms = std::atoi(argv[++i]);
    }
  }

#if LIBERATE_OBS_LEVEL >= LIBERATE_OBS_LEVEL_METRICS
  obs::serve::ObsServer server(obs::serve::ObsServerOptions{
      static_cast<std::uint16_t>(serve_port > 0 ? serve_port : 0)});
  if (serve_port >= 0) {
    if (server.start()) {
      std::fprintf(stderr, "serving http://127.0.0.1:%u\n",
                   static_cast<unsigned>(server.port()));
    } else {
      std::fprintf(stderr, "obs server failed: %s\n",
                   server.last_error().c_str());
    }
  }
#else
  if (serve_port >= 0) {
    std::fprintf(stderr, "obs compiled out (level 0); --serve ignored\n");
  }
#endif

  ClassifierFingerprintCache cache;

  FleetOptions opts;
  opts.shards = 4;
  opts.flows_per_wave = 8;
  opts.waves = 6;
  opts.faults = netsim::FaultPolicy::reorder_heavy();
  opts.cache = &cache;
  // Probe the classifier's ambiguity digest at deploy time and on every
  // readapt (FLEET fingerprint line; docs/fingerprinting.md).
  opts.ambiguity_probes = true;
  // Wave 3: the operator deploys a normalizer that reassembles IP fragments
  // in front of the classifier — the deployed fragment-based technique dies,
  // but the rule set (and so the cached fingerprint) is unchanged.
  opts.change_at_wave = 3;
  opts.classifier_change = [](dpi::Environment& env) {
    dpi::NormalizerConfig cfg;
    cfg.reassemble_fragments = true;
    env.net.emplace_at<dpi::NormalizerElement>(0, cfg);
  };

  FleetEngine engine(opts);
  FleetReport report = engine.run(trace::amazon_video_trace(8 * 1024));
  std::printf("%s", report.summary().c_str());

  // A second deployment against the same classifier rides the warm cache:
  // no analysis rounds at all before the first wave of traffic.
  FleetOptions again = opts;
  again.waves = 2;
  again.change_at_wave = static_cast<std::size_t>(-1);
  again.classifier_change = nullptr;
  FleetReport warm = FleetEngine(again).run(trace::amazon_video_trace(8 * 1024));
  std::printf("FLEET warm-redeploy from-cache=%d analysis-rounds=%d "
              "technique=%s\n",
              warm.initial_from_cache ? 1 : 0, warm.initial_analysis_rounds,
              warm.technique_initial.c_str());

  // Act 3: fingerprint a different classifier implementation (the
  // nDPI-style profile) once, then swap the testbed's live classifier to
  // that engine behind a reassembling normalizer mid-soak: reassembly kills
  // the deployed fragment-reorder technique. Drift fires, and the readapt
  // ladder resolves at the fingerprint-verify stage — the probed digest
  // nearest-matches the cached ndpi entry (the normalizer only perturbs the
  // frag-overlap dimension), so the fleet adopts that ranking after a couple
  // of verification rounds instead of walking field verification plus the
  // stale testbed ranking.
  FleetOptions learn = opts;
  learn.environment = "ndpi";
  learn.waves = 1;
  learn.change_at_wave = static_cast<std::size_t>(-1);
  learn.classifier_change = nullptr;
  FleetReport learned = FleetEngine(learn).run(trace::amazon_video_trace(8 * 1024));
  std::printf("FLEET learned env=ndpi digest=%s\n",
              learned.fingerprint_digest.c_str());

  FleetOptions swap = opts;
  swap.change_at_wave = 2;
  swap.ambiguity_max_distance = 8;  // tolerate the frag-dimension delta
  swap.classifier_change = [](dpi::Environment& env) {
    dpi::NormalizerConfig cfg;
    cfg.reassemble_fragments = true;
    env.net.emplace_at<dpi::NormalizerElement>(0, cfg);
    env.dpi->engine().set_config(dpi::ambiguity_profile_config("ndpi"));
  };
  FleetReport swapped = FleetEngine(swap).run(trace::amazon_video_trace(8 * 1024));
  std::printf("%s", swapped.summary().c_str());
  std::fflush(stdout);

  if (linger_ms > 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(linger_ms));
  }
  return 0;
}
