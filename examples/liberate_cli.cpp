// liberate_cli — a command-line driver for the whole library.
//
//   liberate_cli <network> <application>
//   liberate_cli --list
//
// networks:     testbed | tmus | gfc | iran | att | sprint
// applications: video | music | youtube | nbcsports | economist | facebook
//               | skype | plain
//
// Runs the four-phase pipeline against the chosen simulated network and
// prints a machine-greppable report, including the per-phase cost and a
// pcap of the evasion round's wire traffic (written next to the binary).
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>

#include "core/liberate.h"
#include "trace/generators.h"
#include "trace/pcap.h"
#include "util/strings.h"

using namespace liberate;

namespace {

trace::ApplicationTrace app_by_name(const std::string& name) {
  if (name == "video") return trace::amazon_video_trace(128 * 1024);
  if (name == "music") return trace::spotify_trace(64 * 1024);
  if (name == "youtube") return trace::youtube_tls_trace(128 * 1024);
  if (name == "nbcsports") return trace::nbcsports_trace(1024 * 1024);
  if (name == "economist") return trace::economist_trace();
  if (name == "facebook") return trace::facebook_trace();
  if (name == "skype") return trace::make_skype_trace({});
  if (name == "plain") return trace::plain_web_trace();
  return {};
}

int usage() {
  std::fprintf(stderr,
               "usage: liberate_cli <network> <application>\n"
               "       liberate_cli --list\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc == 2 && std::strcmp(argv[1], "--list") == 0) {
    std::printf("networks:");
    for (const auto& n : dpi::environment_names()) {
      std::printf(" %s", n.c_str());
    }
    std::printf(
        "\napplications: video music youtube nbcsports economist facebook "
        "skype plain\n");
    return 0;
  }
  if (argc != 3) return usage();

  auto env = dpi::make_environment(argv[1]);
  if (env == nullptr) {
    std::fprintf(stderr, "unknown network '%s'\n", argv[1]);
    return usage();
  }
  auto app = app_by_name(argv[2]);
  if (app.app_name.empty()) {
    std::fprintf(stderr, "unknown application '%s'\n", argv[2]);
    return usage();
  }

  env->loop.run_until(netsim::hours(16));  // afternoon, busy hours
  core::Liberate lib(*env);

  std::printf("network=%s application=%s trace_bytes=%zu\n", argv[1], argv[2],
              app.total_bytes());
  auto report = lib.analyze(app);

  std::printf("differentiation=%s content_based=%s\n",
              report.detection.differentiation ? "yes" : "no",
              report.detection.content_based ? "yes" : "no");
  if (!report.ran_characterization) {
    std::printf("verdict=no-content-based-differentiation\n");
    return 0;
  }

  const auto& c = report.characterization;
  for (const auto& f : c.fields) {
    std::printf("matching_field msg=%zu off=%zu bytes=%zu content=\"%s\"\n",
                f.message_index, f.offset, f.length,
                printable(BytesView(f.content), 60).c_str());
  }
  std::printf(
      "position_sensitive=%s packet_limit=%s inspects_all=%s "
      "port_sensitive=%s middlebox_hops=%d\n",
      c.position_sensitive ? "yes" : "no",
      c.packet_limit ? std::to_string(*c.packet_limit).c_str() : "-",
      c.inspects_all_packets ? "yes" : "no", c.port_sensitive ? "yes" : "no",
      c.middlebox_hops.value_or(-1));

  int evaded = 0;
  for (const auto& o : report.evaluation.outcomes) {
    if (o.pruned) continue;
    std::printf("technique name=%s evaded=%s reaches_server=%s\n",
                o.technique.c_str(), o.evaded ? "yes" : "no",
                o.crafted_reached_server ? "yes" : "no");
    if (o.evaded) ++evaded;
  }
  std::printf("working_techniques=%d selected=%s\n", evaded,
              report.selected_technique.value_or("(none)").c_str());
  std::printf("cost rounds=%d bytes=%llu virtual_minutes=%.1f\n",
              report.total_rounds,
              static_cast<unsigned long long>(report.total_bytes),
              report.total_virtual_minutes);

  // Capture one evaded exchange as a pcap for wireshark/tcpdump inspection.
  if (report.selected_technique && env->pre_middlebox_tap != nullptr) {
    env->pre_middlebox_tap->clear();
    core::ReplayRunner& runner = lib.runner();
    auto suite = core::build_full_suite();
    for (auto& t : suite) {
      if (t->name() != *report.selected_technique) continue;
      core::ReplayOptions opts;
      opts.technique = t.get();
      opts.context.matching_snippets = c.snippets();
      opts.context.decoy_payload = core::decoy_request_payload();
      if (c.middlebox_hops) {
        opts.context.middlebox_ttl = static_cast<std::uint8_t>(*c.middlebox_hops);
      }
      if (!c.port_sensitive) opts.server_port_override = 36000;
      (void)runner.run(app, opts);
      Bytes pcap = trace::tap_to_pcap(*env->pre_middlebox_tap);
      // Artifacts go under examples/out/ (gitignored), never the repo root.
      std::filesystem::create_directories("examples/out");
      std::string path = std::string("examples/out/liberate_") + argv[1] +
                         "_" + argv[2] + "_evasion.pcap";
      std::ofstream out(path, std::ios::binary);
      out.write(reinterpret_cast<const char*>(pcap.data()),
                static_cast<std::streamsize>(pcap.size()));
      std::printf("pcap=%s packets=%zu\n", path.c_str(),
                  env->pre_middlebox_tap->seen().size());
      break;
    }
  }
  return 0;
}
