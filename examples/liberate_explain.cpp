// liberate_explain — replay a scenario and explain a flow's verdict from the
// provenance flight recorder.
//
//   liberate_explain [network] [application]     (default: testbed skype)
//
// Runs the full analysis pipeline, then two focused replay rounds — one
// plain, one with the selected evasion technique — and prints, for each
// flow, the recorder's causal chain: which rules the classifier tried, the
// byte offsets that matched, the verdict and middlebox action, and (for the
// evasion round) the mutation lineage of every crafted packet. Also exports:
//
//   examples/out/<net>_<app>_trace.json     Chrome trace-event JSON
//                                           (open in chrome://tracing)
//   examples/out/<net>_<app>_annotated.pcapng
//                                           wire capture with per-packet
//                                           provenance comments (Wireshark
//                                           shows them in the packet list)
//
// Output lines are machine-splittable by prefix: ANALYSIS is the analysis
// report alone and is byte-identical across LIBERATE_OBS_LEVEL settings;
// EXPLAIN-JSON carries the structured explanation (empty-ish at level 0,
// where the instrumentation compiles to nothing).
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>

#include "core/liberate.h"
#include "core/report_io.h"
#include "obs/provenance/chrome_trace.h"
#include "obs/provenance/explain.h"
#include "obs/snapshot.h"
#include "trace/generators.h"
#include "trace/pcapng.h"

using namespace liberate;

namespace {

trace::ApplicationTrace app_by_name(const std::string& name) {
  if (name == "video") return trace::amazon_video_trace(128 * 1024);
  if (name == "music") return trace::spotify_trace(64 * 1024);
  if (name == "youtube") return trace::youtube_tls_trace(128 * 1024);
  if (name == "nbcsports") return trace::nbcsports_trace(1024 * 1024);
  if (name == "economist") return trace::economist_trace();
  if (name == "facebook") return trace::facebook_trace();
  if (name == "skype") return trace::make_skype_trace({});
  if (name == "plain") return trace::plain_web_trace();
  return {};
}

obs::prov::FlowKey key_of(const netsim::FiveTuple& t) {
  return obs::prov::flow_key(t.src_ip, t.src_port, t.dst_ip, t.dst_port,
                             t.protocol);
}

/// Per-packet pcapng comment: the packet's lineage as recorded. At obs
/// level 0 the recorder is empty and the comment degrades to the digest.
std::string comment_for(const obs::prov::ProvenanceRecorder& rec,
                        BytesView datagram) {
  const std::uint64_t id = obs::prov::packet_id(datagram);
  std::string c = "pkt " + obs::prov::id_hex(id);
  if (auto n = rec.node(id)) {
    c += " (" + n->kind + ", " + std::to_string(n->size) + "B)";
  }
  for (const obs::prov::EdgeInfo& e : rec.parents_of(id)) {
    c += "; " + e.kind + " of " + obs::prov::id_hex(e.parent) + " by " +
         e.actor;
    if (!e.detail.empty()) c += " [" + e.detail + "]";
  }
  return c;
}

void explain_and_print(const char* label, const obs::prov::FlowKey& flow) {
  obs::prov::Explanation ex = obs::prov::explain_verdict(flow);
  std::printf("---- %s ----\n%s", label, ex.text.c_str());
  std::printf("EXPLAIN-JSON %s\n", ex.json.c_str());
}

int usage() {
  std::fprintf(stderr, "usage: liberate_explain [network] [application]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string network = argc > 1 ? argv[1] : "testbed";
  const std::string application = argc > 2 ? argv[2] : "skype";
  if (argc > 3) return usage();

  obs::reset_all();
  auto env = dpi::make_environment(network);
  if (env == nullptr) {
    std::fprintf(stderr, "unknown network '%s'\n", network.c_str());
    return usage();
  }
  auto app = app_by_name(application);
  if (app.app_name.empty()) {
    std::fprintf(stderr, "unknown application '%s'\n", application.c_str());
    return usage();
  }

  env->loop.run_until(netsim::hours(16));  // afternoon, busy hours
  core::Liberate lib(*env);
  auto report = lib.analyze(app);

  // Deterministic across obs levels: the recorder never feeds back into
  // analysis. CI diffs this line between level-0 and level-2 builds.
  std::printf("ANALYSIS %s\n", core::analysis_report_json(report).c_str());

  core::ReplayRunner& runner = lib.runner();
  std::vector<trace::PcapngRecord> capture;
  const auto& rec = obs::prov::ProvenanceRecorder::instance();

  auto tap_into_capture = [&] {
    if (env->pre_middlebox_tap == nullptr) return;
    for (const netsim::TapElement::Seen& s : env->pre_middlebox_tap->seen()) {
      capture.push_back({s.at, Bytes(s.datagram.begin(), s.datagram.end()),
                         comment_for(rec, s.datagram)});
    }
    env->pre_middlebox_tap->clear();
  };

  // Round 1: plain replay. The explanation names the rule that classified
  // the flow and the byte offsets its keywords matched at.
  if (env->pre_middlebox_tap != nullptr) env->pre_middlebox_tap->clear();
  core::ReplayOutcome plain = runner.run(app);
  tap_into_capture();
  explain_and_print("plain replay", key_of(plain.flow));

  // Round 2: replay through a working evasion technique. The explanation
  // shows the mutation lineage — which packets were split/injected, from
  // which parent, by which technique. Prefer techniques that craft packets
  // (splits, then insertions) from the evaded set, since those have
  // parent->child lineage; fall back to whatever the pipeline selected.
  std::string pick = report.selected_technique.value_or("");
  for (const char* prefix : {"split/", "inert/"}) {
    bool found = false;
    for (const auto& o : report.evaluation.outcomes) {
      if (o.evaded && o.technique.rfind(prefix, 0) == 0) {
        pick = o.technique;
        found = true;
        break;
      }
    }
    if (found) break;
  }
  if (!pick.empty() && report.ran_characterization) {
    const auto& c = report.characterization;
    for (auto& t : core::build_full_suite()) {
      if (t->name() != pick) continue;
      core::ReplayOptions opts;
      opts.technique = t.get();
      opts.context.matching_snippets = c.snippets();
      opts.context.decoy_payload = core::decoy_request_payload();
      if (c.middlebox_hops) {
        opts.context.middlebox_ttl =
            static_cast<std::uint8_t>(*c.middlebox_hops);
      }
      if (!c.port_sensitive) opts.server_port_override = 36000;
      core::ReplayOutcome evaded = runner.run(app, opts);
      tap_into_capture();
      std::printf("technique=%s evaded=%s\n", t->name().c_str(),
                  evaded.blocked || !evaded.completed ? "no" : "yes");
      explain_and_print("evasion replay", key_of(evaded.flow));
      break;
    }
  } else {
    std::printf("no evasion technique selected; skipping evasion replay\n");
  }

  // Export artifacts under examples/out/ (gitignored), never the repo root.
  std::filesystem::create_directories("examples/out");
  const std::string stem =
      std::string("examples/out/") + network + "_" + application;

  obs::Snapshot snap = obs::capture();
  {
    std::ofstream out(stem + "_trace.json", std::ios::binary);
    const std::string json = obs::prov::to_chrome_trace_json(snap);
    out.write(json.data(), static_cast<std::streamsize>(json.size()));
    std::printf("chrome-trace=%s_trace.json events_bytes=%zu\n", stem.c_str(),
                json.size());
  }
  {
    Bytes pcapng = trace::write_pcapng(capture);
    std::ofstream out(stem + "_annotated.pcapng", std::ios::binary);
    out.write(reinterpret_cast<const char*>(pcapng.data()),
              static_cast<std::streamsize>(pcapng.size()));
    std::printf("pcapng=%s_annotated.pcapng packets=%zu\n", stem.c_str(),
                capture.size());
  }
  std::printf(
      "provenance nodes=%zu edges=%zu flows=%zu records=%llu (obs level %d)\n",
      snap.provenance.nodes.size(), snap.provenance.edges.size(),
      snap.provenance.ledgers.size(),
      static_cast<unsigned long long>(snap.provenance.total_records),
      LIBERATE_OBS_LEVEL);
  return 0;
}
