// liberate_profile — continuous-profiling walkthrough: where do the rounds,
// packets, and match ops of an analysis actually go?
//
// Runs the parallel analysis pipeline for a generated trace, then prints:
//
//   ANALYSIS {...}       — the analysis result. Deterministic and
//                          byte-identical across observability levels,
//                          pool sizes, and match backends (CI diffs it
//                          between obs-level-0 and obs-level-2 builds).
//   PROFILE <stack> <n>  — collapsed-stack lines (self sim-clock us) from
//                          the span-fed hierarchical profiler; pipe the
//                          PROFILE lines (prefix stripped) into
//                          flamegraph.pl for an interactive flame graph.
//   COST phase=...       — the cost ledger's phase × kind matrix: rounds /
//                          probes / mutated packets / match ops attributed
//                          to detection, blinding, characterization,
//                          evaluation, readapt, fleet.
//
// PROFILE/COST lines only exist on instrumented builds; at obs level 0 the
// profiler and ledger are compiled away and only ANALYSIS is printed.
//
// Usage: liberate_profile [environment] [app]   (defaults: testbed skype)
#include <cstdio>
#include <string>

#include "core/parallel_analysis.h"
#include "core/report_io.h"
#include "core/round_scheduler.h"
#include "obs/level.h"
#include "trace/generators.h"

#if LIBERATE_OBS_LEVEL >= LIBERATE_OBS_LEVEL_METRICS
#include "obs/snapshot.h"
#endif

using namespace liberate;
using namespace liberate::core;

int main(int argc, char** argv) {
  const std::string environment = argc > 1 ? argv[1] : "testbed";
  const std::string app = argc > 2 ? argv[2] : "skype";

#if LIBERATE_OBS_LEVEL >= LIBERATE_OBS_LEVEL_METRICS
  obs::reset_all();  // profile/ledger reflect this run only
#endif

  trace::ApplicationTrace trace = app == "amazon"
                                      ? trace::amazon_video_trace(16 * 1024)
                                      : trace::make_skype_trace({});

  WorldSpec spec;
  spec.environment = environment;
  RoundScheduler scheduler(spec, {.workers = 2, .cache_capacity = 8192});
  SessionReport report = analyze_parallel(scheduler, trace);

  std::printf("ANALYSIS %s\n", analysis_report_json(report).c_str());

#if LIBERATE_OBS_LEVEL >= LIBERATE_OBS_LEVEL_FULL
  // Collapsed stacks, deterministic (self sim-clock us): run
  //   ./liberate_profile | sed -n 's/^PROFILE //p' > stacks.collapsed
  //   flamegraph.pl stacks.collapsed > flame.svg
  const obs::prof::ProfileSnapshot prof =
      obs::prof::Profiler::instance().snapshot();
  std::string collapsed = obs::prof::profile_collapsed(
      prof, obs::prof::CollapsedMetric::kSelfSimUs);
  std::size_t pos = 0;
  while (pos < collapsed.size()) {
    std::size_t end = collapsed.find('\n', pos);
    if (end == std::string::npos) end = collapsed.size();
    std::printf("PROFILE %s\n", collapsed.substr(pos, end - pos).c_str());
    pos = end + 1;
  }
  std::printf("PROFILE.JSON %s\n",
              obs::prof::profile_to_json(prof, /*include_wall=*/false).c_str());
#endif

#if LIBERATE_OBS_LEVEL >= LIBERATE_OBS_LEVEL_METRICS
  const obs::CostLedgerSnapshot cost = obs::CostLedger::instance().snapshot();
  for (std::size_t p = 0; p < obs::kCostPhases; ++p) {
    const auto phase = static_cast<obs::CostPhase>(p);
    if (cost.phase_total(phase) == 0) continue;
    std::printf("COST phase=%s", obs::cost_phase_name(phase));
    for (std::size_t k = 0; k < obs::kCostKinds; ++k) {
      const auto kind = static_cast<obs::CostKind>(k);
      std::printf(" %s=%llu", obs::cost_kind_name(kind),
                  static_cast<unsigned long long>(cost.at(phase, kind)));
    }
    std::printf("\n");
  }
#endif
  return 0;
}
