// liberate_top — a live per-shard fleet dashboard over the telemetry hub.
//
// Runs a fleet soak with an adversarial path and a scripted mid-soak
// classifier countermeasure, and renders a "TOP"-prefixed dashboard from
// the FleetEngine's on_wave hook after every wave: per-shard verdict mix
// and latency, a sparkline of each shard's differentiation-rate series
// (obs/timeseries.h), HDR latency quantiles (obs/hdr_histogram.h), and the
// anomaly flags that corroborate the drift monitor.
//
// Everything is driven by the simulated clock, so TOP output is
// deterministic for a given build. The FLEET summary printed at the end is
// additionally byte-identical across observability levels and worker
// counts — CI diffs it between an obs-level-0 and an obs-level-2 build.
#include <algorithm>
#include <cstdio>
#include <string>

#include "deploy/fleet.h"
#include "dpi/normalizer.h"
#include "obs/level.h"
#include "trace/generators.h"

#if LIBERATE_OBS_LEVEL >= LIBERATE_OBS_LEVEL_METRICS
#include "obs/metrics.h"
#include "obs/timeseries.h"
#endif

using namespace liberate;
using namespace liberate::deploy;

namespace {

#if LIBERATE_OBS_LEVEL >= LIBERATE_OBS_LEVEL_METRICS
/// Eight-level sparkline over one series' ring (oldest left), scaled to
/// [0, max] so a flat-zero series renders as a flat floor.
std::string sparkline(const std::string& name, int shard) {
  static const char* kBars[] = {"▁", "▂", "▃", "▄", "▅", "▆", "▇", "█"};
  const obs::TimeSeriesSnapshot snap =
      obs::TimeSeriesStore::instance().snapshot(name);
  for (const obs::SeriesSnapshot& s : snap.series) {
    if (s.key.name != name || s.key.shard != shard) continue;
    double hi = 0;
    for (const obs::SeriesPoint& p : s.points) hi = std::max(hi, p.value);
    std::string out;
    for (const obs::SeriesPoint& p : s.points) {
      const double norm = hi > 0 ? p.value / hi : 0.0;
      int level = static_cast<int>(norm * 7.0 + 0.5);
      if (level < 0) level = 0;
      if (level > 7) level = 7;
      out += kBars[level];
    }
    return out;
  }
  return "";
}
#endif

void render_wave(const FleetWaveReport& w) {
  std::printf("TOP wave=%zu state=%s technique=%s flows=%zu lat_us=%.0f\n",
              w.wave, deploy_state_name(w.state_after),
              w.technique_after.empty() ? "(none)" : w.technique_after.c_str(),
              w.stats.flows, w.stats.mean_latency_us());
  for (std::size_t i = 0; i < w.shard_stats.size(); ++i) {
    const WaveStats& s = w.shard_stats[i];
#if LIBERATE_OBS_LEVEL >= LIBERATE_OBS_LEVEL_METRICS
    const std::string spark = sparkline("fleet.diff_rate", static_cast<int>(i));
#else
    const std::string spark = "(obs off)";
#endif
    std::printf(
        "TOP   shard=%zu diff=%.3f blocked=%.3f incomplete=%.3f lat_us=%.0f "
        "%s\n",
        i, s.differentiated_rate(), s.blocked_rate(), s.incomplete_rate(),
        s.mean_latency_us(), spark.c_str());
  }
#if LIBERATE_OBS_LEVEL >= LIBERATE_OBS_LEVEL_METRICS
  const obs::HdrSnapshot lat =
      obs::MetricsRegistry::instance().hdr("fleet.flow_latency_us").snapshot();
  if (lat.count > 0) {
    std::printf("TOP   latency p50=%llu p90=%llu p99=%llu max=%llu n=%llu\n",
                static_cast<unsigned long long>(lat.value_at_quantile(0.5)),
                static_cast<unsigned long long>(lat.value_at_quantile(0.9)),
                static_cast<unsigned long long>(lat.value_at_quantile(0.99)),
                static_cast<unsigned long long>(lat.max),
                static_cast<unsigned long long>(lat.count));
  }
#endif
  if (!w.anomalies.empty()) {
    std::string joined;
    for (std::size_t i = 0; i < w.anomalies.size(); ++i) {
      if (i > 0) joined += ",";
      joined += w.anomalies[i];
    }
    std::printf("TOP   anomaly %s%s\n", joined.c_str(),
                w.signal ? " (corroborating drift signal)" : "");
  }
}

}  // namespace

int main() {
  ClassifierFingerprintCache cache;

  FleetOptions opts;
  opts.shards = 4;
  opts.flows_per_wave = 8;
  opts.waves = 8;
  opts.faults = netsim::FaultPolicy::reorder_heavy();
  opts.cache = &cache;
  // Mid-soak countermeasure: a normalizer lands in front of the classifier
  // at wave 4 and kills the deployed fragmentation technique — watch the
  // diff-rate sparklines jump, the anomaly flags corroborate, and the
  // control plane re-adapt.
  opts.change_at_wave = 4;
  opts.classifier_change = [](dpi::Environment& env) {
    dpi::NormalizerConfig cfg;
    cfg.reassemble_fragments = true;
    env.net.emplace_at<dpi::NormalizerElement>(0, cfg);
  };
  opts.on_wave = render_wave;

#if LIBERATE_OBS_LEVEL < LIBERATE_OBS_LEVEL_METRICS
  std::printf("TOP (obs level 0: sparklines and quantiles compiled out)\n");
#endif

  FleetEngine engine(opts);
  FleetReport report = engine.run(trace::amazon_video_trace(8 * 1024));

#if LIBERATE_OBS_LEVEL >= LIBERATE_OBS_LEVEL_METRICS
  std::printf("TOP telemetry_json bytes=%zu\n", report.telemetry_json.size());
#endif
  std::printf("%s", report.summary().c_str());
  return 0;
}
