// liberate_top — a live per-shard fleet dashboard over the telemetry hub.
//
// Runs a fleet soak with an adversarial path and a scripted mid-soak
// classifier countermeasure, and renders a "TOP"-prefixed dashboard from
// the FleetEngine's on_wave hook after every wave: per-shard verdict mix
// and latency, a sparkline of each shard's differentiation-rate series
// (obs/timeseries.h), HDR latency quantiles (obs/hdr_histogram.h), and the
// anomaly flags that corroborate the drift monitor.
//
// Everything is driven by the simulated clock, so TOP output is
// deterministic for a given build. The FLEET summary printed at the end is
// additionally byte-identical across observability levels and worker
// counts — CI diffs it between an obs-level-0 and an obs-level-2 build.
//
// `--once` suppresses the per-wave TTY loop (one end-of-soak snapshot);
// `--once --json` emits a single machine-readable JSON document instead of
// any text — the form CI smoke-tests and scripts consume.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>

#include "deploy/fleet.h"
#include "dpi/normalizer.h"
#include "obs/level.h"
#include "trace/generators.h"
#include "util/json.h"

#if LIBERATE_OBS_LEVEL >= LIBERATE_OBS_LEVEL_METRICS
#include "obs/metrics.h"
#include "obs/timeseries.h"
#endif

using namespace liberate;
using namespace liberate::deploy;

namespace {

#if LIBERATE_OBS_LEVEL >= LIBERATE_OBS_LEVEL_METRICS
/// Eight-level sparkline over one series' ring (oldest left), scaled to
/// [0, max] so a flat-zero series renders as a flat floor.
std::string sparkline(const std::string& name, int shard) {
  static const char* kBars[] = {"▁", "▂", "▃", "▄", "▅", "▆", "▇", "█"};
  const obs::TimeSeriesSnapshot snap =
      obs::TimeSeriesStore::instance().snapshot(name);
  for (const obs::SeriesSnapshot& s : snap.series) {
    if (s.key.name != name || s.key.shard != shard) continue;
    double hi = 0;
    for (const obs::SeriesPoint& p : s.points) hi = std::max(hi, p.value);
    std::string out;
    for (const obs::SeriesPoint& p : s.points) {
      const double norm = hi > 0 ? p.value / hi : 0.0;
      int level = static_cast<int>(norm * 7.0 + 0.5);
      if (level < 0) level = 0;
      if (level > 7) level = 7;
      out += kBars[level];
    }
    return out;
  }
  return "";
}
#endif

void render_wave(const FleetWaveReport& w) {
  std::printf("TOP wave=%zu state=%s technique=%s flows=%zu lat_us=%.0f\n",
              w.wave, deploy_state_name(w.state_after),
              w.technique_after.empty() ? "(none)" : w.technique_after.c_str(),
              w.stats.flows, w.stats.mean_latency_us());
  for (std::size_t i = 0; i < w.shard_stats.size(); ++i) {
    const WaveStats& s = w.shard_stats[i];
#if LIBERATE_OBS_LEVEL >= LIBERATE_OBS_LEVEL_METRICS
    const std::string spark = sparkline("fleet.diff_rate", static_cast<int>(i));
#else
    const std::string spark = "(obs off)";
#endif
    std::printf(
        "TOP   shard=%zu diff=%.3f blocked=%.3f incomplete=%.3f lat_us=%.0f "
        "%s\n",
        i, s.differentiated_rate(), s.blocked_rate(), s.incomplete_rate(),
        s.mean_latency_us(), spark.c_str());
  }
#if LIBERATE_OBS_LEVEL >= LIBERATE_OBS_LEVEL_METRICS
  const obs::HdrSnapshot lat =
      obs::MetricsRegistry::instance().hdr("fleet.flow_latency_us").snapshot();
  if (lat.count > 0) {
    std::printf("TOP   latency p50=%llu p90=%llu p99=%llu max=%llu n=%llu\n",
                static_cast<unsigned long long>(lat.value_at_quantile(0.5)),
                static_cast<unsigned long long>(lat.value_at_quantile(0.9)),
                static_cast<unsigned long long>(lat.value_at_quantile(0.99)),
                static_cast<unsigned long long>(lat.max),
                static_cast<unsigned long long>(lat.count));
  }
#endif
  if (!w.anomalies.empty()) {
    std::string joined;
    for (std::size_t i = 0; i < w.anomalies.size(); ++i) {
      if (i > 0) joined += ",";
      joined += w.anomalies[i];
    }
    std::printf("TOP   anomaly %s%s\n", joined.c_str(),
                w.signal ? " (corroborating drift signal)" : "");
  }
}

/// The --json document: the same facts as the TOP/FLEET text, one object.
std::string report_json(const FleetReport& report) {
  JsonWriter w;
  w.begin_object();
  w.key("schema").value("liberate_top/v1");
  w.key("fleet").begin_object();
  w.key("environment").value(report.environment);
  w.key("app").value(report.app);
  w.key("shards").value(static_cast<std::uint64_t>(report.shards));
  w.key("technique_initial").value(report.technique_initial);
  w.key("technique_final").value(report.technique_final);
  if (!report.fingerprint_source.empty()) {
    // Active ambiguity fingerprint (docs/fingerprinting.md): the latest
    // probed digest plus the cache entry it matched and how.
    w.key("fingerprint").begin_object();
    w.key("digest").value(report.fingerprint_digest);
    w.key("dims").value(static_cast<std::uint64_t>(report.fingerprint_dims));
    if (!report.fingerprint_profile.empty()) {
      w.key("profile").value(report.fingerprint_profile);
    } else {
      w.key("profile").null();
    }
    w.key("source").value(report.fingerprint_source);
    w.key("probe_flows")
        .value(static_cast<std::uint64_t>(report.fingerprint_probe_flows));
    w.end_object();
  } else {
    w.key("fingerprint").null();
  }
  w.key("waves").begin_array();
  for (const FleetWaveReport& wave : report.waves) {
    w.begin_object();
    w.key("wave").value(static_cast<std::uint64_t>(wave.wave));
    w.key("flows").value(static_cast<std::uint64_t>(wave.stats.flows));
    w.key("diff_rate").value(wave.stats.differentiated_rate());
    w.key("blocked_rate").value(wave.stats.blocked_rate());
    w.key("incomplete_rate").value(wave.stats.incomplete_rate());
    w.key("lat_us").value(wave.stats.mean_latency_us());
    w.key("state").value(deploy_state_name(wave.state_after));
    w.key("technique").value(wave.technique_after);
    w.key("anomalies").begin_array();
    for (const std::string& a : wave.anomalies) w.value(a);
    w.end_array();
    if (wave.readapt_path) {
      w.key("readapt").begin_object();
      w.key("path").value(readapt_path_name(*wave.readapt_path));
      w.key("rounds").value(wave.readapt_rounds);
      w.key("probe_flows")
          .value(static_cast<std::uint64_t>(wave.readapt_probe_flows));
      w.key("ladder").begin_array();
      for (const core::ReadaptStageCost& s : wave.readapt_ladder) {
        w.begin_object();
        w.key("stage").value(s.stage);
        w.key("rounds").value(s.rounds);
        w.end_object();
      }
      w.end_array();
      w.end_object();
    }
    w.end_object();
  }
  w.end_array();
  w.key("cost").begin_object();
  w.key("analysis_rounds").value(report.initial_analysis_rounds);
  w.key("initial_from_cache").value(report.initial_from_cache);
  w.key("readapts").value(static_cast<std::uint64_t>(report.readapts));
  w.key("readapt_rounds").value(report.readapt_rounds);
  w.end_object();
  w.key("totals").begin_object();
  w.key("flows").value(static_cast<std::uint64_t>(report.totals.flows));
  w.key("differentiated")
      .value(static_cast<std::uint64_t>(report.totals.differentiated));
  w.key("blocked").value(static_cast<std::uint64_t>(report.totals.blocked));
  w.key("incomplete")
      .value(static_cast<std::uint64_t>(report.totals.incomplete));
  w.end_object();
  w.end_object();

#if LIBERATE_OBS_LEVEL >= LIBERATE_OBS_LEVEL_METRICS
  const obs::HdrSnapshot lat =
      obs::MetricsRegistry::instance().hdr("fleet.flow_latency_us").snapshot();
  if (lat.count > 0) {
    w.key("latency").begin_object();
    w.key("p50").value(lat.value_at_quantile(0.5));
    w.key("p90").value(lat.value_at_quantile(0.9));
    w.key("p99").value(lat.value_at_quantile(0.99));
    w.key("max").value(lat.max);
    w.key("count").value(lat.count);
    w.end_object();
  } else {
    w.key("latency").null();
  }
#else
  w.key("latency").null();
#endif
  if (!report.telemetry_json.empty()) {
    w.key("telemetry").raw_value(report.telemetry_json);
  } else {
    w.key("telemetry").null();
  }
  w.end_object();
  return w.take();
}

}  // namespace

int main(int argc, char** argv) {
  bool once = false, json = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--once") == 0) once = true;
    if (std::strcmp(argv[i], "--json") == 0) json = true;
  }

  ClassifierFingerprintCache cache;

  FleetOptions opts;
  opts.shards = 4;
  opts.flows_per_wave = 8;
  opts.waves = 8;
  opts.faults = netsim::FaultPolicy::reorder_heavy();
  opts.cache = &cache;
  // Probe the ambiguity digest at deploy time and on readapts, so the JSON
  // snapshot carries the active fingerprint.
  opts.ambiguity_probes = true;
  // Mid-soak countermeasure: a normalizer lands in front of the classifier
  // at wave 4 and kills the deployed fragmentation technique — watch the
  // diff-rate sparklines jump, the anomaly flags corroborate, and the
  // control plane re-adapt.
  opts.change_at_wave = 4;
  opts.classifier_change = [](dpi::Environment& env) {
    dpi::NormalizerConfig cfg;
    cfg.reassemble_fragments = true;
    env.net.emplace_at<dpi::NormalizerElement>(0, cfg);
  };
  if (!once) opts.on_wave = render_wave;

#if LIBERATE_OBS_LEVEL < LIBERATE_OBS_LEVEL_METRICS
  if (!json) {
    std::printf("TOP (obs level 0: sparklines and quantiles compiled out)\n");
  }
#endif

  FleetEngine engine(opts);
  FleetReport report = engine.run(trace::amazon_video_trace(8 * 1024));

  if (json) {
    // Single machine-readable snapshot; nothing else on stdout.
    std::printf("%s\n", report_json(report).c_str());
    return 0;
  }
  if (once && !report.waves.empty()) {
    render_wave(report.waves.back());
  }
#if LIBERATE_OBS_LEVEL >= LIBERATE_OBS_LEVEL_METRICS
  std::printf("TOP telemetry_json bytes=%zu\n", report.telemetry_json.size());
#endif
  std::printf("%s", report.summary().c_str());
  return 0;
}
