// quickstart — the lib·erate pipeline in ~60 lines:
//
//   1. record an application's traffic (here: a generated Amazon Prime Video
//      session),
//   2. run the four automated phases against a network with a DPI shaper
//      (detection -> characterization -> evasion evaluation -> selection),
//   3. deploy the selected technique under a live, unmodified application
//      and watch the flow escape the shaper.
//
// Build: cmake --build build && ./build/examples/quickstart
#include <cstdio>

#include "core/liberate.h"
#include "stack/host.h"
#include "trace/generators.h"
#include "util/strings.h"

using namespace liberate;

int main() {
  // A network whose middlebox shapes classified video to 1.5 Mbps.
  auto env = dpi::make_testbed();
  core::Liberate lib(*env);

  // Step 1: the recorded application trace.
  auto recorded = trace::amazon_video_trace(64 * 1024);
  std::printf("recorded %s: %zu messages, %zu KB\n",
              recorded.app_name.c_str(), recorded.messages.size(),
              recorded.total_bytes() / 1024);

  // Step 2: analyze.
  auto report = lib.analyze(recorded);
  std::printf("differentiation detected: %s (content-based: %s)\n",
              report.detection.differentiation ? "yes" : "no",
              report.detection.content_based ? "yes" : "no");
  for (const auto& f : report.characterization.fields) {
    std::printf("matching field: \"%s\"\n",
                printable(BytesView(f.content), 48).c_str());
  }
  std::printf("middlebox is %d hops away; classifier inspects %s\n",
              report.characterization.middlebox_hops.value_or(-1),
              report.characterization.inspects_all_packets
                  ? "every packet"
                  : "only the first packets of a flow");
  std::printf("selected technique: %s (cost: %d replay rounds, %.1f MB, "
              "%.0f virtual minutes — one-time)\n\n",
              report.selected_technique.value_or("(none)").c_str(),
              report.total_rounds,
              static_cast<double>(report.total_bytes) / 1e6,
              report.total_virtual_minutes);

  // Step 3: deploy under a live application.
  auto deployment = lib.deploy(report, env->net.client_port());
  if (deployment == nullptr) {
    std::printf("nothing to deploy\n");
    return 0;
  }
  stack::Host client(deployment->port(), netsim::ip_addr("10.0.0.1"),
                     stack::OsProfile::linux_profile());
  stack::Host server(env->net.server_port(), netsim::ip_addr("198.51.100.20"),
                     stack::OsProfile::linux_profile());
  env->net.attach_client(&client);
  env->net.attach_server(&server);

  // The unmodified "video app": one request, a 256 KB response.
  server.tcp_listen(80, [](stack::TcpConnection& c) {
    c.on_data([&c](BytesView) {
      c.send(std::string_view("HTTP/1.1 200 OK\r\nContent-Type: video/mp4\r\n\r\n"));
      Bytes body(256 * 1024, 0x42);
      c.send(BytesView(body));
    });
  });
  std::size_t received = 0;
  netsim::TimePoint done = 0;
  auto& conn = client.tcp_connect(netsim::ip_addr("198.51.100.20"), 80);
  conn.on_data([&](BytesView d) {
    received += d.size();
    done = env->loop.now();
  });
  netsim::TimePoint start = env->loop.now();
  conn.on_established([&] {
    conn.send(std::string_view(
        "GET /clip.mp4 HTTP/1.1\r\nHost: d25xi40x97liuc.cloudfront.net\r\n\r\n"));
  });
  env->loop.run_for(netsim::minutes(2));

  double mbps = 8.0 * static_cast<double>(received) /
                netsim::to_seconds(done - start) / 1e6;
  std::printf("live video flow through the deployed shim: %zu KB at %.1f "
              "Mbps\n(the shaper pins classified video to 1.5 Mbps — "
              "anything well above that\nmeans the flow escaped "
              "classification)\n",
              received / 1024, mbps);
  return 0;
}
