// skype_evasion — end-to-end Skype analysis with full telemetry.
//
// Runs the parallel analysis pipeline (detection -> characterization ->
// evasion evaluation) for a generated Skype trace against the testbed
// classifier, then emits two JSON documents:
//
//   ANALYSIS  {...}   — the analysis result alone. Deterministic and
//                       byte-identical across observability levels and pool
//                       sizes (the obs layer never feeds back into analysis).
//   TELEMETRY {...}   — the observability snapshot: packet counters from
//                       netsim, classifier match events from dpi, per-round
//                       latency histograms and cache hits from the
//                       scheduler, pool/cache stats from util. Empty-ish at
//                       LIBERATE_OBS_LEVEL=0 (macros compile to nothing).
//
// Build: cmake --build build && ./build/examples/skype_evasion
#include <cstdio>

#include "core/parallel_analysis.h"
#include "core/report_io.h"
#include "core/round_scheduler.h"
#include "obs/snapshot.h"
#include "trace/generators.h"

using namespace liberate;
using namespace liberate::core;

int main() {
  // Start from a clean slate so TELEMETRY reflects this run only.
  obs::reset_all();

  auto skype = trace::make_skype_trace({});
  std::printf("recorded %s: %zu messages, %zu bytes\n",
              skype.app_name.c_str(), skype.messages.size(),
              skype.total_bytes());

  WorldSpec spec;  // testbed classifier (STUN MS-SERVICE-QUALITY rule)
  RoundScheduler scheduler(spec, {.workers = 2, .cache_capacity = 8192});
  SessionReport report = analyze_parallel(scheduler, skype);

  std::printf("differentiation: %s  content-based: %s  selected: %s\n",
              report.detection.differentiation ? "yes" : "no",
              report.detection.content_based ? "yes" : "no",
              report.selected_technique.value_or("(none)").c_str());

  // Re-analysis (the §4.2 "have the rules changed?" path): every probe is
  // memoized, so this pass is answered from the cache — and must reproduce
  // the first report bit for bit.
  SessionReport again = analyze_parallel(scheduler, skype);
  std::printf("re-analysis: %d/%d rounds from cache, report identical: %s\n",
              static_cast<int>(scheduler.rounds_from_cache()),
              report.total_rounds + again.total_rounds,
              analysis_report_json(report) == analysis_report_json(again)
                  ? "yes"
                  : "NO");

  // The two documents, one per line, machine-splittable by prefix.
  std::printf("ANALYSIS %s\n", analysis_report_json(report).c_str());
  obs::Snapshot snap = obs::capture();
  std::printf("TELEMETRY %s\n", obs::to_json(snap).c_str());
  return 0;
}
