// video_unthrottling — lib·erate against a T-Mobile-style zero-rater/shaper
// (§6.2), including runtime adaptation when the operator changes the rules.
//
// Binge On both zero-rates and throttles classified video. Evading
// classification trades the zero-rating away for full-rate delivery — the
// paper's 1.48 -> 4.1 Mbps headline. This example also flips the classifier
// rules mid-session and shows lib·erate's readapt() recovering.
#include <cstdio>

#include "core/liberate.h"
#include "trace/generators.h"
#include "util/strings.h"

using namespace liberate;
using namespace liberate::core;

namespace {

double replay_video_mbps(ReplayRunner& runner, Technique* technique,
                         const TechniqueContext& ctx, std::uint16_t port) {
  ReplayOptions opts;
  opts.technique = technique;
  opts.context = ctx;
  opts.server_port_override = port;
  auto out = runner.run(trace::amazon_video_trace(512 * 1024), opts);
  return out.completed ? out.goodput_mbps : 0.0;
}

}  // namespace

int main() {
  auto env = dpi::make_tmus();
  env->base_bandwidth->set_rate(8e6 / 8);  // an 8 Mbps radio link today
  Liberate lib(*env);

  std::printf("=== analysis over the zero-rating signal ===\n");
  auto app = trace::amazon_video_trace(220 * 1024);
  auto report = lib.analyze(app);
  std::printf("content-based differentiation: %s\n",
              report.detection.content_based ? "yes" : "no");
  for (const auto& f : report.characterization.fields) {
    std::printf("classifier matches: \"%s\"\n",
                printable(BytesView(f.content), 44).c_str());
  }
  std::printf("selected technique: %s\n\n",
              report.selected_technique.value_or("(none)").c_str());

  std::printf("=== throughput: shaped vs evaded ===\n");
  ReplayRunner& runner = lib.runner();
  TechniqueContext ctx;
  ctx.matching_snippets = report.characterization.snippets();
  ctx.decoy_payload = decoy_request_payload();
  if (report.characterization.middlebox_hops) {
    ctx.middlebox_ttl =
        static_cast<std::uint8_t>(*report.characterization.middlebox_hops);
  }
  auto suite = build_full_suite();
  Technique* chosen = nullptr;
  for (auto& t : suite) {
    if (report.selected_technique && t->name() == *report.selected_technique) {
      chosen = t.get();
    }
  }
  double shaped = replay_video_mbps(runner, nullptr, ctx, 34001);
  double freed = replay_video_mbps(runner, chosen, ctx, 34002);
  std::printf("video goodput without lib.erate: %.2f Mbps (Binge On pins "
              "video at 1.5)\n", shaped);
  std::printf("video goodput with lib.erate:    %.2f Mbps (radio-limited)\n\n",
              freed);

  std::printf("=== the operator moves the goalposts ===\n");
  {
    // Countermeasure deployment: classification now keys on the SERVER
    // response (Content-Type), and the box stops flushing state on RSTs —
    // killing both keyword-targeting and RST-flush techniques at once.
    auto rules = env->dpi->engine().rules();
    for (auto& r : rules) {
      if (r.name == "tmus-host-cloudfront") {
        r.keywords = {"Content-Type: video/mp4"};
      }
    }
    env->dpi->engine().set_rules(rules);
    auto harder = env->dpi->engine().config();
    harder.flush_flow_on_rst = false;
    env->dpi->engine().set_config(harder);
  }
  auto verdict = lib.readapt(report, app);
  if (verdict.still_working) {
    std::printf("old technique still works (%d verification round)\n",
                verdict.report.total_rounds);
  } else {
    const auto& fresh = verdict.report;
    std::printf("rule change detected; re-characterized (%d rounds). "
                "new fields:\n",
                fresh.total_rounds);
    for (const auto& f : fresh.characterization.fields) {
      std::printf("  \"%s\"\n", printable(BytesView(f.content), 44).c_str());
    }
    std::printf("new selected technique: %s\n",
                fresh.selected_technique.value_or("(none)").c_str());
  }

  std::printf("\n=== the UDP loophole ===\n");
  auto udp = runner.run(trace::make_generic_udp_trace());
  std::printf("UDP (QUIC-like) flow classified: %s — \"YouTube traffic that\n"
              "uses QUIC is not throttled or zero rated\" (§6.2)\n",
              runner.differentiated(udp) ? "yes" : "no");
  return 0;
}
