#!/usr/bin/env python3
"""Compare two sets of BENCH_*.json files and fail on regressions.

Usage:
    bench_compare.py BASELINE_DIR CANDIDATE_DIR [--threshold PCT]

Each directory holds BENCH_<name>.json files as written by bench::JsonReport
(bench/common.h). Benches are paired by name; numeric metrics are compared
and any change worse than --threshold percent (default 10) in the metric's
bad direction is a regression. The exit status is 1 if any regression was
found, so CI can gate on it.

Direction is inferred from the metric name:
  lower is better:  *seconds*, *time*, *latency*, *_s, *_us, *_ms, bytes,
                    rounds, misses
  higher is better: *rate*, *hit*, *pct*, *percent*, *goodput*, *mbps*,
                    *speedup*, *agreement*, matched
Metrics whose direction cannot be inferred are reported but never fail the
comparison. Context blocks (git_sha / obs_level / workers) are printed, and
mismatched obs_level or workers makes the comparison an error: those numbers
are not comparable.
"""

import argparse
import json
import math
import sys
from pathlib import Path

LOWER_IS_BETTER = ("seconds", "time", "latency", "_s", "_us", "_ms",
                   "bytes", "rounds", "misses")
HIGHER_IS_BETTER = ("rate", "hit", "pct", "percent", "goodput", "mbps",
                    "speedup", "agreement", "matched")


def direction(name: str):
    """-1 = lower is better, +1 = higher is better, 0 = unknown."""
    low = name.lower()
    for suffix in HIGHER_IS_BETTER:
        if suffix in low:
            return 1
    for suffix in LOWER_IS_BETTER:
        if low.endswith(suffix) or suffix.strip("_") == low:
            return -1
    return 0


def load_dir(path: Path):
    out = {}
    for f in sorted(path.glob("BENCH_*.json")):
        try:
            doc = json.loads(f.read_text())
        except (OSError, json.JSONDecodeError) as e:
            print(f"warning: skipping unreadable {f}: {e}", file=sys.stderr)
            continue
        out[doc.get("bench", f.stem)] = doc
    return out


def numeric_metrics(doc):
    """Flatten metrics plus per-row numeric fields into {key: value}."""
    out = {}
    for k, v in doc.get("metrics", {}).items():
        if isinstance(v, (int, float)) and not isinstance(v, bool):
            out[k] = float(v)
    for row in doc.get("rows", []):
        label = row.get("label", "?")
        for k, v in row.items():
            if k == "label":
                continue
            if isinstance(v, (int, float)) and not isinstance(v, bool):
                out[f"{label}/{k}"] = float(v)
    return out


def compare(base_doc, cand_doc, threshold, bench):
    regressions = []
    base = numeric_metrics(base_doc)
    cand = numeric_metrics(cand_doc)
    for key in sorted(base.keys() & cand.keys()):
        b, c = base[key], cand[key]
        if not (math.isfinite(b) and math.isfinite(c)):
            continue
        if b == 0:
            delta_pct = 0.0 if c == 0 else math.inf
        else:
            delta_pct = 100.0 * (c - b) / abs(b)
        sign = direction(key)
        worse = (sign < 0 and delta_pct > threshold) or \
                (sign > 0 and delta_pct < -threshold)
        marker = " "
        if worse:
            marker = "R"
            regressions.append((bench, key, b, c, delta_pct))
        elif sign == 0 and abs(delta_pct) > threshold:
            marker = "?"  # big change, direction unknown — informational
        if marker != " " or abs(delta_pct) > threshold:
            print(f"  [{marker}] {bench}/{key}: {b:g} -> {c:g} "
                  f"({delta_pct:+.1f}%)")
    return regressions


def context_mismatch(base_doc, cand_doc):
    b = base_doc.get("context", {})
    c = cand_doc.get("context", {})
    bad = []
    for key in ("obs_level", "workers"):
        if key in b and key in c and b[key] != c[key]:
            bad.append(f"{key} {b[key]} vs {c[key]}")
    return bad


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("baseline", type=Path)
    ap.add_argument("candidate", type=Path)
    ap.add_argument("--threshold", type=float, default=10.0,
                    help="regression threshold in percent (default 10)")
    args = ap.parse_args()

    base = load_dir(args.baseline)
    cand = load_dir(args.candidate)
    if not base or not cand:
        print("error: no BENCH_*.json files found "
              f"(baseline: {len(base)}, candidate: {len(cand)})",
              file=sys.stderr)
        return 2

    regressions = []
    errors = 0
    for bench in sorted(base.keys() & cand.keys()):
        b_doc, c_doc = base[bench], cand[bench]
        b_ctx, c_ctx = b_doc.get("context", {}), c_doc.get("context", {})
        print(f"{bench}: "
              f"{b_ctx.get('git_sha', '?')} -> {c_ctx.get('git_sha', '?')}")
        bad = context_mismatch(b_doc, c_doc)
        if bad:
            print(f"  error: incomparable context ({'; '.join(bad)})")
            errors += 1
            continue
        regressions += compare(b_doc, c_doc, args.threshold, bench)

    # One-sided benches are expected when a PR adds or retires a bench:
    # call them out clearly, but never let them fail the comparison.
    for bench in sorted(cand.keys() - base.keys()):
        print(f"notice: new bench {bench} (no baseline) — skipped")
    for bench in sorted(base.keys() - cand.keys()):
        print(f"notice: bench {bench} missing from candidate — skipped")

    if errors:
        print(f"\n{errors} incomparable bench(es)")
        return 2
    if regressions:
        print(f"\n{len(regressions)} regression(s) worse than "
              f"{args.threshold:g}%:")
        for bench, key, b, c, pct in regressions:
            print(f"  {bench}/{key}: {b:g} -> {c:g} ({pct:+.1f}%)")
        return 1
    print("\nno regressions")
    return 0


if __name__ == "__main__":
    sys.exit(main())
