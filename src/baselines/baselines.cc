#include "baselines/baselines.h"

#include "netsim/packet.h"
#include "util/strings.h"

namespace liberate::baselines {

namespace {

/// Deterministic keystream byte for (key, flow position i). Toy cipher: the
/// property under test is pattern removal, not confidentiality.
std::uint8_t keystream(std::uint64_t key, std::uint32_t seq, std::size_t i) {
  std::uint64_t x = key ^ (static_cast<std::uint64_t>(seq) << 16) ^ i;
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  return static_cast<std::uint8_t>(x);
}

}  // namespace

Bytes rebuild_tcp_payload(const netsim::PacketView& pkt, BytesView payload) {
  netsim::TcpHeader h;
  h.src_port = pkt.tcp->src_port;
  h.dst_port = pkt.tcp->dst_port;
  h.seq = pkt.tcp->seq;
  h.ack = pkt.tcp->ack;
  h.flags = pkt.tcp->flags;
  h.window = pkt.tcp->window;
  netsim::Ipv4Header ip;
  ip.src = pkt.ip.src;
  ip.dst = pkt.ip.dst;
  ip.ttl = pkt.ip.ttl;
  ip.identification = pkt.ip.identification;
  return make_tcp_datagram(ip, h, payload);
}

void VpnTunnelShim::send(Bytes datagram) {
  stats_.packets += 1;
  auto parsed = netsim::parse_packet(datagram);
  if (!parsed.ok() || !parsed.value().is_tcp() ||
      parsed.value().tcp->payload.empty()) {
    inner_.send(std::move(datagram));
    return;
  }
  const netsim::PacketView& pkt = parsed.value();
  Bytes payload(pkt.tcp->payload.begin(), pkt.tcp->payload.end());
  for (std::size_t i = 0; i < payload.size(); ++i) {
    payload[i] ^= keystream(key_, pkt.tcp->seq, i);
  }
  stats_.payload_packets += 1;
  // Tunnel framing overhead is accounted analytically (8 bytes/packet):
  // physically growing segments would shift the simulated sequence space.
  stats_.extra_bytes += 8;
  (void)encrypt_;  // XOR is an involution: encrypt == decrypt
  inner_.send(rebuild_tcp_payload(pkt, payload));
}

std::optional<Bytes> VpnTunnelShim::transform_incoming(
    BytesView datagram) const {
  auto parsed = netsim::parse_packet(datagram);
  if (!parsed.ok() || !parsed.value().is_tcp() ||
      parsed.value().tcp->payload.empty()) {
    return std::nullopt;
  }
  const netsim::PacketView& pkt = parsed.value();
  Bytes payload(pkt.tcp->payload.begin(), pkt.tcp->payload.end());
  for (std::size_t i = 0; i < payload.size(); ++i) {
    payload[i] ^= keystream(key_, pkt.tcp->seq, i);
  }
  return rebuild_tcp_payload(pkt, payload);
}

void ObfuscationShim::send(Bytes datagram) {
  stats_.packets += 1;
  auto parsed = netsim::parse_packet(datagram);
  if (!parsed.ok() || !parsed.value().is_tcp() ||
      parsed.value().tcp->payload.empty()) {
    inner_.send(std::move(datagram));
    return;
  }
  const netsim::PacketView& pkt = parsed.value();
  Bytes payload(pkt.tcp->payload.begin(), pkt.tcp->payload.end());
  for (std::size_t i = 0; i < payload.size(); ++i) {
    payload[i] ^= keystream(key_, pkt.tcp->seq, i);
  }
  stats_.payload_packets += 1;
  inner_.send(rebuild_tcp_payload(pkt, payload));
}

Bytes ObfuscationShim::derandomize(BytesView payload, std::uint64_t key) {
  // Static helper for tests; real deployments run a mirror shim at the peer.
  Bytes out(payload.begin(), payload.end());
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] ^= keystream(key, 0, i);
  }
  return out;
}

void DomainFrontingShim::send(Bytes datagram) {
  stats_.packets += 1;
  auto parsed = netsim::parse_packet(datagram);
  if (!parsed.ok() || !parsed.value().is_tcp() ||
      parsed.value().tcp->payload.empty()) {
    inner_.send(std::move(datagram));
    return;
  }
  const netsim::PacketView& pkt = parsed.value();
  std::string payload = to_string(pkt.tcp->payload);
  std::size_t pos = payload.find(real_host_);
  if (pos == std::string::npos) {
    inner_.send(std::move(datagram));
    return;
  }
  // Length-preserving substitution (keeps the simulated sequence space
  // intact; real fronting swaps whole requests at the HTTP layer).
  std::string front = front_host_;
  front.resize(real_host_.size(), 'x');
  payload.replace(pos, real_host_.size(), front);
  stats_.payload_packets += 1;
  inner_.send(rebuild_tcp_payload(pkt, BytesView(to_bytes(payload))));
}

}  // namespace liberate::baselines
