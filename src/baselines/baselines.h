// baselines.h — the evasion approaches lib·erate is compared against in
// Table 1: VPN/encrypting tunnels, payload obfuscation (ScrambleSuit/obfs4
// style), and domain fronting (meek style).
//
// Each is implemented as a NetworkPort shim pair (client + server side),
// which makes their deployment model measurable: every one of them needs
// BOTH endpoints modified (or third-party infrastructure), unlike lib·erate's
// unilateral shim — exactly the Table 1 "Client only" column. The per-packet
// overhead columns come from counting real bytes through these shims.
#pragma once

#include <cstdint>
#include <string>

#include "netsim/network.h"
#include "util/bytes.h"

namespace liberate::baselines {

/// Statistics shared by all baseline shims.
struct ShimStats {
  std::uint64_t packets = 0;
  std::uint64_t payload_packets = 0;   // packets whose payload was rewritten
  std::uint64_t extra_bytes = 0;       // overhead added on the wire
};

/// XOR-keystream "encryption" of every TCP/UDP payload plus an 8-byte tunnel
/// header — the shape of a VPN/encrypting tunnel: O(n) per-flow overhead,
/// needs the decrypting peer. (A toy cipher: the property under test is that
/// no plaintext byte pattern survives, not cryptographic strength.)
class VpnTunnelShim : public netsim::NetworkPort {
 public:
  VpnTunnelShim(netsim::NetworkPort& inner, std::uint64_t key, bool encrypt)
      : inner_(inner), key_(key), encrypt_(encrypt) {}

  void send(Bytes datagram) override;
  netsim::EventLoop& loop() override { return inner_.loop(); }
  const ShimStats& stats() const { return stats_; }

  /// Transform (encrypt or decrypt) an incoming datagram at the receiving
  /// end; returns nullopt when the datagram is not tunnel traffic.
  std::optional<Bytes> transform_incoming(BytesView datagram) const;

 private:
  netsim::NetworkPort& inner_;
  std::uint64_t key_;
  bool encrypt_;
  ShimStats stats_;
};

/// Payload randomization without framing ("looking like nothing"): payloads
/// XORed with a per-flow keystream, no added bytes. Still O(n) work and
/// needs the peer to derandomize.
class ObfuscationShim : public netsim::NetworkPort {
 public:
  ObfuscationShim(netsim::NetworkPort& inner, std::uint64_t key)
      : inner_(inner), key_(key) {}

  void send(Bytes datagram) override;
  netsim::EventLoop& loop() override { return inner_.loop(); }
  const ShimStats& stats() const { return stats_; }

  static Bytes derandomize(BytesView payload, std::uint64_t key);

 private:
  netsim::NetworkPort& inner_;
  std::uint64_t key_;
  ShimStats stats_;
};

/// Domain fronting: rewrite the HTTP Host header (or TLS SNI) to a popular
/// front domain on the wire; the fronting infrastructure routes by the real
/// name carried elsewhere. O(1) per flow, but requires the fronting service.
class DomainFrontingShim : public netsim::NetworkPort {
 public:
  DomainFrontingShim(netsim::NetworkPort& inner, std::string real_host,
                     std::string front_host)
      : inner_(inner),
        real_host_(std::move(real_host)),
        front_host_(std::move(front_host)) {}

  void send(Bytes datagram) override;
  netsim::EventLoop& loop() override { return inner_.loop(); }
  const ShimStats& stats() const { return stats_; }

 private:
  netsim::NetworkPort& inner_;
  std::string real_host_;
  std::string front_host_;
  ShimStats stats_;
};

/// Helper used by the shims: rebuild a TCP datagram with a new payload,
/// keeping flow coordinates and sequence numbering consistent.
Bytes rebuild_tcp_payload(const netsim::PacketView& pkt, BytesView payload);

}  // namespace liberate::baselines
