// incoming_shim.h — receive-side interception for baseline shims: wraps a
// HostIface and transforms datagrams before the host's stack sees them (the
// "server-side support" every baseline method needs).
#pragma once

#include <functional>

#include "netsim/network.h"

namespace liberate::baselines {

class IncomingShim : public netsim::HostIface {
 public:
  /// `transform` returns the rewritten datagram, or nullopt to pass the
  /// original through unchanged.
  using Transform = std::function<std::optional<Bytes>(BytesView)>;

  IncomingShim(netsim::HostIface& inner, Transform transform)
      : inner_(inner), transform_(std::move(transform)) {}

  void receive(Bytes datagram) override {
    auto rewritten = transform_(datagram);
    inner_.receive(rewritten ? std::move(*rewritten) : std::move(datagram));
  }

 private:
  netsim::HostIface& inner_;
  Transform transform_;
};

}  // namespace liberate::baselines
