#include "core/bilateral.h"

namespace liberate::core {

trace::ApplicationTrace with_bilateral_prepend(
    const trace::ApplicationTrace& trace, const BilateralOptions& options) {
  trace::ApplicationTrace out = trace;
  Rng rng(options.seed);
  trace::Message dummy;
  dummy.sender = trace::Sender::kClient;
  dummy.payload = rng.bytes(std::max<std::size_t>(options.dummy_bytes, 1));
  dummy.payload[0] = 0x00;  // no protocol starts with a NUL byte
  out.messages.insert(out.messages.begin(), std::move(dummy));
  return out;
}

}  // namespace liberate::core
