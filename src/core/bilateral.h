// bilateral.h — server-coordinated evasion (§1 finding, §7 future work).
//
// "If we can assume server-side support as well, we found that inserting
// even one packet carrying dummy traffic (that is ignored by the server) at
// the beginning of a flow evades classification in our testbed, T-Mobile,
// AT&T, and the GFC."
//
// Bilateral evasion is a TRACE-level transform: the client sends a dummy
// first message and the cooperating server knows to discard it. It defeats
// every position-anchored classifier (GET/TLS anchors, packet-position
// rules, terminating proxies that sniff the request line) at the cost of
// losing unilateral deployability — the trade Table 1 is about.
#pragma once

#include "trace/trace.h"
#include "util/rng.h"

namespace liberate::core {

struct BilateralOptions {
  /// Bytes of dummy data in the prepended message (1 suffices everywhere
  /// the paper tested).
  std::size_t dummy_bytes = 1;
  std::uint64_t seed = 0xB11A7E4A1;
};

/// The client-side half: a trace whose first client message is dummy data.
/// The dummy deliberately starts with a byte that cannot begin any known
/// protocol (so anchored matchers fail fast).
trace::ApplicationTrace with_bilateral_prepend(
    const trace::ApplicationTrace& trace, const BilateralOptions& options = {});

/// The server-side half: how many leading client bytes the cooperating
/// server must discard for a trace produced by with_bilateral_prepend.
inline std::size_t bilateral_discard_bytes(const BilateralOptions& options) {
  return options.dummy_bytes;
}

}  // namespace liberate::core
