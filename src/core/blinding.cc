#include "core/blinding.h"

#include <algorithm>

namespace liberate::core {

trace::ApplicationTrace blind_range(const trace::ApplicationTrace& trace,
                                    std::size_t message_index,
                                    std::size_t offset, std::size_t length) {
  trace::ApplicationTrace out = trace;
  if (message_index >= out.messages.size()) return out;
  Bytes& payload = out.messages[message_index].payload;
  std::size_t end = std::min(payload.size(), offset + length);
  for (std::size_t i = offset; i < end; ++i) {
    payload[i] = static_cast<std::uint8_t>(~payload[i]);
  }
  return out;
}

namespace {

struct Searcher {
  const trace::ApplicationTrace& trace;
  const ClassificationOracle& oracle;
  BlindingStats* stats;
  std::size_t granularity;
  std::vector<MatchingField> fields;

  bool still_classified(std::size_t msg, std::size_t off, std::size_t len) {
    auto modified = blind_range(trace, msg, off, len);
    if (stats != nullptr) {
      stats->replay_rounds += 1;
      stats->bytes_replayed += modified.total_bytes();
    }
    return oracle(modified);
  }

  /// Region is necessary iff blinding it breaks classification.
  void explore(std::size_t msg, std::size_t off, std::size_t len) {
    if (len == 0) return;
    if (still_classified(msg, off, len)) return;  // nothing necessary inside
    if (len <= granularity) {
      fields.push_back(MatchingField{msg, off, len, {}});
      return;
    }
    std::size_t half = len / 2;
    explore(msg, off, half);
    explore(msg, off + half, len - half);
    // Fields can straddle the midpoint: if neither half alone is necessary
    // but the whole region is, the boundary region holds a field fragment.
    // The per-half recursion above already finds straddling fields because
    // blinding *either* half of a keyword breaks it; no extra probe needed.
  }
};

}  // namespace

namespace {

/// Sort, merge adjacent regions and attach original content — shared by the
/// single-user and distributed searches.
std::vector<MatchingField> merge_fields(const trace::ApplicationTrace& trace,
                                        std::vector<MatchingField> fields) {
  std::sort(fields.begin(), fields.end(),
            [](const MatchingField& a, const MatchingField& b) {
              if (a.message_index != b.message_index) {
                return a.message_index < b.message_index;
              }
              return a.offset < b.offset;
            });
  std::vector<MatchingField> merged;
  for (const MatchingField& f : fields) {
    if (!merged.empty() && merged.back().message_index == f.message_index &&
        merged.back().offset + merged.back().length >= f.offset) {
      merged.back().length =
          std::max(merged.back().offset + merged.back().length,
                   f.offset + f.length) -
          merged.back().offset;
    } else {
      merged.push_back(f);
    }
  }
  for (MatchingField& f : merged) {
    const Bytes& payload = trace.messages[f.message_index].payload;
    f.content.assign(
        payload.begin() + static_cast<std::ptrdiff_t>(f.offset),
        payload.begin() + static_cast<std::ptrdiff_t>(
                              std::min(payload.size(), f.offset + f.length)));
  }
  return merged;
}

}  // namespace

std::vector<MatchingField> find_matching_fields_distributed(
    const trace::ApplicationTrace& trace,
    const std::vector<ClassificationOracle>& users,
    DistributedBlindingStats* stats, std::size_t granularity) {
  std::vector<MatchingField> fields;
  if (users.empty()) return fields;
  if (stats != nullptr) stats->per_user.assign(users.size(), BlindingStats{});

  // Each user confirms the baseline once, then probes only their share of
  // the trace's messages (round-robin assignment).
  for (std::size_t u = 0; u < users.size(); ++u) {
    BlindingStats user_stats;
    Searcher s{trace, users[u], &user_stats,
               std::max<std::size_t>(granularity, 1), {}};
    user_stats.replay_rounds += 1;
    user_stats.bytes_replayed += trace.total_bytes();
    if (!users[u](trace)) {
      if (stats != nullptr) (*stats).per_user[u] = user_stats;
      continue;  // this user's vantage sees no differentiation: skip
    }
    for (std::size_t m = u; m < trace.messages.size(); m += users.size()) {
      const Bytes& payload = trace.messages[m].payload;
      if (payload.empty()) continue;
      if (s.still_classified(m, 0, payload.size())) continue;
      s.explore(m, 0, payload.size());
    }
    fields.insert(fields.end(), s.fields.begin(), s.fields.end());
    if (stats != nullptr) (*stats).per_user[u] = user_stats;
  }
  return merge_fields(trace, fields);
}

std::vector<MatchingField> find_matching_fields_batched(
    const trace::ApplicationTrace& trace,
    const BatchClassificationOracle& oracle, BlindingStats* stats,
    std::size_t granularity) {
  granularity = std::max<std::size_t>(granularity, 1);

  auto probe_batch = [&](const std::vector<trace::ApplicationTrace>& probes) {
    if (stats != nullptr) {
      stats->replay_rounds += static_cast<int>(probes.size());
      for (const auto& p : probes) stats->bytes_replayed += p.total_bytes();
    }
    return oracle(probes);
  };

  // Baseline: the unmodified trace must be classified, or there are no
  // matching fields to find.
  if (!probe_batch({trace})[0]) return {};

  struct Region {
    std::size_t msg, off, len;
  };
  std::vector<Region> frontier;
  for (std::size_t m = 0; m < trace.messages.size(); ++m) {
    std::size_t len = trace.messages[m].payload.size();
    if (len > 0) frontier.push_back(Region{m, 0, len});
  }

  std::vector<MatchingField> fields;
  while (!frontier.empty()) {
    std::vector<trace::ApplicationTrace> probes;
    probes.reserve(frontier.size());
    for (const Region& r : frontier) {
      probes.push_back(blind_range(trace, r.msg, r.off, r.len));
    }
    std::vector<bool> verdicts = probe_batch(probes);

    std::vector<Region> next;
    for (std::size_t i = 0; i < frontier.size(); ++i) {
      const Region& r = frontier[i];
      if (verdicts[i]) continue;  // still classified: nothing necessary here
      if (r.len <= granularity) {
        fields.push_back(MatchingField{r.msg, r.off, r.len, {}});
        continue;
      }
      std::size_t half = r.len / 2;
      next.push_back(Region{r.msg, r.off, half});
      next.push_back(Region{r.msg, r.off + half, r.len - half});
    }
    frontier = std::move(next);
  }
  return merge_fields(trace, std::move(fields));
}

std::vector<MatchingField> find_matching_fields(
    const trace::ApplicationTrace& trace, const ClassificationOracle& oracle,
    BlindingStats* stats, std::size_t granularity) {
  Searcher s{trace, oracle, stats, std::max<std::size_t>(granularity, 1), {}};

  // Baseline: the unmodified trace must be classified, or there are no
  // matching fields to find.
  {
    if (stats != nullptr) {
      stats->replay_rounds += 1;
      stats->bytes_replayed += trace.total_bytes();
    }
    if (!oracle(trace)) return {};
  }

  for (std::size_t m = 0; m < trace.messages.size(); ++m) {
    const Bytes& payload = trace.messages[m].payload;
    if (payload.empty()) continue;
    // One cheap whole-message probe prunes messages with no matching bytes.
    if (s.still_classified(m, 0, payload.size())) continue;
    s.explore(m, 0, payload.size());
  }

  return merge_fields(trace, std::move(s.fields));
}

}  // namespace liberate::core
