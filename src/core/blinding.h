// blinding.h — recursive binary blinding search for matching fields (§4.2).
//
// "Blinding" a byte range means inverting its bits, which deterministically
// removes any pattern a classifier rule could match. A region is *necessary*
// if blinding it stops classification; recursing on necessary regions down
// to a small granularity yields the byte ranges of every matching field.
#pragma once

#include <algorithm>
#include <functional>
#include <vector>

#include "trace/trace.h"

namespace liberate::core {

struct MatchingField {
  std::size_t message_index = 0;  // which trace message
  std::size_t offset = 0;         // byte offset within that message
  std::size_t length = 0;
  Bytes content;                  // the original (unblinded) bytes
};

struct BlindingStats {
  int replay_rounds = 0;
  std::uint64_t bytes_replayed = 0;
};

/// Oracle: replay the (modified) trace, return true if the classifier still
/// classified it. Each call is one replay round.
using ClassificationOracle =
    std::function<bool(const trace::ApplicationTrace&)>;

/// Return a copy of `trace` with [offset, offset+length) of message
/// `message_index` bit-inverted.
trace::ApplicationTrace blind_range(const trace::ApplicationTrace& trace,
                                    std::size_t message_index,
                                    std::size_t offset, std::size_t length);

/// Find all matching fields in the trace. `granularity` is the smallest
/// region the search resolves (trading rounds for precision, §4.2
/// "characterization efficiency"). Adjacent necessary regions are merged
/// into one field.
std::vector<MatchingField> find_matching_fields(
    const trace::ApplicationTrace& trace, const ClassificationOracle& oracle,
    BlindingStats* stats, std::size_t granularity = 4);

/// §4.2: "distribute disjoint subsets of the tests among multiple users in
/// the same network, and aggregate the results." Each user probes a
/// disjoint subset of the trace's messages with their own replay oracle;
/// the merged field list equals the single-user result while each user's
/// round count shrinks roughly by 1/N. (The paper's caveat applies: an
/// adversary who can read the aggregation point learns the detected rules.)
struct DistributedBlindingStats {
  std::vector<BlindingStats> per_user;
  int total_rounds() const {
    int n = 0;
    for (const auto& s : per_user) n += s.replay_rounds;
    return n;
  }
  int max_user_rounds() const {
    int n = 0;
    for (const auto& s : per_user) n = std::max(n, s.replay_rounds);
    return n;
  }
};

std::vector<MatchingField> find_matching_fields_distributed(
    const trace::ApplicationTrace& trace,
    const std::vector<ClassificationOracle>& users,
    DistributedBlindingStats* stats, std::size_t granularity = 4);

/// Batch oracle: classify many modified traces at once. Backed by the
/// parallel RoundScheduler, one wave of independent replay rounds; verdicts
/// come back in submission order.
using BatchClassificationOracle =
    std::function<std::vector<bool>(const std::vector<trace::ApplicationTrace>&)>;

/// Breadth-first variant of find_matching_fields: instead of recursing
/// depth-first one probe at a time, it probes a whole frontier of candidate
/// regions per wave (all messages, then all halves of the necessary
/// regions, ...), so every wave fans out across the scheduler's workers.
/// The probe *set* it explores equals the recursive search's (minus the
/// recursive variant's duplicate whole-message probe), and the wave
/// structure is fixed by the trace alone — byte-identical fields and round
/// counts regardless of worker count or interleaving.
std::vector<MatchingField> find_matching_fields_batched(
    const trace::ApplicationTrace& trace,
    const BatchClassificationOracle& oracle, BlindingStats* stats,
    std::size_t granularity = 4);

}  // namespace liberate::core
