#include "core/characterization.h"

#include <algorithm>

#include "util/rng.h"

namespace liberate::core {

using trace::ApplicationTrace;
using trace::Message;
using trace::Sender;

/// Insert `count` random messages before message `before_index`, sent by
/// the same endpoint as that message (a prepend probe must land in the same
/// direction the classifier counts — rules can key on server content, e.g.
/// AT&T's Content-Type).
ApplicationTrace with_prepended_probe(const ApplicationTrace& trace,
                                      std::size_t before_index,
                                      std::size_t count, std::size_t size,
                                      Rng& rng) {
  ApplicationTrace out = trace;
  Sender sender = before_index < trace.messages.size()
                      ? trace.messages[before_index].sender
                      : Sender::kClient;
  std::vector<Message> junk;
  for (std::size_t i = 0; i < count; ++i) {
    Message m;
    m.sender = sender;
    m.payload = rng.bytes(size);
    junk.push_back(std::move(m));
  }
  out.messages.insert(
      out.messages.begin() + static_cast<std::ptrdiff_t>(
                                 std::min(before_index, out.messages.size())),
      junk.begin(), junk.end());
  return out;
}

std::size_t first_client_message_index(const ApplicationTrace& trace) {
  for (std::size_t i = 0; i < trace.messages.size(); ++i) {
    if (trace.messages[i].sender == Sender::kClient) return i;
  }
  return 0;
}

CharacterizationReport characterize_classifier(
    ReplayRunner& runner, const ApplicationTrace& trace,
    const CharacterizationOptions& options) {
  CharacterizationReport report;
  Rng rng(0xC11A5);

  const int rounds0 = runner.rounds();
  const std::uint64_t bytes0 = runner.bytes_offered();
  const double t0 = runner.virtual_seconds_elapsed();

  // --- Port sensitivity first (§6.3, §6.6): it decides how the remaining
  // rounds pick ports. A port-sensitive classifier (Iran) forces every round
  // onto the trace's port; otherwise fresh ports per round sidestep
  // GFC-style endpoint escalation (§6.5).
  {
    ApplicationTrace moved = trace;
    moved.server_port = static_cast<std::uint16_t>(trace.server_port + 1000);
    ReplayOutcome out = runner.run(moved, ReplayOptions{});
    report.port_sensitive = !runner.differentiated(out);
  }

  std::uint16_t next_port = 23000;
  auto pick_port = [&]() -> std::uint16_t {
    if (options.pin_trace_port || report.port_sensitive) return 0;
    if (options.unique_port_per_round) return next_port++;
    return 0;
  };

  auto classified = [&](const ApplicationTrace& t) {
    ReplayOptions o;
    o.server_port_override = pick_port();
    ReplayOutcome out = runner.run(t, o);
    return runner.differentiated(out);
  };

  // --- Matching fields via recursive blinding (§4.2) ----------------------
  BlindingStats stats;
  report.fields = find_matching_fields(trace, classified, &stats,
                                       options.blinding_granularity);

  // --- Position / packet-limit probing (§5.1) -----------------------------
  std::size_t match_msg = report.fields.empty()
                              ? first_client_message_index(trace)
                              : report.fields[0].message_index;

  // One 1-byte prepend: does position matter at all?
  report.position_sensitive =
      !classified(with_prepended_probe(trace, match_msg, 1, 1, rng));

  // MTU-sized prepends until classification changes, then confirm with
  // 1-byte packets whether the limit is packet-count based.
  bool change_observed = false;
  for (std::size_t k = 1; k <= options.max_prepend_packets; ++k) {
    if (!classified(with_prepended_probe(trace, match_msg, k, 1400, rng))) {
      change_observed = true;
      if (!classified(with_prepended_probe(trace, match_msg, k, 1, rng))) {
        report.packet_limit = k;  // count-based, not byte-based
      }
      break;
    }
  }
  report.inspects_all_packets = !change_observed;

  // --- Middlebox localization via TTL probing (§5.2) -----------------------
  if (options.probe_ttl) {
    // Probe trace: the matching message alone (blocking / direct signals);
    // for the zero-rating signal, follow it with client bulk so the usage
    // counter can discriminate.
    ApplicationTrace probe;
    probe.app_name = trace.app_name + "-ttlprobe";
    probe.transport = trace.transport;
    probe.server_port = trace.server_port;
    if (match_msg < trace.messages.size()) {
      probe.messages.push_back(trace.messages[match_msg]);
    }
    if (runner.env().signal == dpi::Environment::Signal::kZeroRating) {
      Message bulk;
      bulk.sender = Sender::kClient;
      bulk.payload = rng.bytes(100 * 1024);
      probe.messages.push_back(std::move(bulk));
    }

    TechniqueContext ctx;
    ctx.matching_snippets = report.snippets();
    for (std::size_t ttl = 1; ttl <= options.max_ttl_probe; ++ttl) {
      ReplayOptions o;
      o.server_port_override = pick_port();
      o.context = ctx;
      o.match_packet_ttl = static_cast<std::uint8_t>(ttl);
      o.timeout = netsim::seconds(20);
      ReplayOutcome out = runner.run(probe, o);
      if (runner.differentiated(out)) {
        report.middlebox_hops = static_cast<int>(ttl);
        break;
      }
    }
  }

  report.replay_rounds = runner.rounds() - rounds0;
  report.bytes_replayed = runner.bytes_offered() - bytes0;
  report.virtual_seconds = runner.virtual_seconds_elapsed() - t0;
  return report;
}

}  // namespace liberate::core
