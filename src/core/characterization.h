// characterization.h — reverse-engineering the classifier (§4.2, §5.1).
//
// Produces everything the evasion phase needs: the matching fields (via
// blinding), whether classification is position-sensitive (a 1-byte prepend
// changes it), the packet-count inspection limit (prepend MTU-sized then
// 1-byte packets), whether the classifier inspects every packet
// (match-and-forget detection), port sensitivity, and the middlebox's hop
// distance (TTL probing, §5.2) — plus the §6 cost accounting (rounds, bytes,
// virtual time).
#pragma once

#include <optional>

#include "core/blinding.h"
#include "core/replay.h"

namespace liberate::core {

struct CharacterizationReport {
  std::vector<MatchingField> fields;

  /// Prepending a single 1-byte packet changes classification (GET-anchored
  /// or position-indexed rules — T-Mobile, GFC, testbed Skype).
  bool position_sensitive = false;
  /// Classifier stops matching after the first N payload packets
  /// (nullopt = no limit observed up to the probe ceiling).
  std::optional<std::size_t> packet_limit;
  /// No prepend count changed classification: the classifier inspects every
  /// packet (Iran). Inert insertion and flushing are then pointless.
  bool inspects_all_packets = false;
  bool match_and_forget() const { return !inspects_all_packets; }

  /// Moving the server to a different port evades classification entirely
  /// (Iran, AT&T).
  bool port_sensitive = false;

  /// Smallest TTL at which the classifier still reacted (= middlebox hop
  /// distance); nullopt if TTL probing found nothing (e.g. AT&T's proxy
  /// terminates the probe flow).
  std::optional<int> middlebox_hops;

  // Cost accounting (§6 "Efficiency of classifier analysis").
  int replay_rounds = 0;
  std::uint64_t bytes_replayed = 0;
  double virtual_seconds = 0;

  /// Matching-field byte snippets, ready for TechniqueContext.
  std::vector<Bytes> snippets() const {
    std::vector<Bytes> out;
    for (const auto& f : fields) out.push_back(f.content);
    return out;
  }
};

struct CharacterizationOptions {
  /// Give every replay round its own server port — required against the
  /// GFC, which blocks a server:port after two classified flows (§6.5).
  bool unique_port_per_round = false;
  /// Keep the trace's port for every round (Iran: rules are port-specific,
  /// so characterization must stay on port 80 — §6.6).
  bool pin_trace_port = false;
  std::size_t max_prepend_packets = 10;  // §5.1 probe ceiling
  std::size_t blinding_granularity = 4;
  bool probe_ttl = true;
  std::size_t max_ttl_probe = 16;
};

CharacterizationReport characterize_classifier(
    ReplayRunner& runner, const trace::ApplicationTrace& trace,
    const CharacterizationOptions& options = {});

// Probe-construction helpers shared with the parallel characterizer
// (core/parallel_analysis) so both build byte-identical probe traces.

/// Insert `count` random messages of `size` bytes before message
/// `before_index`, sent by the same endpoint as that message (a prepend
/// probe must land in the direction the classifier counts).
trace::ApplicationTrace with_prepended_probe(const trace::ApplicationTrace& trace,
                                             std::size_t before_index,
                                             std::size_t count,
                                             std::size_t size, Rng& rng);

/// Index of the first client-sent message (0 when none).
std::size_t first_client_message_index(const trace::ApplicationTrace& trace);

}  // namespace liberate::core
