#include "core/detection.h"

#include "util/rng.h"

namespace liberate::core {

/// Random-payload control (the §5.1 fallback): same message structure,
/// random bytes. Randomization can accidentally contain matching patterns —
/// which is exactly why bit inversion is the primary control — but it
/// defeats an inversion-aware adversary.
trace::ApplicationTrace randomized_control_trace(
    const trace::ApplicationTrace& trace, std::uint64_t seed) {
  trace::ApplicationTrace out = trace;
  Rng rng(seed);
  for (auto& m : out.messages) m.payload = rng.bytes(m.payload.size());
  return out;
}

DetectionResult detect_differentiation(ReplayRunner& runner,
                                       const trace::ApplicationTrace& trace,
                                       std::uint16_t server_port_override,
                                       std::uint32_t server_ip_override) {
  DetectionResult result;
  const double t0 = runner.virtual_seconds_elapsed();
  ReplayOptions opts;
  opts.server_port_override = server_port_override;
  opts.server_ip_override = server_ip_override;

  // The bit-inverted control runs FIRST: against escalating censors (the
  // GFC blocks a server:port outright after two classified flows, §6.5) a
  // blocked original replay could poison the control's port and fake a
  // content-independent policy.
  trace::ApplicationTrace control = trace.bit_inverted();
  result.inverted = runner.run(control, opts);
  result.rounds += 1;
  result.bytes_used += control.total_bytes();

  result.original = runner.run(trace, opts);
  result.rounds += 1;
  result.bytes_used += trace.total_bytes();

  result.differentiation = runner.differentiated(result.original);
  bool inverted_differentiated = runner.differentiated(result.inverted);
  result.content_based = result.differentiation && !inverted_differentiated;

  // §5.1: "This approach can be detected by middleboxes, so we fall back to
  // randomization if bit inversion fails to reveal correct matching rules."
  if (result.differentiation && inverted_differentiated) {
    auto random_control = randomized_control_trace(trace, 0xD37EC7);
    ReplayOptions fallback_opts = opts;
    if (fallback_opts.server_ip_override == 0) {
      // Two differentiated replays may already have escalated the default
      // (server, port) endpoint (GFC, §6.5); judge the control from a fresh
      // address so that only content decides.
      fallback_opts.server_ip_override = 0xc6336421;  // 198.51.100.33
    }
    ReplayOutcome random_outcome = runner.run(random_control, fallback_opts);
    result.rounds += 1;
    result.bytes_used += random_control.total_bytes();
    if (!runner.differentiated(random_outcome)) {
      result.content_based = true;
      result.used_randomization_fallback = true;
    }
  }
  result.virtual_seconds = runner.virtual_seconds_elapsed() - t0;
  return result;
}

DetectionResult detect_differentiation_robust(
    ReplayRunner& runner, const trace::ApplicationTrace& trace,
    const std::vector<std::uint32_t>& unseen_server_ips) {
  DetectionResult result = detect_differentiation(runner, trace);
  if (result.differentiation) return result;
  for (std::uint32_t ip : unseen_server_ips) {
    DetectionResult retry = detect_differentiation(runner, trace, 0, ip);
    retry.rounds += result.rounds;
    retry.bytes_used += result.bytes_used;
    if (retry.differentiation) {
      retry.needed_unseen_server = true;
      return retry;
    }
    result = retry;
  }
  return result;
}

}  // namespace liberate::core
