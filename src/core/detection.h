// detection.h — differentiation detection (§4.1, §5.1).
//
// Replays the recorded trace as-is and with every payload bit inverted. The
// inverted replay is the deterministic "control": any byte pattern a DPI
// rule could match is systematically absent, unlike the randomized payloads
// of earlier work which were "sometimes accidentally classified as a
// targeted application".
#pragma once

#include <vector>

#include "core/replay.h"

namespace liberate::core {

struct DetectionResult {
  /// The original trace experienced the environment's policy.
  bool differentiation = false;
  /// ...and the control did not: the policy keys on content.
  bool content_based = false;
  /// The bit-inverted control was ALSO differentiated (an inversion-aware
  /// adversary, §5.1 note 7) and a random-payload control settled it.
  bool used_randomization_fallback = false;
  /// Set by detect_differentiation_robust when the policy only became
  /// visible from a previously unseen replay server (§4.2: the adversary
  /// whitelisted the known one).
  bool needed_unseen_server = false;
  ReplayOutcome original;
  ReplayOutcome inverted;
  int rounds = 0;
  std::uint64_t bytes_used = 0;
  double virtual_seconds = 0;
};

DetectionResult detect_differentiation(ReplayRunner& runner,
                                       const trace::ApplicationTrace& trace,
                                       std::uint16_t server_port_override = 0,
                                       std::uint32_t server_ip_override = 0);

/// §4.2 "Characterization countermeasures": if the default replay server
/// shows no differentiation, retry from previously unseen server addresses
/// before concluding the network is clean.
DetectionResult detect_differentiation_robust(
    ReplayRunner& runner, const trace::ApplicationTrace& trace,
    const std::vector<std::uint32_t>& unseen_server_ips);

/// The §5.1 random-payload control: same message structure, random bytes.
/// Shared with the parallel detector so both build the identical control.
trace::ApplicationTrace randomized_control_trace(
    const trace::ApplicationTrace& trace, std::uint64_t seed);

}  // namespace liberate::core
