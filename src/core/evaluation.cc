#include "core/evaluation.h"

#include <algorithm>

namespace liberate::core {

bool cheaper(const Overhead& a, const Overhead& b) {
  if (a.extra_seconds != b.extra_seconds) {
    return a.extra_seconds < b.extra_seconds;
  }
  if (a.extra_packets != b.extra_packets) {
    return a.extra_packets < b.extra_packets;
  }
  return a.extra_bytes < b.extra_bytes;
}

EvasionEvaluator::EvasionEvaluator(ReplayRunner& runner,
                                   const CharacterizationReport& report)
    : runner_(runner), report_(report), suite_(build_full_suite()) {
  context_.matching_snippets = report.snippets();
  context_.decoy_payload = decoy_request_payload();
  if (report.middlebox_hops) {
    context_.middlebox_ttl = static_cast<std::uint8_t>(*report.middlebox_hops);
  }
}

TechniqueOutcome EvasionEvaluator::evaluate_one(
    Technique& technique, const trace::ApplicationTrace& trace) {
  TechniqueOutcome outcome;
  outcome.technique = technique.name();
  outcome.category = technique.category();
  outcome.overhead = technique.overhead(context_);

  ReplayOptions opts;
  opts.technique = &technique;
  opts.context = context_;
  // Port handling mirrors characterization: a port-sensitive classifier only
  // reacts on the trace port; otherwise fresh ports avoid escalation.
  if (!report_.port_sensitive) opts.server_port_override = next_port_++;

  ReplayOutcome replay = runner_.run(trace, opts);
  outcome.signal_absent = !runner_.differentiated(replay);
  outcome.payload_intact = replay.payload_intact;
  outcome.completed = replay.completed;
  outcome.changed_classification = outcome.signal_absent && replay.completed;
  outcome.evaded = outcome.changed_classification && replay.payload_intact;
  outcome.crafted_reached_server = replay.crafted_at_server > 0;
  outcome.crafted_reassembled = replay.crafted_reassembled;
  outcome.triggered_blocking =
      technique.category() == Category::kInertInsertion && replay.blocked;
  return outcome;
}

EvaluationResult EvasionEvaluator::evaluate(
    const trace::ApplicationTrace& trace, bool run_pruned) {
  EvaluationResult result;
  const int rounds0 = runner_.rounds();
  const std::uint64_t bytes0 = runner_.bytes_offered();
  const double t0 = runner_.virtual_seconds_elapsed();

  PruningFacts facts;
  facts.inspects_all_packets = report_.inspects_all_packets;
  facts.udp_flow = trace.transport == trace::Transport::kUdp;
  std::vector<Technique*> ordered = ordered_suite(suite_, facts);

  // Techniques outside the ordered set are pruned; optionally still run them
  // (full-matrix mode).
  for (const auto& owned : suite_) {
    Technique* t = owned.get();
    bool in_ordered =
        std::find(ordered.begin(), ordered.end(), t) != ordered.end();
    if (in_ordered) continue;
    TechniqueOutcome outcome;
    outcome.technique = t->name();
    outcome.category = t->category();
    outcome.pruned = true;
    // Transport-inapplicable techniques are never run even in matrix mode.
    bool applicable = facts.udp_flow ? t->applies_to_udp() : t->applies_to_tcp();
    if (run_pruned && applicable) {
      TechniqueOutcome run = evaluate_one(*t, trace);
      run.pruned = true;
      outcome = run;
      outcome.pruned = true;
    }
    result.outcomes.push_back(outcome);
  }
  for (Technique* t : ordered) {
    result.outcomes.push_back(evaluate_one(*t, trace));
  }

  // Select the cheapest working technique.
  const TechniqueOutcome* best = nullptr;
  const Technique* best_technique = nullptr;
  for (const auto& o : result.outcomes) {
    if (!o.evaded || o.pruned) continue;
    const Technique* t = nullptr;
    for (const auto& owned : suite_) {
      if (owned->name() == o.technique) {
        t = owned.get();
        break;
      }
    }
    if (t == nullptr) continue;
    if (best == nullptr ||
        cheaper(t->overhead(context_), best_technique->overhead(context_))) {
      best = &o;
      best_technique = t;
    }
  }
  if (best != nullptr) result.selected = best->technique;
  result.replay_rounds = runner_.rounds() - rounds0;
  result.bytes_replayed = runner_.bytes_offered() - bytes0;
  result.virtual_seconds = runner_.virtual_seconds_elapsed() - t0;
  return result;
}

}  // namespace liberate::core
