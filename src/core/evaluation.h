// evaluation.h — evasion evaluation (§4.3 / Fig. 1 third stage).
//
// Runs the (pruned, ordered) technique suite against the environment and
// records, per technique: CC? (classification changed — the differentiation
// signal disappeared while the application data still arrived intact), RS?
// (the crafted packets reached the server's wire), and the per-flow cost.
// This is the machinery behind Table 3.
#pragma once

#include <optional>

#include "core/characterization.h"
#include "core/evasion/registry.h"
#include "core/replay.h"

namespace liberate::core {

struct TechniqueOutcome {
  std::string technique;
  Category category = Category::kInertInsertion;
  bool pruned = false;          // skipped: characterization proved it useless
  /// CC? — the differentiation signal disappeared and the exchange still
  /// completed (Table 3's "Changes Classification").
  bool changed_classification = false;
  /// CC? AND the delivered application bytes were intact: the technique is
  /// actually deployable unilaterally.
  bool evaded = false;
  bool signal_absent = false;   // policy absent (even if payload broke)
  bool payload_intact = false;
  bool completed = false;
  bool crafted_reached_server = false;  // RS?
  bool crafted_reassembled = false;     // RS footnote 2
  bool triggered_blocking = false;      // Iran note 3: the inert packet
                                        // itself got the flow blocked
  Overhead overhead;
};

struct EvaluationResult {
  std::vector<TechniqueOutcome> outcomes;
  std::optional<std::string> selected;  // cheapest working technique
  int replay_rounds = 0;
  std::uint64_t bytes_replayed = 0;
  double virtual_seconds = 0;
};

class EvasionEvaluator {
 public:
  EvasionEvaluator(ReplayRunner& runner, const CharacterizationReport& report);

  /// Evaluate the whole suite. When `run_pruned` is set, even pruned
  /// techniques are executed (the full Table 3 matrix needs every cell; the
  /// production path skips them — §5.2 "Efficient evasion testing").
  EvaluationResult evaluate(const trace::ApplicationTrace& trace,
                            bool run_pruned = false);

  /// Evaluate one technique (one replay round).
  TechniqueOutcome evaluate_one(Technique& technique,
                                const trace::ApplicationTrace& trace);

  const TechniqueContext& context() const { return context_; }
  /// Override pieces of the context (e.g. pause length sweeps).
  TechniqueContext& mutable_context() { return context_; }

 private:
  ReplayRunner& runner_;
  const CharacterizationReport& report_;
  TechniqueContext context_;
  std::vector<std::unique_ptr<Technique>> suite_;
  std::uint16_t next_port_ = 27000;
};

/// Rank techniques by cost: fewer extra seconds first, then fewer extra
/// packets/bytes (deployment picks "the most efficient, successful
/// technique", §4.4).
bool cheaper(const Overhead& a, const Overhead& b);

}  // namespace liberate::core
