#include "core/evasion/flush.h"

#include "netsim/tcp.h"

namespace liberate::core {

using netsim::PacketView;
using netsim::TcpFlags;

std::vector<TimedDatagram> RstAfterMatch::inject_after_match(
    const PacketView& match_pkt, FlowShimState& state,
    const TechniqueContext& ctx) {
  if (state.injected_after_match || !match_pkt.is_tcp()) return {};
  state.injected_after_match = true;
  netsim::Ipv4Header ip;
  ip.ttl = ctx.middlebox_ttl;  // reaches the classifier, dies before the server
  std::uint32_t seq =
      match_pkt.tcp->seq +
      static_cast<std::uint32_t>(match_pkt.tcp->payload.size());
  Bytes rst = craft_flow_tcp_packet(match_pkt, seq, {},
                                    TcpFlags::kRst | TcpFlags::kAck, ip);
  return {TimedDatagram{std::move(rst), 0}};
}

std::vector<TimedDatagram> RstBeforeMatch::inject_before_first_payload(
    const PacketView& first_payload_pkt, FlowShimState& state,
    const TechniqueContext& ctx) {
  if (state.injected_before_payload || !first_payload_pkt.is_tcp()) return {};
  state.injected_before_payload = true;
  netsim::Ipv4Header ip;
  ip.ttl = ctx.middlebox_ttl;
  Bytes rst = craft_flow_tcp_packet(first_payload_pkt, first_payload_pkt.tcp->seq,
                                    {}, TcpFlags::kRst | TcpFlags::kAck, ip);
  return {TimedDatagram{std::move(rst), 0}};
}

}  // namespace liberate::core
