// flush.h — classification flushing (§4.3, Fig. 2(f); Table 3 lower rows).
//
// Middleboxes do not retain classification state forever: results expire
// (testbed: 120 s), are evicted under load (GFC, Figure 4), or are dropped
// when the box sees a RST for the flow (testbed: result lifetime collapses
// to 10 s; T-Mobile: flushed immediately). These techniques exploit that
// with pauses and TTL-limited RSTs that reach the middlebox but never the
// server, so the real connection stays healthy end-to-end.
#pragma once

#include "core/evasion/technique.h"

namespace liberate::core {

/// Idle for t seconds after the handshake, BEFORE the matching payload is
/// sent. Evades classifiers whose per-flow inspection state is evicted while
/// idle (testbed fixed 120 s; GFC during busy hours).
class PauseBeforeMatch : public Technique {
 public:
  std::string name() const override { return "flush/pause-before-match"; }
  Category category() const override {
    return Category::kClassificationFlushing;
  }
  Overhead overhead(const TechniqueContext& ctx) const override {
    Overhead o;
    o.extra_seconds = ctx.pause_seconds;
    o.formula = "t seconds";
    return o;
  }
  TimingPlan timing(const TechniqueContext& ctx) const override {
    return TimingPlan{.pause_before_match_s = ctx.pause_seconds};
  }
  bool applies_to_udp() const override { return true; }
};

/// Idle for t seconds AFTER the matching payload: the classification result
/// expires before the bulk of the flow is exchanged.
class PauseAfterMatch : public Technique {
 public:
  std::string name() const override { return "flush/pause-after-match"; }
  Category category() const override {
    return Category::kClassificationFlushing;
  }
  Overhead overhead(const TechniqueContext& ctx) const override {
    Overhead o;
    o.extra_seconds = ctx.pause_seconds;
    o.formula = "t seconds";
    return o;
  }
  TimingPlan timing(const TechniqueContext& ctx) const override {
    return TimingPlan{.pause_after_match_s = ctx.pause_seconds};
  }
  bool requires_match_and_forget() const override { return true; }
  bool applies_to_udp() const override { return true; }
};

/// TTL-limited RST injected AFTER the classifier matched — variant (a) in
/// Table 3. On the testbed the result then dies within 10 s, so the
/// technique also pauses briefly before the bulk transfer continues.
class RstAfterMatch : public Technique {
 public:
  std::string name() const override { return "flush/ttl-limited-rst-after"; }
  Category category() const override {
    return Category::kClassificationFlushing;
  }
  Overhead overhead(const TechniqueContext& ctx) const override {
    (void)ctx;
    Overhead o;
    o.extra_packets = 1;
    o.extra_bytes = 40;
    o.extra_seconds = kPostRstPause;
    o.formula = "1 packet (+ short pause)";
    return o;
  }
  TimingPlan timing(const TechniqueContext& ctx) const override {
    (void)ctx;
    return TimingPlan{.pause_after_match_s = kPostRstPause};
  }
  bool requires_match_and_forget() const override { return true; }

  std::vector<TimedDatagram> inject_after_match(
      const netsim::PacketView& match_pkt, FlowShimState& state,
      const TechniqueContext& ctx) override;

  /// Long enough to outlive the testbed's 10 s post-RST result cache.
  static constexpr double kPostRstPause = 12.0;
};

/// TTL-limited RST injected right after the handshake, BEFORE any payload —
/// variant (b). Classifiers that flush flow state on RST (and only track
/// flows from their SYN) never see the flow again.
class RstBeforeMatch : public Technique {
 public:
  std::string name() const override { return "flush/ttl-limited-rst-before"; }
  Category category() const override {
    return Category::kClassificationFlushing;
  }
  Overhead overhead(const TechniqueContext& ctx) const override {
    (void)ctx;
    Overhead o;
    o.extra_packets = 1;
    o.extra_bytes = 40;
    o.formula = "1 packet";
    return o;
  }
  bool requires_match_and_forget() const override { return true; }

  std::vector<TimedDatagram> inject_before_first_payload(
      const netsim::PacketView& first_payload_pkt, FlowShimState& state,
      const TechniqueContext& ctx) override;
};

}  // namespace liberate::core
