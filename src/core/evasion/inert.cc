#include "core/evasion/inert.h"

#include "netsim/tcp.h"
#include "netsim/udp.h"

namespace liberate::core {

using netsim::Ipv4Header;
using netsim::Ipv4Option;
using netsim::PacketView;
using netsim::TcpFlags;
using netsim::TcpHeader;
using netsim::UdpHeader;

const std::vector<InertVariant>& all_inert_variants() {
  static const std::vector<InertVariant> kAll = {
      InertVariant::kLowTtl,
      InertVariant::kInvalidIpVersion,
      InertVariant::kInvalidIpHeaderLength,
      InertVariant::kIpTotalLengthLong,
      InertVariant::kIpTotalLengthShort,
      InertVariant::kWrongIpProtocol,
      InertVariant::kWrongIpChecksum,
      InertVariant::kInvalidIpOptions,
      InertVariant::kDeprecatedIpOptions,
      InertVariant::kWrongTcpSeq,
      InertVariant::kWrongTcpChecksum,
      InertVariant::kTcpNoAckFlag,
      InertVariant::kInvalidTcpDataOffset,
      InertVariant::kInvalidTcpFlagCombo,
      InertVariant::kUdpInvalidChecksum,
      InertVariant::kUdpLengthLong,
      InertVariant::kUdpLengthShort,
  };
  return kAll;
}

std::string InertInsertion::name() const {
  switch (variant_) {
    case InertVariant::kLowTtl:
      return "inert/ip-low-ttl";
    case InertVariant::kInvalidIpVersion:
      return "inert/ip-invalid-version";
    case InertVariant::kInvalidIpHeaderLength:
      return "inert/ip-invalid-header-length";
    case InertVariant::kIpTotalLengthLong:
      return "inert/ip-total-length-long";
    case InertVariant::kIpTotalLengthShort:
      return "inert/ip-total-length-short";
    case InertVariant::kWrongIpProtocol:
      return "inert/ip-wrong-protocol";
    case InertVariant::kWrongIpChecksum:
      return "inert/ip-wrong-checksum";
    case InertVariant::kInvalidIpOptions:
      return "inert/ip-invalid-options";
    case InertVariant::kDeprecatedIpOptions:
      return "inert/ip-deprecated-options";
    case InertVariant::kWrongTcpSeq:
      return "inert/tcp-wrong-seq";
    case InertVariant::kWrongTcpChecksum:
      return "inert/tcp-wrong-checksum";
    case InertVariant::kTcpNoAckFlag:
      return "inert/tcp-no-ack-flag";
    case InertVariant::kInvalidTcpDataOffset:
      return "inert/tcp-invalid-data-offset";
    case InertVariant::kInvalidTcpFlagCombo:
      return "inert/tcp-invalid-flag-combo";
    case InertVariant::kUdpInvalidChecksum:
      return "inert/udp-invalid-checksum";
    case InertVariant::kUdpLengthLong:
      return "inert/udp-length-long";
    case InertVariant::kUdpLengthShort:
      return "inert/udp-length-short";
  }
  return "inert/?";
}

bool InertInsertion::applies_to_udp() const {
  switch (variant_) {
    case InertVariant::kUdpInvalidChecksum:
    case InertVariant::kUdpLengthLong:
    case InertVariant::kUdpLengthShort:
      return true;
    // IP-level variants work over any transport; we exercise them on TCP
    // (like the paper) to keep the matrix identical to Table 3.
    default:
      return false;
  }
}

bool InertInsertion::applies_to_tcp() const { return !applies_to_udp(); }

Overhead InertInsertion::overhead(const TechniqueContext& ctx) const {
  Overhead o;
  o.extra_packets = 1;
  o.extra_bytes = 40 + ctx.decoy_payload.size();
  o.formula = "k packets (k = 1)";
  return o;
}

Bytes InertInsertion::craft_tcp_inert(const PacketView& pkt,
                                      const TechniqueContext& ctx) const {
  Ipv4Header ip;
  ip.identification = kCraftedIpId;
  TcpHeader tcp;
  std::uint8_t flags = TcpFlags::kAck | TcpFlags::kPsh;
  std::uint32_t seq = pkt.tcp->seq;  // same position as the real payload

  switch (variant_) {
    case InertVariant::kLowTtl:
      ip.ttl = ctx.middlebox_ttl;
      break;
    case InertVariant::kInvalidIpVersion:
      ip.version = 5;
      break;
    case InertVariant::kInvalidIpHeaderLength:
      ip.ihl_words = 3;
      break;
    case InertVariant::kIpTotalLengthLong:
      ip.total_length_override = static_cast<std::uint16_t>(
          20 + 20 + ctx.decoy_payload.size() + 64);
      break;
    case InertVariant::kIpTotalLengthShort:
      ip.total_length_override = 20 + 20 + 4;
      break;
    case InertVariant::kWrongIpProtocol:
      ip.protocol = 143;  // unassigned
      break;
    case InertVariant::kWrongIpChecksum:
      ip.checksum_override = 0x0bad;
      break;
    case InertVariant::kInvalidIpOptions:
      ip.options.push_back(Ipv4Option::invalid_length());
      break;
    case InertVariant::kDeprecatedIpOptions:
      ip.options.push_back(Ipv4Option::stream_id(0x0007));
      break;
    case InertVariant::kWrongTcpSeq:
      seq = pkt.tcp->seq + 0x00500000;  // far outside any sane window
      break;
    case InertVariant::kWrongTcpChecksum:
      tcp.checksum_override = 0x0bad;
      break;
    case InertVariant::kTcpNoAckFlag:
      flags = TcpFlags::kPsh;  // data without ACK
      break;
    case InertVariant::kInvalidTcpDataOffset:
      tcp.data_offset_words = 2;  // below the 5-word minimum: always invalid
      break;
    case InertVariant::kInvalidTcpFlagCombo:
      flags = TcpFlags::kSyn | TcpFlags::kFin | TcpFlags::kAck;
      break;
    default:
      break;  // UDP variants handled elsewhere
  }
  return craft_flow_tcp_packet(pkt, seq, ctx.decoy_payload, flags, ip, tcp);
}

Bytes InertInsertion::craft_udp_inert(const PacketView& pkt,
                                      const TechniqueContext& ctx) const {
  UdpHeader udp;
  udp.src_port = pkt.udp->src_port;
  udp.dst_port = pkt.udp->dst_port;
  // A dummy (non-matching) payload: shifts the real first packet to
  // position 2 and gives position-sensitive rules nothing to match.
  Bytes dummy = ctx.decoy_payload.empty() ? to_bytes("DUMMYPKT")
                                          : ctx.decoy_payload;
  switch (variant_) {
    case InertVariant::kUdpInvalidChecksum:
      udp.checksum_override = 0x0bad;
      break;
    case InertVariant::kUdpLengthLong:
      udp.length_override = static_cast<std::uint16_t>(8 + dummy.size() + 32);
      break;
    case InertVariant::kUdpLengthShort:
      udp.length_override = 8 + 2;
      break;
    default:
      break;
  }
  netsim::Ipv4Header ip;
  ip.src = pkt.ip.src;
  ip.dst = pkt.ip.dst;
  ip.identification = kCraftedIpId;
  return make_udp_datagram(ip, udp, dummy);
}

std::vector<TimedDatagram> InertInsertion::inject_before_first_payload(
    const PacketView& first_payload_pkt, FlowShimState& state,
    const TechniqueContext& ctx) {
  if (state.injected_before_payload) return {};
  state.injected_before_payload = true;
  std::vector<TimedDatagram> out;
  if (first_payload_pkt.is_tcp() && applies_to_tcp()) {
    out.push_back(TimedDatagram{craft_tcp_inert(first_payload_pkt, ctx), 0});
  } else if (first_payload_pkt.is_udp() && applies_to_udp()) {
    out.push_back(TimedDatagram{craft_udp_inert(first_payload_pkt, ctx), 0});
  }
  return out;
}

}  // namespace liberate::core
