// inert.h — inert packet insertion (§4.3, Fig. 2(b)/(c); Table 3 upper rows).
//
// After the handshake and before the application's first payload packet, the
// shim injects a packet that carries a *valid request for a benign
// application class* but is crafted so that it never takes effect at the
// server: either it dies in the network (TTL-limited) or the server OS
// rejects it (invalid header fields). A middlebox with an incomplete
// validation implementation processes the packet anyway and — being
// match-and-forget — sticks to the benign verdict.
#pragma once

#include "core/evasion/technique.h"

namespace liberate::core {

enum class InertVariant {
  kLowTtl,                 // IP: TTL reaches classifier, not server
  kInvalidIpVersion,       // IP: version != 4
  kInvalidIpHeaderLength,  // IP: IHL < 5
  kIpTotalLengthLong,      // IP: total length > actual
  kIpTotalLengthShort,     // IP: total length < actual
  kWrongIpProtocol,        // IP: bogus protocol number
  kWrongIpChecksum,        // IP: bad header checksum
  kInvalidIpOptions,       // IP: malformed option TLV
  kDeprecatedIpOptions,    // IP: Stream-ID option (RFC 6814)
  kWrongTcpSeq,            // TCP: far out-of-window sequence number
  kWrongTcpChecksum,       // TCP: bad checksum
  kTcpNoAckFlag,           // TCP: data segment without ACK
  kInvalidTcpDataOffset,   // TCP: data offset past segment end
  kInvalidTcpFlagCombo,    // TCP: SYN|FIN data segment
  kUdpInvalidChecksum,     // UDP: bad checksum
  kUdpLengthLong,          // UDP: declared length > payload
  kUdpLengthShort,         // UDP: declared length < payload
};

/// All variants in Table 3 row order.
const std::vector<InertVariant>& all_inert_variants();

class InertInsertion : public Technique {
 public:
  explicit InertInsertion(InertVariant variant) : variant_(variant) {}

  std::string name() const override;
  Category category() const override { return Category::kInertInsertion; }
  Overhead overhead(const TechniqueContext& ctx) const override;
  bool requires_match_and_forget() const override { return true; }
  bool applies_to_udp() const override;
  bool applies_to_tcp() const override;

  std::vector<TimedDatagram> inject_before_first_payload(
      const netsim::PacketView& first_payload_pkt, FlowShimState& state,
      const TechniqueContext& ctx) override;

  InertVariant variant() const { return variant_; }

 private:
  Bytes craft_tcp_inert(const netsim::PacketView& pkt,
                        const TechniqueContext& ctx) const;
  Bytes craft_udp_inert(const netsim::PacketView& pkt,
                        const TechniqueContext& ctx) const;

  InertVariant variant_;
};

}  // namespace liberate::core
