#include "core/evasion/registry.h"

#include <algorithm>

namespace liberate::core {

std::vector<std::unique_ptr<Technique>> build_full_suite() {
  std::vector<std::unique_ptr<Technique>> suite;
  for (InertVariant v : all_inert_variants()) {
    suite.push_back(std::make_unique<InertInsertion>(v));
  }
  suite.push_back(std::make_unique<IpFragmentSplit>(/*reversed=*/false));
  suite.push_back(std::make_unique<TcpSegmentSplit>(/*reversed=*/false));
  suite.push_back(std::make_unique<IpFragmentSplit>(/*reversed=*/true));
  suite.push_back(std::make_unique<TcpSegmentSplit>(/*reversed=*/true));
  suite.push_back(std::make_unique<UdpReorder>());
  suite.push_back(std::make_unique<PauseAfterMatch>());
  suite.push_back(std::make_unique<PauseBeforeMatch>());
  suite.push_back(std::make_unique<RstAfterMatch>());
  suite.push_back(std::make_unique<RstBeforeMatch>());
  return suite;
}

std::vector<Technique*> ordered_suite(
    const std::vector<std::unique_ptr<Technique>>& suite,
    const PruningFacts& facts) {
  std::vector<Technique*> out;
  for (const auto& t : suite) {
    // Transport applicability.
    if (facts.udp_flow && !t->applies_to_udp()) continue;
    if (!facts.udp_flow && !t->applies_to_tcp()) continue;
    // "if lib·erate finds that a classifier inspects all packets ... inert
    // packet insertions are unlikely to evade" (§5.2) — same for flushing:
    // with no retained state there is nothing to flush. Only
    // splitting/reordering remains.
    if (facts.inspects_all_packets &&
        (t->requires_match_and_forget() ||
         t->category() == Category::kInertInsertion ||
         t->category() == Category::kClassificationFlushing)) {
      continue;
    }
    out.push_back(t.get());
  }

  if (facts.prioritize_known_effective) {
    // Cheap, broadly effective techniques first: splitting/reordering (work
    // everywhere but the GFC/AT&T), then TTL-limited tricks, then the rest.
    auto rank = [](const Technique* t) {
      switch (t->category()) {
        case Category::kPayloadReordering:
          return 0;
        case Category::kPayloadSplitting:
          return 1;
        case Category::kInertInsertion:
          return t->name().find("low-ttl") != std::string::npos ? 2 : 3;
        case Category::kClassificationFlushing:
          return 4;
      }
      return 5;
    };
    std::stable_sort(out.begin(), out.end(),
                     [&](const Technique* a, const Technique* b) {
                       return rank(a) < rank(b);
                     });
  }
  return out;
}

Bytes decoy_request_payload() {
  return to_bytes(
      "GET /headlines.html HTTP/1.1\r\n"
      "Host: news-decoy.example.net\r\n"
      "User-Agent: Mozilla/5.0\r\n"
      "Accept: text/html\r\n"
      "\r\n");
}

}  // namespace liberate::core
