// registry.h — the full evasion suite, with the ordering/pruning policy of
// §5.2 ("Efficient evasion testing").
#pragma once

#include <memory>
#include <vector>

#include "core/evasion/flush.h"
#include "core/evasion/inert.h"
#include "core/evasion/split.h"
#include "core/evasion/technique.h"

namespace liberate::core {

/// Everything lib·erate knows, in Table 3 row order: 17 inert variants, 2
/// splitting, 3 reordering, 4 flushing techniques.
std::vector<std::unique_ptr<Technique>> build_full_suite();

/// What characterization learned, as far as pruning/ordering cares.
struct PruningFacts {
  bool inspects_all_packets = false;  // Iran: inert & flushing are hopeless
  bool udp_flow = false;
  /// Techniques observed to work in the paper's study are tried first
  /// ("lib·erate tests evasion techniques that were effective in our study
  /// first", §5.2).
  bool prioritize_known_effective = true;
};

/// Order the suite for evaluation and drop techniques that characterization
/// proves useless. Returned pointers alias `suite`.
std::vector<Technique*> ordered_suite(
    const std::vector<std::unique_ptr<Technique>>& suite,
    const PruningFacts& facts);

/// The decoy request carried by inert packets: a valid request for a benign
/// application every classifier recognizes but none differentiates.
Bytes decoy_request_payload();

}  // namespace liberate::core
