#include "core/evasion/shim.h"

#include "obs/obs.h"
#include "util/strings.h"

namespace liberate::core {

using netsim::Direction;
using netsim::FiveTuple;
using netsim::PacketView;

#if LIBERATE_OBS_LEVEL >= LIBERATE_OBS_LEVEL_FULL
namespace {

/// Provenance hop kind for a technique's mutations.
const char* hop_kind(Category c) {
  switch (c) {
    case Category::kInertInsertion:
      return "insert";
    case Category::kPayloadSplitting:
      return "split";
    case Category::kPayloadReordering:
      return "reorder";
    case Category::kClassificationFlushing:
      return "flush";
  }
  return "rewrite";
}

/// Locate a transformed piece's bytes within its parent packet. Only header
/// scalars of `parent` are read — its payload spans may already dangle once
/// the parent buffer has been moved into the technique.
std::string piece_detail(const PacketView& parent, const Bytes& piece) {
  auto parsed = netsim::parse_packet(piece);
  if (!parsed.ok()) return {};
  const PacketView& pv = parsed.value();
  if (pv.ip.fragment_offset_words != 0 || pv.ip.flag_more_fragments) {
    return format("ip-frag offset=%zu",
                  static_cast<std::size_t>(pv.ip.fragment_offset_words) * 8);
  }
  if (parent.tcp && pv.tcp && !pv.tcp->payload.empty()) {
    std::uint32_t off = pv.tcp->seq - parent.tcp->seq;
    if (off < parent.tcp->payload.size()) {
      return format("payload[%u..%zu) of parent", off,
                    static_cast<std::size_t>(off) + pv.tcp->payload.size());
    }
  }
  return {};
}

}  // namespace
#endif

FlowShimState& EvasionShim::touch_flow(const netsim::FiveTuple& tuple,
                                       const PacketView& pkt) {
  auto [value, inserted] = flows_.touch(tuple);
  if (!inserted) return *value;
  // Fresh state. A TCP flow whose first packet through the shim is not the
  // SYN is being resumed mid-stream — its previous state was LRU-evicted
  // (or the shim attached late). Give it retransmission semantics: the
  // injection/mutation bookkeeping already happened in the flow's first
  // life, so replaying it here would double-mutate the matching packet and
  // attribute the old flow's traffic to whatever technique is active now.
  if (pkt.is_tcp() && pkt.tcp && !pkt.tcp->syn()) {
    value->resumed = true;
    value->payload_packets_sent = 1;
    value->match_packet_seen = true;
    value->injected_before_payload = true;
    value->injected_after_match = true;
  }
  enforce_flow_cap();
  // Eviction backward-shifts table slots, so the insert-time pointer may be
  // stale (ASan-poisoned); re-resolve the entry.
  return *flows_.find(tuple);
}

void EvasionShim::enforce_flow_cap() {
  if (max_flows_ == 0) return;
  while (flows_.size() > max_flows_) {
    flows_.evict_lru();
    ++flows_evicted_;
    LIBERATE_COUNTER_ADD("core.shim.flow_evictions", 1);
  }
}

void EvasionShim::release_held_udp() {
  if (!held_udp_packet_) return;
  Bytes held = std::move(*held_udp_packet_);
  held_udp_packet_.reset();
  inner_.send(std::move(held));
}

void EvasionShim::emit(std::vector<TimedDatagram> datagrams) {
  for (auto& td : datagrams) {
    if (td.delay == 0) {
      inner_.send(std::move(td.datagram));
    } else {
      netsim::EventLoop& l = inner_.loop();
      netsim::NetworkPort* port = &inner_;
      l.schedule(td.delay, [port, d = std::move(td.datagram)]() mutable {
        port->send(std::move(d));
      });
    }
  }
}

void EvasionShim::send(Bytes datagram) {
  auto parsed = netsim::parse_packet(datagram);
  if (!parsed.ok()) {
    inner_.send(std::move(datagram));
    return;
  }
  const PacketView& pkt = parsed.value();

  // TTL override for localization probes applies with or without a
  // technique.
  const bool has_payload = !pkt.app_payload().empty();
  const bool is_match =
      has_payload && contains_matching_field(pkt.app_payload(),
                                             context_.matching_snippets);
  if (match_packet_ttl_ && is_match) {
    netsim::set_ttl_in_place(datagram, *match_packet_ttl_);
  }

  if (technique_ == nullptr) {
    inner_.send(std::move(datagram));
    return;
  }

  FiveTuple tuple = pkt.five_tuple();
  // A bare RST (no payload) on an untracked flow carries nothing a
  // technique can act on; creating state for it would let teardown traffic
  // churn the LRU table and resurrect evicted flows as ghost entries.
  if (pkt.is_tcp() && pkt.tcp && pkt.tcp->rst() && !has_payload &&
      flows_.find(tuple) == nullptr) {
    inner_.send(std::move(datagram));
    return;
  }
  FlowShimState& state = touch_flow(tuple, pkt);
  state.tuple = tuple;
  state.udp = pkt.is_udp();

  // UDP order swap: hold the first payload packet, release it after the
  // second.
  if (pkt.is_udp() && technique_->swaps_first_two_udp_packets()) {
    if (state.payload_packets_sent == 0 && !held_udp_packet_) {
      held_udp_packet_ = std::move(datagram);
      state.payload_packets_sent += 1;
      ++packets_rewritten_;
      LIBERATE_COST_TICK(kMutatedPackets, 1);
      return;
    }
    if (held_udp_packet_) {
      Bytes first = std::move(*held_udp_packet_);
      held_udp_packet_.reset();
      state.payload_packets_sent += 1;
      LIBERATE_PROV_NOTE_PKT(inner_.loop().now(), first, "mutation",
                             obs::fv("hop", "reorder"),
                             obs::fv("actor", technique_->name()),
                             obs::fv("detail", "udp-swap-first-two"));
      inner_.send(std::move(datagram));
      inner_.send(std::move(first));
      return;
    }
    state.payload_packets_sent += 1;
    inner_.send(std::move(datagram));
    return;
  }

  if (!has_payload) {
    // Handshake/ACK/RST/FIN control traffic passes untouched.
    inner_.send(std::move(datagram));
    return;
  }

  // Injections that precede the first payload-carrying packet.
  if (state.payload_packets_sent == 0) {
    auto inj = technique_->inject_before_first_payload(pkt, state, context_);
#if LIBERATE_OBS_LEVEL >= LIBERATE_OBS_LEVEL_FULL
    for (const TimedDatagram& td : inj) {
      obs::prov::ProvenanceRecorder::instance().edge(
          inner_.loop().now(), datagram, td.datagram,
          hop_kind(technique_->category()), technique_->name(),
          "before-first-payload");
    }
    if (!inj.empty()) {
      // Ledger entry so the injection shows up in the flow's decision path
      // (the edges alone only live in the lineage graph).
      obs::prov::ProvenanceRecorder::instance().note(
          inner_.loop().now(), obs::prov::flow_key_of(datagram), "mutation",
          {obs::fv("hop", hop_kind(technique_->category())),
           obs::fv("technique", technique_->name()),
           obs::fv("injected", static_cast<std::uint64_t>(inj.size())),
           obs::fv("position", "before-first-payload")},
          obs::prov::packet_id(inj.front().datagram));
    }
#endif
    packets_injected_ += inj.size();
    emit(std::move(inj));
  }
  state.payload_packets_sent += 1;

  if (is_match) {
    const bool first_match = !state.match_packet_seen;
    state.match_packet_seen = true;
#if LIBERATE_OBS_LEVEL >= LIBERATE_OBS_LEVEL_FULL
    // Digest the matching packet before its buffer moves into the
    // technique; every produced piece records a causal hop back to it.
    auto& prov_rec = obs::prov::ProvenanceRecorder::instance();
    const std::uint64_t parent_id = prov_rec.packet(datagram, "wire");
    const auto parent_size = static_cast<std::uint32_t>(datagram.size());
    const std::uint64_t prov_now = inner_.loop().now();
    const obs::prov::FlowKey parent_flow = obs::prov::flow_key_of(datagram);
#endif
    auto pieces = technique_->transform_matching_packet(std::move(datagram),
                                                        pkt, state, context_);
    if (first_match && pieces.size() != 1) {
      packets_rewritten_ += pieces.size();
      LIBERATE_COST_TICK(kMutatedPackets, pieces.size());
    }
#if LIBERATE_OBS_LEVEL >= LIBERATE_OBS_LEVEL_FULL
    for (const TimedDatagram& td : pieces) {
      prov_rec.edge_ids(prov_now, parent_id, parent_size,
                        obs::prov::packet_id(td.datagram),
                        static_cast<std::uint32_t>(td.datagram.size()),
                        hop_kind(technique_->category()), technique_->name(),
                        piece_detail(pkt, td.datagram));
    }
    if (pieces.size() > 1) {
      prov_rec.note(prov_now, parent_flow, "mutation",
                    {obs::fv("hop", hop_kind(technique_->category())),
                     obs::fv("technique", technique_->name()),
                     obs::fv("pieces",
                             static_cast<std::uint64_t>(pieces.size()))},
                    obs::prov::packet_id(pieces.front().datagram));
    }
#endif
    emit(std::move(pieces));
    if (!first_match) return;  // retransmission: transform only, no inject
    auto after = technique_->inject_after_match(pkt, state, context_);
#if LIBERATE_OBS_LEVEL >= LIBERATE_OBS_LEVEL_FULL
    for (const TimedDatagram& td : after) {
      prov_rec.edge_ids(prov_now, parent_id, parent_size,
                        obs::prov::packet_id(td.datagram),
                        static_cast<std::uint32_t>(td.datagram.size()),
                        hop_kind(technique_->category()), technique_->name(),
                        "after-match");
    }
    if (!after.empty()) {
      prov_rec.note(prov_now, parent_flow, "mutation",
                    {obs::fv("hop", hop_kind(technique_->category())),
                     obs::fv("technique", technique_->name()),
                     obs::fv("injected",
                             static_cast<std::uint64_t>(after.size())),
                     obs::fv("position", "after-match")},
                    obs::prov::packet_id(after.front().datagram));
    }
#endif
    packets_injected_ += after.size();
    emit(std::move(after));
    return;
  }

  inner_.send(std::move(datagram));
}

}  // namespace liberate::core
