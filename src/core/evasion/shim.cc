#include "core/evasion/shim.h"

namespace liberate::core {

using netsim::Direction;
using netsim::FiveTuple;
using netsim::PacketView;

void EvasionShim::emit(std::vector<TimedDatagram> datagrams) {
  for (auto& td : datagrams) {
    if (td.delay == 0) {
      inner_.send(std::move(td.datagram));
    } else {
      netsim::EventLoop& l = inner_.loop();
      netsim::NetworkPort* port = &inner_;
      l.schedule(td.delay, [port, d = std::move(td.datagram)]() mutable {
        port->send(std::move(d));
      });
    }
  }
}

void EvasionShim::send(Bytes datagram) {
  auto parsed = netsim::parse_packet(datagram);
  if (!parsed.ok()) {
    inner_.send(std::move(datagram));
    return;
  }
  const PacketView& pkt = parsed.value();

  // TTL override for localization probes applies with or without a
  // technique.
  const bool has_payload = !pkt.app_payload().empty();
  const bool is_match =
      has_payload && contains_matching_field(pkt.app_payload(),
                                             context_.matching_snippets);
  if (match_packet_ttl_ && is_match) {
    netsim::set_ttl_in_place(datagram, *match_packet_ttl_);
  }

  if (technique_ == nullptr) {
    inner_.send(std::move(datagram));
    return;
  }

  FiveTuple tuple = pkt.five_tuple();
  FlowShimState& state = flows_[tuple];
  state.tuple = tuple;
  state.udp = pkt.is_udp();

  // UDP order swap: hold the first payload packet, release it after the
  // second.
  if (pkt.is_udp() && technique_->swaps_first_two_udp_packets()) {
    if (state.payload_packets_sent == 0 && !held_udp_packet_) {
      held_udp_packet_ = std::move(datagram);
      state.payload_packets_sent += 1;
      ++packets_rewritten_;
      return;
    }
    if (held_udp_packet_) {
      Bytes first = std::move(*held_udp_packet_);
      held_udp_packet_.reset();
      state.payload_packets_sent += 1;
      inner_.send(std::move(datagram));
      inner_.send(std::move(first));
      return;
    }
    state.payload_packets_sent += 1;
    inner_.send(std::move(datagram));
    return;
  }

  if (!has_payload) {
    // Handshake/ACK/RST/FIN control traffic passes untouched.
    inner_.send(std::move(datagram));
    return;
  }

  // Injections that precede the first payload-carrying packet.
  if (state.payload_packets_sent == 0) {
    auto inj = technique_->inject_before_first_payload(pkt, state, context_);
    packets_injected_ += inj.size();
    emit(std::move(inj));
  }
  state.payload_packets_sent += 1;

  if (is_match && !state.match_packet_seen) {
    state.match_packet_seen = true;
    auto pieces = technique_->transform_matching_packet(std::move(datagram),
                                                        pkt, state, context_);
    if (pieces.size() != 1) packets_rewritten_ += pieces.size();
    emit(std::move(pieces));
    auto after = technique_->inject_after_match(pkt, state, context_);
    packets_injected_ += after.size();
    emit(std::move(after));
    return;
  }
  if (is_match) {
    // Retransmission of the matching payload: apply the same transform so
    // the wire never carries the intact field.
    auto pieces = technique_->transform_matching_packet(std::move(datagram),
                                                        pkt, state, context_);
    emit(std::move(pieces));
    return;
  }

  inner_.send(std::move(datagram));
}

}  // namespace liberate::core
