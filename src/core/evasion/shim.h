// shim.h — the evasion shim: lib·erate's deployment vehicle.
//
// An EvasionShim wraps the client's NetworkPort, exactly where the paper's
// transparent proxy / linked library sits (Fig. 3, step 3): below the
// unmodified application and its stack, above the wire. It watches outgoing
// packets, recognizes the flow structure (handshake, first payload packet,
// the packet carrying matching fields) and lets the active Technique inject
// or rewrite packets.
#pragma once

#include <map>
#include <optional>

#include "core/evasion/technique.h"
#include "netsim/network.h"

namespace liberate::core {

class EvasionShim : public netsim::NetworkPort {
 public:
  EvasionShim(netsim::NetworkPort& inner, Technique* technique,
              TechniqueContext context)
      : inner_(inner), technique_(technique), context_(std::move(context)) {}

  void send(Bytes datagram) override;
  netsim::EventLoop& loop() override { return inner_.loop(); }

  /// Swap the active technique at runtime (adaptation).
  void set_technique(Technique* technique) { technique_ = technique; }
  void set_context(TechniqueContext context) { context_ = std::move(context); }
  const TechniqueContext& context() const { return context_; }

  /// Localization support: force this TTL onto packets that carry matching
  /// fields (used by the TTL-probing phase, §5.2).
  void set_match_packet_ttl(std::optional<std::uint8_t> ttl) {
    match_packet_ttl_ = ttl;
  }

  std::uint64_t packets_injected() const { return packets_injected_; }
  std::uint64_t packets_rewritten() const { return packets_rewritten_; }

 private:
  void emit(std::vector<TimedDatagram> datagrams);

  netsim::NetworkPort& inner_;
  Technique* technique_;
  TechniqueContext context_;
  std::map<netsim::FiveTuple, FlowShimState> flows_;
  std::optional<Bytes> held_udp_packet_;
  std::optional<std::uint8_t> match_packet_ttl_;
  std::uint64_t packets_injected_ = 0;
  std::uint64_t packets_rewritten_ = 0;
};

}  // namespace liberate::core
