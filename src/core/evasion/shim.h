// shim.h — the evasion shim: lib·erate's deployment vehicle.
//
// An EvasionShim wraps the client's NetworkPort, exactly where the paper's
// transparent proxy / linked library sits (Fig. 3, step 3): below the
// unmodified application and its stack, above the wire. It watches outgoing
// packets, recognizes the flow structure (handshake, first payload packet,
// the packet carrying matching fields) and lets the active Technique inject
// or rewrite packets.
//
// Per-flow state lives in an open-addressing LRU FlowTable (util/
// flow_table.h): contiguous struct-of-arrays slots, tombstone-free
// deletion, intrusive recency links — one shim comfortably tracks a
// million concurrent flows. Evicting a flow forgets its "already mutated"
// marks; if the same 5-tuple re-arrives mid-stream the shim recognizes the
// missing handshake and gives it retransmission semantics (transform only,
// no injection, no re-count) instead of double-mutating it.
#pragma once

#include <memory>
#include <optional>

#include "core/evasion/technique.h"
#include "netsim/network.h"
#include "util/flow_table.h"

namespace liberate::core {

class EvasionShim : public netsim::NetworkPort {
 public:
  /// Default per-flow state cap: deployments wrap every flow of an
  /// application, and an unbounded table would grow with fleet traffic.
  static constexpr std::size_t kDefaultMaxFlows = 4096;

  /// Non-owning construction: `technique` must outlive the shim (the replay
  /// harness scopes both to one round). Deployments that swap techniques at
  /// runtime must use the owning set_technique overloads instead.
  EvasionShim(netsim::NetworkPort& inner, Technique* technique,
              TechniqueContext context)
      : inner_(inner), technique_(technique), context_(std::move(context)) {}

  void send(Bytes datagram) override;
  netsim::EventLoop& loop() override { return inner_.loop(); }

  /// Swap the active technique at runtime (adaptation). The shim takes
  /// (shared) ownership so packets in flight keep a live technique even if
  /// the control plane drops its reference first — hot-swapping mid-flow
  /// must never leave technique_ dangling. A UDP first-payload packet held
  /// by the outgoing technique is released first: held bytes belong to the
  /// era that held them, not to the incoming technique's counters.
  void set_technique(std::shared_ptr<Technique> technique) {
    release_held_udp();
    owned_technique_ = std::move(technique);
    technique_ = owned_technique_.get();
  }
  void clear_technique() {
    release_held_udp();
    technique_ = nullptr;
    owned_technique_.reset();
  }
  const Technique* technique() const { return technique_; }
  void set_context(TechniqueContext context) { context_ = std::move(context); }
  const TechniqueContext& context() const { return context_; }

  /// Bound the per-flow state table (LRU eviction; 0 = unlimited). Evicting
  /// a live flow forgets its "already mutated" marks, so the cap should sit
  /// well above the expected concurrent-flow count — the default does.
  void set_max_flows(std::size_t max_flows) {
    max_flows_ = max_flows;
    enforce_flow_cap();
  }
  std::size_t tracked_flows() const { return flows_.size(); }
  std::uint64_t flows_evicted() const { return flows_evicted_; }
  /// Occupancy of the open-addressing flow table, for telemetry.
  double flow_table_load() const { return flows_.load_factor(); }
  std::size_t flow_table_capacity() const { return flows_.capacity(); }
  /// Pre-size the flow table (e.g. a fleet shard that knows its wave
  /// concurrency) so the hot path never pays a growth rehash.
  void reserve_flows(std::size_t flows) { flows_.reserve(flows); }

  /// Localization support: force this TTL onto packets that carry matching
  /// fields (used by the TTL-probing phase, §5.2).
  void set_match_packet_ttl(std::optional<std::uint8_t> ttl) {
    match_packet_ttl_ = ttl;
  }

  std::uint64_t packets_injected() const { return packets_injected_; }
  std::uint64_t packets_rewritten() const { return packets_rewritten_; }

 private:
  void emit(std::vector<TimedDatagram> datagrams);
  /// Look up (or create) the flow's state and mark it most recently used,
  /// evicting the coldest flow when the table exceeds max_flows_. The
  /// returned reference is only valid until the next touch_flow call (open
  /// addressing relocates entries; stale access is ASan-poisoned).
  FlowShimState& touch_flow(const netsim::FiveTuple& tuple,
                            const netsim::PacketView& pkt);
  void enforce_flow_cap();
  /// Flush the UDP-swap hold slot down the wire (no-op when empty).
  void release_held_udp();

  netsim::NetworkPort& inner_;
  Technique* technique_;
  /// Set by the owning set_technique overloads; null when the technique is
  /// externally owned (replay-scoped construction).
  std::shared_ptr<Technique> owned_technique_;
  TechniqueContext context_;
  FlowTable<netsim::FiveTuple, FlowShimState, netsim::FiveTupleHash> flows_;
  std::size_t max_flows_ = kDefaultMaxFlows;
  std::uint64_t flows_evicted_ = 0;
  std::optional<Bytes> held_udp_packet_;
  std::optional<std::uint8_t> match_packet_ttl_;
  std::uint64_t packets_injected_ = 0;
  std::uint64_t packets_rewritten_ = 0;
};

}  // namespace liberate::core
