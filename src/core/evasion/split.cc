#include "core/evasion/split.h"

#include <algorithm>
#include <set>

#include "netsim/tcp.h"

namespace liberate::core {

using netsim::PacketView;
using netsim::TcpFlags;

std::vector<std::size_t> split_plan(
    std::size_t payload_size,
    const std::vector<std::pair<std::size_t, std::size_t>>& field_ranges,
    std::size_t max_pieces) {
  std::set<std::size_t> cuts;  // cut positions in (0, payload_size)

  // Lead pieces: up to five 1-byte slices (empirically, packet-limited
  // classifiers inspected no more than 5 packets — §5.2).
  const std::size_t lead = std::min<std::size_t>(5, payload_size > 1
                                                        ? payload_size - 1
                                                        : 0);
  for (std::size_t i = 1; i <= lead; ++i) cuts.insert(i);

  // A cut through the midpoint of every matching field.
  for (const auto& [begin, end] : field_ranges) {
    std::size_t mid = begin + (end - begin) / 2;
    if (mid > 0 && mid < payload_size) cuts.insert(mid);
  }

  // Respect the piece cap, preferring field cuts (insertion order above
  // means dropping from the lead range first when over budget).
  while (cuts.size() + 1 > max_pieces) {
    // Drop the smallest lead cut that is not a field cut.
    bool dropped = false;
    for (auto it = cuts.begin(); it != cuts.end(); ++it) {
      bool is_field_cut = false;
      for (const auto& [begin, end] : field_ranges) {
        std::size_t mid = begin + (end - begin) / 2;
        if (*it == mid) {
          is_field_cut = true;
          break;
        }
      }
      if (!is_field_cut) {
        cuts.erase(it);
        dropped = true;
        break;
      }
    }
    if (!dropped) break;  // only field cuts left: keep them all
  }

  std::vector<std::size_t> lengths;
  std::size_t prev = 0;
  for (std::size_t cut : cuts) {
    lengths.push_back(cut - prev);
    prev = cut;
  }
  lengths.push_back(payload_size - prev);
  return lengths;
}

Overhead TcpSegmentSplit::overhead(const TechniqueContext& ctx) const {
  Overhead o;
  // Each extra segment adds one 40-byte header (Table 2: k * 40 bytes).
  std::size_t k = ctx.split_pieces > 0 ? ctx.split_pieces - 1 : 0;
  o.extra_packets = k;
  o.extra_bytes = k * 40;
  o.formula = "k*40 bytes (k extra segments)";
  return o;
}

std::vector<TimedDatagram> TcpSegmentSplit::transform_matching_packet(
    Bytes datagram, const PacketView& pkt, FlowShimState& state,
    const TechniqueContext& ctx) {
  (void)state;
  if (!pkt.is_tcp() || pkt.tcp->payload.empty()) {
    return {{std::move(datagram), 0}};
  }
  BytesView payload = pkt.tcp->payload;
  auto ranges = matching_ranges(payload, ctx.matching_snippets);
  auto lengths = split_plan(payload.size(), ranges, ctx.split_pieces);
  if (lengths.size() <= 1) return {{std::move(datagram), 0}};

  std::vector<TimedDatagram> pieces;
  std::size_t offset = 0;
  for (std::size_t i = 0; i < lengths.size(); ++i) {
    std::uint8_t flags = TcpFlags::kAck;
    if (i + 1 == lengths.size() && pkt.tcp->has(TcpFlags::kPsh)) {
      flags |= TcpFlags::kPsh;
    }
    netsim::Ipv4Header ip;
    ip.ttl = pkt.ip.ttl;
    Bytes seg = craft_flow_tcp_packet(
        pkt, pkt.tcp->seq + static_cast<std::uint32_t>(offset),
        payload.subspan(offset, lengths[i]), flags, ip);
    pieces.push_back(TimedDatagram{std::move(seg), 0});
    offset += lengths[i];
  }
  if (reversed_) std::reverse(pieces.begin(), pieces.end());
  return pieces;
}

Overhead IpFragmentSplit::overhead(const TechniqueContext& ctx) const {
  Overhead o;
  std::size_t k = ctx.fragment_pieces > 0 ? ctx.fragment_pieces - 1 : 0;
  o.extra_packets = k;
  o.extra_bytes = k * 20;
  o.formula = "m*20 bytes (m extra fragments)";
  return o;
}

std::vector<TimedDatagram> IpFragmentSplit::transform_matching_packet(
    Bytes datagram, const PacketView& pkt, FlowShimState& state,
    const TechniqueContext& ctx) {
  (void)state;
  if (!pkt.is_tcp() || pkt.tcp->payload.empty()) {
    return {{std::move(datagram), 0}};
  }
  // Cut through the first matching field, aligned to the 8-byte fragment
  // grid. Field offsets are relative to the TCP payload; fragmentation
  // operates on the IP payload, so shift by the TCP header length.
  auto ranges = matching_ranges(pkt.tcp->payload, ctx.matching_snippets);
  std::size_t ip_payload_size = pkt.ip.payload.size();
  std::size_t cut_units = 0;
  if (!ranges.empty()) {
    std::size_t field_mid_in_segment =
        pkt.tcp->header_length + ranges[0].first +
        (ranges[0].second - ranges[0].first) / 2;
    cut_units = field_mid_in_segment / 8;
  }
  if (cut_units == 0) cut_units = (ip_payload_size / 2) / 8;
  cut_units = std::max<std::size_t>(cut_units, 3);  // keep the TCP header + a
                                                    // field prefix in piece 1

  // Re-stamp the identification so RS? tracking sees the fragments, then
  // fragment at the chosen boundary (2 pieces; §5.2: m = 2).
  Bytes stamped = datagram;
  stamped[4] = static_cast<std::uint8_t>(kCraftedIpId >> 8);
  stamped[5] = static_cast<std::uint8_t>(kCraftedIpId);
  netsim::refresh_ipv4_checksum(stamped);

  auto parsed = netsim::parse_ipv4(stamped).value();
  BytesView whole_payload = parsed.payload;
  std::size_t cut = std::min(cut_units * 8, whole_payload.size() - 1);

  std::vector<TimedDatagram> out;
  {
    netsim::Ipv4Header h;
    h.identification = kCraftedIpId;
    h.flag_more_fragments = true;
    h.fragment_offset_words = 0;
    h.ttl = parsed.ttl;
    h.protocol = parsed.protocol;
    h.src = parsed.src;
    h.dst = parsed.dst;
    out.push_back(
        TimedDatagram{serialize_ipv4(h, whole_payload.subspan(0, cut)), 0});
  }
  {
    netsim::Ipv4Header h;
    h.identification = kCraftedIpId;
    h.flag_more_fragments = false;
    h.fragment_offset_words = static_cast<std::uint16_t>(cut / 8);
    h.ttl = parsed.ttl;
    h.protocol = parsed.protocol;
    h.src = parsed.src;
    h.dst = parsed.dst;
    out.push_back(
        TimedDatagram{serialize_ipv4(h, whole_payload.subspan(cut)), 0});
  }
  if (reversed_) std::reverse(out.begin(), out.end());
  return out;
}

Overhead UdpReorder::overhead(const TechniqueContext& ctx) const {
  (void)ctx;
  Overhead o;
  o.formula = "none (order swap only)";
  return o;
}

}  // namespace liberate::core
