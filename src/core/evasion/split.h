// split.h — payload splitting and reordering (§4.3, Fig. 2(d)/(e)).
//
// The splitting plan serves two goals at once (§5.2):
//  * every matching field is cut across a packet boundary, defeating
//    per-packet matchers (testbed, Iran);
//  * the first pieces are tiny (1 byte), so a first-k-packets inspection
//    window is exhausted before any field is assembled (T-Mobile's 5-packet
//    window; also "the first packet contains only one byte of payload"
//    suffices on the testbed).
// Only a classifier that fully reassembles the byte stream with no packet
// limit (the GFC) sees through it.
#pragma once

#include "core/evasion/technique.h"

namespace liberate::core {

/// Compute split boundaries for a payload: `lead` one-byte pieces followed
/// by cuts through the midpoint of every matching-field range. Returns the
/// piece lengths (sum == payload size).
std::vector<std::size_t> split_plan(
    std::size_t payload_size,
    const std::vector<std::pair<std::size_t, std::size_t>>& field_ranges,
    std::size_t max_pieces);

class TcpSegmentSplit : public Technique {
 public:
  explicit TcpSegmentSplit(bool reversed) : reversed_(reversed) {}

  std::string name() const override {
    return reversed_ ? "reorder/tcp-segments-out-of-order"
                     : "split/tcp-segmentation";
  }
  Category category() const override {
    return reversed_ ? Category::kPayloadReordering
                     : Category::kPayloadSplitting;
  }
  Overhead overhead(const TechniqueContext& ctx) const override;

  std::vector<TimedDatagram> transform_matching_packet(
      Bytes datagram, const netsim::PacketView& pkt, FlowShimState& state,
      const TechniqueContext& ctx) override;

 private:
  bool reversed_;
};

class IpFragmentSplit : public Technique {
 public:
  explicit IpFragmentSplit(bool reversed) : reversed_(reversed) {}

  std::string name() const override {
    return reversed_ ? "reorder/ip-fragments-out-of-order"
                     : "split/ip-fragmentation";
  }
  Category category() const override {
    return reversed_ ? Category::kPayloadReordering
                     : Category::kPayloadSplitting;
  }
  Overhead overhead(const TechniqueContext& ctx) const override;

  std::vector<TimedDatagram> transform_matching_packet(
      Bytes datagram, const netsim::PacketView& pkt, FlowShimState& state,
      const TechniqueContext& ctx) override;

 private:
  bool reversed_;
};

/// UDP datagram reordering: the shim swaps the first two payload packets, so
/// position-sensitive rules (testbed Skype: attribute in packet #1) miss.
class UdpReorder : public Technique {
 public:
  std::string name() const override { return "reorder/udp-out-of-order"; }
  Category category() const override { return Category::kPayloadReordering; }
  Overhead overhead(const TechniqueContext& ctx) const override;
  bool applies_to_udp() const override { return true; }
  bool applies_to_tcp() const override { return false; }
  bool swaps_first_two_udp_packets() const override { return true; }
};

}  // namespace liberate::core
