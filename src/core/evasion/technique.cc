#include "core/evasion/technique.h"

#include "netsim/tcp.h"

namespace liberate::core {

std::string category_name(Category c) {
  switch (c) {
    case Category::kInertInsertion:
      return "inert-packet-insertion";
    case Category::kPayloadSplitting:
      return "payload-splitting";
    case Category::kPayloadReordering:
      return "payload-reordering";
    case Category::kClassificationFlushing:
      return "classification-flushing";
  }
  return "?";
}

bool contains_matching_field(BytesView payload,
                             const std::vector<Bytes>& snippets) {
  return !matching_ranges(payload, snippets).empty();
}

std::vector<std::pair<std::size_t, std::size_t>> matching_ranges(
    BytesView payload, const std::vector<Bytes>& snippets) {
  std::vector<std::pair<std::size_t, std::size_t>> out;
  if (payload.empty()) return out;
  for (const Bytes& s : snippets) {
    if (s.empty() || s.size() > payload.size()) continue;
    for (std::size_t i = 0; i + s.size() <= payload.size(); ++i) {
      if (std::equal(s.begin(), s.end(), payload.begin() + static_cast<std::ptrdiff_t>(i))) {
        out.emplace_back(i, i + s.size());
        break;  // one occurrence per snippet is enough for splitting
      }
    }
  }
  return out;
}

Bytes craft_flow_tcp_packet(const netsim::PacketView& pkt, std::uint32_t seq,
                            BytesView payload, std::uint8_t flags,
                            netsim::Ipv4Header ip_overrides,
                            std::optional<netsim::TcpHeader> tcp_overrides) {
  netsim::TcpHeader tcp =
      tcp_overrides.value_or(netsim::TcpHeader{});
  tcp.src_port = pkt.tcp->src_port;
  tcp.dst_port = pkt.tcp->dst_port;
  tcp.seq = seq;
  tcp.ack = pkt.tcp->ack;
  tcp.flags = flags;

  netsim::Ipv4Header ip = ip_overrides;
  ip.src = pkt.ip.src;
  ip.dst = pkt.ip.dst;
  if (ip.identification == 0) ip.identification = kCraftedIpId;
  return make_tcp_datagram(ip, tcp, payload);
}

}  // namespace liberate::core
