// technique.h — the classifier-evasion taxonomy (§4.3).
//
// A Technique rewrites a flow at the packet level (inert insertion, payload
// splitting, payload reordering) and/or at the timing level (classification
// flushing). Techniques are applied by the EvasionShim, which sits between
// the client's stack and the network — exactly where lib·erate's transparent
// proxy sits in the paper's deployment (Fig. 3 step 3) — so applications and
// their TCP stacks stay unmodified.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "netsim/packet.h"
#include "netsim/simclock.h"
#include "util/bytes.h"

namespace liberate::core {

/// Marker stamped into the IP identification field of every crafted/modified
/// packet so the replay server's raw tap can answer Table 3's RS? question.
constexpr std::uint16_t kCraftedIpId = 0xC0DE;

enum class Category {
  kInertInsertion,
  kPayloadSplitting,
  kPayloadReordering,
  kClassificationFlushing,
};

std::string category_name(Category c);

/// Context a technique needs, produced by the characterization phase.
struct TechniqueContext {
  /// Byte snippets whose presence in a payload triggers classification (the
  /// "matching fields" found by blinding).
  std::vector<Bytes> matching_snippets;
  /// Smallest TTL that reaches the middlebox (hops_before_middlebox + 1);
  /// a packet with exactly this TTL dies before the server.
  std::uint8_t middlebox_ttl = 2;
  /// Valid request for a benign-but-classified application (Fig. 2(b)): the
  /// payload carried by inert packets.
  Bytes decoy_payload;
  /// Split/reorder parameters (§5.2: n <= 10 segments, m = 2 fragments).
  std::size_t split_pieces = 10;
  std::size_t fragment_pieces = 2;
  /// Flush-delay parameter t for pause techniques (§5.3: 40–240 s).
  double pause_seconds = 130.0;
};

/// Per-flow state the shim tracks and hands to techniques.
struct FlowShimState {
  netsim::FiveTuple tuple;      // client -> server
  std::size_t payload_packets_sent = 0;
  bool match_packet_seen = false;
  bool injected_before_payload = false;
  bool injected_after_match = false;
  std::uint32_t last_seq_end = 0;  // next expected client seq (from traffic)
  bool udp = false;
  /// The shim saw this TCP flow mid-stream (state created from a non-SYN
  /// packet): either the LRU table evicted it and the same 5-tuple
  /// re-arrived, or the shim attached after the handshake. Resumed flows get
  /// retransmission semantics — matching packets are still transformed, but
  /// nothing is injected and nothing is re-counted, so an evicted flow is
  /// never double-mutated and never attributed to a later technique.
  bool resumed = false;
};

/// One outgoing datagram, optionally delayed.
struct TimedDatagram {
  Bytes datagram;
  netsim::Duration delay = 0;
};

/// Estimated per-flow overhead (Table 2).
struct Overhead {
  std::size_t extra_packets = 0;
  std::size_t extra_bytes = 0;
  double extra_seconds = 0;
  std::string formula;  // e.g. "k packets", "k*40 bytes", "t seconds"
};

/// Timing directives consumed by the replay harness / deployment proxy for
/// the classification-flushing techniques.
struct TimingPlan {
  double pause_before_match_s = 0;
  double pause_after_match_s = 0;
};

class Technique {
 public:
  virtual ~Technique() = default;

  virtual std::string name() const = 0;
  virtual Category category() const = 0;
  virtual Overhead overhead(const TechniqueContext& ctx) const = 0;
  virtual TimingPlan timing(const TechniqueContext& ctx) const {
    (void)ctx;
    return {};
  }

  /// Requires the classifier to stop inspecting after a match; pruned when
  /// characterization shows an inspect-every-packet classifier (§5.2:
  /// "inert packet insertions are unlikely to evade" such classifiers).
  virtual bool requires_match_and_forget() const { return false; }
  /// Only applicable to TCP / UDP flows.
  virtual bool applies_to_udp() const { return false; }
  virtual bool applies_to_tcp() const { return true; }

  /// Packets to inject before the client's first payload-carrying packet
  /// (inert insertion, RST-before-match).
  virtual std::vector<TimedDatagram> inject_before_first_payload(
      const netsim::PacketView& first_payload_pkt, FlowShimState& state,
      const TechniqueContext& ctx) {
    (void)first_payload_pkt;
    (void)state;
    (void)ctx;
    return {};
  }

  /// Packets to inject right after the first matching packet went out
  /// (RST-after-match).
  virtual std::vector<TimedDatagram> inject_after_match(
      const netsim::PacketView& match_pkt, FlowShimState& state,
      const TechniqueContext& ctx) {
    (void)match_pkt;
    (void)state;
    (void)ctx;
    return {};
  }

  /// Rewrite a payload-carrying packet that contains matching fields
  /// (splitting/reordering). Default: pass through unchanged.
  virtual std::vector<TimedDatagram> transform_matching_packet(
      Bytes datagram, const netsim::PacketView& pkt, FlowShimState& state,
      const TechniqueContext& ctx) {
    (void)pkt;
    (void)state;
    (void)ctx;
    std::vector<TimedDatagram> out;
    out.push_back(TimedDatagram{std::move(datagram), 0});
    return out;
  }

  /// UDP-datagram-order manipulation (swap the first two payload packets).
  virtual bool swaps_first_two_udp_packets() const { return false; }
};

/// Helpers shared by technique implementations -----------------------------

/// Does this payload contain any of the matching snippets?
bool contains_matching_field(BytesView payload,
                             const std::vector<Bytes>& snippets);

/// Byte ranges [begin, end) of every snippet occurrence within payload.
std::vector<std::pair<std::size_t, std::size_t>> matching_ranges(
    BytesView payload, const std::vector<Bytes>& snippets);

/// Build a TCP datagram cloned from `pkt`'s flow coordinates carrying
/// `payload` at sequence `seq`, stamped with kCraftedIpId.
Bytes craft_flow_tcp_packet(const netsim::PacketView& pkt, std::uint32_t seq,
                            BytesView payload, std::uint8_t flags,
                            netsim::Ipv4Header ip_overrides,
                            std::optional<netsim::TcpHeader> tcp_overrides =
                                std::nullopt);

}  // namespace liberate::core
