#include "core/liberate.h"

namespace liberate::core {

Liberate::Liberate(dpi::Environment& env, std::uint64_t seed)
    : env_(env), runner_(env, seed) {}

SessionReport Liberate::analyze(const trace::ApplicationTrace& trace) {
  SessionReport report;
  const int rounds0 = runner_.rounds();
  const std::uint64_t bytes0 = runner_.bytes_offered();
  const double t0 = runner_.virtual_seconds_elapsed();

  // Phase 1: differentiation detection.
  report.detection = detect_differentiation(runner_, trace);
  if (report.detection.content_based) {
    // Phase 2: characterization.
    report.ran_characterization = true;
    CharacterizationOptions copts;
    copts.unique_port_per_round = true;  // harmless when not needed
    report.characterization = characterize_classifier(runner_, trace, copts);

    // Phase 3: evasion evaluation (pruned production mode).
    EvasionEvaluator evaluator(runner_, report.characterization);
    report.evaluation = evaluator.evaluate(trace, /*run_pruned=*/false);
    report.selected_technique = report.evaluation.selected;
  }

  report.total_rounds = runner_.rounds() - rounds0;
  report.total_bytes = runner_.bytes_offered() - bytes0;
  report.total_virtual_minutes =
      (runner_.virtual_seconds_elapsed() - t0) / 60.0;
  return report;
}

std::unique_ptr<Technique> Liberate::instantiate(
    const std::string& name) const {
  auto suite = build_full_suite();
  for (auto& t : suite) {
    if (t->name() == name) return std::move(t);
  }
  return nullptr;
}

std::unique_ptr<Deployment> Liberate::deploy(const SessionReport& report,
                                             netsim::NetworkPort& inner) const {
  if (!report.selected_technique) return nullptr;
  auto technique = instantiate(*report.selected_technique);
  if (!technique) return nullptr;
  TechniqueContext ctx;
  ctx.matching_snippets = report.characterization.snippets();
  ctx.decoy_payload = decoy_request_payload();
  if (report.characterization.middlebox_hops) {
    ctx.middlebox_ttl =
        static_cast<std::uint8_t>(*report.characterization.middlebox_hops);
  }
  return std::make_unique<Deployment>(inner, std::move(technique),
                                      std::move(ctx));
}

std::optional<SessionReport> Liberate::readapt(
    const SessionReport& previous, const trace::ApplicationTrace& trace) {
  if (!previous.selected_technique) return analyze(trace);
  auto technique = instantiate(*previous.selected_technique);
  if (!technique) return analyze(trace);

  // Replay with the previously working technique: if differentiation
  // reappears, the rules changed — redo characterization and evaluation.
  ReplayOptions opts;
  opts.technique = technique.get();
  opts.context.matching_snippets = previous.characterization.snippets();
  opts.context.decoy_payload = decoy_request_payload();
  if (previous.characterization.middlebox_hops) {
    opts.context.middlebox_ttl = static_cast<std::uint8_t>(
        *previous.characterization.middlebox_hops);
  }
  ReplayOutcome outcome = runner_.run(trace, opts);
  if (!runner_.differentiated(outcome) && outcome.completed) {
    return std::nullopt;  // still evading fine
  }
  return analyze(trace);
}

}  // namespace liberate::core
