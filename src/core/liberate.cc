#include "core/liberate.h"

#include "obs/obs.h"

namespace liberate::core {

Liberate::Liberate(dpi::Environment& env, std::uint64_t seed)
    : env_(env), runner_(env, seed) {}

SessionReport Liberate::analyze(const trace::ApplicationTrace& trace) {
  SessionReport report;
  const int rounds0 = runner_.rounds();
  const std::uint64_t bytes0 = runner_.bytes_offered();
  const double t0 = runner_.virtual_seconds_elapsed();

  // Phase 1: differentiation detection.
  {
    LIBERATE_COST_SCOPE(kDetection);
    report.detection = detect_differentiation(runner_, trace);
  }
  if (report.detection.content_based) {
    // Phase 2: characterization.
    report.ran_characterization = true;
    CharacterizationOptions copts;
    copts.unique_port_per_round = true;  // harmless when not needed
    {
      LIBERATE_COST_SCOPE(kCharacterization);
      report.characterization = characterize_classifier(runner_, trace, copts);
    }

    // Phase 3: evasion evaluation (pruned production mode).
    LIBERATE_COST_SCOPE(kEvaluation);
    EvasionEvaluator evaluator(runner_, report.characterization);
    report.evaluation = evaluator.evaluate(trace, /*run_pruned=*/false);
    report.selected_technique = report.evaluation.selected;
  }

  report.total_rounds = runner_.rounds() - rounds0;
  report.total_bytes = runner_.bytes_offered() - bytes0;
  report.total_virtual_minutes =
      (runner_.virtual_seconds_elapsed() - t0) / 60.0;
  return report;
}

std::unique_ptr<Technique> Liberate::instantiate(
    const std::string& name) const {
  auto suite = build_full_suite();
  for (auto& t : suite) {
    if (t->name() == name) return std::move(t);
  }
  return nullptr;
}

TechniqueContext deployment_context(const SessionReport& report) {
  TechniqueContext ctx;
  ctx.matching_snippets = report.characterization.snippets();
  ctx.decoy_payload = decoy_request_payload();
  if (report.characterization.middlebox_hops) {
    ctx.middlebox_ttl =
        static_cast<std::uint8_t>(*report.characterization.middlebox_hops);
  }
  return ctx;
}

std::unique_ptr<Deployment> Liberate::deploy(const SessionReport& report,
                                             netsim::NetworkPort& inner) const {
  if (!report.selected_technique) return nullptr;
  auto technique = instantiate(*report.selected_technique);
  if (!technique) return nullptr;
  return std::make_unique<Deployment>(inner, std::move(technique),
                                      deployment_context(report));
}

ReadaptResult Liberate::readapt(const SessionReport& previous,
                                const trace::ApplicationTrace& trace) {
  LIBERATE_COST_SCOPE(kReadapt);
  const int rounds0 = runner_.rounds();
  const std::uint64_t bytes0 = runner_.bytes_offered();
  const double t0 = runner_.virtual_seconds_elapsed();

  ReadaptResult result;
  // Stage intervals partition [rounds0, rounds()] so the ladder always sums
  // to the report's total_rounds.
  int stage_start = rounds0;
  auto end_stage = [&](const char* stage) {
    result.ladder.push_back({stage, runner_.rounds() - stage_start});
    stage_start = runner_.rounds();
  };
  auto technique = previous.selected_technique
                       ? instantiate(*previous.selected_technique)
                       : nullptr;
  if (!technique) {
    result.report = analyze(trace);
    end_stage("full-analysis");
  } else {
    // Replay with the previously working technique: if differentiation
    // reappears, the rules changed — redo characterization and evaluation.
    ReplayOptions opts;
    opts.technique = technique.get();
    opts.context = deployment_context(previous);
    ReplayOutcome outcome = runner_.run(trace, opts);
    end_stage("still-working");
    if (!runner_.differentiated(outcome) && outcome.completed) {
      result.still_working = true;  // still evading fine
      result.report = previous;
    } else {
      result.report = analyze(trace);
      end_stage("full-analysis");
    }
  }

  // Cost accounting covers everything readapt spent: the verification round
  // plus (when taken) the full re-analysis.
  result.report.total_rounds = runner_.rounds() - rounds0;
  result.report.total_bytes = runner_.bytes_offered() - bytes0;
  result.report.total_virtual_minutes =
      (runner_.virtual_seconds_elapsed() - t0) / 60.0;
  return result;
}

}  // namespace liberate::core
