// liberate.h — the lib·erate facade: the four automated phases of Fig. 1.
//
//   1. detection        — is this app's traffic differentiated, by content?
//   2. characterization — which bytes/positions/ports trigger it, where is
//                         the middlebox?
//   3. evasion eval     — which techniques defeat it, at what cost?
//   4. deployment       — wrap live traffic in the cheapest working
//                         technique, re-running 1–3 when the classifier
//                         changes (runtime adaptation).
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/detection.h"
#include "core/evaluation.h"

namespace liberate::core {

struct SessionReport {
  DetectionResult detection;
  bool ran_characterization = false;
  CharacterizationReport characterization;
  EvaluationResult evaluation;
  std::optional<std::string> selected_technique;

  // End-to-end cost accounting across all phases (§5.3).
  int total_rounds = 0;
  std::uint64_t total_bytes = 0;
  double total_virtual_minutes = 0;
};

/// One stage of a runtime-adaptation ladder and the probe rounds it spent.
/// Stages appear in execution order; their rounds always sum to the
/// enclosing report's total_rounds (each replay the adaptation ran is
/// inside exactly one stage interval). Plain data, present at every obs
/// level — cost attribution is part of the result, not telemetry.
struct ReadaptStageCost {
  std::string stage;
  int rounds = 0;
};

/// Outcome of runtime adaptation. Unlike the old optional<SessionReport>
/// (where "still works" lost the probe cost spent finding that out),
/// `report` always carries cost accounting for what readapt actually did:
/// the verification replay alone on the cheap path, verification plus the
/// full re-analysis otherwise.
struct ReadaptResult {
  /// True when the previously selected technique still evades; `report` is
  /// then the previous report with totals replaced by the verification cost.
  bool still_working = false;
  SessionReport report;
  /// Per-stage round breakdown; sums to report.total_rounds.
  std::vector<ReadaptStageCost> ladder;
};

/// The TechniqueContext a deployment derives from an analysis: matching
/// snippets, decoy payload, and the localized middlebox TTL. Shared by
/// Liberate::deploy and the deployment control plane.
TechniqueContext deployment_context(const SessionReport& report);

/// A deployed evasion: an EvasionShim bound to the selected technique, ready
/// to wrap a live application's NetworkPort (library/transparent-proxy
/// deployment). The shim co-owns the technique so redeploy() can swap it
/// mid-flow without dangling the pointer under packets in flight.
class Deployment {
 public:
  Deployment(netsim::NetworkPort& inner, std::unique_ptr<Technique> technique,
             TechniqueContext context)
      : shim_(std::make_unique<EvasionShim>(inner, nullptr,
                                            std::move(context))) {
    shim_->set_technique(std::shared_ptr<Technique>(std::move(technique)));
  }

  netsim::NetworkPort& port() { return *shim_; }
  EvasionShim& shim() { return *shim_; }
  const Technique* technique() const { return shim_->technique(); }
  /// Timing directives live applications must honor for flush techniques.
  TimingPlan timing() const {
    const Technique* t = shim_->technique();
    return t ? t->timing(shim_->context()) : TimingPlan{};
  }

  /// Runtime adaptation: point the live shim at a new technique/context.
  /// Flows already wrapped keep their per-flow state; the old technique
  /// stays alive until the last in-flight packet that borrowed it is gone.
  void redeploy(std::unique_ptr<Technique> technique,
                TechniqueContext context) {
    shim_->set_context(std::move(context));
    shim_->set_technique(std::shared_ptr<Technique>(std::move(technique)));
  }

 private:
  std::unique_ptr<EvasionShim> shim_;
};

class Liberate {
 public:
  explicit Liberate(dpi::Environment& env, std::uint64_t seed = 1);

  /// Run phases 1–3 for an application's recorded trace.
  SessionReport analyze(const trace::ApplicationTrace& trace);

  /// Build a deployment for live traffic from an analysis result. Returns
  /// nullptr when no technique worked (or none was needed).
  std::unique_ptr<Deployment> deploy(const SessionReport& report,
                                     netsim::NetworkPort& inner) const;

  /// Runtime adaptation (§4.2 "lib·erate must run the characterization step
  /// whenever an application's classification rule changes"): re-test with
  /// the previously selected technique; if differentiation reappeared,
  /// re-analyze from scratch. `still_working` distinguishes the cheap path;
  /// either way `report` carries the cost actually spent (the verification
  /// round alone, or verification + full re-analysis).
  ReadaptResult readapt(const SessionReport& previous,
                        const trace::ApplicationTrace& trace);

  /// Build a technique instance by suite name (nullptr if unknown). Public
  /// so the deployment control plane can walk cached technique rankings.
  std::unique_ptr<Technique> instantiate(const std::string& name) const;

  ReplayRunner& runner() { return runner_; }

 private:
  dpi::Environment& env_;
  ReplayRunner runner_;
};

}  // namespace liberate::core
