// liberate.h — the lib·erate facade: the four automated phases of Fig. 1.
//
//   1. detection        — is this app's traffic differentiated, by content?
//   2. characterization — which bytes/positions/ports trigger it, where is
//                         the middlebox?
//   3. evasion eval     — which techniques defeat it, at what cost?
//   4. deployment       — wrap live traffic in the cheapest working
//                         technique, re-running 1–3 when the classifier
//                         changes (runtime adaptation).
#pragma once

#include <memory>
#include <optional>

#include "core/detection.h"
#include "core/evaluation.h"

namespace liberate::core {

struct SessionReport {
  DetectionResult detection;
  bool ran_characterization = false;
  CharacterizationReport characterization;
  EvaluationResult evaluation;
  std::optional<std::string> selected_technique;

  // End-to-end cost accounting across all phases (§5.3).
  int total_rounds = 0;
  std::uint64_t total_bytes = 0;
  double total_virtual_minutes = 0;
};

/// A deployed evasion: an EvasionShim bound to the selected technique, ready
/// to wrap a live application's NetworkPort (library/transparent-proxy
/// deployment).
class Deployment {
 public:
  Deployment(netsim::NetworkPort& inner, std::unique_ptr<Technique> technique,
             TechniqueContext context)
      : technique_(std::move(technique)),
        shim_(std::make_unique<EvasionShim>(inner, technique_.get(),
                                            std::move(context))) {}

  netsim::NetworkPort& port() { return *shim_; }
  const Technique* technique() const { return technique_.get(); }
  /// Timing directives live applications must honor for flush techniques.
  TimingPlan timing() const {
    return technique_ ? technique_->timing(shim_->context()) : TimingPlan{};
  }

 private:
  std::unique_ptr<Technique> technique_;
  std::unique_ptr<EvasionShim> shim_;
};

class Liberate {
 public:
  explicit Liberate(dpi::Environment& env, std::uint64_t seed = 1);

  /// Run phases 1–3 for an application's recorded trace.
  SessionReport analyze(const trace::ApplicationTrace& trace);

  /// Build a deployment for live traffic from an analysis result. Returns
  /// nullptr when no technique worked (or none was needed).
  std::unique_ptr<Deployment> deploy(const SessionReport& report,
                                     netsim::NetworkPort& inner) const;

  /// Runtime adaptation (§4.2 "lib·erate must run the characterization step
  /// whenever an application's classification rule changes"): re-test with
  /// the previously selected technique; if differentiation reappeared,
  /// re-analyze from scratch. Returns the fresh report (or nullopt if the
  /// old technique still works).
  std::optional<SessionReport> readapt(const SessionReport& previous,
                                       const trace::ApplicationTrace& trace);

  ReplayRunner& runner() { return runner_; }

 private:
  std::unique_ptr<Technique> instantiate(const std::string& name) const;

  dpi::Environment& env_;
  ReplayRunner runner_;
};

}  // namespace liberate::core
