// masquerade.h — §7 "Masquerading" extension.
//
// The inverse of evasion: make arbitrary traffic LOOK like a favorably
// treated class (e.g. zero-rated video) by injecting an inert packet that
// carries a matching request for that class. Match-and-forget classifiers
// then extend the favorable policy to the whole flow. The paper lists this
// as supported-by-framework future work; we implement it on top of the same
// inert-insertion machinery.
#pragma once

#include "core/evasion/inert.h"

namespace liberate::core {

/// A technique that injects an inert packet carrying `bait_payload` (a
/// request matching the favorable class) before the flow's first payload.
class Masquerade : public Technique {
 public:
  Masquerade(InertVariant carrier, Bytes bait_payload)
      : carrier_(carrier), bait_(std::move(bait_payload)) {}

  std::string name() const override {
    return "masquerade/" + InertInsertion(carrier_).name();
  }
  Category category() const override { return Category::kInertInsertion; }
  Overhead overhead(const TechniqueContext& ctx) const override {
    return InertInsertion(carrier_).overhead(ctx);
  }
  bool requires_match_and_forget() const override { return true; }

  std::vector<TimedDatagram> inject_before_first_payload(
      const netsim::PacketView& first_payload_pkt, FlowShimState& state,
      const TechniqueContext& ctx) override {
    // Same crafting as inert insertion, but the payload is the bait for the
    // favorable class instead of a neutral decoy.
    TechniqueContext bait_ctx = ctx;
    bait_ctx.decoy_payload = bait_;
    InertInsertion impl(carrier_);
    return impl.inject_before_first_payload(first_payload_pkt, state,
                                            bait_ctx);
  }

 private:
  InertVariant carrier_;
  Bytes bait_;
};

}  // namespace liberate::core
