#include "core/parallel_analysis.h"

#include <algorithm>

#include "core/evasion/registry.h"
#include "dpi/profiles.h"
#include "obs/obs.h"
#include "util/rng.h"

namespace liberate::core {

using trace::ApplicationTrace;
using trace::Message;
using trace::Sender;

namespace {

/// TTL probes go out in fixed-size speculative waves. The size is a
/// constant — never the worker count — so the probe set (and with it every
/// report field and round count) is identical for any pool size.
constexpr std::size_t kTtlWave = 8;

/// Per-phase cost accounting over isolated worlds: logical rounds (cache
/// hits included — a memoized probe still answers one logical round),
/// offered bytes and summed per-round virtual time.
struct Accounting {
  int rounds = 0;
  std::uint64_t bytes = 0;
  double virtual_seconds = 0;

  void absorb(const std::vector<RoundResult>& results) {
    for (const RoundResult& r : results) {
      rounds += 1;
      bytes += r.bytes_offered;
      virtual_seconds += r.virtual_seconds;
    }
  }
};

RoundRequest plain_round(const ApplicationTrace& trace) {
  RoundRequest req;
  req.trace = trace;
  return req;
}

}  // namespace

DetectionResult detect_differentiation_parallel(
    RoundScheduler& scheduler, const ApplicationTrace& trace) {
  DetectionResult result;
  Accounting acct;

  // One wave: the bit-inverted control and the original. The sequential
  // detector replays the control first so an escalating censor (GFC) cannot
  // poison its port; here each round gets a pristine world, so the wave is
  // safe by construction.
  std::vector<RoundRequest> wave;
  wave.push_back(plain_round(trace.bit_inverted()));
  wave.push_back(plain_round(trace));
  std::vector<RoundResult> rounds = scheduler.run_batch(wave);
  acct.absorb(rounds);

  result.inverted = rounds[0].outcome;
  result.original = rounds[1].outcome;
  result.differentiation = rounds[1].differentiated;
  const bool inverted_differentiated = rounds[0].differentiated;
  result.content_based = result.differentiation && !inverted_differentiated;

  if (result.differentiation && inverted_differentiated) {
    RoundRequest fallback =
        plain_round(randomized_control_trace(trace, 0xD37EC7));
    // Judge the control from a fresh server address (§4.2) — kept for parity
    // with the sequential detector even though isolated worlds cannot have
    // escalated the default endpoint.
    fallback.server_ip_override = 0xc6336421;  // 198.51.100.33
    RoundResult random_outcome = scheduler.run_one(fallback);
    acct.absorb({random_outcome});
    if (!random_outcome.differentiated) {
      result.content_based = true;
      result.used_randomization_fallback = true;
    }
  }

  result.rounds = acct.rounds;
  result.bytes_used = acct.bytes;
  result.virtual_seconds = acct.virtual_seconds;
  return result;
}

CharacterizationReport characterize_classifier_parallel(
    RoundScheduler& scheduler, const ApplicationTrace& trace,
    const CharacterizationOptions& options) {
  CharacterizationReport report;
  Rng rng(0xC11A5);
  Accounting acct;

  // --- Port sensitivity first: it decides how later waves pick ports.
  {
    ApplicationTrace moved = trace;
    moved.server_port = static_cast<std::uint16_t>(trace.server_port + 1000);
    RoundResult out = scheduler.run_one(plain_round(moved));
    acct.absorb({out});
    report.port_sensitive = !out.differentiated;
  }

  // Ports are assigned in request-construction order, which is fixed by the
  // trace and the options — never by scheduling.
  std::uint16_t next_port = 23000;
  auto pick_port = [&]() -> std::uint16_t {
    if (options.pin_trace_port || report.port_sensitive) return 0;
    if (options.unique_port_per_round) return next_port++;
    return 0;
  };

  // --- Matching fields: breadth-first blinding, one wave per depth level.
  std::size_t blinding_depth = 0;
  BatchClassificationOracle oracle =
      [&](const std::vector<ApplicationTrace>& probes) {
        // Blinding probes get their own cost phase nested inside
        // characterization — they dominate the paper's ~75-round budget.
        LIBERATE_COST_SCOPE(kBlinding);
        blinding_depth += 1;
        LIBERATE_COUNTER_ADD("core.blinding_waves", 1);
        LIBERATE_COUNTER_ADD("core.blinding_probes", probes.size());
        LIBERATE_GAUGE_SET("core.blinding_depth", blinding_depth);
        std::vector<RoundRequest> wave;
        wave.reserve(probes.size());
        for (const ApplicationTrace& p : probes) {
          RoundRequest req = plain_round(p);
          req.server_port_override = pick_port();
          wave.push_back(std::move(req));
        }
        std::vector<RoundResult> results = scheduler.run_batch(wave);
        acct.absorb(results);
        std::vector<bool> verdicts;
        verdicts.reserve(results.size());
        for (const RoundResult& r : results) {
          verdicts.push_back(r.differentiated);
        }
        return verdicts;
      };
  report.fields = find_matching_fields_batched(trace, oracle, nullptr,
                                               options.blinding_granularity);

  // --- Position / packet-limit probing, speculatively in one wave: the
  // 1-byte position probe plus every MTU-prepend count up to the ceiling.
  std::size_t match_msg = report.fields.empty()
                              ? first_client_message_index(trace)
                              : report.fields[0].message_index;
  {
    std::vector<RoundRequest> wave;
    wave.push_back(
        plain_round(with_prepended_probe(trace, match_msg, 1, 1, rng)));
    for (std::size_t k = 1; k <= options.max_prepend_packets; ++k) {
      wave.push_back(
          plain_round(with_prepended_probe(trace, match_msg, k, 1400, rng)));
    }
    for (RoundRequest& r : wave) r.server_port_override = pick_port();
    std::vector<RoundResult> results = scheduler.run_batch(wave);
    acct.absorb(results);

    report.position_sensitive = !results[0].differentiated;
    std::size_t first_changed = 0;  // 1-based prepend count; 0 = none
    for (std::size_t k = 1; k <= options.max_prepend_packets; ++k) {
      if (!results[k].differentiated) {
        first_changed = k;
        break;
      }
    }
    report.inspects_all_packets = first_changed == 0;
    if (first_changed != 0) {
      // Confirm with 1-byte packets whether the limit is packet-count based.
      RoundRequest confirm = plain_round(
          with_prepended_probe(trace, match_msg, first_changed, 1, rng));
      confirm.server_port_override = pick_port();
      RoundResult out = scheduler.run_one(confirm);
      acct.absorb({out});
      if (!out.differentiated) report.packet_limit = first_changed;
    }
  }

  // --- Middlebox localization: TTL sweep in fixed-size waves.
  if (options.probe_ttl) {
    ApplicationTrace probe;
    probe.app_name = trace.app_name + "-ttlprobe";
    probe.transport = trace.transport;
    probe.server_port = trace.server_port;
    if (match_msg < trace.messages.size()) {
      probe.messages.push_back(trace.messages[match_msg]);
    }
    // The zero-rating signal needs client bulk after the matching message so
    // the usage counter can discriminate; peek at the environment profile.
    {
      auto env = dpi::make_environment(scheduler.world().environment,
                                       scheduler.world().seed);
      if (env->signal == dpi::Environment::Signal::kZeroRating) {
        Message bulk;
        bulk.sender = Sender::kClient;
        bulk.payload = rng.bytes(100 * 1024);
        probe.messages.push_back(std::move(bulk));
      }
    }

    TechniqueContext ctx;
    ctx.matching_snippets = report.snippets();
    for (std::size_t base = 1;
         base <= options.max_ttl_probe && !report.middlebox_hops;
         base += kTtlWave) {
      std::size_t end = std::min(base + kTtlWave - 1, options.max_ttl_probe);
      std::vector<RoundRequest> wave;
      for (std::size_t ttl = base; ttl <= end; ++ttl) {
        RoundRequest req = plain_round(probe);
        req.server_port_override = pick_port();
        req.context = ctx;
        req.match_packet_ttl = static_cast<std::uint8_t>(ttl);
        req.timeout_s = 20;
        wave.push_back(std::move(req));
      }
      std::vector<RoundResult> results = scheduler.run_batch(wave);
      acct.absorb(results);
      for (std::size_t i = 0; i < results.size(); ++i) {
        if (results[i].differentiated) {
          report.middlebox_hops = static_cast<int>(base + i);
          break;
        }
      }
    }
  }

  report.replay_rounds = acct.rounds;
  report.bytes_replayed = acct.bytes;
  report.virtual_seconds = acct.virtual_seconds;
  return report;
}

EvaluationResult evaluate_parallel(RoundScheduler& scheduler,
                                   const CharacterizationReport& report,
                                   const ApplicationTrace& trace,
                                   bool run_pruned) {
  EvaluationResult result;
  Accounting acct;

  TechniqueContext context;
  context.matching_snippets = report.snippets();
  context.decoy_payload = decoy_request_payload();
  if (report.middlebox_hops) {
    context.middlebox_ttl = static_cast<std::uint8_t>(*report.middlebox_hops);
  }

  auto suite = build_full_suite();
  PruningFacts facts;
  facts.inspects_all_packets = report.inspects_all_packets;
  facts.udp_flow = trace.transport == trace::Transport::kUdp;
  std::vector<Technique*> ordered = ordered_suite(suite, facts);

  // Assemble every outcome slot and the corresponding round (if any) in the
  // sequential evaluator's order: pruned suite entries first, then the
  // ordered suite. The entire round list is one wave.
  struct Slot {
    Technique* technique = nullptr;
    bool pruned = false;
    int round_index = -1;  // -1: not replayed (pruned, matrix mode off)
  };
  std::vector<Slot> slots;
  std::vector<RoundRequest> wave;
  std::uint16_t next_port = 27000;

  auto make_round = [&](Technique* t) {
    RoundRequest req = plain_round(trace);
    req.technique = t->name();
    req.context = context;
    if (!report.port_sensitive) req.server_port_override = next_port++;
    wave.push_back(std::move(req));
    return static_cast<int>(wave.size()) - 1;
  };

  for (const auto& owned : suite) {
    Technique* t = owned.get();
    if (std::find(ordered.begin(), ordered.end(), t) != ordered.end()) {
      continue;
    }
    Slot slot;
    slot.technique = t;
    slot.pruned = true;
    bool applicable =
        facts.udp_flow ? t->applies_to_udp() : t->applies_to_tcp();
    if (run_pruned && applicable) slot.round_index = make_round(t);
    slots.push_back(slot);
  }
  for (Technique* t : ordered) {
    Slot slot;
    slot.technique = t;
    slot.round_index = make_round(t);
    slots.push_back(slot);
  }

  std::vector<RoundResult> rounds = scheduler.run_batch(wave);
  acct.absorb(rounds);

  for (const Slot& slot : slots) {
    TechniqueOutcome outcome;
    outcome.technique = slot.technique->name();
    outcome.category = slot.technique->category();
    outcome.pruned = slot.pruned;
    outcome.overhead = slot.technique->overhead(context);
    if (slot.round_index >= 0) {
      const RoundResult& r = rounds[static_cast<std::size_t>(slot.round_index)];
      outcome.signal_absent = !r.differentiated;
      outcome.payload_intact = r.outcome.payload_intact;
      outcome.completed = r.outcome.completed;
      outcome.changed_classification =
          outcome.signal_absent && r.outcome.completed;
      outcome.evaded =
          outcome.changed_classification && r.outcome.payload_intact;
      outcome.crafted_reached_server = r.outcome.crafted_at_server > 0;
      outcome.crafted_reassembled = r.outcome.crafted_reassembled;
      outcome.triggered_blocking =
          slot.technique->category() == Category::kInertInsertion &&
          r.outcome.blocked;
    }
    LIBERATE_COUNTER_ADD("core.techniques_evaluated", 1);
    {
      const char* verdict = outcome.pruned && slot.round_index < 0 ? "pruned"
                            : outcome.evaded                       ? "evaded"
                                                                   : "failed";
      std::uint64_t ts_us = slot.round_index >= 0
                                ? static_cast<std::uint64_t>(
                                      rounds[static_cast<std::size_t>(
                                                 slot.round_index)]
                                          .virtual_seconds *
                                      1e6)
                                : 0;
      LIBERATE_OBS_EVENT(
          ts_us, "core", "technique_evaluated",
          liberate::obs::fv("technique", outcome.technique),
          liberate::obs::fv("verdict", verdict),
          liberate::obs::fv("cost_extra_bytes", outcome.overhead.extra_bytes),
          liberate::obs::fv("cost_extra_packets",
                            outcome.overhead.extra_packets));
      (void)verdict;
      (void)ts_us;
    }
    result.outcomes.push_back(outcome);
  }

  // Select the cheapest working technique (same rule as the sequential
  // evaluator; outcome order is deterministic, so ties break identically).
  const TechniqueOutcome* best = nullptr;
  for (const auto& o : result.outcomes) {
    if (!o.evaded || o.pruned) continue;
    if (best == nullptr || cheaper(o.overhead, best->overhead)) best = &o;
  }
  if (best != nullptr) result.selected = best->technique;

  result.replay_rounds = acct.rounds;
  result.bytes_replayed = acct.bytes;
  result.virtual_seconds = acct.virtual_seconds;
  return result;
}

SessionReport analyze_parallel(RoundScheduler& scheduler,
                               const ApplicationTrace& trace) {
  SessionReport report;

  // Phase spans are stamped with accumulated virtual time: each phase span
  // covers [virtual time burned before it, virtual time burned after it],
  // which is deterministic across pool sizes (unlike wall clock).
  auto virtual_us = [&report]() {
    return static_cast<std::uint64_t>((report.detection.virtual_seconds +
                                       report.characterization.virtual_seconds +
                                       report.evaluation.virtual_seconds) *
                                      1e6);
  };
  (void)virtual_us;

  {
    LIBERATE_OBS_SPAN("core.phase.detect", virtual_us);
    LIBERATE_COST_SCOPE(kDetection);
    report.detection = detect_differentiation_parallel(scheduler, trace);
  }
  if (report.detection.content_based) {
    report.ran_characterization = true;
    CharacterizationOptions copts;
    copts.unique_port_per_round = true;  // harmless when not needed
    {
      LIBERATE_OBS_SPAN("core.phase.characterize", virtual_us);
      LIBERATE_COST_SCOPE(kCharacterization);
      report.characterization =
          characterize_classifier_parallel(scheduler, trace, copts);
    }
    {
      LIBERATE_OBS_SPAN("core.phase.evaluate", virtual_us);
      LIBERATE_COST_SCOPE(kEvaluation);
      report.evaluation = evaluate_parallel(scheduler, report.characterization,
                                            trace, /*run_pruned=*/false);
    }
    report.selected_technique = report.evaluation.selected;
  }

  report.total_rounds = report.detection.rounds +
                        report.characterization.replay_rounds +
                        report.evaluation.replay_rounds;
  report.total_bytes = report.detection.bytes_used +
                       report.characterization.bytes_replayed +
                       report.evaluation.bytes_replayed;
  report.total_virtual_minutes = (report.detection.virtual_seconds +
                                  report.characterization.virtual_seconds +
                                  report.evaluation.virtual_seconds) /
                                 60.0;
  return report;
}

}  // namespace liberate::core
