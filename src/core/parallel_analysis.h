// parallel_analysis.h — the lib·erate phases as batched scheduler waves.
//
// Mirrors detection (§4.1), characterization (§4.2/§5.1) and evasion
// evaluation (§4.3) on top of the RoundScheduler: every independent replay
// round of a phase is submitted as one wave and fans out across the worker
// pool. The wave structure is fixed by the inputs alone (never by worker
// count, completion order or the wall clock), so a serial scheduler, a
// 2-worker pool and an 8-worker pool produce byte-identical reports —
// tests/core/parallel_replay_test.cc holds this invariant.
//
// Where the sequential code early-exits a linear scan (prepend ceilings,
// TTL sweeps), the parallel version probes speculatively in fixed-size
// waves and takes the first qualifying probe in submission order: same
// answer, a handful of extra (parallel) rounds, a fraction of the
// wall-clock time.
#pragma once

#include "core/characterization.h"
#include "core/evaluation.h"
#include "core/liberate.h"
#include "core/round_scheduler.h"

namespace liberate::core {

/// Detection (§4.1): the original and the bit-inverted control replay as
/// one two-round wave (plus the randomization fallback when inversion is
/// detected). Isolated worlds make the sequential code's careful
/// control-first ordering irrelevant: neither round can poison the other.
DetectionResult detect_differentiation_parallel(
    RoundScheduler& scheduler, const trace::ApplicationTrace& trace);

/// Characterization (§4.2, §5.1): port sensitivity, breadth-first blinding
/// waves, speculative prepend and TTL waves. Same report fields as the
/// sequential characterize_classifier.
CharacterizationReport characterize_classifier_parallel(
    RoundScheduler& scheduler, const trace::ApplicationTrace& trace,
    const CharacterizationOptions& options = {});

/// Evasion evaluation (§4.3): the whole (pruned, ordered) technique suite
/// as a single wave — the biggest fan-out in the pipeline (26 techniques).
EvaluationResult evaluate_parallel(RoundScheduler& scheduler,
                                   const CharacterizationReport& report,
                                   const trace::ApplicationTrace& trace,
                                   bool run_pruned = false);

/// Phases 1–3 end to end — the parallel counterpart of Liberate::analyze().
SessionReport analyze_parallel(RoundScheduler& scheduler,
                               const trace::ApplicationTrace& trace);

}  // namespace liberate::core
