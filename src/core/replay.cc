#include "core/replay.h"

#include <algorithm>
#include <functional>
#include <memory>

#include "obs/obs.h"

namespace liberate::core {

using netsim::Duration;
using netsim::seconds;
using netsim::TimePoint;
using stack::Host;
using stack::OsProfile;
using stack::TcpConnection;
using trace::ApplicationTrace;
using trace::Sender;

namespace {

constexpr std::uint32_t kClientIp = 0x0a000001;   // 10.0.0.1
constexpr std::uint32_t kServerIp = 0xc6336414;   // 198.51.100.20 (default)

/// Index of the first client message containing a matching snippet (or 0).
std::size_t match_message_index(const ApplicationTrace& trace,
                                const std::vector<Bytes>& snippets) {
  for (std::size_t i = 0; i < trace.messages.size(); ++i) {
    const auto& m = trace.messages[i];
    if (m.sender != Sender::kClient) continue;
    if (snippets.empty()) return i;
    if (contains_matching_field(BytesView(m.payload), snippets)) return i;
  }
  return 0;
}

/// One side of a TCP replay: walks the message list in order, sending its
/// own messages (with per-message delays) and consuming/verifying the
/// peer's.
struct TcpReplaySide {
  const ApplicationTrace* trace = nullptr;
  Sender role = Sender::kClient;
  TcpConnection* conn = nullptr;
  netsim::EventLoop* loop = nullptr;
  const std::vector<Duration>* extra_delay = nullptr;  // per message index

  std::size_t next = 0;
  Bytes rx;
  bool mismatch = false;
  bool send_scheduled = false;
  bool established = false;

  // Liveness token for delayed sends: the loop outlives this round, so a
  // timer still pending when the round ends (reset, deadline) must expire
  // with the side, not fire into a dead frame next round.
  std::shared_ptr<char> alive = std::make_shared<char>(0);

  // s2c goodput bookkeeping (client side only).
  TimePoint first_peer_byte = 0;
  TimePoint last_peer_byte = 0;
  std::uint64_t peer_bytes = 0;

  bool done() const { return next >= trace->messages.size(); }

  void on_data(BytesView data) {
    if (peer_bytes == 0) first_peer_byte = loop->now();
    last_peer_byte = loop->now();
    peer_bytes += data.size();
    rx.insert(rx.end(), data.begin(), data.end());
    advance();
  }

  void advance() {
    if (!established || conn == nullptr) return;
    while (!done()) {
      const trace::Message& msg = trace->messages[next];
      if (msg.sender == role) {
        if (send_scheduled) return;
        Duration delay = msg.gap_us;
        if (extra_delay != nullptr && next < extra_delay->size()) {
          delay += (*extra_delay)[next];
        }
        if (delay > 0) {
          send_scheduled = true;
          std::size_t idx = next;
          loop->schedule(delay, [this, idx,
                                 alive_w = std::weak_ptr<char>(alive)]() {
            if (alive_w.expired()) return;
            send_scheduled = false;
            if (next == idx && !done() && conn != nullptr &&
                conn->state() != TcpConnection::State::kClosed) {
              conn->send(BytesView(trace->messages[idx].payload));
              next = idx + 1;
              advance();
            }
          });
          return;
        }
        conn->send(BytesView(msg.payload));
        next += 1;
        continue;
      }
      // Peer's message: consume once fully received, verifying content.
      if (rx.size() < msg.payload.size()) return;
      if (!std::equal(msg.payload.begin(), msg.payload.end(), rx.begin())) {
        mismatch = true;
      }
      rx.erase(rx.begin(),
               rx.begin() + static_cast<std::ptrdiff_t>(msg.payload.size()));
      next += 1;
    }
  }
};

}  // namespace

ReplayRunner::ReplayRunner(dpi::Environment& env, std::uint64_t seed)
    : env_(env), rng_(seed) {}

ReplayOutcome ReplayRunner::run(const ApplicationTrace& trace,
                                const ReplayOptions& options) {
  rounds_ += 1;
  bytes_offered_ += trace.total_bytes();
  LIBERATE_COUNTER_ADD("core.replay_rounds", 1);
  LIBERATE_COUNTER_ADD("core.replay_bytes_offered", trace.total_bytes());
  // The cost ledger's round chokepoint: every replay — scheduler-driven or
  // direct — lands here, attributed to the caller's ambient phase.
  LIBERATE_COST_TICK(kRounds, 1);
  [[maybe_unused]] netsim::EventLoop* loop = &env_.loop;
  LIBERATE_OBS_SPAN("core.replay", [loop]() { return loop->now(); });
  if (trace.transport == trace::Transport::kTcp) {
    return run_tcp(trace, options);
  }
  return run_udp(trace, options);
}

ReplayOutcome ReplayRunner::run_tcp(const ApplicationTrace& trace,
                                    const ReplayOptions& options) {
  ReplayOutcome outcome;
  outcome.expected_wire_bytes = trace.total_bytes();

  const std::uint16_t server_port = options.server_port_override
                                        ? options.server_port_override
                                        : trace.server_port;
  const std::uint32_t server_ip =
      options.server_ip_override ? options.server_ip_override : kServerIp;
  const std::uint16_t client_port = next_client_port_++;
  if (next_client_port_ < 42001) next_client_port_ = 42001;

  // Fresh endpoints for this round.
  auto shim = std::make_unique<EvasionShim>(env_.net.client_port(),
                                            options.technique,
                                            options.context);
  shim->set_match_packet_ttl(options.match_packet_ttl);
  auto client = std::make_unique<Host>(*shim, kClientIp,
                                       OsProfile::linux_profile());
  auto server =
      std::make_unique<Host>(env_.net.server_port(), server_ip,
                             env_.server_os);
  env_.net.attach_client(client.get());
  env_.net.attach_server(server.get());
  if (env_.pre_middlebox_tap != nullptr) env_.pre_middlebox_tap->clear();

  const std::uint64_t usage_before =
      env_.dpi != nullptr ? env_.dpi->usage_counter_bytes() : 0;
  const std::size_t log_before =
      env_.dpi != nullptr ? env_.dpi->engine().log().size() : 0;

  // Per-message extra delays implementing the flushing pauses.
  std::vector<Duration> extra_delay(trace.messages.size(), 0);
  {
    double before_s = options.pause_before_match_s;
    double after_s = options.pause_after_match_s;
    if (options.technique != nullptr) {
      TimingPlan plan = options.technique->timing(options.context);
      before_s += plan.pause_before_match_s;
      after_s += plan.pause_after_match_s;
    }
    std::size_t match_idx =
        match_message_index(trace, options.context.matching_snippets);
    if (before_s > 0 && match_idx < extra_delay.size()) {
      extra_delay[match_idx] += static_cast<Duration>(before_s * 1e6);
    }
    if (after_s > 0 && match_idx + 1 < extra_delay.size()) {
      extra_delay[match_idx + 1] += static_cast<Duration>(after_s * 1e6);
    }
  }

  TcpReplaySide client_side;
  client_side.trace = &trace;
  client_side.role = Sender::kClient;
  client_side.loop = &env_.loop;
  client_side.extra_delay = &extra_delay;

  TcpReplaySide server_side;
  server_side.trace = &trace;
  server_side.role = Sender::kServer;
  server_side.loop = &env_.loop;
  server_side.extra_delay = &extra_delay;

  bool client_reset = false;
  bool server_reset = false;
  TcpConnection* server_conn = nullptr;

  server->tcp_listen(server_port, [&](TcpConnection& c) {
    server_conn = &c;
    server_side.conn = &c;
    server_side.established = true;
    c.on_data([&](BytesView d) { server_side.on_data(d); });
    c.on_reset([&] { server_reset = true; });
    server_side.advance();
  });

  TcpConnection& conn =
      client->tcp_connect(server_ip, server_port, client_port);
  outcome.flow = conn.tuple();
  client_side.conn = &conn;
  conn.on_data([&](BytesView d) { client_side.on_data(d); });
  conn.on_reset([&] { client_reset = true; });
  conn.on_established([&] {
    client_side.established = true;
    client_side.advance();
  });

  // Deadline generous enough for shaping rates and configured pauses.
  double pause_total_s = 0;
  for (Duration d : extra_delay) pause_total_s += netsim::to_seconds(d);
  double transfer_budget_s =
      static_cast<double>(trace.total_bytes()) * 8.0 / 1.0e6 + 10.0;
  TimePoint start = env_.loop.now();
  TimePoint deadline =
      start + options.timeout +
      static_cast<Duration>((pause_total_s + transfer_budget_s) * 1e6);

  while (env_.loop.now() < deadline) {
    if (client_side.done() && server_side.done()) break;
    if (client_reset || server_reset) break;
    env_.loop.run_for(netsim::milliseconds(200));
  }

  outcome.completed = client_side.done() && server_side.done();
  outcome.payload_intact = !client_side.mismatch && !server_side.mismatch;
  outcome.duration_s = netsim::to_seconds(env_.loop.now() - start);
  if (client_side.peer_bytes > 0 &&
      client_side.last_peer_byte > client_side.first_peer_byte) {
    double window_s = netsim::to_seconds(client_side.last_peer_byte -
                                         client_side.first_peer_byte);
    outcome.goodput_mbps =
        8.0 * static_cast<double>(client_side.peer_bytes) / window_s / 1e6;
  }

  // Blocking signals.
  if (client_side.mismatch) {
    std::string got = to_string(BytesView(client_side.rx));
    // The rx buffer was partially consumed; also scan what remains.
    if (got.find("403 Forbidden") != std::string::npos) {
      outcome.got_403 = true;
    }
  }
  for (BytesView d : client->raw_received()) {
    auto p = netsim::parse_packet(d);
    if (!p.ok() || !p.value().is_tcp()) continue;
    const auto& pv = p.value();
    if (pv.tcp->rst() && pv.tcp->dst_port == client_port) {
      outcome.rsts_at_client += 1;
    }
    if (!pv.tcp->payload.empty()) {
      std::string s = to_string(pv.tcp->payload);
      if (s.find("403 Forbidden") != std::string::npos) {
        outcome.got_403 = true;
      }
    }
  }
  outcome.blocked =
      (!outcome.completed &&
       (client_reset || server_reset || outcome.rsts_at_client > 0)) ||
      outcome.got_403;

  // RS?: crafted packets on the server's wire.
  for (BytesView d : server->raw_received()) {
    auto p = netsim::parse_ipv4(d);
    if (!p.ok()) continue;
    if (p.value().identification == kCraftedIpId) {
      outcome.crafted_at_server += 1;
      if (!p.value().is_fragment() && p.value().payload.size() > 60) {
        // A single large non-fragment crafted datagram where fragments were
        // sent implies mid-path reassembly; callers interpret with context.
        outcome.crafted_reassembled = true;
      }
    }
  }

  // Zero-rating meter (lagging, polluted by background traffic — §6.2).
  if (env_.dpi != nullptr) {
    std::uint64_t delta = env_.dpi->usage_counter_bytes() - usage_before;
    if (env_.signal == dpi::Environment::Signal::kZeroRating) {
      delta += rng_.below(25 * 1024);
    }
    outcome.usage_delta = delta;
    const auto& log = env_.dpi->engine().log();
    for (std::size_t i = log_before; i < log.size(); ++i) {
      outcome.classifications.push_back(log[i]);
    }
  }

  // Teardown: abort whatever is still open, drain the loop briefly, retire
  // the hosts (loop callbacks may still reference them).
  if (conn.state() != TcpConnection::State::kClosed) conn.abort();
  if (server_conn != nullptr &&
      server_conn->state() != TcpConnection::State::kClosed) {
    server_conn->abort();
  }
  env_.loop.run_for(seconds(3));
  env_.net.attach_client(nullptr);
  env_.net.attach_server(nullptr);
  retired_hosts_.push_back(std::move(client));
  retired_hosts_.push_back(std::move(server));
  retired_shims_.push_back(std::move(shim));
  return outcome;
}

ReplayOutcome ReplayRunner::run_udp(const ApplicationTrace& trace,
                                    const ReplayOptions& options) {
  ReplayOutcome outcome;
  outcome.expected_wire_bytes = trace.total_bytes();

  const std::uint16_t server_port = options.server_port_override
                                        ? options.server_port_override
                                        : trace.server_port;
  const std::uint32_t server_ip =
      options.server_ip_override ? options.server_ip_override : kServerIp;
  const std::uint16_t client_port = next_client_port_++;

  auto shim = std::make_unique<EvasionShim>(env_.net.client_port(),
                                            options.technique,
                                            options.context);
  shim->set_match_packet_ttl(options.match_packet_ttl);
  auto client = std::make_unique<Host>(*shim, kClientIp,
                                       OsProfile::linux_profile());
  auto server = std::make_unique<Host>(env_.net.server_port(), server_ip,
                                       env_.server_os);
  env_.net.attach_client(client.get());
  env_.net.attach_server(server.get());

  const std::uint64_t usage_before =
      env_.dpi != nullptr ? env_.dpi->usage_counter_bytes() : 0;
  const std::size_t log_before =
      env_.dpi != nullptr ? env_.dpi->engine().log().size() : 0;

  outcome.flow = netsim::FiveTuple{
      kClientIp, server_ip, client_port, server_port,
      static_cast<std::uint8_t>(netsim::IpProto::kUdp)};

  auto& client_sock = client->udp_bind(client_port);
  auto& server_sock = server->udp_bind(server_port);

  // Receivers tolerate reordering: each datagram is matched against the set
  // of still-pending messages from the peer.
  struct UdpSide {
    std::vector<const trace::Message*> pending_from_peer;
    std::size_t mismatches = 0;
    std::uint64_t bytes = 0;
    TimePoint first = 0, last = 0;
  };
  UdpSide at_client, at_server;
  for (const auto& m : trace.messages) {
    if (m.sender == Sender::kServer) {
      at_client.pending_from_peer.push_back(&m);
    } else {
      at_server.pending_from_peer.push_back(&m);
    }
  }
  auto consume = [this](UdpSide& side, const Bytes& payload) {
    if (side.bytes == 0) side.first = env_.loop.now();
    side.last = env_.loop.now();
    side.bytes += payload.size();
    for (auto it = side.pending_from_peer.begin();
         it != side.pending_from_peer.end(); ++it) {
      if ((*it)->payload == payload) {
        side.pending_from_peer.erase(it);
        return;
      }
    }
    side.mismatches += 1;  // crafted dummy or corrupted datagram
  };
  client_sock.on_receive([&](const stack::UdpSocket::Incoming& in) {
    consume(at_client, in.payload);
  });
  server_sock.on_receive([&](const stack::UdpSocket::Incoming& in) {
    consume(at_server, in.payload);
  });

  // Schedule all sends at their cumulative offsets (pauses included).
  std::size_t match_idx =
      match_message_index(trace, options.context.matching_snippets);
  Duration at = netsim::milliseconds(1);
  for (std::size_t i = 0; i < trace.messages.size(); ++i) {
    const trace::Message& m = trace.messages[i];
    at += m.gap_us;
    double before_s = options.pause_before_match_s;
    double after_s = options.pause_after_match_s;
    if (options.technique != nullptr) {
      TimingPlan plan = options.technique->timing(options.context);
      before_s += plan.pause_before_match_s;
      after_s += plan.pause_after_match_s;
    }
    if (i == match_idx) at += static_cast<Duration>(before_s * 1e6);
    if (i == match_idx + 1) at += static_cast<Duration>(after_s * 1e6);
    if (m.sender == Sender::kClient) {
      env_.loop.schedule(at, [&client_sock, &m, server_port, server_ip]() {
        client_sock.send_to(server_ip, server_port, BytesView(m.payload));
      });
    } else {
      env_.loop.schedule(at, [&server_sock, &m, client_port]() {
        server_sock.send_to(kClientIp, client_port, BytesView(m.payload));
      });
    }
  }

  TimePoint start = env_.loop.now();
  TimePoint deadline = start + options.timeout + at;
  while (env_.loop.now() < deadline) {
    if (at_client.pending_from_peer.empty() &&
        at_server.pending_from_peer.empty()) {
      break;
    }
    env_.loop.run_for(netsim::milliseconds(200));
  }

  outcome.completed = at_client.pending_from_peer.empty() &&
                      at_server.pending_from_peer.empty();
  outcome.payload_intact = outcome.completed;
  outcome.duration_s = netsim::to_seconds(env_.loop.now() - start);
  if (at_client.bytes > 0 && at_client.last > at_client.first) {
    outcome.goodput_mbps = 8.0 * static_cast<double>(at_client.bytes) /
                           netsim::to_seconds(at_client.last - at_client.first) /
                           1e6;
  }
  for (BytesView d : server->raw_received()) {
    auto p = netsim::parse_ipv4(d);
    if (p.ok() && p.value().identification == kCraftedIpId) {
      outcome.crafted_at_server += 1;
    }
  }
  if (env_.dpi != nullptr) {
    std::uint64_t delta = env_.dpi->usage_counter_bytes() - usage_before;
    if (env_.signal == dpi::Environment::Signal::kZeroRating) {
      delta += rng_.below(25 * 1024);
    }
    outcome.usage_delta = delta;
    const auto& log = env_.dpi->engine().log();
    for (std::size_t i = log_before; i < log.size(); ++i) {
      outcome.classifications.push_back(log[i]);
    }
  }

  env_.loop.run_for(seconds(1));
  env_.net.attach_client(nullptr);
  env_.net.attach_server(nullptr);
  retired_hosts_.push_back(std::move(client));
  retired_hosts_.push_back(std::move(server));
  retired_shims_.push_back(std::move(shim));
  return outcome;
}

bool ReplayRunner::differentiated(const ReplayOutcome& outcome) const {
  switch (env_.signal) {
    case dpi::Environment::Signal::kDirect: {
      if (env_.dpi == nullptr) return false;
      auto klass = env_.dpi->engine().active_class_now(outcome.flow,
                                                       env_.loop.now());
      if (!klass) return false;
      const auto& actions = env_.dpi->config().actions;
      auto it = actions.find(*klass);
      if (it == actions.end()) return false;
      const dpi::PolicyAction& a = it->second;
      return a.block || a.zero_rate || a.throttle_bytes_per_sec.has_value();
    }
    case dpi::Environment::Signal::kZeroRating:
      return outcome.usage_delta < outcome.expected_wire_bytes / 2;
    case dpi::Environment::Signal::kThroughput:
      return outcome.goodput_mbps > 0 && outcome.goodput_mbps < 2.0;
    case dpi::Environment::Signal::kBlocking:
      return outcome.blocked;
    case dpi::Environment::Signal::kNone:
      return false;
  }
  return false;
}

}  // namespace liberate::core
