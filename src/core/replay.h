// replay.h — record/replay infrastructure (Fig. 3, steps 1–2).
//
// A ReplayRunner plays an ApplicationTrace between a fresh client and a
// fresh replay server across an Environment's path, optionally through an
// EvasionShim, and collects every observable signal the paper uses:
// completion/integrity, RSTs and 403s (blocking), goodput (shaping), the
// data-usage counter (zero rating, with realistic lag/noise), the raw
// crafted-packet tap at the server (Table 3's RS? column), and the
// classifier's own log (testbed direct signal).
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "core/evasion/shim.h"
#include "dpi/profiles.h"
#include "stack/host.h"
#include "trace/trace.h"
#include "util/rng.h"

namespace liberate::core {

struct ReplayOptions {
  /// Evasion technique applied by the client-side shim (null = none).
  Technique* technique = nullptr;
  /// Matching fields etc. for the shim/technique.
  TechniqueContext context;
  /// Override the trace's server port (port-sensitivity probing, and fresh
  /// ports per round against the GFC's endpoint escalation).
  std::uint16_t server_port_override = 0;
  /// Replay from a different server address (0 = the default). §4.2: an
  /// adversary may whitelist known replay servers; "we can detect the former
  /// using previously unseen replay servers".
  std::uint32_t server_ip_override = 0;
  /// Localization: force this TTL onto the matching packet.
  std::optional<std::uint8_t> match_packet_ttl;
  /// Extra pauses (flushing techniques fill these from Technique::timing()).
  double pause_before_match_s = 0;
  double pause_after_match_s = 0;
  /// Hard deadline for the round (auto-extended by the pauses).
  netsim::Duration timeout = netsim::seconds(60);
};

struct ReplayOutcome {
  bool completed = false;           // every trace message delivered
  bool payload_intact = true;       // delivered bytes matched the trace
  bool blocked = false;             // reset / unsolicited 403
  bool got_403 = false;
  std::uint64_t rsts_at_client = 0; // raw RSTs seen on the client wire
  double duration_s = 0;
  double goodput_mbps = 0;          // server->client application goodput
  std::uint64_t usage_delta = 0;    // data-usage counter delta (noisy)
  std::uint64_t expected_wire_bytes = 0;  // trace bytes offered this round
  // RS? bookkeeping: crafted packets (IP id == kCraftedIpId) at the server.
  std::size_t crafted_at_server = 0;
  bool crafted_reassembled = false;  // arrived merged into one datagram
  netsim::FiveTuple flow;            // client->server tuple of the main flow
  std::vector<dpi::ClassificationEvent> classifications;  // this round only
};

class ReplayRunner {
 public:
  explicit ReplayRunner(dpi::Environment& env, std::uint64_t seed = 1);

  ReplayOutcome run(const trace::ApplicationTrace& trace,
                    const ReplayOptions& options = {});

  /// The differentiation oracle: did this round experience the environment's
  /// policy? (Per-signal semantics; see DESIGN.md.)
  bool differentiated(const ReplayOutcome& outcome) const;

  dpi::Environment& env() { return env_; }
  /// Total replay rounds executed and bytes offered so far (cost accounting
  /// for §6's efficiency numbers).
  int rounds() const { return rounds_; }
  std::uint64_t bytes_offered() const { return bytes_offered_; }
  double virtual_seconds_elapsed() const {
    return netsim::to_seconds(env_.loop.now());
  }

 private:
  ReplayOutcome run_tcp(const trace::ApplicationTrace& trace,
                        const ReplayOptions& options);
  ReplayOutcome run_udp(const trace::ApplicationTrace& trace,
                        const ReplayOptions& options);

  dpi::Environment& env_;
  Rng rng_;
  std::uint16_t next_client_port_ = 42001;
  std::uint16_t next_server_port_ = 20000;  // fresh ports per round
  int rounds_ = 0;
  std::uint64_t bytes_offered_ = 0;
  // Hosts must outlive any event-loop callbacks that captured them; they are
  // retired here and reclaimed with the runner.
  std::vector<std::unique_ptr<stack::Host>> retired_hosts_;
  std::vector<std::unique_ptr<EvasionShim>> retired_shims_;
};

}  // namespace liberate::core
