#include "core/report_io.h"

#include "core/evasion/technique.h"
#include "util/json.h"

namespace liberate::core {

namespace {
constexpr char kMagic[4] = {'L', 'C', 'R', '1'};  // Liberate Char. Report v1
}

Bytes serialize_report(const CharacterizationReport& report) {
  ByteWriter w;
  w.raw(BytesView(reinterpret_cast<const std::uint8_t*>(kMagic), 4));

  std::uint8_t flags = 0;
  if (report.position_sensitive) flags |= 1;
  if (report.inspects_all_packets) flags |= 2;
  if (report.port_sensitive) flags |= 4;
  if (report.packet_limit) flags |= 8;
  if (report.middlebox_hops) flags |= 16;
  w.u8(flags);
  w.u32(static_cast<std::uint32_t>(report.packet_limit.value_or(0)));
  w.u32(static_cast<std::uint32_t>(report.middlebox_hops.value_or(0)));
  w.u32(static_cast<std::uint32_t>(report.replay_rounds));
  w.u32(static_cast<std::uint32_t>(report.bytes_replayed));
  w.u32(static_cast<std::uint32_t>(report.virtual_seconds));

  w.u16(static_cast<std::uint16_t>(report.fields.size()));
  for (const auto& f : report.fields) {
    w.u16(static_cast<std::uint16_t>(f.message_index));
    w.u32(static_cast<std::uint32_t>(f.offset));
    w.u32(static_cast<std::uint32_t>(f.length));
    w.u16(static_cast<std::uint16_t>(f.content.size()));
    w.raw(f.content);
  }
  return std::move(w).take();
}

Result<CharacterizationReport> deserialize_report(BytesView data) {
  ByteReader r(data);
  auto magic = r.raw(4);
  if (!magic.ok() || to_string(magic.value()) != "LCR1") {
    return Error("report_io: bad magic");
  }
  CharacterizationReport report;
  auto flags = r.u8();
  auto limit = r.u32();
  auto hops = r.u32();
  auto rounds = r.u32();
  auto bytes = r.u32();
  auto seconds = r.u32();
  if (!flags.ok() || !limit.ok() || !hops.ok() || !rounds.ok() ||
      !bytes.ok() || !seconds.ok()) {
    return Error("report_io: truncated header");
  }
  report.position_sensitive = flags.value() & 1;
  report.inspects_all_packets = flags.value() & 2;
  report.port_sensitive = flags.value() & 4;
  if (flags.value() & 8) report.packet_limit = limit.value();
  if (flags.value() & 16) {
    report.middlebox_hops = static_cast<int>(hops.value());
  }
  report.replay_rounds = static_cast<int>(rounds.value());
  report.bytes_replayed = bytes.value();
  report.virtual_seconds = seconds.value();

  auto count = r.u16();
  if (!count.ok()) return Error("report_io: truncated field count");
  for (std::uint16_t i = 0; i < count.value(); ++i) {
    MatchingField f;
    auto msg = r.u16();
    auto off = r.u32();
    auto len = r.u32();
    auto content_len = r.u16();
    if (!msg.ok() || !off.ok() || !len.ok() || !content_len.ok()) {
      return Error("report_io: truncated field");
    }
    auto content = r.raw(content_len.value());
    if (!content.ok()) return Error("report_io: truncated field content");
    f.message_index = msg.value();
    f.offset = off.value();
    f.length = len.value();
    f.content.assign(content.value().begin(), content.value().end());
    report.fields.push_back(std::move(f));
  }
  return report;
}

namespace {

std::string hex_of(const Bytes& data) {
  static const char* kHex = "0123456789abcdef";
  std::string out;
  out.reserve(data.size() * 2);
  for (std::uint8_t b : data) {
    out.push_back(kHex[b >> 4]);
    out.push_back(kHex[b & 0xf]);
  }
  return out;
}

void write_replay_outcome(JsonWriter& w, const ReplayOutcome& o) {
  w.begin_object();
  w.key("completed").value(o.completed);
  w.key("payload_intact").value(o.payload_intact);
  w.key("blocked").value(o.blocked);
  w.key("got_403").value(o.got_403);
  w.key("rsts_at_client").value(static_cast<std::uint64_t>(o.rsts_at_client));
  w.key("duration_s").value(o.duration_s);
  w.key("goodput_mbps").value(o.goodput_mbps);
  w.key("usage_delta").value(o.usage_delta);
  w.end_object();
}

void write_detection(JsonWriter& w, const DetectionResult& d) {
  w.begin_object();
  w.key("differentiation").value(d.differentiation);
  w.key("content_based").value(d.content_based);
  w.key("used_randomization_fallback").value(d.used_randomization_fallback);
  w.key("needed_unseen_server").value(d.needed_unseen_server);
  w.key("original");
  write_replay_outcome(w, d.original);
  w.key("inverted");
  write_replay_outcome(w, d.inverted);
  w.key("rounds").value(d.rounds);
  w.key("bytes_used").value(d.bytes_used);
  w.key("virtual_seconds").value(d.virtual_seconds);
  w.end_object();
}

void write_characterization(JsonWriter& w, const CharacterizationReport& c) {
  w.begin_object();
  w.key("fields").begin_array();
  for (const MatchingField& f : c.fields) {
    w.begin_object();
    w.key("message_index").value(static_cast<std::uint64_t>(f.message_index));
    w.key("offset").value(static_cast<std::uint64_t>(f.offset));
    w.key("length").value(static_cast<std::uint64_t>(f.length));
    w.key("content_hex").value(hex_of(f.content));
    w.end_object();
  }
  w.end_array();
  w.key("position_sensitive").value(c.position_sensitive);
  if (c.packet_limit) {
    w.key("packet_limit").value(static_cast<std::uint64_t>(*c.packet_limit));
  } else {
    w.key("packet_limit").null();
  }
  w.key("inspects_all_packets").value(c.inspects_all_packets);
  w.key("port_sensitive").value(c.port_sensitive);
  if (c.middlebox_hops) {
    w.key("middlebox_hops").value(*c.middlebox_hops);
  } else {
    w.key("middlebox_hops").null();
  }
  w.key("replay_rounds").value(c.replay_rounds);
  w.key("bytes_replayed").value(c.bytes_replayed);
  w.key("virtual_seconds").value(c.virtual_seconds);
  w.end_object();
}

void write_evaluation(JsonWriter& w, const EvaluationResult& e) {
  w.begin_object();
  w.key("outcomes").begin_array();
  for (const TechniqueOutcome& o : e.outcomes) {
    w.begin_object();
    w.key("technique").value(o.technique);
    w.key("category").value(category_name(o.category));
    w.key("pruned").value(o.pruned);
    w.key("changed_classification").value(o.changed_classification);
    w.key("evaded").value(o.evaded);
    w.key("signal_absent").value(o.signal_absent);
    w.key("payload_intact").value(o.payload_intact);
    w.key("completed").value(o.completed);
    w.key("crafted_reached_server").value(o.crafted_reached_server);
    w.key("crafted_reassembled").value(o.crafted_reassembled);
    w.key("triggered_blocking").value(o.triggered_blocking);
    w.key("overhead").begin_object();
    w.key("extra_packets")
        .value(static_cast<std::uint64_t>(o.overhead.extra_packets));
    w.key("extra_bytes")
        .value(static_cast<std::uint64_t>(o.overhead.extra_bytes));
    w.key("extra_seconds").value(o.overhead.extra_seconds);
    w.key("formula").value(o.overhead.formula);
    w.end_object();
    w.end_object();
  }
  w.end_array();
  if (e.selected) {
    w.key("selected").value(*e.selected);
  } else {
    w.key("selected").null();
  }
  w.key("replay_rounds").value(e.replay_rounds);
  w.key("bytes_replayed").value(e.bytes_replayed);
  w.key("virtual_seconds").value(e.virtual_seconds);
  w.end_object();
}

void write_analysis(JsonWriter& w, const SessionReport& report) {
  w.begin_object();
  w.key("detection");
  write_detection(w, report.detection);
  w.key("ran_characterization").value(report.ran_characterization);
  w.key("characterization");
  write_characterization(w, report.characterization);
  w.key("evaluation");
  write_evaluation(w, report.evaluation);
  if (report.selected_technique) {
    w.key("selected_technique").value(*report.selected_technique);
  } else {
    w.key("selected_technique").null();
  }
  w.key("total_rounds").value(report.total_rounds);
  w.key("total_bytes").value(report.total_bytes);
  w.key("total_virtual_minutes").value(report.total_virtual_minutes);
  w.end_object();
}

}  // namespace

std::string analysis_report_json(const SessionReport& report) {
  JsonWriter w;
  w.begin_object();
  w.key("analysis");
  write_analysis(w, report);
  w.end_object();
  return std::move(w).take();
}

std::string analysis_report_json(const SessionReport& report,
                                 const obs::Snapshot& telemetry) {
  JsonWriter w;
  w.begin_object();
  w.key("analysis");
  write_analysis(w, report);
  w.key("telemetry");
  obs::write_json(w, telemetry);
  w.end_object();
  return std::move(w).take();
}

}  // namespace liberate::core
