#include "core/report_io.h"

namespace liberate::core {

namespace {
constexpr char kMagic[4] = {'L', 'C', 'R', '1'};  // Liberate Char. Report v1
}

Bytes serialize_report(const CharacterizationReport& report) {
  ByteWriter w;
  w.raw(BytesView(reinterpret_cast<const std::uint8_t*>(kMagic), 4));

  std::uint8_t flags = 0;
  if (report.position_sensitive) flags |= 1;
  if (report.inspects_all_packets) flags |= 2;
  if (report.port_sensitive) flags |= 4;
  if (report.packet_limit) flags |= 8;
  if (report.middlebox_hops) flags |= 16;
  w.u8(flags);
  w.u32(static_cast<std::uint32_t>(report.packet_limit.value_or(0)));
  w.u32(static_cast<std::uint32_t>(report.middlebox_hops.value_or(0)));
  w.u32(static_cast<std::uint32_t>(report.replay_rounds));
  w.u32(static_cast<std::uint32_t>(report.bytes_replayed));
  w.u32(static_cast<std::uint32_t>(report.virtual_seconds));

  w.u16(static_cast<std::uint16_t>(report.fields.size()));
  for (const auto& f : report.fields) {
    w.u16(static_cast<std::uint16_t>(f.message_index));
    w.u32(static_cast<std::uint32_t>(f.offset));
    w.u32(static_cast<std::uint32_t>(f.length));
    w.u16(static_cast<std::uint16_t>(f.content.size()));
    w.raw(f.content);
  }
  return std::move(w).take();
}

Result<CharacterizationReport> deserialize_report(BytesView data) {
  ByteReader r(data);
  auto magic = r.raw(4);
  if (!magic.ok() || to_string(magic.value()) != "LCR1") {
    return Error("report_io: bad magic");
  }
  CharacterizationReport report;
  auto flags = r.u8();
  auto limit = r.u32();
  auto hops = r.u32();
  auto rounds = r.u32();
  auto bytes = r.u32();
  auto seconds = r.u32();
  if (!flags.ok() || !limit.ok() || !hops.ok() || !rounds.ok() ||
      !bytes.ok() || !seconds.ok()) {
    return Error("report_io: truncated header");
  }
  report.position_sensitive = flags.value() & 1;
  report.inspects_all_packets = flags.value() & 2;
  report.port_sensitive = flags.value() & 4;
  if (flags.value() & 8) report.packet_limit = limit.value();
  if (flags.value() & 16) {
    report.middlebox_hops = static_cast<int>(hops.value());
  }
  report.replay_rounds = static_cast<int>(rounds.value());
  report.bytes_replayed = bytes.value();
  report.virtual_seconds = seconds.value();

  auto count = r.u16();
  if (!count.ok()) return Error("report_io: truncated field count");
  for (std::uint16_t i = 0; i < count.value(); ++i) {
    MatchingField f;
    auto msg = r.u16();
    auto off = r.u32();
    auto len = r.u32();
    auto content_len = r.u16();
    if (!msg.ok() || !off.ok() || !len.ok() || !content_len.ok()) {
      return Error("report_io: truncated field");
    }
    auto content = r.raw(content_len.value());
    if (!content.ok()) return Error("report_io: truncated field content");
    f.message_index = msg.value();
    f.offset = off.value();
    f.length = len.value();
    f.content.assign(content.value().begin(), content.value().end());
    report.fields.push_back(std::move(f));
  }
  return report;
}

}  // namespace liberate::core
