// report_io.h — sharing characterization results between users (§4.2).
//
// "These test results can be stored in a well known public location (e.g.,
// a server or a DHT) so that all users can identify the matching rules
// without running additional tests." A CharacterizationReport serializes to
// a compact binary blob; RuleCache is the public location, keyed by
// (network, application). The paper's caveat — an adversary who can read
// the cache learns the detected rules — is the operator's problem, not a
// confidentiality goal of the format.
#pragma once

#include <map>
#include <optional>
#include <string>

#include "core/characterization.h"
#include "core/liberate.h"
#include "obs/snapshot.h"

namespace liberate::core {

Bytes serialize_report(const CharacterizationReport& report);
Result<CharacterizationReport> deserialize_report(BytesView data);

/// Deterministic JSON rendering of a full analysis (detection +
/// characterization + evaluation + cost accounting). The output depends only
/// on the report contents — never on the observability level or pool size —
/// so a level-0 build produces byte-identical analysis JSON.
std::string analysis_report_json(const SessionReport& report);

/// Same analysis block plus a "telemetry" block rendered from an obs
/// snapshot (counters, gauges, histograms, spans, events). The analysis
/// block is rendered by the overload above, so the two sections can be
/// compared independently.
std::string analysis_report_json(const SessionReport& report,
                                 const obs::Snapshot& telemetry);

/// The "well-known public location": any user can publish an analysis and
/// any other user can adopt it, skipping the (10–35 minute) one-time cost.
class RuleCache {
 public:
  void publish(const std::string& network, const std::string& app,
               const CharacterizationReport& report) {
    store_[key(network, app)] = serialize_report(report);
  }

  std::optional<CharacterizationReport> lookup(const std::string& network,
                                               const std::string& app) const {
    auto it = store_.find(key(network, app));
    if (it == store_.end()) return std::nullopt;
    auto parsed = deserialize_report(it->second);
    if (!parsed.ok()) return std::nullopt;
    return std::move(parsed).value();
  }

  std::size_t entries() const { return store_.size(); }
  /// Wire size of one published entry (the paper's sharing-cost argument).
  std::optional<std::size_t> entry_bytes(const std::string& network,
                                         const std::string& app) const {
    auto it = store_.find(key(network, app));
    if (it == store_.end()) return std::nullopt;
    return it->second.size();
  }

 private:
  static std::string key(const std::string& network, const std::string& app) {
    return network + "\x1f" + app;
  }
  std::map<std::string, Bytes> store_;
};

}  // namespace liberate::core
