#include "core/round_scheduler.h"

#include <utility>

#include "core/evasion/registry.h"
#include "dpi/profiles.h"
#include "obs/obs.h"

namespace liberate::core {

namespace {

/// splitmix64 step — used to derive independent seed streams from
/// (master seed, round fingerprint).
std::uint64_t mix(std::uint64_t z) {
  z += 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t derive_seed(std::uint64_t seed, const Fingerprint& id,
                          std::uint64_t salt) {
  return mix(mix(seed ^ salt) ^ id.lo) ^ mix(id.hi);
}

void fold_trace(Digest& d, const trace::ApplicationTrace& t) {
  d.update_sized(t.app_name);
  d.update_u8(t.transport == trace::Transport::kTcp ? 0 : 1);
  d.update_u16(t.server_port);
  d.update_u64(t.messages.size());
  for (const trace::Message& m : t.messages) {
    d.update_u8(m.sender == trace::Sender::kClient ? 0 : 1);
    d.update_u64(m.gap_us);
    d.update_sized(BytesView(m.payload));
  }
}

void fold_context(Digest& d, const TechniqueContext& ctx) {
  d.update_u64(ctx.matching_snippets.size());
  for (const Bytes& s : ctx.matching_snippets) d.update_sized(BytesView(s));
  d.update_u8(ctx.middlebox_ttl);
  d.update_sized(BytesView(ctx.decoy_payload));
  d.update_u64(ctx.split_pieces);
  d.update_u64(ctx.fragment_pieces);
  d.update_double(ctx.pause_seconds);
}

}  // namespace

Fingerprint round_fingerprint(const WorldSpec& spec, const RoundRequest& req) {
  Digest d;
  // Environment = classifier profile + path configuration.
  d.update_sized(spec.environment);
  d.update_u64(spec.seed);
  d.update_double(spec.warmup_hours);
  // Fault policy is part of the path: two rounds differing only in faults
  // must never share a memoized result.
  d.update_double(spec.faults.loss);
  d.update_double(spec.faults.duplicate);
  d.update_double(spec.faults.truncate);
  d.update_double(spec.faults.corrupt);
  d.update_u64(static_cast<std::uint64_t>(spec.faults.corrupt_max_bits));
  d.update_double(spec.faults.reorder);
  d.update_u64(static_cast<std::uint64_t>(spec.faults.reorder_hold));
  d.update_u64(static_cast<std::uint64_t>(spec.faults.max_jitter));
  // Trace digest (the exact bytes that go on the wire).
  fold_trace(d, req.trace);
  // Mutation: technique + context + replay knobs.
  d.update_sized(req.technique);
  fold_context(d, req.context);
  d.update_u16(req.server_port_override);
  d.update_u32(req.server_ip_override);
  d.update_u8(req.match_packet_ttl.has_value() ? 1 : 0);
  d.update_u8(req.match_packet_ttl.value_or(0));
  d.update_double(req.pause_before_match_s);
  d.update_double(req.pause_after_match_s);
  d.update_double(req.timeout_s);
  return d.finish();
}

RoundResult run_isolated_round(const WorldSpec& spec, const RoundRequest& req) {
  return run_isolated_round(spec, req, round_fingerprint(spec, req));
}

RoundResult run_isolated_round(const WorldSpec& spec, const RoundRequest& req,
                               const Fingerprint& id) {
  // The world and the runner get independent deterministic streams derived
  // from (seed, round_id); nothing here depends on scheduling.
  auto env = dpi::make_environment(spec.environment,
                                   derive_seed(spec.seed, id, 0xE17));
  if (spec.faults.any()) {
    // Client-side hostile link, seeded per round: deterministic for a given
    // (seed, fingerprint) no matter which worker runs the round.
    env->net.emplace_at<netsim::FaultyLink>(
        0, spec.faults, derive_seed(spec.seed, id, 0xFA017));
  }
  const netsim::TimePoint warmup_end = static_cast<netsim::TimePoint>(
      spec.warmup_hours * 3600.0 * 1e6);
  env->loop.run_until(warmup_end);

  // Span over the round's virtual lifetime: start/end are sim-clock stamps
  // relative to the end of warmup, so nested replay spans line up with the
  // reported virtual_seconds.
  [[maybe_unused]] netsim::EventLoop* loop = &env->loop;
  LIBERATE_OBS_SPAN("core.round",
                    [loop, warmup_end]() { return loop->now() - warmup_end; });

  // Provenance scope for everything this round records: the content-defined
  // round fingerprint, so parallel replays of the identical flow tuple keep
  // separate ledgers and serial/parallel runs agree byte-for-byte.
  LIBERATE_PROV_SCOPE(id.lo);

  ReplayRunner runner(*env, derive_seed(spec.seed, id, 0x5EED));

  std::unique_ptr<Technique> technique;
  if (!req.technique.empty()) {
    for (auto& t : build_full_suite()) {
      if (t->name() == req.technique) {
        technique = std::move(t);
        break;
      }
    }
  }

  ReplayOptions opts;
  opts.technique = technique.get();
  opts.context = req.context;
  opts.server_port_override = req.server_port_override;
  opts.server_ip_override = req.server_ip_override;
  opts.match_packet_ttl = req.match_packet_ttl;
  opts.pause_before_match_s = req.pause_before_match_s;
  opts.pause_after_match_s = req.pause_after_match_s;
  opts.timeout = static_cast<netsim::Duration>(req.timeout_s * 1e6);

  RoundResult result;
  result.outcome = runner.run(req.trace, opts);
  result.differentiated = runner.differentiated(result.outcome);
  result.virtual_seconds =
      netsim::to_seconds(env->loop.now() - warmup_end);
  result.bytes_offered = req.trace.total_bytes();
  return result;
}

std::optional<RoundResult> ProbeCache::get(const Fingerprint& key) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto hit = lru_.get(key);
  if (hit) {
    hits_.fetch_add(1);
  } else {
    misses_.fetch_add(1);
  }
  return hit;
}

void ProbeCache::put(const Fingerprint& key, const RoundResult& result) {
  std::lock_guard<std::mutex> lock(mutex_);
  lru_.put(key, result);
}

std::size_t ProbeCache::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return lru_.size();
}

RoundScheduler::RoundScheduler(WorldSpec spec, SchedulerOptions options)
    : spec_(std::move(spec)),
      options_(options),
      cache_(options.cache_capacity) {
  if (options_.workers > 0) {
    pool_ = std::make_unique<ThreadPool>(options_.workers);
  }
}

RoundScheduler::~RoundScheduler() {
  // Drain outstanding rounds before the cache and spec go away.
  if (pool_) pool_->shutdown();
}

RoundResult RoundScheduler::execute(const RoundRequest& req,
                                    const Fingerprint& key) {
  RoundResult result = run_isolated_round(spec_, req, key);
  executed_.fetch_add(1);
  LIBERATE_COUNTER_ADD("core.rounds_executed", 1);
  LIBERATE_HISTOGRAM_OBSERVE("core.round_virtual_seconds",
                             ({0.5, 1, 2, 5, 10, 30, 60, 120, 300}),
                             result.virtual_seconds);
  // HDR twin of the fixed-bucket histogram above: full-resolution virtual
  // latency quantiles without having to guess bounds.
  LIBERATE_HDR_RECORD("core.round_latency_us",
                      result.virtual_seconds > 0
                          ? static_cast<std::uint64_t>(
                                result.virtual_seconds * 1e6)
                          : 0);
  if (options_.cache_capacity > 0) {
    cache_.put(key, result);
    std::lock_guard<std::mutex> lock(inflight_mutex_);
    inflight_.erase(key);
  }
  return result;
}

std::shared_future<RoundResult> RoundScheduler::submit(RoundRequest req) {
  const Fingerprint key = round_fingerprint(spec_, req);
  // A probe is a *submitted* request — cache hits and coalesced duplicates
  // included, so the ledger shows what memoization saved (probes - rounds).
  LIBERATE_COST_TICK(kProbes, 1);

  auto ready = [](RoundResult r) {
    std::promise<RoundResult> p;
    p.set_value(std::move(r));
    return p.get_future().share();
  };

  if (options_.cache_capacity > 0) {
    if (auto cached = cache_.get(key)) {
      from_cache_.fetch_add(1);
      LIBERATE_COUNTER_ADD("core.rounds_from_cache", 1);
      cached->from_cache = true;
      return ready(std::move(*cached));
    }
    // Coalesce onto an identical round that is already in flight.
    std::lock_guard<std::mutex> lock(inflight_mutex_);
    auto it = inflight_.find(key);
    if (it != inflight_.end()) {
      from_cache_.fetch_add(1);
      LIBERATE_COUNTER_ADD("core.rounds_coalesced", 1);
      return it->second;
    }
    if (pool_) {
      // LIBERATE_OBS_PROPAGATE carries the submitting thread's ambient
      // span/profile/cost context to the worker, so the round nests under
      // the phase that asked for it in serial and parallel runs alike.
      auto task = LIBERATE_OBS_PROPAGATE([this, req = std::move(req), key]() {
        return execute(req, key);
      });
      std::shared_future<RoundResult> future =
          pool_->submit(std::move(task)).share();
      inflight_[key] = future;
      return future;
    }
  }

  if (pool_) {
    auto task = LIBERATE_OBS_PROPAGATE([this, req = std::move(req), key]() {
      return execute(req, key);
    });
    return pool_->submit(std::move(task)).share();
  }
  return ready(execute(req, key));
}

RoundResult RoundScheduler::run_one(const RoundRequest& req) {
  return submit(req).get();
}

std::vector<RoundResult> RoundScheduler::run_batch(
    const std::vector<RoundRequest>& reqs) {
  const std::size_t n = reqs.size();
  std::vector<RoundResult> results(n);
  if (n == 0) return results;
  LIBERATE_COST_TICK(kProbes, n);

  // Resolve the whole wave up front: fingerprint every request once, answer
  // cache hits immediately, and coalesce in-batch duplicates onto a single
  // execution (mirroring submit()'s in-flight coalescing — only done when
  // memoization is on, so cache-off counters stay comparable).
  std::vector<Fingerprint> keys(n);
  std::vector<std::size_t> work;  // indices that actually replay
  work.reserve(n);
  std::unordered_map<Fingerprint, std::size_t, Fingerprint::Hasher> leader;
  std::vector<std::pair<std::size_t, std::size_t>> dups;  // (copy-to, from)
  for (std::size_t i = 0; i < n; ++i) {
    keys[i] = round_fingerprint(spec_, reqs[i]);
    if (options_.cache_capacity > 0) {
      if (auto cached = cache_.get(keys[i])) {
        from_cache_.fetch_add(1);
        LIBERATE_COUNTER_ADD("core.rounds_from_cache", 1);
        cached->from_cache = true;
        results[i] = std::move(*cached);
        continue;
      }
      auto [it, inserted] = leader.try_emplace(keys[i], i);
      if (!inserted) {
        from_cache_.fetch_add(1);
        LIBERATE_COUNTER_ADD("core.rounds_coalesced", 1);
        dups.emplace_back(i, it->second);
        continue;
      }
    }
    work.push_back(i);
  }

  if (pool_ && work.size() > 1) {
    // Wave execution: one pool task per worker, each claiming round indices
    // from a shared cursor (work stealing — a worker that lands cheap cache
    // rebuilds drains more of the wave instead of idling at a barrier).
    // Results land in their submission slot, so output order is unaffected
    // by which worker ran what.
    auto cursor = std::make_shared<std::atomic<std::size_t>>(0);
    const std::size_t tasks = std::min(pool_->worker_count(), work.size());
    std::vector<std::future<void>> waves;
    waves.reserve(tasks);
    for (std::size_t t = 0; t < tasks; ++t) {
      // Context capture happens here, on the submitting thread: a chunk
      // executed by a stealing worker nests its round spans under the
      // submitting phase span, never under whatever unrelated span is open
      // on that worker (and never orphaned, as unpropagated tasks were).
      waves.push_back(pool_->submit(
          LIBERATE_OBS_PROPAGATE([this, &reqs, &keys, &work, &results,
                                  cursor]() {
            for (;;) {
              const std::size_t w = cursor->fetch_add(1);
              if (w >= work.size()) return;
              const std::size_t i = work[w];
              results[i] = execute(reqs[i], keys[i]);
            }
          })));
    }
    for (auto& f : waves) f.get();
  } else {
    for (std::size_t i : work) results[i] = execute(reqs[i], keys[i]);
  }

  for (const auto& [to, from] : dups) results[to] = results[from];
  return results;
}

}  // namespace liberate::core
