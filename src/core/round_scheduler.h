// round_scheduler.h — parallel replay-round scheduler with probe memoization.
//
// The paper's costs (§6, Table 2) are dominated by replay rounds: blinding
// search, prepend probing and the 26-technique evaluation each run dozens to
// hundreds of *independent* simulated rounds. The scheduler fans those
// rounds out over a fixed worker pool. Every round executes inside a fully
// isolated simulation world — its own EventLoop, network, endpoints and
// middlebox, built fresh from a WorldSpec — so no state leaks between
// rounds and results are identical regardless of worker count or
// interleaving.
//
// Round identity is content-defined: round_id = fingerprint(world spec,
// request), covering the trace bytes, the mutation (technique + context +
// port/TTL/pause overrides), the classifier profile (the environment name
// is the profile: it selects the rule set and middlebox configuration) and
// the environment seed/warm-up. The per-round RNG is derived
// deterministically from (seed, round_id), which makes two things true at
// once: (a) scheduling order cannot change any outcome, and (b) a repeated
// probe IS the same round, so memoizing its result is exact — the
// ProbeCache can answer recursive-blinding re-probes and evaluation re-runs
// after re-characterization without ever replaying twice.
#pragma once

#include <atomic>
#include <cstdint>
#include <future>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/replay.h"
#include "netsim/faulty.h"
#include "util/digest.h"
#include "util/lru_cache.h"
#include "util/thread_pool.h"

namespace liberate::core {

/// Everything needed to (re)build one isolated simulation world.
struct WorldSpec {
  /// Environment/classifier profile name for dpi::make_environment().
  std::string environment = "testbed";
  /// Master seed; every round derives its own RNG stream from this and the
  /// round fingerprint.
  std::uint64_t seed = 1;
  /// Virtual warm-up before the round starts (diurnal-load models — e.g.
  /// the GFC's load-dependent eviction — care what time of day it is).
  double warmup_hours = 0;
  /// Fault injection on the client side of the path (all-off by default).
  /// When any fault is enabled, a netsim::FaultyLink seeded from (seed,
  /// round fingerprint) is inserted in front of the environment, so the
  /// whole analysis pipeline can be exercised over hostile links — still
  /// byte-identical across worker counts.
  netsim::FaultPolicy faults{};
};

/// One replay round: a (possibly mutated) trace plus the replay knobs of
/// ReplayOptions, with the technique carried by name so the request is a
/// plain value that can cross threads and be fingerprinted.
struct RoundRequest {
  trace::ApplicationTrace trace;
  /// Registry name of the evasion technique to apply ("" = none).
  std::string technique;
  TechniqueContext context;
  std::uint16_t server_port_override = 0;
  std::uint32_t server_ip_override = 0;
  std::optional<std::uint8_t> match_packet_ttl;
  double pause_before_match_s = 0;
  double pause_after_match_s = 0;
  double timeout_s = 60;
};

struct RoundResult {
  ReplayOutcome outcome;
  /// The environment's differentiation oracle, evaluated in-world (the
  /// direct signal needs the live classifier state, which dies with the
  /// world).
  bool differentiated = false;
  /// Virtual seconds this round consumed (excluding warm-up).
  double virtual_seconds = 0;
  std::uint64_t bytes_offered = 0;
  bool from_cache = false;
};

/// Content fingerprint of a round: the memoization key and the round_id
/// from which the per-round RNG is derived.
Fingerprint round_fingerprint(const WorldSpec& spec, const RoundRequest& req);

/// Execute one round in a fresh isolated world. Deterministic: depends only
/// on (spec, req), never on threads, ordering or wall clock.
RoundResult run_isolated_round(const WorldSpec& spec, const RoundRequest& req);

/// Same, with the round fingerprint supplied by the caller. The scheduler
/// already fingerprints every request for memoization; passing the id
/// through avoids digesting the full trace a second time per round. `id`
/// MUST equal round_fingerprint(spec, req) — it seeds the round's RNG
/// streams and provenance scope.
RoundResult run_isolated_round(const WorldSpec& spec, const RoundRequest& req,
                               const Fingerprint& id);

/// Thread-safe LRU-bounded memoization of round results.
class ProbeCache {
 public:
  explicit ProbeCache(std::size_t capacity) : lru_(capacity) {}

  std::optional<RoundResult> get(const Fingerprint& key);
  void put(const Fingerprint& key, const RoundResult& result);

  std::uint64_t hits() const { return hits_.load(); }
  std::uint64_t misses() const { return misses_.load(); }
  std::size_t size() const;
  double hit_rate() const {
    std::uint64_t h = hits(), m = misses();
    return h + m == 0 ? 0.0 : static_cast<double>(h) / static_cast<double>(h + m);
  }

 private:
  mutable std::mutex mutex_;
  LruCache<Fingerprint, RoundResult, Fingerprint::Hasher> lru_;
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
};

struct SchedulerOptions {
  /// Worker threads. 0 = serial mode: every round runs inline on the
  /// calling thread (the reference the equivalence tests compare against).
  std::size_t workers = 0;
  /// Probe-cache capacity in rounds; 0 disables memoization.
  std::size_t cache_capacity = 8192;
};

/// Batched submission front-end: submit() returns a future per round,
/// run_batch() submits a wave and collects it in submission order.
/// Identical in-flight rounds are coalesced onto one execution.
class RoundScheduler {
 public:
  explicit RoundScheduler(WorldSpec spec, SchedulerOptions options = {});
  ~RoundScheduler();

  std::shared_future<RoundResult> submit(RoundRequest req);
  RoundResult run_one(const RoundRequest& req);
  std::vector<RoundResult> run_batch(const std::vector<RoundRequest>& reqs);

  const WorldSpec& world() const { return spec_; }
  std::size_t worker_count() const {
    return pool_ ? pool_->worker_count() : 0;
  }

  /// Rounds that actually replayed (cache misses + uncached).
  std::uint64_t rounds_executed() const { return executed_.load(); }
  /// Rounds answered from the memo cache (or coalesced onto an in-flight
  /// duplicate).
  std::uint64_t rounds_from_cache() const { return from_cache_.load(); }
  std::uint64_t rounds_submitted() const {
    return rounds_executed() + rounds_from_cache();
  }
  const ProbeCache& cache() const { return cache_; }

 private:
  RoundResult execute(const RoundRequest& req, const Fingerprint& key);

  WorldSpec spec_;
  SchedulerOptions options_;
  std::unique_ptr<ThreadPool> pool_;  // null in serial mode
  ProbeCache cache_;
  std::atomic<std::uint64_t> executed_{0};
  std::atomic<std::uint64_t> from_cache_{0};
  // In-flight duplicate coalescing: fingerprint -> the future all duplicate
  // submissions share until the result lands in the cache.
  std::mutex inflight_mutex_;
  std::unordered_map<Fingerprint, std::shared_future<RoundResult>,
                     Fingerprint::Hasher>
      inflight_;
};

}  // namespace liberate::core
