#include "deploy/delta.h"

namespace liberate::deploy {

const char* shard_counter_name(ShardCounter c) {
  switch (c) {
    case ShardCounter::kFlows:
      return "flows";
    case ShardCounter::kDifferentiated:
      return "differentiated";
    case ShardCounter::kBlocked:
      return "blocked";
    case ShardCounter::kIncomplete:
      return "incomplete";
    case ShardCounter::kLatencyUsSum:
      return "latency_us_sum";
    case ShardCounter::kLatencySamples:
      return "latency_samples";
    case ShardCounter::kFaultsInjected:
      return "faults_injected";
    case ShardCounter::kFlowsEvicted:
      return "flows_evicted";
    case ShardCounter::kPacketsInjected:
      return "packets_injected";
    case ShardCounter::kPacketsRewritten:
      return "packets_rewritten";
    case ShardCounter::kCount:
      break;
  }
  return "?";
}

FleetDelta DeltaPublisher::publish(std::uint32_t shard, std::uint32_t wave,
                                   const ShardCounters& now) {
  FleetDelta d;
  d.shard = shard;
  d.wave = wave;
  for (std::size_t i = 0; i < kShardCounterCount; ++i) {
    if (now.v[i] != last_.v[i]) {
      d.changed.emplace_back(static_cast<std::uint8_t>(i), now.v[i]);
    }
  }
  last_ = now;
  return d;
}

WaveStats wave_stats_between(const ShardCounters& start,
                             const ShardCounters& end) {
  WaveStats s;
  s.flows = static_cast<std::size_t>(end[ShardCounter::kFlows] -
                                     start[ShardCounter::kFlows]);
  s.differentiated =
      static_cast<std::size_t>(end[ShardCounter::kDifferentiated] -
                               start[ShardCounter::kDifferentiated]);
  s.blocked = static_cast<std::size_t>(end[ShardCounter::kBlocked] -
                                       start[ShardCounter::kBlocked]);
  s.incomplete = static_cast<std::size_t>(end[ShardCounter::kIncomplete] -
                                          start[ShardCounter::kIncomplete]);
  s.latency_us_sum =
      end[ShardCounter::kLatencyUsSum] - start[ShardCounter::kLatencyUsSum];
  s.latency_samples =
      static_cast<std::size_t>(end[ShardCounter::kLatencySamples] -
                               start[ShardCounter::kLatencySamples]);
  return s;
}

bool DeltaMerger::apply(const FleetDelta& delta, WaveStats* out) {
  if (delta.shard >= shards_) return false;
  ShardCounters& cur = cumulative_[delta.shard];
  // Validate before mutating: ascending slot order, known slots, monotone
  // cumulative values.
  int last_slot = -1;
  for (const auto& [slot, value] : delta.changed) {
    if (slot >= kShardCounterCount) return false;
    if (static_cast<int>(slot) <= last_slot) return false;
    if (value < cur.v[slot]) return false;
    last_slot = static_cast<int>(slot);
  }
  wave_start_[delta.shard] = cur;
  for (const auto& [slot, value] : delta.changed) cur.v[slot] = value;
  ++deltas_applied_;
  entries_shipped_ += delta.changed.size();
  if (out != nullptr) {
    *out = wave_stats_between(wave_start_[delta.shard], cur);
  }
  return true;
}

}  // namespace liberate::deploy
