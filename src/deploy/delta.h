// delta.h — snapshot-delta merging for fleet wave reports.
//
// The control plane used to ship every shard's full WaveStats to the merge
// point every wave. At fleet scale that is the wrong shape twice over: the
// payload grows with the counter surface (not with what changed), and the
// merge loop re-reads fields that are identical wave after wave (a healthy
// evading fleet changes `flows` and `latency` every wave, and nothing
// else). Snapshot deltas invert it:
//
//   * each shard keeps one cumulative ShardCounters block, bumped inside
//     its own world (no cross-shard synchronization, ever);
//   * at the wave boundary a DeltaPublisher diffs the block against the
//     shard's previous publish and emits only the slots that moved — a
//     sparse, ordered (slot, cumulative value) list;
//   * the control thread's DeltaMerger folds deltas back into per-shard
//     cumulative state and reconstructs the per-wave WaveStats exactly, so
//     the merged FleetReport is byte-identical to a full-snapshot merge at
//     any worker count and either match backend.
//
// Cumulative counters (not per-wave values) make the stream self-healing
// and verifiable: values must be monotone per slot, and a delta that skips
// a wave still reconstructs correct totals. The merger validates both.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "deploy/drift.h"

namespace liberate::deploy {

/// Counter slots a shard publishes. Fixed and append-only: the slot byte is
/// the wire format of a delta entry.
enum class ShardCounter : std::uint8_t {
  kFlows = 0,
  kDifferentiated,
  kBlocked,
  kIncomplete,
  kLatencyUsSum,
  kLatencySamples,
  kFaultsInjected,
  kFlowsEvicted,
  kPacketsInjected,
  kPacketsRewritten,
  kCount,
};
constexpr std::size_t kShardCounterCount =
    static_cast<std::size_t>(ShardCounter::kCount);

const char* shard_counter_name(ShardCounter c);

/// Cumulative (monotone, per-shard) counter block.
struct ShardCounters {
  std::array<std::uint64_t, kShardCounterCount> v{};

  std::uint64_t& operator[](ShardCounter c) {
    return v[static_cast<std::size_t>(c)];
  }
  std::uint64_t operator[](ShardCounter c) const {
    return v[static_cast<std::size_t>(c)];
  }
  bool operator==(const ShardCounters& o) const { return v == o.v; }
};

/// One shard's wave-boundary publish: only the slots whose cumulative value
/// moved since the shard's previous publish, in ascending slot order.
struct FleetDelta {
  std::uint32_t shard = 0;
  std::uint32_t wave = 0;
  std::vector<std::pair<std::uint8_t, std::uint64_t>> changed;
};

/// Per-shard diff state. One publisher per shard; publish() compares the
/// current cumulative block against the last published one and emits the
/// sparse difference.
class DeltaPublisher {
 public:
  FleetDelta publish(std::uint32_t shard, std::uint32_t wave,
                     const ShardCounters& now);

 private:
  ShardCounters last_;
};

/// Folds the delta stream back into exact per-shard / merged wave stats.
class DeltaMerger {
 public:
  explicit DeltaMerger(std::size_t shards) : shards_(shards) {
    cumulative_.resize(shards);
    wave_start_.resize(shards);
  }

  /// Apply one shard's wave delta. Returns the shard's reconstructed
  /// WaveStats for that wave (cumulative now minus cumulative at the
  /// shard's previous publish). Malformed deltas — unknown shard, slot out
  /// of range, unordered slots, non-monotone value — are rejected: apply
  /// returns false and changes nothing.
  bool apply(const FleetDelta& delta, WaveStats* out);

  /// Cumulative value of one slot as of the latest applied delta.
  std::uint64_t total(std::size_t shard, ShardCounter c) const {
    return cumulative_[shard][c];
  }
  /// This wave's movement of one slot (cumulative now minus at the previous
  /// publish) — the per-wave fault/eviction deltas telemetry samples.
  std::uint64_t wave_delta(std::size_t shard, ShardCounter c) const {
    return cumulative_[shard][c] - wave_start_[shard][c];
  }
  std::size_t shards() const { return shards_; }
  std::uint64_t deltas_applied() const { return deltas_applied_; }
  /// Counter entries actually shipped vs. the full-snapshot equivalent —
  /// the compression the sparse encoding bought.
  std::uint64_t entries_shipped() const { return entries_shipped_; }
  std::uint64_t entries_full_equivalent() const {
    return deltas_applied_ * kShardCounterCount;
  }

 private:
  std::size_t shards_;
  std::vector<ShardCounters> cumulative_;
  /// Snapshot of `cumulative_` at each shard's previous publish.
  std::vector<ShardCounters> wave_start_;
  std::uint64_t deltas_applied_ = 0;
  std::uint64_t entries_shipped_ = 0;
};

/// WaveStats carried by a counter-block difference (end minus start).
WaveStats wave_stats_between(const ShardCounters& start,
                             const ShardCounters& end);

}  // namespace liberate::deploy
