#include "deploy/drift.h"

#include <algorithm>

#include "obs/obs.h"

namespace liberate::deploy {

const char* drift_kind_name(DriftKind kind) {
  switch (kind) {
    case DriftKind::kDifferentiationReappeared:
      return "differentiation-reappeared";
    case DriftKind::kBlockingSurge:
      return "blocking-surge";
    case DriftKind::kCompletionCollapse:
      return "completion-collapse";
  }
  return "unknown";
}

std::optional<DriftKind> DriftMonitor::classify(const WaveStats& wave) const {
  // Ordered by evidence strength: a wave that both blocks and fails to
  // complete is reported as the more specific blocking surge.
  if (wave.differentiated_rate() >
      baseline_.differentiated_rate() + thresholds_.differentiated_slack) {
    return DriftKind::kDifferentiationReappeared;
  }
  if (wave.blocked_rate() >
      baseline_.blocked_rate() + thresholds_.blocked_slack) {
    return DriftKind::kBlockingSurge;
  }
  if (wave.incomplete_rate() >
      baseline_.incomplete_rate() + thresholds_.incomplete_slack) {
    return DriftKind::kCompletionCollapse;
  }
  return std::nullopt;
}

std::optional<DriftSignal> DriftMonitor::observe(const WaveStats& wave,
                                                 bool corroborated) {
  ++waves_observed_;
  if (wave.flows < thresholds_.min_flows) return std::nullopt;

  if (!have_baseline_) {
    baseline_ = wave;
    have_baseline_ = true;
    return std::nullopt;
  }

  auto kind = classify(wave);
  if (!kind) {
    // Hysteresis down: suspicion survives isolated clean waves.
    if (++clean_streak_ >= thresholds_.waves_to_clear) suspect_streak_ = 0;
    return std::nullopt;
  }

  clean_streak_ = 0;
  ++suspect_streak_;
  LIBERATE_COUNTER_ADD("deploy.drift.suspect_waves", 1);
  // A corroborated breach (rate suspect AND the telemetry hub's anomaly
  // detector flagged this wave) needs fewer consecutive suspect waves; the
  // bonus never pushes the requirement below one real rate breach.
  const int need =
      corroborated
          ? std::max(1, thresholds_.waves_to_confirm -
                            thresholds_.corroboration_bonus)
          : thresholds_.waves_to_confirm;
  if (suspect_streak_ < need) return std::nullopt;

  DriftSignal signal;
  signal.kind = *kind;
  signal.corroborated = corroborated;
  signal.wave = waves_observed_ - 1;
  switch (*kind) {
    case DriftKind::kDifferentiationReappeared:
      signal.rate = wave.differentiated_rate();
      signal.baseline = baseline_.differentiated_rate();
      break;
    case DriftKind::kBlockingSurge:
      signal.rate = wave.blocked_rate();
      signal.baseline = baseline_.blocked_rate();
      break;
    case DriftKind::kCompletionCollapse:
      signal.rate = wave.incomplete_rate();
      signal.baseline = baseline_.incomplete_rate();
      break;
  }
  signal.suspect_waves = suspect_streak_;
  suspect_streak_ = 0;  // one signal per confirmation
  LIBERATE_COUNTER_ADD("deploy.drift.signals", 1);
  return signal;
}

}  // namespace liberate::deploy
