// drift.h — detecting classifier drift on deployed fleets.
//
// A deployment is only as good as its last characterization: classifiers
// get updated, rules move to other fields, middleboxes learn (related work:
// DPI deployments are heterogeneous and adaptive). The DriftMonitor samples
// each wave's observed treatment — differentiation rate, blocking rate,
// completion rate — against the baseline recorded at deploy time and raises
// a typed DriftSignal when treatment degrades. Hysteresis (consecutive
// suspect waves to confirm, consecutive clean waves to clear) keeps
// transient chaos — a FaultyLink loss burst, one unlucky wave — from
// triggering a false re-analysis, which costs real probe rounds.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>

namespace liberate::deploy {

/// Per-wave observed treatment, merged across shards.
struct WaveStats {
  std::size_t flows = 0;
  std::size_t differentiated = 0;  // policy observed on the flow
  std::size_t blocked = 0;         // RST/403 terminated
  std::size_t incomplete = 0;      // response not fully delivered
  /// Flow completion latency (first SYN to full response), summed over the
  /// flows that completed cleanly — sim-clock microseconds, tracked
  /// unconditionally so latency-derived telemetry is identical at every
  /// obs level.
  std::uint64_t latency_us_sum = 0;
  std::size_t latency_samples = 0;

  double differentiated_rate() const {
    return flows == 0 ? 0.0
                      : static_cast<double>(differentiated) /
                            static_cast<double>(flows);
  }
  double blocked_rate() const {
    return flows == 0
               ? 0.0
               : static_cast<double>(blocked) / static_cast<double>(flows);
  }
  double incomplete_rate() const {
    return flows == 0
               ? 0.0
               : static_cast<double>(incomplete) / static_cast<double>(flows);
  }
  double mean_latency_us() const {
    return latency_samples == 0 ? 0.0
                                : static_cast<double>(latency_us_sum) /
                                      static_cast<double>(latency_samples);
  }

  WaveStats& operator+=(const WaveStats& o) {
    flows += o.flows;
    differentiated += o.differentiated;
    blocked += o.blocked;
    incomplete += o.incomplete;
    latency_us_sum += o.latency_us_sum;
    latency_samples += o.latency_samples;
    return *this;
  }
};

enum class DriftKind {
  /// Differentiation reappeared on deployed flows: the classifier matches
  /// again despite the evasion — the strongest drift evidence.
  kDifferentiationReappeared,
  /// Blocking verdicts surged past baseline (RST/403 treatments).
  kBlockingSurge,
  /// Flows stopped completing (without explicit blocking) — e.g. a
  /// middlebox silently dropping the mutated packets.
  kCompletionCollapse,
};

const char* drift_kind_name(DriftKind kind);

struct DriftThresholds {
  /// How far above the deploy-time baseline each rate must sit before a
  /// wave counts as suspect. Slack absorbs the noise floor: under an
  /// adversarial FaultyLink some flows lose their mutated packets and get
  /// classified even while the technique works.
  double differentiated_slack = 0.20;
  double blocked_slack = 0.25;
  double incomplete_slack = 0.40;
  /// Consecutive suspect waves before a signal fires (hysteresis up).
  int waves_to_confirm = 2;
  /// How many confirmation waves an anomaly corroboration is worth: when
  /// the telemetry hub's detector (obs/anomaly.h) independently flags the
  /// wave, the threshold drops to max(1, waves_to_confirm - bonus). A
  /// corroborated breach confirms faster; an anomaly without a rate breach
  /// never counts at all (classify() must still name a DriftKind).
  int corroboration_bonus = 1;
  /// Consecutive clean waves before accumulated suspicion resets
  /// (hysteresis down: one clean wave amid a real drift must not restart
  /// the confirmation count).
  int waves_to_clear = 2;
  /// Waves smaller than this are ignored entirely (no statistical power).
  std::size_t min_flows = 8;
};

struct DriftSignal {
  DriftKind kind = DriftKind::kDifferentiationReappeared;
  std::size_t wave = 0;   // wave index that confirmed the drift
  double rate = 0;        // offending rate in that wave
  double baseline = 0;    // deploy-time baseline of the same rate
  int suspect_waves = 0;  // consecutive suspect waves at confirmation
  /// True when an anomaly corroboration shortened the confirmation.
  bool corroborated = false;
};

/// Feed one merged WaveStats per wave; fires at most one signal per
/// confirmation (then resets its streak — the control plane re-baselines
/// via rebaseline() after re-deploying).
class DriftMonitor {
 public:
  explicit DriftMonitor(DriftThresholds thresholds = {})
      : thresholds_(thresholds) {}

  /// The first adequately-sized wave after construction (or rebaseline())
  /// becomes the baseline; subsequent waves are judged against it.
  /// `corroborated` marks waves the telemetry hub's anomaly detector
  /// independently flagged: a corroborated rate breach needs fewer
  /// consecutive suspect waves to confirm (corroboration_bonus), but
  /// corroboration without a rate breach does nothing — the hub can speed
  /// up confirmation, never cause one.
  std::optional<DriftSignal> observe(const WaveStats& wave,
                                     bool corroborated = false);

  /// Forget the baseline (after re-deployment the treatment profile of the
  /// new technique becomes the new normal).
  void rebaseline() {
    have_baseline_ = false;
    suspect_streak_ = 0;
    clean_streak_ = 0;
  }

  bool has_baseline() const { return have_baseline_; }
  const WaveStats& baseline() const { return baseline_; }
  int suspect_streak() const { return suspect_streak_; }
  std::size_t waves_observed() const { return waves_observed_; }

 private:
  std::optional<DriftKind> classify(const WaveStats& wave) const;

  DriftThresholds thresholds_;
  WaveStats baseline_;
  bool have_baseline_ = false;
  int suspect_streak_ = 0;
  int clean_streak_ = 0;
  std::size_t waves_observed_ = 0;
};

}  // namespace liberate::deploy
