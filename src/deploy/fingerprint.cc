#include "deploy/fingerprint.h"

#include <algorithm>
#include <cstdio>
#include <limits>

#include "core/evasion/registry.h"
#include "util/json.h"
#include "util/json_parse.h"

namespace liberate::deploy {

namespace {

std::string to_hex(BytesView data) {
  static const char* kDigits = "0123456789abcdef";
  std::string out;
  out.reserve(data.size() * 2);
  for (std::uint8_t b : data) {
    out += kDigits[b >> 4];
    out += kDigits[b & 0xF];
  }
  return out;
}

std::optional<Bytes> from_hex(std::string_view hex) {
  if (hex.size() % 2 != 0) return std::nullopt;
  auto nibble = [](char c) -> int {
    if (c >= '0' && c <= '9') return c - '0';
    if (c >= 'a' && c <= 'f') return c - 'a' + 10;
    if (c >= 'A' && c <= 'F') return c - 'A' + 10;
    return -1;
  };
  Bytes out;
  out.reserve(hex.size() / 2);
  for (std::size_t i = 0; i < hex.size(); i += 2) {
    int hi = nibble(hex[i]), lo = nibble(hex[i + 1]);
    if (hi < 0 || lo < 0) return std::nullopt;
    out.push_back(static_cast<std::uint8_t>((hi << 4) | lo));
  }
  return out;
}

std::string fingerprint_hex(const Fingerprint& f) {
  char buf[36];
  std::snprintf(buf, sizeof(buf), "%016llx:%016llx",
                static_cast<unsigned long long>(f.lo),
                static_cast<unsigned long long>(f.hi));
  return buf;
}

std::optional<Fingerprint> fingerprint_from_hex(std::string_view s) {
  if (s.size() != 33 || s[16] != ':') return std::nullopt;
  auto parse_u64 = [](std::string_view h) -> std::optional<std::uint64_t> {
    std::uint64_t v = 0;
    for (char c : h) {
      v <<= 4;
      if (c >= '0' && c <= '9') {
        v |= static_cast<std::uint64_t>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        v |= static_cast<std::uint64_t>(c - 'a' + 10);
      } else {
        return std::nullopt;
      }
    }
    return v;
  };
  auto lo = parse_u64(s.substr(0, 16));
  auto hi = parse_u64(s.substr(17, 16));
  if (!lo || !hi) return std::nullopt;
  return Fingerprint{*lo, *hi};
}

/// Strict accessors: nullopt/default on shape mismatch so a corrupted cache
/// file degrades to a miss, never to garbage characterizations.
std::optional<std::string> get_string(const JsonValue& v,
                                      std::string_view key) {
  const JsonValue* m = v.find(key);
  if (!m || !m->is_string()) return std::nullopt;
  return m->string;
}

std::optional<double> get_number(const JsonValue& v, std::string_view key) {
  const JsonValue* m = v.find(key);
  if (!m || !m->is_number()) return std::nullopt;
  return m->number;
}

bool get_bool(const JsonValue& v, std::string_view key) {
  const JsonValue* m = v.find(key);
  return m && m->is_bool() && m->boolean;
}

}  // namespace

core::TechniqueContext CachedCharacterization::context() const {
  core::TechniqueContext ctx;
  for (const auto& f : fields) ctx.matching_snippets.push_back(f.content);
  ctx.decoy_payload = core::decoy_request_payload();
  if (middlebox_hops) {
    ctx.middlebox_ttl = static_cast<std::uint8_t>(*middlebox_hops);
  }
  return ctx;
}

Fingerprint characterization_digest(
    const core::CharacterizationReport& report) {
  Digest d;
  d.update_u64(report.fields.size());
  for (const auto& f : report.fields) {
    d.update_u64(f.message_index);
    d.update_u64(f.offset);
    d.update_u64(f.length);
    d.update_sized(BytesView(f.content));
  }
  d.update_u8(report.position_sensitive ? 1 : 0);
  d.update_u8(report.inspects_all_packets ? 1 : 0);
  d.update_u8(report.port_sensitive ? 1 : 0);
  d.update_u8(report.packet_limit.has_value() ? 1 : 0);
  d.update_u64(report.packet_limit.value_or(0));
  d.update_u8(report.middlebox_hops.has_value() ? 1 : 0);
  d.update_u64(static_cast<std::uint64_t>(report.middlebox_hops.value_or(0)));
  return d.finish();
}

CachedCharacterization make_cached_characterization(
    const std::string& environment, const std::string& app,
    const core::SessionReport& report) {
  CachedCharacterization entry;
  entry.environment = environment;
  entry.app = app;
  entry.digest = characterization_digest(report.characterization);
  entry.fields = report.characterization.fields;
  entry.position_sensitive = report.characterization.position_sensitive;
  entry.inspects_all_packets = report.characterization.inspects_all_packets;
  entry.port_sensitive = report.characterization.port_sensitive;
  entry.packet_limit = report.characterization.packet_limit;
  entry.middlebox_hops = report.characterization.middlebox_hops;

  for (const auto& o : report.evaluation.outcomes) {
    if (!o.evaded) continue;
    entry.ranking.push_back(RankedTechnique{o.technique,
                                            o.overhead.extra_packets,
                                            o.overhead.extra_bytes,
                                            o.overhead.extra_seconds});
  }
  // Stable sort keeps suite order among equals, so the ranking (and every
  // downstream fallback walk) is deterministic.
  std::stable_sort(entry.ranking.begin(), entry.ranking.end(),
                   [](const RankedTechnique& a, const RankedTechnique& b) {
                     core::Overhead oa{a.extra_packets, a.extra_bytes,
                                       a.extra_seconds, ""};
                     core::Overhead ob{b.extra_packets, b.extra_bytes,
                                       b.extra_seconds, ""};
                     return core::cheaper(oa, ob);
                   });
  // The selected technique won the original evaluation; pin it to the front
  // even if a cost tie would sort another first.
  if (report.selected_technique) {
    auto it = std::find_if(entry.ranking.begin(), entry.ranking.end(),
                           [&](const RankedTechnique& r) {
                             return r.name == *report.selected_technique;
                           });
    if (it != entry.ranking.end()) {
      std::rotate(entry.ranking.begin(), it, it + 1);
    }
  }
  return entry;
}

const CachedCharacterization* ClassifierFingerprintCache::lookup(
    const std::string& environment, const std::string& app) const {
  auto it = entries_.find({environment, app});
  return it == entries_.end() ? nullptr : &it->second;
}

void ClassifierFingerprintCache::store(CachedCharacterization entry) {
  entries_[{entry.environment, entry.app}] = std::move(entry);
}

std::pair<const CachedCharacterization*, std::size_t>
ClassifierFingerprintCache::nearest_by_ambiguity(
    const fingerprint::AmbiguityDigest& probed, const std::string& app,
    std::size_t max_distance) const {
  const CachedCharacterization* best = nullptr;
  std::size_t best_distance = std::numeric_limits<std::size_t>::max();
  for (const auto& [key, e] : entries_) {
    if (e.app != app || !e.ambiguity) continue;
    const std::size_t d = fingerprint::ambiguity_distance(probed, *e.ambiguity);
    // Strict < keeps the first entry in deterministic map order on ties.
    if (d <= max_distance && d < best_distance) {
      best = &e;
      best_distance = d;
    }
  }
  return {best, best_distance};
}

std::string ClassifierFingerprintCache::to_json() const {
  JsonWriter w;
  w.begin_object();
  w.key("version").value(kSchemaVersion);
  w.key("digest_format").value(fingerprint::AmbiguityDigest::kFormat);
  w.key("entries").begin_array();
  for (const auto& [key, e] : entries_) {
    w.begin_object();
    w.key("environment").value(e.environment);
    w.key("app").value(e.app);
    w.key("digest").value(fingerprint_hex(e.digest));
    w.key("position_sensitive").value(e.position_sensitive);
    w.key("inspects_all_packets").value(e.inspects_all_packets);
    w.key("port_sensitive").value(e.port_sensitive);
    if (e.packet_limit) {
      w.key("packet_limit").value(static_cast<std::uint64_t>(*e.packet_limit));
    } else {
      w.key("packet_limit").null();
    }
    if (e.middlebox_hops) {
      w.key("middlebox_hops").value(*e.middlebox_hops);
    } else {
      w.key("middlebox_hops").null();
    }
    w.key("fields").begin_array();
    for (const auto& f : e.fields) {
      w.begin_object();
      w.key("message").value(static_cast<std::uint64_t>(f.message_index));
      w.key("offset").value(static_cast<std::uint64_t>(f.offset));
      w.key("length").value(static_cast<std::uint64_t>(f.length));
      w.key("content_hex").value(to_hex(BytesView(f.content)));
      w.end_object();
    }
    w.end_array();
    w.key("ranking").begin_array();
    for (const auto& r : e.ranking) {
      w.begin_object();
      w.key("technique").value(r.name);
      w.key("extra_packets").value(static_cast<std::uint64_t>(r.extra_packets));
      w.key("extra_bytes").value(static_cast<std::uint64_t>(r.extra_bytes));
      w.key("extra_seconds").value(r.extra_seconds);
      w.end_object();
    }
    w.end_array();
    if (e.ambiguity) {
      w.key("ambiguity").raw_value(e.ambiguity->to_json());
    } else {
      w.key("ambiguity").null();
    }
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.take();
}

std::optional<ClassifierFingerprintCache> ClassifierFingerprintCache::from_json(
    std::string_view text) {
  auto doc = parse_json(text);
  if (!doc || !doc->is_object()) return std::nullopt;
  // Schema gate: v1 files predate ambiguity digests and must invalidate
  // cleanly (a cold start), as must files probed with a different digest
  // format revision.
  const JsonValue* version = doc->find("version");
  if (!version || !version->is_number() ||
      static_cast<int>(version->number) != kSchemaVersion) {
    return std::nullopt;
  }
  auto digest_format = get_string(*doc, "digest_format");
  if (!digest_format ||
      *digest_format != fingerprint::AmbiguityDigest::kFormat) {
    return std::nullopt;
  }
  const JsonValue* entries = doc->find("entries");
  if (!entries || !entries->is_array()) return std::nullopt;

  ClassifierFingerprintCache cache;
  for (const JsonValue& e : entries->array) {
    if (!e.is_object()) return std::nullopt;
    CachedCharacterization entry;
    auto environment = get_string(e, "environment");
    auto app = get_string(e, "app");
    auto digest_hex = get_string(e, "digest");
    if (!environment || !app || !digest_hex) return std::nullopt;
    auto digest = fingerprint_from_hex(*digest_hex);
    if (!digest) return std::nullopt;
    entry.environment = *environment;
    entry.app = *app;
    entry.digest = *digest;
    entry.position_sensitive = get_bool(e, "position_sensitive");
    entry.inspects_all_packets = get_bool(e, "inspects_all_packets");
    entry.port_sensitive = get_bool(e, "port_sensitive");
    if (auto pl = get_number(e, "packet_limit")) {
      entry.packet_limit = static_cast<std::size_t>(*pl);
    }
    if (auto hops = get_number(e, "middlebox_hops")) {
      entry.middlebox_hops = static_cast<int>(*hops);
    }
    const JsonValue* fields = e.find("fields");
    if (!fields || !fields->is_array()) return std::nullopt;
    for (const JsonValue& fv : fields->array) {
      core::MatchingField field;
      auto msg = get_number(fv, "message");
      auto off = get_number(fv, "offset");
      auto len = get_number(fv, "length");
      auto hex = get_string(fv, "content_hex");
      if (!msg || !off || !len || !hex) return std::nullopt;
      auto content = from_hex(*hex);
      if (!content) return std::nullopt;
      field.message_index = static_cast<std::size_t>(*msg);
      field.offset = static_cast<std::size_t>(*off);
      field.length = static_cast<std::size_t>(*len);
      field.content = std::move(*content);
      entry.fields.push_back(std::move(field));
    }
    const JsonValue* ranking = e.find("ranking");
    if (!ranking || !ranking->is_array()) return std::nullopt;
    for (const JsonValue& rv : ranking->array) {
      RankedTechnique r;
      auto name = get_string(rv, "technique");
      if (!name) return std::nullopt;
      r.name = *name;
      r.extra_packets =
          static_cast<std::size_t>(get_number(rv, "extra_packets").value_or(0));
      r.extra_bytes =
          static_cast<std::size_t>(get_number(rv, "extra_bytes").value_or(0));
      r.extra_seconds = get_number(rv, "extra_seconds").value_or(0);
      entry.ranking.push_back(std::move(r));
    }
    if (const JsonValue* amb = e.find("ambiguity");
        amb != nullptr && !amb->is_null()) {
      auto digest = fingerprint::AmbiguityDigest::from_json_value(*amb);
      if (!digest) return std::nullopt;
      entry.ambiguity = std::move(*digest);
    }
    cache.store(std::move(entry));
  }
  return cache;
}

bool ClassifierFingerprintCache::save(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (!f) return false;
  const std::string json = to_json();
  const bool ok = std::fwrite(json.data(), 1, json.size(), f) == json.size();
  return std::fclose(f) == 0 && ok;
}

std::optional<ClassifierFingerprintCache> ClassifierFingerprintCache::load(
    const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (!f) return std::nullopt;
  std::string text;
  char buf[4096];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) text.append(buf, n);
  std::fclose(f);
  return from_json(text);
}

}  // namespace liberate::deploy
