// fingerprint.h — classifier fingerprints and the re-characterization cache.
//
// A deployment's knowledge about a classifier is its characterization: the
// matching fields found by blinding, the behavioural quirks probed in §5.1,
// and the technique ranking from evasion evaluation. That knowledge is
// content-addressed by a 128-bit digest — the *classifier fingerprint* — so
// the control plane can persist it across sessions and, on drift, first
// re-verify the cached rules with a handful of targeted blinding probes
// instead of re-paying the full §5.3 analysis cost (ROADMAP: re-running
// characterization must be O(verification), not O(analysis)).
#pragma once

#include <map>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "core/liberate.h"
#include "fingerprint/ambiguity.h"
#include "util/digest.h"

namespace liberate::deploy {

/// One evaluation-phase survivor: a technique that evaded, with the §6 cost
/// numbers the ranking orders by.
struct RankedTechnique {
  std::string name;
  std::size_t extra_packets = 0;
  std::size_t extra_bytes = 0;
  double extra_seconds = 0;
};

/// Everything worth remembering about one (environment, application)
/// characterization: the fingerprint, the fields to re-verify, and the
/// fallback chain ordered cheapest-first.
struct CachedCharacterization {
  std::string environment;  // dpi profile name
  std::string app;          // trace app_name
  Fingerprint digest;       // characterization_digest() of the report

  std::vector<core::MatchingField> fields;
  bool position_sensitive = false;
  bool inspects_all_packets = false;
  bool port_sensitive = false;
  std::optional<std::size_t> packet_limit;
  std::optional<int> middlebox_hops;

  /// Techniques that evaded at characterization time, cheapest first
  /// (§4.4 "the most efficient, successful technique").
  std::vector<RankedTechnique> ranking;

  /// The classifier implementation's ambiguity fingerprint, when the probe
  /// engine ran against this environment (docs/fingerprinting.md). Lets the
  /// warm-deploy path fall back from an exact (environment, app) hit to the
  /// nearest-behaving known implementation.
  std::optional<fingerprint::AmbiguityDigest> ambiguity;

  /// The TechniqueContext a shim needs to deploy against this classifier.
  core::TechniqueContext context() const;
};

/// Content digest of a characterization report: the classifier rule set as
/// observed from outside (fields + quirks). Two classifiers that
/// characterize identically get the same fingerprint — and a cached entry
/// is exactly as reusable as this digest is stable.
Fingerprint characterization_digest(const core::CharacterizationReport& report);

/// Build a cache entry from a finished analysis (ranking = evaded outcomes
/// sorted by core::cheaper()).
CachedCharacterization make_cached_characterization(
    const std::string& environment, const std::string& app,
    const core::SessionReport& report);

/// Persistent map of (environment, app) -> CachedCharacterization with a
/// deterministic JSON representation (util/json.h writer, util/json_parse.h
/// reader). 64-bit digests and field bytes are hex strings: JSON numbers
/// are doubles and would corrupt them.
///
/// Schema v2: the top level carries a "digest_format" field naming the
/// ambiguity-digest revision entries were probed with. from_json rejects v1
/// files and format mismatches outright — a pre-ambiguity cache degrades to
/// a cold start instead of poisoning nearest-fingerprint matching.
class ClassifierFingerprintCache {
 public:
  static constexpr int kSchemaVersion = 2;

  const CachedCharacterization* lookup(const std::string& environment,
                                       const std::string& app) const;
  void store(CachedCharacterization entry);
  std::size_t size() const { return entries_.size(); }

  /// Nearest-behaving cached implementation for `app`: the entry (any
  /// environment) whose ambiguity digest is closest to `probed`, provided it
  /// is within `max_distance`. Entries without a digest never match. Ties
  /// break on the deterministic (environment, app) map order. Returns the
  /// entry and its distance, or {nullptr, SIZE_MAX}.
  std::pair<const CachedCharacterization*, std::size_t> nearest_by_ambiguity(
      const fingerprint::AmbiguityDigest& probed, const std::string& app,
      std::size_t max_distance) const;

  std::string to_json() const;
  static std::optional<ClassifierFingerprintCache> from_json(
      std::string_view text);

  bool save(const std::string& path) const;
  static std::optional<ClassifierFingerprintCache> load(
      const std::string& path);

 private:
  std::map<std::pair<std::string, std::string>, CachedCharacterization>
      entries_;
};

}  // namespace liberate::deploy
