#include "deploy/fleet.h"

#include <algorithm>
#include <future>
#include <map>

#include "deploy/flow_driver.h"

#include "dpi/profiles.h"
#include "obs/anomaly.h"
#include "obs/obs.h"
#if LIBERATE_OBS_LEVEL >= LIBERATE_OBS_LEVEL_METRICS
#include "obs/timeseries.h"
#endif
#include "stack/host.h"
#include "util/strings.h"
#include "util/thread_pool.h"

namespace liberate::deploy {

using netsim::Duration;
using netsim::seconds;
using netsim::TimePoint;
using stack::Host;
using stack::OsProfile;
using stack::TcpConnection;
using trace::ApplicationTrace;
using trace::Sender;

namespace {

constexpr std::uint32_t kClientIp = 0x0a000001;  // 10.0.0.1
constexpr std::uint32_t kServerIp = 0xc6336414;  // 198.51.100.20

// splitmix64 finalizer: decorrelates per-shard seeds derived from the fleet
// seed (same construction as the round scheduler's world seeds).
std::uint64_t mix(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

std::uint64_t shard_seed(std::uint64_t fleet_seed, std::size_t index,
                        std::uint64_t salt) {
  return mix(fleet_seed ^ mix(static_cast<std::uint64_t>(index + 1)) ^ salt);
}

/// Shard-affine admission: a flow's shard is a pure hash of its global flow
/// id, fixed at admission. The flow never migrates, so all of its per-flow
/// state (shim entry, classifier entry, verdict) lives in exactly one
/// shard's world — and the assignment is identical at any worker count.
std::size_t admit_shard(std::uint64_t fleet_seed, std::uint64_t global_flow,
                        std::size_t shards) {
  return static_cast<std::size_t>(mix(global_flow ^ mix(fleet_seed ^ 0xADF17ull)) %
                                  shards);
}

Bytes concat_payload(const ApplicationTrace& trace, Sender sender) {
  Bytes out;
  for (const auto& m : trace.messages) {
    if (m.sender != sender) continue;
    out.insert(out.end(), m.payload.begin(), m.payload.end());
  }
  return out;
}

}  // namespace

/// One persistent shard world: its own event loop, network, middlebox,
/// long-lived shim, and client/server hosts. Shards never share state, so
/// waves parallelize across the thread pool without synchronization.
struct FleetEngine::Shard {
  std::size_t index = 0;
  std::uint64_t seed = 0;
  std::unique_ptr<dpi::Environment> env;
  std::unique_ptr<core::EvasionShim> shim;
  std::unique_ptr<Host> client;
  std::unique_ptr<Host> server;
  /// Packet-level mode replaces the endpoint hosts with the crafted-packet
  /// driver (created lazily at the first run(), when the server port is
  /// known).
  std::unique_ptr<PacketFlowDriver> driver;
  netsim::FaultyLink* faulty = nullptr;
  /// Per-shard client-port base: shards are separate networks, but keeping
  /// tuples globally unique keeps the provenance ledger unambiguous.
  std::uint16_t port_base = 0;
  std::uint64_t flow_serial = 0;

  /// Cumulative (monotone) counter block this shard publishes at each wave
  /// boundary, and the diff state for sparse publishes. Only ever touched
  /// from the shard's wave (worker thread) — the control thread sees the
  /// published FleetDelta.
  ShardCounters counters;
  DeltaPublisher publisher;

  std::uint64_t faults_injected() const {
    if (faulty == nullptr) return 0;
    return faulty->dropped() + faulty->duplicated() + faulty->truncated() +
           faulty->corrupted() + faulty->reordered();
  }
};

FleetEngine::FleetEngine(FleetOptions options) : options_(std::move(options)) {
  if (options_.shards == 0) options_.shards = 1;
  probe_env_ = dpi::make_environment(
      options_.environment, shard_seed(options_.seed, 0, 0xB10Bull));
  lib_ = std::make_unique<core::Liberate>(*probe_env_, options_.seed);

  for (std::size_t i = 0; i < options_.shards; ++i) {
    auto shard = std::make_unique<Shard>();
    shard->index = i;
    shard->seed = shard_seed(options_.seed, i, 0x5A4Dull);
    shard->env = dpi::make_environment(options_.environment, shard->seed);
    if (options_.faults.any()) {
      shard->faulty = &shard->env->net.emplace_at<netsim::FaultyLink>(
          0, options_.faults, shard_seed(options_.seed, i, 0xFA017ull));
    }
    shard->shim = std::make_unique<core::EvasionShim>(
        shard->env->net.client_port(), nullptr, core::TechniqueContext{});
    shard->shim->set_max_flows(options_.max_flows_per_shim);
    if (options_.flow_mode == FlowMode::kFullStack) {
      shard->client = std::make_unique<Host>(*shard->shim, kClientIp,
                                             OsProfile::linux_profile());
      shard->server = std::make_unique<Host>(shard->env->net.server_port(),
                                             kServerIp, shard->env->server_os);
      shard->env->net.attach_client(shard->client.get());
      shard->env->net.attach_server(shard->server.get());
    }
    shard->port_base = static_cast<std::uint16_t>(30001 + i * 2048);
    shards_.push_back(std::move(shard));
  }
}

FleetEngine::~FleetEngine() = default;

void FleetEngine::swap_technique(const std::string& name,
                                 const CachedCharacterization& cached) {
  for (auto& shard : shards_) {
    shard->shim->set_context(cached.context());
    if (name.empty()) {
      shard->shim->clear_technique();
    } else {
      // One instance per shard: techniques are cheap, and sharing one object
      // across concurrently-running shard worlds would be a data race.
      shard->shim->set_technique(
          std::shared_ptr<core::Technique>(lib_->instantiate(name)));
    }
  }
}

FleetDelta FleetEngine::run_wave(Shard& shard, const ApplicationTrace& trace,
                                 std::size_t wave, std::size_t admitted,
                                 BytesView packet_payload) {
  // Everything a shard wave spends (match ops in its DPI engine, packets
  // its shim mutates) attributes to the fleet phase, on any thread.
  LIBERATE_COST_SCOPE(kFleet);
  LIBERATE_PROV_SCOPE(shard.seed);

  WaveStats stats;
  if (options_.flow_mode == FlowMode::kPacketLevel) {
    stats = shard.driver->run_wave(
        admitted, packet_payload, BytesView(options_.packet_alt_payload),
        options_.packet_alt_every);
  } else {
    stats = run_wave_full_stack(shard, trace, admitted);
  }

  // Fold the wave into the shard's cumulative publish block. The last four
  // slots are already-cumulative shard-state reads; the WaveStats slots
  // accumulate. Both stay monotone, which the merger verifies.
  shard.counters[ShardCounter::kFlows] += stats.flows;
  shard.counters[ShardCounter::kDifferentiated] += stats.differentiated;
  shard.counters[ShardCounter::kBlocked] += stats.blocked;
  shard.counters[ShardCounter::kIncomplete] += stats.incomplete;
  shard.counters[ShardCounter::kLatencyUsSum] += stats.latency_us_sum;
  shard.counters[ShardCounter::kLatencySamples] += stats.latency_samples;
  shard.counters[ShardCounter::kFaultsInjected] = shard.faults_injected();
  shard.counters[ShardCounter::kFlowsEvicted] = shard.shim->flows_evicted();
  shard.counters[ShardCounter::kPacketsInjected] =
      shard.shim->packets_injected();
  shard.counters[ShardCounter::kPacketsRewritten] =
      shard.shim->packets_rewritten();

  LIBERATE_OBS_EVENT(
      static_cast<std::uint64_t>(shard.env->loop.now()), "deploy", "wave_done",
      obs::fv("shard", static_cast<std::uint64_t>(shard.index)),
      obs::fv("wave", static_cast<std::uint64_t>(wave)),
      obs::fv("flows", static_cast<std::uint64_t>(stats.flows)),
      obs::fv("differentiated",
              static_cast<std::uint64_t>(stats.differentiated)));

  if (options_.merge_mode == MergeMode::kFull) {
    FleetDelta dense;
    dense.shard = static_cast<std::uint32_t>(shard.index);
    dense.wave = static_cast<std::uint32_t>(wave);
    dense.changed.reserve(kShardCounterCount);
    for (std::size_t slot = 0; slot < kShardCounterCount; ++slot) {
      dense.changed.emplace_back(static_cast<std::uint8_t>(slot),
                                 shard.counters.v[slot]);
    }
    return dense;
  }
  return shard.publisher.publish(static_cast<std::uint32_t>(shard.index),
                                 static_cast<std::uint32_t>(wave),
                                 shard.counters);
}

WaveStats FleetEngine::run_wave_full_stack(Shard& shard,
                                           const ApplicationTrace& trace,
                                           std::size_t admitted) {
  netsim::EventLoop& loop = shard.env->loop;

  struct FlowSlot {
    TcpConnection* conn = nullptr;
    std::size_t client_rx = 0;
    std::size_t server_rx = 0;
    bool server_replied = false;
    bool reset = false;
    // Flow latency bookkeeping (plain fields, not obs-gated: latency feeds
    // WaveStats and the anomaly detector, which are control-plane inputs).
    TimePoint started_at = 0;
    TimePoint completed_at = 0;
    bool completed = false;
  };
  // Wave state is shared_ptr-held: connection callbacks installed here can
  // outlive this frame (a FaultyLink-delayed segment may arrive after the
  // wave deadline), and connections persist on the hosts.
  struct WaveData {
    Bytes client_payload;
    Bytes server_payload;
    std::vector<FlowSlot> slots;
  };
  auto wd = std::make_shared<WaveData>();
  wd->client_payload = concat_payload(trace, Sender::kClient);
  wd->server_payload = concat_payload(trace, Sender::kServer);
  const std::size_t client_total = wd->client_payload.size();
  const std::size_t server_total = wd->server_payload.size();
  const std::size_t flows = admitted;
  wd->slots.resize(flows);
  const std::uint16_t wave_base = static_cast<std::uint16_t>(
      shard.port_base + (shard.flow_serial % 2000));
  shard.flow_serial += flows;

  // Persistent server host, per-wave listener: every accepted connection
  // accumulates the request and answers with the full response.
  netsim::EventLoop* loop_ptr = &loop;
  shard.server->tcp_unlisten(trace.server_port);
  shard.server->tcp_listen(
      trace.server_port, [wd, wave_base, client_total, server_total,
                          loop_ptr](TcpConnection& c) {
        // Remote port identifies the slot (tuple() is local -> remote).
        const std::uint16_t remote = c.tuple().dst_port;
        if (remote < wave_base ||
            static_cast<std::size_t>(remote - wave_base) >= wd->slots.size()) {
          return;  // straggler from an earlier wave
        }
        const std::size_t idx = remote - wave_base;
        c.on_data([wd, idx, &c, client_total, server_total,
                   loop_ptr](BytesView data) {
          FlowSlot& slot = wd->slots[idx];
          slot.server_rx += data.size();
          if (!slot.server_replied && slot.server_rx >= client_total &&
              server_total > 0) {
            slot.server_replied = true;
            c.send(BytesView(wd->server_payload));
          }
          // Upload-only traces: the flow is complete once the server has the
          // full request.
          if (!slot.completed && server_total == 0 &&
              slot.server_rx >= client_total) {
            slot.completed = true;
            slot.completed_at = loop_ptr->now();
          }
        });
      });

  Shard* shard_ptr = &shard;
  const std::uint16_t server_port = trace.server_port;
  for (std::size_t f = 0; f < flows; ++f) {
    loop.schedule(
        static_cast<Duration>(f) * options_.flow_stagger,
        [wd, f, shard_ptr, server_port, wave_base, server_total, loop_ptr]() {
          FlowSlot& slot = wd->slots[f];
          slot.started_at = loop_ptr->now();
          TcpConnection& conn = shard_ptr->client->tcp_connect(
              kServerIp, server_port,
              static_cast<std::uint16_t>(wave_base + f));
          slot.conn = &conn;
          conn.on_reset([wd, f] { wd->slots[f].reset = true; });
          conn.on_data([wd, f, server_total, loop_ptr](BytesView d) {
            FlowSlot& slot = wd->slots[f];
            slot.client_rx += d.size();
            if (!slot.completed && server_total > 0 &&
                slot.client_rx >= server_total) {
              slot.completed = true;
              slot.completed_at = loop_ptr->now();
            }
          });
          conn.on_established(
              [wd, &conn] { conn.send(BytesView(wd->client_payload)); });
        });
  }

  auto flow_done = [&](const FlowSlot& s) {
    if (s.reset) return true;
    return server_total > 0 ? s.client_rx >= server_total
                            : s.server_rx >= client_total;
  };
  std::vector<FlowSlot>& slots = wd->slots;

  // Virtual-time budget: transfer under the profile's shaping rate plus the
  // stagger tail plus configured slack.
  const double wave_bytes = static_cast<double>(client_total + server_total) *
                            static_cast<double>(flows);
  const double budget_s =
      options_.wave_timeout_s +
      netsim::to_seconds(options_.flow_stagger) * static_cast<double>(flows) +
      wave_bytes * 8.0 / 1.0e6;
  const TimePoint deadline =
      loop.now() + static_cast<Duration>(budget_s * 1e6);
  while (loop.now() < deadline) {
    if (std::all_of(slots.begin(), slots.end(), flow_done)) break;
    loop.run_for(netsim::milliseconds(200));
  }

  WaveStats stats;
  stats.flows = flows;
  for (const FlowSlot& slot : slots) {
    const bool done = flow_done(slot) && !slot.reset;
    if (!done) ++stats.incomplete;
    if (slot.reset) ++stats.blocked;
    if (slot.completed && !slot.reset && slot.completed_at >= slot.started_at) {
      const std::uint64_t lat_us =
          static_cast<std::uint64_t>(slot.completed_at - slot.started_at);
      stats.latency_us_sum += lat_us;
      ++stats.latency_samples;
      LIBERATE_HDR_RECORD("fleet.flow_latency_us", lat_us);
    }
    if (slot.conn == nullptr) continue;
    // Treatment check mirrors ReplayRunner::differentiated for the direct
    // signal; indirect signals fall back to the wire evidence.
    bool differentiated = false;
    if (shard.env->signal == dpi::Environment::Signal::kDirect &&
        shard.env->dpi != nullptr) {
      auto klass = shard.env->dpi->engine().active_class_now(
          slot.conn->tuple(), loop.now());
      if (klass) {
        const auto& actions = shard.env->dpi->config().actions;
        auto it = actions.find(*klass);
        differentiated =
            it != actions.end() &&
            (it->second.block || it->second.zero_rate ||
             it->second.throttle_bytes_per_sec.has_value());
      }
    } else {
      differentiated = slot.reset || !done;
    }
    if (differentiated) ++stats.differentiated;
  }

  // Retire the wave: abort anything still open so lost-segment retransmit
  // timers don't bleed into the next wave, then drain briefly. Verdicts are
  // already collected — the RST-triggered classifier flush can't skew them.
  for (FlowSlot& slot : slots) {
    if (slot.conn != nullptr &&
        slot.conn->state() != TcpConnection::State::kClosed) {
      slot.conn->abort();
    }
  }
  loop.run_for(seconds(5));

  LIBERATE_COUNTER_ADD("deploy.fleet.flows", stats.flows);
  LIBERATE_COUNTER_ADD("deploy.fleet.flows_differentiated",
                       stats.differentiated);
  return stats;
}

FleetReport FleetEngine::run(const ApplicationTrace& trace) {
  FleetReport report;
  report.environment = options_.environment;
  report.app = trace.app_name;
  report.shards = shards_.size();

  core::ReplayRunner& runner = lib_->runner();

  // Ambiguity probing (opt-in): one EnvFactory serves both the deploy-time
  // digest and the readapt ladder's fingerprint-verify stage. Probe worlds
  // are built fresh from the profile name and then replay the epoch log of
  // scripted classifier changes, so a probe always sees the same classifier
  // the live shards do.
  fingerprint::EnvFactory probe_factory;
  ReadaptHooks hooks;
  if (options_.ambiguity_probes) {
    probe_factory = [this](std::uint64_t seed) {
      auto env = dpi::make_environment(options_.environment, seed);
      for (const auto& change : applied_changes_) change(*env);
      return env;
    };
    hooks.probe_ambiguity = [this, &probe_factory] {
      fingerprint::AmbiguityProbeOptions popts;
      popts.workers = options_.workers == 0 ? 1 : options_.workers;
      popts.seed = options_.seed;
      return fingerprint::probe_ambiguity(probe_factory, popts);
    };
    hooks.max_distance = options_.ambiguity_max_distance;
  }

  // Phase 1: characterization — warm cache entry, nearest ambiguity
  // fingerprint, or full analysis.
  CachedCharacterization current;
  std::optional<fingerprint::AmbiguityDigest> active_digest;
  if (options_.ambiguity_probes) {
    fingerprint::AmbiguityProbeResult probed = hooks.probe_ambiguity();
    report.fingerprint_probe_flows += probed.probe_flows;
    report.fingerprint_digest = probed.digest.fingerprint_hex();
    report.fingerprint_dims = probed.digest.dims.size();
    active_digest = std::move(probed.digest);
  }
  const CachedCharacterization* warm =
      options_.cache != nullptr
          ? options_.cache->lookup(options_.environment, trace.app_name)
          : nullptr;
  bool characterized = false;
  if (warm != nullptr && !warm->ranking.empty()) {
    current = *warm;
    report.initial_from_cache = true;
    characterized = true;
    if (options_.ambiguity_probes) {
      report.fingerprint_source = "exact";
      report.fingerprint_profile = warm->environment;
    }
  } else if (active_digest && options_.cache != nullptr) {
    // Exact key missed — fall back to the nearest fingerprinted entry for
    // this app. A match means some already-characterized deployment resolves
    // every probed ambiguity within the allowed distance: adopt its ranking
    // wholesale and skip the full analysis.
    auto [match, distance] = options_.cache->nearest_by_ambiguity(
        *active_digest, trace.app_name, options_.ambiguity_max_distance);
    if (match != nullptr && !match->ranking.empty()) {
      report.fingerprint_profile = match->environment;
      report.fingerprint_source = "nearest";
      current = *match;
      current.environment = options_.environment;
      report.initial_from_cache = true;
      characterized = true;
    }
  }
  if (!characterized) {
    const int r0 = runner.rounds();
    const std::uint64_t b0 = runner.bytes_offered();
    core::SessionReport analysis = lib_->analyze(trace);
    report.initial_analysis_rounds = runner.rounds() - r0;
    report.initial_analysis_bytes = runner.bytes_offered() - b0;
    current = make_cached_characterization(options_.environment,
                                           trace.app_name, analysis);
    if (options_.cache != nullptr) options_.cache->store(current);
    if (options_.ambiguity_probes) report.fingerprint_source = "probed";
  }
  if (active_digest) {
    // Whatever path produced the knowledge, pin the freshly probed digest to
    // this environment's entry so future deployments can nearest-match it.
    current.ambiguity = *active_digest;
    if (options_.cache != nullptr) options_.cache->store(current);
  }

  std::string technique =
      current.ranking.empty() ? std::string() : current.ranking.front().name;
  report.technique_initial = technique;
  swap_technique(technique, current);

  // Phase 2: waves under drift monitoring.
  DriftMonitor monitor(options_.drift);
  AdaptationPolicy policy;
  std::unique_ptr<ThreadPool> pool;
  if (options_.workers > 0) pool = std::make_unique<ThreadPool>(options_.workers);

  // Anomaly detectors over the merged per-wave series. Deliberately plain
  // (non-obs-gated) state: a flag corroborates the DriftMonitor, which
  // shapes the FLEET summary — control flow must be identical at every obs
  // level, worker count, and match backend. The deviation floor is raised
  // above the library default because these series live on [0,1]-ish
  // scales with real FaultyLink noise: a burst has to clear both the drift
  // slack AND a 3-sigma move past this floor before it can corroborate.
  obs::AnomalyConfig anomaly_cfg;
  anomaly_cfg.min_deviation = 0.05;
  std::map<std::string, obs::AnomalyDetector> detectors;

  // Packet-level mode: build each shard's crafted-flow driver now that the
  // trace (and so the server port) is known. Client address blocks are
  // disjoint per shard, tuples never repeat across waves.
  Bytes packet_payload;
  if (options_.flow_mode == FlowMode::kPacketLevel) {
    packet_payload = concat_payload(trace, Sender::kClient);
    for (auto& shard : shards_) {
      if (shard->driver != nullptr) continue;
      PacketFlowConfig cfg;
      cfg.client_ip_base =
          0x0a000000u + static_cast<std::uint32_t>(shard->index + 1) * 0x10000u;
      cfg.server_ip = kServerIp;
      cfg.server_port = trace.server_port;
      cfg.segment_bytes = options_.packet_segment_bytes;
      shard->driver = std::make_unique<PacketFlowDriver>(
          *shard->env, *shard->shim, cfg);
      shard->shim->reserve_flows(options_.flows_per_wave * 2);
    }
  }

  // The merge point. Both merge modes flow through it: kDelta applies the
  // sparse publishes, kFull the dense blocks — reconstructed wave stats are
  // byte-identical by construction, which fleet_test pins.
  DeltaMerger merger(shards_.size());
  const std::size_t wave_total = options_.flows_per_wave * shards_.size();

  for (std::size_t wave = 0; wave < options_.waves; ++wave) {
    if (wave == options_.change_at_wave && options_.classifier_change) {
      // Applied at a quiet wave boundary: shard loops are idle, so no
      // in-flight walk holds a path index (emplace_at's precondition).
      for (auto& shard : shards_) options_.classifier_change(*shard->env);
      options_.classifier_change(*probe_env_);
      applied_changes_.push_back(options_.classifier_change);
    }

    // Shard-affine admission: hash every global flow id of this wave to its
    // shard on the control thread, so the assignment (and each shard's
    // count) is a pure function of (seed, wave) at any worker count.
    std::vector<std::size_t> admitted(shards_.size(), 0);
    for (std::size_t k = 0; k < wave_total; ++k) {
      const std::uint64_t global_flow =
          static_cast<std::uint64_t>(wave) * wave_total + k;
      ++admitted[admit_shard(options_.seed, global_flow, shards_.size())];
    }

    std::vector<FleetDelta> published(shards_.size());
    const BytesView packet_payload_view(packet_payload);
    if (pool != nullptr) {
      std::vector<std::future<FleetDelta>> futures;
      futures.reserve(shards_.size());
      for (auto& shard : shards_) {
        Shard* s = shard.get();
        const std::size_t n = admitted[s->index];
        futures.push_back(pool->submit(
            LIBERATE_OBS_PROPAGATE([this, s, &trace, wave, n,
                                    packet_payload_view] {
              return run_wave(*s, trace, wave, n, packet_payload_view);
            })));
      }
      for (std::size_t i = 0; i < futures.size(); ++i) {
        published[i] = futures[i].get();  // shard order: deterministic merge
      }
    } else {
      for (std::size_t i = 0; i < shards_.size(); ++i) {
        published[i] = run_wave(*shards_[i], trace, wave, admitted[i],
                                packet_payload_view);
      }
    }

    // Fold the publishes in shard order; each apply reconstructs that
    // shard's per-wave stats exactly from the cumulative stream.
    std::vector<WaveStats> per_shard(shards_.size());
    for (std::size_t i = 0; i < shards_.size(); ++i) {
      merger.apply(published[i], &per_shard[i]);
    }

    FleetWaveReport wr;
    wr.wave = wave;
    for (const WaveStats& s : per_shard) wr.stats += s;
    report.totals += wr.stats;
    wr.shard_stats = std::move(per_shard);

    const std::uint64_t ts_us = static_cast<std::uint64_t>(wave) * 1'000'000u;

    // Telemetry hub sampling: per-shard series points plus a registry tick.
    // Compiled away at obs level 0; skipped at runtime when sample_telemetry
    // is off (bench_telemetry's baseline). All timestamps are the wave's
    // sim-clock boundary, so identical runs produce identical series.
    if (options_.sample_telemetry) {
      for (std::size_t i = 0; i < wr.shard_stats.size(); ++i) {
        const WaveStats& s = wr.shard_stats[i];
        LIBERATE_TS_SAMPLE("fleet.diff_rate", i, ts_us,
                           s.differentiated_rate());
        LIBERATE_TS_SAMPLE("fleet.blocked_rate", i, ts_us, s.blocked_rate());
        LIBERATE_TS_SAMPLE("fleet.incomplete_rate", i, ts_us,
                           s.incomplete_rate());
        LIBERATE_TS_SAMPLE("fleet.latency_us", i, ts_us, s.mean_latency_us());
        // Per-wave fault/eviction movement, straight off the merged delta
        // stream (the merger keeps each shard's previous publish).
        LIBERATE_TS_SAMPLE(
            "fleet.faults", i, ts_us,
            merger.wave_delta(i, ShardCounter::kFaultsInjected));
        LIBERATE_TS_SAMPLE("fleet.evicted", i, ts_us,
                           merger.wave_delta(i, ShardCounter::kFlowsEvicted));
        // Open-addressing occupancy of the shard's shim table. Read on the
        // control thread at the wave boundary (shard loops are idle).
        LIBERATE_TS_SAMPLE("fleet.flow_table_load", i, ts_us,
                           shards_[i]->shim->flow_table_load());
      }
      LIBERATE_TS_SAMPLE("fleet.diff_rate", -1, ts_us,
                         wr.stats.differentiated_rate());
      LIBERATE_TS_SAMPLE("fleet.blocked_rate", -1, ts_us,
                         wr.stats.blocked_rate());
      LIBERATE_TS_SAMPLE("fleet.incomplete_rate", -1, ts_us,
                         wr.stats.incomplete_rate());
      LIBERATE_TS_SAMPLE("fleet.latency_us", -1, ts_us,
                         wr.stats.mean_latency_us());
      LIBERATE_TS_TICK(ts_us, {"deploy.", "dpi.", "netsim.", "stack.",
                               "core."});
    }

    // Anomaly pass: robust z-scores over the merged series. A flagged
    // detector on a rate-suspect wave corroborates drift (the monitor
    // confirms one wave sooner); a flag on a clean wave only annotates.
    const std::pair<const char*, double> series_points[] = {
        {"blocked_rate", wr.stats.blocked_rate()},
        {"diff_rate", wr.stats.differentiated_rate()},
        {"incomplete_rate", wr.stats.incomplete_rate()},
        {"latency_ms", wr.stats.mean_latency_us() / 1000.0},
    };
    for (const auto& [series, x] : series_points) {
      auto det =
          detectors.try_emplace(series, obs::AnomalyDetector(anomaly_cfg))
              .first;
      obs::AnomalyVerdict v = det->second.observe(x);
      if (v.flagged) {
        wr.anomalies.push_back(series);
        LIBERATE_OBS_EVENT(ts_us, "obs", "anomaly", obs::fv("series", series),
                           obs::fv("wave", static_cast<std::uint64_t>(wave)));
      }
    }
    wr.corroborated = !wr.anomalies.empty();

    std::optional<DriftSignal> signal =
        monitor.observe(wr.stats, wr.corroborated);
    wr.signal = signal;

    if (signal) {
      if (policy.state() == DeployState::kDeployed ||
          policy.state() == DeployState::kReDeployed) {
        policy.transition(DeployState::kSuspect, wave, "drift-suspect", ts_us);
      }
      policy.transition(
          DeployState::kReVerifying, wave,
          format("drift:%s", drift_kind_name(signal->kind)), ts_us);

      const int rr0 = runner.rounds();
      const std::uint64_t rb0 = runner.bytes_offered();
      ReadaptOutcome outcome =
          incremental_readapt(*lib_, trace, current, options_.cache,
                              options_.ambiguity_probes ? &hooks : nullptr);
      report.readapts += 1;
      report.readapt_rounds += runner.rounds() - rr0;
      report.readapt_bytes += runner.bytes_offered() - rb0;
      wr.readapt_path = outcome.path;
      wr.readapt_rounds = runner.rounds() - rr0;
      wr.readapt_ladder = outcome.ladder;
      wr.readapt_probe_flows = outcome.probe_flows;
      report.fingerprint_probe_flows += outcome.probe_flows;
      if (outcome.probed_ambiguity) {
        report.fingerprint_digest = outcome.probed_ambiguity->fingerprint_hex();
        report.fingerprint_dims = outcome.probed_ambiguity->dims.size();
      }
      // Readapt cost as a fleet series point at this wave's boundary. The
      // value comes from the runner's deterministic round counter, so the
      // "fleet."-prefixed telemetry document stays byte-identical across
      // worker counts and match backends.
      if (options_.sample_telemetry) {
        LIBERATE_TS_SAMPLE("fleet.cost.readapt_rounds", -1, ts_us,
                           wr.readapt_rounds);
      }

      if (outcome.path == ReadaptPath::kFullAnalysis) {
        policy.transition(DeployState::kReAnalyzing, wave,
                          "fingerprint-mismatch", ts_us);
        current = make_cached_characterization(options_.environment,
                                               trace.app_name, outcome.report);
        if (outcome.probed_ambiguity) {
          // Keep the post-change digest on the refreshed entry: the next
          // deployment that meets this classifier nearest-matches it.
          current.ambiguity = outcome.probed_ambiguity;
          if (options_.cache != nullptr) options_.cache->store(current);
          report.fingerprint_profile.clear();
          report.fingerprint_source = "probed";
        }
      } else if (outcome.path == ReadaptPath::kFingerprintMatched) {
        // The readapt adopted the matched implementation's knowledge into
        // the cache under this environment's key — pick it up as the live
        // characterization so the hot-swap deploys the matched ranking.
        if (options_.cache != nullptr) {
          if (const CachedCharacterization* adopted = options_.cache->lookup(
                  options_.environment, trace.app_name)) {
            current = *adopted;
          }
        }
        auto it = std::find_if(current.ranking.begin(), current.ranking.end(),
                               [&](const RankedTechnique& r) {
                                 return r.name == outcome.technique;
                               });
        if (it != current.ranking.end()) {
          std::rotate(current.ranking.begin(), it, it + 1);
        }
        report.fingerprint_profile = outcome.matched_environment;
        report.fingerprint_source = "nearest";
      } else if (outcome.path == ReadaptPath::kVerifiedCached) {
        // The re-verified technique becomes the deployed (front) entry so the
        // next readapt's level-1 probe targets it.
        auto it = std::find_if(current.ranking.begin(), current.ranking.end(),
                               [&](const RankedTechnique& r) {
                                 return r.name == outcome.technique;
                               });
        if (it != current.ranking.end()) {
          std::rotate(current.ranking.begin(), it, it + 1);
        }
      }
      policy.transition(DeployState::kReDeployed, wave,
                        readapt_path_name(outcome.path), ts_us);
      technique = outcome.technique;
      swap_technique(technique, current);
      monitor.rebaseline();
      // The new technique's treatment profile is the new normal: re-warm
      // the detectors alongside the drift baseline.
      for (auto& [series, det] : detectors) det.reset();
    } else if (monitor.suspect_streak() > 0) {
      if (policy.state() == DeployState::kDeployed ||
          policy.state() == DeployState::kReDeployed) {
        policy.transition(DeployState::kSuspect, wave, "drift-suspect", ts_us);
      }
    } else {
      if (policy.state() == DeployState::kSuspect) {
        policy.transition(DeployState::kDeployed, wave, "cleared", ts_us);
      } else if (policy.state() == DeployState::kReDeployed) {
        policy.transition(DeployState::kDeployed, wave, "settled", ts_us);
      }
    }

    wr.state_after = policy.state();
    wr.technique_after = technique;
    if (options_.on_wave) options_.on_wave(wr);
    report.waves.push_back(std::move(wr));
  }

  report.technique_final = technique;
  report.transitions = policy.transitions();
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    // Totals come off the merged delta stream — the same numbers the shards
    // hold, but read from the control plane's reconstruction.
    report.flows_evicted += merger.total(i, ShardCounter::kFlowsEvicted);
    report.faults_injected += merger.total(i, ShardCounter::kFaultsInjected);
    report.flows_resident += shards_[i]->shim->tracked_flows();
  }
  report.delta_entries_shipped = merger.entries_shipped();
  report.delta_entries_full = merger.entries_full_equivalent();
#if LIBERATE_OBS_LEVEL >= LIBERATE_OBS_LEVEL_METRICS
  // Export only the deterministic "fleet." series: everything under that
  // prefix is sampled on wave boundaries from merged-in-shard-order stats,
  // so the document is byte-identical across worker counts and backends
  // (registry-tick series like util.* are deliberately excluded — pool
  // counters depend on worker count).
  if (options_.sample_telemetry) {
    report.telemetry_json = obs::timeseries_to_json(
        obs::TimeSeriesStore::instance().snapshot("fleet."));
  }
#endif
  return report;
}

std::string FleetReport::summary() const {
  std::string out;
  out += format("FLEET env=%s app=%s shards=%zu waves=%zu flows=%zu\n",
                environment.c_str(), app.c_str(), shards, waves.size(),
                totals.flows);
  out += format("FLEET deploy technique=%s source=%s rounds=%d\n",
                technique_initial.empty() ? "(none)" : technique_initial.c_str(),
                initial_from_cache ? "cache" : "analysis",
                initial_analysis_rounds);
  if (!fingerprint_source.empty()) {
    // Active ambiguity fingerprint. Digest and probe counts come from the
    // deterministic probe catalog, so this line is byte-identical across
    // worker counts, obs levels, and match backends.
    out += format(
        "FLEET fingerprint digest=%s dims=%zu profile=%s source=%s "
        "probe_flows=%zu\n",
        fingerprint_digest.empty() ? "(none)" : fingerprint_digest.c_str(),
        fingerprint_dims,
        fingerprint_profile.empty() ? "(none)" : fingerprint_profile.c_str(),
        fingerprint_source.c_str(), fingerprint_probe_flows);
  }
  for (const FleetWaveReport& w : waves) {
    out += format(
        "FLEET wave=%zu flows=%zu diff=%.3f blocked=%.3f incomplete=%.3f "
        "lat_us=%.0f state=%s technique=%s",
        w.wave, w.stats.flows, w.stats.differentiated_rate(),
        w.stats.blocked_rate(), w.stats.incomplete_rate(),
        w.stats.mean_latency_us(), deploy_state_name(w.state_after),
        w.technique_after.empty() ? "(none)" : w.technique_after.c_str());
    if (!w.anomalies.empty()) {
      out += " anomaly=";
      for (std::size_t i = 0; i < w.anomalies.size(); ++i) {
        if (i > 0) out += ",";
        out += w.anomalies[i];
      }
    }
    if (w.signal) {
      out += format(" signal=%s%s", drift_kind_name(w.signal->kind),
                    w.signal->corroborated ? "+corroborated" : "");
    }
    if (w.readapt_path) {
      out += format(" readapt=%s", readapt_path_name(*w.readapt_path));
    }
    out += "\n";
    if (w.readapt_path) {
      // Ladder-stage cost breakdown for the wave's re-characterization:
      // where the verification rounds went, stage by stage.
      out += format("FLEET readapt wave=%zu path=%s rounds=%d ladder=", w.wave,
                    readapt_path_name(*w.readapt_path), w.readapt_rounds);
      for (std::size_t i = 0; i < w.readapt_ladder.size(); ++i) {
        if (i > 0) out += ",";
        out += format("%s:%d", w.readapt_ladder[i].stage.c_str(),
                      w.readapt_ladder[i].rounds);
      }
      if (w.readapt_probe_flows > 0) {
        out += format(" probe_flows=%zu", w.readapt_probe_flows);
      }
      out += "\n";
    }
  }
  for (const StateTransition& t : transitions) {
    out += format("FLEET transition %s->%s@%zu %s\n", deploy_state_name(t.from),
                  deploy_state_name(t.to), t.wave, t.reason.c_str());
  }
  out += format(
      "FLEET totals flows=%zu differentiated=%zu blocked=%zu incomplete=%zu "
      "evicted=%llu faults=%llu\n",
      totals.flows, totals.differentiated, totals.blocked, totals.incomplete,
      static_cast<unsigned long long>(flows_evicted),
      static_cast<unsigned long long>(faults_injected));
  out += format(
      "FLEET cost analysis_rounds=%d analysis_bytes=%llu readapts=%zu "
      "readapt_rounds=%d readapt_bytes=%llu\n",
      initial_analysis_rounds,
      static_cast<unsigned long long>(initial_analysis_bytes), readapts,
      readapt_rounds, static_cast<unsigned long long>(readapt_bytes));
  out += format("FLEET final technique=%s\n",
                technique_final.empty() ? "(none)" : technique_final.c_str());
  return out;
}

}  // namespace liberate::deploy
