#include "deploy/fleet.h"

#include <algorithm>
#include <future>
#include <map>

#include "dpi/profiles.h"
#include "obs/anomaly.h"
#include "obs/obs.h"
#if LIBERATE_OBS_LEVEL >= LIBERATE_OBS_LEVEL_METRICS
#include "obs/timeseries.h"
#endif
#include "stack/host.h"
#include "util/strings.h"
#include "util/thread_pool.h"

namespace liberate::deploy {

using netsim::Duration;
using netsim::seconds;
using netsim::TimePoint;
using stack::Host;
using stack::OsProfile;
using stack::TcpConnection;
using trace::ApplicationTrace;
using trace::Sender;

namespace {

constexpr std::uint32_t kClientIp = 0x0a000001;  // 10.0.0.1
constexpr std::uint32_t kServerIp = 0xc6336414;  // 198.51.100.20

// splitmix64 finalizer: decorrelates per-shard seeds derived from the fleet
// seed (same construction as the round scheduler's world seeds).
std::uint64_t mix(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

std::uint64_t shard_seed(std::uint64_t fleet_seed, std::size_t index,
                        std::uint64_t salt) {
  return mix(fleet_seed ^ mix(static_cast<std::uint64_t>(index + 1)) ^ salt);
}

Bytes concat_payload(const ApplicationTrace& trace, Sender sender) {
  Bytes out;
  for (const auto& m : trace.messages) {
    if (m.sender != sender) continue;
    out.insert(out.end(), m.payload.begin(), m.payload.end());
  }
  return out;
}

}  // namespace

/// One persistent shard world: its own event loop, network, middlebox,
/// long-lived shim, and client/server hosts. Shards never share state, so
/// waves parallelize across the thread pool without synchronization.
struct FleetEngine::Shard {
  std::size_t index = 0;
  std::uint64_t seed = 0;
  std::unique_ptr<dpi::Environment> env;
  std::unique_ptr<core::EvasionShim> shim;
  std::unique_ptr<Host> client;
  std::unique_ptr<Host> server;
  netsim::FaultyLink* faulty = nullptr;
  /// Per-shard client-port base: shards are separate networks, but keeping
  /// tuples globally unique keeps the provenance ledger unambiguous.
  std::uint16_t port_base = 0;
  std::uint64_t flow_serial = 0;

  std::uint64_t faults_injected() const {
    if (faulty == nullptr) return 0;
    return faulty->dropped() + faulty->duplicated() + faulty->truncated() +
           faulty->corrupted() + faulty->reordered();
  }
};

FleetEngine::FleetEngine(FleetOptions options) : options_(std::move(options)) {
  if (options_.shards == 0) options_.shards = 1;
  probe_env_ = dpi::make_environment(
      options_.environment, shard_seed(options_.seed, 0, 0xB10Bull));
  lib_ = std::make_unique<core::Liberate>(*probe_env_, options_.seed);

  for (std::size_t i = 0; i < options_.shards; ++i) {
    auto shard = std::make_unique<Shard>();
    shard->index = i;
    shard->seed = shard_seed(options_.seed, i, 0x5A4Dull);
    shard->env = dpi::make_environment(options_.environment, shard->seed);
    if (options_.faults.any()) {
      shard->faulty = &shard->env->net.emplace_at<netsim::FaultyLink>(
          0, options_.faults, shard_seed(options_.seed, i, 0xFA017ull));
    }
    shard->shim = std::make_unique<core::EvasionShim>(
        shard->env->net.client_port(), nullptr, core::TechniqueContext{});
    shard->shim->set_max_flows(options_.max_flows_per_shim);
    shard->client = std::make_unique<Host>(*shard->shim, kClientIp,
                                           OsProfile::linux_profile());
    shard->server = std::make_unique<Host>(shard->env->net.server_port(),
                                           kServerIp, shard->env->server_os);
    shard->env->net.attach_client(shard->client.get());
    shard->env->net.attach_server(shard->server.get());
    shard->port_base = static_cast<std::uint16_t>(30001 + i * 2048);
    shards_.push_back(std::move(shard));
  }
}

FleetEngine::~FleetEngine() = default;

void FleetEngine::swap_technique(const std::string& name,
                                 const CachedCharacterization& cached) {
  for (auto& shard : shards_) {
    shard->shim->set_context(cached.context());
    if (name.empty()) {
      shard->shim->clear_technique();
    } else {
      // One instance per shard: techniques are cheap, and sharing one object
      // across concurrently-running shard worlds would be a data race.
      shard->shim->set_technique(
          std::shared_ptr<core::Technique>(lib_->instantiate(name)));
    }
  }
}

WaveStats FleetEngine::run_wave(Shard& shard, const ApplicationTrace& trace,
                                std::size_t wave) {
  // Everything a shard wave spends (match ops in its DPI engine, packets
  // its shim mutates) attributes to the fleet phase, on any thread.
  LIBERATE_COST_SCOPE(kFleet);
  LIBERATE_PROV_SCOPE(shard.seed);
  netsim::EventLoop& loop = shard.env->loop;

  struct FlowSlot {
    TcpConnection* conn = nullptr;
    std::size_t client_rx = 0;
    std::size_t server_rx = 0;
    bool server_replied = false;
    bool reset = false;
    // Flow latency bookkeeping (plain fields, not obs-gated: latency feeds
    // WaveStats and the anomaly detector, which are control-plane inputs).
    TimePoint started_at = 0;
    TimePoint completed_at = 0;
    bool completed = false;
  };
  // Wave state is shared_ptr-held: connection callbacks installed here can
  // outlive this frame (a FaultyLink-delayed segment may arrive after the
  // wave deadline), and connections persist on the hosts.
  struct WaveData {
    Bytes client_payload;
    Bytes server_payload;
    std::vector<FlowSlot> slots;
  };
  auto wd = std::make_shared<WaveData>();
  wd->client_payload = concat_payload(trace, Sender::kClient);
  wd->server_payload = concat_payload(trace, Sender::kServer);
  const std::size_t client_total = wd->client_payload.size();
  const std::size_t server_total = wd->server_payload.size();
  const std::size_t flows = options_.flows_per_wave;
  wd->slots.resize(flows);
  const std::uint16_t wave_base = static_cast<std::uint16_t>(
      shard.port_base + (shard.flow_serial % 2000));
  shard.flow_serial += flows;

  // Persistent server host, per-wave listener: every accepted connection
  // accumulates the request and answers with the full response.
  netsim::EventLoop* loop_ptr = &loop;
  shard.server->tcp_unlisten(trace.server_port);
  shard.server->tcp_listen(
      trace.server_port, [wd, wave_base, client_total, server_total,
                          loop_ptr](TcpConnection& c) {
        // Remote port identifies the slot (tuple() is local -> remote).
        const std::uint16_t remote = c.tuple().dst_port;
        if (remote < wave_base ||
            static_cast<std::size_t>(remote - wave_base) >= wd->slots.size()) {
          return;  // straggler from an earlier wave
        }
        const std::size_t idx = remote - wave_base;
        c.on_data([wd, idx, &c, client_total, server_total,
                   loop_ptr](BytesView data) {
          FlowSlot& slot = wd->slots[idx];
          slot.server_rx += data.size();
          if (!slot.server_replied && slot.server_rx >= client_total &&
              server_total > 0) {
            slot.server_replied = true;
            c.send(BytesView(wd->server_payload));
          }
          // Upload-only traces: the flow is complete once the server has the
          // full request.
          if (!slot.completed && server_total == 0 &&
              slot.server_rx >= client_total) {
            slot.completed = true;
            slot.completed_at = loop_ptr->now();
          }
        });
      });

  Shard* shard_ptr = &shard;
  const std::uint16_t server_port = trace.server_port;
  for (std::size_t f = 0; f < flows; ++f) {
    loop.schedule(
        static_cast<Duration>(f) * options_.flow_stagger,
        [wd, f, shard_ptr, server_port, wave_base, server_total, loop_ptr]() {
          FlowSlot& slot = wd->slots[f];
          slot.started_at = loop_ptr->now();
          TcpConnection& conn = shard_ptr->client->tcp_connect(
              kServerIp, server_port,
              static_cast<std::uint16_t>(wave_base + f));
          slot.conn = &conn;
          conn.on_reset([wd, f] { wd->slots[f].reset = true; });
          conn.on_data([wd, f, server_total, loop_ptr](BytesView d) {
            FlowSlot& slot = wd->slots[f];
            slot.client_rx += d.size();
            if (!slot.completed && server_total > 0 &&
                slot.client_rx >= server_total) {
              slot.completed = true;
              slot.completed_at = loop_ptr->now();
            }
          });
          conn.on_established(
              [wd, &conn] { conn.send(BytesView(wd->client_payload)); });
        });
  }

  auto flow_done = [&](const FlowSlot& s) {
    if (s.reset) return true;
    return server_total > 0 ? s.client_rx >= server_total
                            : s.server_rx >= client_total;
  };
  std::vector<FlowSlot>& slots = wd->slots;

  // Virtual-time budget: transfer under the profile's shaping rate plus the
  // stagger tail plus configured slack.
  const double wave_bytes = static_cast<double>(client_total + server_total) *
                            static_cast<double>(flows);
  const double budget_s =
      options_.wave_timeout_s +
      netsim::to_seconds(options_.flow_stagger) * static_cast<double>(flows) +
      wave_bytes * 8.0 / 1.0e6;
  const TimePoint deadline =
      loop.now() + static_cast<Duration>(budget_s * 1e6);
  while (loop.now() < deadline) {
    if (std::all_of(slots.begin(), slots.end(), flow_done)) break;
    loop.run_for(netsim::milliseconds(200));
  }

  WaveStats stats;
  stats.flows = flows;
  for (const FlowSlot& slot : slots) {
    const bool done = flow_done(slot) && !slot.reset;
    if (!done) ++stats.incomplete;
    if (slot.reset) ++stats.blocked;
    if (slot.completed && !slot.reset && slot.completed_at >= slot.started_at) {
      const std::uint64_t lat_us =
          static_cast<std::uint64_t>(slot.completed_at - slot.started_at);
      stats.latency_us_sum += lat_us;
      ++stats.latency_samples;
      LIBERATE_HDR_RECORD("fleet.flow_latency_us", lat_us);
    }
    if (slot.conn == nullptr) continue;
    // Treatment check mirrors ReplayRunner::differentiated for the direct
    // signal; indirect signals fall back to the wire evidence.
    bool differentiated = false;
    if (shard.env->signal == dpi::Environment::Signal::kDirect &&
        shard.env->dpi != nullptr) {
      auto klass = shard.env->dpi->engine().active_class_now(
          slot.conn->tuple(), loop.now());
      if (klass) {
        const auto& actions = shard.env->dpi->config().actions;
        auto it = actions.find(*klass);
        differentiated =
            it != actions.end() &&
            (it->second.block || it->second.zero_rate ||
             it->second.throttle_bytes_per_sec.has_value());
      }
    } else {
      differentiated = slot.reset || !done;
    }
    if (differentiated) ++stats.differentiated;
  }

  // Retire the wave: abort anything still open so lost-segment retransmit
  // timers don't bleed into the next wave, then drain briefly. Verdicts are
  // already collected — the RST-triggered classifier flush can't skew them.
  for (FlowSlot& slot : slots) {
    if (slot.conn != nullptr &&
        slot.conn->state() != TcpConnection::State::kClosed) {
      slot.conn->abort();
    }
  }
  loop.run_for(seconds(5));

  LIBERATE_COUNTER_ADD("deploy.fleet.flows", stats.flows);
  LIBERATE_COUNTER_ADD("deploy.fleet.flows_differentiated",
                       stats.differentiated);
  LIBERATE_OBS_EVENT(static_cast<std::uint64_t>(loop.now()), "deploy",
                     "wave_done",
                     obs::fv("shard", static_cast<std::uint64_t>(shard.index)),
                     obs::fv("wave", static_cast<std::uint64_t>(wave)),
                     obs::fv("flows", static_cast<std::uint64_t>(stats.flows)),
                     obs::fv("differentiated",
                             static_cast<std::uint64_t>(stats.differentiated)));
  return stats;
}

FleetReport FleetEngine::run(const ApplicationTrace& trace) {
  FleetReport report;
  report.environment = options_.environment;
  report.app = trace.app_name;
  report.shards = shards_.size();

  core::ReplayRunner& runner = lib_->runner();

  // Phase 1: characterization — warm cache entry or full analysis.
  CachedCharacterization current;
  const CachedCharacterization* warm =
      options_.cache != nullptr
          ? options_.cache->lookup(options_.environment, trace.app_name)
          : nullptr;
  if (warm != nullptr && !warm->ranking.empty()) {
    current = *warm;
    report.initial_from_cache = true;
  } else {
    const int r0 = runner.rounds();
    const std::uint64_t b0 = runner.bytes_offered();
    core::SessionReport analysis = lib_->analyze(trace);
    report.initial_analysis_rounds = runner.rounds() - r0;
    report.initial_analysis_bytes = runner.bytes_offered() - b0;
    current = make_cached_characterization(options_.environment,
                                           trace.app_name, analysis);
    if (options_.cache != nullptr) options_.cache->store(current);
  }

  std::string technique =
      current.ranking.empty() ? std::string() : current.ranking.front().name;
  report.technique_initial = technique;
  swap_technique(technique, current);

  // Phase 2: waves under drift monitoring.
  DriftMonitor monitor(options_.drift);
  AdaptationPolicy policy;
  std::unique_ptr<ThreadPool> pool;
  if (options_.workers > 0) pool = std::make_unique<ThreadPool>(options_.workers);

  // Anomaly detectors over the merged per-wave series. Deliberately plain
  // (non-obs-gated) state: a flag corroborates the DriftMonitor, which
  // shapes the FLEET summary — control flow must be identical at every obs
  // level, worker count, and match backend. The deviation floor is raised
  // above the library default because these series live on [0,1]-ish
  // scales with real FaultyLink noise: a burst has to clear both the drift
  // slack AND a 3-sigma move past this floor before it can corroborate.
  obs::AnomalyConfig anomaly_cfg;
  anomaly_cfg.min_deviation = 0.05;
  std::map<std::string, obs::AnomalyDetector> detectors;
  // Per-shard cumulative counters, differenced into per-wave deltas for the
  // time-series store.
  std::vector<std::uint64_t> prev_faults(shards_.size(), 0);
  std::vector<std::uint64_t> prev_evicted(shards_.size(), 0);

  for (std::size_t wave = 0; wave < options_.waves; ++wave) {
    if (wave == options_.change_at_wave && options_.classifier_change) {
      // Applied at a quiet wave boundary: shard loops are idle, so no
      // in-flight walk holds a path index (emplace_at's precondition).
      for (auto& shard : shards_) options_.classifier_change(*shard->env);
      options_.classifier_change(*probe_env_);
    }

    std::vector<WaveStats> per_shard(shards_.size());
    if (pool != nullptr) {
      std::vector<std::future<WaveStats>> futures;
      futures.reserve(shards_.size());
      for (auto& shard : shards_) {
        Shard* s = shard.get();
        futures.push_back(pool->submit(LIBERATE_OBS_PROPAGATE(
            [this, s, &trace, wave] { return run_wave(*s, trace, wave); })));
      }
      for (std::size_t i = 0; i < futures.size(); ++i) {
        per_shard[i] = futures[i].get();  // shard order: deterministic merge
      }
    } else {
      for (std::size_t i = 0; i < shards_.size(); ++i) {
        per_shard[i] = run_wave(*shards_[i], trace, wave);
      }
    }

    FleetWaveReport wr;
    wr.wave = wave;
    for (const WaveStats& s : per_shard) wr.stats += s;
    report.totals += wr.stats;
    wr.shard_stats = std::move(per_shard);

    const std::uint64_t ts_us = static_cast<std::uint64_t>(wave) * 1'000'000u;

    // Telemetry hub sampling: per-shard series points plus a registry tick.
    // Compiled away at obs level 0; skipped at runtime when sample_telemetry
    // is off (bench_telemetry's baseline). All timestamps are the wave's
    // sim-clock boundary, so identical runs produce identical series.
    if (options_.sample_telemetry) {
      for (std::size_t i = 0; i < wr.shard_stats.size(); ++i) {
        const WaveStats& s = wr.shard_stats[i];
        LIBERATE_TS_SAMPLE("fleet.diff_rate", i, ts_us,
                           s.differentiated_rate());
        LIBERATE_TS_SAMPLE("fleet.blocked_rate", i, ts_us, s.blocked_rate());
        LIBERATE_TS_SAMPLE("fleet.incomplete_rate", i, ts_us,
                           s.incomplete_rate());
        LIBERATE_TS_SAMPLE("fleet.latency_us", i, ts_us, s.mean_latency_us());
        const std::uint64_t faults = shards_[i]->faults_injected();
        const std::uint64_t evicted = shards_[i]->shim->flows_evicted();
        LIBERATE_TS_SAMPLE("fleet.faults", i, ts_us, faults - prev_faults[i]);
        LIBERATE_TS_SAMPLE("fleet.evicted", i, ts_us,
                           evicted - prev_evicted[i]);
        prev_faults[i] = faults;
        prev_evicted[i] = evicted;
      }
      LIBERATE_TS_SAMPLE("fleet.diff_rate", -1, ts_us,
                         wr.stats.differentiated_rate());
      LIBERATE_TS_SAMPLE("fleet.blocked_rate", -1, ts_us,
                         wr.stats.blocked_rate());
      LIBERATE_TS_SAMPLE("fleet.incomplete_rate", -1, ts_us,
                         wr.stats.incomplete_rate());
      LIBERATE_TS_SAMPLE("fleet.latency_us", -1, ts_us,
                         wr.stats.mean_latency_us());
      LIBERATE_TS_TICK(ts_us, {"deploy.", "dpi.", "netsim.", "stack.",
                               "core."});
    }

    // Anomaly pass: robust z-scores over the merged series. A flagged
    // detector on a rate-suspect wave corroborates drift (the monitor
    // confirms one wave sooner); a flag on a clean wave only annotates.
    const std::pair<const char*, double> series_points[] = {
        {"blocked_rate", wr.stats.blocked_rate()},
        {"diff_rate", wr.stats.differentiated_rate()},
        {"incomplete_rate", wr.stats.incomplete_rate()},
        {"latency_ms", wr.stats.mean_latency_us() / 1000.0},
    };
    for (const auto& [series, x] : series_points) {
      auto det =
          detectors.try_emplace(series, obs::AnomalyDetector(anomaly_cfg))
              .first;
      obs::AnomalyVerdict v = det->second.observe(x);
      if (v.flagged) {
        wr.anomalies.push_back(series);
        LIBERATE_OBS_EVENT(ts_us, "obs", "anomaly", obs::fv("series", series),
                           obs::fv("wave", static_cast<std::uint64_t>(wave)));
      }
    }
    wr.corroborated = !wr.anomalies.empty();

    std::optional<DriftSignal> signal =
        monitor.observe(wr.stats, wr.corroborated);
    wr.signal = signal;

    if (signal) {
      if (policy.state() == DeployState::kDeployed ||
          policy.state() == DeployState::kReDeployed) {
        policy.transition(DeployState::kSuspect, wave, "drift-suspect", ts_us);
      }
      policy.transition(
          DeployState::kReVerifying, wave,
          format("drift:%s", drift_kind_name(signal->kind)), ts_us);

      const int rr0 = runner.rounds();
      const std::uint64_t rb0 = runner.bytes_offered();
      ReadaptOutcome outcome =
          incremental_readapt(*lib_, trace, current, options_.cache);
      report.readapts += 1;
      report.readapt_rounds += runner.rounds() - rr0;
      report.readapt_bytes += runner.bytes_offered() - rb0;
      wr.readapt_path = outcome.path;
      wr.readapt_rounds = runner.rounds() - rr0;
      wr.readapt_ladder = outcome.ladder;
      // Readapt cost as a fleet series point at this wave's boundary. The
      // value comes from the runner's deterministic round counter, so the
      // "fleet."-prefixed telemetry document stays byte-identical across
      // worker counts and match backends.
      if (options_.sample_telemetry) {
        LIBERATE_TS_SAMPLE("fleet.cost.readapt_rounds", -1, ts_us,
                           wr.readapt_rounds);
      }

      if (outcome.path == ReadaptPath::kFullAnalysis) {
        policy.transition(DeployState::kReAnalyzing, wave,
                          "fingerprint-mismatch", ts_us);
        current = make_cached_characterization(options_.environment,
                                               trace.app_name, outcome.report);
      } else if (outcome.path == ReadaptPath::kVerifiedCached) {
        // The re-verified technique becomes the deployed (front) entry so the
        // next readapt's level-1 probe targets it.
        auto it = std::find_if(current.ranking.begin(), current.ranking.end(),
                               [&](const RankedTechnique& r) {
                                 return r.name == outcome.technique;
                               });
        if (it != current.ranking.end()) {
          std::rotate(current.ranking.begin(), it, it + 1);
        }
      }
      policy.transition(DeployState::kReDeployed, wave,
                        readapt_path_name(outcome.path), ts_us);
      technique = outcome.technique;
      swap_technique(technique, current);
      monitor.rebaseline();
      // The new technique's treatment profile is the new normal: re-warm
      // the detectors alongside the drift baseline.
      for (auto& [series, det] : detectors) det.reset();
    } else if (monitor.suspect_streak() > 0) {
      if (policy.state() == DeployState::kDeployed ||
          policy.state() == DeployState::kReDeployed) {
        policy.transition(DeployState::kSuspect, wave, "drift-suspect", ts_us);
      }
    } else {
      if (policy.state() == DeployState::kSuspect) {
        policy.transition(DeployState::kDeployed, wave, "cleared", ts_us);
      } else if (policy.state() == DeployState::kReDeployed) {
        policy.transition(DeployState::kDeployed, wave, "settled", ts_us);
      }
    }

    wr.state_after = policy.state();
    wr.technique_after = technique;
    if (options_.on_wave) options_.on_wave(wr);
    report.waves.push_back(std::move(wr));
  }

  report.technique_final = technique;
  report.transitions = policy.transitions();
  for (const auto& shard : shards_) {
    report.flows_evicted += shard->shim->flows_evicted();
    report.faults_injected += shard->faults_injected();
  }
#if LIBERATE_OBS_LEVEL >= LIBERATE_OBS_LEVEL_METRICS
  // Export only the deterministic "fleet." series: everything under that
  // prefix is sampled on wave boundaries from merged-in-shard-order stats,
  // so the document is byte-identical across worker counts and backends
  // (registry-tick series like util.* are deliberately excluded — pool
  // counters depend on worker count).
  if (options_.sample_telemetry) {
    report.telemetry_json = obs::timeseries_to_json(
        obs::TimeSeriesStore::instance().snapshot("fleet."));
  }
#endif
  return report;
}

std::string FleetReport::summary() const {
  std::string out;
  out += format("FLEET env=%s app=%s shards=%zu waves=%zu flows=%zu\n",
                environment.c_str(), app.c_str(), shards, waves.size(),
                totals.flows);
  out += format("FLEET deploy technique=%s source=%s rounds=%d\n",
                technique_initial.empty() ? "(none)" : technique_initial.c_str(),
                initial_from_cache ? "cache" : "analysis",
                initial_analysis_rounds);
  for (const FleetWaveReport& w : waves) {
    out += format(
        "FLEET wave=%zu flows=%zu diff=%.3f blocked=%.3f incomplete=%.3f "
        "lat_us=%.0f state=%s technique=%s",
        w.wave, w.stats.flows, w.stats.differentiated_rate(),
        w.stats.blocked_rate(), w.stats.incomplete_rate(),
        w.stats.mean_latency_us(), deploy_state_name(w.state_after),
        w.technique_after.empty() ? "(none)" : w.technique_after.c_str());
    if (!w.anomalies.empty()) {
      out += " anomaly=";
      for (std::size_t i = 0; i < w.anomalies.size(); ++i) {
        if (i > 0) out += ",";
        out += w.anomalies[i];
      }
    }
    if (w.signal) {
      out += format(" signal=%s%s", drift_kind_name(w.signal->kind),
                    w.signal->corroborated ? "+corroborated" : "");
    }
    if (w.readapt_path) {
      out += format(" readapt=%s", readapt_path_name(*w.readapt_path));
    }
    out += "\n";
    if (w.readapt_path) {
      // Ladder-stage cost breakdown for the wave's re-characterization:
      // where the verification rounds went, stage by stage.
      out += format("FLEET readapt wave=%zu path=%s rounds=%d ladder=", w.wave,
                    readapt_path_name(*w.readapt_path), w.readapt_rounds);
      for (std::size_t i = 0; i < w.readapt_ladder.size(); ++i) {
        if (i > 0) out += ",";
        out += format("%s:%d", w.readapt_ladder[i].stage.c_str(),
                      w.readapt_ladder[i].rounds);
      }
      out += "\n";
    }
  }
  for (const StateTransition& t : transitions) {
    out += format("FLEET transition %s->%s@%zu %s\n", deploy_state_name(t.from),
                  deploy_state_name(t.to), t.wave, t.reason.c_str());
  }
  out += format(
      "FLEET totals flows=%zu differentiated=%zu blocked=%zu incomplete=%zu "
      "evicted=%llu faults=%llu\n",
      totals.flows, totals.differentiated, totals.blocked, totals.incomplete,
      static_cast<unsigned long long>(flows_evicted),
      static_cast<unsigned long long>(faults_injected));
  out += format(
      "FLEET cost analysis_rounds=%d analysis_bytes=%llu readapts=%zu "
      "readapt_rounds=%d readapt_bytes=%llu\n",
      initial_analysis_rounds,
      static_cast<unsigned long long>(initial_analysis_bytes), readapts,
      readapt_rounds, static_cast<unsigned long long>(readapt_bytes));
  out += format("FLEET final technique=%s\n",
                technique_final.empty() ? "(none)" : technique_final.c_str());
  return out;
}

}  // namespace liberate::deploy
