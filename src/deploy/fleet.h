// fleet.h — the deployment control plane's live-flow engine.
//
// §4.2 describes deployment as wrapping one application's traffic in the
// selected technique. A real deployment is a fleet: thousands of concurrent
// flows across many vantage points, all riding per-flow EvasionShims, all
// sharing one characterization of the classifier. The FleetEngine drives
// that shape inside the simulator:
//
//  * N shards, each a persistent simulated world (client host -> optional
//    FaultyLink -> the profiled middlebox path -> server host) with one
//    long-lived EvasionShim carrying per-flow state across waves;
//  * traffic arrives in waves of concurrent flows, fanned out across the
//    PR 1 thread pool (shards are independent worlds, so waves parallelize
//    without locks) and merged in shard order — byte-identical results for
//    any worker count;
//  * a DriftMonitor compares each merged wave against the deploy-time
//    baseline; confirmed drift walks the AdaptationPolicy state machine and
//    triggers incremental re-characterization on a dedicated probe world;
//  * the re-characterized technique is hot-swapped onto every shard's shim
//    (satellite: owning set_technique makes this safe mid-flow).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "deploy/drift.h"
#include "deploy/fingerprint.h"
#include "deploy/policy.h"
#include "deploy/recharacterize.h"
#include "netsim/faulty.h"

namespace liberate::deploy {

struct FleetWaveReport;

struct FleetOptions {
  /// dpi profile name (make_environment) used for every shard and the probe
  /// world.
  std::string environment = "testbed";
  std::uint64_t seed = 1;

  std::size_t shards = 4;
  std::size_t flows_per_wave = 8;  // per shard
  std::size_t waves = 6;
  /// Thread-pool width for the per-shard wave fan-out; 0 = run shards
  /// serially on the calling thread.
  std::size_t workers = 0;

  /// Adversarial path faults, applied client-side on every shard (transient
  /// chaos that must NOT trigger re-analysis).
  netsim::FaultPolicy faults;

  /// Flow-table cap handed to each shard's shim.
  std::size_t max_flows_per_shim = core::EvasionShim::kDefaultMaxFlows;

  DriftThresholds drift;

  /// Virtual-time spacing between flow starts within a wave.
  netsim::Duration flow_stagger = netsim::milliseconds(5);
  /// Extra virtual seconds granted to a wave beyond the transfer budget.
  double wave_timeout_s = 30.0;

  /// Scripted classifier change: applied to every world (shards + probe) at
  /// the start of wave `change_at_wave`. SIZE_MAX = never.
  std::size_t change_at_wave = static_cast<std::size_t>(-1);
  std::function<void(dpi::Environment&)> classifier_change;

  /// Runtime switch for the telemetry hub sampling (per-wave time-series
  /// points + registry tick). Off = the sampling block is skipped entirely,
  /// which is what bench_telemetry compares against; the anomaly detector
  /// and drift corroboration are NOT affected — they are control-plane
  /// logic, not telemetry.
  bool sample_telemetry = true;

  /// Invoked after each wave's report is fully assembled (stats merged,
  /// drift evaluated, telemetry sampled) — the hook liberate_top uses to
  /// render a live dashboard. Called on the control thread, never from a
  /// shard worker.
  std::function<void(const FleetWaveReport&)> on_wave;

  /// Optional persistent fingerprint cache. A warm entry for
  /// (environment, app) skips the initial full analysis entirely; the cache
  /// is refreshed in place when drift forces a re-analysis.
  ClassifierFingerprintCache* cache = nullptr;
};

/// One wave as the control plane saw it.
struct FleetWaveReport {
  std::size_t wave = 0;
  WaveStats stats;
  /// Pre-merge per-shard stats, in shard order (dashboard fodder).
  std::vector<WaveStats> shard_stats;
  std::optional<DriftSignal> signal;
  /// Series the anomaly detector flagged on this wave (empty = quiet).
  std::vector<std::string> anomalies;
  /// The corroboration bit handed to the DriftMonitor (any detector
  /// flagged). Only shortens confirmation when the wave is also
  /// rate-suspect.
  bool corroborated = false;
  /// Set when this wave's signal triggered re-characterization.
  std::optional<ReadaptPath> readapt_path;
  /// Probe rounds the re-characterization spent this wave (0 = none ran)
  /// and its per-ladder-stage breakdown (sums to readapt_rounds). Plain
  /// data at every obs level — it shapes the FLEET summary.
  int readapt_rounds = 0;
  std::vector<core::ReadaptStageCost> readapt_ladder;
  DeployState state_after = DeployState::kDeployed;
  std::string technique_after;
};

struct FleetReport {
  std::string environment;
  std::string app;
  std::size_t shards = 0;

  std::string technique_initial;
  std::string technique_final;

  std::vector<FleetWaveReport> waves;
  std::vector<StateTransition> transitions;
  WaveStats totals;

  /// Probe-round accounting, for the O(verification) < O(analysis) claim.
  int initial_analysis_rounds = 0;
  std::uint64_t initial_analysis_bytes = 0;
  bool initial_from_cache = false;
  std::size_t readapts = 0;
  int readapt_rounds = 0;
  std::uint64_t readapt_bytes = 0;

  std::uint64_t faults_injected = 0;
  std::uint64_t flows_evicted = 0;

  /// The telemetry hub's "fleet."-prefixed time series as JSON (per-shard
  /// rates, latency, fault/eviction deltas — all sim-clock sampled, so the
  /// document is byte-identical across worker counts and match backends).
  /// Empty when the build is at obs level 0 or sample_telemetry was off.
  std::string telemetry_json;

  /// Deterministic FLEET-prefixed text (one line per wave + transitions +
  /// cost summary) — identical across worker counts and obs levels, diffed
  /// in CI.
  std::string summary() const;
};

/// Runs a fleet session: analyze (or load from cache), deploy on all
/// shards, drive waves, adapt on drift. One engine = one (environment, app)
/// deployment.
class FleetEngine {
 public:
  explicit FleetEngine(FleetOptions options);
  ~FleetEngine();

  FleetEngine(const FleetEngine&) = delete;
  FleetEngine& operator=(const FleetEngine&) = delete;

  FleetReport run(const trace::ApplicationTrace& trace);

 private:
  struct Shard;

  WaveStats run_wave(Shard& shard, const trace::ApplicationTrace& trace,
                     std::size_t wave);
  void swap_technique(const std::string& name,
                      const CachedCharacterization& cached);

  FleetOptions options_;
  std::unique_ptr<dpi::Environment> probe_env_;
  std::unique_ptr<core::Liberate> lib_;
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace liberate::deploy
