// fleet.h — the deployment control plane's live-flow engine.
//
// §4.2 describes deployment as wrapping one application's traffic in the
// selected technique. A real deployment is a fleet: thousands of concurrent
// flows across many vantage points, all riding per-flow EvasionShims, all
// sharing one characterization of the classifier. The FleetEngine drives
// that shape inside the simulator:
//
//  * N shards, each a persistent simulated world (client host -> optional
//    FaultyLink -> the profiled middlebox path -> server host) with one
//    long-lived EvasionShim carrying per-flow state across waves;
//  * traffic arrives in waves of concurrent flows, fanned out across the
//    PR 1 thread pool (shards are independent worlds, so waves parallelize
//    without locks) and merged in shard order — byte-identical results for
//    any worker count;
//  * a DriftMonitor compares each merged wave against the deploy-time
//    baseline; confirmed drift walks the AdaptationPolicy state machine and
//    triggers incremental re-characterization on a dedicated probe world;
//  * the re-characterized technique is hot-swapped onto every shard's shim
//    (satellite: owning set_technique makes this safe mid-flow).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "deploy/delta.h"
#include "deploy/drift.h"
#include "deploy/fingerprint.h"
#include "deploy/policy.h"
#include "deploy/recharacterize.h"
#include "netsim/faulty.h"
#include "util/bytes.h"

namespace liberate::deploy {

struct FleetWaveReport;

/// How shard wave results reach the control thread's merge point.
enum class MergeMode {
  /// Each shard publishes a sparse snapshot delta (only the cumulative
  /// counters that moved); the control thread reconstructs per-wave stats
  /// with a DeltaMerger. The production path.
  kDelta,
  /// Each shard ships its full cumulative counter block every wave. Same
  /// reconstruction, dense payload — the differential baseline the delta
  /// path must match byte-for-byte.
  kFull,
};

/// How a shard turns a wave of flows into packets.
enum class FlowMode {
  /// One stack::TcpConnection per flow (full endpoint fidelity). Right up
  /// to thousands of concurrent flows.
  kFullStack,
  /// Crafted SYN/payload/RST datagrams through the shim (flow_driver.h).
  /// Synthetic endpoints, real middlebox path — scales to a million
  /// concurrent flows per process.
  kPacketLevel,
};

struct FleetOptions {
  /// dpi profile name (make_environment) used for every shard and the probe
  /// world.
  std::string environment = "testbed";
  std::uint64_t seed = 1;

  std::size_t shards = 4;
  /// Mean flows per shard per wave. The wave's total (flows_per_wave *
  /// shards) is admitted shard-affinely: each global flow id hashes to one
  /// shard at admission and never migrates, so per-shard counts vary around
  /// the mean (and can be zero) while the fleet total is exact.
  std::size_t flows_per_wave = 8;
  std::size_t waves = 6;

  MergeMode merge_mode = MergeMode::kDelta;
  FlowMode flow_mode = FlowMode::kFullStack;
  /// Packet-level mode: max payload bytes per crafted segment.
  std::size_t packet_segment_bytes = 512;
  /// Packet-level mode: every Nth flow uploads this payload instead of the
  /// trace's (mixed matching / non-matching traffic). 0 = all trace flows.
  Bytes packet_alt_payload;
  std::size_t packet_alt_every = 0;
  /// Thread-pool width for the per-shard wave fan-out; 0 = run shards
  /// serially on the calling thread.
  std::size_t workers = 0;

  /// Adversarial path faults, applied client-side on every shard (transient
  /// chaos that must NOT trigger re-analysis).
  netsim::FaultPolicy faults;

  /// Flow-table cap handed to each shard's shim.
  std::size_t max_flows_per_shim = core::EvasionShim::kDefaultMaxFlows;

  DriftThresholds drift;

  /// Virtual-time spacing between flow starts within a wave.
  netsim::Duration flow_stagger = netsim::milliseconds(5);
  /// Extra virtual seconds granted to a wave beyond the transfer budget.
  double wave_timeout_s = 30.0;

  /// Scripted classifier change: applied to every world (shards + probe) at
  /// the start of wave `change_at_wave`. SIZE_MAX = never.
  std::size_t change_at_wave = static_cast<std::size_t>(-1);
  std::function<void(dpi::Environment&)> classifier_change;

  /// Runtime switch for the telemetry hub sampling (per-wave time-series
  /// points + registry tick). Off = the sampling block is skipped entirely,
  /// which is what bench_telemetry compares against; the anomaly detector
  /// and drift corroboration are NOT affected — they are control-plane
  /// logic, not telemetry.
  bool sample_telemetry = true;

  /// Invoked after each wave's report is fully assembled (stats merged,
  /// drift evaluated, telemetry sampled) — the hook liberate_top uses to
  /// render a live dashboard. Called on the control thread, never from a
  /// shard worker.
  std::function<void(const FleetWaveReport&)> on_wave;

  /// Optional persistent fingerprint cache. A warm entry for
  /// (environment, app) skips the initial full analysis entirely; the cache
  /// is refreshed in place when drift forces a re-analysis.
  ClassifierFingerprintCache* cache = nullptr;

  /// Run the ambiguity probe catalog (src/fingerprint) against the live
  /// classifier at deploy time and on every re-characterization. Enables
  /// two ladders the cache alone cannot offer: a warm deploy that falls
  /// back from an exact (environment, app) hit to the nearest ambiguity
  /// fingerprint, and incremental_readapt()'s fingerprint-verify stage.
  bool ambiguity_probes = false;
  /// Maximum ambiguity_distance() a nearest-fingerprint match may have.
  std::size_t ambiguity_max_distance = 0;
};

/// One wave as the control plane saw it.
struct FleetWaveReport {
  std::size_t wave = 0;
  WaveStats stats;
  /// Pre-merge per-shard stats, in shard order (dashboard fodder).
  std::vector<WaveStats> shard_stats;
  std::optional<DriftSignal> signal;
  /// Series the anomaly detector flagged on this wave (empty = quiet).
  std::vector<std::string> anomalies;
  /// The corroboration bit handed to the DriftMonitor (any detector
  /// flagged). Only shortens confirmation when the wave is also
  /// rate-suspect.
  bool corroborated = false;
  /// Set when this wave's signal triggered re-characterization.
  std::optional<ReadaptPath> readapt_path;
  /// Probe rounds the re-characterization spent this wave (0 = none ran)
  /// and its per-ladder-stage breakdown (sums to readapt_rounds). Plain
  /// data at every obs level — it shapes the FLEET summary.
  int readapt_rounds = 0;
  std::vector<core::ReadaptStageCost> readapt_ladder;
  /// Ambiguity probe flows the readapt's fingerprint-verify stage spent
  /// (isolated worlds — never replay rounds).
  std::size_t readapt_probe_flows = 0;
  DeployState state_after = DeployState::kDeployed;
  std::string technique_after;
};

struct FleetReport {
  std::string environment;
  std::string app;
  std::size_t shards = 0;

  std::string technique_initial;
  std::string technique_final;

  std::vector<FleetWaveReport> waves;
  std::vector<StateTransition> transitions;
  WaveStats totals;

  /// Probe-round accounting, for the O(verification) < O(analysis) claim.
  int initial_analysis_rounds = 0;
  std::uint64_t initial_analysis_bytes = 0;
  bool initial_from_cache = false;
  std::size_t readapts = 0;
  int readapt_rounds = 0;
  std::uint64_t readapt_bytes = 0;

  /// Active ambiguity fingerprint (set when ambiguity_probes ran): the
  /// latest probed digest, the cache entry it matched ("" = none), and how
  /// the deployment got its knowledge — "exact" (environment+app cache
  /// hit), "nearest" (nearest-fingerprint warm match), or "probed" (digest
  /// taken but knowledge came from analysis).
  std::string fingerprint_digest;
  std::size_t fingerprint_dims = 0;
  std::string fingerprint_profile;
  std::string fingerprint_source;
  std::size_t fingerprint_probe_flows = 0;

  std::uint64_t faults_injected = 0;
  std::uint64_t flows_evicted = 0;

  /// Flows still resident in the shards' shim flow tables when the run
  /// ended — the "concurrent flows" a scaling soak actually held. (Also
  /// diagnostic-only, for the same summary() byte-identity reason.)
  std::uint64_t flows_resident = 0;

  /// Snapshot-delta accounting: counter entries actually shipped to the
  /// merge point vs. what dense full-snapshot merging would have shipped.
  /// (Diagnostic only — deliberately not part of summary(), which must be
  /// byte-identical across merge modes.)
  std::uint64_t delta_entries_shipped = 0;
  std::uint64_t delta_entries_full = 0;

  /// The telemetry hub's "fleet."-prefixed time series as JSON (per-shard
  /// rates, latency, fault/eviction deltas — all sim-clock sampled, so the
  /// document is byte-identical across worker counts and match backends).
  /// Empty when the build is at obs level 0 or sample_telemetry was off.
  std::string telemetry_json;

  /// Deterministic FLEET-prefixed text (one line per wave + transitions +
  /// cost summary) — identical across worker counts and obs levels, diffed
  /// in CI.
  std::string summary() const;
};

/// Runs a fleet session: analyze (or load from cache), deploy on all
/// shards, drive waves, adapt on drift. One engine = one (environment, app)
/// deployment.
class FleetEngine {
 public:
  explicit FleetEngine(FleetOptions options);
  ~FleetEngine();

  FleetEngine(const FleetEngine&) = delete;
  FleetEngine& operator=(const FleetEngine&) = delete;

  FleetReport run(const trace::ApplicationTrace& trace);

 private:
  struct Shard;

  /// Drive one shard's wave (`admitted` flows) and return its wave-boundary
  /// counter publish: sparse in kDelta mode, the full block in kFull mode.
  /// Runs on a worker thread; touches only the shard's own state.
  FleetDelta run_wave(Shard& shard, const trace::ApplicationTrace& trace,
                      std::size_t wave, std::size_t admitted,
                      BytesView packet_payload);
  WaveStats run_wave_full_stack(Shard& shard,
                                const trace::ApplicationTrace& trace,
                                std::size_t admitted);
  void swap_technique(const std::string& name,
                      const CachedCharacterization& cached);

  FleetOptions options_;
  std::unique_ptr<dpi::Environment> probe_env_;
  std::unique_ptr<core::Liberate> lib_;
  std::vector<std::unique_ptr<Shard>> shards_;
  /// Scripted classifier changes already applied to the live worlds, in
  /// application order. Ambiguity probe worlds are built fresh per script,
  /// so each one re-applies this epoch log to stay in sync with the fleet.
  std::vector<std::function<void(dpi::Environment&)>> applied_changes_;
};

}  // namespace liberate::deploy
