#include "deploy/flow_driver.h"

#include <algorithm>

#include "netsim/checksum.h"
#include "netsim/network.h"
#include "netsim/packet.h"
#include "obs/obs.h"
#include "stack/ip_reassembly.h"

namespace liberate::deploy {

using netsim::FiveTuple;
using netsim::Ipv4Header;
using netsim::TcpFlags;
using netsim::TcpHeader;

namespace {

/// Crafted flows all start at ISN 0: the first payload byte is seq 1, so an
/// upload offset is just seq - 1. Inert injected packets with invalid
/// sequence numbers land outside [1, 1 + upload) and are rejected by the
/// server sink's window check, like a real receive window would.
constexpr std::uint32_t kIsn = 0;

/// Drain the event loop every this many crafted sends. Each in-flight
/// datagram holds ~hop-count scheduled events; batching keeps the queue
/// bounded at fleet scale without serializing every packet's full walk.
/// The batch must also stay under half the default in-path reassembly cap
/// (ReassemblyLimits::max_buffers = 1024): a fragmenting technique can leave
/// one delayed fragment in flight per send, and a reassembling middlebox
/// (e.g. the NormalizerElement countermeasure) evicts — i.e. silently drops
/// — whole uploads once its buffer cache overflows.
constexpr std::size_t kDrainBatch = 512;

struct RawTcp {
  std::uint32_t src_ip = 0;
  std::uint32_t dst_ip = 0;
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  std::uint32_t seq = 0;
  std::uint8_t flags = 0;
  std::uint16_t payload_len = 0;
  // Transport segment bounds (for checksum validation).
  std::size_t tcp_off = 0;
  std::size_t tcp_len = 0;
};

std::uint16_t rd16(const Bytes& b, std::size_t i) {
  return static_cast<std::uint16_t>((b[i] << 8) | b[i + 1]);
}
std::uint32_t rd32(const Bytes& b, std::size_t i) {
  return (static_cast<std::uint32_t>(b[i]) << 24) |
         (static_cast<std::uint32_t>(b[i + 1]) << 16) |
         (static_cast<std::uint32_t>(b[i + 2]) << 8) | b[i + 3];
}

/// Minimal, allocation-free TCP view: enough to key the flow and bound the
/// payload. Returns false for anything that is not a plausible IPv4 TCP
/// datagram (ICMP errors from TTL-limited inert packets, fragments, short
/// or lying headers).
bool parse_raw_tcp(const Bytes& b, RawTcp* out) {
  if (b.size() < 20) return false;
  if ((b[0] >> 4) != 4) return false;
  const std::size_t ihl = static_cast<std::size_t>(b[0] & 0x0F) * 4;
  if (ihl < 20 || b.size() < ihl + 20) return false;
  if (b[9] != 6) return false;
  const std::uint16_t frag = rd16(b, 6);
  if ((frag & 0x1FFF) != 0) return false;  // non-first fragment: no ports
  std::size_t total = rd16(b, 2);
  // Tolerate a lying Total Length (inert "longer than payload" rows) by
  // clamping to the buffer; the checksum check rejects corrupt payloads.
  total = std::min(total, b.size());
  if (total < ihl + 20) return false;
  const std::size_t doff =
      static_cast<std::size_t>(b[ihl + 12] >> 4) * 4;
  if (doff < 20 || ihl + doff > total) return false;
  out->src_ip = rd32(b, 12);
  out->dst_ip = rd32(b, 16);
  out->src_port = rd16(b, ihl);
  out->dst_port = rd16(b, ihl + 2);
  out->seq = rd32(b, ihl + 4);
  out->flags = b[ihl + 13];
  out->payload_len = static_cast<std::uint16_t>(total - ihl - doff);
  out->tcp_off = ihl;
  out->tcp_len = total - ihl;
  return true;
}

}  // namespace

/// Server-side endpoint: accepts in-window, checksum-valid upload bytes per
/// flow and stamps completion. Everything else (inert injections, control
/// traffic, stragglers from torn-down waves) falls through silently.
struct PacketFlowDriver::ServerSink : netsim::HostIface {
  PacketFlowDriver* driver = nullptr;
  /// Fragmenting techniques (split/ip-fragmentation, reorder variants) chop
  /// the matching payload packet into pieces a real endpoint stack would
  /// reassemble — so this sink does too. Non-fragments pass straight through.
  /// The buffer cap is sized for the driver's batched sends: up to
  /// kDrainBatch flows can each have a delayed fragment in flight before the
  /// loop drains, and an evicted buffer would read as a lost upload.
  stack::IpReassembler reassembler{netsim::seconds(30),
                                   {.max_buffers = 2 * kDrainBatch}};

  void receive(Bytes datagram) override {
    const netsim::TimePoint now = driver->env_.loop.now();
    auto whole = reassembler.push(BytesView(datagram), now);
    reassembler.expire(now);
    if (!whole) return;  // buffered fragment: datagram still incomplete
    datagram = std::move(*whole);
    RawTcp t;
    if (!parse_raw_tcp(datagram, &t)) return;
    if (t.payload_len == 0) return;
    PacketFlowDriver& d = *driver;
    if (t.src_ip < d.config_.client_ip_base) return;
    const std::uint64_t serial =
        static_cast<std::uint64_t>(t.src_ip - d.config_.client_ip_base) *
            kPortsPerIp +
        (t.src_port - kFirstPort);
    if (serial < d.wave_first_ || serial - d.wave_first_ >= d.slots_.size()) {
      return;  // straggler from an earlier wave
    }
    const std::size_t idx = static_cast<std::size_t>(serial - d.wave_first_);
    const std::uint32_t expected = d.expected_bytes(idx);
    // Window check: reject invalid-seq inert packets a real stack would.
    const std::uint32_t off = t.seq - (kIsn + 1);
    if (off >= expected ||
        static_cast<std::uint64_t>(off) + t.payload_len > expected) {
      return;
    }
    // Checksum check: reject corrupted-checksum inert packets. A valid
    // transport checksum sums (with itself included) to zero.
    if (netsim::transport_checksum(
            t.src_ip, t.dst_ip, 6,
            BytesView(datagram.data() + t.tcp_off, t.tcp_len)) != 0) {
      return;
    }
    std::uint32_t& rx = d.slots_.at<2>(idx);
    std::uint8_t& flags = d.slots_.at<3>(idx);
    rx += t.payload_len;
    if ((flags & kCompleted) == 0 && rx >= expected) {
      flags |= kCompleted;
      d.slots_.at<1>(idx) =
          static_cast<std::uint64_t>(d.env_.loop.now());
    }
  }
};

/// Client-side endpoint: the only signal it needs is "did the path RST this
/// flow" (middlebox block action or endpoint escalation).
struct PacketFlowDriver::ClientSink : netsim::HostIface {
  PacketFlowDriver* driver = nullptr;

  void receive(Bytes datagram) override {
    RawTcp t;
    if (!parse_raw_tcp(datagram, &t)) return;
    if ((t.flags & TcpFlags::kRst) == 0) return;
    PacketFlowDriver& d = *driver;
    if (t.dst_ip < d.config_.client_ip_base) return;
    const std::uint64_t serial =
        static_cast<std::uint64_t>(t.dst_ip - d.config_.client_ip_base) *
            kPortsPerIp +
        (t.dst_port - kFirstPort);
    if (serial < d.wave_first_ || serial - d.wave_first_ >= d.slots_.size()) {
      return;
    }
    d.slots_.at<3>(static_cast<std::size_t>(serial - d.wave_first_)) |=
        kReset;
  }
};

PacketFlowDriver::PacketFlowDriver(dpi::Environment& env,
                                   core::EvasionShim& shim,
                                   PacketFlowConfig config)
    : env_(env), shim_(shim), config_(config) {
  client_sink_ = std::make_unique<ClientSink>();
  client_sink_->driver = this;
  server_sink_ = std::make_unique<ServerSink>();
  server_sink_->driver = this;
  env_.net.attach_client(client_sink_.get());
  env_.net.attach_server(server_sink_.get());
}

PacketFlowDriver::~PacketFlowDriver() {
  env_.net.attach_client(nullptr);
  env_.net.attach_server(nullptr);
}

FiveTuple PacketFlowDriver::tuple_of(std::uint64_t serial) const {
  FiveTuple t;
  t.src_ip =
      config_.client_ip_base + static_cast<std::uint32_t>(serial / kPortsPerIp);
  t.src_port = static_cast<std::uint16_t>(kFirstPort + serial % kPortsPerIp);
  t.dst_ip = config_.server_ip;
  t.dst_port = config_.server_port;
  t.protocol = 6;
  return t;
}

std::uint32_t PacketFlowDriver::expected_bytes(std::size_t index) const {
  const bool alt =
      wave_alt_every_ != 0 && (index + 1) % wave_alt_every_ == 0;
  return alt ? wave_alt_bytes_ : wave_total_bytes_;
}

WaveStats PacketFlowDriver::run_wave(std::size_t count, BytesView payload,
                                     BytesView alt_payload,
                                     std::size_t alt_every) {
  netsim::EventLoop& loop = env_.loop;
  slots_.clear();
  slots_.resize(count);
  wave_first_ = serial_;
  serial_ += count;
  wave_total_bytes_ = static_cast<std::uint32_t>(payload.size());
  wave_alt_bytes_ = static_cast<std::uint32_t>(alt_payload.size());
  wave_alt_every_ = alt_every;

  auto payload_of = [&](std::size_t index) -> BytesView {
    const bool alt = alt_every != 0 && (index + 1) % alt_every == 0;
    return alt ? alt_payload : payload;
  };
  auto send_segment = [&](std::size_t index, std::uint8_t flags,
                          std::uint32_t seq, BytesView data) {
    const FiveTuple t = tuple_of(wave_first_ + index);
    TcpHeader h;
    h.src_port = t.src_port;
    h.dst_port = t.dst_port;
    h.seq = seq;
    h.flags = flags;
    Ipv4Header ip;
    ip.src = t.src_ip;
    ip.dst = t.dst_ip;
    shim_.send(netsim::make_tcp_datagram(ip, h, data));
  };

  // Phase 1: open every flow. The SYN creates both the shim's and the
  // classifier's per-flow state; after this loop the whole wave is
  // concurrently tracked.
  std::size_t sent = 0;
  for (std::size_t i = 0; i < count; ++i) {
    slots_.at<0>(i) = static_cast<std::uint64_t>(loop.now());
    send_segment(i, TcpFlags::kSyn, kIsn, {});
    if (++sent % kDrainBatch == 0) loop.run_until_idle();
  }
  loop.run_until_idle();

  // Phase 2: payload segments, round-robin across the wave so every flow
  // is mid-stream at once (segment k of every flow goes out before segment
  // k+1 of any).
  const std::size_t seg = config_.segment_bytes == 0 ? 512
                                                     : config_.segment_bytes;
  const std::size_t max_len = std::max(payload.size(), alt_payload.size());
  const std::size_t max_segs = (max_len + seg - 1) / seg;
  for (std::size_t s = 0; s < max_segs; ++s) {
    const std::size_t off = s * seg;
    for (std::size_t i = 0; i < count; ++i) {
      BytesView p = payload_of(i);
      if (off >= p.size()) continue;
      const std::size_t len = std::min(seg, p.size() - off);
      send_segment(i, TcpFlags::kAck | TcpFlags::kPsh,
                   kIsn + 1 + static_cast<std::uint32_t>(off),
                   BytesView(p.data() + off, len));
      if (++sent % kDrainBatch == 0) loop.run_until_idle();
    }
  }
  // Settle: throttle queues and technique-delayed injections drain here, so
  // the verdict sweep sees the wave's final state.
  loop.run_until_idle();

  // Phase 3: verdicts, before teardown flushes classifier state — the same
  // ordering the full-stack wave loop uses.
  WaveStats stats;
  stats.flows = count;
  const bool direct =
      env_.signal == dpi::Environment::Signal::kDirect && env_.dpi != nullptr;
  for (std::size_t i = 0; i < count; ++i) {
    const std::uint8_t flags = slots_.at<3>(i);
    const bool reset = (flags & kReset) != 0;
    const bool done = reset || slots_.at<2>(i) >= expected_bytes(i);
    if (!(done && !reset)) ++stats.incomplete;
    if (reset) ++stats.blocked;
    if ((flags & kCompleted) != 0 && !reset) {
      const std::uint64_t started = slots_.at<0>(i);
      const std::uint64_t completed = slots_.at<1>(i);
      if (completed >= started) {
        stats.latency_us_sum += completed - started;
        ++stats.latency_samples;
        LIBERATE_HDR_RECORD("fleet.flow_latency_us", completed - started);
      }
    }
    bool differentiated = false;
    if (direct) {
      auto klass = env_.dpi->engine().active_class_now(
          tuple_of(wave_first_ + i), loop.now());
      if (klass) {
        const auto& actions = env_.dpi->config().actions;
        auto it = actions.find(*klass);
        differentiated = it != actions.end() &&
                         (it->second.block || it->second.zero_rate ||
                          it->second.throttle_bytes_per_sec.has_value());
      }
    } else {
      differentiated = reset || !done;
    }
    if (differentiated) ++stats.differentiated;
  }

  // Phase 4: teardown. Bare RSTs travel the real path: the shim passes
  // them untouched and the DPI middlebox flushes its flow state, bounding
  // classifier memory to one wave's concurrency. The shim's own FlowTable
  // intentionally keeps the entries — carrying the full concurrent-flow
  // population across waves is the point of the LRU cap.
  for (std::size_t i = 0; i < count; ++i) {
    send_segment(i, TcpFlags::kRst,
                 kIsn + 1 + static_cast<std::uint32_t>(payload_of(i).size()),
                 {});
    if (++sent % kDrainBatch == 0) loop.run_until_idle();
  }
  loop.run_until_idle();

  LIBERATE_COUNTER_ADD("deploy.fleet.flows", stats.flows);
  LIBERATE_COUNTER_ADD("deploy.fleet.flows_differentiated",
                       stats.differentiated);
  return stats;
}

}  // namespace liberate::deploy
