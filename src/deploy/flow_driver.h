// flow_driver.h — packet-level wave driver for fleet-scale flow counts.
//
// The full-stack wave path (stack::Host + TcpConnection per flow) is the
// right fidelity for hundreds of flows; at a million concurrent flows the
// per-connection endpoint state (send/receive buffers, retransmit queues,
// callbacks) dominates memory and the event loop drowns in per-connection
// timers. The PacketFlowDriver replaces the endpoint stack with crafted
// packets: it serializes each flow's SYN, payload segments, and teardown
// RST directly (netsim/tcp.h codecs), pushes them through the shard's
// EvasionShim — so the active technique mutates them exactly as it would
// real stack traffic — and accounts flow outcomes in struct-of-arrays
// columns (util/soa.h) keyed by a contiguous per-shard flow serial. The
// middlebox path, fault links, and DPI classifier see bona fide traffic;
// only the endpoints are synthetic.
//
// Outcome semantics mirror the full-stack wave loop:
//   * blocked    — the client side observed an injected RST for the flow;
//   * completed  — the server side accepted the full upload (payload bytes
//                  that pass the TCP checksum; inert injected packets are
//                  dropped here exactly as a real OS would drop them);
//   * incomplete — neither, by the time the wave's event horizon drains;
//   * differentiated — the environment's direct signal (classifier verdict
//                  + action), read per flow before teardown.
//
// Teardown RSTs are real packets through the shim (which passes bare RSTs
// on tracked flows untouched): the DPI middlebox flushes its per-flow
// state, so classifier memory is bounded by one wave's concurrency while
// the shim's FlowTable keeps carrying the full concurrent-flow population.
#pragma once

#include <cstdint>
#include <memory>

#include "core/evasion/shim.h"
#include "deploy/drift.h"
#include "dpi/profiles.h"
#include "util/soa.h"

namespace liberate::deploy {

struct PacketFlowConfig {
  /// Client address block: flow serial s maps to
  /// (client_ip_base + s / kPortsPerIp, kFirstPort + s % kPortsPerIp).
  /// Serials are persistent per driver, so tuples never repeat across
  /// waves — the classifier's post-RST result cache can never leak a stale
  /// verdict into a new flow.
  std::uint32_t client_ip_base = 0x0a010000;  // 10.1.0.0
  std::uint32_t server_ip = 0;
  std::uint16_t server_port = 0;
  /// Maximum payload bytes per crafted segment.
  std::size_t segment_bytes = 512;
};

class PacketFlowDriver {
 public:
  static constexpr std::uint32_t kPortsPerIp = 16384;
  static constexpr std::uint16_t kFirstPort = 1024;

  /// Attaches raw client/server sinks to the environment's network (the
  /// shard must not have stack::Hosts attached). The shim is the shard's
  /// long-lived EvasionShim wrapping env.net.client_port().
  PacketFlowDriver(dpi::Environment& env, core::EvasionShim& shim,
                   PacketFlowConfig config);
  ~PacketFlowDriver();

  PacketFlowDriver(const PacketFlowDriver&) = delete;
  PacketFlowDriver& operator=(const PacketFlowDriver&) = delete;

  /// Drive `count` concurrent flows, each uploading `payload`. All flows
  /// open (SYN), then payload segments interleave round-robin across the
  /// whole wave — peak concurrency equals the wave size — then verdicts
  /// are collected and every flow is torn down with an RST. When
  /// `alt_every` is nonzero, every alt_every-th flow uploads `alt_payload`
  /// instead (mixed matching / non-matching traffic).
  WaveStats run_wave(std::size_t count, BytesView payload,
                     BytesView alt_payload = {}, std::size_t alt_every = 0);

  /// Flows driven since construction (== the persistent serial counter).
  std::uint64_t flows_driven() const { return serial_; }

 private:
  struct ClientSink;
  struct ServerSink;

  static constexpr std::uint8_t kReset = 1u << 0;
  static constexpr std::uint8_t kCompleted = 1u << 1;

  netsim::FiveTuple tuple_of(std::uint64_t serial) const;
  /// Upload size the flow at `index` is expected to deliver this wave.
  std::uint32_t expected_bytes(std::size_t index) const;

  dpi::Environment& env_;
  core::EvasionShim& shim_;
  PacketFlowConfig config_;
  std::unique_ptr<ClientSink> client_sink_;
  std::unique_ptr<ServerSink> server_sink_;

  /// Per-flow wave state, struct-of-arrays so the verdict sweep walks
  /// contiguous memory: started_at, completed_at (sim us), accepted upload
  /// bytes, flags (bit 0 reset, bit 1 completed).
  SoaColumns<std::uint64_t, std::uint64_t, std::uint32_t, std::uint8_t>
      slots_;
  std::uint64_t wave_first_ = 0;  // serial of this wave's flow 0
  std::uint32_t wave_total_bytes_ = 0;
  std::uint32_t wave_alt_bytes_ = 0;
  std::size_t wave_alt_every_ = 0;

  std::uint64_t serial_ = 0;
};

}  // namespace liberate::deploy
