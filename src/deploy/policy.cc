#include "deploy/policy.h"

#include "obs/obs.h"
#include "util/strings.h"

namespace liberate::deploy {

namespace {

#if LIBERATE_OBS_LEVEL >= LIBERATE_OBS_LEVEL_FULL
/// Synthetic flow key for control-plane provenance: the adaptation ledger is
/// per deployment, not per packet flow. 10.0.0.1 is the fleet's client IP;
/// port 0/proto 0 cannot collide with a real five-tuple's ledger.
obs::prov::FlowKey control_plane_flow() {
  obs::prov::FlowKey key;
  key.ip_a = 0x0a000001;
  key.valid = true;
  return key;
}
#endif

}  // namespace

const char* deploy_state_name(DeployState state) {
  switch (state) {
    case DeployState::kDeployed:
      return "deployed";
    case DeployState::kSuspect:
      return "suspect";
    case DeployState::kReVerifying:
      return "re-verifying";
    case DeployState::kReAnalyzing:
      return "re-analyzing";
    case DeployState::kReDeployed:
      return "re-deployed";
  }
  return "unknown";
}

bool AdaptationPolicy::legal(DeployState from, DeployState to) {
  using S = DeployState;
  switch (from) {
    case S::kDeployed:
      return to == S::kSuspect;
    case S::kSuspect:
      // Cleared (false alarm) or confirmed (start verification probes).
      return to == S::kDeployed || to == S::kReVerifying;
    case S::kReVerifying:
      // Fingerprint held (cached technique re-deployed) or mismatched
      // (full re-analysis).
      return to == S::kReDeployed || to == S::kReAnalyzing;
    case S::kReAnalyzing:
      return to == S::kReDeployed;
    case S::kReDeployed:
      // Settled back to normal operation, or drifting again already.
      return to == S::kDeployed || to == S::kSuspect;
  }
  return false;
}

bool AdaptationPolicy::transition(DeployState to, std::size_t wave,
                                  const std::string& reason,
                                  std::uint64_t ts_us) {
  if (!legal(state_, to)) return false;
  StateTransition t;
  t.from = state_;
  t.to = to;
  t.wave = wave;
  t.reason = reason;
  LIBERATE_OBS_EVENT(ts_us, "deploy", "state_transition",
                     obs::fv("from", deploy_state_name(t.from)),
                     obs::fv("to", deploy_state_name(t.to)),
                     obs::fv("wave", static_cast<std::uint64_t>(wave)),
                     obs::fv("reason", reason));
  LIBERATE_PROV_NOTE(ts_us, control_plane_flow(), "deploy-transition",
                     obs::fv("from", deploy_state_name(t.from)),
                     obs::fv("to", deploy_state_name(t.to)),
                     obs::fv("wave", static_cast<std::uint64_t>(wave)),
                     obs::fv("reason", reason));
  LIBERATE_COUNTER_ADD("deploy.policy.transitions", 1);
  state_ = to;
  transitions_.push_back(std::move(t));
  return true;
}

std::string AdaptationPolicy::describe() const {
  std::string out;
  for (const StateTransition& t : transitions_) {
    out += format("%s->%s@%zu %s\n", deploy_state_name(t.from),
                  deploy_state_name(t.to), t.wave, t.reason.c_str());
  }
  return out;
}

}  // namespace liberate::deploy
