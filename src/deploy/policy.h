// policy.h — the adaptation state machine of a deployed evasion.
//
// A deployment's lifecycle under drift (§4.2 runtime adaptation, grown to
// fleet scale):
//
//     deployed ──suspect wave──▶ suspect ──confirmed──▶ re-verifying
//        ▲  ▲                      │                     │        │
//        │  └──────cleared─────────┘        cheap path OK│        │fingerprint
//        │                                               ▼        ▼ mismatch
//        └────────settled───── re-deployed ◀──────── (swap) ◀─ re-analyzing
//
// Every transition is validated against the legal edge set, appended to the
// local transition log, and mirrored into the PR 2 event log and the PR 3
// provenance ledger under a synthetic control-plane flow key — so `why did
// the fleet re-deploy at wave 11?` is answerable from the flight recorder
// alone.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace liberate::deploy {

enum class DeployState {
  kDeployed,     // technique active, treatment at baseline
  kSuspect,      // drift monitor counting suspect waves
  kReVerifying,  // running targeted fingerprint-verification probes
  kReAnalyzing,  // fingerprint mismatch: full analyze() in progress
  kReDeployed,   // new/confirmed technique swapped onto live shims
};

const char* deploy_state_name(DeployState state);

struct StateTransition {
  DeployState from = DeployState::kDeployed;
  DeployState to = DeployState::kDeployed;
  std::size_t wave = 0;
  std::string reason;
};

class AdaptationPolicy {
 public:
  DeployState state() const { return state_; }
  const std::vector<StateTransition>& transitions() const {
    return transitions_;
  }

  /// Is `from -> to` a legal edge of the state machine?
  static bool legal(DeployState from, DeployState to);

  /// Take the edge: validates legality, records the transition, and mirrors
  /// it into the event log / provenance ledger (`ts_us` = fleet virtual
  /// time). Returns false (and changes nothing) on an illegal edge.
  bool transition(DeployState to, std::size_t wave, const std::string& reason,
                  std::uint64_t ts_us);

  /// Render the transition log as one deterministic line per edge
  /// ("deployed->suspect@3 drift-suspect"), for goldens and CI diffs.
  std::string describe() const;

 private:
  DeployState state_ = DeployState::kDeployed;
  std::vector<StateTransition> transitions_;
};

}  // namespace liberate::deploy
