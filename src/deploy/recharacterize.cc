#include "deploy/recharacterize.h"

#include "core/blinding.h"
#include "obs/obs.h"

namespace liberate::deploy {

namespace {

/// Rebuild a SessionReport from cached knowledge (the cheap paths never run
/// detection/characterization, but downstream consumers — deploy(),
/// reporting — expect the usual shape).
core::SessionReport report_from_cached(const CachedCharacterization& cached,
                                       const std::string& technique) {
  core::SessionReport report;
  report.detection.differentiation = true;
  report.detection.content_based = true;
  report.ran_characterization = true;
  report.characterization.fields = cached.fields;
  report.characterization.position_sensitive = cached.position_sensitive;
  report.characterization.inspects_all_packets = cached.inspects_all_packets;
  report.characterization.port_sensitive = cached.port_sensitive;
  report.characterization.packet_limit = cached.packet_limit;
  report.characterization.middlebox_hops = cached.middlebox_hops;
  if (!technique.empty()) report.selected_technique = technique;
  return report;
}

}  // namespace

const char* readapt_path_name(ReadaptPath path) {
  switch (path) {
    case ReadaptPath::kStillWorking:
      return "still-working";
    case ReadaptPath::kPolicyGone:
      return "policy-gone";
    case ReadaptPath::kFingerprintMatched:
      return "fingerprint-matched";
    case ReadaptPath::kVerifiedCached:
      return "verified-cached";
    case ReadaptPath::kFullAnalysis:
      return "full-analysis";
  }
  return "unknown";
}

ReadaptOutcome incremental_readapt(core::Liberate& lib,
                                   const trace::ApplicationTrace& trace,
                                   const CachedCharacterization& cached,
                                   ClassifierFingerprintCache* cache,
                                   const ReadaptHooks* hooks) {
  LIBERATE_COST_SCOPE(kReadapt);
  core::ReplayRunner& runner = lib.runner();
  const int rounds0 = runner.rounds();
  const std::uint64_t bytes0 = runner.bytes_offered();
  const double t0 = runner.virtual_seconds_elapsed();

  ReadaptOutcome result;
  // Stage intervals partition [rounds0, rounds()], so the ladder breakdown
  // always sums to the report's total_rounds.
  int stage_start = rounds0;
  auto end_stage = [&](const char* stage) {
    result.ladder.push_back({stage, runner.rounds() - stage_start});
    stage_start = runner.rounds();
  };
  const core::TechniqueContext ctx = cached.context();
  // Fresh server ports per probe unless the classifier is port-bound
  // (mirrors evaluation: avoids GFC-style endpoint escalation polluting
  // the verdicts).
  std::uint16_t next_port = 29000;
  auto probe = [&](const trace::ApplicationTrace& t,
                   core::Technique* technique) {
    LIBERATE_COST_TICK(kProbes, 1);
    core::ReplayOptions opts;
    opts.technique = technique;
    opts.context = ctx;
    if (!cached.port_sensitive) opts.server_port_override = next_port++;
    core::ReplayOutcome outcome = runner.run(t, opts);
    struct Verdict {
      bool differentiated;
      bool completed;
      bool intact;
    };
    return Verdict{runner.differentiated(outcome), outcome.completed,
                   outcome.payload_intact};
  };
  auto finish = [&](ReadaptPath path, const std::string& technique,
                    core::SessionReport report) {
    result.path = path;
    result.technique = technique;
    result.report = std::move(report);
    result.report.total_rounds = runner.rounds() - rounds0;
    result.report.total_bytes = runner.bytes_offered() - bytes0;
    result.report.total_virtual_minutes =
        (runner.virtual_seconds_elapsed() - t0) / 60.0;
    LIBERATE_COUNTER_ADD("deploy.readapt.total", 1);
    LIBERATE_HISTOGRAM_OBSERVE("deploy.readapt.rounds",
                               ({1, 2, 5, 10, 25, 50, 100, 200}),
                               result.report.total_rounds);
    LIBERATE_OBS_EVENT(
        static_cast<std::uint64_t>(runner.virtual_seconds_elapsed() * 1e6),
        "deploy", "readapt", obs::fv("path", readapt_path_name(path)),
        obs::fv("technique", technique),
        obs::fv("rounds",
                static_cast<std::uint64_t>(result.report.total_rounds)));
    return result;
  };

  // Level 1: is the deployed technique actually broken? One round. The
  // drift monitor works on live-traffic statistics; this is the controlled
  // confirmation.
  const std::string deployed =
      cached.ranking.empty() ? std::string() : cached.ranking.front().name;
  if (!deployed.empty()) {
    auto technique = lib.instantiate(deployed);
    if (technique) {
      auto v = probe(trace, technique.get());
      end_stage("still-working");
      if (!v.differentiated && v.completed && v.intact) {
        return finish(ReadaptPath::kStillWorking, deployed,
                      report_from_cached(cached, deployed));
      }
    }
  }

  // Level 2: does the policy still exist at all? One plain round.
  {
    auto v = probe(trace, nullptr);
    end_stage("policy-gone");
    if (!v.differentiated) {
      core::SessionReport report = report_from_cached(cached, "");
      report.detection.differentiation = false;
      report.detection.content_based = false;
      report.selected_technique.reset();
      return finish(ReadaptPath::kPolicyGone, "", std::move(report));
    }
  }

  // Level 3 (fingerprint-verify, hooks only): probe the live classifier's
  // ambiguity digest and look for a known implementation that resolves
  // every discrepancy the same way. A swap to an already-fingerprinted
  // engine resolves here in ~one replay round — the probe flows run in
  // isolated worlds and are accounted separately.
  if (hooks != nullptr && hooks->probe_ambiguity && cache != nullptr) {
    fingerprint::AmbiguityProbeResult probed = hooks->probe_ambiguity();
    result.probe_flows = probed.probe_flows;
    result.probed_ambiguity = probed.digest;
    LIBERATE_COUNTER_ADD("deploy.readapt.ambiguity_probes",
                         probed.probe_flows);
    auto [match, distance] = cache->nearest_by_ambiguity(
        probed.digest, cached.app, hooks->max_distance);
    if (match != nullptr) {
      result.matched_environment = match->environment;
      result.matched_distance = distance;
      for (const RankedTechnique& rt : match->ranking) {
        if (rt.name == deployed) continue;  // already failed level 1
        auto technique = lib.instantiate(rt.name);
        if (!technique) continue;
        auto v = probe(trace, technique.get());
        if (v.differentiated || !v.completed || !v.intact) continue;
        end_stage("fingerprint-verify");
        // Adopt the matched implementation's knowledge for this
        // environment so the next drift is an exact warm hit.
        CachedCharacterization adopted = *match;
        adopted.environment = cached.environment;
        adopted.ambiguity = std::move(probed.digest);
        core::SessionReport report = report_from_cached(adopted, rt.name);
        cache->store(std::move(adopted));
        LIBERATE_COUNTER_ADD("deploy.readapt.fingerprint_matched", 1);
        return finish(ReadaptPath::kFingerprintMatched, rt.name,
                      std::move(report));
      }
    }
    end_stage("fingerprint-verify");
  }

  // Level 4: targeted blinding probes — one per cached field. A field is
  // still a matching field iff blinding it kills classification; any field
  // that stays classified means the rule set changed under us.
  const int verify_rounds0 = runner.rounds();
  bool fingerprint_ok = true;
  for (const core::MatchingField& field : cached.fields) {
    if (field.message_index >= trace.messages.size()) {
      fingerprint_ok = false;
      break;
    }
    trace::ApplicationTrace blinded = core::blind_range(
        trace, field.message_index, field.offset, field.length);
    auto v = probe(blinded, nullptr);
    if (v.differentiated) {
      fingerprint_ok = false;
      break;
    }
  }
  result.fingerprint_verified = fingerprint_ok && !cached.fields.empty();
  result.verification_rounds = runner.rounds() - verify_rounds0;
  end_stage("field-verification");

  // Level 5: fingerprint held — the rules are the ones we characterized, so
  // the cached ranking is still meaningful. Walk it cheapest-first; the
  // deployed (front) technique already failed level 1.
  if (result.fingerprint_verified) {
    for (std::size_t i = deployed.empty() ? 0 : 1; i < cached.ranking.size();
         ++i) {
      auto technique = lib.instantiate(cached.ranking[i].name);
      if (!technique) continue;
      auto v = probe(trace, technique.get());
      if (!v.differentiated && v.completed && v.intact) {
        result.verification_rounds = runner.rounds() - verify_rounds0;
        result.verification_bytes = runner.bytes_offered() - bytes0;
        end_stage("ranking-walk");
        return finish(ReadaptPath::kVerifiedCached, cached.ranking[i].name,
                      report_from_cached(cached, cached.ranking[i].name));
      }
    }
    end_stage("ranking-walk");
  }
  result.verification_bytes = runner.bytes_offered() - bytes0;

  // Level 6: the classifier changed beyond the cached knowledge (or every
  // cached technique died). Full analysis, and refresh the cache.
  core::SessionReport fresh = lib.analyze(trace);
  end_stage("full-analysis");
  if (cache) {
    cache->store(
        make_cached_characterization(cached.environment, cached.app, fresh));
  }
  std::string selected = fresh.selected_technique.value_or("");
  return finish(ReadaptPath::kFullAnalysis, selected, std::move(fresh));
}

}  // namespace liberate::deploy
