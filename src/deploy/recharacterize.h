// recharacterize.h — incremental re-characterization on drift (§4.2 grown
// up: "lib·erate must run the characterization step whenever an
// application's classification rule changes" — but a fleet cannot afford
// the full §5.3 analysis every time a monitor twitches).
//
// The cheap path is a verification pyramid, each level one or a few probe
// rounds, falling through to the next only on failure:
//
//   1. deployed technique still evades?        -> kStillWorking   (1 round)
//   2. plain replay still differentiated?      -> kPolicyGone     (1 round)
//   3. ambiguity fingerprint matches a known implementation? (probe the
//      discrepancy catalog in isolated worlds — costs probe *flows*, not
//      replay rounds — then try that implementation's best technique)
//                                              -> kFingerprintMatched (~1 round)
//   4. cached matching fields still necessary? (one targeted blinding probe
//      per field: blind it, expect classification to disappear)
//   5. fingerprint held: walk the cached technique ranking cheapest-first,
//      first evader wins                       -> kVerifiedCached (few rounds)
//   6. fingerprint mismatch / ranking exhausted: full analyze()
//                                              -> kFullAnalysis   (O(analysis))
//
// Stage 3 only runs when the caller supplies ReadaptHooks (the fleet does,
// when ambiguity probing is enabled); it is what makes "the classifier was
// swapped for one we already know" cost ~3 rounds instead of
// 2 + #fields + ranking-walk.
//
// Cost accounting rides the runner's round/byte counters, so the <25%-of-
// full-analysis claim is measured, not asserted.
#pragma once

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "core/liberate.h"
#include "deploy/fingerprint.h"
#include "fingerprint/probe.h"

namespace liberate::deploy {

enum class ReadaptPath {
  kStillWorking,        // deployed technique still evades — drift was noise
  kPolicyGone,          // no differentiation at all anymore (policy removed)
  kFingerprintMatched,  // ambiguity digest matched a known implementation
  kVerifiedCached,      // fields verified, another cached technique works
  kFullAnalysis,        // fingerprint mismatch: full re-analysis was needed
};

const char* readapt_path_name(ReadaptPath path);

/// Optional fingerprint-verify stage inputs. `probe_ambiguity` runs the
/// discrepancy catalog against the *live* classifier in isolated worlds;
/// its flows are accounted in ReadaptOutcome::probe_flows, never in replay
/// rounds (probe worlds don't touch the production path).
struct ReadaptHooks {
  std::function<fingerprint::AmbiguityProbeResult()> probe_ambiguity;
  /// Maximum ambiguity_distance() for a nearest-profile match to be trusted.
  /// 0 = only an implementation that resolves every probed discrepancy
  /// identically.
  std::size_t max_distance = 0;
};

struct ReadaptOutcome {
  ReadaptPath path = ReadaptPath::kStillWorking;
  /// Working technique after re-adaptation ("" when kPolicyGone or nothing
  /// works even after full analysis).
  std::string technique;
  /// Cost of everything this re-adaptation ran: verification probes plus
  /// (only on the kFullAnalysis path) the full analyze(). For
  /// kFullAnalysis, `report` is the fresh analysis; otherwise it is the
  /// cached knowledge re-expressed with the verification cost as totals.
  core::SessionReport report;
  /// True when the cached matching fields all re-verified (each targeted
  /// blinding probe killed classification).
  bool fingerprint_verified = false;
  int verification_rounds = 0;
  std::uint64_t verification_bytes = 0;
  /// Per-stage round breakdown of the ladder walk, in execution order
  /// (still-working, policy-gone, fingerprint-verify, field-verification,
  /// ranking-walk, full-analysis — only stages that ran appear). Rounds
  /// always sum to report.total_rounds.
  std::vector<core::ReadaptStageCost> ladder;

  /// Fingerprint-verify stage results (set only when hooks ran the probes).
  std::size_t probe_flows = 0;
  std::optional<fingerprint::AmbiguityDigest> probed_ambiguity;
  /// Environment name of the matched cache entry ("" = no match).
  std::string matched_environment;
  std::optional<std::size_t> matched_distance;
};

/// Re-adapt against the live environment behind `lib` using the cached
/// characterization. On the kFullAnalysis path the cache entry is refreshed
/// in place (when `cache` is non-null). On the kFingerprintMatched path the
/// matched implementation's knowledge is copied onto this environment's
/// cache entry (with the freshly probed digest), so the next drift gets an
/// exact warm hit.
ReadaptOutcome incremental_readapt(core::Liberate& lib,
                                   const trace::ApplicationTrace& trace,
                                   const CachedCharacterization& cached,
                                   ClassifierFingerprintCache* cache,
                                   const ReadaptHooks* hooks = nullptr);

}  // namespace liberate::deploy
