// recharacterize.h — incremental re-characterization on drift (§4.2 grown
// up: "lib·erate must run the characterization step whenever an
// application's classification rule changes" — but a fleet cannot afford
// the full §5.3 analysis every time a monitor twitches).
//
// The cheap path is a verification pyramid, each level one or a few probe
// rounds, falling through to the next only on failure:
//
//   1. deployed technique still evades?        -> kStillWorking   (1 round)
//   2. plain replay still differentiated?      -> kPolicyGone     (1 round)
//   3. cached matching fields still necessary? (one targeted blinding probe
//      per field: blind it, expect classification to disappear)
//   4. fingerprint held: walk the cached technique ranking cheapest-first,
//      first evader wins                       -> kVerifiedCached (few rounds)
//   5. fingerprint mismatch / ranking exhausted: full analyze()
//                                              -> kFullAnalysis   (O(analysis))
//
// Cost accounting rides the runner's round/byte counters, so the <25%-of-
// full-analysis claim is measured, not asserted.
#pragma once

#include <string>
#include <vector>

#include "core/liberate.h"
#include "deploy/fingerprint.h"

namespace liberate::deploy {

enum class ReadaptPath {
  kStillWorking,    // deployed technique still evades — drift was noise
  kPolicyGone,      // no differentiation at all anymore (policy removed)
  kVerifiedCached,  // fields verified, another cached technique works
  kFullAnalysis,    // fingerprint mismatch: full re-analysis was needed
};

const char* readapt_path_name(ReadaptPath path);

struct ReadaptOutcome {
  ReadaptPath path = ReadaptPath::kStillWorking;
  /// Working technique after re-adaptation ("" when kPolicyGone or nothing
  /// works even after full analysis).
  std::string technique;
  /// Cost of everything this re-adaptation ran: verification probes plus
  /// (only on the kFullAnalysis path) the full analyze(). For
  /// kFullAnalysis, `report` is the fresh analysis; otherwise it is the
  /// cached knowledge re-expressed with the verification cost as totals.
  core::SessionReport report;
  /// True when the cached matching fields all re-verified (each targeted
  /// blinding probe killed classification).
  bool fingerprint_verified = false;
  int verification_rounds = 0;
  std::uint64_t verification_bytes = 0;
  /// Per-stage round breakdown of the ladder walk, in execution order
  /// (still-working, policy-gone, field-verification, ranking-walk,
  /// full-analysis — only stages that ran appear). Rounds always sum to
  /// report.total_rounds.
  std::vector<core::ReadaptStageCost> ladder;
};

/// Re-adapt against the live environment behind `lib` using the cached
/// characterization. On the kFullAnalysis path the cache entry is refreshed
/// in place (when `cache` is non-null).
ReadaptOutcome incremental_readapt(core::Liberate& lib,
                                   const trace::ApplicationTrace& trace,
                                   const CachedCharacterization& cached,
                                   ClassifierFingerprintCache* cache);

}  // namespace liberate::deploy
