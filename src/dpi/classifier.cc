#include "dpi/classifier.h"

#include <algorithm>

#include "obs/obs.h"

namespace liberate::dpi {

using netsim::Direction;
using netsim::FiveTuple;
using netsim::PacketView;
using netsim::TcpFlags;
using netsim::TimePoint;

namespace {

/// Active (non-expired) result, clearing it lazily on expiry.
std::optional<std::string> active_result(FlowState& fs, TimePoint now) {
  if (fs.result && fs.result_expires && now >= *fs.result_expires) {
    fs.result.reset();
    fs.matched_rule = nullptr;
    fs.result_expires.reset();
    LIBERATE_COUNTER_ADD("dpi.results_expired", 1);
  }
  return fs.result;
}

bool seq_within(std::uint32_t seq, std::uint32_t expected,
                std::uint32_t window) {
  std::int32_t delta = static_cast<std::int32_t>(seq - expected);
  return delta >= -static_cast<std::int64_t>(window) &&
         delta <= static_cast<std::int64_t>(window);
}

#if LIBERATE_OBS_LEVEL >= LIBERATE_OBS_LEVEL_FULL
/// Canonical provenance flow key for a classifier five-tuple.
obs::prov::FlowKey pkey(const FiveTuple& t) {
  return obs::prov::flow_key(t.src_ip, t.src_port, t.dst_ip, t.dst_port,
                             t.protocol);
}
#endif

}  // namespace

FlowState* DpiEngine::lookup(const FiveTuple& key, TimePoint now,
                             bool create) {
  auto it = flows_.find(key);
  if (it != flows_.end()) {
    // Idle eviction (load-dependent for the GFC; fixed 120 s on the testbed).
    if (config_.idle_eviction_threshold) {
      netsim::Duration threshold = config_.idle_eviction_threshold(now);
      if (now - it->second.last_seen > threshold) {
        flows_.erase(it);
        it = flows_.end();
        LIBERATE_COUNTER_ADD("dpi.flows_evicted_idle", 1);
      }
    }
  }
  if (it != flows_.end()) return &it->second;
  if (!create) return nullptr;
  LIBERATE_COUNTER_ADD("dpi.flows_created", 1);
  FlowState& fs = flows_[key];
  fs.created = now;
  fs.last_seen = now;
  return &fs;
}

std::optional<std::string> DpiEngine::active_class_now(const FiveTuple& flow,
                                                       TimePoint now) {
  auto it = flows_.find(flow);
  if (it != flows_.end()) {
    auto result = active_result(it->second, now);
    if (result) return result;
  }
  auto cit = result_cache_.find(flow);
  if (cit != result_cache_.end()) {
    if (now < cit->second.expires) return cit->second.traffic_class;
    result_cache_.erase(cit);
  }
  return std::nullopt;
}

void DpiEngine::mark_blocked(const FiveTuple& flow) {
  if (config_.block_survives_flush) blocked_flows_.insert(flow);
  auto it = flows_.find(flow);
  if (it != flows_.end()) it->second.blocked = true;
}

Inspection DpiEngine::finish(FlowState* fs, const FiveTuple& key,
                             TimePoint now, Inspection partial) {
  partial.flow = key;
  partial.has_flow = fs != nullptr;
  if (fs != nullptr) {
    auto result = active_result(*fs, now);
    if (result && !partial.traffic_class) {
      partial.traffic_class = result;
      partial.rule = fs->matched_rule;
    }
    partial.flow_blocked = partial.flow_blocked || fs->blocked;
  }
  // A result cached across a RST-triggered flush still drives policy until
  // it expires.
  if (!partial.traffic_class) {
    auto it = result_cache_.find(key);
    if (it != result_cache_.end()) {
      if (now < it->second.expires) {
        partial.traffic_class = it->second.traffic_class;
      } else {
        result_cache_.erase(it);
      }
    }
  }
  if (blocked_flows_.contains(key)) partial.flow_blocked = true;
  return partial;
}

Inspection DpiEngine::inspect(const PacketView& pkt, Direction dir,
                              TimePoint now) {
  const bool c2s = dir == Direction::kClientToServer;

  // Fragments with nonzero offset carry no transport header: nothing to
  // associate or match. (First fragments parse normally.)
  if (pkt.ip.fragment_offset_words != 0) return Inspection{};

  // Transport determination, including the testbed's wrong-protocol quirk.
  std::optional<netsim::TcpView> forced_tcp;
  const netsim::TcpView* tcp = pkt.tcp ? &*pkt.tcp : nullptr;
  if (tcp == nullptr && !pkt.udp && !pkt.icmp &&
      config_.parse_transport_despite_wrong_protocol) {
    auto attempt = netsim::parse_tcp(pkt.ip.payload);
    if (attempt.ok()) {
      forced_tcp = std::move(attempt).value();
      tcp = &*forced_tcp;
    }
  }

  // Anomaly validation gate.
  netsim::AnomalySet anomalies = netsim::anomalies_of(pkt);
  if (config_.validated_anomalies & anomalies) {
    LIBERATE_COUNTER_ADD("dpi.packets_skipped_invalid", 1);
    LIBERATE_PROV_NOTE(now, pkey(pkt.five_tuple()), "dpi-skip",
                       obs::fv("reason", "invalid-packet"));
    Inspection out;
    out.skipped_invalid = true;
    return out;
  }

  if (tcp != nullptr) {
    FiveTuple tuple;
    tuple.src_ip = pkt.ip.src;
    tuple.dst_ip = pkt.ip.dst;
    tuple.src_port = tcp->src_port;
    tuple.dst_port = tcp->dst_port;
    tuple.protocol = static_cast<std::uint8_t>(netsim::IpProto::kTcp);
    FiveTuple key = c2s ? tuple : tuple.reversed();
    if (!config_.only_ports.empty() &&
        !config_.only_ports.contains(key.dst_port)) {
      return finish(nullptr, key, now, Inspection{});
    }
    return inspect_tcp(pkt, *tcp, c2s, key, now);
  }

  if (pkt.udp) {
    if (!config_.inspect_udp) return Inspection{};
    FiveTuple tuple = pkt.five_tuple();
    FiveTuple key = c2s ? tuple : tuple.reversed();
    if (!config_.only_ports.empty() &&
        !config_.only_ports.contains(key.dst_port)) {
      return finish(nullptr, key, now, Inspection{});
    }
    return inspect_udp(pkt, c2s, key, now);
  }

  return Inspection{};
}

Inspection DpiEngine::inspect_tcp(const PacketView& pkt [[maybe_unused]],
                                  const netsim::TcpView& tcp, bool c2s,
                                  const FiveTuple& key, TimePoint now) {
  Inspection out;
  out.processed = true;
  LIBERATE_COUNTER_ADD("dpi.packets_inspected", 1);

  // --- RST: flush semantics --------------------------------------------
  if (tcp.rst()) {
    FlowState* fs = lookup(key, now, /*create=*/false);
    if (fs != nullptr && config_.flush_flow_on_rst) {
      // The flow's inspection state dies with the RST. An existing result
      // optionally survives briefly in a side cache (testbed: 10 s).
      if (config_.result_cache_after_rst && active_result(*fs, now)) {
        TimePoint expires = now + *config_.result_cache_after_rst;
        if (fs->result_expires && *fs->result_expires < expires) {
          expires = *fs->result_expires;
        }
        result_cache_[key] = CachedResult{*fs->result, expires};
      }
      flows_.erase(key);
      LIBERATE_COUNTER_ADD("dpi.flows_flushed_rst", 1);
      LIBERATE_PROV_NOTE(now, pkey(key), "dpi-flush",
                         obs::fv("trigger", "rst"));
      return finish(nullptr, key, now, out);
    }
    if (fs != nullptr) {
      fs->rst_seen = true;
      fs->last_seen = now;
    }
    return finish(fs, key, now, out);
  }

  // --- Flow lookup/creation ---------------------------------------------
  const bool is_syn = tcp.syn() && !tcp.ack_flag();
  FlowState* fs = lookup(key, now, /*create=*/false);
  if (fs == nullptr) {
    const bool may_create = is_syn || !config_.requires_syn;
    if (!may_create) {
      // Mid-flow packet on an unknown flow: ignored (GFC resync behaviour).
      out.processed = false;
      LIBERATE_PROV_NOTE(now, pkey(key), "dpi-skip",
                         obs::fv("reason", "mid-flow-unknown"));
      return finish(nullptr, key, now, out);
    }
    fs = lookup(key, now, /*create=*/true);
  }
  fs->last_seen = now;
  if (is_syn) fs->saw_syn = true;

  FlowState::DirState& ds = fs->dirs[c2s ? 0 : 1];

  // --- Sequence tracking / validation ------------------------------------
  if (tcp.syn()) {
    ds.seq_initialized = true;
    ds.next_seq = tcp.seq + 1;
  } else if (!ds.seq_initialized && !tcp.payload.empty()) {
    ds.seq_initialized = true;
    ds.next_seq = tcp.seq;
  } else if (config_.validate_tcp_seq && ds.seq_initialized &&
             !tcp.payload.empty() &&
             !seq_within(tcp.seq, ds.next_seq, config_.seq_window)) {
    out.processed = false;
    out.skipped_invalid = true;
    LIBERATE_PROV_NOTE(now, pkey(key), "dpi-skip",
                       obs::fv("reason", "seq-out-of-window"),
                       obs::fv("seq", std::uint64_t{tcp.seq}),
                       obs::fv("expected", std::uint64_t{ds.next_seq}));
    return finish(fs, key, now, out);
  }

  // --- Sticky result (match-and-forget) -----------------------------------
  if (config_.match_and_forget && active_result(*fs, now)) {
    return finish(fs, key, now, out);
  }

  if (tcp.payload.empty()) return finish(fs, key, now, out);

  // --- Content inspection --------------------------------------------------
  RuleContext ctx;
  ctx.dst_port = key.dst_port;
  ctx.udp = false;

  // Urgent-pointer handling: a strict implementation removes the out-of-band
  // byte (the one the urgent pointer designates) before the data is matched,
  // exactly as a receiver delivering it out of band would. Sequence-number
  // accounting below always uses the wire length, so the two interpretations
  // diverge only in what the matcher sees — the g1/g2 probe dimension.
  BytesView content_payload = tcp.payload;
  Bytes urgent_stripped;
  if (config_.strip_urgent_bytes && tcp.has(TcpFlags::kUrg) &&
      tcp.urgent_ptr > 0 && tcp.urgent_ptr <= tcp.payload.size()) {
    urgent_stripped.reserve(tcp.payload.size() - 1);
    urgent_stripped.insert(
        urgent_stripped.end(), tcp.payload.begin(),
        tcp.payload.begin() + static_cast<std::ptrdiff_t>(tcp.urgent_ptr - 1));
    urgent_stripped.insert(
        urgent_stripped.end(),
        tcp.payload.begin() + static_cast<std::ptrdiff_t>(tcp.urgent_ptr),
        tcp.payload.end());
    content_payload = BytesView(urgent_stripped);
    LIBERATE_COUNTER_ADD("dpi.urgent_bytes_stripped", 1);
  }

  if (config_.mode == ClassifierConfig::Mode::kPerPacket) {
    ds.payload_packets += 1;
    if (config_.packet_inspection_limit != 0 &&
        ds.payload_packets > config_.packet_inspection_limit) {
      ds.gave_up = true;
    }
    // Advance expected seq for validation purposes.
    if (ds.seq_initialized && seq_within(tcp.seq, ds.next_seq, config_.seq_window)) {
      std::uint32_t end = tcp.seq + static_cast<std::uint32_t>(tcp.payload.size());
      if (static_cast<std::int32_t>(end - ds.next_seq) > 0) ds.next_seq = end;
    }
    if (!ds.gave_up) {
      ctx.packet_index = ds.payload_packets;
      run_match(*fs, ds, content_payload, ctx, key, now, &out);
    }
    return finish(fs, key, now, out);
  }

  // Stream mode.
  ds.payload_packets += 1;
  if (!ds.gave_up) {
    auto append_assembled = [&](BytesView bytes) {
      std::size_t room = config_.stream_buffer_cap > ds.assembled.size()
                             ? config_.stream_buffer_cap - ds.assembled.size()
                             : 0;
      std::size_t take = std::min(room, bytes.size());
      ds.assembled.insert(ds.assembled.end(), bytes.begin(),
                          bytes.begin() + static_cast<std::ptrdiff_t>(take));
    };
    // Drain buffered out-of-order segments that are now in sequence.
    auto drain_out_of_order = [&] {
      if (!config_.stream_handles_out_of_order) return;
      bool advanced = true;
      while (advanced) {
        advanced = false;
        auto it = ds.out_of_order.find(ds.next_seq);
        if (it != ds.out_of_order.end()) {
          append_assembled(BytesView(it->second));
          ds.next_seq += static_cast<std::uint32_t>(it->second.size());
          ds.out_of_order.erase(it);
          advanced = true;
        }
      }
    };
    if (tcp.seq == ds.next_seq || !ds.seq_initialized) {
      if (!ds.seq_initialized) {
        ds.seq_initialized = true;
        ds.next_seq = tcp.seq;
      }
      if (ds.assembled.empty()) ds.stream_base = tcp.seq;
      append_assembled(content_payload);
      ds.next_seq = tcp.seq + static_cast<std::uint32_t>(tcp.payload.size());
      drain_out_of_order();
    } else if (static_cast<std::int32_t>(tcp.seq - ds.next_seq) < 0 &&
               config_.stream_overlap !=
                   ClassifierConfig::StreamOverlap::kIgnore) {
      // Segment rewinds into already-assembled bytes: the Ptacek/Newsham
      // conflicting-overlap ambiguity. kLastWins rewrites the overlapped
      // window in place; both policies append a genuinely new tail.
      const std::uint32_t edge = ds.next_seq - tcp.seq;
      if (config_.stream_overlap ==
          ClassifierConfig::StreamOverlap::kLastWins) {
        std::size_t pos = std::min<std::size_t>(
            static_cast<std::uint32_t>(tcp.seq - ds.stream_base),
            ds.assembled.size());
        std::size_t n =
            std::min<std::size_t>(content_payload.size(),
                                  ds.assembled.size() - pos);
        std::copy_n(content_payload.begin(), n,
                    ds.assembled.begin() + static_cast<std::ptrdiff_t>(pos));
        LIBERATE_COUNTER_ADD("dpi.stream_overlap_rewritten", 1);
      }
      if (content_payload.size() > edge) {
        append_assembled(content_payload.subspan(edge));
        ds.next_seq = tcp.seq + static_cast<std::uint32_t>(tcp.payload.size());
        drain_out_of_order();
      }
    } else if (config_.stream_handles_out_of_order) {
      ds.out_of_order.emplace(
          tcp.seq, Bytes(content_payload.begin(), content_payload.end()));
    }
    // else: out-of-order bytes silently lost to the matcher (T-Mobile).

    // Anchor evaluation on the client->server stream: the first assembled
    // bytes must begin with one of the configured prefixes.
    if (c2s && !config_.stream_anchor_prefixes.empty() &&
        !ds.anchor_evaluated) {
      std::size_t longest = 0;
      for (const auto& p : config_.stream_anchor_prefixes) {
        longest = std::max(longest, p.size());
      }
      if (ds.assembled.size() >= longest) {
        ds.anchor_evaluated = true;
        std::string head =
            to_string(BytesView(ds.assembled).subspan(0, longest));
        ds.anchor_ok = false;
        for (const auto& p : config_.stream_anchor_prefixes) {
          if (head.rfind(p, 0) == 0) {
            ds.anchor_ok = true;
            break;
          }
        }
        if (!ds.anchor_ok) {
          ds.gave_up = true;
          LIBERATE_PROV_NOTE(now, pkey(key), "dpi-gave-up",
                             obs::fv("reason", "anchor-mismatch"));
        }
      }
    }

    if (!ds.gave_up) {
      run_match(*fs, ds, BytesView(ds.assembled), ctx, key, now, &out);
    }

    if (config_.packet_inspection_limit != 0 &&
        ds.payload_packets >= config_.packet_inspection_limit) {
      ds.gave_up = true;
    }
  }
  return finish(fs, key, now, out);
}

Inspection DpiEngine::inspect_udp(const PacketView& pkt, bool c2s,
                                  const FiveTuple& key, TimePoint now) {
  Inspection out;
  out.processed = true;
  LIBERATE_COUNTER_ADD("dpi.packets_inspected", 1);
  FlowState* fs = lookup(key, now, /*create=*/true);
  fs->last_seen = now;
  FlowState::DirState& ds = fs->dirs[c2s ? 0 : 1];

  if (config_.match_and_forget && active_result(*fs, now)) {
    return finish(fs, key, now, out);
  }
  BytesView payload = pkt.udp->payload;
  if (payload.empty()) return finish(fs, key, now, out);

  ds.payload_packets += 1;
  if (config_.packet_inspection_limit != 0 &&
      ds.payload_packets > config_.packet_inspection_limit) {
    ds.gave_up = true;
  }
  if (!ds.gave_up) {
    RuleContext ctx;
    ctx.dst_port = key.dst_port;
    ctx.udp = true;
    ctx.packet_index = ds.payload_packets;
    run_match(*fs, ds, payload, ctx, key, now, &out);
  }
  return finish(fs, key, now, out);
}

void DpiEngine::run_match(FlowState& fs, FlowState::DirState& ds,
                          BytesView content, const RuleContext& ctx,
                          const FiveTuple& key, TimePoint now,
                          Inspection* out) {
  (void)ds;
  LIBERATE_COST_TICK(kMatchOps, 1);
  // Evaluation normally runs the compiled match program (one shared content
  // scan for all rules); the process-global backend toggle routes it through
  // the reference linear matcher instead so determinism/equivalence suites
  // can compare entire analyses across both implementations.
  const bool use_program = match_backend() == MatchBackend::kCompiled;
#if LIBERATE_OBS_LEVEL >= LIBERATE_OBS_LEVEL_FULL
  // Traced evaluation shares the exact code path with the untraced one (the
  // plain entry points delegate to the traced ones), so recording the
  // decision path can never change the verdict.
  std::vector<RuleStep> steps;
  RuleHit hit =
      use_program
          ? program_->run(rules_, content, ctx, &steps, match_scratch_)
          : match_rules_reference_traced(rules_, content, ctx, &steps);
  {
    std::uint64_t inspected = 0;
    for (const RuleStep& s : steps) {
      if (s.outcome == RuleStep::Outcome::kNoMatch ||
          s.outcome == RuleStep::Outcome::kMatched) {
        inspected += 1;
      }
    }
    if (hit) {
      std::string offsets;
      for (std::size_t off : steps.back().content.keyword_offsets) {
        if (!offsets.empty()) offsets += ",";
        offsets += std::to_string(off);
      }
      LIBERATE_PROV_NOTE(
          now, pkey(key), "rules-evaluated",
          obs::fv("tried", std::uint64_t{steps.size()}),
          obs::fv("inspected", inspected),
          obs::fv("class", hit.rule->traffic_class),
          obs::fv("rule", hit.rule->name),
          obs::fv("depth", std::uint64_t{steps.size()}),
          obs::fv("offsets", offsets),
          obs::fv("content_len", std::uint64_t{content.size()}));
    } else {
      LIBERATE_PROV_NOTE(now, pkey(key), "rules-evaluated",
                         obs::fv("tried", std::uint64_t{steps.size()}),
                         obs::fv("inspected", inspected),
                         obs::fv("outcome", "no-match"),
                         obs::fv("content_len", std::uint64_t{content.size()}));
    }
  }
#else
  RuleHit hit =
      use_program
          ? program_->run(rules_, content, ctx, nullptr, match_scratch_)
          : match_rules_reference(rules_, content, ctx);
#endif
  if (!hit) {
    LIBERATE_COUNTER_ADD("dpi.match_misses", 1);
    return;
  }

  LIBERATE_COUNTER_ADD("dpi.classifications", 1);
  LIBERATE_OBS_EVENT(now, "dpi", "classified",
                     liberate::obs::fv("class", hit.rule->traffic_class),
                     liberate::obs::fv("rule", hit.rule->name));
  out->newly_classified = true;
  out->traffic_class = hit.rule->traffic_class;
  out->rule = hit.rule;
  log_.push_back(
      ClassificationEvent{now, key, hit.rule->traffic_class, hit.rule->name});

  if (config_.match_and_forget) {
    fs.result = hit.rule->traffic_class;
    fs.matched_rule = hit.rule;
    fs.result_at = now;
    if (config_.result_timeout) {
      fs.result_expires = now + *config_.result_timeout;
    } else {
      fs.result_expires.reset();
    }
  }
}

}  // namespace liberate::dpi
