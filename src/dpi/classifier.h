// classifier.h — the DPI engine.
//
// A ClassifierConfig captures the *implementation quirks* that the paper
// exposes per middlebox, so that every Table 3 outcome emerges from mechanism
// rather than from a lookup table:
//
//   * which packet anomalies the classifier validates (and therefore which
//     crafted invalid packets it silently skips vs. happily inspects);
//   * whether it matches per packet (testbed, Iran) or over a reassembled
//     byte stream (T-Mobile, GFC), and whether stream reassembly handles
//     out-of-order segments (GFC yes, T-Mobile no);
//   * whether stream reassembly is GET-anchored (T-Mobile only reassembles
//     flows whose first payload bytes are "GET");
//   * whether flows are tracked only from their SYN (mid-flow packets on
//     unknown flows ignored — GFC resync behaviour, also the testbed);
//   * how many payload packets per direction it inspects before giving up
//     (5 on the testbed and T-Mobile; unlimited for GFC and Iran);
//   * match-and-forget vs. inspect-every-packet (Iran);
//   * TCP sequence validation (GFC and T-Mobile check the window; the
//     testbed and Iran do not);
//   * how classification state is retained: fixed result timeouts (testbed:
//     120 s, 10 s after a RST), flush-everything-on-RST (T-Mobile),
//     inspection-state-flush-but-blocks-persist (GFC), and load-dependent
//     idle eviction (GFC, Figure 4).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "dpi/match_program.h"
#include "dpi/rules.h"
#include "netsim/network.h"
#include "netsim/packet.h"
#include "netsim/validation.h"

namespace liberate::dpi {

struct ClassifierConfig {
  std::string name;

  /// Anomalies the classifier validates: packets exhibiting any of these are
  /// skipped (not inspected — they still traverse the path).
  netsim::AnomalySet validated_anomalies = 0;

  /// TCP flows are tracked only from their SYN; mid-flow packets on unknown
  /// flows are ignored entirely.
  bool requires_syn = true;

  /// Once classified, stop inspecting (result sticky until flushed). False
  /// models Iran: every packet inspected, classification is per packet.
  bool match_and_forget = true;

  enum class Mode { kPerPacket, kStream };
  Mode mode = Mode::kPerPacket;

  /// Stream mode: reassemble only if the client's stream starts with one of
  /// these prefixes (T-Mobile quirk: "GET" for HTTP, the TLS handshake
  /// record header \x16\x03 for HTTPS). Empty = no anchor requirement.
  /// Prepending a single dummy byte defeats anchored reassembly (§6.2).
  std::vector<std::string> stream_anchor_prefixes;

  /// Stream mode: buffer out-of-order segments (GFC) or silently drop bytes
  /// that don't arrive in sequence (T-Mobile).
  bool stream_handles_out_of_order = false;

  /// Stream mode: how a retransmitted segment whose range was already
  /// assembled is resolved — the Ptacek/Newsham segment-overlap ambiguity the
  /// fingerprint subsystem probes (docs/fingerprinting.md):
  ///   * kIgnore    — overlapping segments are discarded wholesale; only the
  ///     tail beyond next_seq would be new, and it is dropped with the rest
  ///     (the historical behaviour of this engine, and the default);
  ///   * kFirstWins — already-assembled bytes stand, but a tail extending
  ///     past next_seq is appended (Zeek-style first-copy semantics);
  ///   * kLastWins  — the retransmission overwrites the overlapped window
  ///     and any tail is appended (Suricata "overlap: last" targets).
  enum class StreamOverlap { kIgnore, kFirstWins, kLastWins };
  StreamOverlap stream_overlap = StreamOverlap::kIgnore;

  /// Honour the TCP urgent pointer by removing the out-of-band byte from the
  /// inspected stream (as a strict receiver would before the data reaches the
  /// application). False = urgent byte inspected inline with the rest.
  bool strip_urgent_bytes = false;

  /// Inspect at most this many payload-carrying packets per direction
  /// (0 = unlimited).
  std::size_t packet_inspection_limit = 0;

  bool inspect_udp = false;

  /// Testbed quirk (Table 3 note 1): parse the transport header even when
  /// the IP protocol number is wrong, associating the packet with an
  /// existing tracked flow.
  bool parse_transport_despite_wrong_protocol = false;

  /// Only flows to these ports are inspected at all (empty = all ports).
  std::set<std::uint16_t> only_ports;

  /// Validate TCP sequence numbers against the expected window; out-of-
  /// window segments are skipped.
  bool validate_tcp_seq = false;
  std::uint32_t seq_window = 65535;

  /// Classification result lifetime (testbed: 120 s). nullopt = forever.
  std::optional<netsim::Duration> result_timeout;
  /// Seeing a RST discards the flow's inspection state (T-Mobile, GFC, and
  /// the testbed — a RST is a teardown signal everywhere we measured).
  bool flush_flow_on_rst = false;
  /// When flushing on RST, keep an existing classification result alive in a
  /// side cache for this long (testbed: "the timeout is reduced to 10
  /// seconds after the classifier sees a RST", §6.1). nullopt = the result
  /// dies with the flow (T-Mobile: flushed immediately).
  std::optional<netsim::Duration> result_cache_after_rst;
  /// A flow already subjected to a *blocking* action stays blocked even if
  /// its inspection state is flushed (GFC: RST after classification has no
  /// observable effect).
  bool block_survives_flush = true;

  /// Idle flow-state eviction threshold as a function of (virtual) time of
  /// day; unset = no idle eviction. Models the GFC's busier-hours-flush-
  /// sooner behaviour behind Figure 4.
  std::function<netsim::Duration(netsim::TimePoint)> idle_eviction_threshold;

  /// Cap on reassembled stream bytes retained per direction.
  std::size_t stream_buffer_cap = 16 * 1024;
};

/// Per-flow classifier state.
struct FlowState {
  netsim::TimePoint created = 0;
  netsim::TimePoint last_seen = 0;
  bool saw_syn = false;
  bool rst_seen = false;

  struct DirState {
    std::size_t payload_packets = 0;   // inspected payload packets
    bool seq_initialized = false;
    std::uint32_t next_seq = 0;        // expected next sequence number
    // Stream-mode reassembly.
    std::uint32_t stream_base = 0;  // seq of assembled[0] (overlap rewrites)
    Bytes assembled;
    std::map<std::uint32_t, Bytes> out_of_order;
    bool anchor_evaluated = false;
    bool anchor_ok = true;
    bool gave_up = false;  // inspection limit reached without a match
  };
  DirState dirs[2];  // [0]=client->server, [1]=server->client

  std::optional<std::string> result;       // active traffic class
  const MatchRule* matched_rule = nullptr;
  netsim::TimePoint result_at = 0;
  std::optional<netsim::TimePoint> result_expires;

  bool blocked = false;  // a blocking action fired on this flow
};

/// Outcome of pushing one packet through the engine.
struct Inspection {
  /// The classifier actually looked at this packet's content.
  bool processed = false;
  /// Packet was skipped due to a validated anomaly.
  bool skipped_invalid = false;
  /// Active classification for the flow at this instant (after processing).
  std::optional<std::string> traffic_class;
  const MatchRule* rule = nullptr;
  /// This very packet triggered the classification.
  bool newly_classified = false;
  /// The flow has a sticky "blocked" mark (set by the middlebox action).
  bool flow_blocked = false;
  /// Flow key in client->server orientation (valid when a flow was tracked).
  netsim::FiveTuple flow;
  bool has_flow = false;
};

/// A recorded classification event (the testbed middlebox "shows the result
/// of classification immediately" — tests and benches read this log).
struct ClassificationEvent {
  netsim::TimePoint at;
  netsim::FiveTuple flow;
  std::string traffic_class;
  std::string rule_name;
};

class DpiEngine {
 public:
  DpiEngine(ClassifierConfig config, std::vector<MatchRule> rules)
      : config_(std::move(config)),
        rules_(std::move(rules)),
        program_(MatchProgram::compile_cached(rules_)) {}

  /// Push one packet (as seen on the wire) through the classifier.
  Inspection inspect(const netsim::PacketView& pkt, netsim::Direction dir,
                     netsim::TimePoint now);

  /// Mark a flow as blocked (called by the middlebox when it applies a
  /// blocking action). Survives inspection-state flushes when configured.
  void mark_blocked(const netsim::FiveTuple& flow);

  /// The class whose policy currently applies to `flow` (result or cached
  /// result, expiry-checked at `now`) — the "what does the middlebox think
  /// right now" probe used by the testbed's direct signal.
  std::optional<std::string> active_class_now(const netsim::FiveTuple& flow,
                                              netsim::TimePoint now);

  const ClassifierConfig& config() const { return config_; }
  const std::vector<ClassificationEvent>& log() const { return log_; }
  std::size_t tracked_flows() const { return flows_.size(); }
  void clear_log() { log_.clear(); }

  /// Swap the rule set at runtime (classifier-rule-change adaptation tests).
  /// Recompiles the match program (memoized — swapping back and forth
  /// between rule sets reuses previously compiled programs).
  void set_rules(std::vector<MatchRule> rules) {
    rules_ = std::move(rules);
    program_ = MatchProgram::compile_cached(rules_);
  }
  const std::vector<MatchRule>& rules() const { return rules_; }
  /// The compiled program evaluating rules() (shared across engines with
  /// identical rule sets).
  const MatchProgram& program() const { return *program_; }
  /// Swap the implementation quirks at runtime — countermeasure experiments
  /// ("a network could detect and filter lib·erate's inert packets", §4.3).
  /// Existing flow state is kept; new packets are judged under the new
  /// config.
  void set_config(ClassifierConfig config) { config_ = std::move(config); }

 private:
  FlowState* lookup(const netsim::FiveTuple& key, netsim::TimePoint now,
                    bool create);
  void refresh_result_expiry(FlowState& fs, netsim::TimePoint now);
  Inspection inspect_tcp(const netsim::PacketView& pkt,
                         const netsim::TcpView& tcp, bool client_to_server,
                         const netsim::FiveTuple& key, netsim::TimePoint now);
  Inspection inspect_udp(const netsim::PacketView& pkt, bool client_to_server,
                         const netsim::FiveTuple& key, netsim::TimePoint now);
  void run_match(FlowState& fs, FlowState::DirState& ds, BytesView content,
                 const RuleContext& ctx, const netsim::FiveTuple& key,
                 netsim::TimePoint now, Inspection* out);
  Inspection finish(FlowState* fs, const netsim::FiveTuple& key,
                    netsim::TimePoint now, Inspection partial);

  ClassifierConfig config_;
  std::vector<MatchRule> rules_;
  std::shared_ptr<const MatchProgram> program_;  // compiled from rules_
  MatchProgram::Scratch match_scratch_;          // per-engine, reused per eval
  std::map<netsim::FiveTuple, FlowState> flows_;
  std::set<netsim::FiveTuple> blocked_flows_;  // survives state flushes
  struct CachedResult {
    std::string traffic_class;
    netsim::TimePoint expires;
  };
  std::map<netsim::FiveTuple, CachedResult> result_cache_;
  std::vector<ClassificationEvent> log_;
};

}  // namespace liberate::dpi
