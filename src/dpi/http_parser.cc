#include "dpi/http_parser.h"

#include "util/strings.h"

namespace liberate::dpi {

namespace {

std::optional<std::string> find_header(
    const std::vector<std::pair<std::string, std::string>>& headers,
    std::string_view name) {
  for (const auto& [k, v] : headers) {
    if (iequals(k, name)) return v;
  }
  return std::nullopt;
}

/// Split head into lines up to the blank line; returns nullopt if no header
/// terminator and the data looks truncated mid-head (we still parse what we
/// can when at least one full line exists).
std::vector<std::string_view> head_lines(std::string_view text) {
  std::vector<std::string_view> lines;
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t eol = text.find("\r\n", pos);
    if (eol == std::string_view::npos) break;
    if (eol == pos) break;  // blank line: end of head
    lines.push_back(text.substr(pos, eol - pos));
    pos = eol + 2;
  }
  return lines;
}

void parse_header_lines(const std::vector<std::string_view>& lines,
                        std::vector<std::pair<std::string, std::string>>* out) {
  for (std::size_t i = 1; i < lines.size(); ++i) {
    std::size_t colon = lines[i].find(':');
    if (colon == std::string_view::npos) continue;
    out->emplace_back(std::string(trim(lines[i].substr(0, colon))),
                      std::string(trim(lines[i].substr(colon + 1))));
  }
}

}  // namespace

std::optional<std::string> HttpRequest::header(std::string_view name) const {
  return find_header(headers, name);
}

std::optional<std::string> HttpResponse::header(std::string_view name) const {
  return find_header(headers, name);
}

bool looks_like_http_request(BytesView stream) {
  static constexpr std::string_view kMethods[] = {
      "GET ", "POST ", "HEAD ", "PUT ", "DELETE ", "OPTIONS ", "CONNECT "};
  std::string prefix = to_string(stream.subspan(0, std::min<std::size_t>(
                                                       stream.size(), 8)));
  for (auto m : kMethods) {
    if (prefix.rfind(m, 0) == 0) return true;
  }
  return false;
}

std::optional<HttpRequest> parse_http_request(BytesView stream) {
  if (!looks_like_http_request(stream)) return std::nullopt;
  std::string text = to_string(stream);
  auto lines = head_lines(text);
  if (lines.empty()) return std::nullopt;

  auto parts = split(lines[0], ' ');
  if (parts.size() < 3) return std::nullopt;
  HttpRequest req;
  req.method = std::string(parts[0]);
  req.target = std::string(parts[1]);
  req.version = std::string(parts[2]);
  parse_header_lines(lines, &req.headers);
  return req;
}

std::optional<HttpResponse> parse_http_response(BytesView stream) {
  std::string text = to_string(stream);
  if (text.rfind("HTTP/", 0) != 0) return std::nullopt;
  auto lines = head_lines(text);
  if (lines.empty()) return std::nullopt;

  auto parts = split(lines[0], ' ');
  if (parts.size() < 2) return std::nullopt;
  HttpResponse resp;
  resp.version = std::string(parts[0]);
  resp.status = 0;
  for (char c : parts[1]) {
    if (c < '0' || c > '9') break;
    resp.status = resp.status * 10 + (c - '0');
  }
  if (parts.size() >= 3) {
    // Reason phrase may contain spaces: take the remainder of the line.
    std::size_t off = parts[0].size() + 1 + parts[1].size() + 1;
    resp.reason = std::string(lines[0].substr(off));
  }
  parse_header_lines(lines, &resp.headers);
  return resp;
}

}  // namespace liberate::dpi
