// http_parser.h — minimal HTTP/1.x request/response header parsing.
//
// DPI classifiers in the paper key on the request line, the Host header, the
// User-Agent, and (AT&T Stream Saver) the response Content-Type. This parser
// extracts exactly that, tolerantly, from raw stream bytes.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "util/bytes.h"

namespace liberate::dpi {

struct HttpRequest {
  std::string method;
  std::string target;
  std::string version;
  std::vector<std::pair<std::string, std::string>> headers;

  std::optional<std::string> header(std::string_view name) const;
  std::optional<std::string> host() const { return header("Host"); }
};

struct HttpResponse {
  std::string version;
  int status = 0;
  std::string reason;
  std::vector<std::pair<std::string, std::string>> headers;

  std::optional<std::string> header(std::string_view name) const;
  std::optional<std::string> content_type() const {
    return header("Content-Type");
  }
};

/// Parse the head of an HTTP request from stream bytes. Returns nullopt when
/// the bytes do not begin with a plausible request head (or it is incomplete
/// and `require_complete_head` is set).
std::optional<HttpRequest> parse_http_request(BytesView stream);

std::optional<HttpResponse> parse_http_response(BytesView stream);

/// True if the stream starts with a known HTTP method token ("GET ", etc.).
bool looks_like_http_request(BytesView stream);

}  // namespace liberate::dpi
