#include "dpi/match_program.h"

#include <algorithm>
#include <atomic>
#include <deque>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>

#include "dpi/stun_parser.h"

namespace liberate::dpi {

namespace {

/// ifind()'s exact case fold: ASCII 'A'..'Z' only. Bytes >= 0x80 are left
/// alone (they are negative as char, so the reference never folds them).
std::uint8_t fold(std::uint8_t b) {
  return (b >= 'A' && b <= 'Z') ? static_cast<std::uint8_t>(b + 32) : b;
}

constexpr std::size_t kNpos = std::string_view::npos;

std::atomic<int> g_backend{static_cast<int>(MatchBackend::kCompiled)};

Fingerprint rules_fingerprint(const std::vector<MatchRule>& rules) {
  Digest d;
  d.update_u64(rules.size());
  for (const MatchRule& r : rules) {
    d.update_sized(r.name);
    d.update_sized(r.traffic_class);
    d.update_u64(r.keywords.size());
    for (const std::string& k : r.keywords) d.update_sized(k);
    d.update_u8(r.anchored ? 1 : 0);
    d.update_u8(r.dst_port.has_value() ? 1 : 0);
    d.update_u16(r.dst_port.value_or(0));
    d.update_u8(r.udp ? 1 : 0);
    d.update_u8(r.stun_attribute.has_value() ? 1 : 0);
    d.update_u16(r.stun_attribute.value_or(0));
    d.update_u8(r.only_packet_index.has_value() ? 1 : 0);
    d.update_u64(r.only_packet_index.value_or(0));
  }
  return d.finish();
}

}  // namespace

void set_match_backend(MatchBackend backend) {
  g_backend.store(static_cast<int>(backend), std::memory_order_relaxed);
}

MatchBackend match_backend() {
  return static_cast<MatchBackend>(g_backend.load(std::memory_order_relaxed));
}

MatchProgram MatchProgram::compile(const std::vector<MatchRule>& rules) {
  MatchProgram prog;
  prog.fingerprint_ = rules_fingerprint(rules);
  prog.rules_.reserve(rules.size());

  // Deduplicate keywords case-folded: two rules naming "Host" and "host"
  // share one pattern (ifind is case-insensitive, so their first-occurrence
  // offsets are identical by construction).
  std::unordered_map<std::string, std::int32_t> pattern_ids;
  std::vector<std::string> patterns;  // folded
  for (const MatchRule& r : rules) {
    CompiledRule cr;
    cr.udp = r.udp;
    cr.anchored = r.anchored;
    cr.has_dst_port = r.dst_port.has_value();
    cr.dst_port = r.dst_port.value_or(0);
    cr.has_packet_index = r.only_packet_index.has_value();
    cr.only_packet_index = r.only_packet_index.value_or(0);
    cr.has_stun = r.stun_attribute.has_value();
    cr.stun_attribute = r.stun_attribute.value_or(0);
    cr.kw_pattern.reserve(r.keywords.size());
    for (const std::string& kw : r.keywords) {
      if (kw.empty()) {
        cr.kw_pattern.push_back(kEmptyPattern);
        continue;
      }
      std::string folded(kw);
      for (char& c : folded) {
        c = static_cast<char>(fold(static_cast<std::uint8_t>(c)));
      }
      auto [it, inserted] =
          pattern_ids.try_emplace(std::move(folded),
                                  static_cast<std::int32_t>(patterns.size()));
      if (inserted) patterns.push_back(it->first);
      cr.kw_pattern.push_back(it->second);
    }
    if (cr.anchored && !cr.kw_pattern.empty() &&
        cr.kw_pattern[0] != kEmptyPattern) {
      cr.anchor_byte = static_cast<std::uint8_t>(
          patterns[static_cast<std::size_t>(cr.kw_pattern[0])][0]);
      prog.dispatch_[static_cast<std::size_t>(cr.anchor_byte)] = true;
    } else if (!cr.kw_pattern.empty() || cr.has_stun) {
      prog.has_unanchored_content_ = true;
    } else {
      // No keywords, no STUN: the rule matches any inspected content.
      prog.has_unanchored_content_ = true;
    }
    prog.rules_.push_back(std::move(cr));
  }

  prog.pattern_len_.reserve(patterns.size());
  for (const std::string& p : patterns) prog.pattern_len_.push_back(p.size());

  // Reduced alphabet: distinct folded pattern bytes get columns 1..W-1;
  // every other byte shares column 0 (whose transition is the root from any
  // node). alpha_ is indexed by RAW content byte with the fold baked in.
  std::array<std::uint16_t, 256> col_of{};  // folded byte -> column (0=other)
  std::uint16_t width = 1;
  for (const std::string& p : patterns) {
    for (char c : p) {
      auto b = static_cast<std::uint8_t>(c);
      if (col_of[b] == 0) col_of[b] = width++;
    }
  }
  prog.alpha_width_ = width;
  for (std::size_t b = 0; b < 256; ++b) {
    prog.alpha_[b] = col_of[fold(static_cast<std::uint8_t>(b))];
  }

  // Trie build over folded patterns.
  struct BuildNode {
    std::vector<std::int32_t> next;
    std::vector<std::uint32_t> out;
    std::uint32_t fail = 0;
  };
  std::vector<BuildNode> nodes;
  nodes.push_back(BuildNode{std::vector<std::int32_t>(width, -1), {}, 0});
  for (std::size_t pid = 0; pid < patterns.size(); ++pid) {
    std::size_t cur = 0;
    for (char c : patterns[pid]) {
      const std::uint16_t col = col_of[static_cast<std::uint8_t>(c)];
      std::int32_t& slot = nodes[cur].next[col];
      if (slot < 0) {
        if (nodes.size() >= kNodeBudget) {
          // Pathological rule set (fuzzers can construct them): keep the
          // program but route run() to the reference matcher.
          prog.fallback_ = true;
          return prog;
        }
        slot = static_cast<std::int32_t>(nodes.size());
        nodes.push_back(
            BuildNode{std::vector<std::int32_t>(width, -1), {}, 0});
      }
      cur = static_cast<std::size_t>(slot);
    }
    nodes[cur].out.push_back(static_cast<std::uint32_t>(pid));
  }

  // BFS: failure links, full goto conversion, and output-list flattening
  // (a node inherits its fail node's already-merged outputs, so one lookup
  // per visited node reports every pattern ending there).
  std::deque<std::uint32_t> queue;
  for (std::uint16_t col = 0; col < width; ++col) {
    std::int32_t v = nodes[0].next[col];
    if (v < 0) {
      nodes[0].next[col] = 0;
    } else {
      nodes[static_cast<std::size_t>(v)].fail = 0;
      queue.push_back(static_cast<std::uint32_t>(v));
    }
  }
  while (!queue.empty()) {
    const std::uint32_t u = queue.front();
    queue.pop_front();
    const std::uint32_t f = nodes[u].fail;
    nodes[u].out.insert(nodes[u].out.end(), nodes[f].out.begin(),
                        nodes[f].out.end());
    for (std::uint16_t col = 0; col < width; ++col) {
      std::int32_t v = nodes[u].next[col];
      if (v < 0) {
        nodes[u].next[col] = nodes[f].next[col];
      } else {
        nodes[static_cast<std::size_t>(v)].fail =
            static_cast<std::uint32_t>(nodes[f].next[col]);
        queue.push_back(static_cast<std::uint32_t>(v));
      }
    }
  }

  // Flatten to the runtime layout.
  prog.next_.resize(nodes.size() * width);
  prog.node_out_start_.resize(nodes.size());
  prog.node_out_count_.resize(nodes.size());
  for (std::size_t n = 0; n < nodes.size(); ++n) {
    for (std::uint16_t col = 0; col < width; ++col) {
      prog.next_[n * width + col] =
          static_cast<std::uint32_t>(nodes[n].next[col]);
    }
    prog.node_out_start_[n] = static_cast<std::uint32_t>(prog.out_pool_.size());
    prog.node_out_count_[n] = static_cast<std::uint32_t>(nodes[n].out.size());
    prog.out_pool_.insert(prog.out_pool_.end(), nodes[n].out.begin(),
                          nodes[n].out.end());
  }
  return prog;
}

std::shared_ptr<const MatchProgram> MatchProgram::compile_cached(
    const std::vector<MatchRule>& rules) {
  static std::mutex mutex;
  static std::unordered_map<Fingerprint, std::shared_ptr<const MatchProgram>,
                            Fingerprint::Hasher>
      cache;
  const Fingerprint key = rules_fingerprint(rules);
  {
    std::lock_guard<std::mutex> lock(mutex);
    auto it = cache.find(key);
    if (it != cache.end()) return it->second;
  }
  auto program = std::make_shared<const MatchProgram>(compile(rules));
  std::lock_guard<std::mutex> lock(mutex);
  // Real deployments hold a handful of profiles; a churning caller (rule-
  // adaptation experiments swap rule sets in a loop) must not grow this
  // without bound.
  if (cache.size() >= 256) cache.clear();
  auto [it, inserted] = cache.try_emplace(key, std::move(program));
  return it->second;
}

void MatchProgram::scan(BytesView content, Scratch& scratch) const {
  const std::size_t need = pattern_len_.size();
  if (scratch.stamp.size() < need) {
    scratch.stamp.resize(need, 0);
    scratch.first_at.resize(need);
  }
  if (++scratch.epoch == 0) {
    std::fill(scratch.stamp.begin(), scratch.stamp.end(), 0);
    scratch.epoch = 1;
  }
  if (need == 0) return;
  const std::uint32_t epoch = scratch.epoch;
  const std::uint32_t width = alpha_width_;
  std::uint32_t s = 0;
  std::size_t found = 0;
  for (std::size_t i = 0; i < content.size(); ++i) {
    s = next_[s * width + alpha_[content[i]]];
    const std::uint32_t count = node_out_count_[s];
    if (count == 0) continue;
    const std::uint32_t* ids = &out_pool_[node_out_start_[s]];
    for (std::uint32_t k = 0; k < count; ++k) {
      const std::uint32_t p = ids[k];
      if (scratch.stamp[p] != epoch) {
        scratch.stamp[p] = epoch;
        scratch.first_at[p] = i + 1 - pattern_len_[p];
        if (++found == need) return;  // all first occurrences known
      }
    }
  }
}

RuleHit MatchProgram::run(const std::vector<MatchRule>& rules,
                          BytesView content, const RuleContext& ctx,
                          std::vector<RuleStep>* steps,
                          Scratch& scratch) const {
  if (fallback_ || rules.size() != rules_.size()) {
    return match_rules_reference_traced(rules, content, ctx, steps);
  }

  // Shared per-evaluation state, both lazy: the automaton pass runs at most
  // once (first rule that needs a keyword offset), the STUN parse likewise.
  bool scanned = false;
  bool stun_parsed = false;
  std::optional<StunMessage> stun;

  const bool traced = steps != nullptr;
  const std::uint8_t first_byte =
      content.empty() ? 0 : fold(content.front());

  // Whole-program dispatch (verdict-only): when every rule is an anchored
  // keyword rule and no rule's first keyword starts with content's first
  // byte, nothing can match — guard skips and no-matches alike yield an
  // empty RuleHit, so return without touching the content at all.
  if (!traced && !has_unanchored_content_ &&
      (content.empty() || !dispatch_[first_byte])) {
    return RuleHit{};
  }

  for (std::size_t ri = 0; ri < rules_.size(); ++ri) {
    const CompiledRule& cr = rules_[ri];
    const MatchRule* rule = &rules[ri];

    auto emit = [&](RuleStep::Outcome outcome,
                    MatchRule::ContentTrace&& trace = {}) {
      if (traced) steps->push_back(RuleStep{rule, outcome, std::move(trace)});
    };

    // Guard ops, in the reference matcher's exact order.
    if (cr.udp != ctx.udp) {
      emit(RuleStep::Outcome::kSkippedTransport);
      continue;
    }
    if (cr.has_dst_port && cr.dst_port != ctx.dst_port) {
      emit(RuleStep::Outcome::kSkippedPort);
      continue;
    }
    if (cr.has_packet_index &&
        (!ctx.packet_index || *ctx.packet_index != cr.only_packet_index)) {
      emit(RuleStep::Outcome::kSkippedPacketIndex);
      continue;
    }

    // First-byte dispatch (verdict-only): an anchored rule needs its first
    // keyword at offset 0, which is impossible when the first folded bytes
    // differ — whether the keyword occurs later (anchor fail) or never
    // (keyword fail), the verdict is no-match, so skip the content work.
    // Traced evaluation cannot take this exit: the trace must name the
    // actual failure (offset of a late occurrence vs. failed_keyword).
    if (!traced && cr.anchor_byte >= 0 &&
        (content.empty() || first_byte != cr.anchor_byte)) {
      continue;
    }

    MatchRule::ContentTrace trace;
    bool matched = true;

    if (cr.has_stun) {
      if (!stun_parsed) {
        stun = parse_stun(content);
        stun_parsed = true;
      }
      if (!stun || !stun->has_attribute(cr.stun_attribute)) {
        if (traced) trace.stun_failed = true;
        matched = false;
      } else if (traced) {
        // Matched attribute's byte offset: 20-byte header, 4-byte-aligned
        // TLVs (identical walk to the reference).
        std::size_t off = 20;
        for (const StunAttribute& a : stun->attributes) {
          if (a.type == cr.stun_attribute) break;
          off += 4 + ((a.value.size() + 3) & ~std::size_t{3});
        }
        trace.keyword_offsets.push_back(off);
      }
    }

    if (matched) {
      for (std::size_t i = 0; i < cr.kw_pattern.size(); ++i) {
        std::size_t pos;
        const std::int32_t pid = cr.kw_pattern[i];
        if (pid == kEmptyPattern) {
          pos = 0;  // ifind(text, "") == 0
        } else {
          if (!scanned) {
            scan(content, scratch);
            scanned = true;
          }
          const auto p = static_cast<std::size_t>(pid);
          pos = scratch.stamp[p] == scratch.epoch ? scratch.first_at[p]
                                                  : kNpos;
        }
        if (pos == kNpos) {
          if (traced) trace.failed_keyword = i;
          matched = false;
          break;
        }
        if (i == 0 && cr.anchored && pos != 0) {
          if (traced) {
            trace.keyword_offsets.push_back(pos);
            trace.anchor_failed = true;
          }
          matched = false;
          break;
        }
        if (traced) trace.keyword_offsets.push_back(pos);
      }
    }

    emit(matched ? RuleStep::Outcome::kMatched : RuleStep::Outcome::kNoMatch,
         std::move(trace));
    if (matched) return RuleHit{rule};
  }
  return RuleHit{};
}

}  // namespace liberate::dpi
