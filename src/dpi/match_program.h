// match_program.h — compiled rule-matching programs.
//
// The reference matcher (match_rules_reference_traced) evaluates every rule
// independently: it copies the inspected content into a std::string and runs
// a naive case-insensitive substring scan per keyword, per rule, per packet.
// Stream-mode classifiers re-match a growing reassembled prefix on every
// payload packet, so that quadratic-ish inner loop dominates replay rounds.
//
// A MatchProgram lowers one rule set ONCE into a flat decision program:
//
//   * guard ops — the transport/port/packet-index constraints of each rule,
//     precomputed into plain fields checked before any content work;
//   * a shared keyword automaton — every distinct keyword of every rule is
//     inserted (case-folded) into one Aho-Corasick automaton, fully
//     goto-converted over a dense reduced alphabet, so a single left-to-right
//     pass over the content yields the FIRST occurrence offset of every
//     keyword simultaneously (the exact value ifind() would have returned);
//   * a first-byte dispatch table — anchored rules can only match content
//     whose first (folded) byte equals their first keyword's first byte, so
//     verdict-only evaluation skips the content scan entirely when no
//     eligible rule survives dispatch;
//   * STUN guard ops — rules requiring a STUN attribute share one lazy parse
//     of the content per evaluation.
//
// Equivalence contract: for every (rules, content, ctx), run() returns the
// same RuleHit and emits byte-identical RuleStep sequences and ContentTrace
// offsets as match_rules_reference_traced(). The reference matcher is kept
// forever as the differential oracle (tests/dpi/match_program_diff_test.cc,
// src/fuzz match-program campaign); docs/match_program.md spells out the
// contract.
//
// Programs are immutable after compile() and safe to share across threads
// and engines — compile_cached() memoizes them by rule-set content
// fingerprint, so the thousands of isolated worlds a parallel analysis
// builds (and every FleetEngine shard) reuse one program per profile
// instead of recompiling. Per-evaluation mutable state lives in a
// caller-owned Scratch.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <vector>

#include "dpi/rules.h"
#include "util/digest.h"

namespace liberate::dpi {

/// Which matcher implementation DpiEngine::run_match uses. Process-global so
/// determinism suites can run entire analyses under either backend and
/// compare reports; defaults to the compiled program.
enum class MatchBackend { kCompiled, kReference };
void set_match_backend(MatchBackend backend);
MatchBackend match_backend();

class MatchProgram {
 public:
  /// Reusable per-evaluation state (first-occurrence table + epoch stamps),
  /// owned by the caller (one per DpiEngine) so repeated evaluations do not
  /// allocate. A Scratch may be shared across programs — it resizes to the
  /// pattern count of whichever program runs.
  struct Scratch {
    std::vector<std::size_t> first_at;  // per pattern id; valid iff stamped
    std::vector<std::uint32_t> stamp;
    std::uint32_t epoch = 0;
  };

  /// Lower a rule set into a program. Never fails: rule sets exceeding the
  /// automaton node budget produce a program with compiled()==false whose
  /// run() transparently delegates to the reference matcher.
  static MatchProgram compile(const std::vector<MatchRule>& rules);

  /// Memoized compile, keyed by a content fingerprint of the rule set.
  /// Identical rule sets (across rounds, engines, fleet shards) share one
  /// immutable program.
  static std::shared_ptr<const MatchProgram> compile_cached(
      const std::vector<MatchRule>& rules);

  /// Evaluate the program. `rules` MUST be the vector the program was
  /// compiled from (same size and order — RuleHit/RuleStep point into it).
  /// Byte-identical to match_rules_reference_traced(rules, content, ctx,
  /// steps).
  RuleHit run(const std::vector<MatchRule>& rules, BytesView content,
              const RuleContext& ctx, std::vector<RuleStep>* steps,
              Scratch& scratch) const;

  /// False when the rule set exceeded the automaton budget and run()
  /// delegates to the reference matcher.
  bool compiled() const { return !fallback_; }
  std::size_t rule_count() const { return rules_.size(); }
  std::size_t pattern_count() const { return pattern_len_.size(); }
  std::size_t node_count() const { return node_out_start_.size(); }
  /// Content fingerprint of the source rule set (the compile-cache key).
  const Fingerprint& fingerprint() const { return fingerprint_; }

 private:
  static constexpr std::int32_t kEmptyPattern = -1;  // ifind("") == 0 always
  static constexpr std::size_t kNodeBudget = 4096;

  struct CompiledRule {
    bool udp = false;
    bool anchored = false;
    bool has_dst_port = false;
    std::uint16_t dst_port = 0;
    bool has_packet_index = false;
    std::size_t only_packet_index = 0;
    bool has_stun = false;
    std::uint16_t stun_attribute = 0;
    /// Per keyword: pattern id into the automaton, or kEmptyPattern.
    std::vector<std::int32_t> kw_pattern;
    /// First folded byte of the first keyword (anchored dispatch), or -1
    /// when the rule has no usable anchor byte (empty first keyword).
    std::int32_t anchor_byte = -1;
  };

  /// One automaton pass: records the first occurrence of every pattern into
  /// scratch (epoch-stamped), stopping early once all patterns are seen.
  void scan(BytesView content, Scratch& scratch) const;

  std::vector<CompiledRule> rules_;
  Fingerprint fingerprint_{};
  bool fallback_ = false;

  // --- shared keyword automaton (fully goto-converted Aho-Corasick) ---
  // Reduced alphabet: alpha_[byte] maps a raw content byte to a dense
  // column; bytes appearing in no pattern share column 0, whose transition
  // is the root from every node. Case folding is baked into the map
  // (alpha_['A'] == alpha_['a']), mirroring ifind()'s ASCII-only fold.
  std::array<std::uint16_t, 256> alpha_{};
  std::uint32_t alpha_width_ = 1;
  std::vector<std::uint32_t> next_;           // [node * alpha_width_ + col]
  std::vector<std::uint32_t> node_out_start_;  // per node, into out_pool_
  std::vector<std::uint32_t> node_out_count_;
  std::vector<std::uint32_t> out_pool_;        // flattened pattern-id lists
  std::vector<std::size_t> pattern_len_;

  // --- first-byte dispatch ---
  // dispatch_[b]: some anchored rule's first keyword starts with folded b.
  std::array<bool, 256> dispatch_{};
  /// True when some rule can match content without an anchor-byte
  /// constraint (unanchored keyword rules, empty-first-keyword rules) — if
  /// false and no dispatch bit is set for content[0], verdict-only
  /// evaluation skips the scan.
  bool has_unanchored_content_ = false;
};

}  // namespace liberate::dpi
