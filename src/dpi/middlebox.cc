#include "dpi/middlebox.h"

#include <algorithm>

#include "dpi/http_parser.h"
#include "obs/obs.h"
#include "util/strings.h"

namespace liberate::dpi {

using netsim::Direction;
using netsim::ElementIo;
using netsim::FiveTuple;
using netsim::Ipv4Header;
using netsim::PacketView;
using netsim::TcpFlags;
using netsim::TcpHeader;

// ---------------------------------------------------------------------------
// DpiMiddlebox
// ---------------------------------------------------------------------------

void DpiMiddlebox::process(Bytes datagram, Direction dir, ElementIo& io) {
  auto parsed = netsim::parse_packet(datagram);
  if (!parsed.ok()) {
    io.forward(std::move(datagram));
    return;
  }
  const PacketView& pkt = parsed.value();
  const bool c2s = dir == Direction::kClientToServer;

  // Replay-server whitelisting (§4.2 countermeasure): traffic to known
  // measurement servers passes untouched, hiding the policy from detection.
  if (!config_.whitelisted_server_ips.empty()) {
    std::uint32_t server_addr = c2s ? pkt.ip.dst : pkt.ip.src;
    if (config_.whitelisted_server_ips.contains(server_addr)) {
      io.forward(std::move(datagram));
      return;
    }
  }

  // Endpoint escalation blocklist (GFC: after two blocked flows, everything
  // to that server:port is killed — even innocuous content).
  if (config_.endpoint_escalation && pkt.is_tcp()) {
    FiveTuple key = c2s ? pkt.five_tuple() : pkt.five_tuple().reversed();
    EndpointKey ep{key.dst_ip, key.dst_port};
    auto it = endpoint_blocklist_.find(ep);
    if (it != endpoint_blocklist_.end()) {
      if (io.now() < it->second) {
        LIBERATE_PROV_NOTE_PKT(io.now(), datagram, "policy-drop",
                               obs::fv("reason", "endpoint-escalation"));
        inject_rsts(pkt, dir, io, 3 + static_cast<int>(rng_.below(3)),
                    /*packet_forwarded=*/false, 0);
        ++packets_dropped_;
        LIBERATE_COUNTER_ADD("dpi.middlebox_packets_dropped", 1);
        return;
      }
      endpoint_blocklist_.erase(it);
      endpoint_hits_.erase(ep);
    }
  }

  Inspection insp = engine_.inspect(pkt, dir, io.now());

  // Flows previously subjected to a block action stay dead.
  if (insp.flow_blocked && !insp.newly_classified) {
    LIBERATE_PROV_NOTE_PKT(io.now(), datagram, "policy-drop",
                           obs::fv("reason", "flow-blocked"));
    if (pkt.is_tcp() && !pkt.tcp->rst()) {
      inject_rsts(pkt, dir, io, 1, /*packet_forwarded=*/false, 0);
    }
    ++packets_dropped_;
    LIBERATE_COUNTER_ADD("dpi.middlebox_packets_dropped", 1);
    return;
  }

  // Policy action for the active class.
  const PolicyAction* action = nullptr;
  if (insp.traffic_class) {
    auto it = config_.actions.find(*insp.traffic_class);
    if (it != config_.actions.end()) action = &it->second;
  }

#if LIBERATE_OBS_LEVEL >= LIBERATE_OBS_LEVEL_FULL
  // The verdict record ties the classification to the policy applied and to
  // the lineage node of the packet that triggered it (note_pkt digests the
  // datagram before any branch moves it).
  if (insp.newly_classified && insp.traffic_class) {
    const char* act = "forward";
    if (action != nullptr) {
      if (action->block) {
        act = "block";
      } else if (action->throttle_bytes_per_sec) {
        act = "throttle";
      } else if (action->zero_rate) {
        act = "zero-rate";
      }
    }
    LIBERATE_PROV_NOTE_PKT(
        io.now(), datagram, "verdict",
        obs::fv("class", *insp.traffic_class),
        obs::fv("rule", insp.rule != nullptr ? insp.rule->name.c_str() : ""),
        obs::fv("action", act));
  }
#endif

  if (action != nullptr && action->block && insp.newly_classified) {
    if (insp.has_flow) {
      engine_.mark_blocked(insp.flow);
      if (config_.endpoint_escalation) {
        EndpointKey ep{insp.flow.dst_ip, insp.flow.dst_port};
        if (++endpoint_hits_[ep] >= config_.escalation_threshold) {
          endpoint_blocklist_[ep] = io.now() + config_.escalation_duration;
        }
      }
    }
    bool drop = action->drop_matching_packet;
    if (!drop) io.forward(Bytes(datagram));
    apply_block(pkt, dir, io, *action, drop);
    if (drop) {
      ++packets_dropped_;
      LIBERATE_COUNTER_ADD("dpi.middlebox_packets_dropped", 1);
    }
    return;
  }

  // Accounting: zero-rated classes don't count against the user's quota.
  if (action != nullptr && action->zero_rate) {
    zero_rated_bytes_ += datagram.size();
    LIBERATE_COUNTER_ADD("dpi.zero_rated_bytes", datagram.size());
  } else {
    usage_counter_bytes_ += datagram.size();
    LIBERATE_COUNTER_ADD("dpi.usage_counted_bytes", datagram.size());
  }

  if (action != nullptr && action->throttle_bytes_per_sec) {
    if (throttle_forward(*insp.traffic_class, std::move(datagram), dir, io)) {
      return;
    }
    ++packets_dropped_;
    LIBERATE_COUNTER_ADD("dpi.middlebox_packets_dropped", 1);
    return;
  }

  io.forward(std::move(datagram));
}

bool DpiMiddlebox::throttle_forward(const std::string& klass, Bytes datagram,
                                    Direction dir, ElementIo& io) {
  const PolicyAction& action = config_.actions.at(klass);
  PaceState& st = pace_[klass];
  const netsim::TimePoint now = io.now();
  if (st.busy_until < now) {
    st.busy_until = now;
    st.queued = 0;
  }
  if (st.queued + datagram.size() > action.throttle_queue_bytes) {
    return false;  // shaping queue overflow
  }
  double rate = *action.throttle_bytes_per_sec;
  netsim::Duration transmit = static_cast<netsim::Duration>(
      static_cast<double>(datagram.size()) / rate * 1e6);
  st.queued += datagram.size();
  st.busy_until += transmit;
  netsim::Duration wait = st.busy_until - now;
  std::size_t sz = datagram.size();
  io.loop().schedule(wait, [this, &st, sz]() {
    st.queued -= std::min(st.queued, sz);
  });
  (void)dir;
  io.forward_after(wait, std::move(datagram));
  return true;
}

void DpiMiddlebox::apply_block(const PacketView& pkt, Direction dir,
                               ElementIo& io, const PolicyAction& action,
                               bool drop_packet) {
  std::size_t extra_client_bytes = 0;
  if (action.send_403 && pkt.is_tcp() && dir == Direction::kClientToServer) {
    // Unsolicited 403 response impersonating the server (Iran, §6.6).
    static const std::string k403 =
        "HTTP/1.1 403 Forbidden\r\nContent-Type: text/html\r\n\r\n"
        "<html><body>Forbidden</body></html>";
    TcpHeader h;
    h.src_port = pkt.tcp->dst_port;
    h.dst_port = pkt.tcp->src_port;
    h.seq = pkt.tcp->ack;  // the client's current rcv_nxt
    h.ack = pkt.tcp->seq +
            static_cast<std::uint32_t>(drop_packet ? 0 : pkt.tcp->payload.size());
    h.flags = TcpFlags::kPsh | TcpFlags::kAck;
    Ipv4Header ip;
    ip.src = pkt.ip.dst;
    ip.dst = pkt.ip.src;
    io.send_back(make_tcp_datagram(ip, h, to_bytes(k403)));
    extra_client_bytes = k403.size();
  }
  int count = action.rst_count_min +
              static_cast<int>(rng_.below(static_cast<std::uint64_t>(
                  action.rst_count_max - action.rst_count_min + 1)));
  inject_rsts(pkt, dir, io, count, /*packet_forwarded=*/!drop_packet,
              extra_client_bytes);
}

void DpiMiddlebox::inject_rsts(const PacketView& pkt, Direction dir,
                               ElementIo& io, int count, bool packet_forwarded,
                               std::size_t extra_client_bytes) {
  if (!pkt.is_tcp()) return;
  const netsim::TcpView& tcp = *pkt.tcp;
  const bool c2s = dir == Direction::kClientToServer;

  for (int i = 0; i < count; ++i) {
    // Toward the packet's destination (same direction as the packet).
    {
      TcpHeader h;
      h.src_port = tcp.src_port;
      h.dst_port = tcp.dst_port;
      h.seq = tcp.seq + static_cast<std::uint32_t>(
                            packet_forwarded ? tcp.payload.size() : 0) +
              (tcp.syn() ? 1 : 0);
      h.ack = tcp.ack;
      h.flags = TcpFlags::kRst | TcpFlags::kAck;
      Ipv4Header ip;
      ip.src = pkt.ip.src;
      ip.dst = pkt.ip.dst;
      io.forward(make_tcp_datagram(ip, h, {}));
    }
    // Toward the packet's source, impersonating the destination.
    {
      TcpHeader h;
      h.src_port = tcp.dst_port;
      h.dst_port = tcp.src_port;
      h.seq = tcp.ack + static_cast<std::uint32_t>(c2s ? extra_client_bytes : 0);
      h.ack = tcp.seq + static_cast<std::uint32_t>(
                            packet_forwarded ? tcp.payload.size() : 0);
      h.flags = TcpFlags::kRst | TcpFlags::kAck;
      Ipv4Header ip;
      ip.src = pkt.ip.dst;
      ip.dst = pkt.ip.src;
      io.send_back(make_tcp_datagram(ip, h, {}));
    }
    rsts_injected_ += 2;
    LIBERATE_COUNTER_ADD("dpi.rsts_injected", 2);
  }
}

// ---------------------------------------------------------------------------
// ConntrackFilter
// ---------------------------------------------------------------------------

void ConntrackFilter::process(Bytes datagram, Direction dir, ElementIo& io) {
  auto parsed = netsim::parse_packet(datagram);
  if (!parsed.ok()) {
    ++dropped_;
    LIBERATE_COUNTER_ADD("dpi.conntrack_drops", 1);
    return;
  }
  const PacketView& pkt = parsed.value();
  netsim::AnomalySet anomalies = netsim::anomalies_of(pkt);
  if (policy_.rejects(anomalies)) {
    ++dropped_;
    LIBERATE_COUNTER_ADD("dpi.conntrack_drops", 1);
    return;
  }

  if (validate_seq_ && pkt.is_tcp() && pkt.ip.fragment_offset_words == 0) {
    const bool c2s = dir == Direction::kClientToServer;
    FiveTuple key = c2s ? pkt.five_tuple() : pkt.five_tuple().reversed();
    const int d = c2s ? 0 : 1;
    SeqState& st = flows_[key];
    const netsim::TcpView& tcp = *pkt.tcp;
    if (tcp.syn()) {
      st.init[d] = true;
      st.next[d] = tcp.seq + 1;
    } else if (st.init[d] && !tcp.payload.empty()) {
      std::int32_t delta = static_cast<std::int32_t>(tcp.seq - st.next[d]);
      if (delta < -65536 || delta > 65536) {
        ++dropped_;  // out-of-window: stateful firewall eats it
        LIBERATE_COUNTER_ADD("dpi.conntrack_drops", 1);
        return;
      }
      std::uint32_t end =
          tcp.seq + static_cast<std::uint32_t>(tcp.payload.size());
      if (static_cast<std::int32_t>(end - st.next[d]) > 0) st.next[d] = end;
    }
    if (tcp.rst() || tcp.fin()) {
      // Keep state; closing details don't matter for filtering.
    }
  }
  io.forward(std::move(datagram));
}

// ---------------------------------------------------------------------------
// ReassemblyElement
// ---------------------------------------------------------------------------

void ReassemblyElement::process(Bytes datagram, Direction dir, ElementIo& io) {
  const int d = dir == Direction::kClientToServer ? 0 : 1;
  auto whole = reassembler_[d].push(datagram, io.now());
  reassembler_[d].expire(io.now());
  if (whole) io.forward(std::move(*whole));
}

// ---------------------------------------------------------------------------
// TransparentHttpProxy
// ---------------------------------------------------------------------------

void TransparentHttpProxy::process(Bytes datagram, Direction dir,
                                   ElementIo& io) {
  auto parsed = netsim::parse_packet(datagram);
  if (!parsed.ok()) {
    ++absorbed_;
    return;  // proxy path: malformed garbage goes nowhere
  }
  const PacketView& pkt = parsed.value();
  const bool c2s = dir == Direction::kClientToServer;

  // Only port-`config_.port` TCP traffic is proxied; everything else passes
  // (AT&T did not inspect TLS/443 at the time of the study).
  if (!pkt.is_tcp() || pkt.ip.is_fragment()) {
    if (pkt.ip.is_fragment() && pkt.ip.protocol ==
            static_cast<std::uint8_t>(netsim::IpProto::kTcp)) {
      // TCP fragments destined to the proxied port are absorbed: a
      // terminating proxy reassembles or discards, it never forwards raw
      // fragments. (We can't read the port from a non-first fragment, so be
      // conservative and absorb TCP fragments.)
      ++absorbed_;
      return;
    }
    io.forward(std::move(datagram));
    return;
  }
  FiveTuple key = c2s ? pkt.five_tuple() : pkt.five_tuple().reversed();
  if (key.dst_port != config_.port) {
    io.forward(std::move(datagram));
    return;
  }

  // A terminating proxy validates everything: crafted invalid packets die
  // here.
  netsim::AnomalySet anomalies = netsim::anomalies_of(pkt);
  if (netsim::ValidationPolicy::strict().rejects(anomalies)) {
    ++absorbed_;
    return;
  }

  auto it = sessions_.find(key);
  if (it == sessions_.end()) {
    if (c2s && pkt.tcp->syn() && !pkt.tcp->ack_flag()) {
      Session s;
      s.client_ip = pkt.ip.src;
      s.server_ip = pkt.ip.dst;
      s.client_port = pkt.tcp->src_port;
      s.server_port = pkt.tcp->dst_port;
      s.c_rcv_nxt = pkt.tcp->seq + 1;
      s.c_snd_seq = 710000;  // proxy ISS toward client
      s.s_snd_seq = 910000;  // proxy ISS toward server
      auto [sit, ok] = sessions_.emplace(key, std::move(s));
      (void)ok;
      Session& sess = sit->second;
      ++sessions_opened_;
      LIBERATE_COUNTER_ADD("dpi.proxy_sessions_opened", 1);
      // SYN|ACK to the client immediately; SYN toward the real server.
      send_to_client(sess, TcpFlags::kSyn | TcpFlags::kAck, {}, io,
                     Direction::kClientToServer);
      sess.c_snd_seq += 1;
      sess.client_established = true;
      send_to_server(sess, TcpFlags::kSyn, {}, io,
                     Direction::kClientToServer);
      sess.s_snd_seq += 1;
      sess.server_syn_sent = true;
      return;
    }
    // Unknown session traffic: pass through (e.g. stray RSTs).
    io.forward(std::move(datagram));
    return;
  }

  Session& s = it->second;
  if (s.dead) {
    ++absorbed_;
    return;
  }
  if (c2s) {
    handle_client_packet(s, pkt, io);
  } else {
    handle_server_packet(s, pkt, io);
  }
}

void TransparentHttpProxy::handle_client_packet(Session& s,
                                                const PacketView& pkt,
                                                ElementIo& io) {
  constexpr Direction kDir = Direction::kClientToServer;
  const netsim::TcpView& tcp = *pkt.tcp;
  if (tcp.rst()) {
    send_to_server(s, TcpFlags::kRst | TcpFlags::kAck, {}, io, kDir);
    s.dead = true;
    return;
  }
  if (!tcp.payload.empty()) {
    if (tcp.seq != s.c_rcv_nxt) {
      // The proxy's own stack buffers/discards; crafted or reordered data is
      // simply ACKed at the current edge. (Real data is in order because the
      // client stack retransmits.)
      if (static_cast<std::int32_t>(tcp.seq - s.c_rcv_nxt) < 0) {
        send_to_client(s, TcpFlags::kAck, {}, io, kDir);
      }
      ++absorbed_;
      return;
    }
    s.c_rcv_nxt += static_cast<std::uint32_t>(tcp.payload.size());
    send_to_client(s, TcpFlags::kAck, {}, io, kDir);

    // Classify the request head.
    if (s.request_head.size() < 4096) {
      s.request_head.insert(s.request_head.end(), tcp.payload.begin(),
                            tcp.payload.end());
      // A terminating proxy parses the request line: the stream must BEGIN
      // with a method token, and the configured keywords must appear. (The
      // anchor is what the bilateral dummy-prepend exploit targets, §7.)
      bool anchored = looks_like_http_request(BytesView(s.request_head));
      bool all = anchored;
      std::string head = to_string(BytesView(s.request_head));
      for (const auto& kw : config_.request_keywords) {
        if (!all) break;
        if (ifind(head, kw) == std::string_view::npos) all = false;
      }
      s.is_http = all;
    }
    relay_to_server(s, tcp.payload, io, kDir);
  }
  if (tcp.fin() && !s.client_fin_seen) {
    s.client_fin_seen = true;
    s.c_rcv_nxt += 1;
    send_to_client(s, TcpFlags::kAck, {}, io, kDir);
    if (s.server_established && s.pending_to_server.empty()) {
      send_to_server(s, TcpFlags::kFin | TcpFlags::kAck, {}, io, kDir);
      s.s_snd_seq += 1;
      s.client_fin_relayed = true;
    }
  }
}

void TransparentHttpProxy::handle_server_packet(Session& s,
                                                const PacketView& pkt,
                                                ElementIo& io) {
  constexpr Direction kDir = Direction::kServerToClient;
  const netsim::TcpView& tcp = *pkt.tcp;
  if (tcp.rst()) {
    send_to_client(s, TcpFlags::kRst | TcpFlags::kAck, {}, io, kDir);
    s.dead = true;
    return;
  }
  if (tcp.syn() && tcp.ack_flag() && !s.server_established) {
    s.s_rcv_nxt = tcp.seq + 1;
    s.server_established = true;
    send_to_server(s, TcpFlags::kAck, {}, io, kDir);
    if (!s.pending_to_server.empty()) {
      Bytes pending = std::move(s.pending_to_server);
      s.pending_to_server.clear();
      relay_to_server(s, pending, io, kDir);
    }
    if (s.client_fin_seen && !s.client_fin_relayed) {
      send_to_server(s, TcpFlags::kFin | TcpFlags::kAck, {}, io, kDir);
      s.s_snd_seq += 1;
      s.client_fin_relayed = true;
    }
    return;
  }
  if (!tcp.payload.empty()) {
    if (tcp.seq != s.s_rcv_nxt) {
      if (static_cast<std::int32_t>(tcp.seq - s.s_rcv_nxt) < 0) {
        send_to_server(s, TcpFlags::kAck, {}, io, kDir);
      }
      ++absorbed_;
      return;
    }
    s.s_rcv_nxt += static_cast<std::uint32_t>(tcp.payload.size());
    send_to_server(s, TcpFlags::kAck, {}, io, kDir);

    // Classify the response head (Content-Type: video -> throttle).
    if (s.response_head.size() < 4096) {
      s.response_head.insert(s.response_head.end(), tcp.payload.begin(),
                             tcp.payload.end());
      if (s.is_http && !s.throttled) {
        auto resp = parse_http_response(BytesView(s.response_head));
        if (resp && resp->content_type() &&
            ifind(*resp->content_type(), config_.content_type_keyword) !=
                std::string_view::npos) {
          s.throttled = true;
          ++throttled_sessions_;
          LIBERATE_COUNTER_ADD("dpi.proxy_sessions_throttled", 1);
        }
      }
    }
    relay_to_client(s, tcp.payload, io, kDir);
  }
  if (tcp.fin() && !s.server_fin_seen) {
    s.server_fin_seen = true;
    s.s_rcv_nxt += 1;
    send_to_server(s, TcpFlags::kAck, {}, io, kDir);
    send_to_client(s, TcpFlags::kFin | TcpFlags::kAck, {}, io, kDir);
    s.c_snd_seq += 1;
  }
}

void TransparentHttpProxy::relay_to_server(Session& s, BytesView data,
                                           ElementIo& io,
                                           Direction io_dir) {
  if (!s.server_established) {
    s.pending_to_server.insert(s.pending_to_server.end(), data.begin(),
                               data.end());
    return;
  }
  for (std::size_t off = 0; off < data.size(); off += config_.mss) {
    std::size_t n = std::min(config_.mss, data.size() - off);
    send_to_server(s, TcpFlags::kAck | TcpFlags::kPsh, data.subspan(off, n),
                   io, io_dir);
    s.s_snd_seq += static_cast<std::uint32_t>(n);
  }
}

void TransparentHttpProxy::relay_to_client(Session& s, BytesView data,
                                           ElementIo& io,
                                           Direction io_dir) {
  const netsim::TimePoint now = io.now();
  if (s.busy_until < now) s.busy_until = now;
  for (std::size_t off = 0; off < data.size(); off += config_.mss) {
    std::size_t n = std::min(config_.mss, data.size() - off);
    netsim::Duration delay = 0;
    if (s.throttled) {
      netsim::Duration transmit = static_cast<netsim::Duration>(
          static_cast<double>(n) / config_.throttle_bytes_per_sec * 1e6);
      s.busy_until += transmit;
      delay = s.busy_until - now;
    }
    send_to_client(s, TcpFlags::kAck | TcpFlags::kPsh, data.subspan(off, n),
                   io, io_dir, delay);
    s.c_snd_seq += static_cast<std::uint32_t>(n);
  }
}

void TransparentHttpProxy::send_to_client(Session& s, std::uint8_t flags,
                                          BytesView payload, ElementIo& io,
                                          Direction io_dir,
                                          netsim::Duration delay) {
  TcpHeader h;
  h.src_port = s.server_port;
  h.dst_port = s.client_port;
  h.seq = s.c_snd_seq;
  h.ack = s.c_rcv_nxt;
  h.flags = flags;
  Ipv4Header ip;
  ip.src = s.server_ip;
  ip.dst = s.client_ip;
  Bytes dgram = make_tcp_datagram(ip, h, payload);
  // Toward the client = backward for a c2s packet, forward for an s2c one.
  if (io_dir == Direction::kClientToServer) {
    if (delay == 0) {
      io.send_back(std::move(dgram));
    } else {
      io.send_back_after(delay, std::move(dgram));
    }
  } else {
    if (delay == 0) {
      io.forward(std::move(dgram));
    } else {
      io.forward_after(delay, std::move(dgram));
    }
  }
}

void TransparentHttpProxy::send_to_server(Session& s, std::uint8_t flags,
                                          BytesView payload, ElementIo& io,
                                          Direction io_dir) {
  TcpHeader h;
  h.src_port = s.client_port;
  h.dst_port = s.server_port;
  h.seq = s.s_snd_seq;
  h.ack = s.s_rcv_nxt;
  h.flags = flags;
  Ipv4Header ip;
  ip.src = s.client_ip;
  ip.dst = s.server_ip;
  Bytes dgram = make_tcp_datagram(ip, h, payload);
  if (io_dir == Direction::kClientToServer) {
    io.forward(std::move(dgram));
  } else {
    io.send_back(std::move(dgram));
  }
}

}  // namespace liberate::dpi
