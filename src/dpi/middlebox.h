// middlebox.h — in-path elements built around the DPI engine.
//
//  * DpiMiddlebox — classifier + policy actions (throttle / block / zero-
//    rate), GFC-style endpoint escalation, RST/403 injection.
//  * ConntrackFilter — carrier-network stateful firewall: drops malformed
//    packets and out-of-window TCP segments. Models the observation (§6.2,
//    §7) that "many of the inert packets that worked in our testbed were
//    dropped in every operational network we tested".
//  * ReassemblyElement — mid-path IP fragment reassembly (Table 3 note 2:
//    "the fragmented packets are reassembled before reaching the server" on
//    T-Mobile and the GFC paths).
//  * TransparentHttpProxy — AT&T Stream Saver: a TCP-terminating HTTP proxy
//    on port 80 that classifies request keywords and response Content-Type
//    and paces classified flows; every packet-level evasion necessarily
//    fails against it (§6.3).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>

#include "dpi/classifier.h"
#include "netsim/network.h"
#include "stack/ip_reassembly.h"
#include "util/rng.h"

namespace liberate::dpi {

/// What a middlebox does to flows of a given traffic class.
struct PolicyAction {
  /// Exempt the flow's bytes from the user's data-usage counter (T-Mobile
  /// Binge On / Music Freedom).
  bool zero_rate = false;
  /// Pace the flow to this rate (T-Mobile 1.5 Mbps for video; AT&T Stream
  /// Saver 1.5 Mbps).
  std::optional<double> throttle_bytes_per_sec;
  std::size_t throttle_queue_bytes = 96 * 1024;
  /// Kill the flow: inject RSTs toward both endpoints (GFC: 3–5 RSTs; Iran:
  /// a 403 page plus 2 RSTs).
  bool block = false;
  int rst_count_min = 3;
  int rst_count_max = 5;
  bool send_403 = false;
  /// Drop the packet that triggered the match (in-path censor) rather than
  /// forwarding it (on-path injector like the GFC).
  bool drop_matching_packet = false;
};

struct MiddleboxConfig {
  ClassifierConfig classifier;
  std::vector<MatchRule> rules;
  std::map<std::string, PolicyAction> actions;  // traffic_class -> action

  /// §4.2 countermeasure: do not differentiate traffic to these (known
  /// lib·erate replay-server) addresses. Defeated by previously unseen
  /// servers — see detect_differentiation_robust.
  std::set<std::uint32_t> whitelisted_server_ips;

  /// GFC behaviour: after `escalation_threshold` blocked flows to the same
  /// (server, port), block that endpoint entirely for `escalation_duration`.
  bool endpoint_escalation = false;
  int escalation_threshold = 2;
  netsim::Duration escalation_duration = netsim::minutes(5);

  std::uint64_t seed = 1234;
};

class DpiMiddlebox : public netsim::PathElement {
 public:
  explicit DpiMiddlebox(MiddleboxConfig config)
      : config_(std::move(config)),
        engine_(config_.classifier, config_.rules),
        rng_(config_.seed) {}

  void process(Bytes datagram, netsim::Direction dir,
               netsim::ElementIo& io) override;
  std::string name() const override {
    return "dpi:" + config_.classifier.name;
  }

  DpiEngine& engine() { return engine_; }
  const MiddleboxConfig& config() const { return config_; }

  /// Data-usage accounting (the observable T-Mobile zero-rating signal).
  std::uint64_t usage_counter_bytes() const { return usage_counter_bytes_; }
  std::uint64_t zero_rated_bytes() const { return zero_rated_bytes_; }
  std::uint64_t rsts_injected() const { return rsts_injected_; }
  std::uint64_t packets_dropped() const { return packets_dropped_; }
  std::size_t blocked_endpoints() const { return endpoint_blocklist_.size(); }

 private:
  struct EndpointKey {
    std::uint32_t ip;
    std::uint16_t port;
    auto operator<=>(const EndpointKey&) const = default;
  };

  void apply_block(const netsim::PacketView& pkt, netsim::Direction dir,
                   netsim::ElementIo& io, const PolicyAction& action,
                   bool drop_packet);
  void inject_rsts(const netsim::PacketView& pkt, netsim::Direction dir,
                   netsim::ElementIo& io, int count, bool packet_forwarded,
                   std::size_t extra_client_bytes);
  bool throttle_forward(const std::string& klass, Bytes datagram,
                        netsim::Direction dir, netsim::ElementIo& io);

  MiddleboxConfig config_;
  DpiEngine engine_;
  Rng rng_;

  // Per-class pacing state (shared across directions; upstream traffic is
  // negligible next to the throttled downstream).
  struct PaceState {
    netsim::TimePoint busy_until = 0;
    std::size_t queued = 0;
  };
  std::map<std::string, PaceState> pace_;

  std::map<EndpointKey, int> endpoint_hits_;
  std::map<EndpointKey, netsim::TimePoint> endpoint_blocklist_;  // expiry

  std::uint64_t usage_counter_bytes_ = 0;
  std::uint64_t zero_rated_bytes_ = 0;
  std::uint64_t rsts_injected_ = 0;
  std::uint64_t packets_dropped_ = 0;
};

/// Stateful carrier firewall.
class ConntrackFilter : public netsim::PathElement {
 public:
  explicit ConntrackFilter(netsim::ValidationPolicy drop_policy,
                           bool validate_seq = true)
      : policy_(drop_policy), validate_seq_(validate_seq) {}

  void process(Bytes datagram, netsim::Direction dir,
               netsim::ElementIo& io) override;
  std::string name() const override { return "conntrack"; }
  std::uint64_t dropped() const { return dropped_; }

 private:
  struct SeqState {
    bool init[2] = {false, false};
    std::uint32_t next[2] = {0, 0};
  };
  netsim::ValidationPolicy policy_;
  bool validate_seq_;
  std::map<netsim::FiveTuple, SeqState> flows_;
  std::uint64_t dropped_ = 0;
};

/// Mid-path IP fragment reassembly.
class ReassemblyElement : public netsim::PathElement {
 public:
  ReassemblyElement() = default;
  /// Reassemble with an explicit conflicting-overlap policy — how the new
  /// classifier profiles (Suricata/Zeek/conntrack-style) get their distinct
  /// fragment-ambiguity resolutions.
  explicit ReassemblyElement(stack::ReassemblyPolicy policy)
      : reassembler_{stack::IpReassembler(policy),
                     stack::IpReassembler(policy)} {}
  void process(Bytes datagram, netsim::Direction dir,
               netsim::ElementIo& io) override;
  std::string name() const override { return "reassembler"; }

 private:
  stack::IpReassembler reassembler_[2];  // per direction
};

/// AT&T Stream Saver: transparent TCP-terminating HTTP proxy on port 80.
class TransparentHttpProxy : public netsim::PathElement {
 public:
  struct Config {
    std::uint16_t port = 80;
    /// Request keywords that mark the flow as inspectable HTTP.
    std::vector<std::string> request_keywords{"GET", "HTTP/1.1"};
    /// Response Content-Type prefix that triggers throttling.
    std::string content_type_keyword = "video";
    double throttle_bytes_per_sec = 1.5e6 / 8;  // "DVD quality": 1.5 Mbps
    std::size_t mss = 1400;
  };

  explicit TransparentHttpProxy(Config config) : config_(std::move(config)) {}

  void process(Bytes datagram, netsim::Direction dir,
               netsim::ElementIo& io) override;
  std::string name() const override { return "proxy:att"; }

  std::uint64_t sessions_opened() const { return sessions_opened_; }
  std::uint64_t throttled_sessions() const { return throttled_sessions_; }
  std::uint64_t crafted_packets_absorbed() const { return absorbed_; }

 private:
  struct Session {
    // Client side: we impersonate the server.
    std::uint32_t client_ip, server_ip;
    std::uint16_t client_port, server_port;
    std::uint32_t c_rcv_nxt = 0;  // next byte expected from client
    std::uint32_t c_snd_seq = 0;  // our next seq toward client
    bool client_established = false;
    bool client_fin_seen = false;
    bool client_fin_relayed = false;
    // Server side: we impersonate the client.
    std::uint32_t s_rcv_nxt = 0;
    std::uint32_t s_snd_seq = 0;
    bool server_established = false;
    bool server_syn_sent = false;
    bool server_fin_seen = false;
    Bytes pending_to_server;  // client data awaiting server handshake
    // Classification.
    Bytes request_head;
    Bytes response_head;
    bool is_http = false;
    bool throttled = false;
    // Pacing toward the client.
    netsim::TimePoint busy_until = 0;
    bool dead = false;
  };

  using SessionKey = netsim::FiveTuple;  // client -> server orientation

  void handle_client_packet(Session& s, const netsim::PacketView& pkt,
                            netsim::ElementIo& io);
  void handle_server_packet(Session& s, const netsim::PacketView& pkt,
                            netsim::ElementIo& io);
  void relay_to_server(Session& s, BytesView data, netsim::ElementIo& io,
                       netsim::Direction io_dir);
  void relay_to_client(Session& s, BytesView data, netsim::ElementIo& io,
                       netsim::Direction io_dir);
  // `io_dir` is the direction of the packet currently being processed: it
  // decides whether a crafted packet toward an endpoint is a forward() or a
  // send_back() on the transient ElementIo.
  void send_to_client(Session& s, std::uint8_t flags, BytesView payload,
                      netsim::ElementIo& io, netsim::Direction io_dir,
                      netsim::Duration delay = 0);
  void send_to_server(Session& s, std::uint8_t flags, BytesView payload,
                      netsim::ElementIo& io, netsim::Direction io_dir);

  Config config_;
  std::map<SessionKey, Session> sessions_;
  std::uint64_t sessions_opened_ = 0;
  std::uint64_t throttled_sessions_ = 0;
  std::uint64_t absorbed_ = 0;
};

}  // namespace liberate::dpi
