#include "dpi/normalizer.h"

namespace liberate::dpi {

void NormalizerElement::process(Bytes datagram, netsim::Direction dir,
                                netsim::ElementIo& io) {
  auto parsed = netsim::parse_packet(datagram);
  if (!parsed.ok()) {
    ++dropped_;
    return;
  }

  if (config_.reassemble_fragments && parsed.value().ip.is_fragment()) {
    const int d = dir == netsim::Direction::kClientToServer ? 0 : 1;
    auto whole = reassembler_[d].push(datagram, io.now());
    reassembler_[d].expire(io.now());
    if (!whole) return;
    datagram = std::move(*whole);
    parsed = netsim::parse_packet(datagram);
    if (!parsed.ok()) {
      ++dropped_;
      return;
    }
  }

  if (config_.drop_malformed) {
    netsim::AnomalySet anomalies = netsim::anomalies_of(parsed.value());
    // Everything except the benign fragment marker counts as malformed here
    // (deprecated options included: a normalizer strips oddities).
    if (anomalies & ~netsim::anomaly_bit(netsim::Anomaly::kIpFragment)) {
      ++dropped_;
      return;
    }
  }

  if (config_.ttl_floor != 0 && parsed.value().ip.ttl < config_.ttl_floor) {
    netsim::set_ttl_in_place(datagram, config_.ttl_floor);
    ++ttl_raised_;
  }

  io.forward(std::move(datagram));
}

}  // namespace liberate::dpi
