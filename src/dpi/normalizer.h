// normalizer.h — §4.3 "Evasion countermeasures": a traffic normalizer in the
// spirit of Kreibich et al.'s `norm`, deployed in FRONT of a classifier to
// neutralize lib·erate's techniques.
//
// The paper argues each countermeasure is possible but costly; the
// ablation bench (bench_ablation_countermeasures) measures exactly which
// techniques each knob kills. "Interestingly, we find that few defenses
// identified by norm are adopted by the middleboxes we studied."
#pragma once

#include "netsim/network.h"
#include "stack/ip_reassembly.h"

namespace liberate::dpi {

struct NormalizerConfig {
  /// Drop packets with any header anomaly ("a network could detect and
  /// filter lib·erate's inert packets"). Kills the invalid-field inert
  /// variants.
  bool drop_malformed = false;
  /// Raise every TTL below this floor up to it ("defeated if the middlebox
  /// normalizes the TTL to a large value" — with the paper's caveat about
  /// amplifying transient loops). Kills the TTL-limited techniques.
  std::uint8_t ttl_floor = 0;  // 0 = disabled
  /// Reassemble IP fragments before the classifier.
  bool reassemble_fragments = false;
  /// Conflicting-overlap resolution used when reassembling (the conntrack
  /// profile normalizes with Linux semantics; see stack/ip_reassembly.h).
  stack::ReassemblyPolicy reassembly_policy = stack::ReassemblyPolicy::kLastWins;
};

class NormalizerElement : public netsim::PathElement {
 public:
  explicit NormalizerElement(NormalizerConfig config)
      : config_(config),
        reassembler_{stack::IpReassembler(config.reassembly_policy),
                     stack::IpReassembler(config.reassembly_policy)} {}

  void process(Bytes datagram, netsim::Direction dir,
               netsim::ElementIo& io) override;
  std::string name() const override { return "normalizer"; }

  std::uint64_t dropped() const { return dropped_; }
  std::uint64_t ttl_raised() const { return ttl_raised_; }

 private:
  NormalizerConfig config_;
  stack::IpReassembler reassembler_[2];
  std::uint64_t dropped_ = 0;
  std::uint64_t ttl_raised_ = 0;
};

}  // namespace liberate::dpi
