#include "dpi/profiles.h"

#include "dpi/normalizer.h"
#include "dpi/stun_parser.h"

#include <cmath>
#include <functional>
#include <stdexcept>

namespace liberate::dpi {

using netsim::Anomaly;
using netsim::anomaly_bit;
using netsim::AnomalySet;
using netsim::ip_addr;
using netsim::RouterHop;
using netsim::ValidationPolicy;

namespace {

AnomalySet set_of(std::initializer_list<Anomaly> list) {
  AnomalySet s = 0;
  for (Anomaly a : list) s |= anomaly_bit(a);
  return s;
}

// --------------------------------------------------------------------------
// Canonical rule sets. Trace generators (src/trace) emit content containing
// exactly these fields, mirroring the applications the paper replayed.
// --------------------------------------------------------------------------

// Every carrier-grade classifier recognizes far more applications than it
// differentiates. The "news" class below is one such benign-but-classified
// application; inert-packet evasion relies on it (Fig. 2(b)/(c): the inert
// packet carries a valid request for *another* class, and a match-and-forget
// classifier sticks to that benign verdict).
MatchRule benign_news_rule(bool anchored, std::optional<std::uint16_t> port) {
  MatchRule r;
  r.name = "benign-news";
  r.traffic_class = "news";
  if (anchored) {
    r.keywords = {"GET", "news-decoy.example.net"};
    r.anchored = true;
  } else {
    r.keywords = {"news-decoy.example.net"};
  }
  r.dst_port = port;
  return r;
}

std::vector<MatchRule> testbed_rules() {
  std::vector<MatchRule> rules;
  {
    MatchRule r;
    r.name = "testbed-http-video";
    r.traffic_class = "video";
    r.keywords = {"Host: d25xi40x97liuc.cloudfront.net"};
    rules.push_back(r);
  }
  {
    MatchRule r;
    r.name = "testbed-http-music";
    r.traffic_class = "music";
    r.keywords = {"Host: api.spotify.com"};
    rules.push_back(r);
  }
  {
    MatchRule r;
    r.name = "testbed-skype-stun";
    r.traffic_class = "voip";
    r.udp = true;
    r.stun_attribute = kStunAttrMsServiceQuality;
    r.only_packet_index = 1;  // first client packet only (§6.1)
    rules.push_back(r);
  }
  rules.push_back(benign_news_rule(false, std::nullopt));
  return rules;
}

std::vector<MatchRule> tmus_rules() {
  std::vector<MatchRule> rules;
  {
    MatchRule r;  // Amazon Prime Video over CloudFront (Host header)
    r.name = "tmus-host-cloudfront";
    r.traffic_class = "video";
    r.keywords = {"cloudfront.net"};
    rules.push_back(r);
  }
  {
    MatchRule r;  // YouTube (TLS SNI)
    r.name = "tmus-sni-googlevideo";
    r.traffic_class = "video";
    r.keywords = {".googlevideo.com"};
    rules.push_back(r);
  }
  {
    MatchRule r;  // Spotify (Music Freedom)
    r.name = "tmus-spotify";
    r.traffic_class = "music";
    r.keywords = {"spotify.com"};
    rules.push_back(r);
  }
  rules.push_back(benign_news_rule(false, std::nullopt));
  return rules;
}

std::vector<MatchRule> gfc_rules() {
  std::vector<MatchRule> rules;
  {
    MatchRule r;
    r.name = "gfc-economist";
    r.traffic_class = "censored";
    r.keywords = {"GET", "economist.com"};
    r.anchored = true;  // stream must open with GET (dummy-byte prepend evades)
    rules.push_back(r);
  }
  {
    MatchRule r;
    r.name = "gfc-facebook";
    r.traffic_class = "censored";
    r.keywords = {"GET", "facebook.com"};
    r.anchored = true;
    rules.push_back(r);
  }
  rules.push_back(benign_news_rule(true, std::nullopt));
  return rules;
}

std::vector<MatchRule> iran_rules() {
  std::vector<MatchRule> rules;
  {
    MatchRule r;
    r.name = "iran-facebook";
    r.traffic_class = "censored";
    r.keywords = {"GET", "facebook.com"};
    r.dst_port = 80;  // port-specific + content-specific (§6.6)
    rules.push_back(r);
  }
  {
    MatchRule r;
    r.name = "iran-twitter";
    r.traffic_class = "censored";
    r.keywords = {"GET", "twitter.com"};
    r.dst_port = 80;
    rules.push_back(r);
  }
  rules.push_back(benign_news_rule(false, 80));
  return rules;
}

}  // namespace

double diurnal_load(double hour_of_day) {
  // Trough at 04:00, peak around 16:00; smooth cosine shape in [0, 1].
  return 0.5 * (1.0 - std::cos(2.0 * M_PI * (hour_of_day - 4.0) / 24.0));
}

netsim::Duration gfc_eviction_threshold(netsim::TimePoint now) {
  double hour = std::fmod(netsim::to_seconds(now) / 3600.0, 24.0);
  double load = diurnal_load(hour);
  // Busy hours: state evicted after ~40 s idle; quiet hours: ~10 min (well
  // beyond the 240 s maximum delay the paper tested, hence the red dots in
  // Figure 4 at night).
  double seconds = 40.0 + (1.0 - load) * 560.0;
  return static_cast<netsim::Duration>(seconds * 1e6);
}

std::unique_ptr<Environment> make_testbed(std::uint64_t seed) {
  auto env = std::make_unique<Environment>();
  env->name = "testbed";
  env->signal = Environment::Signal::kDirect;

  ClassifierConfig c;
  c.name = "testbed";
  // The testbed device "does not check for a wide range of invalid packet
  // header values" (§1): it validates only the fields whose Table 3 rows
  // show CC = x.
  c.validated_anomalies =
      set_of({Anomaly::kBadIpVersion, Anomaly::kBadIpHeaderLength,
              Anomaly::kIpTotalLengthShort, Anomaly::kBadTcpDataOffset});
  c.requires_syn = true;
  c.match_and_forget = true;
  c.mode = ClassifierConfig::Mode::kPerPacket;
  c.packet_inspection_limit = 5;
  c.inspect_udp = true;
  c.parse_transport_despite_wrong_protocol = true;  // Table 3 note 1
  c.validate_tcp_seq = false;
  c.result_timeout = netsim::seconds(120);       // §6.1
  c.flush_flow_on_rst = true;                    // RST is a teardown signal
  c.result_cache_after_rst = netsim::seconds(10);  // result lingers 10 s
  c.idle_eviction_threshold = [](netsim::TimePoint) {
    return netsim::seconds(120);
  };

  MiddleboxConfig mc;
  mc.classifier = c;
  mc.rules = testbed_rules();
  PolicyAction shape;
  shape.throttle_bytes_per_sec = 1.5e6 / 8;
  mc.actions["video"] = shape;
  mc.actions["music"] = shape;
  mc.actions["voip"] = shape;
  mc.seed = seed;

  env->net.emplace<RouterHop>(ip_addr("10.1.0.1"));
  env->pre_middlebox_tap = &env->net.emplace<netsim::TapElement>("pre-dpi");
  env->dpi = &env->net.emplace<DpiMiddlebox>(mc);
  auto& r2 = env->net.emplace<RouterHop>(ip_addr("10.1.0.2"));
  ValidationPolicy exit_filter;
  exit_filter.checked =
      set_of({Anomaly::kBadIpVersion, Anomaly::kBadIpHeaderLength,
              Anomaly::kIpTotalLengthLong, Anomaly::kIpTotalLengthShort,
              Anomaly::kBadIpChecksum, Anomaly::kTcpDataNoAck});
  r2.filter(exit_filter);
  env->hops_before_middlebox = 1;
  env->total_router_hops = 2;
  return env;
}

std::unique_ptr<Environment> make_tmus(std::uint64_t seed) {
  auto env = std::make_unique<Environment>();
  env->name = "tmus";
  env->signal = Environment::Signal::kZeroRating;

  ClassifierConfig c;
  c.name = "tmus-binge-on";
  c.validated_anomalies = set_of(
      {Anomaly::kBadIpVersion, Anomaly::kBadIpHeaderLength,
       Anomaly::kIpTotalLengthLong, Anomaly::kIpTotalLengthShort,
       Anomaly::kBadIpChecksum, Anomaly::kUnknownIpProtocol,
       Anomaly::kBadTcpChecksum, Anomaly::kBadTcpDataOffset,
       Anomaly::kInvalidTcpFlagCombo, Anomaly::kTcpDataNoAck});
  c.requires_syn = true;
  c.match_and_forget = true;
  c.mode = ClassifierConfig::Mode::kStream;
  c.stream_anchor_prefixes = {"GET", std::string("\x16\x03", 2)};
  c.stream_handles_out_of_order = false;  // reordering evades (§6.2)
  c.packet_inspection_limit = 5;          // first five packets only (§6.2)
  c.inspect_udp = false;                  // QUIC/UDP unclassified (§6.2)
  c.validate_tcp_seq = true;
  c.result_timeout = std::nullopt;        // persists > 240 s (§6.2)
  c.flush_flow_on_rst = true;             // flushed immediately on RST (§6.2)

  MiddleboxConfig mc;
  mc.classifier = c;
  mc.rules = tmus_rules();
  PolicyAction video;
  video.zero_rate = true;
  video.throttle_bytes_per_sec = 1.5e6 / 8;  // Binge On "DVD quality"
  mc.actions["video"] = video;
  PolicyAction music;
  music.zero_rate = true;
  mc.actions["music"] = music;
  mc.seed = seed;

  // Cellular access link: generous default; §6.2's throughput bench varies
  // the rate to model a real radio link.
  env->base_bandwidth = &env->net.emplace<netsim::BandwidthElement>(
      15e6 / 8, 256 * 1024);
  env->net.emplace<RouterHop>(ip_addr("10.2.0.1"));
  env->net.emplace<RouterHop>(ip_addr("10.2.0.2"));
  env->net.emplace<ReassemblyElement>();  // fragments reassembled mid-path
  env->pre_middlebox_tap = &env->net.emplace<netsim::TapElement>("pre-dpi");
  env->dpi = &env->net.emplace<DpiMiddlebox>(mc);
  ValidationPolicy carrier;
  carrier.checked = set_of(
      {Anomaly::kBadIpVersion, Anomaly::kBadIpHeaderLength,
       Anomaly::kIpTotalLengthLong, Anomaly::kIpTotalLengthShort,
       Anomaly::kBadIpChecksum, Anomaly::kInvalidIpOptions,
       Anomaly::kDeprecatedIpOptions, Anomaly::kBadTcpChecksum,
       Anomaly::kBadTcpDataOffset, Anomaly::kInvalidTcpFlagCombo,
       Anomaly::kTcpDataNoAck, Anomaly::kBadUdpChecksum,
       Anomaly::kUdpLengthLong, Anomaly::kUdpLengthShort});
  env->net.emplace<ConntrackFilter>(carrier, /*validate_seq=*/true);
  env->net.emplace<RouterHop>(ip_addr("10.2.0.3"));
  env->hops_before_middlebox = 2;  // TTL = 3 suffices (§6.2)
  env->total_router_hops = 3;
  return env;
}

std::unique_ptr<Environment> make_gfc(std::uint64_t seed) {
  auto env = std::make_unique<Environment>();
  env->name = "gfc";
  env->signal = Environment::Signal::kBlocking;

  ClassifierConfig c;
  c.name = "great-firewall";
  // "the GFC does extensive packet validation" (§1) — but notably NOT the
  // TCP checksum, and it accepts data segments without an ACK flag.
  c.validated_anomalies = set_of(
      {Anomaly::kBadIpVersion, Anomaly::kBadIpHeaderLength,
       Anomaly::kIpTotalLengthLong, Anomaly::kIpTotalLengthShort,
       Anomaly::kBadIpChecksum, Anomaly::kUnknownIpProtocol,
       Anomaly::kInvalidIpOptions, Anomaly::kDeprecatedIpOptions,
       Anomaly::kBadTcpDataOffset, Anomaly::kInvalidTcpFlagCombo});
  c.requires_syn = true;  // mid-flow packets on unknown flows are ignored
  c.match_and_forget = true;
  c.mode = ClassifierConfig::Mode::kStream;
  c.stream_handles_out_of_order = true;  // reordering does NOT evade (§6.5)
  c.packet_inspection_limit = 0;
  c.inspect_udp = false;                 // UDP unclassified (§6.5)
  c.validate_tcp_seq = true;
  c.flush_flow_on_rst = true;            // RST before match evades...
  c.block_survives_flush = true;         // ...RST after match does not
  c.idle_eviction_threshold = gfc_eviction_threshold;  // Figure 4

  MiddleboxConfig mc;
  mc.classifier = c;
  mc.rules = gfc_rules();
  PolicyAction block;
  block.block = true;
  block.rst_count_min = 3;  // "blocked by 3-5 RST packets" (§6.5)
  block.rst_count_max = 5;
  block.drop_matching_packet = false;  // on-path injector
  mc.actions["censored"] = block;
  mc.endpoint_escalation = true;   // blocks server:port after 2 flows (§6.5)
  mc.escalation_threshold = 2;
  mc.escalation_duration = netsim::seconds(120);
  mc.seed = seed;

  for (int i = 0; i < 9; ++i) {
    env->net.emplace<RouterHop>(ip_addr("10.3.0.1") +
                                static_cast<std::uint32_t>(i));
  }
  env->net.emplace<ReassemblyElement>();
  env->pre_middlebox_tap = &env->net.emplace<netsim::TapElement>("pre-dpi");
  env->dpi = &env->net.emplace<DpiMiddlebox>(mc);
  auto& exit = env->net.emplace<RouterHop>(ip_addr("10.3.0.100"));
  ValidationPolicy gfc_path;
  gfc_path.checked = set_of(
      {Anomaly::kBadIpVersion, Anomaly::kBadIpHeaderLength,
       Anomaly::kIpTotalLengthLong, Anomaly::kIpTotalLengthShort,
       Anomaly::kBadIpChecksum, Anomaly::kInvalidIpOptions,
       Anomaly::kDeprecatedIpOptions, Anomaly::kUdpLengthLong,
       Anomaly::kUdpLengthShort});
  exit.filter(gfc_path);
  exit.fix_tcp_checksums();  // Table 3 note 4
  env->hops_before_middlebox = 9;  // TTL = 10 evades (§6.5)
  env->total_router_hops = 10;
  return env;
}

std::unique_ptr<Environment> make_iran(std::uint64_t seed) {
  auto env = std::make_unique<Environment>();
  env->name = "iran";
  env->signal = Environment::Signal::kBlocking;

  ClassifierConfig c;
  c.name = "iran-censor";
  // Iran "partially checks for invalid packet headers" (§1): the plain-x
  // rows of Table 3. The note-3 rows are processed — and misclassified.
  c.validated_anomalies = set_of(
      {Anomaly::kBadIpVersion, Anomaly::kBadIpHeaderLength,
       Anomaly::kIpTotalLengthLong, Anomaly::kIpTotalLengthShort,
       Anomaly::kBadIpChecksum, Anomaly::kUnknownIpProtocol,
       Anomaly::kBadTcpDataOffset});
  c.requires_syn = false;
  c.match_and_forget = false;  // inspects EVERY packet (§6.6)
  c.mode = ClassifierConfig::Mode::kPerPacket;
  c.packet_inspection_limit = 0;
  c.inspect_udp = false;
  c.validate_tcp_seq = false;
  c.only_ports = {80};  // port-specific and content-specific rules (§6.6)

  MiddleboxConfig mc;
  mc.classifier = c;
  mc.rules = iran_rules();
  PolicyAction block;
  block.block = true;
  block.rst_count_min = 2;  // "403 Forbidden plus two RST packets" (§6.6)
  block.rst_count_max = 2;
  block.send_403 = true;
  block.drop_matching_packet = true;  // in-path censor
  mc.actions["censored"] = block;
  mc.seed = seed;

  for (int i = 0; i < 7; ++i) {
    auto& r = env->net.emplace<RouterHop>(ip_addr("10.4.0.1") +
                                          static_cast<std::uint32_t>(i));
    if (i == 6) r.drop_fragments();  // IP fragments never arrive (§6.6)
  }
  env->pre_middlebox_tap = &env->net.emplace<netsim::TapElement>("pre-dpi");
  env->dpi = &env->net.emplace<DpiMiddlebox>(mc);
  ValidationPolicy iran_path;
  iran_path.checked = set_of(
      {Anomaly::kBadIpVersion, Anomaly::kBadIpHeaderLength,
       Anomaly::kIpTotalLengthLong, Anomaly::kIpTotalLengthShort,
       Anomaly::kBadIpChecksum, Anomaly::kUnknownIpProtocol,
       Anomaly::kInvalidIpOptions, Anomaly::kDeprecatedIpOptions,
       Anomaly::kBadTcpChecksum, Anomaly::kBadTcpDataOffset,
       Anomaly::kInvalidTcpFlagCombo, Anomaly::kTcpDataNoAck});
  env->net.emplace<ConntrackFilter>(iran_path, /*validate_seq=*/true);
  env->net.emplace<RouterHop>(ip_addr("10.4.0.100"));
  env->hops_before_middlebox = 7;  // "eight hops away" (§6.6)
  env->total_router_hops = 8;
  return env;
}

namespace {

// Shared skeleton for the ambiguity-fingerprint profiles: topology, rules,
// and actions identical to the testbed so that their digests differ ONLY
// through the parsing/normalization policies under probe. The fleet soak
// relies on this — a scripted classifier swap applied to a running testbed
// world must land exactly on a named profile's fingerprint.
std::unique_ptr<Environment> make_testbed_like(
    const std::string& name, ClassifierConfig c,
    const std::function<void(Environment&)>& pre_dpi_elements,
    std::uint64_t seed) {
  auto env = std::make_unique<Environment>();
  env->name = name;
  env->signal = Environment::Signal::kDirect;

  MiddleboxConfig mc;
  mc.classifier = std::move(c);
  mc.rules = testbed_rules();
  PolicyAction shape;
  shape.throttle_bytes_per_sec = 1.5e6 / 8;
  mc.actions["video"] = shape;
  mc.actions["music"] = shape;
  mc.actions["voip"] = shape;
  mc.seed = seed;

  env->net.emplace<RouterHop>(ip_addr("10.1.0.1"));
  env->pre_middlebox_tap = &env->net.emplace<netsim::TapElement>("pre-dpi");
  if (pre_dpi_elements) pre_dpi_elements(*env);
  env->dpi = &env->net.emplace<DpiMiddlebox>(mc);
  auto& exit = env->net.emplace<RouterHop>(ip_addr("10.1.0.2"));
  ValidationPolicy exit_filter;
  exit_filter.checked =
      set_of({Anomaly::kBadIpVersion, Anomaly::kBadIpHeaderLength,
              Anomaly::kIpTotalLengthLong, Anomaly::kIpTotalLengthShort,
              Anomaly::kBadIpChecksum, Anomaly::kTcpDataNoAck});
  exit.filter(exit_filter);
  env->hops_before_middlebox = 1;
  env->total_router_hops = 2;
  return env;
}

// Suricata-style target-based engine: validating, seq-checking stream
// reassembly with "overlap: last" segment semantics and BSD-left fragment
// reassembly in front.
ClassifierConfig suricata_config() {
  ClassifierConfig c;
  c.name = "suricata";
  c.validated_anomalies =
      set_of({Anomaly::kBadTcpChecksum, Anomaly::kDeprecatedIpOptions,
              Anomaly::kInvalidIpOptions});
  c.requires_syn = true;
  c.match_and_forget = true;
  c.mode = ClassifierConfig::Mode::kStream;
  c.stream_handles_out_of_order = true;
  c.stream_overlap = ClassifierConfig::StreamOverlap::kLastWins;
  c.validate_tcp_seq = true;
  c.packet_inspection_limit = 0;
  return c;
}

// Zeek-style analyzer: first-copy segment semantics, urgent bytes delivered
// out of band (stripped from the inspected stream), checksum validation but
// no sequence-window enforcement, first-wins fragment reassembly.
ClassifierConfig zeek_config() {
  ClassifierConfig c;
  c.name = "zeek";
  c.validated_anomalies =
      set_of({Anomaly::kBadTcpChecksum, Anomaly::kInvalidIpOptions});
  c.requires_syn = true;
  c.match_and_forget = true;
  c.mode = ClassifierConfig::Mode::kStream;
  c.stream_handles_out_of_order = true;
  c.stream_overlap = ClassifierConfig::StreamOverlap::kFirstWins;
  c.validate_tcp_seq = false;
  c.strip_urgent_bytes = true;
  c.packet_inspection_limit = 0;
  return c;
}

// nDPI-style lightweight flow classifier: per-packet matching on the first
// eight payload packets, no header validation, flows picked up mid-stream.
ClassifierConfig ndpi_config() {
  ClassifierConfig c;
  c.name = "ndpi";
  c.validated_anomalies = 0;
  c.requires_syn = false;
  c.match_and_forget = true;
  c.mode = ClassifierConfig::Mode::kPerPacket;
  c.packet_inspection_limit = 8;
  c.validate_tcp_seq = false;
  return c;
}

// netfilter-conntrack-style deployment: a strict normalizer in front (drop
// anything malformed, raise low TTLs, Linux-policy fragment reassembly)
// feeding a stream engine that discards ambiguous retransmissions outright.
ClassifierConfig conntrack_strict_config() {
  ClassifierConfig c;
  c.name = "conntrack-strict";
  c.validated_anomalies = 0;  // the normalizer drops malformed packets
  c.requires_syn = true;
  c.match_and_forget = true;
  c.mode = ClassifierConfig::Mode::kStream;
  c.stream_handles_out_of_order = true;
  c.stream_overlap = ClassifierConfig::StreamOverlap::kIgnore;
  c.validate_tcp_seq = true;
  c.packet_inspection_limit = 0;
  return c;
}

// Permissive first-match middlebox: believes the first copy of every byte,
// validates nothing, drops out-of-order bytes on the floor.
ClassifierConfig permissive_config() {
  ClassifierConfig c;
  c.name = "permissive";
  c.validated_anomalies = 0;
  c.requires_syn = true;
  c.match_and_forget = true;
  c.mode = ClassifierConfig::Mode::kStream;
  c.stream_handles_out_of_order = false;
  c.stream_overlap = ClassifierConfig::StreamOverlap::kFirstWins;
  c.validate_tcp_seq = false;
  return c;
}

}  // namespace

ClassifierConfig ambiguity_profile_config(const std::string& name) {
  if (name == "suricata") return suricata_config();
  if (name == "zeek") return zeek_config();
  if (name == "ndpi") return ndpi_config();
  if (name == "conntrack-strict") return conntrack_strict_config();
  if (name == "permissive") return permissive_config();
  throw std::invalid_argument("unknown ambiguity profile: " + name);
}

std::unique_ptr<Environment> make_suricata(std::uint64_t seed) {
  return make_testbed_like(
      "suricata", suricata_config(),
      [](Environment& env) {
        env.net.emplace<ReassemblyElement>(stack::ReassemblyPolicy::kBsdLeft);
      },
      seed);
}

std::unique_ptr<Environment> make_zeek(std::uint64_t seed) {
  return make_testbed_like(
      "zeek", zeek_config(),
      [](Environment& env) {
        env.net.emplace<ReassemblyElement>(
            stack::ReassemblyPolicy::kFirstWins);
      },
      seed);
}

std::unique_ptr<Environment> make_ndpi(std::uint64_t seed) {
  return make_testbed_like("ndpi", ndpi_config(), nullptr, seed);
}

std::unique_ptr<Environment> make_conntrack_strict(std::uint64_t seed) {
  return make_testbed_like(
      "conntrack-strict", conntrack_strict_config(),
      [](Environment& env) {
        NormalizerConfig nc;
        nc.drop_malformed = true;
        nc.ttl_floor = 10;
        nc.reassemble_fragments = true;
        nc.reassembly_policy = stack::ReassemblyPolicy::kLinux;
        env.net.emplace<NormalizerElement>(nc);
      },
      seed);
}

std::unique_ptr<Environment> make_permissive(std::uint64_t seed) {
  return make_testbed_like("permissive", permissive_config(), nullptr, seed);
}

std::unique_ptr<Environment> make_att(std::uint64_t seed) {
  (void)seed;
  auto env = std::make_unique<Environment>();
  env->name = "att";
  env->signal = Environment::Signal::kThroughput;

  env->net.emplace<RouterHop>(ip_addr("10.5.0.1"));
  env->net.emplace<RouterHop>(ip_addr("10.5.0.2"));
  env->pre_middlebox_tap = &env->net.emplace<netsim::TapElement>("pre-proxy");
  env->proxy = &env->net.emplace<TransparentHttpProxy>(
      TransparentHttpProxy::Config{});
  auto& exit = env->net.emplace<RouterHop>(ip_addr("10.5.0.3"));
  ValidationPolicy att_path;
  att_path.checked = set_of({Anomaly::kBadUdpChecksum, Anomaly::kUdpLengthLong,
                             Anomaly::kUdpLengthShort});
  exit.filter(att_path);
  env->hops_before_middlebox = 2;
  env->total_router_hops = 3;
  return env;
}

std::unique_ptr<Environment> make_sprint(std::uint64_t seed) {
  (void)seed;
  auto env = std::make_unique<Environment>();
  env->name = "sprint";
  env->signal = Environment::Signal::kNone;
  env->differentiates = false;  // no DPI or header-space policy found (§6.4)

  env->net.emplace<RouterHop>(ip_addr("10.6.0.1"));
  env->net.emplace<RouterHop>(ip_addr("10.6.0.2"));
  env->net.emplace<RouterHop>(ip_addr("10.6.0.3"));
  env->hops_before_middlebox = 0;
  env->total_router_hops = 3;
  return env;
}

std::unique_ptr<Environment> make_environment(const std::string& name,
                                              std::uint64_t seed) {
  if (name == "testbed") return make_testbed(seed);
  if (name == "tmus") return make_tmus(seed);
  if (name == "gfc") return make_gfc(seed);
  if (name == "iran") return make_iran(seed);
  if (name == "att") return make_att(seed);
  if (name == "sprint") return make_sprint(seed);
  if (name == "suricata") return make_suricata(seed);
  if (name == "zeek") return make_zeek(seed);
  if (name == "ndpi") return make_ndpi(seed);
  if (name == "conntrack-strict") return make_conntrack_strict(seed);
  if (name == "permissive") return make_permissive(seed);
  return nullptr;
}

std::vector<std::string> environment_names() {
  return {"testbed",  "tmus", "gfc",      "iran",
          "att",      "sprint", "suricata", "zeek",
          "ndpi",     "conntrack-strict", "permissive"};
}

}  // namespace liberate::dpi
