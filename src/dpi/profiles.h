// profiles.h — the evaluation environments of §6 as mechanism configurations.
//
// Each factory assembles a complete network path (routers, filters,
// reassemblers, the middlebox) inside a self-owned Environment. The client
// and server hosts are attached by the experiment harness. Every Table 3
// cell must *emerge* from these configurations; see DESIGN.md §4 for the
// mechanism notes and the provenance of every knob.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "dpi/middlebox.h"
#include "netsim/event_loop.h"
#include "netsim/network.h"
#include "stack/os_profile.h"

namespace liberate::dpi {

struct Environment {
  std::string name;
  netsim::EventLoop loop;
  netsim::Network net{loop};

  DpiMiddlebox* dpi = nullptr;           // null for AT&T / Sprint
  TransparentHttpProxy* proxy = nullptr; // AT&T only
  netsim::TapElement* pre_middlebox_tap = nullptr;
  /// Cellular access link whose rate benches vary over time (§6.2's
  /// time-varying unshaped throughput). Present on the TMUS path.
  netsim::BandwidthElement* base_bandwidth = nullptr;

  /// Number of TTL-decrementing hops in front of the middlebox: the minimum
  /// TTL that reaches the middlebox is hops_before_middlebox + 1.
  int hops_before_middlebox = 0;
  int total_router_hops = 0;

  /// Does the observable differentiation signal exist at all? (Sprint: no.)
  bool differentiates = true;

  /// How the experiment reads the classifier's verdict in this network —
  /// which also determines the per-round cost profile of §6.
  enum class Signal {
    kDirect,      // testbed: middlebox shows result immediately (§6.1)
    kZeroRating,  // TMUS: data-usage counter, laggy/noisy (§6.2)
    kThroughput,  // AT&T: throttled to 1.5 Mbps on port 80 (§6.3)
    kBlocking,    // GFC / Iran: RSTs (+403) (§6.5, §6.6)
    kNone,        // Sprint (§6.4)
  };
  Signal signal = Signal::kDirect;

  stack::OsProfile server_os = stack::OsProfile::linux_profile();
};

std::unique_ptr<Environment> make_testbed(std::uint64_t seed = 1);
std::unique_ptr<Environment> make_tmus(std::uint64_t seed = 1);
std::unique_ptr<Environment> make_gfc(std::uint64_t seed = 1);
std::unique_ptr<Environment> make_iran(std::uint64_t seed = 1);
std::unique_ptr<Environment> make_att(std::uint64_t seed = 1);
std::unique_ptr<Environment> make_sprint(std::uint64_t seed = 1);

// Ambiguity-fingerprint profiles (docs/fingerprinting.md): five classifier
// implementations sharing the testbed's topology, rules, and actions but with
// genuinely distinct parsing-discrepancy resolutions, so src/fingerprint
// probes discriminate *implementations* rather than deployments.
std::unique_ptr<Environment> make_suricata(std::uint64_t seed = 1);
std::unique_ptr<Environment> make_zeek(std::uint64_t seed = 1);
std::unique_ptr<Environment> make_ndpi(std::uint64_t seed = 1);
std::unique_ptr<Environment> make_conntrack_strict(std::uint64_t seed = 1);
std::unique_ptr<Environment> make_permissive(std::uint64_t seed = 1);

/// The engine configuration of one of the five ambiguity profiles above —
/// what a scripted mid-soak classifier swap applies to a running testbed
/// world to land exactly on that profile's fingerprint. Throws
/// std::invalid_argument for unknown names.
ClassifierConfig ambiguity_profile_config(const std::string& name);

/// Dispatcher over every name in environment_names().
std::unique_ptr<Environment> make_environment(const std::string& name,
                                              std::uint64_t seed = 1);
std::vector<std::string> environment_names();

/// The GFC's load-dependent idle-eviction threshold (Figure 4 substrate):
/// busy hours evict idle flow state quickly (~40 s), quiet hours barely at
/// all (> 240 s, the longest delay the paper tested).
netsim::Duration gfc_eviction_threshold(netsim::TimePoint now);

/// Diurnal load in [0, 1]: trough at 04:00, peak at 16:00–22:00 virtual time.
double diurnal_load(double hour_of_day);

}  // namespace liberate::dpi
