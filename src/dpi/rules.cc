#include "dpi/rules.h"

#include "dpi/stun_parser.h"
#include "util/strings.h"

namespace liberate::dpi {

bool MatchRule::matches_content(BytesView content) const {
  if (stun_attribute) {
    auto msg = parse_stun(content);
    if (!msg || !msg->has_attribute(*stun_attribute)) return false;
    // Fall through: any keywords must also match.
  }
  std::string text = to_string(content);
  for (std::size_t i = 0; i < keywords.size(); ++i) {
    std::size_t pos = ifind(text, keywords[i]);
    if (pos == std::string_view::npos) return false;
    if (i == 0 && anchored && pos != 0) {
      // Anchored: the first keyword must open the content. ifind returns the
      // first occurrence, so pos != 0 means the content does not begin with
      // it.
      return false;
    }
  }
  return true;
}

RuleHit match_rules(const std::vector<MatchRule>& rules, BytesView content,
                    const RuleContext& ctx) {
  for (const auto& rule : rules) {
    if (rule.udp != ctx.udp) continue;
    if (rule.dst_port && *rule.dst_port != ctx.dst_port) continue;
    if (rule.only_packet_index) {
      if (!ctx.packet_index || *ctx.packet_index != *rule.only_packet_index) {
        continue;
      }
    }
    if (rule.matches_content(content)) return RuleHit{&rule};
  }
  return RuleHit{};
}

}  // namespace liberate::dpi
