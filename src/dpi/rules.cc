#include "dpi/rules.h"

#include "dpi/stun_parser.h"
#include "util/strings.h"

namespace liberate::dpi {

bool MatchRule::matches_content(BytesView content) const {
  return matches_content_traced(content, nullptr);
}

bool MatchRule::matches_content_traced(BytesView content,
                                       ContentTrace* trace) const {
  if (stun_attribute) {
    auto msg = parse_stun(content);
    if (!msg || !msg->has_attribute(*stun_attribute)) {
      if (trace != nullptr) trace->stun_failed = true;
      return false;
    }
    if (trace != nullptr) {
      // Record the matched attribute's byte offset so the provenance ledger
      // can name it: 20-byte STUN header, then 4-byte-aligned TLVs.
      std::size_t off = 20;
      for (const StunAttribute& a : msg->attributes) {
        if (a.type == *stun_attribute) break;
        off += 4 + ((a.value.size() + 3) & ~std::size_t{3});
      }
      trace->keyword_offsets.push_back(off);
    }
    // Fall through: any keywords must also match.
  }
  std::string text = to_string(content);
  for (std::size_t i = 0; i < keywords.size(); ++i) {
    std::size_t pos = ifind(text, keywords[i]);
    if (pos == std::string_view::npos) {
      if (trace != nullptr) trace->failed_keyword = i;
      return false;
    }
    if (i == 0 && anchored && pos != 0) {
      // Anchored: the first keyword must open the content. ifind returns the
      // first occurrence, so pos != 0 means the content does not begin with
      // it.
      if (trace != nullptr) {
        trace->keyword_offsets.push_back(pos);
        trace->anchor_failed = true;
      }
      return false;
    }
    if (trace != nullptr) trace->keyword_offsets.push_back(pos);
  }
  return true;
}

const char* rule_step_outcome_name(RuleStep::Outcome o) {
  switch (o) {
    case RuleStep::Outcome::kSkippedTransport:
      return "skipped-transport";
    case RuleStep::Outcome::kSkippedPort:
      return "skipped-port";
    case RuleStep::Outcome::kSkippedPacketIndex:
      return "skipped-packet-index";
    case RuleStep::Outcome::kNoMatch:
      return "no-match";
    case RuleStep::Outcome::kMatched:
      return "matched";
  }
  return "?";
}

RuleHit match_rules_reference(const std::vector<MatchRule>& rules,
                              BytesView content, const RuleContext& ctx) {
  return match_rules_reference_traced(rules, content, ctx, nullptr);
}

RuleHit match_rules_reference_traced(const std::vector<MatchRule>& rules,
                                     BytesView content, const RuleContext& ctx,
                                     std::vector<RuleStep>* steps) {
  auto step = [&](const MatchRule& rule, RuleStep::Outcome outcome,
                  MatchRule::ContentTrace&& trace = {}) {
    if (steps != nullptr) {
      steps->push_back(RuleStep{&rule, outcome, std::move(trace)});
    }
  };
  for (const auto& rule : rules) {
    if (rule.udp != ctx.udp) {
      step(rule, RuleStep::Outcome::kSkippedTransport);
      continue;
    }
    if (rule.dst_port && *rule.dst_port != ctx.dst_port) {
      step(rule, RuleStep::Outcome::kSkippedPort);
      continue;
    }
    if (rule.only_packet_index) {
      if (!ctx.packet_index || *ctx.packet_index != *rule.only_packet_index) {
        step(rule, RuleStep::Outcome::kSkippedPacketIndex);
        continue;
      }
    }
    MatchRule::ContentTrace trace;
    bool matched = rule.matches_content_traced(
        content, steps != nullptr ? &trace : nullptr);
    step(rule,
         matched ? RuleStep::Outcome::kMatched : RuleStep::Outcome::kNoMatch,
         std::move(trace));
    if (matched) return RuleHit{&rule};
  }
  return RuleHit{};
}

}  // namespace liberate::dpi
