// rules.h — traffic-classification match rules.
//
// The paper reverse-engineers classifiers and finds they match keywords in
// HTTP payloads (request line, Host), TLS SNI, and protocol-specific fields
// (STUN attributes for Skype). A MatchRule expresses one such rule: a set of
// byte-substring keywords that must all appear in the inspected content,
// optionally anchored at the start of the content/stream, optionally port-
// constrained, optionally requiring a parsed STUN attribute.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "util/bytes.h"

namespace liberate::dpi {

struct MatchRule {
  std::string name;           // diagnostic label, e.g. "tmus-youtube-sni"
  std::string traffic_class;  // policy key, e.g. "video"

  /// All keywords must appear (case-insensitive substring) in the inspected
  /// content for the rule to fire.
  std::vector<std::string> keywords;

  /// The first keyword must sit at offset 0 of the inspected content (stream
  /// start for stream-mode classifiers, packet start for per-packet ones).
  /// This models GET-anchored matchers: prepending a single dummy byte
  /// defeats them (observed for T-Mobile and the GFC, §6.2/§6.5).
  bool anchored = false;

  /// Restrict to a destination port (Iran and AT&T match only port 80).
  std::optional<std::uint16_t> dst_port;

  /// Rule applies to UDP (otherwise TCP) content.
  bool udp = false;

  /// Require this STUN attribute type to be present in a well-formed STUN
  /// message (the testbed's Skype rule: MS-SERVICE-QUALITY, 0x8055).
  std::optional<std::uint16_t> stun_attribute;

  /// Per-packet matchers only: rule fires only on the Nth payload-carrying
  /// packet of the flow (1-based). The testbed's Skype rule inspected
  /// "packets at certain position in the flow" — the first.
  std::optional<std::size_t> only_packet_index;

  /// Evaluate against a chunk of content (one packet's payload or the
  /// reassembled stream prefix).
  bool matches_content(BytesView content) const;

  /// Same evaluation, additionally reporting per-keyword match offsets (or
  /// the index of the first keyword that failed) into `trace` when non-null.
  struct ContentTrace {
    std::vector<std::size_t> keyword_offsets;  // one per keyword found
    std::optional<std::size_t> failed_keyword;  // first keyword not found
    bool anchor_failed = false;  // first keyword present but not at offset 0
    bool stun_failed = false;    // STUN attribute requirement not met
  };
  bool matches_content_traced(BytesView content, ContentTrace* trace) const;
};

/// Result of evaluating a rule set.
struct RuleHit {
  const MatchRule* rule = nullptr;
  explicit operator bool() const { return rule != nullptr; }
};

/// Evaluate all rules against content, honoring port/udp/packet-index
/// constraints supplied by the engine.
struct RuleContext {
  std::uint16_t dst_port = 0;
  bool udp = false;
  std::optional<std::size_t> packet_index;  // set in per-packet mode
};

RuleHit match_rules_reference(const std::vector<MatchRule>& rules,
                              BytesView content, const RuleContext& ctx);

/// One rule's outcome within a match_rules_traced() sweep — the classifier's
/// decision path, consumed by the provenance flight recorder.
struct RuleStep {
  const MatchRule* rule = nullptr;
  enum class Outcome {
    kSkippedTransport,    // udp/tcp mismatch, content never inspected
    kSkippedPort,         // dst_port constraint
    kSkippedPacketIndex,  // only_packet_index constraint
    kNoMatch,             // content inspected, keywords/STUN/anchor failed
    kMatched,
  } outcome = Outcome::kNoMatch;
  MatchRule::ContentTrace content;  // offsets / failure cause when inspected
};

const char* rule_step_outcome_name(RuleStep::Outcome o);

/// match_rules_reference() plus the full decision path: one RuleStep per
/// rule in evaluation order (the plain overload delegates here with
/// steps=nullptr, so traced and untraced evaluation can never diverge).
///
/// This pair is the *reference* matcher: the obviously-correct linear
/// implementation kept permanently as the differential oracle for the
/// compiled matcher (dpi/match_program.h). Production evaluation goes
/// through MatchProgram; the equivalence contract (same RuleHit, byte-
/// identical RuleStep/ContentTrace sequences) is enforced by
/// tests/dpi/match_program_diff_test.cc and the match-program fuzz
/// campaign. Do not optimize this code — its value is being simple enough
/// to trust.
RuleHit match_rules_reference_traced(const std::vector<MatchRule>& rules,
                                     BytesView content, const RuleContext& ctx,
                                     std::vector<RuleStep>* steps);

}  // namespace liberate::dpi
