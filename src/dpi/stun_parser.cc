#include "dpi/stun_parser.h"

namespace liberate::dpi {

std::optional<StunMessage> parse_stun(BytesView payload) {
  if (payload.size() < 20) return std::nullopt;
  ByteReader r(payload);
  StunMessage msg;
  msg.message_type = r.u16().value();
  if (msg.message_type & 0xc000) return std::nullopt;  // top bits must be 0
  std::uint16_t length = r.u16().value();
  std::uint32_t cookie = r.u32().value();
  if (cookie != kStunMagicCookie) return std::nullopt;
  auto tid = r.raw(12);
  if (!tid.ok()) return std::nullopt;
  msg.transaction_id.assign(tid.value().begin(), tid.value().end());

  std::size_t body_end = std::min<std::size_t>(20 + length, payload.size());
  while (r.position() + 4 <= body_end) {
    StunAttribute attr;
    attr.type = r.u16().value();
    std::uint16_t alen = r.u16().value();
    auto val = r.raw(std::min<std::size_t>(alen, r.remaining()));
    if (!val.ok()) break;
    attr.value.assign(val.value().begin(), val.value().end());
    msg.attributes.push_back(std::move(attr));
    // Attributes are padded to 4-byte boundaries.
    std::size_t pad = (4 - alen % 4) % 4;
    if (!r.skip(std::min(pad, r.remaining())).ok()) break;
  }
  return msg;
}

Bytes serialize_stun(const StunMessage& msg) {
  ByteWriter body;
  for (const auto& attr : msg.attributes) {
    body.u16(attr.type);
    body.u16(static_cast<std::uint16_t>(attr.value.size()));
    body.raw(attr.value);
    while (body.size() % 4 != 0) body.u8(0);
  }

  ByteWriter w(20 + body.size());
  w.u16(msg.message_type);
  w.u16(static_cast<std::uint16_t>(body.size()));
  w.u32(kStunMagicCookie);
  if (msg.transaction_id.size() == 12) {
    w.raw(msg.transaction_id);
  } else {
    w.fill(0xab, 12);
  }
  w.raw(body.bytes());
  return std::move(w).take();
}

}  // namespace liberate::dpi
