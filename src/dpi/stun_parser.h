// stun_parser.h — STUN message decoding (RFC 5389 framing).
//
// The paper found that the testbed classifier identified Skype by the
// Microsoft STUN attribute MS-SERVICE-QUALITY (type 0x8055) in the first
// client packet. We parse STUN properly so that rule matches the attribute
// rather than an accidental byte pattern.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "util/bytes.h"

namespace liberate::dpi {

constexpr std::uint32_t kStunMagicCookie = 0x2112A442;
constexpr std::uint16_t kStunAttrMsServiceQuality = 0x8055;

struct StunAttribute {
  std::uint16_t type = 0;
  Bytes value;
};

struct StunMessage {
  std::uint16_t message_type = 0;  // e.g. 0x0001 Binding Request
  Bytes transaction_id;            // 12 bytes
  std::vector<StunAttribute> attributes;

  bool has_attribute(std::uint16_t type) const {
    for (const auto& a : attributes) {
      if (a.type == type) return true;
    }
    return false;
  }
};

/// Parse a STUN message from a UDP payload. Checks the magic cookie, so
/// blinded payloads fail cleanly.
std::optional<StunMessage> parse_stun(BytesView payload);

/// Serialize (used by the Skype trace generator).
Bytes serialize_stun(const StunMessage& msg);

}  // namespace liberate::dpi
