#include "dpi/tls_parser.h"

#include "util/bytes.h"

namespace liberate::dpi {

bool looks_like_tls_client_hello(BytesView stream) {
  // record: type(1)=22 handshake, version(2)=0x03xx, length(2); then
  // handshake type(1)=1 ClientHello.
  return stream.size() >= 6 && stream[0] == 22 && stream[1] == 3 &&
         stream[5] == 1;
}

std::optional<std::string> extract_sni(BytesView stream) {
  if (!looks_like_tls_client_hello(stream)) return std::nullopt;
  ByteReader r(stream);
  if (!r.skip(1).ok()) return std::nullopt;            // content type
  if (!r.skip(2).ok()) return std::nullopt;            // record version
  auto rec_len = r.u16();
  if (!rec_len.ok()) return std::nullopt;
  // Parse within the record (but tolerate a record spanning the whole view).
  auto hs_type = r.u8();
  if (!hs_type.ok() || hs_type.value() != 1) return std::nullopt;
  auto hs_len = r.u24();
  if (!hs_len.ok()) return std::nullopt;
  if (!r.skip(2).ok()) return std::nullopt;            // client_version
  if (!r.skip(32).ok()) return std::nullopt;           // random
  auto sid_len = r.u8();
  if (!sid_len.ok() || !r.skip(sid_len.value()).ok()) return std::nullopt;
  auto cs_len = r.u16();
  if (!cs_len.ok() || !r.skip(cs_len.value()).ok()) return std::nullopt;
  auto comp_len = r.u8();
  if (!comp_len.ok() || !r.skip(comp_len.value()).ok()) return std::nullopt;
  auto ext_total = r.u16();
  if (!ext_total.ok()) return std::nullopt;

  std::size_t ext_end = r.position() + ext_total.value();
  while (r.position() + 4 <= ext_end && r.remaining() >= 4) {
    auto ext_type = r.u16();
    auto ext_len = r.u16();
    if (!ext_type.ok() || !ext_len.ok()) return std::nullopt;
    if (ext_type.value() == 0) {  // server_name
      // server_name_list: len(2), then entries: type(1)=0, name_len(2), name.
      auto list_len = r.u16();
      auto name_type = r.u8();
      auto name_len = r.u16();
      if (!list_len.ok() || !name_type.ok() || !name_len.ok()) {
        return std::nullopt;
      }
      if (name_type.value() != 0) return std::nullopt;
      auto name = r.raw(name_len.value());
      if (!name.ok()) return std::nullopt;
      return to_string(name.value());
    }
    if (!r.skip(ext_len.value()).ok()) return std::nullopt;
  }
  return std::nullopt;
}

}  // namespace liberate::dpi
