// tls_parser.h — just enough TLS to extract the ClientHello SNI, which is the
// field DPI classifiers key on for HTTPS traffic (e.g. ".googlevideo.com" in
// T-Mobile's Binge On rules).
#pragma once

#include <optional>
#include <string>

#include "util/bytes.h"

namespace liberate::dpi {

/// Extract the server_name (SNI, extension 0) from a byte stream that begins
/// with a TLS record carrying a ClientHello. Returns nullopt for anything
/// else (including blinded/garbled handshakes — exactly the property the
/// characterization phase relies on).
std::optional<std::string> extract_sni(BytesView stream);

/// True if the stream plausibly starts with a TLS handshake record
/// (content type 22, version 3.x).
bool looks_like_tls_client_hello(BytesView stream);

}  // namespace liberate::dpi
