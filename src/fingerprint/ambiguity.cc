#include "fingerprint/ambiguity.h"

#include <algorithm>
#include <bit>
#include <cstdio>

#include "util/json.h"
#include "util/json_parse.h"

namespace liberate::fingerprint {

void AmbiguityDigest::add(DimensionResult result) {
  auto it = std::lower_bound(dims.begin(), dims.end(), result.dimension,
                             [](const DimensionResult& d,
                                const std::string& name) {
                               return d.dimension < name;
                             });
  if (it != dims.end() && it->dimension == result.dimension) {
    *it = std::move(result);
  } else {
    dims.insert(it, std::move(result));
  }
}

const DimensionResult* AmbiguityDigest::find(std::string_view dimension) const {
  for (const DimensionResult& d : dims) {
    if (d.dimension == dimension) return &d;
  }
  return nullptr;
}

Fingerprint AmbiguityDigest::fingerprint() const {
  Digest d;
  d.update_u64(static_cast<std::uint64_t>(version));
  d.update_u64(dims.size());
  for (const DimensionResult& r : dims) {
    d.update_sized(r.dimension);
    d.update_u32(r.bits);
    d.update_u32(r.variant_count);
  }
  return d.finish();
}

std::string AmbiguityDigest::fingerprint_hex() const {
  Fingerprint f = fingerprint();
  char buf[36];
  std::snprintf(buf, sizeof(buf), "%016llx:%016llx",
                static_cast<unsigned long long>(f.lo),
                static_cast<unsigned long long>(f.hi));
  return buf;
}

std::string AmbiguityDigest::to_json() const {
  JsonWriter w;
  w.begin_object();
  w.key("version").value(version);
  w.key("format").value(kFormat);
  w.key("dims").begin_array();
  for (const DimensionResult& r : dims) {
    w.begin_object();
    w.key("dimension").value(r.dimension);
    w.key("bits").value(static_cast<std::uint64_t>(r.bits));
    w.key("variants").value(static_cast<std::uint64_t>(r.variant_count));
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.take();
}

std::optional<AmbiguityDigest> AmbiguityDigest::from_json(
    std::string_view text) {
  auto doc = parse_json(text);
  if (!doc) return std::nullopt;
  return from_json_value(*doc);
}

std::optional<AmbiguityDigest> AmbiguityDigest::from_json_value(
    const JsonValue& doc) {
  if (!doc.is_object()) return std::nullopt;
  const JsonValue* version = doc.find("version");
  const JsonValue* format = doc.find("format");
  const JsonValue* dims = doc.find("dims");
  if (!version || !version->is_number() || !format || !format->is_string() ||
      !dims || !dims->is_array()) {
    return std::nullopt;
  }
  if (static_cast<int>(version->number) != kVersion ||
      format->string != kFormat) {
    return std::nullopt;
  }
  AmbiguityDigest out;
  for (const JsonValue& dv : dims->array) {
    if (!dv.is_object()) return std::nullopt;
    const JsonValue* name = dv.find("dimension");
    const JsonValue* bits = dv.find("bits");
    const JsonValue* variants = dv.find("variants");
    if (!name || !name->is_string() || !bits || !bits->is_number() ||
        !variants || !variants->is_number()) {
      return std::nullopt;
    }
    DimensionResult r;
    r.dimension = name->string;
    r.bits = static_cast<std::uint32_t>(bits->number);
    r.variant_count = static_cast<std::uint32_t>(variants->number);
    out.add(std::move(r));
  }
  return out;
}

std::size_t ambiguity_distance(const AmbiguityDigest& a,
                               const AmbiguityDigest& b) {
  std::size_t distance = 0;
  // Both dims vectors are name-sorted; walk them like a merge.
  std::size_t i = 0, j = 0;
  while (i < a.dims.size() || j < b.dims.size()) {
    if (j == b.dims.size() ||
        (i < a.dims.size() && a.dims[i].dimension < b.dims[j].dimension)) {
      distance += 2 * a.dims[i].variant_count;
      ++i;
    } else if (i == a.dims.size() ||
               b.dims[j].dimension < a.dims[i].dimension) {
      distance += 2 * b.dims[j].variant_count;
      ++j;
    } else {
      distance += static_cast<std::size_t>(
          std::popcount(a.dims[i].bits ^ b.dims[j].bits));
      // A variant-count mismatch within a shared dimension means the two
      // digests ran different catalog revisions; count the missing tail.
      if (a.dims[i].variant_count != b.dims[j].variant_count) {
        std::uint32_t lo = std::min(a.dims[i].variant_count,
                                    b.dims[j].variant_count);
        std::uint32_t hi = std::max(a.dims[i].variant_count,
                                    b.dims[j].variant_count);
        distance += 2 * (hi - lo);
      }
      ++i;
      ++j;
    }
  }
  return distance;
}

std::string resolution_label(const DimensionResult& d) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), ":%x", d.bits);
  return d.dimension + buf;
}

}  // namespace liberate::fingerprint
