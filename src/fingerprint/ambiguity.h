// ambiguity.h — versioned digests of a DPI implementation's parsing
// discrepancies.
//
// Following "Fingerprinting DPI Devices by Their Ambiguities" (arXiv
// 2509.09081), a middlebox is identified not by *what* it classifies but by
// *how it resolves ambiguous input*: conflicting fragment/segment overlaps,
// TTL-scoped inserts that die before the server, checksum-invalid shadow
// data, urgent-pointer and IP-option quirks, out-of-window and
// wrap-spanning bytes. Each probed dimension yields two bits per variant —
// did the classifier accept the probe's hidden keyword, and did the keyword
// survive to the server intact — and the collected bit patterns form an
// AmbiguityDigest. Two deployments with the same digest resolve every
// probed ambiguity identically, which is the strongest behavioural match
// the warm-deploy path can ask for (docs/fingerprinting.md).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "util/digest.h"

namespace liberate {
struct JsonValue;
}

namespace liberate::fingerprint {

/// Observed resolution of one discrepancy dimension. `bits` packs two bits
/// per probe variant: bit (2*v) = the classifier recognized variant v's
/// hidden keyword ("the DPI saw it"), bit (2*v + 1) = the keyword reached
/// the server application stream intact ("the endpoint saw it").
struct DimensionResult {
  std::string dimension;
  std::uint32_t bits = 0;
  std::uint32_t variant_count = 0;

  bool operator==(const DimensionResult& o) const {
    return dimension == o.dimension && bits == o.bits &&
           variant_count == o.variant_count;
  }
};

/// The distilled fingerprint of one classifier implementation. Dimensions
/// are kept sorted by name so digests built from differently-ordered probe
/// runs compare and hash identically.
struct AmbiguityDigest {
  static constexpr int kVersion = 1;
  static constexpr const char* kFormat = "ambiguity/v1";

  int version = kVersion;
  std::vector<DimensionResult> dims;

  bool empty() const { return dims.empty(); }
  void add(DimensionResult result);
  const DimensionResult* find(std::string_view dimension) const;

  /// 128-bit content fingerprint over (version, sorted dimension results).
  Fingerprint fingerprint() const;
  /// "lo:hi" hex rendering of fingerprint() — the FLEET/`liberate_top`
  /// surface form.
  std::string fingerprint_hex() const;

  std::string to_json() const;
  static std::optional<AmbiguityDigest> from_json(std::string_view text);
  /// Same strict decoding from an already-parsed JSON value (for digests
  /// embedded in larger documents, e.g. the fingerprint cache).
  static std::optional<AmbiguityDigest> from_json_value(const JsonValue& doc);

  bool operator==(const AmbiguityDigest& o) const {
    return version == o.version && dims == o.dims;
  }
};

/// Pairwise distance: Hamming distance of the observation bits over
/// dimensions present in both digests, plus a full-width penalty
/// (2 * variant_count) for every dimension only one side probed. 0 iff the
/// two implementations resolved every common ambiguity identically and
/// probed the same dimensions.
std::size_t ambiguity_distance(const AmbiguityDigest& a,
                               const AmbiguityDigest& b);

/// Compact per-dimension label, e.g. "tcp-overlap:25" (bits in hex) — used
/// by dashboards and docs, never parsed back.
std::string resolution_label(const DimensionResult& d);

}  // namespace liberate::fingerprint
