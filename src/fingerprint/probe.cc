#include "fingerprint/probe.h"

#include <algorithm>
#include <cstdio>
#include <future>
#include <map>
#include <utility>

#include "dpi/classifier.h"
#include "dpi/middlebox.h"
#include "netsim/event_loop.h"
#include "netsim/network.h"
#include "netsim/packet.h"
#include "stack/ip_reassembly.h"
#include "util/thread_pool.h"

namespace liberate::fingerprint {
namespace {

// ---------------------------------------------------------------------------
// Probe flow identity. A fixed tuple keeps every script's DPI log query and
// server-side stream identical across runs; each script gets its own world,
// so reuse between scripts never collides.
constexpr std::uint32_t kProbeClientIp = 0x0a090901;  // 10.9.9.1
constexpr std::uint32_t kProbeServerIp = 0xc6336463;  // 198.51.100.99
constexpr std::uint16_t kProbeSrcPort = 41000;
constexpr std::uint16_t kProbeDstPort = 80;
constexpr std::uint16_t kFragIdent = 0x7777;
constexpr std::uint32_t kDefaultIsn = 5000;

// The canonical probe payload. Every profile ships the no-action
// "benign_news_rule" whose keyword is the Host value, so a probe landing the
// keyword in the classifier's reconstruction logs a "news" event and nothing
// else changes. Request line = bytes [0, 17); keyword = bytes [23, 45).
constexpr std::string_view kProbePayload =
    "GET /a HTTP/1.1\r\nHost: news-decoy.example.net\r\n\r\n";
constexpr std::string_view kDecoyKeyword = "news-decoy.example.net";
constexpr std::string_view kDecoyClass = "news";
constexpr std::size_t kRequestLineEnd = 17;

// Codec hard caps (decode_probe_script rejects anything larger).
constexpr std::size_t kMaxDimensionName = 256;
constexpr std::size_t kMaxPackets = 1024;
constexpr std::size_t kMaxProbePayload = 65536;

netsim::FiveTuple probe_tuple() {
  netsim::FiveTuple t;
  t.src_ip = kProbeClientIp;
  t.dst_ip = kProbeServerIp;
  t.src_port = kProbeSrcPort;
  t.dst_port = kProbeDstPort;
  t.protocol = static_cast<std::uint8_t>(netsim::IpProto::kTcp);
  return t;
}

Bytes bytes_of(std::string_view s) {
  return Bytes(s.begin(), s.end());
}

Bytes garbage(std::size_t n) { return Bytes(n, 'X'); }

ProbePacket seg(std::uint32_t rel_seq, Bytes payload) {
  ProbePacket p;
  p.kind = ProbePacket::Kind::kSegment;
  p.rel_seq = rel_seq;
  p.payload = std::move(payload);
  return p;
}

ProbePacket frag(std::uint16_t offset_words, bool more, Bytes payload) {
  ProbePacket p;
  p.kind = ProbePacket::Kind::kFragment;
  p.frag_offset_words = offset_words;
  p.more_fragments = more;
  p.payload = std::move(payload);
  return p;
}

ProbeScript script(std::string dimension, std::uint32_t variant,
                   std::vector<ProbePacket> packets,
                   std::uint32_t isn = kDefaultIsn, bool send_syn = true) {
  ProbeScript s;
  s.dimension = std::move(dimension);
  s.variant = variant;
  s.isn = isn;
  s.send_syn = send_syn;
  s.packets = std::move(packets);
  return s;
}

// ---------------------------------------------------------------------------
// Wire crafting.

netsim::Ipv4Header base_ip() {
  netsim::Ipv4Header ip;
  ip.src = kProbeClientIp;
  ip.dst = kProbeServerIp;
  return ip;
}

netsim::TcpHeader base_tcp() {
  netsim::TcpHeader tcp;
  tcp.src_port = kProbeSrcPort;
  tcp.dst_port = kProbeDstPort;
  return tcp;
}

// Flip the TCP checksum in a serialized datagram. 0x55 per byte never maps
// the ones-complement pair 0x0000/0xFFFF onto each other, so the result is
// always invalid.
void corrupt_checksum_in_place(Bytes& datagram) {
  auto ip = netsim::parse_ipv4(BytesView(datagram));
  if (!ip.ok()) return;
  const std::size_t at = ip.value().header_length + 16;
  if (at + 1 >= datagram.size()) return;
  datagram[at] ^= 0x55;
  datagram[at + 1] ^= 0x55;
}

std::vector<Bytes> build_wire_packets(const ProbeScript& s) {
  std::vector<Bytes> out;
  out.reserve(s.packets.size() + 1);
  if (s.send_syn) {
    netsim::TcpHeader tcp = base_tcp();
    tcp.seq = s.isn;
    tcp.flags = netsim::TcpFlags::kSyn;
    out.push_back(netsim::make_tcp_datagram(base_ip(), tcp, {}));
  }
  for (const ProbePacket& p : s.packets) {
    if (p.kind == ProbePacket::Kind::kFragment) {
      netsim::Ipv4Header ip = base_ip();
      ip.identification = kFragIdent;
      ip.protocol = static_cast<std::uint8_t>(netsim::IpProto::kTcp);
      ip.flag_more_fragments = p.more_fragments;
      ip.fragment_offset_words = p.frag_offset_words;
      out.push_back(netsim::serialize_ipv4(ip, BytesView(p.payload)));
      continue;
    }
    netsim::Ipv4Header ip = base_ip();
    if (p.ttl != 0) ip.ttl = p.ttl;
    if (p.ip_option_kind == 136) {
      ip.options.push_back(netsim::Ipv4Option::stream_id(7));
    } else if (p.ip_option_kind == kInvalidIpOptionKind) {
      ip.options.push_back(netsim::Ipv4Option::invalid_length());
    }
    netsim::TcpHeader tcp = base_tcp();
    tcp.seq = s.isn + 1 + p.rel_seq;  // uint32 wrap is intentional
    tcp.ack = 1;                      // data without ACK trips exit filters
    tcp.flags =
        p.tcp_flags != 0 ? p.tcp_flags : netsim::TcpFlags::kAck;
    tcp.urgent_ptr = p.urgent_ptr;
    Bytes datagram = netsim::make_tcp_datagram(ip, tcp, BytesView(p.payload));
    if (p.corrupt_tcp_checksum) corrupt_checksum_in_place(datagram);
    out.push_back(std::move(datagram));
  }
  return out;
}

// ---------------------------------------------------------------------------
// Endpoint sinks. The server models a strict, well-behaved receiver: TCP
// checksums are verified, the in-order stream is first-wins (retransmitted
// bytes never overwrite delivered ones), future segments buffer within a
// 64 KiB window, fragments reassemble last-wins, and the urgent byte is
// pulled out of the application stream. The probe verdict is simply whether
// the decoy keyword ended up in the delivered stream.

class NullHost : public netsim::HostIface {
 public:
  void receive(Bytes) override {}
};

class ServerSink : public netsim::HostIface {
 public:
  explicit ServerSink(netsim::EventLoop& loop) : loop_(loop) {}

  void receive(Bytes datagram) override {
    auto whole = reassembler_.push(BytesView(datagram), loop_.now());
    if (whole) deliver(*whole);
  }

  bool keyword_seen() const {
    return std::search(stream_.begin(), stream_.end(), kDecoyKeyword.begin(),
                       kDecoyKeyword.end()) != stream_.end();
  }

 private:
  struct Pending {
    std::uint32_t wire_len = 0;
    Bytes data;
  };

  void deliver(const Bytes& datagram) {
    auto ip_r = netsim::parse_ipv4(BytesView(datagram));
    if (!ip_r.ok()) return;
    const netsim::Ipv4View& ip = ip_r.value();
    if (ip.protocol != static_cast<std::uint8_t>(netsim::IpProto::kTcp)) {
      return;
    }
    if (!netsim::tcp_checksum_ok(ip.payload, ip.src, ip.dst)) return;
    auto tcp_r = netsim::parse_tcp(ip.payload);
    if (!tcp_r.ok()) return;
    const netsim::TcpView& tcp = tcp_r.value();
    if (tcp.rst()) return;
    if (tcp.syn()) {
      synced_ = true;
      rcv_nxt_ = tcp.seq + 1;
      return;
    }
    if (tcp.payload.empty()) return;
    Bytes data(tcp.payload.begin(), tcp.payload.end());
    if (tcp.has(netsim::TcpFlags::kUrg) && tcp.urgent_ptr > 0 &&
        tcp.urgent_ptr <= data.size()) {
      data.erase(data.begin() + (tcp.urgent_ptr - 1));
    }
    const auto wire_len = static_cast<std::uint32_t>(tcp.payload.size());
    if (!synced_) {
      synced_ = true;
      rcv_nxt_ = tcp.seq;
    }
    accept(tcp.seq, wire_len, std::move(data));
    drain();
  }

  void accept(std::uint32_t seq, std::uint32_t wire_len, Bytes data) {
    const auto delta = static_cast<std::int32_t>(seq - rcv_nxt_);
    if (delta < 0) {
      // Overlap with delivered bytes: the delivered copy stands; append only
      // the genuinely new tail.
      const auto trim = static_cast<std::uint32_t>(-delta);
      if (trim >= wire_len || trim >= data.size()) return;
      stream_.insert(stream_.end(), data.begin() + trim, data.end());
      rcv_nxt_ = seq + wire_len;
    } else if (delta == 0) {
      stream_.insert(stream_.end(), data.begin(), data.end());
      rcv_nxt_ = seq + wire_len;
    } else if (delta <= 65535) {
      future_.emplace(seq, Pending{wire_len, std::move(data)});  // first wins
    }
    // Beyond the receive window: dropped.
  }

  void drain() {
    for (auto it = future_.find(rcv_nxt_); it != future_.end();
         it = future_.find(rcv_nxt_)) {
      stream_.insert(stream_.end(), it->second.data.begin(),
                     it->second.data.end());
      rcv_nxt_ += it->second.wire_len;
      future_.erase(it);
    }
  }

  netsim::EventLoop& loop_;
  stack::IpReassembler reassembler_;  // endpoint default: last-wins
  bool synced_ = false;
  std::uint32_t rcv_nxt_ = 0;
  Bytes stream_;
  std::map<std::uint32_t, Pending> future_;
};

}  // namespace

// ---------------------------------------------------------------------------
// Catalog.

std::vector<ProbeScript> ambiguity_probe_catalog(int hops_before_middlebox) {
  const Bytes P = bytes_of(kProbePayload);
  auto slice = [&P](std::size_t from, std::size_t to) {
    return Bytes(P.begin() + static_cast<std::ptrdiff_t>(from),
                 P.begin() + static_cast<std::ptrdiff_t>(to));
  };

  std::vector<ProbeScript> out;

  // -- tcp-overlap: conflicting data in overlapping TCP segments. ----------
  // u1: garbage claims [17, 49) first, then the good bytes retransmit the
  //     same range. First-wins keeps the garbage; last-wins recovers.
  out.push_back(script("tcp-overlap", 0,
                       {seg(0, slice(0, kRequestLineEnd)),
                        seg(17, garbage(32)),
                        seg(17, slice(kRequestLineEnd, P.size()))}));
  // u2: the good prefix lands first (keyword incomplete), a garbage segment
  //     then rewrites the middle, and the good tail completes the stream.
  //     Last-wins destroys the keyword it never finished seeing; first-wins
  //     keeps it.
  out.push_back(script("tcp-overlap", 1,
                       {seg(0, slice(0, 40)), seg(17, garbage(23)),
                        seg(40, slice(40, P.size()))}));
  // u3: a benign subset overlap — [17, 30) arrives, then a superset segment
  //     re-sends [17, 49). Only resolvers that honor overlap tails complete
  //     the keyword.
  out.push_back(script("tcp-overlap", 2,
                       {seg(0, slice(0, kRequestLineEnd)),
                        seg(17, slice(kRequestLineEnd, 30)),
                        seg(17, slice(kRequestLineEnd, P.size()))}));

  // -- frag-overlap: conflicting data in overlapping IP fragments. ---------
  // The full IP payload is the one good data segment (TCP header + P,
  // 20 + 49 = 69 bytes); fragments slice it. The overlap window is
  // [40, 48) — fragment words 5..6 — which cuts through the keyword. The
  // TCP checksum covers the good payload, so any reassembly that keeps
  // garbage yields a checksum-invalid segment (validating classifiers skip
  // it; the server discards it).
  netsim::TcpHeader data_hdr = base_tcp();
  data_hdr.seq = kDefaultIsn + 1;
  data_hdr.ack = 1;
  data_hdr.flags = netsim::TcpFlags::kAck;
  const Bytes F = netsim::serialize_tcp(data_hdr, BytesView(P),
                                        kProbeClientIp, kProbeServerIp);
  Bytes F_bad = F;
  std::fill(F_bad.begin() + 40, F_bad.begin() + 48, 'X');
  auto fslice = [](const Bytes& src, std::size_t from, std::size_t to,
                   std::uint16_t off_words, bool mf) {
    return frag(off_words, mf,
                Bytes(src.begin() + static_cast<std::ptrdiff_t>(from),
                      src.begin() + static_cast<std::ptrdiff_t>(to)));
  };
  // v0: clean two-fragment split (does the path reassemble at all?).
  out.push_back(script("frag-overlap", 0,
                       {fslice(F, 0, 48, 0, true), fslice(F, 48, 69, 6, false)}));
  // v1: garbage tail arrives first, good fragment re-covers [40, 69).
  out.push_back(script("frag-overlap", 1,
                       {fslice(F_bad, 0, 48, 0, true),
                        fslice(F, 40, 69, 5, false)}));
  // v2: equal-offset duel — garbage then good at word 5 (tie-break probe).
  out.push_back(script("frag-overlap", 2,
                       {fslice(F, 0, 40, 0, true), frag(5, true, garbage(8)),
                        fslice(F, 40, 48, 5, true),
                        fslice(F, 48, 69, 6, false)}));
  // v3: good tail first, garbage-bearing head second (left-trim probe).
  out.push_back(script("frag-overlap", 3,
                       {fslice(F, 40, 69, 5, false),
                        fslice(F_bad, 0, 48, 0, true)}));

  // -- ttl-insert: a garbage insertion that dies between the classifier and
  //    the server (lib·erate's TTL-limited insertion, aimed by path depth).
  const auto insert_ttl =
      static_cast<std::uint8_t>(hops_before_middlebox + 1);
  ProbePacket t_insert = seg(17, garbage(32));
  t_insert.ttl = insert_ttl;
  out.push_back(script("ttl-insert", 0,
                       {seg(0, slice(0, kRequestLineEnd)), t_insert,
                        seg(17, slice(kRequestLineEnd, P.size()))}));
  // Control: TTL=1 dies at the very first hop — nobody sees the garbage.
  ProbePacket t_control = seg(17, garbage(32));
  t_control.ttl = 1;
  out.push_back(script("ttl-insert", 1,
                       {seg(0, slice(0, kRequestLineEnd)), t_control,
                        seg(17, slice(kRequestLineEnd, P.size()))}));

  // -- checksum-shadow: garbage with an invalid TCP checksum shadows the
  //    range, then the good bytes arrive with a valid one.
  ProbePacket shadow = seg(17, garbage(32));
  shadow.corrupt_tcp_checksum = true;
  out.push_back(script("checksum-shadow", 0,
                       {seg(0, slice(0, kRequestLineEnd)), shadow,
                        seg(17, slice(kRequestLineEnd, P.size()))}));

  // -- ip-option: the whole payload rides one segment carrying a deprecated
  //    (o1) or malformed (o2) IP option.
  ProbePacket opt_dep = seg(0, P);
  opt_dep.ip_option_kind = 136;
  out.push_back(script("ip-option", 0, {opt_dep}));
  ProbePacket opt_bad = seg(0, P);
  opt_bad.ip_option_kind = kInvalidIpOptionKind;
  out.push_back(script("ip-option", 1, {opt_bad}));

  // -- out-of-window: the keyword rides a segment far beyond any plausible
  //    receive window. Only classifiers that ignore sequence plausibility
  //    (per-packet engines) see it; the server never does.
  out.push_back(script(
      "out-of-window", 0,
      {seg(0, bytes_of("GET /f HTTP/1.1\r\nHost: filler.invalid\r\n\r\n")),
       seg(200000, bytes_of(kDecoyKeyword))}));

  // -- urgent-pointer: g1 inserts one out-of-band byte inside the keyword
  //    (strippers recover it, inliners choke); g2 marks a *real* keyword
  //    byte urgent (inliners keep it, strippers lose it).
  Bytes with_oob = slice(0, 30);
  with_oob.push_back('Z');
  Bytes tail = slice(30, P.size());
  with_oob.insert(with_oob.end(), tail.begin(), tail.end());
  ProbePacket urg1 = seg(0, std::move(with_oob));
  urg1.tcp_flags = netsim::TcpFlags::kAck | netsim::TcpFlags::kUrg;
  urg1.urgent_ptr = 31;  // byte index 30 = the inserted 'Z'
  out.push_back(script("urgent-pointer", 0, {urg1}));
  ProbePacket urg2 = seg(0, P);
  urg2.tcp_flags = netsim::TcpFlags::kAck | netsim::TcpFlags::kUrg;
  urg2.urgent_ptr = 30;  // byte index 29 = a keyword byte
  out.push_back(script("urgent-pointer", 1, {urg2}));

  // -- wrap-span: the keyword straddles a sequence-number wraparound. ISN is
  //    chosen so the split segments place the wrap inside the second one;
  //    neither segment alone contains the whole keyword.
  out.push_back(script("wrap-span", 0,
                       {seg(0, slice(0, 30)), seg(30, slice(30, P.size()))},
                       /*isn=*/0xFFFFFFFFu - 34));

  // -- inspection-limit: benign filler packets ahead of the payload push it
  //    past per-flow inspection budgets. L1 = 7th data packet, L2 = 10th.
  auto filler_run = [&slice](std::size_t count) {
    std::vector<ProbePacket> pkts;
    for (std::size_t i = 0; i < count; ++i) {
      char buf[16];
      std::snprintf(buf, sizeof(buf), "pad%05zu", i);
      pkts.push_back(seg(static_cast<std::uint32_t>(i * 8), bytes_of(buf)));
    }
    pkts.push_back(seg(static_cast<std::uint32_t>(count * 8),
                       Bytes(slice(0, kProbePayload.size()))));
    return pkts;
  };
  out.push_back(script("inspection-limit", 0, filler_run(6)));
  out.push_back(script("inspection-limit", 1, filler_run(9)));

  // -- no-syn: data on a flow whose SYN the classifier never saw.
  out.push_back(script("no-syn", 0, {seg(0, P)}, kDefaultIsn,
                       /*send_syn=*/false));

  return out;
}

// ---------------------------------------------------------------------------
// Codec.

Bytes encode_probe_script(const ProbeScript& s) {
  ByteWriter w(64 + 80 * s.packets.size());
  w.raw(std::string_view("APv1"));
  w.u16(static_cast<std::uint16_t>(s.dimension.size()));
  w.raw(std::string_view(s.dimension));
  w.u32(s.variant);
  w.u32(s.isn);
  w.u8(s.send_syn ? 1 : 0);
  w.u16(static_cast<std::uint16_t>(s.packets.size()));
  for (const ProbePacket& p : s.packets) {
    w.u8(static_cast<std::uint8_t>(p.kind));
    if (p.kind == ProbePacket::Kind::kSegment) {
      w.u32(p.rel_seq);
      w.u8(p.tcp_flags);
      w.u8(p.ttl);
      w.u8(p.corrupt_tcp_checksum ? 1 : 0);
      w.u16(p.urgent_ptr);
      w.u8(p.ip_option_kind);
    } else {
      w.u16(p.frag_offset_words);
      w.u8(p.more_fragments ? 1 : 0);
    }
    w.u32(static_cast<std::uint32_t>(p.payload.size()));
    w.raw(BytesView(p.payload));
  }
  return std::move(w).take();
}

std::optional<ProbeScript> decode_probe_script(BytesView data) {
  ByteReader r(data);
  auto magic = r.raw(4);
  if (!magic.ok() || to_string(magic.value()) != "APv1") return std::nullopt;
  ProbeScript s;
  auto name_len = r.u16();
  if (!name_len.ok() || name_len.value() > kMaxDimensionName) {
    return std::nullopt;
  }
  auto name = r.raw(name_len.value());
  if (!name.ok()) return std::nullopt;
  s.dimension = to_string(name.value());
  auto variant = r.u32();
  auto isn = r.u32();
  auto syn = r.u8();
  auto count = r.u16();
  if (!variant.ok() || !isn.ok() || !syn.ok() || !count.ok()) {
    return std::nullopt;
  }
  if (syn.value() > 1 || count.value() > kMaxPackets) return std::nullopt;
  s.variant = variant.value();
  s.isn = isn.value();
  s.send_syn = syn.value() == 1;
  s.packets.reserve(count.value());
  for (std::uint16_t i = 0; i < count.value(); ++i) {
    auto kind = r.u8();
    if (!kind.ok() || kind.value() > 1) return std::nullopt;
    ProbePacket p;
    p.kind = static_cast<ProbePacket::Kind>(kind.value());
    if (p.kind == ProbePacket::Kind::kSegment) {
      auto rel_seq = r.u32();
      auto flags = r.u8();
      auto ttl = r.u8();
      auto corrupt = r.u8();
      auto urg = r.u16();
      auto opt = r.u8();
      if (!rel_seq.ok() || !flags.ok() || !ttl.ok() || !corrupt.ok() ||
          !urg.ok() || !opt.ok() || corrupt.value() > 1) {
        return std::nullopt;
      }
      p.rel_seq = rel_seq.value();
      p.tcp_flags = flags.value();
      p.ttl = ttl.value();
      p.corrupt_tcp_checksum = corrupt.value() == 1;
      p.urgent_ptr = urg.value();
      p.ip_option_kind = opt.value();
    } else {
      auto off = r.u16();
      auto mf = r.u8();
      if (!off.ok() || !mf.ok() || mf.value() > 1) return std::nullopt;
      p.frag_offset_words = off.value();
      p.more_fragments = mf.value() == 1;
    }
    auto len = r.u32();
    if (!len.ok() || len.value() > kMaxProbePayload) return std::nullopt;
    auto payload = r.raw(len.value());
    if (!payload.ok()) return std::nullopt;
    p.payload = Bytes(payload.value().begin(), payload.value().end());
    s.packets.push_back(std::move(p));
  }
  if (!r.empty()) return std::nullopt;  // trailing bytes
  return s;
}

// ---------------------------------------------------------------------------
// Runner.

ProbeObservation run_probe_script(dpi::Environment& env,
                                  const ProbeScript& script) {
  ServerSink server(env.loop);
  NullHost client;
  env.net.attach_client(&client);
  env.net.attach_server(&server);
  for (Bytes& pkt : build_wire_packets(script)) {
    env.net.send_from_client(std::move(pkt));
    env.loop.run_until_idle();
  }
  env.net.attach_client(nullptr);
  env.net.attach_server(nullptr);

  ProbeObservation obs;
  obs.server_intact = server.keyword_seen();
  if (env.dpi != nullptr) {
    const netsim::FiveTuple probe = probe_tuple();
    for (const dpi::ClassificationEvent& ev : env.dpi->engine().log()) {
      if (ev.flow == probe && ev.traffic_class == kDecoyClass) {
        obs.dpi_classified = true;
        break;
      }
    }
  }
  return obs;
}

AmbiguityProbeResult probe_ambiguity(const EnvFactory& factory,
                                     const AmbiguityProbeOptions& options) {
  AmbiguityProbeResult result;
  std::unique_ptr<dpi::Environment> pilot = factory(options.seed);
  if (pilot == nullptr) return result;
  const std::vector<ProbeScript> catalog =
      ambiguity_probe_catalog(pilot->hops_before_middlebox);
  std::vector<ProbeObservation> obs(catalog.size());

  if (options.workers > 1) {
    ThreadPool pool(options.workers);
    std::vector<std::future<void>> done;
    done.reserve(catalog.size());
    for (std::size_t i = 0; i < catalog.size(); ++i) {
      done.push_back(pool.submit([&factory, &catalog, &obs, &options, i] {
        std::unique_ptr<dpi::Environment> env = factory(options.seed);
        if (env != nullptr) obs[i] = run_probe_script(*env, catalog[i]);
      }));
    }
    for (auto& f : done) f.get();
  } else {
    for (std::size_t i = 0; i < catalog.size(); ++i) {
      std::unique_ptr<dpi::Environment> env =
          i == 0 ? std::move(pilot) : factory(options.seed);
      if (env != nullptr) obs[i] = run_probe_script(*env, catalog[i]);
    }
  }

  // Fold the observation bits — a pure function of (catalog, obs), so the
  // digest is identical across worker counts and match backends.
  std::map<std::string, DimensionResult> dims;
  for (std::size_t i = 0; i < catalog.size(); ++i) {
    DimensionResult& r = dims[catalog[i].dimension];
    r.dimension = catalog[i].dimension;
    if (obs[i].dpi_classified) r.bits |= 1u << (2 * catalog[i].variant);
    if (obs[i].server_intact) r.bits |= 1u << (2 * catalog[i].variant + 1);
    r.variant_count = std::max(r.variant_count, catalog[i].variant + 1);
  }
  for (auto& [name, r] : dims) result.digest.add(std::move(r));
  result.probe_flows = catalog.size();
  return result;
}

AmbiguityProbeResult probe_environment(const std::string& name,
                                       const AmbiguityProbeOptions& options) {
  return probe_ambiguity(
      [&name](std::uint64_t seed) { return dpi::make_environment(name, seed); },
      options);
}

}  // namespace liberate::fingerprint
