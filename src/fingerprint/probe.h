// probe.h — the ambiguity probe generator and runner.
//
// A ProbeScript is a deterministic recipe for one short flow that plants a
// benign decoy keyword ("news-decoy.example.net" — every DPI profile ships a
// no-action rule for it) inside ambiguous wire input: conflicting TCP
// segment overlaps, overlapping IP fragments, TTL-scoped inserts, shadow
// segments with invalid checksums, IP-option and urgent-pointer quirks,
// out-of-window and sequence-wrap-spanning data, inspection-depth and SYN
// tracking limits. The catalog (ambiguity_probe_catalog) enumerates the
// dimensions in a fixed order; each script runs in its own isolated world,
// and the two observation bits per variant — classifier saw the keyword /
// server saw the keyword — distill into an AmbiguityDigest
// (docs/fingerprinting.md).
//
// Scripts have a strict length-prefixed binary codec (magic "APv1") so
// probe sets can be persisted and replayed; malformed inputs must be
// rejected, which is exactly what the fuzz campaign in tests/fuzz hammers.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "dpi/profiles.h"
#include "fingerprint/ambiguity.h"
#include "util/bytes.h"

namespace liberate::fingerprint {

/// Sentinel for ProbePacket::ip_option_kind: attach an option with an
/// impossible declared length (the "Invalid Options" Table 3 row).
inline constexpr std::uint8_t kInvalidIpOptionKind = 0xFF;

struct ProbePacket {
  enum class Kind : std::uint8_t { kSegment = 0, kFragment = 1 };
  Kind kind = Kind::kSegment;

  // kSegment: one TCP segment of the probe flow. `rel_seq` is relative to
  // ISN+1 (the first data byte); uint32 arithmetic wraps deliberately.
  std::uint32_t rel_seq = 0;
  std::uint8_t tcp_flags = 0;          // 0 = plain ACK data segment
  std::uint8_t ttl = 0;                // 0 = default (64)
  bool corrupt_tcp_checksum = false;
  std::uint16_t urgent_ptr = 0;
  std::uint8_t ip_option_kind = 0;     // 0=none, 136=stream-id, 0xFF=invalid
  Bytes payload;

  // kFragment: one raw IP fragment; `payload` is the slice of the full IP
  // payload (TCP header + app bytes) this fragment carries.
  std::uint16_t frag_offset_words = 0;
  bool more_fragments = false;

  bool operator==(const ProbePacket&) const = default;
};

struct ProbeScript {
  std::string dimension;      // catalog dimension this variant belongs to
  std::uint32_t variant = 0;  // index within the dimension
  std::uint32_t isn = 0;      // client initial sequence number
  bool send_syn = true;
  std::vector<ProbePacket> packets;

  bool operator==(const ProbeScript&) const = default;
};

/// Strict binary codec (magic "APv1", network-order, length-prefixed).
/// decode rejects anything malformed: bad magic, truncation, trailing
/// bytes, out-of-range kinds/booleans, oversized strings or payloads.
Bytes encode_probe_script(const ProbeScript& script);
std::optional<ProbeScript> decode_probe_script(BytesView data);

/// What one probe flow observed.
struct ProbeObservation {
  bool dpi_classified = false;  // classifier logged the decoy "news" class
  bool server_intact = false;   // keyword reached the server stream intact
};

/// The fixed probe catalog. TTL-scoped variants need the path depth
/// (hops_before_middlebox) to aim an insert at the last hop before the
/// middlebox. Order and content are deterministic.
std::vector<ProbeScript> ambiguity_probe_catalog(int hops_before_middlebox);

/// Run one script against a (fresh) environment: raw client/server sinks are
/// attached, every packet is injected client-side, the loop drains, and the
/// two observation bits are read back. The environment's DPI log is
/// consumed; run each script in its own world for isolation.
ProbeObservation run_probe_script(dpi::Environment& env,
                                  const ProbeScript& script);

/// Builds one isolated world per probe script.
using EnvFactory =
    std::function<std::unique_ptr<dpi::Environment>(std::uint64_t seed)>;

struct AmbiguityProbeOptions {
  std::size_t workers = 1;  // >1 fans scripts out over a thread pool
  std::uint64_t seed = 1;
};

struct AmbiguityProbeResult {
  AmbiguityDigest digest;
  std::size_t probe_flows = 0;  // scripts executed (one flow each)
};

/// Probe a classifier implementation: run the whole catalog, one isolated
/// world per script, and distill the observations into a digest. The result
/// is byte-identical across worker counts and match backends.
AmbiguityProbeResult probe_ambiguity(const EnvFactory& factory,
                                     const AmbiguityProbeOptions& options = {});

/// Convenience: probe a named dpi profile (make_environment).
AmbiguityProbeResult probe_environment(const std::string& name,
                                       const AmbiguityProbeOptions& options = {});

}  // namespace liberate::fingerprint
