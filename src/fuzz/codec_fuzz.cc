// codec_fuzz.cc — the codec campaign: parse → mutate → serialize round
// trips over every wire codec and application parser, from one seed.
#include <algorithm>

#include "dpi/http_parser.h"
#include "dpi/stun_parser.h"
#include "dpi/tls_parser.h"
#include "fuzz/fuzz.h"
#include "netsim/packet.h"
#include "netsim/validation.h"
#include "stack/ip_reassembly.h"
#include "trace/generators.h"
#include "util/rng.h"

namespace liberate::fuzz {

namespace {

using namespace netsim;

/// Every parser in the tree consumes `input`; none may crash, hang or read
/// out of bounds (the sanitizers enforce the latter).
void exercise_parsers(BytesView input, FuzzStats& stats) {
  ++stats.inputs;
  (void)dpi::parse_http_request(input);
  (void)dpi::parse_http_response(input);
  (void)dpi::looks_like_http_request(input);
  (void)dpi::extract_sni(input);
  (void)dpi::looks_like_tls_client_hello(input);
  (void)dpi::parse_stun(input);
  (void)parse_ipv4(input);
  (void)parse_tcp(input);
  (void)parse_udp(input);
  (void)parse_icmp(input);
  auto pkt = parse_packet(input);
  if (pkt.ok()) {
    ++stats.parsed_packets;
    (void)anomalies_of(pkt.value());
  }
}

Bytes random_payload(Rng& rng) {
  switch (rng.below(4)) {
    case 0:  // HTTP-ish request head, possibly garbled below
      return to_bytes("GET /fuzz HTTP/1.1\r\nHost: fuzz.example\r\n"
                      "User-Agent: libfuzz\r\n\r\n");
    case 1: {  // STUN binding request
      dpi::StunMessage msg;
      msg.message_type = 0x0001;
      msg.transaction_id = rng.bytes(12);
      dpi::StunAttribute attr;
      attr.type = dpi::kStunAttrMsServiceQuality;
      attr.value = rng.bytes(rng.below(16));
      msg.attributes.push_back(attr);
      return dpi::serialize_stun(msg);
    }
    default:
      return rng.bytes(rng.below(600));
  }
}

/// A structured-random datagram: plausible headers with occasional
/// deliberately invalid fields — the same space the inert-packet techniques
/// craft in.
Bytes random_datagram(Rng& rng, bool* clean) {
  *clean = true;
  Ipv4Header ip;
  ip.src = static_cast<std::uint32_t>(rng.next());
  ip.dst = static_cast<std::uint32_t>(rng.next());
  ip.identification = static_cast<std::uint16_t>(rng.next());
  ip.ttl = static_cast<std::uint8_t>(rng.range(1, 255));
  ip.dscp_ecn = static_cast<std::uint8_t>(rng.next());
  if (rng.chance(0.15)) ip.options.push_back(Ipv4Option::nop());
  if (rng.chance(0.1)) {
    ip.options.push_back(
        Ipv4Option::stream_id(static_cast<std::uint16_t>(rng.next())));
  }
  if (rng.chance(0.05)) {
    ip.options.push_back(Ipv4Option::invalid_length());
    *clean = false;
  }
  if (rng.chance(0.05)) {
    ip.total_length_override = static_cast<std::uint16_t>(rng.next());
    *clean = false;
  }
  if (rng.chance(0.05)) {
    ip.checksum_override = static_cast<std::uint16_t>(rng.next());
    *clean = false;
  }
  if (rng.chance(0.03)) {
    ip.version = static_cast<std::uint8_t>(rng.below(16));
    *clean = false;
  }

  Bytes payload = random_payload(rng);
  switch (rng.below(3)) {
    case 0: {
      TcpHeader tcp;
      tcp.src_port = static_cast<std::uint16_t>(rng.next());
      tcp.dst_port = static_cast<std::uint16_t>(rng.next());
      tcp.seq = static_cast<std::uint32_t>(rng.next());
      tcp.ack = static_cast<std::uint32_t>(rng.next());
      tcp.flags = static_cast<std::uint8_t>(rng.next());
      tcp.window = static_cast<std::uint16_t>(rng.next());
      if (rng.chance(0.2)) tcp.options.push_back(TcpOption::mss(1460));
      if (rng.chance(0.05)) {
        tcp.data_offset_words = static_cast<std::uint8_t>(rng.below(16));
        *clean = false;
      }
      if (rng.chance(0.05)) {
        tcp.checksum_override = static_cast<std::uint16_t>(rng.next());
        *clean = false;
      }
      return make_tcp_datagram(ip, tcp, payload);
    }
    case 1: {
      UdpHeader udp;
      udp.src_port = static_cast<std::uint16_t>(rng.next());
      udp.dst_port = static_cast<std::uint16_t>(rng.next());
      return make_udp_datagram(ip, udp, payload);
    }
    default: {
      IcmpMessage icmp;
      icmp.type = static_cast<IcmpType>(rng.below(256));
      icmp.code = static_cast<std::uint8_t>(rng.next());
      icmp.body = rng.bytes(rng.below(128));
      return make_icmp_datagram(ip, icmp);
    }
  }
}

/// serialize → parse identity on a cleanly built datagram: the parse must
/// succeed, report no anomalies, and agree on the fields that identify the
/// packet.
void check_ipv4_roundtrip(const Bytes& dgram, FuzzStats& stats) {
  ++stats.roundtrips_checked;
  auto parsed = parse_ipv4(dgram);
  if (!parsed.ok() || parsed.value().any_anomaly()) {
    ++stats.roundtrip_mismatches;
    return;
  }
  const Ipv4View& v = parsed.value();
  // Re-serialize from the parsed view and parse again: field-stable.
  Ipv4Header h;
  h.dscp_ecn = v.dscp_ecn;
  h.identification = v.identification;
  h.flag_dont_fragment = v.flag_dont_fragment;
  h.flag_more_fragments = v.flag_more_fragments;
  h.fragment_offset_words = v.fragment_offset_words;
  h.ttl = v.ttl;
  h.protocol = v.protocol;
  h.src = v.src;
  h.dst = v.dst;
  h.options = v.options;
  Bytes rebuilt = serialize_ipv4(h, v.payload);
  auto reparsed = parse_ipv4(rebuilt);
  if (!reparsed.ok()) {
    ++stats.roundtrip_mismatches;
    return;
  }
  const Ipv4View& r = reparsed.value();
  if (r.src != v.src || r.dst != v.dst ||
      r.identification != v.identification || r.ttl != v.ttl ||
      r.protocol != v.protocol || r.any_anomaly() ||
      Bytes(r.payload.begin(), r.payload.end()) !=
          Bytes(v.payload.begin(), v.payload.end())) {
    ++stats.roundtrip_mismatches;
  }
}

void check_stun_roundtrip(Rng& rng, FuzzStats& stats) {
  dpi::StunMessage msg;
  msg.message_type = static_cast<std::uint16_t>(rng.below(0x4000));
  msg.transaction_id = rng.bytes(12);
  std::size_t attrs = rng.below(4);
  for (std::size_t i = 0; i < attrs; ++i) {
    dpi::StunAttribute a;
    a.type = static_cast<std::uint16_t>(rng.next());
    a.value = rng.bytes(rng.below(32));
    msg.attributes.push_back(a);
  }
  ++stats.roundtrips_checked;
  Bytes wire = dpi::serialize_stun(msg);
  auto back = dpi::parse_stun(wire);
  if (!back || back->message_type != msg.message_type ||
      back->transaction_id != msg.transaction_id ||
      back->attributes.size() != msg.attributes.size()) {
    ++stats.roundtrip_mismatches;
    return;
  }
  for (std::size_t i = 0; i < msg.attributes.size(); ++i) {
    if (back->attributes[i].type != msg.attributes[i].type ||
        back->attributes[i].value != msg.attributes[i].value) {
      ++stats.roundtrip_mismatches;
      return;
    }
  }
}

void check_sni_roundtrip(Rng& rng, FuzzStats& stats) {
  std::string sni = "fuzz";
  std::size_t labels = 1 + rng.below(3);
  for (std::size_t i = 0; i < labels; ++i) {
    sni += ".";
    std::size_t len = 1 + rng.below(12);
    for (std::size_t j = 0; j < len; ++j) {
      sni += static_cast<char>('a' + rng.below(26));
    }
  }
  trace::TlsTraceOptions opts;
  opts.sni = sni;
  opts.response_body_bytes = 16;
  opts.seed = rng.next();
  auto trace = trace::make_tls_trace("fuzz", opts);
  ++stats.roundtrips_checked;
  auto got = dpi::extract_sni(trace.messages.at(0).payload);
  if (!got || *got != sni) ++stats.roundtrip_mismatches;
}

/// fragment → shuffle → reassemble must reproduce the original payload.
void check_fragmentation_roundtrip(Rng& rng, FuzzStats& stats) {
  Ipv4Header ip;
  ip.src = static_cast<std::uint32_t>(rng.next());
  ip.dst = static_cast<std::uint32_t>(rng.next());
  ip.identification = static_cast<std::uint16_t>(rng.next());
  TcpHeader tcp;
  tcp.src_port = 1000;
  tcp.dst_port = 80;
  tcp.flags = TcpFlags::kAck;
  Bytes dgram = make_tcp_datagram(ip, tcp, rng.bytes(64 + rng.below(2000)));
  std::size_t pieces = 2 + rng.below(7);
  auto frags = fragment_datagram(dgram, pieces);
  // Deterministic Fisher-Yates off the iteration rng.
  for (std::size_t i = frags.size(); i > 1; --i) {
    std::swap(frags[i - 1], frags[rng.below(i)]);
  }
  stack::IpReassembler reasm;
  std::optional<Bytes> whole;
  for (const Bytes& f : frags) {
    ++stats.fragments_pushed;
    auto out = reasm.push(f, 0);
    if (out) whole = std::move(out);
  }
  ++stats.roundtrips_checked;
  if (!whole) {
    ++stats.roundtrip_mismatches;
    return;
  }
  ++stats.datagrams_reassembled;
  auto orig = parse_ipv4(dgram);
  auto got = parse_ipv4(*whole);
  if (!orig.ok() || !got.ok() ||
      Bytes(orig.value().payload.begin(), orig.value().payload.end()) !=
          Bytes(got.value().payload.begin(), got.value().payload.end())) {
    ++stats.roundtrip_mismatches;
  }
}

}  // namespace

void FuzzStats::merge(const FuzzStats& o) {
  iterations += o.iterations;
  inputs += o.inputs;
  parsed_packets += o.parsed_packets;
  roundtrips_checked += o.roundtrips_checked;
  if (roundtrip_mismatches + match_divergences == 0 &&
      o.roundtrip_mismatches + o.match_divergences > 0) {
    first_failure_seed = o.first_failure_seed;
  }
  roundtrip_mismatches += o.roundtrip_mismatches;
  datagrams_reassembled += o.datagrams_reassembled;
  fragments_pushed += o.fragments_pushed;
  segments_injected += o.segments_injected;
  stream_bytes_delivered += o.stream_bytes_delivered;
  match_programs_compiled += o.match_programs_compiled;
  match_fallback_programs += o.match_fallback_programs;
  match_cases_checked += o.match_cases_checked;
  match_divergences += o.match_divergences;
  probe_scripts_decoded += o.probe_scripts_decoded;
}

std::uint64_t iteration_seed(std::uint64_t base_seed, std::uint64_t index) {
  std::uint64_t z = base_seed + 0x9e3779b97f4a7c15ULL * (index + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

void run_codec_iteration(std::uint64_t seed, FuzzStats& stats) {
  Rng rng(seed);
  ++stats.iterations;

  // 1. Pure junk through every parser.
  exercise_parsers(rng.bytes(rng.below(1600)), stats);

  // 2. A structured-random datagram (possibly deliberately invalid).
  bool clean = false;
  Bytes dgram = random_datagram(rng, &clean);
  exercise_parsers(dgram, stats);

  // 3. serialize → parse identity, valid-field builds only.
  if (clean) check_ipv4_roundtrip(dgram, stats);

  // 4. Mutations: bit flips, then a random truncation.
  Bytes mutated = dgram;
  int flips = 1 + static_cast<int>(rng.below(8));
  for (int f = 0; f < flips; ++f) {
    mutated[rng.below(mutated.size())] ^=
        static_cast<std::uint8_t>(1u << rng.below(8));
  }
  exercise_parsers(mutated, stats);
  exercise_parsers(BytesView(mutated.data(), rng.below(mutated.size() + 1)),
                   stats);

  // 5. Application codec round trips.
  check_stun_roundtrip(rng, stats);
  if (rng.chance(0.25)) check_sni_roundtrip(rng, stats);

  // 6. Fragmentation → reassembly round trip.
  check_fragmentation_roundtrip(rng, stats);

  if (stats.roundtrip_mismatches > 0 && stats.first_failure_seed == 0) {
    stats.first_failure_seed = seed;
  }
}

FuzzStats run_codec_campaign(std::uint64_t base_seed,
                             std::uint64_t iterations) {
  FuzzStats stats;
  for (std::uint64_t i = 0; i < iterations; ++i) {
    run_codec_iteration(iteration_seed(base_seed, i), stats);
  }
  return stats;
}

void run_corpus_entry(BytesView input, FuzzStats& stats) {
  exercise_parsers(input, stats);
  stack::IpReassembler reasm;
  ++stats.fragments_pushed;
  if (reasm.push(input, 0)) ++stats.datagrams_reassembled;
}

}  // namespace liberate::fuzz
