// corpus.cc — loader for the checked-in seed corpus (tests/fuzz/corpus).
//
// Corpus files are hex text: pairs of hex digits, whitespace ignored, '#'
// starts a comment to end of line. Text keeps the wire bytes reviewable in
// diffs — every entry documents the malformation it carries.
#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>

#include "fuzz/fuzz.h"

namespace liberate::fuzz {

namespace {

Bytes decode_hex(const std::string& text) {
  Bytes out;
  int hi = -1;
  bool in_comment = false;
  for (char c : text) {
    if (c == '\n') {
      in_comment = false;
      continue;
    }
    if (in_comment) continue;
    if (c == '#') {
      in_comment = true;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) continue;
    int nibble;
    if (c >= '0' && c <= '9') {
      nibble = c - '0';
    } else if (c >= 'a' && c <= 'f') {
      nibble = c - 'a' + 10;
    } else if (c >= 'A' && c <= 'F') {
      nibble = c - 'A' + 10;
    } else {
      continue;  // tolerate stray characters: corpus must never crash tools
    }
    if (hi < 0) {
      hi = nibble;
    } else {
      out.push_back(static_cast<std::uint8_t>((hi << 4) | nibble));
      hi = -1;
    }
  }
  return out;
}

}  // namespace

std::vector<CorpusEntry> load_corpus(const std::string& dir) {
  std::vector<CorpusEntry> entries;
  std::error_code ec;
  for (const auto& de : std::filesystem::directory_iterator(dir, ec)) {
    if (!de.is_regular_file()) continue;
    std::ifstream in(de.path(), std::ios::binary);
    if (!in) continue;
    std::string text((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    entries.push_back(
        CorpusEntry{de.path().filename().string(), decode_hex(text)});
  }
  std::sort(entries.begin(), entries.end(),
            [](const CorpusEntry& a, const CorpusEntry& b) {
              return a.name < b.name;
            });
  return entries;
}

}  // namespace liberate::fuzz
