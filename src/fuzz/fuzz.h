// fuzz.h — deterministic, seed-driven fuzz harness for the wire stack.
//
// lib·erate's evasion techniques ARE hostile wire input (overlapping
// fragments, inert low-TTL packets, wrap-adjacent segments), so the codecs
// and the stateful stack must survive exactly what our own shim generates —
// and worse. This harness drives two campaigns:
//
//   codec:    parse → mutate → serialize round trips over the IPv4/TCP/UDP/
//             ICMP wire codecs and the STUN/TLS/HTTP application parsers,
//             over junk, structured-random and mutated inputs.
//   stateful: adversarial fragment streams through IpReassembler and
//             adversarial segment streams through a live TcpConnection
//             (wrap-adjacent ISNs, overlaps, floods, invalid flag combos).
//   match:    differential fuzzing of the compiled rule matcher
//             (dpi/match_program.h) against the reference linear matcher —
//             randomized rule sets × adversarial contents × contexts, every
//             verdict and trace byte-compared.
//
// Everything an iteration does is a pure function of one std::uint64_t seed
// (util/rng.h xoshiro), so any failure is a one-line repro:
//
//   liberate::fuzz::run_codec_iteration(0xDEADBEEF, stats);
//
// Campaign drivers derive per-iteration seeds via iteration_seed() and
// report the failing seed through the FuzzStats the caller inspects; the
// gtest wrappers in tests/fuzz print it via SCOPED_TRACE. CI runs the
// campaigns under ASan/UBSan with LIBERATE_FUZZ_ITERATIONS=10000 (see
// .github/workflows/ci.yml and docs/robustness.md).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/bytes.h"

namespace liberate::fuzz {

/// Aggregated campaign observations. `roundtrip_mismatches` is the only
/// correctness field — it must stay 0; the rest are coverage telemetry so a
/// campaign that silently stopped exercising a path is visible.
struct FuzzStats {
  std::uint64_t iterations = 0;
  std::uint64_t inputs = 0;             // byte buffers pushed through parsers
  std::uint64_t parsed_packets = 0;     // inputs parse_packet accepted
  std::uint64_t roundtrips_checked = 0; // serialize→parse identities verified
  std::uint64_t roundtrip_mismatches = 0;  // MUST be 0
  std::uint64_t datagrams_reassembled = 0;
  std::uint64_t fragments_pushed = 0;
  std::uint64_t segments_injected = 0;
  std::uint64_t stream_bytes_delivered = 0;
  // Match-program campaign. `match_divergences` is a correctness field like
  // roundtrip_mismatches — any nonzero count is a compiled-matcher bug.
  std::uint64_t match_programs_compiled = 0;
  std::uint64_t match_fallback_programs = 0;  // node-budget fallback taken
  std::uint64_t match_cases_checked = 0;      // (rules, content, ctx) triples
  std::uint64_t match_divergences = 0;        // MUST be 0
  // Probe-codec campaign (fingerprint/probe.h "APv1" scripts).
  std::uint64_t probe_scripts_decoded = 0;    // inputs the decoder accepted
  /// Seed of the first iteration that recorded a mismatch (repro handle).
  std::uint64_t first_failure_seed = 0;

  void merge(const FuzzStats& o);
};

/// Seed for iteration `index` of a campaign based at `base_seed`
/// (splitmix64 — statistically independent streams per iteration).
std::uint64_t iteration_seed(std::uint64_t base_seed, std::uint64_t index);

/// One deterministic codec iteration.
void run_codec_iteration(std::uint64_t seed, FuzzStats& stats);
/// One deterministic stateful (reassembly + TCP endpoint) iteration.
void run_stateful_iteration(std::uint64_t seed, FuzzStats& stats);
/// One deterministic match-program differential iteration: a randomized rule
/// set is compiled once and checked against the reference matcher on a batch
/// of adversarial contents/contexts (anchors at offsets 0/±1, case flips,
/// keyword overlaps, STUN payloads, empty contents). Every RuleHit and
/// RuleStep/ContentTrace sequence must be byte-identical.
void run_match_program_iteration(std::uint64_t seed, FuzzStats& stats);
/// One deterministic probe-codec iteration: a random in-caps ProbeScript is
/// round-tripped through encode/decode, then its encoding is mutated (bit
/// flips, truncations, splices, trailing junk) — the decoder must reject or
/// stay canonical (decode∘encode∘decode is the identity), never crash.
void run_probe_codec_iteration(std::uint64_t seed, FuzzStats& stats);

/// Campaign drivers: `iterations` iterations from `base_seed`.
FuzzStats run_codec_campaign(std::uint64_t base_seed,
                             std::uint64_t iterations);
FuzzStats run_stateful_campaign(std::uint64_t base_seed,
                                std::uint64_t iterations);
FuzzStats run_match_program_campaign(std::uint64_t base_seed,
                                     std::uint64_t iterations);
FuzzStats run_probe_codec_campaign(std::uint64_t base_seed,
                                   std::uint64_t iterations);

/// A checked-in interesting input (tests/fuzz/corpus): `name` is the file
/// name, `data` the decoded bytes.
struct CorpusEntry {
  std::string name;
  Bytes data;
};

/// Load every corpus file under `dir` (hex encoding: whitespace ignored,
/// '#' starts a comment to end of line), sorted by file name.
std::vector<CorpusEntry> load_corpus(const std::string& dir);

/// Drive one input through every parser and the reassembler (the corpus
/// replay path; also used internally by the codec campaign).
void run_corpus_entry(BytesView input, FuzzStats& stats);

/// Replay one match-campaign corpus content (tests/fuzz/corpus/match)
/// against a fixed tricky rule set under a matrix of contexts, comparing
/// compiled vs reference on each.
void run_match_corpus_entry(BytesView content, FuzzStats& stats);

/// Replay one probe-codec corpus input (tests/fuzz/corpus/fingerprint)
/// through the ambiguity probe script decoder, checking canonical-form
/// stability on accepted inputs.
void run_probe_corpus_entry(BytesView input, FuzzStats& stats);

}  // namespace liberate::fuzz
