// match_fuzz.cc — differential fuzzing of the compiled rule matcher.
//
// The compiled matcher (dpi/match_program.h) promises byte-identical
// verdicts AND byte-identical RuleStep/ContentTrace sequences against the
// reference linear matcher for every (rules, content, ctx). This campaign
// attacks that contract: every iteration compiles a fresh randomized rule
// set (anchored/port/udp/STUN/packet-index constraints, keyword fragments
// with case flips, single-byte and empty keywords, high-byte fold-boundary
// bytes, occasional node-budget-busting sets that must take the reference
// fallback) and replays a batch of adversarial contents through both
// matchers — traced and verdict-only — under randomized contexts.
//
// Any divergence bumps FuzzStats::match_divergences and records the
// iteration seed; `run_match_program_iteration(seed, stats)` is the whole
// repro.
#include <string>

#include "dpi/match_program.h"
#include "dpi/rules.h"
#include "dpi/stun_parser.h"
#include "fuzz/fuzz.h"
#include "util/rng.h"

namespace liberate::fuzz {

namespace {

using dpi::MatchProgram;
using dpi::MatchRule;
using dpi::RuleContext;
using dpi::RuleHit;
using dpi::RuleStep;

/// Keyword seed pool: the shapes real rule sets use (HTTP verbs, host
/// fragments, SNI substrings) plus automaton stress shapes — single bytes,
/// shared prefixes/suffixes so patterns overlap inside the Aho-Corasick
/// trie, and bytes >= 0x80 which ifind() never case-folds.
const char* const kFragments[] = {
    "GET ",        "get",         "Host: ",      "host",
    "youtube",     "youtube.com", "tube",        "googlevideo",
    "google",      "video",       "netflix",     "HTTP/1.1",
    "\r\n",        "x",           "X",           "a=rtpmap",
    "skype",       "sky",         "\x80\x81",    "\xc3\xa9video",
};
constexpr std::size_t kFragmentCount =
    sizeof(kFragments) / sizeof(kFragments[0]);

std::string random_keyword(Rng& rng) {
  std::string kw = kFragments[rng.below(kFragmentCount)];
  // Random case flips: folding must behave identically in both matchers.
  for (char& c : kw) {
    if (rng.chance(0.3)) {
      if (c >= 'a' && c <= 'z') c = static_cast<char>(c - 32);
      else if (c >= 'A' && c <= 'Z') c = static_cast<char>(c + 32);
    }
  }
  if (rng.chance(0.15)) kw += static_cast<char>(rng.next());  // raw byte tail
  if (rng.chance(0.1) && kw.size() > 1) kw.resize(kw.size() - 1);
  return kw;
}

std::vector<MatchRule> random_rules(Rng& rng) {
  std::vector<MatchRule> rules(rng.range(1, 8));
  for (std::size_t i = 0; i < rules.size(); ++i) {
    MatchRule& r = rules[i];
    r.name = "fuzz-rule-" + std::to_string(i);
    r.traffic_class = (i % 2) != 0u ? "video" : "voip";
    const std::size_t nk = rng.below(4);  // 0..3; 0 keywords = guard-only rule
    for (std::size_t k = 0; k < nk; ++k) r.keywords.push_back(random_keyword(rng));
    if (rng.chance(0.12)) {
      // Empty keyword: ifind("") == 0 always; the program encodes it as a
      // constant, not an automaton pattern.
      r.keywords.insert(r.keywords.begin() + static_cast<std::ptrdiff_t>(
                            rng.below(r.keywords.size() + 1)),
                        std::string());
    }
    r.anchored = rng.chance(0.35);
    if (rng.chance(0.35)) {
      const std::uint16_t ports[] = {80, 443, 3478,
                                     static_cast<std::uint16_t>(rng.next())};
      r.dst_port = ports[rng.below(4)];
    }
    r.udp = rng.chance(0.3);
    if (rng.chance(0.15)) {
      r.stun_attribute = rng.chance(0.5)
                             ? dpi::kStunAttrMsServiceQuality
                             : static_cast<std::uint16_t>(rng.next());
    }
    if (rng.chance(0.2)) r.only_packet_index = rng.range(1, 3);
  }
  // Rarely, blow the automaton node budget so the compiled program must take
  // its reference-fallback path — which also has to stay byte-identical.
  if (rng.chance(0.02)) {
    MatchRule big;
    big.name = "fuzz-rule-budget-buster";
    big.traffic_class = "bulk";
    std::string kw;
    kw.reserve(5000);
    for (int k = 0; k < 5000; ++k) kw += static_cast<char>(rng.next());
    big.keywords.push_back(std::move(kw));
    rules.push_back(std::move(big));
  }
  return rules;
}

Bytes stun_content(Rng& rng, const std::vector<MatchRule>& rules) {
  dpi::StunMessage msg;
  msg.message_type = 0x0001;
  msg.transaction_id = rng.bytes(12);
  // Use a rule's required attribute half the time so the STUN guard passes.
  std::optional<std::uint16_t> want;
  for (const MatchRule& r : rules) {
    if (r.stun_attribute) want = r.stun_attribute;
  }
  dpi::StunAttribute attr;
  attr.type = (want && rng.chance(0.6))
                  ? *want
                  : static_cast<std::uint16_t>(rng.next());
  // Attribute values of every length mod 4 exercise the padded offset walk.
  attr.value = rng.bytes(rng.below(9));
  msg.attributes.push_back(attr);
  if (rng.chance(0.3)) {
    dpi::StunAttribute extra;
    extra.type = static_cast<std::uint16_t>(rng.next());
    extra.value = rng.bytes(rng.below(5));
    msg.attributes.push_back(extra);
  }
  return dpi::serialize_stun(msg);
}

/// Adversarial content: empty payloads, pure junk, STUN messages, and
/// keyword stitches placed at offsets 0 / +1 / +2 with flipped case —
/// exactly the inputs where anchored dispatch or first-occurrence logic
/// could drift from the reference.
Bytes random_content(Rng& rng, const std::vector<MatchRule>& rules) {
  switch (rng.below(8)) {
    case 0:
      return {};
    case 1:
      return rng.bytes(rng.below(200));
    case 2:
      return stun_content(rng, rules);
    default: {
      Bytes content;
      // 0/1/2 junk bytes in front: offset 0 hits anchors, ±1 defeats them.
      const std::size_t lead = rng.below(3);
      for (std::size_t i = 0; i < lead; ++i) {
        content.push_back(static_cast<std::uint8_t>(rng.next()));
      }
      const std::size_t pieces = rng.range(1, 4);
      for (std::size_t p = 0; p < pieces; ++p) {
        std::string kw;
        const MatchRule& r = rules[rng.below(rules.size())];
        if (!r.keywords.empty() && rng.chance(0.8)) {
          kw = r.keywords[rng.below(r.keywords.size())];
        } else {
          kw = random_keyword(rng);
        }
        for (char& c : kw) {
          if (rng.chance(0.25)) {
            if (c >= 'a' && c <= 'z') c = static_cast<char>(c - 32);
            else if (c >= 'A' && c <= 'Z') c = static_cast<char>(c + 32);
          }
        }
        content.insert(content.end(), kw.begin(), kw.end());
        if (rng.chance(0.5)) {
          Bytes junk = rng.bytes(rng.below(12));
          content.insert(content.end(), junk.begin(), junk.end());
        }
        // Occasionally step back one byte so consecutive keywords overlap.
        if (rng.chance(0.2) && !content.empty()) content.pop_back();
      }
      return content;
    }
  }
}

RuleContext random_ctx(Rng& rng, const std::vector<MatchRule>& rules) {
  RuleContext ctx;
  ctx.dst_port = static_cast<std::uint16_t>(rng.next());
  if (rng.chance(0.6)) {
    for (const MatchRule& r : rules) {
      if (r.dst_port && rng.chance(0.5)) ctx.dst_port = *r.dst_port;
    }
  }
  ctx.udp = rng.chance(0.5);
  if (rng.chance(0.6)) ctx.packet_index = rng.range(1, 3);
  return ctx;
}

bool traces_equal(const MatchRule::ContentTrace& a,
                  const MatchRule::ContentTrace& b) {
  return a.keyword_offsets == b.keyword_offsets &&
         a.failed_keyword == b.failed_keyword &&
         a.anchor_failed == b.anchor_failed && a.stun_failed == b.stun_failed;
}

bool steps_equal(const std::vector<RuleStep>& a,
                 const std::vector<RuleStep>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].rule != b[i].rule || a[i].outcome != b[i].outcome ||
        !traces_equal(a[i].content, b[i].content)) {
      return false;
    }
  }
  return true;
}

/// One differential case: traced and verdict-only evaluation through the
/// program, byte-compared against the reference.
void check_case(const MatchProgram& prog, const std::vector<MatchRule>& rules,
                BytesView content, const RuleContext& ctx,
                MatchProgram::Scratch& scratch, std::uint64_t seed,
                FuzzStats& stats) {
  std::vector<RuleStep> ref_steps;
  std::vector<RuleStep> prog_steps;
  RuleHit ref = match_rules_reference_traced(rules, content, ctx, &ref_steps);
  RuleHit traced = prog.run(rules, content, ctx, &prog_steps, scratch);
  RuleHit verdict = prog.run(rules, content, ctx, nullptr, scratch);
  ++stats.match_cases_checked;
  const bool ok = ref.rule == traced.rule && ref.rule == verdict.rule &&
                  steps_equal(ref_steps, prog_steps);
  if (!ok) {
    if (stats.roundtrip_mismatches + stats.match_divergences == 0) {
      stats.first_failure_seed = seed;
    }
    ++stats.match_divergences;
  }
}

/// The fixed rule set corpus contents replay against: every constraint kind
/// plus the automaton shapes (shared prefixes, single byte, empty keyword,
/// high-byte keyword) in one set.
const std::vector<MatchRule>& corpus_rules() {
  static const std::vector<MatchRule> rules = [] {
    std::vector<MatchRule> r(6);
    r[0].name = "corpus-anchored-http";
    r[0].traffic_class = "video";
    r[0].keywords = {"GET ", "youtube"};
    r[0].anchored = true;
    r[0].dst_port = 80;
    r[1].name = "corpus-stun-skype";
    r[1].traffic_class = "voip";
    r[1].keywords = {};
    r[1].udp = true;
    r[1].stun_attribute = dpi::kStunAttrMsServiceQuality;
    r[1].only_packet_index = 1;
    r[2].name = "corpus-single-byte-anchor";
    r[2].traffic_class = "bulk";
    r[2].keywords = {"x"};
    r[2].anchored = true;
    r[3].name = "corpus-empty-keyword";
    r[3].traffic_class = "web";
    r[3].keywords = {"", "Host: "};
    r[4].name = "corpus-overlap";
    r[4].traffic_class = "video";
    r[4].keywords = {"googlevideo", "video", "google"};
    r[5].name = "corpus-high-byte";
    r[5].traffic_class = "web";
    r[5].keywords = {"\xc3\xa9video"};
    return r;
  }();
  return rules;
}

}  // namespace

void run_match_program_iteration(std::uint64_t seed, FuzzStats& stats) {
  ++stats.iterations;
  Rng rng(seed);
  const std::vector<MatchRule> rules = random_rules(rng);
  const MatchProgram prog = MatchProgram::compile(rules);
  ++stats.match_programs_compiled;
  if (!prog.compiled()) ++stats.match_fallback_programs;
  MatchProgram::Scratch scratch;  // shared across cases: epoch stamps must hold
  for (int c = 0; c < 12; ++c) {
    const Bytes content = random_content(rng, rules);
    const RuleContext ctx = random_ctx(rng, rules);
    check_case(prog, rules, BytesView(content), ctx, scratch, seed, stats);
  }
  // The memoized compile path must hand back an equivalent program.
  if (seed % 7 == 0) {
    auto shared = MatchProgram::compile_cached(rules);
    const Bytes content = random_content(rng, rules);
    const RuleContext ctx = random_ctx(rng, rules);
    check_case(*shared, rules, BytesView(content), ctx, scratch, seed, stats);
  }
}

FuzzStats run_match_program_campaign(std::uint64_t base_seed,
                                     std::uint64_t iterations) {
  FuzzStats stats;
  for (std::uint64_t i = 0; i < iterations; ++i) {
    run_match_program_iteration(iteration_seed(base_seed, i), stats);
  }
  return stats;
}

void run_match_corpus_entry(BytesView content, FuzzStats& stats) {
  ++stats.inputs;
  const std::vector<MatchRule>& rules = corpus_rules();
  static const MatchProgram prog = MatchProgram::compile(rules);
  MatchProgram::Scratch scratch;
  // Context matrix: hit and miss every guard kind at least once.
  const RuleContext contexts[] = {
      {/*dst_port=*/80, /*udp=*/false, /*packet_index=*/std::size_t{1}},
      {/*dst_port=*/443, /*udp=*/false, /*packet_index=*/std::nullopt},
      {/*dst_port=*/3478, /*udp=*/true, /*packet_index=*/std::size_t{1}},
      {/*dst_port=*/3478, /*udp=*/true, /*packet_index=*/std::size_t{2}},
  };
  for (const RuleContext& ctx : contexts) {
    check_case(prog, rules, content, ctx, scratch, /*seed=*/0, stats);
  }
}

}  // namespace liberate::fuzz
