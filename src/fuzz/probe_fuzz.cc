// probe_fuzz.cc — fuzz campaign for the ambiguity probe script codec
// (fingerprint/probe.h, magic "APv1").
//
// Probe scripts are persisted and replayed across trust boundaries (cache
// files, probe-set exchange), so the decoder must reject every malformed
// input instead of crashing or mis-parsing. Each iteration:
//
//   1. builds a random-but-in-caps ProbeScript and checks the strict
//      encode → decode identity;
//   2. mutates the encoding (bit flips, truncations, splices, appended
//      junk) and feeds the result to the decoder, which must either reject
//      it or yield a script whose re-encoding decodes back identically
//      (canonical-form stability).
#include <algorithm>

#include "fingerprint/probe.h"
#include "fuzz/fuzz.h"
#include "util/rng.h"

namespace liberate::fuzz {

namespace {

using fingerprint::ProbePacket;
using fingerprint::ProbeScript;

const char* const kDimensionNames[] = {
    "tcp-overlap",   "frag-overlap",     "ttl-insert", "checksum-shadow",
    "ip-option",     "urgent-pointer",   "out-of-window", "wrap-span",
    "inspection-limit", "no-syn",
};

ProbeScript random_script(Rng& rng) {
  ProbeScript s;
  if (rng.chance(0.8)) {
    s.dimension = kDimensionNames[rng.below(10)];
  } else {
    // Degenerate names: empty through moderately long, still within the
    // codec's 256-byte cap so the round trip must hold.
    s.dimension.assign(rng.below(48), 'd');
  }
  s.variant = static_cast<std::uint32_t>(rng.next());
  s.isn = static_cast<std::uint32_t>(rng.next());
  s.send_syn = rng.chance(0.9);
  const std::size_t n = rng.below(6);
  for (std::size_t i = 0; i < n; ++i) {
    ProbePacket p;
    if (rng.chance(0.7)) {
      p.kind = ProbePacket::Kind::kSegment;
      p.rel_seq = static_cast<std::uint32_t>(rng.next());
      p.tcp_flags = static_cast<std::uint8_t>(rng.next());
      p.ttl = static_cast<std::uint8_t>(rng.below(65));
      p.corrupt_tcp_checksum = rng.chance(0.2);
      p.urgent_ptr = static_cast<std::uint16_t>(rng.next());
      p.ip_option_kind = rng.chance(0.2)
                             ? fingerprint::kInvalidIpOptionKind
                             : static_cast<std::uint8_t>(rng.next());
    } else {
      p.kind = ProbePacket::Kind::kFragment;
      p.frag_offset_words = static_cast<std::uint16_t>(rng.next());
      p.more_fragments = rng.chance(0.5);
    }
    p.payload.resize(rng.below(96));
    for (auto& b : p.payload) b = static_cast<std::uint8_t>(rng.next());
    s.packets.push_back(std::move(p));
  }
  return s;
}

/// Decode an arbitrary buffer; when it is accepted, the decoded script's
/// canonical re-encoding must decode back to the same script.
void check_decode(BytesView input, std::uint64_t seed, FuzzStats& stats) {
  ++stats.inputs;
  std::optional<ProbeScript> decoded = fingerprint::decode_probe_script(input);
  if (!decoded) return;
  ++stats.probe_scripts_decoded;
  Bytes canonical = fingerprint::encode_probe_script(*decoded);
  std::optional<ProbeScript> again =
      fingerprint::decode_probe_script(canonical);
  ++stats.roundtrips_checked;
  if (!again || !(*again == *decoded)) {
    if (stats.roundtrip_mismatches == 0) stats.first_failure_seed = seed;
    ++stats.roundtrip_mismatches;
  }
}

}  // namespace

void run_probe_codec_iteration(std::uint64_t seed, FuzzStats& stats) {
  ++stats.iterations;
  Rng rng(seed);

  // Identity: a script within the codec caps must survive the round trip.
  ProbeScript script = random_script(rng);
  Bytes encoded = fingerprint::encode_probe_script(script);
  ++stats.inputs;
  std::optional<ProbeScript> decoded =
      fingerprint::decode_probe_script(encoded);
  ++stats.roundtrips_checked;
  if (!decoded || !(*decoded == script)) {
    if (stats.roundtrip_mismatches == 0) stats.first_failure_seed = seed;
    ++stats.roundtrip_mismatches;
    return;
  }
  ++stats.probe_scripts_decoded;

  // Mutation neighborhood: the decoder sees flipped bits, truncations,
  // splices of two encodings, and trailing junk. Reject or stay canonical.
  Bytes other = fingerprint::encode_probe_script(random_script(rng));
  for (int m = 0; m < 8; ++m) {
    Bytes mutated = encoded;
    switch (rng.below(4)) {
      case 0: {  // bit flip
        if (!mutated.empty()) {
          const std::size_t i = rng.below(mutated.size());
          mutated[i] ^= static_cast<std::uint8_t>(1u << rng.below(8));
        }
        break;
      }
      case 1: {  // truncate
        mutated.resize(rng.below(mutated.size() + 1));
        break;
      }
      case 2: {  // splice head of ours onto tail of another encoding
        const std::size_t cut = rng.below(mutated.size() + 1);
        mutated.resize(cut);
        const std::size_t from = rng.below(other.size() + 1);
        mutated.insert(mutated.end(), other.begin() + from, other.end());
        break;
      }
      default: {  // append junk (strict codec must reject trailing bytes)
        const std::size_t extra = 1 + rng.below(8);
        for (std::size_t i = 0; i < extra; ++i) {
          mutated.push_back(static_cast<std::uint8_t>(rng.next()));
        }
        break;
      }
    }
    check_decode(mutated, seed, stats);
  }

  // Pure junk of a plausible length.
  Bytes junk(rng.below(64), 0);
  for (auto& b : junk) b = static_cast<std::uint8_t>(rng.next());
  check_decode(junk, seed, stats);
}

FuzzStats run_probe_codec_campaign(std::uint64_t base_seed,
                                   std::uint64_t iterations) {
  FuzzStats stats;
  for (std::uint64_t i = 0; i < iterations; ++i) {
    run_probe_codec_iteration(iteration_seed(base_seed, i), stats);
  }
  return stats;
}

void run_probe_corpus_entry(BytesView input, FuzzStats& stats) {
  check_decode(input, /*seed=*/0, stats);
}

}  // namespace liberate::fuzz
