// stateful_fuzz.cc — the stateful campaign: adversarial fragment streams
// through IpReassembler and adversarial segment streams through a live
// TcpConnection, all derived from one seed.
#include <cassert>

#include "fuzz/fuzz.h"
#include "netsim/event_loop.h"
#include "netsim/packet.h"
#include "stack/host.h"
#include "stack/ip_reassembly.h"
#include "util/rng.h"

namespace liberate::fuzz {

namespace {

using namespace netsim;
using stack::Host;
using stack::IpReassembler;
using stack::OsProfile;
using stack::ReassemblyLimits;
using stack::TcpConnection;

/// NetworkPort stub: collects whatever the host under test transmits, so a
/// single Host can be driven with hand-crafted datagrams (no peer, no path).
class SinkPort : public NetworkPort {
 public:
  explicit SinkPort(EventLoop& loop) : loop_(loop) {}
  void send(Bytes datagram) override { sent_.push_back(std::move(datagram)); }
  EventLoop& loop() override { return loop_; }
  const std::vector<Bytes>& sent() const { return sent_; }

 private:
  EventLoop& loop_;
  std::vector<Bytes> sent_;
};

/// Hostile fragment streams: overlaps, duplicate offsets, conflicting last
/// fragments, strays past the end, oversize offsets — across several
/// interleaved flows, against deliberately tiny limits so every cap is hit.
void fuzz_reassembler(Rng& rng, FuzzStats& stats) {
  ReassemblyLimits limits;
  limits.max_buffers = 4;
  limits.max_pieces_per_buffer = 16;
  IpReassembler reasm(seconds(30), limits);

  const std::size_t rounds = 8 + rng.below(40);
  TimePoint now = 0;
  for (std::size_t i = 0; i < rounds; ++i) {
    Ipv4Header ip;
    ip.src = 0x0a000001 + static_cast<std::uint32_t>(rng.below(3));
    ip.dst = 0x0a000002;
    ip.identification = static_cast<std::uint16_t>(rng.below(6));
    ip.protocol = 6;
    // Mostly plausible offsets, occasionally hostile ones (beyond any
    // plausible total, near the 13-bit maximum).
    if (rng.chance(0.1)) {
      ip.fragment_offset_words = static_cast<std::uint16_t>(
          0x1ff0 + rng.below(16));
    } else {
      ip.fragment_offset_words = static_cast<std::uint16_t>(rng.below(64));
    }
    ip.flag_more_fragments = rng.chance(0.6);
    Bytes payload = rng.bytes(rng.chance(0.05) ? 1000 + rng.below(1000)
                                               : rng.below(256));
    Bytes frag = serialize_ipv4(ip, payload);
    ++stats.fragments_pushed;
    auto out = reasm.push(frag, now);
    if (out) {
      ++stats.datagrams_reassembled;
      // Bounded output: header (<= 60 bytes) + capped payload.
      if (out->size() > 60 + limits.max_datagram_bytes) {
        ++stats.roundtrip_mismatches;
      }
    }
    // Buffer cap must hold at every step, not just at the end.
    if (reasm.pending() > limits.max_buffers) ++stats.roundtrip_mismatches;
    now += rng.below(milliseconds(200));
    if (rng.chance(0.05)) reasm.expire(now);
  }
}

/// Adversarial segment injection into a live passive-open connection:
/// wrap-adjacent ISNs, random in/out-of-window seqs, overlaps, floods,
/// invalid flag combos, truncated datagrams.
void fuzz_tcp_endpoint(Rng& rng, FuzzStats& stats) {
  EventLoop loop;
  SinkPort port(loop);
  Host server(port, 0x0a090909, OsProfile::linux_profile());
  TcpConnection* conn = nullptr;
  std::uint64_t delivered = 0;
  server.tcp_listen(80, [&](TcpConnection& c) {
    conn = &c;
    c.on_data([&](BytesView d) { delivered += d.size(); });
  });

  const std::uint32_t client_ip = 0x0a000001;
  const std::uint16_t client_port = 40000;
  // Half the sessions start wrap-adjacent so the out-of-order queue crosses
  // the 2^32 boundary.
  const std::uint32_t irs =
      rng.chance(0.5) ? 0xFFFFF000u + static_cast<std::uint32_t>(rng.below(0x2000))
                      : static_cast<std::uint32_t>(rng.next());

  auto send_segment = [&](std::uint32_t seq, std::uint8_t flags,
                          BytesView payload, std::uint32_t ack) {
    Ipv4Header ip;
    ip.src = client_ip;
    ip.dst = 0x0a090909;
    TcpHeader tcp;
    tcp.src_port = client_port;
    tcp.dst_port = 80;
    tcp.seq = seq;
    tcp.ack = ack;
    tcp.flags = flags;
    Bytes dgram = make_tcp_datagram(ip, tcp, payload);
    if (rng.chance(0.05) && dgram.size() > 2) {
      dgram.resize(1 + rng.below(dgram.size() - 1));  // wire truncation
    }
    ++stats.segments_injected;
    server.receive(std::move(dgram));
  };

  // Handshake: SYN, then ACK of the server's SYN-ACK.
  send_segment(irs, TcpFlags::kSyn, {}, 0);
  loop.run_for(milliseconds(1));
  std::uint32_t server_iss = 0;
  for (const Bytes& out : port.sent()) {
    auto pkt = parse_packet(out);
    if (pkt.ok() && pkt.value().tcp && pkt.value().tcp->syn()) {
      server_iss = pkt.value().tcp->seq;
    }
  }
  send_segment(irs + 1, TcpFlags::kAck, {}, server_iss + 1);
  loop.run_for(milliseconds(1));

  const std::size_t segments = 10 + rng.below(50);
  std::uint32_t cursor = irs + 1;  // roughly tracks the stream head
  for (std::size_t i = 0; i < segments; ++i) {
    // Offsets around the cursor: before it (stale/overlap), inside the
    // window, or far past it (out-of-window anomaly path).
    std::int64_t off;
    switch (rng.below(4)) {
      case 0:
        off = -static_cast<std::int64_t>(rng.below(2000));
        break;
      case 1:
        off = static_cast<std::int64_t>(rng.below(1000));
        break;
      case 2:
        off = static_cast<std::int64_t>(rng.below(60000));
        break;
      default:
        off = static_cast<std::int64_t>(rng.below(200000));
        break;
    }
    std::uint32_t seq = cursor + static_cast<std::uint32_t>(off);
    Bytes payload = rng.bytes(rng.below(1800));
    std::uint8_t flags = TcpFlags::kAck;
    if (rng.chance(0.1)) flags |= TcpFlags::kPsh;
    if (rng.chance(0.03)) flags |= TcpFlags::kFin;
    if (rng.chance(0.02)) flags |= TcpFlags::kSyn;   // invalid combo path
    if (rng.chance(0.02)) flags = TcpFlags::kRst;    // teardown path
    if (rng.chance(0.02)) flags = 0;                 // null flags
    send_segment(seq, flags, payload,
                 server_iss + 1 + static_cast<std::uint32_t>(rng.below(4)));
    if (off >= 0 && off < 1000) {
      cursor = seq + static_cast<std::uint32_t>(payload.size());
    }
    if (rng.chance(0.2)) loop.run_for(milliseconds(1 + rng.below(50)));
    // The out-of-order queue must stay under its cap at every step.
    if (conn && conn->out_of_order_bytes() > TcpConnection::kMaxOutOfOrderBytes) {
      ++stats.roundtrip_mismatches;
    }
  }
  // Let retransmission/teardown timers quiesce within a bounded horizon.
  loop.run_for(seconds(5));
  stats.stream_bytes_delivered += delivered;
  // Feed raw junk at the host for good measure (pre-TCP demux paths).
  server.receive(rng.bytes(rng.below(100)));
}

}  // namespace

void run_stateful_iteration(std::uint64_t seed, FuzzStats& stats) {
  Rng rng(seed);
  ++stats.iterations;
  fuzz_reassembler(rng, stats);
  fuzz_tcp_endpoint(rng, stats);
  if (stats.roundtrip_mismatches > 0 && stats.first_failure_seed == 0) {
    stats.first_failure_seed = seed;
  }
}

FuzzStats run_stateful_campaign(std::uint64_t base_seed,
                                std::uint64_t iterations) {
  FuzzStats stats;
  for (std::uint64_t i = 0; i < iterations; ++i) {
    run_stateful_iteration(iteration_seed(base_seed, i), stats);
  }
  return stats;
}

}  // namespace liberate::fuzz
