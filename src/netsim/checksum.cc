#include "netsim/checksum.h"

namespace liberate::netsim {

std::uint32_t checksum_accumulate(std::uint32_t partial, BytesView data) {
  // Every hop validates transport checksums over full segments, so this loop
  // dominates validation cost. Process 8 bytes per iteration: split a 64-bit
  // load into even/odd byte lanes and horizontally add the four 16-bit lanes
  // with a multiply (lane sums are <= 4*255, no carry between lanes). The
  // result is the exact same one's-complement word sum as the byte-pair loop.
  const std::uint8_t* p = data.data();
  std::size_t size = data.size();
  std::uint64_t sum = partial;
  constexpr std::uint64_t kEvenMask = 0x00FF00FF00FF00FFULL;
  constexpr std::uint64_t kLaneSum = 0x0001000100010001ULL;
#if defined(__BYTE_ORDER__) && __BYTE_ORDER__ == __ORDER_LITTLE_ENDIAN__
  while (size >= 8) {
    std::uint64_t v;
    __builtin_memcpy(&v, p, 8);
    // Byte order within each 16-bit big-endian word: high byte first. On a
    // little-endian load, bytes p[0],p[2],... sit in the low byte of each
    // lane of (v & mask) and are the <<8 halves of the checksum words.
    const std::uint64_t high = v & kEvenMask;
    const std::uint64_t low = (v >> 8) & kEvenMask;
    sum += (((high * kLaneSum) >> 48) << 8) + ((low * kLaneSum) >> 48);
    p += 8;
    size -= 8;
  }
#endif
  std::size_t i = 0;
  for (; i + 1 < size; i += 2) {
    sum += (static_cast<std::uint32_t>(p[i]) << 8) | p[i + 1];
  }
  if (i < size) {
    sum += static_cast<std::uint32_t>(p[i]) << 8;
  }
  // Fold 64 -> 32 bits; one's-complement addition is fold-invariant, so
  // checksum_finish sees an equivalent partial.
  while (sum >> 32) sum = (sum & 0xffffffff) + (sum >> 32);
  return static_cast<std::uint32_t>(sum);
}

std::uint16_t checksum_finish(std::uint32_t partial) {
  while (partial >> 16) {
    partial = (partial & 0xffff) + (partial >> 16);
  }
  return static_cast<std::uint16_t>(~partial & 0xffff);
}

std::uint16_t internet_checksum(BytesView data) {
  return checksum_finish(checksum_accumulate(0, data));
}

std::uint16_t transport_checksum(std::uint32_t src_ip, std::uint32_t dst_ip,
                                 std::uint8_t protocol, BytesView segment) {
  std::uint32_t sum = 0;
  sum += (src_ip >> 16) & 0xffff;
  sum += src_ip & 0xffff;
  sum += (dst_ip >> 16) & 0xffff;
  sum += dst_ip & 0xffff;
  sum += protocol;
  sum += static_cast<std::uint32_t>(segment.size());
  sum = checksum_accumulate(sum, segment);
  return checksum_finish(sum);
}

}  // namespace liberate::netsim
