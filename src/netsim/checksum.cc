#include "netsim/checksum.h"

namespace liberate::netsim {

std::uint32_t checksum_accumulate(std::uint32_t partial, BytesView data) {
  std::size_t i = 0;
  for (; i + 1 < data.size(); i += 2) {
    partial += (static_cast<std::uint32_t>(data[i]) << 8) | data[i + 1];
  }
  if (i < data.size()) {
    partial += static_cast<std::uint32_t>(data[i]) << 8;
  }
  return partial;
}

std::uint16_t checksum_finish(std::uint32_t partial) {
  while (partial >> 16) {
    partial = (partial & 0xffff) + (partial >> 16);
  }
  return static_cast<std::uint16_t>(~partial & 0xffff);
}

std::uint16_t internet_checksum(BytesView data) {
  return checksum_finish(checksum_accumulate(0, data));
}

std::uint16_t transport_checksum(std::uint32_t src_ip, std::uint32_t dst_ip,
                                 std::uint8_t protocol, BytesView segment) {
  std::uint32_t sum = 0;
  sum += (src_ip >> 16) & 0xffff;
  sum += src_ip & 0xffff;
  sum += (dst_ip >> 16) & 0xffff;
  sum += dst_ip & 0xffff;
  sum += protocol;
  sum += static_cast<std::uint32_t>(segment.size());
  sum = checksum_accumulate(sum, segment);
  return checksum_finish(sum);
}

}  // namespace liberate::netsim
