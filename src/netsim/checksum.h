// checksum.h — RFC 1071 internet checksum, plus TCP/UDP pseudo-header forms.
#pragma once

#include <cstdint>

#include "util/bytes.h"

namespace liberate::netsim {

/// One's-complement sum of 16-bit big-endian words (odd trailing byte padded
/// with zero), folded and complemented per RFC 1071.
std::uint16_t internet_checksum(BytesView data);

/// Continue an unfolded one's-complement sum; used to compose pseudo-header +
/// segment sums without copying.
std::uint32_t checksum_accumulate(std::uint32_t partial, BytesView data);
std::uint16_t checksum_finish(std::uint32_t partial);

/// TCP/UDP checksum over the IPv4 pseudo-header (src, dst, zero, protocol,
/// transport length) followed by the transport header+payload bytes, where the
/// checksum field inside `segment` is assumed already zeroed by the caller.
std::uint16_t transport_checksum(std::uint32_t src_ip, std::uint32_t dst_ip,
                                 std::uint8_t protocol, BytesView segment);

}  // namespace liberate::netsim
