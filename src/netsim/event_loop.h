// event_loop.h — deterministic discrete-event scheduler.
//
// Single-threaded by design: determinism matters more than parallelism for a
// reproduction harness, and every test/bench drives one loop to completion.
// Ties are broken by insertion order so runs are bit-for-bit reproducible.
//
// Scheduled callbacks are stored in an EventTask: a move-only callable
// wrapper like std::function but with a 96-byte inline buffer, sized so the
// network's per-hop lambdas (a moved-in datagram vector plus a few scalars)
// never touch the heap. A replay round schedules one event per packet per
// hop — with std::function's small-buffer limit those all heap-allocated,
// and the malloc/free pair per hop was visible in round profiles.
#pragma once

#include <cstddef>
#include <cstdint>
#include <new>
#include <queue>
#include <type_traits>
#include <utility>
#include <vector>

#include "netsim/simclock.h"

namespace liberate::netsim {

/// Move-only type-erased void() callable with large inline storage.
/// Callables bigger than the buffer fall back to the heap, so this is a
/// drop-in std::function replacement for scheduling purposes.
class EventTask {
 public:
  EventTask() = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, EventTask>>>
  EventTask(F&& fn) {  // NOLINT(google-explicit-constructor)
    using Fn = std::decay_t<F>;
    if constexpr (sizeof(Fn) <= kInline &&
                  alignof(Fn) <= alignof(std::max_align_t) &&
                  std::is_nothrow_move_constructible_v<Fn>) {
      ::new (static_cast<void*>(buf_)) Fn(std::forward<F>(fn));
      ops_ = inline_ops<Fn>();
    } else {
      ptr_ = new Fn(std::forward<F>(fn));
      ops_ = heap_ops<Fn>();
    }
  }

  EventTask(EventTask&& o) noexcept { move_from(o); }
  EventTask& operator=(EventTask&& o) noexcept {
    if (this != &o) {
      reset();
      move_from(o);
    }
    return *this;
  }
  EventTask(const EventTask&) = delete;
  EventTask& operator=(const EventTask&) = delete;
  ~EventTask() { reset(); }

  explicit operator bool() const { return ops_ != nullptr; }
  void operator()() { ops_->invoke(this); }

 private:
  static constexpr std::size_t kInline = 96;

  struct Ops {
    void (*invoke)(EventTask*);
    void (*move)(EventTask* dst, EventTask* src);  // src left empty
    void (*destroy)(EventTask*);
  };

  template <typename Fn>
  static Fn* inline_fn(EventTask* self) {
    return std::launder(reinterpret_cast<Fn*>(self->buf_));
  }

  template <typename Fn>
  static const Ops* inline_ops() {
    static const Ops ops = {
        [](EventTask* self) { (*inline_fn<Fn>(self))(); },
        [](EventTask* dst, EventTask* src) {
          Fn* f = inline_fn<Fn>(src);
          ::new (static_cast<void*>(dst->buf_)) Fn(std::move(*f));
          f->~Fn();
        },
        [](EventTask* self) { inline_fn<Fn>(self)->~Fn(); },
    };
    return &ops;
  }

  template <typename Fn>
  static const Ops* heap_ops() {
    static const Ops ops = {
        [](EventTask* self) { (*static_cast<Fn*>(self->ptr_))(); },
        [](EventTask* dst, EventTask* src) {
          dst->ptr_ = src->ptr_;
          src->ptr_ = nullptr;
        },
        [](EventTask* self) { delete static_cast<Fn*>(self->ptr_); },
    };
    return &ops;
  }

  void move_from(EventTask& o) {
    ops_ = o.ops_;
    if (ops_ != nullptr) ops_->move(this, &o);
    o.ops_ = nullptr;
  }
  void reset() {
    if (ops_ != nullptr) {
      ops_->destroy(this);
      ops_ = nullptr;
    }
  }

  union {
    alignas(std::max_align_t) unsigned char buf_[kInline];
    void* ptr_;
  };
  const Ops* ops_ = nullptr;
};

class EventLoop {
 public:
  using Callback = EventTask;

  TimePoint now() const { return now_; }

  /// Schedule `fn` to run `delay` after the current time.
  void schedule(Duration delay, Callback fn) {
    queue_.push(Event{now_ + delay, next_seq_++, std::move(fn)});
  }

  /// Run events until the queue is empty. Advances virtual time.
  void run_until_idle() {
    while (!queue_.empty()) step();
  }

  /// Run events with timestamps <= deadline, then set now() to the deadline
  /// (even if idle earlier), so "wait 120 seconds" always advances time.
  void run_until(TimePoint deadline) {
    while (!queue_.empty() && queue_.top().when <= deadline) step();
    if (now_ < deadline) now_ = deadline;
  }

  void run_for(Duration d) { run_until(now_ + d); }

  bool idle() const { return queue_.empty(); }
  std::size_t pending() const { return queue_.size(); }

 private:
  struct Event {
    TimePoint when;
    std::uint64_t seq;
    Callback fn;
    bool operator>(const Event& o) const {
      if (when != o.when) return when > o.when;
      return seq > o.seq;
    }
  };

  void step() {
    // The callback may schedule more events; pop first. top() is const, but
    // moving from the root element immediately before pop() is safe — the
    // heap is never inspected in between — and avoids copying the callback
    // (whose captures often include a full datagram buffer).
    Event ev = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();
    now_ = ev.when;
    ev.fn();
  }

  std::priority_queue<Event, std::vector<Event>, std::greater<>> queue_;
  TimePoint now_ = 0;
  std::uint64_t next_seq_ = 0;
};

}  // namespace liberate::netsim
