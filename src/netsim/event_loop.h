// event_loop.h — deterministic discrete-event scheduler.
//
// Single-threaded by design: determinism matters more than parallelism for a
// reproduction harness, and every test/bench drives one loop to completion.
// Ties are broken by insertion order so runs are bit-for-bit reproducible.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "netsim/simclock.h"

namespace liberate::netsim {

class EventLoop {
 public:
  using Callback = std::function<void()>;

  TimePoint now() const { return now_; }

  /// Schedule `fn` to run `delay` after the current time.
  void schedule(Duration delay, Callback fn) {
    queue_.push(Event{now_ + delay, next_seq_++, std::move(fn)});
  }

  /// Run events until the queue is empty. Advances virtual time.
  void run_until_idle() {
    while (!queue_.empty()) step();
  }

  /// Run events with timestamps <= deadline, then set now() to the deadline
  /// (even if idle earlier), so "wait 120 seconds" always advances time.
  void run_until(TimePoint deadline) {
    while (!queue_.empty() && queue_.top().when <= deadline) step();
    if (now_ < deadline) now_ = deadline;
  }

  void run_for(Duration d) { run_until(now_ + d); }

  bool idle() const { return queue_.empty(); }
  std::size_t pending() const { return queue_.size(); }

 private:
  struct Event {
    TimePoint when;
    std::uint64_t seq;
    Callback fn;
    bool operator>(const Event& o) const {
      if (when != o.when) return when > o.when;
      return seq > o.seq;
    }
  };

  void step() {
    // The callback may schedule more events; pop first.
    Event ev = queue_.top();
    queue_.pop();
    now_ = ev.when;
    ev.fn();
  }

  std::priority_queue<Event, std::vector<Event>, std::greater<>> queue_;
  TimePoint now_ = 0;
  std::uint64_t next_seq_ = 0;
};

}  // namespace liberate::netsim
