// faulty.h — adversarial fault-injection path element.
//
// Where LossyElement/JitterElement model benign path imperfection, FaultyLink
// models an actively hostile (or badly broken) segment: policy-driven loss,
// duplication, truncation, bit corruption, reordering and jitter, all drawn
// from one explicitly seeded Rng. Because every draw happens in packet
// arrival order on the deterministic event loop, the same seed produces the
// same fault sequence — and therefore the same delivered byte stream — on
// every run and under any worker count (each parallel replay round owns an
// isolated world). The fuzz harness (src/fuzz) and the robustness tests
// drive flows through this element; core replay picks it up via
// WorldSpec::faults.
#pragma once

#include <algorithm>
#include <string>

#include "netsim/network.h"
#include "obs/obs.h"
#include "util/rng.h"

namespace liberate::netsim {

/// Per-packet fault probabilities (each applied independently, in the order
/// listed) plus their parameters. Defaults are all-off; `any()` gates
/// whether a link is worth inserting at all.
struct FaultPolicy {
  double loss = 0;        // drop the packet outright
  double duplicate = 0;   // forward a second, identical copy
  double truncate = 0;    // cut the tail: keep a random prefix (>= 1 byte)
  double corrupt = 0;     // flip 1..corrupt_max_bits random bits
  int corrupt_max_bits = 4;
  double reorder = 0;     // hold the packet back by reorder_hold
  Duration reorder_hold = milliseconds(5);
  Duration max_jitter = 0;  // uniform extra delay in [0, max_jitter]

  bool any() const {
    return loss > 0 || duplicate > 0 || truncate > 0 || corrupt > 0 ||
           reorder > 0 || max_jitter > 0;
  }

  /// Checksum-preserving chaos: nothing that alters bytes, so TCP integrity
  /// assertions stay exact while delivery order and timing go hostile.
  static FaultPolicy reorder_heavy() {
    FaultPolicy p;
    p.loss = 0.03;
    p.duplicate = 0.05;
    p.reorder = 0.2;
    p.max_jitter = milliseconds(10);
    return p;
  }
  /// Byte-mangling chaos: truncation and bit flips on top of the above —
  /// parsers and checksum validation are the targets.
  static FaultPolicy adversarial() {
    FaultPolicy p = reorder_heavy();
    p.truncate = 0.05;
    p.corrupt = 0.05;
    return p;
  }
};

class FaultyLink : public PathElement {
 public:
  FaultyLink(FaultPolicy policy, std::uint64_t seed)
      : policy_(policy), rng_(seed) {}

  void process(Bytes datagram, Direction dir, ElementIo& io) override {
    (void)dir;
    ++seen_;
    if (policy_.loss > 0 && rng_.chance(policy_.loss)) {
      ++dropped_;
      LIBERATE_COUNTER_ADD("netsim.faulty.dropped", 1);
      return;
    }
    if (policy_.duplicate > 0 && rng_.chance(policy_.duplicate)) {
      ++duplicated_;
      LIBERATE_COUNTER_ADD("netsim.faulty.duplicated", 1);
      io.forward(datagram);  // copy; the (possibly mutated) original follows
    }
    if (policy_.truncate > 0 && datagram.size() > 1 &&
        rng_.chance(policy_.truncate)) {
      ++truncated_;
      LIBERATE_COUNTER_ADD("netsim.faulty.truncated", 1);
      datagram.resize(1 + static_cast<std::size_t>(
                              rng_.below(datagram.size() - 1)));
    }
    if (policy_.corrupt > 0 && !datagram.empty() &&
        rng_.chance(policy_.corrupt)) {
      ++corrupted_;
      LIBERATE_COUNTER_ADD("netsim.faulty.corrupted", 1);
      int flips = 1 + static_cast<int>(rng_.below(
                          static_cast<std::uint64_t>(
                              std::max(1, policy_.corrupt_max_bits))));
      for (int i = 0; i < flips; ++i) {
        datagram[rng_.below(datagram.size())] ^=
            static_cast<std::uint8_t>(1u << rng_.below(8));
      }
    }
    Duration delay = 0;
    if (policy_.reorder > 0 && rng_.chance(policy_.reorder)) {
      ++reordered_;
      LIBERATE_COUNTER_ADD("netsim.faulty.reordered", 1);
      delay += policy_.reorder_hold;
    }
    if (policy_.max_jitter > 0) {
      delay += rng_.below(policy_.max_jitter + 1);
    }
    if (delay > 0) {
      io.forward_after(delay, std::move(datagram));
    } else {
      io.forward(std::move(datagram));
    }
  }

  std::string name() const override { return "faulty"; }

  std::uint64_t seen() const { return seen_; }
  std::uint64_t dropped() const { return dropped_; }
  std::uint64_t duplicated() const { return duplicated_; }
  std::uint64_t truncated() const { return truncated_; }
  std::uint64_t corrupted() const { return corrupted_; }
  std::uint64_t reordered() const { return reordered_; }

 private:
  FaultPolicy policy_;
  Rng rng_;
  std::uint64_t seen_ = 0;
  std::uint64_t dropped_ = 0;
  std::uint64_t duplicated_ = 0;
  std::uint64_t truncated_ = 0;
  std::uint64_t corrupted_ = 0;
  std::uint64_t reordered_ = 0;
};

}  // namespace liberate::netsim
