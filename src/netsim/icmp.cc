#include "netsim/icmp.h"

#include "netsim/checksum.h"
#include "netsim/ipv4.h"

namespace liberate::netsim {

Bytes serialize_icmp(const IcmpMessage& msg) {
  ByteWriter w(8 + msg.body.size());
  w.u8(static_cast<std::uint8_t>(msg.type));
  w.u8(msg.code);
  w.u16(0);  // checksum placeholder
  w.u32(0);  // unused / rest-of-header (we keep identifiers in body)
  w.raw(msg.body);
  std::uint16_t cks = internet_checksum(BytesView(w.bytes()));
  w.patch_u16(2, cks);
  return std::move(w).take();
}

Result<IcmpMessage> parse_icmp(BytesView payload) {
  if (payload.size() < 8) return Error("icmp: message shorter than header");
  IcmpMessage msg;
  msg.type = static_cast<IcmpType>(payload[0]);
  msg.code = payload[1];
  msg.body.assign(payload.begin() + 8, payload.end());
  return msg;
}

Bytes icmp_original_datagram_excerpt(BytesView offending_datagram) {
  auto parsed = parse_ipv4(offending_datagram);
  std::size_t header_len = parsed.ok() ? parsed.value().header_length : 20;
  std::size_t n = std::min(offending_datagram.size(), header_len + 8);
  return Bytes(offending_datagram.begin(),
               offending_datagram.begin() + static_cast<std::ptrdiff_t>(n));
}

}  // namespace liberate::netsim
