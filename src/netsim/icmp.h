// icmp.h — minimal ICMP codec: time-exceeded (used by TTL-based middlebox
// localization, like traceroute/Tracebox) and destination-unreachable.
#pragma once

#include <cstdint>

#include "util/bytes.h"
#include "util/result.h"

namespace liberate::netsim {

enum class IcmpType : std::uint8_t {
  kEchoReply = 0,
  kDestUnreachable = 3,
  kEchoRequest = 8,
  kTimeExceeded = 11,
};

struct IcmpMessage {
  IcmpType type = IcmpType::kEchoRequest;
  std::uint8_t code = 0;
  /// For time-exceeded / unreachable: the embedded original IP header + first
  /// 8 bytes of its payload, per RFC 792. For echo: identifier+seq+data.
  Bytes body;
};

Bytes serialize_icmp(const IcmpMessage& msg);
Result<IcmpMessage> parse_icmp(BytesView payload);

/// Build the standard time-exceeded body from an offending datagram: its IP
/// header plus the first 8 payload bytes.
Bytes icmp_original_datagram_excerpt(BytesView offending_datagram);

}  // namespace liberate::netsim
