#include "netsim/ipv4.h"

#include <cassert>

#include "netsim/checksum.h"
#include "util/strings.h"

namespace liberate::netsim {

namespace {

constexpr std::uint8_t kOptEol = 0;
constexpr std::uint8_t kOptNop = 1;
constexpr std::uint8_t kOptStreamId = 136;  // deprecated (RFC 6814)

Bytes serialize_options(const std::vector<Ipv4Option>& options) {
  ByteWriter w;
  for (const auto& opt : options) {
    w.u8(opt.kind);
    if (opt.kind == kOptEol || opt.kind == kOptNop) continue;
    std::uint8_t len = opt.declared_length != 0
                           ? opt.declared_length
                           : static_cast<std::uint8_t>(2 + opt.data.size());
    w.u8(len);
    w.raw(opt.data);
  }
  // Pad to 32-bit boundary with EOL bytes.
  while (w.size() % 4 != 0) w.u8(kOptEol);
  return std::move(w).take();
}

}  // namespace

Ipv4Option Ipv4Option::stream_id(std::uint16_t id) {
  Ipv4Option opt;
  opt.kind = kOptStreamId;
  opt.data = {static_cast<std::uint8_t>(id >> 8),
              static_cast<std::uint8_t>(id)};
  return opt;
}

Ipv4Option Ipv4Option::invalid_length() {
  Ipv4Option opt;
  opt.kind = 0x86;  // copied-class-0 unknown option
  opt.data = {0x00, 0x00};
  opt.declared_length = 0x40;  // claims 64 bytes; header can't hold that
  return opt;
}

std::uint32_t ip_addr(const std::string& dotted) {
  std::uint32_t out = 0;
  std::uint32_t octet = 0;
  int count = 0;
  for (char c : dotted) {
    if (c == '.') {
      out = (out << 8) | (octet & 0xff);
      octet = 0;
      ++count;
    } else if (c >= '0' && c <= '9') {
      octet = octet * 10 + static_cast<std::uint32_t>(c - '0');
    }
  }
  out = (out << 8) | (octet & 0xff);
  assert(count == 3);
  return out;
}

std::string ip_to_string(std::uint32_t addr) {
  return format("%u.%u.%u.%u", (addr >> 24) & 0xff, (addr >> 16) & 0xff,
                (addr >> 8) & 0xff, addr & 0xff);
}

Bytes serialize_ipv4(const Ipv4Header& header, BytesView payload) {
  Bytes opts = serialize_options(header.options);
  std::size_t header_len = 20 + opts.size();
  std::uint8_t ihl = header.ihl_words != 0
                         ? header.ihl_words
                         : static_cast<std::uint8_t>(header_len / 4);
  std::uint16_t total_len =
      header.total_length_override
          ? *header.total_length_override
          : static_cast<std::uint16_t>(header_len + payload.size());

  ByteWriter w(header_len + payload.size());
  w.u8(static_cast<std::uint8_t>((header.version << 4) | (ihl & 0xf)));
  w.u8(header.dscp_ecn);
  w.u16(total_len);
  w.u16(header.identification);
  std::uint16_t frag = header.fragment_offset_words & 0x1fff;
  if (header.flag_reserved) frag |= 0x8000;
  if (header.flag_dont_fragment) frag |= 0x4000;
  if (header.flag_more_fragments) frag |= 0x2000;
  w.u16(frag);
  w.u8(header.ttl);
  w.u8(header.protocol);
  w.u16(0);  // checksum placeholder
  w.u32(header.src);
  w.u32(header.dst);
  w.raw(opts);

  std::uint16_t cks =
      header.checksum_override
          ? *header.checksum_override
          : internet_checksum(BytesView(w.bytes().data(), header_len));
  w.patch_u16(10, cks);
  w.raw(payload);
  return std::move(w).take();
}

Result<Ipv4View> parse_ipv4(BytesView datagram) {
  if (datagram.size() < 20) {
    return Error("ipv4: datagram shorter than fixed header");
  }
  Ipv4View v;
  v.datagram_size = datagram.size();
  ByteReader r(datagram);
  std::uint8_t vihl = r.u8().value();
  v.version = vihl >> 4;
  v.ihl_words = vihl & 0xf;
  v.dscp_ecn = r.u8().value();
  v.total_length = r.u16().value();
  v.identification = r.u16().value();
  std::uint16_t frag = r.u16().value();
  v.flag_reserved = (frag & 0x8000) != 0;
  v.flag_dont_fragment = (frag & 0x4000) != 0;
  v.flag_more_fragments = (frag & 0x2000) != 0;
  v.fragment_offset_words = frag & 0x1fff;
  v.ttl = r.u8().value();
  v.protocol = r.u8().value();
  v.checksum = r.u16().value();
  v.src = r.u32().value();
  v.dst = r.u32().value();

  v.bad_version = v.version != 4;

  std::size_t declared_header = static_cast<std::size_t>(v.ihl_words) * 4;
  if (v.ihl_words < 5 || declared_header > datagram.size()) {
    v.bad_ihl = true;
    v.header_length = 20;  // best effort: treat as option-less
  } else {
    v.header_length = declared_header;
  }

  // Parse options leniently from the declared option area.
  if (!v.bad_ihl && v.header_length > 20) {
    BytesView area = datagram.subspan(20, v.header_length - 20);
    std::size_t i = 0;
    while (i < area.size()) {
      std::uint8_t kind = area[i];
      if (kind == kOptEol) break;
      if (kind == kOptNop) {
        v.options.push_back(Ipv4Option::nop());
        ++i;
        continue;
      }
      if (i + 1 >= area.size()) {
        v.bad_options = true;
        break;
      }
      std::uint8_t len = area[i + 1];
      if (len < 2 || i + len > area.size()) {
        v.bad_options = true;
        Ipv4Option opt;
        opt.kind = kind;
        opt.declared_length = len;
        v.options.push_back(opt);
        break;
      }
      Ipv4Option opt;
      opt.kind = kind;
      opt.data.assign(area.begin() + static_cast<std::ptrdiff_t>(i + 2),
                      area.begin() + static_cast<std::ptrdiff_t>(i + len));
      v.options.push_back(std::move(opt));
      if (kind == kOptStreamId) v.has_deprecated_option = true;
      i += len;
    }
  }

  v.payload = datagram.subspan(v.header_length);
  if (v.total_length != datagram.size()) {
    v.bad_total_length = true;
    v.total_length_short = v.total_length < datagram.size();
    v.total_length_long = v.total_length > datagram.size();
  }

  // Verify header checksum over the effective header bytes.
  std::uint16_t computed =
      internet_checksum(datagram.subspan(0, v.header_length));
  // A correct header sums (including its checksum field) to zero, i.e. the
  // recomputation with the stored checksum in place yields 0x0000.
  v.bad_checksum = computed != 0;

  return v;
}

void refresh_ipv4_checksum(Bytes& datagram) {
  auto parsed = parse_ipv4(datagram);
  if (!parsed.ok()) return;
  std::size_t hlen = parsed.value().header_length;
  datagram[10] = 0;
  datagram[11] = 0;
  std::uint16_t cks = internet_checksum(BytesView(datagram.data(), hlen));
  datagram[10] = static_cast<std::uint8_t>(cks >> 8);
  datagram[11] = static_cast<std::uint8_t>(cks);
}

void set_ttl_in_place(Bytes& datagram, std::uint8_t new_ttl) {
  if (datagram.size() < 20) return;
  // Incremental checksum update per RFC 1624: HC' = ~(~HC + ~m + m').
  std::uint16_t old_word = static_cast<std::uint16_t>(
      (static_cast<std::uint16_t>(datagram[8]) << 8) | datagram[9]);
  datagram[8] = new_ttl;
  std::uint16_t new_word = static_cast<std::uint16_t>(
      (static_cast<std::uint16_t>(new_ttl) << 8) | datagram[9]);
  std::uint16_t hc = static_cast<std::uint16_t>(
      (static_cast<std::uint16_t>(datagram[10]) << 8) | datagram[11]);
  std::uint32_t sum = static_cast<std::uint16_t>(~hc);
  sum += static_cast<std::uint16_t>(~old_word);
  sum += new_word;
  while (sum >> 16) sum = (sum & 0xffff) + (sum >> 16);
  std::uint16_t hc2 = static_cast<std::uint16_t>(~sum & 0xffff);
  datagram[10] = static_cast<std::uint8_t>(hc2 >> 8);
  datagram[11] = static_cast<std::uint8_t>(hc2);
}

}  // namespace liberate::netsim
