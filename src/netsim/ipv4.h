// ipv4.h — IPv4 header codec.
//
// The serializer honors deliberately invalid field values (wrong version, bad
// IHL, total length that disagrees with the actual buffer, wrong checksum,
// malformed options): crafting such packets is how lib·erate's inert-packet
// techniques work. Fields that are normally derived (IHL, total length,
// checksum) default to "auto" and are computed during serialization unless an
// explicit override is set.
//
// The parser is deliberately *lenient*: it extracts whatever structure it can
// from arbitrary bytes and reports anomalies, because both middleboxes and
// endpoint stacks must be able to look at malformed packets and decide for
// themselves what to do (that decision lives in validation.h / os_profile.h).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "util/bytes.h"
#include "util/result.h"

namespace liberate::netsim {

/// IP protocol numbers used in this library.
enum class IpProto : std::uint8_t {
  kIcmp = 1,
  kTcp = 6,
  kUdp = 17,
};

/// Sentinel for "let the builder choose" (255 is IANA-reserved).
constexpr std::uint8_t kProtoUnset = 255;

/// Dotted-quad convenience: addr("10.0.0.1").
std::uint32_t ip_addr(const std::string& dotted);
std::string ip_to_string(std::uint32_t addr);

/// An IPv4 option as it appears on the wire. kind 0 (EOL) and 1 (NOP) are
/// single-byte; all others are TLV with a length byte covering kind+len+data.
struct Ipv4Option {
  std::uint8_t kind = 0;
  Bytes data;

  /// Declared length byte; 0 = auto (2 + data.size()). A wrong declared
  /// length is one way to build an *invalid* option.
  std::uint8_t declared_length = 0;

  static Ipv4Option nop() { Ipv4Option o; o.kind = 1; return o; }
  static Ipv4Option end_of_list() { Ipv4Option o; o.kind = 0; return o; }
  /// Deprecated Stream Identifier option (kind 136, RFC 791 / deprecated by
  /// RFC 6814) — Table 3's "Deprecated Options" row.
  static Ipv4Option stream_id(std::uint16_t id);
  /// An option with an impossible declared length — "Invalid Options" row.
  static Ipv4Option invalid_length();
};

struct Ipv4Header {
  std::uint8_t version = 4;
  /// Header length in 32-bit words; 0 = auto (5 + options). Minimum legal is 5.
  std::uint8_t ihl_words = 0;
  std::uint8_t dscp_ecn = 0;
  /// 0 = auto (header + payload size); explicit values may lie (Table 3
  /// "Total Length longer/shorter than payload" rows).
  std::optional<std::uint16_t> total_length_override;
  std::uint16_t identification = 0;
  bool flag_reserved = false;
  bool flag_dont_fragment = false;
  bool flag_more_fragments = false;
  std::uint16_t fragment_offset_words = 0;
  std::uint8_t ttl = 64;
  /// kProtoUnset lets the packet.h builders fill in the transport protocol;
  /// an explicit value (e.g. a wrong one) is honored verbatim.
  std::uint8_t protocol = kProtoUnset;
  /// unset = auto-compute correct checksum; set = use this exact value.
  std::optional<std::uint16_t> checksum_override;
  std::uint32_t src = 0;
  std::uint32_t dst = 0;
  std::vector<Ipv4Option> options;
};

/// Serialize header + payload into a complete IP datagram. Options are padded
/// with EOL bytes to a 32-bit boundary. Auto fields are computed here.
Bytes serialize_ipv4(const Ipv4Header& header, BytesView payload);

/// Result of leniently parsing an IP datagram.
struct Ipv4View {
  // Raw field values exactly as read off the wire.
  std::uint8_t version = 0;
  std::uint8_t ihl_words = 0;
  std::uint8_t dscp_ecn = 0;
  std::uint16_t total_length = 0;  // declared
  std::uint16_t identification = 0;
  bool flag_reserved = false;
  bool flag_dont_fragment = false;
  bool flag_more_fragments = false;
  std::uint16_t fragment_offset_words = 0;
  std::uint8_t ttl = 0;
  std::uint8_t protocol = 0;
  std::uint16_t checksum = 0;
  std::uint32_t src = 0;
  std::uint32_t dst = 0;
  std::vector<Ipv4Option> options;

  // Derived.
  std::size_t header_length = 0;   // effective bytes consumed by the header
  BytesView payload;               // bytes after the header (actual buffer)
  std::size_t datagram_size = 0;   // actual buffer size

  bool is_fragment() const {
    return flag_more_fragments || fragment_offset_words != 0;
  }
  std::size_t fragment_offset_bytes() const {
    return static_cast<std::size_t>(fragment_offset_words) * 8;
  }

  // Anomalies recorded during parsing (consumed by validation policies).
  bool bad_version = false;          // version != 4
  bool bad_ihl = false;              // ihl < 5 or header exceeds buffer
  bool bad_total_length = false;     // declared != actual buffer size
  bool total_length_short = false;   // declared < actual
  bool total_length_long = false;    // declared > actual
  bool bad_checksum = false;         // header checksum mismatch
  bool bad_options = false;          // malformed option encoding
  bool has_deprecated_option = false;

  /// True if any header anomaly was recorded.
  bool any_anomaly() const {
    return bad_version || bad_ihl || bad_total_length || bad_checksum ||
           bad_options;
  }
};

/// Parse a datagram. Fails only if the buffer is too small to contain the
/// fixed 20-byte header; every other malformation is reported via the
/// anomaly flags so policy code can decide.
Result<Ipv4View> parse_ipv4(BytesView datagram);

/// Recompute and patch the header checksum of a serialized datagram in place
/// (used after in-place mutations such as TTL rewriting at hops).
void refresh_ipv4_checksum(Bytes& datagram);

/// Rewrite the TTL of a serialized datagram in place, keeping the header
/// checksum consistent via incremental update (RFC 1624 style).
void set_ttl_in_place(Bytes& datagram, std::uint8_t new_ttl);

}  // namespace liberate::netsim
