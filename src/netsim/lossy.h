// lossy.h — failure-injection path elements: random loss and jitter.
//
// The evasion techniques must keep working over imperfect paths: a
// retransmitted matching packet re-enters the shim and must be re-split /
// re-ordered identically, and inert injections must not double-fire. The
// integration tests drive flows through these elements to prove it.
#pragma once

#include "netsim/network.h"
#include "util/rng.h"

namespace liberate::netsim {

/// Drops each packet independently with probability `loss`.
class LossyElement : public PathElement {
 public:
  LossyElement(double loss, std::uint64_t seed) : loss_(loss), rng_(seed) {}

  void process(Bytes datagram, Direction dir, ElementIo& io) override {
    (void)dir;
    if (rng_.chance(loss_)) {
      ++dropped_;
      return;
    }
    io.forward(std::move(datagram));
  }
  std::string name() const override { return "lossy"; }
  std::uint64_t dropped() const { return dropped_; }

 private:
  double loss_;
  Rng rng_;
  std::uint64_t dropped_ = 0;
};

/// Adds a uniformly random extra delay in [0, max_jitter] per packet. Note
/// that reordering can result when jitter exceeds packet spacing — exactly
/// what robust receivers must tolerate.
class JitterElement : public PathElement {
 public:
  JitterElement(Duration max_jitter, std::uint64_t seed)
      : max_jitter_(max_jitter), rng_(seed) {}

  void process(Bytes datagram, Direction dir, ElementIo& io) override {
    (void)dir;
    Duration extra = max_jitter_ == 0 ? 0 : rng_.below(max_jitter_ + 1);
    io.forward_after(extra, std::move(datagram));
  }
  std::string name() const override { return "jitter"; }

 private:
  Duration max_jitter_;
  Rng rng_;
};

}  // namespace liberate::netsim
