#include "netsim/network.h"

#include "netsim/checksum.h"

#include "obs/obs.h"
#include "util/strings.h"

namespace liberate::netsim {

void ElementIo::forward(Bytes datagram) {
  // walk() index convention: C->S passes the index of the next element; S->C
  // passes one past it (so elements_[index-1] is visited next).
  std::size_t next = dir_ == Direction::kClientToServer ? index_ + 1 : index_;
  net_.walk(std::move(datagram), dir_, next);
}

void ElementIo::forward_after(Duration delay, Bytes datagram) {
  std::size_t next = dir_ == Direction::kClientToServer ? index_ + 1 : index_;
  Direction dir = dir_;
  Network* net = &net_;
  net_.loop_.schedule(delay, [net, dir, next, d = std::move(datagram)]() mutable {
    net->walk(std::move(d), dir, next);
  });
}

void ElementIo::send_back(Bytes datagram) {
  Direction back = opposite(dir_);
  std::size_t next = back == Direction::kClientToServer ? index_ + 1 : index_;
  net_.walk(std::move(datagram), back, next);
}

void ElementIo::send_back_after(Duration delay, Bytes datagram) {
  Direction back = opposite(dir_);
  std::size_t next = back == Direction::kClientToServer ? index_ + 1 : index_;
  Network* net = &net_;
  net_.loop_.schedule(delay, [net, back, next, d = std::move(datagram)]() mutable {
    net->walk(std::move(d), back, next);
  });
}

TimePoint ElementIo::now() const { return net_.loop_.now(); }
EventLoop& ElementIo::loop() const { return net_.loop_; }

void Network::send_from_client(Bytes datagram) {
  LIBERATE_COUNTER_ADD("netsim.packets_tx_client", 1);
  walk(std::move(datagram), Direction::kClientToServer, 0);
}

void Network::send_from_server(Bytes datagram) {
  LIBERATE_COUNTER_ADD("netsim.packets_tx_server", 1);
  walk(std::move(datagram), Direction::kServerToClient, elements_.size());
}

void Network::walk(Bytes datagram, Direction dir, std::size_t index) {
  // `index` convention: for C->S it is the index of the next element to
  // visit; elements_.size() means deliver to the server. For S->C it is one
  // past the next element (visit elements_[index-1]); 0 means deliver to the
  // client.
  if (dir == Direction::kClientToServer) {
    if (index >= elements_.size()) {
      loop_.schedule(hop_latency_,
                     [this, d = std::move(datagram), dir]() mutable {
                       deliver_to_endpoint(std::move(d), dir);
                     });
      return;
    }
    std::size_t i = index;
    loop_.schedule(hop_latency_,
                   [this, d = std::move(datagram), dir, i]() mutable {
                     ElementIo io(*this, i, dir);
                     elements_[i]->process(std::move(d), dir, io);
                   });
  } else {
    if (index == 0) {
      loop_.schedule(hop_latency_,
                     [this, d = std::move(datagram), dir]() mutable {
                       deliver_to_endpoint(std::move(d), dir);
                     });
      return;
    }
    std::size_t i = index - 1;
    loop_.schedule(hop_latency_,
                   [this, d = std::move(datagram), dir, i]() mutable {
                     ElementIo io(*this, i, dir);
                     elements_[i]->process(std::move(d), dir, io);
                   });
  }
}

void Network::deliver_to_endpoint(Bytes datagram, Direction dir) {
  HostIface* host = dir == Direction::kClientToServer ? server_ : client_;
  if (host != nullptr) {
    LIBERATE_COUNTER_ADD("netsim.packets_delivered", 1);
    host->receive(std::move(datagram));
  } else {
    LIBERATE_COUNTER_ADD("netsim.packets_dropped_no_endpoint", 1);
  }
}

void RouterHop::process(Bytes datagram, Direction dir, ElementIo& io) {
  (void)dir;
  auto parsed = parse_packet(datagram);
  if (!parsed.ok()) {  // unparseable garbage: drop
    LIBERATE_COUNTER_ADD("netsim.router_dropped_unparseable", 1);
    return;
  }

  const PacketView& pkt = parsed.value();

  // TTL handling first: a router decrements before deciding to forward.
  if (pkt.ip.ttl <= 1) {
    // Expired: drop, and send ICMP time-exceeded back to the source (unless
    // the expiring packet is itself ICMP, to avoid storms).
    LIBERATE_COUNTER_ADD("netsim.router_ttl_expired", 1);
    if (pkt.ip.protocol != static_cast<std::uint8_t>(IpProto::kIcmp)) {
      IcmpMessage msg;
      msg.type = IcmpType::kTimeExceeded;
      msg.code = 0;  // TTL exceeded in transit
      msg.body = icmp_original_datagram_excerpt(datagram);
      Ipv4Header ip;
      ip.src = address_;
      ip.dst = pkt.ip.src;
      ip.ttl = 64;
      io.send_back(make_icmp_datagram(ip, msg));
    }
    return;
  }

  AnomalySet anomalies = anomalies_of(pkt);
  if (has_anomaly(anomalies, Anomaly::kBadTcpChecksum) ||
      has_anomaly(anomalies, Anomaly::kBadUdpChecksum)) {
    LIBERATE_COUNTER_ADD("netsim.checksum_failures_seen", 1);
  }
  if (filter_.rejects(anomalies)) {  // silently filtered
    LIBERATE_COUNTER_ADD("netsim.router_dropped_filtered", 1);
    return;
  }

  Bytes out = std::move(datagram);
  set_ttl_in_place(out, static_cast<std::uint8_t>(pkt.ip.ttl - 1));

  if (fix_tcp_checksum_ && pkt.is_tcp() &&
      has_anomaly(anomalies, Anomaly::kBadTcpChecksum)) {
    // Normalizer: recompute the TCP checksum so the segment arrives valid
    // (GFC path behaviour, Table 3 note 4).
    LIBERATE_COUNTER_ADD("netsim.router_checksum_fixups", 1);
    auto reparsed = parse_ipv4(out);
    if (reparsed.ok()) {
      const Ipv4View& ip = reparsed.value();
      std::size_t seg_off = ip.header_length;
      if (out.size() >= seg_off + 18) {
        out[seg_off + 16] = 0;
        out[seg_off + 17] = 0;
        std::uint16_t cks = transport_checksum(
            ip.src, ip.dst, static_cast<std::uint8_t>(IpProto::kTcp),
            BytesView(out).subspan(seg_off));
        out[seg_off + 16] = static_cast<std::uint8_t>(cks >> 8);
        out[seg_off + 17] = static_cast<std::uint8_t>(cks);
      }
    }
  }

  io.forward(std::move(out));
}

std::string RouterHop::name() const {
  return "router:" + ip_to_string(address_);
}

void TapElement::process(Bytes datagram, Direction dir, ElementIo& io) {
  seen_.push_back(Seen{arena_.copy(BytesView(datagram)), dir, io.now()});
  io.forward(std::move(datagram));
}

std::size_t TapElement::count(Direction dir) const {
  std::size_t n = 0;
  for (const auto& s : seen_) {
    if (s.dir == dir) ++n;
  }
  return n;
}

void BandwidthElement::process(Bytes datagram, Direction dir, ElementIo& io) {
  const int d = dir == Direction::kClientToServer ? 0 : 1;
  const TimePoint now = io.now();
  if (busy_until_[d] < now) {
    busy_until_[d] = now;
    queued_bytes_[d] = 0;
  }
  if (queued_bytes_[d] + datagram.size() > queue_limit_) {
    ++dropped_;
    LIBERATE_COUNTER_ADD("netsim.bandwidth_drops", 1);
    return;
  }
  const Duration transmit =
      static_cast<Duration>(static_cast<double>(datagram.size()) / rate_ * 1e6);
  queued_bytes_[d] += datagram.size();
  busy_until_[d] += transmit;
  const Duration wait = busy_until_[d] - now;
  const std::size_t sz = datagram.size();
  // Decrement the queue occupancy when this datagram leaves the queue.
  io.loop().schedule(wait, [this, d, sz]() {
    queued_bytes_[d] -= std::min(queued_bytes_[d], sz);
  });
  io.forward_after(wait, std::move(datagram));
}

}  // namespace liberate::netsim
