// network.h — the simulated end-to-end path.
//
// A Network is an ordered chain of PathElements between a client host and a
// server host. Packets are complete serialized IPv4 datagrams; each element
// may forward (immediately or after a delay), drop, rewrite, or inject new
// packets toward either endpoint. Routers decrement TTL and emit ICMP
// time-exceeded; filter elements model the malformed-packet filtering the
// paper observed in operational networks; the DPI middlebox (src/dpi) is just
// another element.
#pragma once

#include <algorithm>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "netsim/event_loop.h"
#include "netsim/packet.h"
#include "netsim/validation.h"
#include "util/arena.h"
#include "util/bytes.h"

namespace liberate::netsim {

enum class Direction { kClientToServer, kServerToClient };

inline Direction opposite(Direction d) {
  return d == Direction::kClientToServer ? Direction::kServerToClient
                                         : Direction::kClientToServer;
}

class Network;

/// Handed to an element while it processes one datagram. Forwarding continues
/// the walk toward the packet's destination; send_back starts a new walk from
/// this element's position toward the packet's source.
class ElementIo {
 public:
  ElementIo(Network& net, std::size_t element_index, Direction dir)
      : net_(net), index_(element_index), dir_(dir) {}

  void forward(Bytes datagram);
  void forward_after(Duration delay, Bytes datagram);
  void send_back(Bytes datagram);
  void send_back_after(Duration delay, Bytes datagram);
  TimePoint now() const;
  EventLoop& loop() const;

 private:
  Network& net_;
  std::size_t index_;
  Direction dir_;
};

class PathElement {
 public:
  virtual ~PathElement() = default;
  /// Process one datagram traveling in `dir`. Must call io.forward(...) to
  /// keep it going (zero or more times — dropping, duplicating and
  /// fragmenting are all legal).
  virtual void process(Bytes datagram, Direction dir, ElementIo& io) = 0;
  virtual std::string name() const = 0;
};

/// A TTL-decrementing router with an address for ICMP generation. Optionally
/// applies a filter policy (malformed-packet filtering observed in real
/// networks) and/or normalizes TCP checksums (seen on the GFC path, Table 3
/// note 4).
class RouterHop : public PathElement {
 public:
  explicit RouterHop(std::uint32_t address) : address_(address) {}

  RouterHop& filter(ValidationPolicy policy) {
    filter_ = policy;
    return *this;
  }
  RouterHop& fix_tcp_checksums() {
    fix_tcp_checksum_ = true;
    return *this;
  }
  /// Some paths drop IP fragments outright (observed from Iran, §6.6).
  RouterHop& drop_fragments() {
    filter_.check(Anomaly::kIpFragment);
    return *this;
  }

  void process(Bytes datagram, Direction dir, ElementIo& io) override;
  std::string name() const override;

 private:
  std::uint32_t address_;
  ValidationPolicy filter_;  // default: forwards anything
  bool fix_tcp_checksum_ = false;
};

/// Statistics tap: counts/records datagrams passing a point on the path.
/// Used by tests and by the replay server's "did the packet reach us?" (RS?)
/// raw-capture check.
///
/// Captured datagrams live in a tap-owned Arena: one pointer bump per packet
/// instead of one heap vector, and clear() recycles the whole capture in
/// O(chunks). Views returned by seen() are invalidated by clear().
class TapElement : public PathElement {
 public:
  explicit TapElement(std::string label) : label_(std::move(label)) {}

  void process(Bytes datagram, Direction dir, ElementIo& io) override;
  std::string name() const override { return "tap:" + label_; }

  struct Seen {
    BytesView datagram;  // arena-backed; valid until clear()
    Direction dir;
    TimePoint at;
  };
  const std::vector<Seen>& seen() const { return seen_; }
  void clear() {
    seen_.clear();
    arena_.reset();
  }
  std::size_t count(Direction dir) const;

 private:
  std::string label_;
  std::vector<Seen> seen_;
  Arena arena_;
};

/// Token-bucket rate limiter with a finite queue (models both access-link
/// capacity and shaping policies). Queue overflow drops.
class BandwidthElement : public PathElement {
 public:
  BandwidthElement(double bytes_per_second, std::size_t queue_bytes)
      : rate_(bytes_per_second), queue_limit_(queue_bytes) {}

  /// Change rate at runtime (time-varying base bandwidth in §6.2).
  void set_rate(double bytes_per_second) { rate_ = bytes_per_second; }
  double rate() const { return rate_; }

  void process(Bytes datagram, Direction dir, ElementIo& io) override;
  std::string name() const override { return "bandwidth"; }

  std::uint64_t dropped() const { return dropped_; }

 private:
  double rate_;
  std::size_t queue_limit_;
  // Virtual-time transmit scheduler: next time the "wire" is free, per
  // direction.
  TimePoint busy_until_[2] = {0, 0};
  std::size_t queued_bytes_[2] = {0, 0};
  std::uint64_t dropped_ = 0;
};

/// Receives datagrams at an endpoint. Implemented by stack::Host and by raw
/// test harnesses.
class HostIface {
 public:
  virtual ~HostIface() = default;
  virtual void receive(Bytes datagram) = 0;
};

/// Sends datagrams into the network from one end. Hosts hold one of these.
class NetworkPort {
 public:
  virtual ~NetworkPort() = default;
  virtual void send(Bytes datagram) = 0;
  virtual EventLoop& loop() = 0;
};

class Network {
 public:
  explicit Network(EventLoop& loop) : loop_(loop) {}

  /// Elements are ordered client -> server.
  template <typename T, typename... Args>
  T& emplace(Args&&... args) {
    auto elem = std::make_unique<T>(std::forward<Args>(args)...);
    T& ref = *elem;
    elements_.push_back(std::move(elem));
    return ref;
  }

  /// Insert an element at `index` (0 = client side) into an already-built
  /// path — how fault-injection links are slotted in front of existing
  /// environments. Only valid before traffic flows: an in-flight walk holds
  /// element indices.
  template <typename T, typename... Args>
  T& emplace_at(std::size_t index, Args&&... args) {
    auto elem = std::make_unique<T>(std::forward<Args>(args)...);
    T& ref = *elem;
    index = std::min(index, elements_.size());
    elements_.insert(elements_.begin() + static_cast<std::ptrdiff_t>(index),
                     std::move(elem));
    return ref;
  }

  void attach_client(HostIface* host) { client_ = host; }
  void attach_server(HostIface* host) { server_ = host; }

  /// Per-element one-way propagation latency (applied on every traversal).
  void set_hop_latency(Duration d) { hop_latency_ = d; }

  void send_from_client(Bytes datagram);
  void send_from_server(Bytes datagram);

  /// NetworkPort adapters for hosts.
  NetworkPort& client_port() { return client_port_; }
  NetworkPort& server_port() { return server_port_; }

  EventLoop& loop() { return loop_; }
  std::size_t element_count() const { return elements_.size(); }
  PathElement& element(std::size_t i) { return *elements_[i]; }

 private:
  friend class ElementIo;

  // Deliver to the element at `index` (walking up for C->S, down for S->C);
  // index == elements_.size() means "past the last element toward the
  // destination endpoint" for C->S; index == npos-style underflow is handled
  // by walk() bounds checks for S->C.
  void walk(Bytes datagram, Direction dir, std::size_t index);
  void deliver_to_endpoint(Bytes datagram, Direction dir);

  class Port : public NetworkPort {
   public:
    Port(Network& net, Direction dir) : net_(net), dir_(dir) {}
    void send(Bytes datagram) override {
      if (dir_ == Direction::kClientToServer) {
        net_.send_from_client(std::move(datagram));
      } else {
        net_.send_from_server(std::move(datagram));
      }
    }
    EventLoop& loop() override { return net_.loop_; }

   private:
    Network& net_;
    Direction dir_;
  };

  EventLoop& loop_;
  std::vector<std::unique_ptr<PathElement>> elements_;
  HostIface* client_ = nullptr;
  HostIface* server_ = nullptr;
  Duration hop_latency_ = milliseconds(1);
  Port client_port_{*this, Direction::kClientToServer};
  Port server_port_{*this, Direction::kServerToClient};
};

}  // namespace liberate::netsim
