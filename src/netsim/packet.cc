#include "netsim/packet.h"

#include <algorithm>

#include "obs/obs.h"
#include "util/strings.h"

namespace liberate::netsim {

std::string FiveTuple::to_string() const {
  return format("%s:%u -> %s:%u proto=%u", ip_to_string(src_ip).c_str(),
                src_port, ip_to_string(dst_ip).c_str(), dst_port, protocol);
}

Result<PacketView> parse_packet(BytesView datagram) {
  auto ip = parse_ipv4(datagram);
  if (!ip.ok()) return ip.error();
  PacketView v;
  v.ip = std::move(ip).value();

  // Transport headers only exist in the first fragment (offset 0).
  if (v.ip.fragment_offset_words != 0) return v;

  if (v.ip.protocol == static_cast<std::uint8_t>(IpProto::kTcp)) {
    auto tcp = parse_tcp(v.ip.payload);
    if (tcp.ok()) v.tcp = std::move(tcp).value();
  } else if (v.ip.protocol == static_cast<std::uint8_t>(IpProto::kUdp)) {
    auto udp = parse_udp(v.ip.payload);
    if (udp.ok()) v.udp = std::move(udp).value();
  } else if (v.ip.protocol == static_cast<std::uint8_t>(IpProto::kIcmp)) {
    auto icmp = parse_icmp(v.ip.payload);
    if (icmp.ok()) v.icmp = std::move(icmp).value();
  }
  return v;
}

Bytes make_tcp_datagram(Ipv4Header ip, const TcpHeader& tcp,
                        BytesView payload) {
  if (ip.protocol == kProtoUnset) {
    ip.protocol = static_cast<std::uint8_t>(IpProto::kTcp);
  }
  Bytes segment = serialize_tcp(tcp, payload, ip.src, ip.dst);
  Bytes datagram = serialize_ipv4(ip, segment);
  LIBERATE_PROV_PACKET(datagram, "tcp");
  return datagram;
}

Bytes make_udp_datagram(Ipv4Header ip, const UdpHeader& udp,
                        BytesView payload) {
  if (ip.protocol == kProtoUnset) {
    ip.protocol = static_cast<std::uint8_t>(IpProto::kUdp);
  }
  Bytes dgram = serialize_udp(udp, payload, ip.src, ip.dst);
  Bytes datagram = serialize_ipv4(ip, dgram);
  LIBERATE_PROV_PACKET(datagram, "udp");
  return datagram;
}

Bytes make_icmp_datagram(Ipv4Header ip, const IcmpMessage& msg) {
  if (ip.protocol == kProtoUnset) {
    ip.protocol = static_cast<std::uint8_t>(IpProto::kIcmp);
  }
  Bytes body = serialize_icmp(msg);
  Bytes datagram = serialize_ipv4(ip, body);
  LIBERATE_PROV_PACKET(datagram, "icmp");
  return datagram;
}

std::vector<Bytes> fragment_datagram(BytesView datagram, std::size_t pieces) {
  auto parsed = parse_ipv4(datagram);
  std::vector<Bytes> out;
  if (!parsed.ok() || pieces <= 1) {
    out.emplace_back(datagram.begin(), datagram.end());
    return out;
  }
  const Ipv4View& v = parsed.value();
  BytesView payload = v.payload;

  // Fragment offsets must be multiples of 8 bytes; compute an even-ish split.
  std::size_t unit_count = (payload.size() + 7) / 8;
  pieces = std::min(pieces, std::max<std::size_t>(unit_count, 1));
  std::size_t units_per_piece = std::max<std::size_t>(1, unit_count / pieces);

  std::size_t offset_units = 0;
  for (std::size_t i = 0; i < pieces; ++i) {
    std::size_t begin = offset_units * 8;
    std::size_t end = (i + 1 == pieces)
                          ? payload.size()
                          : std::min(payload.size(),
                                     (offset_units + units_per_piece) * 8);
    if (begin >= payload.size()) break;

    Ipv4Header h;
    h.version = 4;
    h.dscp_ecn = v.dscp_ecn;
    h.identification = v.identification;
    h.flag_dont_fragment = false;
    h.flag_more_fragments = (end < payload.size());
    h.fragment_offset_words = static_cast<std::uint16_t>(offset_units);
    h.ttl = v.ttl;
    h.protocol = v.protocol;
    h.src = v.src;
    h.dst = v.dst;
    h.options = v.options;
    out.push_back(serialize_ipv4(h, payload.subspan(begin, end - begin)));
    // Fragmentation has no clock; lineage timestamps start at 0 and the
    // consuming hop (shim/reassembler) carries the sim time.
    LIBERATE_PROV_EDGE(0, datagram, out.back(), "ip-fragment",
                       "fragment_datagram");
    offset_units += (end - begin) / 8 + (((end - begin) % 8) ? 1 : 0);
    if (end == payload.size()) break;
  }
  return out;
}

}  // namespace liberate::netsim
