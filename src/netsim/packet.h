// packet.h — whole-datagram helpers: five-tuples, combined parsed views, and
// builders that assemble IPv4+TCP/UDP/ICMP datagrams in one call.
//
// The wire unit everywhere in this library is `Bytes` holding one complete
// serialized IPv4 datagram — exactly what a middlebox on the path sees.
// PacketView objects hold spans INTO the datagram buffer and must not outlive
// it.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>

#include "netsim/icmp.h"
#include "netsim/ipv4.h"
#include "netsim/tcp.h"
#include "netsim/udp.h"
#include "util/bytes.h"
#include "util/result.h"

namespace liberate::netsim {

/// Connection identity. Ordered so it can key std::map; hashable for
/// unordered containers.
struct FiveTuple {
  std::uint32_t src_ip = 0;
  std::uint32_t dst_ip = 0;
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  std::uint8_t protocol = 0;

  FiveTuple reversed() const {
    return {dst_ip, src_ip, dst_port, src_port, protocol};
  }
  auto operator<=>(const FiveTuple&) const = default;
  std::string to_string() const;
};

struct FiveTupleHash {
  std::size_t operator()(const FiveTuple& t) const {
    std::size_t h = std::hash<std::uint64_t>{}(
        (static_cast<std::uint64_t>(t.src_ip) << 32) | t.dst_ip);
    std::size_t h2 = std::hash<std::uint64_t>{}(
        (static_cast<std::uint64_t>(t.src_port) << 32) |
        (static_cast<std::uint64_t>(t.dst_port) << 8) | t.protocol);
    return h ^ (h2 + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2));
  }
};

/// A datagram parsed down through the transport layer (leniently — anomaly
/// flags are set rather than failing). Spans reference the source buffer.
struct PacketView {
  Ipv4View ip;
  std::optional<TcpView> tcp;   // set when protocol==6 and segment parseable
  std::optional<UdpView> udp;   // set when protocol==17 and parseable
  std::optional<IcmpMessage> icmp;

  bool is_tcp() const { return tcp.has_value(); }
  bool is_udp() const { return udp.has_value(); }

  /// Application payload (after transport header), or the raw IP payload when
  /// no transport header could be parsed.
  BytesView app_payload() const {
    if (tcp) return tcp->payload;
    if (udp) return udp->payload;
    return ip.payload;
  }

  FiveTuple five_tuple() const {
    FiveTuple t;
    t.src_ip = ip.src;
    t.dst_ip = ip.dst;
    t.protocol = ip.protocol;
    if (tcp) {
      t.src_port = tcp->src_port;
      t.dst_port = tcp->dst_port;
    } else if (udp) {
      t.src_port = udp->src_port;
      t.dst_port = udp->dst_port;
    }
    return t;
  }
};

/// Parse an entire datagram. Transport parsing is skipped for IP fragments
/// with nonzero offset (their payload is mid-stream bytes).
Result<PacketView> parse_packet(BytesView datagram);

/// Builders. When ip.protocol is kProtoUnset it is filled with the transport
/// protocol; an explicit (possibly wrong) value is honored verbatim, which is
/// how the "Wrong Protocol" inert technique is built.
Bytes make_tcp_datagram(Ipv4Header ip, const TcpHeader& tcp, BytesView payload);
Bytes make_udp_datagram(Ipv4Header ip, const UdpHeader& udp, BytesView payload);
Bytes make_icmp_datagram(Ipv4Header ip, const IcmpMessage& msg);

/// Split a serialized datagram into `pieces` IP fragments (8-byte-aligned
/// offsets, MF flags set appropriately). Returns the original datagram if it
/// cannot be split that many times.
std::vector<Bytes> fragment_datagram(BytesView datagram, std::size_t pieces);

}  // namespace liberate::netsim
