// simclock.h — virtual time. All experiment durations in the paper (5-second
// replay rounds, 120 s flow timeouts, 23-minute characterization runs, the
// 24-hour Figure 4 sweep) elapse in simulated time, so the whole evaluation
// reproduces in milliseconds of wall clock.
#pragma once

#include <cstdint>

namespace liberate::netsim {

/// Microseconds since simulation start.
using TimePoint = std::uint64_t;
/// Microseconds.
using Duration = std::uint64_t;

constexpr Duration microseconds(std::uint64_t us) { return us; }
constexpr Duration milliseconds(std::uint64_t ms) { return ms * 1000; }
constexpr Duration seconds(std::uint64_t s) { return s * 1000 * 1000; }
constexpr Duration minutes(std::uint64_t m) { return m * 60 * 1000 * 1000; }
constexpr Duration hours(std::uint64_t h) { return h * 3600ull * 1000 * 1000; }

constexpr double to_seconds(Duration d) {
  return static_cast<double>(d) / 1e6;
}

}  // namespace liberate::netsim
