#include "netsim/tcp.h"

#include "netsim/checksum.h"
#include "netsim/ipv4.h"

namespace liberate::netsim {

namespace {

Bytes serialize_tcp_options(const std::vector<TcpOption>& options) {
  ByteWriter w;
  for (const auto& opt : options) {
    w.u8(opt.kind);
    if (opt.kind == 0 || opt.kind == 1) continue;  // EOL / NOP
    w.u8(static_cast<std::uint8_t>(2 + opt.data.size()));
    w.raw(opt.data);
  }
  while (w.size() % 4 != 0) w.u8(0);
  return std::move(w).take();
}

}  // namespace

Bytes serialize_tcp(const TcpHeader& header, BytesView payload,
                    std::uint32_t src_ip, std::uint32_t dst_ip) {
  Bytes opts = serialize_tcp_options(header.options);
  std::size_t header_len = 20 + opts.size();
  std::uint8_t offset = header.data_offset_words != 0
                            ? header.data_offset_words
                            : static_cast<std::uint8_t>(header_len / 4);

  ByteWriter w(header_len + payload.size());
  w.u16(header.src_port);
  w.u16(header.dst_port);
  w.u32(header.seq);
  w.u32(header.ack);
  w.u8(static_cast<std::uint8_t>(offset << 4));
  w.u8(header.flags);
  w.u16(header.window);
  w.u16(0);  // checksum placeholder
  w.u16(header.urgent_ptr);
  w.raw(opts);
  w.raw(payload);

  std::uint16_t cks =
      header.checksum_override
          ? *header.checksum_override
          : transport_checksum(src_ip, dst_ip,
                               static_cast<std::uint8_t>(IpProto::kTcp),
                               BytesView(w.bytes()));
  w.patch_u16(16, cks);
  return std::move(w).take();
}

Result<TcpView> parse_tcp(BytesView segment) {
  if (segment.size() < 20) {
    return Error("tcp: segment shorter than fixed header");
  }
  TcpView v;
  ByteReader r(segment);
  v.src_port = r.u16().value();
  v.dst_port = r.u16().value();
  v.seq = r.u32().value();
  v.ack = r.u32().value();
  std::uint8_t off = r.u8().value();
  v.data_offset_words = off >> 4;
  v.flags = r.u8().value();
  v.window = r.u16().value();
  v.checksum = r.u16().value();
  v.urgent_ptr = r.u16().value();

  std::size_t declared_header = static_cast<std::size_t>(v.data_offset_words) * 4;
  if (v.data_offset_words < 5 || declared_header > segment.size()) {
    v.bad_data_offset = true;
    v.header_length = 20;  // best effort
  } else {
    v.header_length = declared_header;
  }

  if (!v.bad_data_offset && v.header_length > 20) {
    BytesView area = segment.subspan(20, v.header_length - 20);
    std::size_t i = 0;
    while (i < area.size()) {
      std::uint8_t kind = area[i];
      if (kind == 0) break;
      if (kind == 1) {
        ++i;
        continue;
      }
      if (i + 1 >= area.size()) {
        v.bad_options = true;
        break;
      }
      std::uint8_t len = area[i + 1];
      if (len < 2 || i + len > area.size()) {
        v.bad_options = true;
        break;
      }
      TcpOption opt;
      opt.kind = kind;
      opt.data.assign(area.begin() + static_cast<std::ptrdiff_t>(i + 2),
                      area.begin() + static_cast<std::ptrdiff_t>(i + len));
      v.options.push_back(std::move(opt));
      i += len;
    }
  }

  v.payload = segment.subspan(v.header_length);
  return v;
}

bool tcp_checksum_ok(BytesView segment, std::uint32_t src_ip,
                     std::uint32_t dst_ip) {
  // Summing the segment with its checksum field in place yields zero iff the
  // stored checksum is correct.
  std::uint32_t sum = 0;
  sum += (src_ip >> 16) & 0xffff;
  sum += src_ip & 0xffff;
  sum += (dst_ip >> 16) & 0xffff;
  sum += dst_ip & 0xffff;
  sum += static_cast<std::uint8_t>(IpProto::kTcp);
  sum += static_cast<std::uint32_t>(segment.size());
  sum = checksum_accumulate(sum, segment);
  return checksum_finish(sum) == 0;
}

bool is_invalid_flag_combo(std::uint8_t flags) {
  const bool syn = flags & TcpFlags::kSyn;
  const bool fin = flags & TcpFlags::kFin;
  const bool rst = flags & TcpFlags::kRst;
  if (syn && fin) return true;
  if (syn && rst) return true;
  if (fin && rst) return true;
  if (flags == 0) return true;  // "null" segment
  return false;
}

}  // namespace liberate::netsim
