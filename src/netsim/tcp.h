// tcp.h — TCP segment codec (header + options), with support for invalid
// field values used by inert-packet evasion techniques.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "util/bytes.h"
#include "util/result.h"

namespace liberate::netsim {

/// TCP flag bits, matching wire layout (low byte of the flags field).
struct TcpFlags {
  static constexpr std::uint8_t kFin = 0x01;
  static constexpr std::uint8_t kSyn = 0x02;
  static constexpr std::uint8_t kRst = 0x04;
  static constexpr std::uint8_t kPsh = 0x08;
  static constexpr std::uint8_t kAck = 0x10;
  static constexpr std::uint8_t kUrg = 0x20;
  static constexpr std::uint8_t kEce = 0x40;
  static constexpr std::uint8_t kCwr = 0x80;
};

struct TcpOption {
  std::uint8_t kind = 0;
  Bytes data;

  static TcpOption mss(std::uint16_t value) {
    return {.kind = 2,
            .data = {static_cast<std::uint8_t>(value >> 8),
                     static_cast<std::uint8_t>(value)}};
  }
  static TcpOption nop() { TcpOption o; o.kind = 1; return o; }
};

struct TcpHeader {
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  std::uint32_t seq = 0;
  std::uint32_t ack = 0;
  /// Header length in 32-bit words; 0 = auto (5 + options). Values < 5 or
  /// pointing past the segment are invalid ("Invalid Data Offset" row).
  std::uint8_t data_offset_words = 0;
  std::uint8_t flags = 0;
  std::uint16_t window = 65535;
  /// unset = auto-compute; set = use this exact (possibly wrong) value.
  std::optional<std::uint16_t> checksum_override;
  std::uint16_t urgent_ptr = 0;
  std::vector<TcpOption> options;

  bool has(std::uint8_t flag) const { return (flags & flag) != 0; }
};

/// Serialize a TCP segment (header + payload). The checksum needs the IPv4
/// pseudo-header, hence the src/dst parameters.
Bytes serialize_tcp(const TcpHeader& header, BytesView payload,
                    std::uint32_t src_ip, std::uint32_t dst_ip);

struct TcpView {
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  std::uint32_t seq = 0;
  std::uint32_t ack = 0;
  std::uint8_t data_offset_words = 0;
  std::uint8_t flags = 0;
  std::uint16_t window = 0;
  std::uint16_t checksum = 0;
  std::uint16_t urgent_ptr = 0;
  std::vector<TcpOption> options;

  std::size_t header_length = 0;  // effective bytes consumed
  BytesView payload;

  bool bad_data_offset = false;  // < 5 words or past end of segment
  bool bad_options = false;

  bool has(std::uint8_t flag) const { return (flags & flag) != 0; }
  /// SYN+FIN, or FIN without ACK-family context etc. — see is_invalid_flag_combo.
  bool syn() const { return has(TcpFlags::kSyn); }
  bool fin() const { return has(TcpFlags::kFin); }
  bool rst() const { return has(TcpFlags::kRst); }
  bool ack_flag() const { return has(TcpFlags::kAck); }
};

/// Lenient parse of a TCP segment from IP payload bytes.
Result<TcpView> parse_tcp(BytesView segment);

/// Whether the checksum of a serialized segment is correct given the
/// pseudo-header addresses.
bool tcp_checksum_ok(BytesView segment, std::uint32_t src_ip,
                     std::uint32_t dst_ip);

/// Mutually exclusive / nonsensical flag combinations (e.g. SYN|FIN,
/// SYN|RST, FIN with no ACK and no SYN, or no flags at all).
bool is_invalid_flag_combo(std::uint8_t flags);

}  // namespace liberate::netsim
