#include "netsim/udp.h"

#include "netsim/checksum.h"
#include "netsim/ipv4.h"

namespace liberate::netsim {

Bytes serialize_udp(const UdpHeader& header, BytesView payload,
                    std::uint32_t src_ip, std::uint32_t dst_ip) {
  std::uint16_t length =
      header.length_override
          ? *header.length_override
          : static_cast<std::uint16_t>(8 + payload.size());

  ByteWriter w(8 + payload.size());
  w.u16(header.src_port);
  w.u16(header.dst_port);
  w.u16(length);
  w.u16(0);  // checksum placeholder
  w.raw(payload);

  std::uint16_t cks;
  if (header.checksum_override) {
    cks = *header.checksum_override;
  } else {
    cks = transport_checksum(src_ip, dst_ip,
                             static_cast<std::uint8_t>(IpProto::kUdp),
                             BytesView(w.bytes()));
    if (cks == 0) cks = 0xffff;  // RFC 768: transmitted as all-ones
  }
  w.patch_u16(6, cks);
  return std::move(w).take();
}

Result<UdpView> parse_udp(BytesView datagram) {
  if (datagram.size() < 8) {
    return Error("udp: datagram shorter than header");
  }
  UdpView v;
  ByteReader r(datagram);
  v.src_port = r.u16().value();
  v.dst_port = r.u16().value();
  v.length = r.u16().value();
  v.checksum = r.u16().value();
  v.payload = datagram.subspan(8);
  if (v.length != datagram.size()) {
    v.bad_length = true;
    v.length_short = v.length < datagram.size();
    v.length_long = v.length > datagram.size();
  }
  return v;
}

bool udp_checksum_ok(BytesView datagram, std::uint32_t src_ip,
                     std::uint32_t dst_ip) {
  if (datagram.size() < 8) return false;
  std::uint16_t stored = static_cast<std::uint16_t>(
      (static_cast<std::uint16_t>(datagram[6]) << 8) | datagram[7]);
  if (stored == 0) return true;  // checksum not computed by sender
  std::uint32_t sum = 0;
  sum += (src_ip >> 16) & 0xffff;
  sum += src_ip & 0xffff;
  sum += (dst_ip >> 16) & 0xffff;
  sum += dst_ip & 0xffff;
  sum += static_cast<std::uint8_t>(IpProto::kUdp);
  sum += static_cast<std::uint32_t>(datagram.size());
  sum = checksum_accumulate(sum, datagram);
  return checksum_finish(sum) == 0;
}

}  // namespace liberate::netsim
