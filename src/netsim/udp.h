// udp.h — UDP datagram codec, supporting invalid length/checksum values for
// Table 3's UDP inert-packet rows.
#pragma once

#include <cstdint>
#include <optional>

#include "util/bytes.h"
#include "util/result.h"

namespace liberate::netsim {

struct UdpHeader {
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  /// unset = auto (8 + payload); set values may disagree with the payload
  /// ("Length longer/shorter than payload" rows).
  std::optional<std::uint16_t> length_override;
  /// unset = auto-compute; 0 on the wire means "no checksum" (legal for UDP
  /// over IPv4); any other explicit value is used verbatim.
  std::optional<std::uint16_t> checksum_override;
};

Bytes serialize_udp(const UdpHeader& header, BytesView payload,
                    std::uint32_t src_ip, std::uint32_t dst_ip);

struct UdpView {
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  std::uint16_t length = 0;  // declared
  std::uint16_t checksum = 0;
  BytesView payload;  // actual bytes after the 8-byte header

  bool bad_length = false;     // declared != actual datagram size
  bool length_short = false;   // declared < actual
  bool length_long = false;    // declared > actual

  /// Payload truncated to the declared length, when the declared length is
  /// short — some stacks (Linux, Table 3 note 5) deliver exactly this.
  BytesView declared_payload() const {
    if (length >= 8 && static_cast<std::size_t>(length - 8) <= payload.size()) {
      return payload.subspan(0, length - 8);
    }
    return payload;
  }
};

Result<UdpView> parse_udp(BytesView datagram);

/// Checksum verification needs the pseudo-header; a wire checksum of zero
/// means "not computed" and always verifies for IPv4.
bool udp_checksum_ok(BytesView datagram, std::uint32_t src_ip,
                     std::uint32_t dst_ip);

}  // namespace liberate::netsim
