#include "netsim/validation.h"

#include "netsim/checksum.h"

namespace liberate::netsim {

AnomalySet anomalies_of(const PacketView& pkt) {
  AnomalySet set = 0;
  const Ipv4View& ip = pkt.ip;

  if (ip.bad_version) set |= anomaly_bit(Anomaly::kBadIpVersion);
  if (ip.bad_ihl) set |= anomaly_bit(Anomaly::kBadIpHeaderLength);
  if (ip.total_length_long) set |= anomaly_bit(Anomaly::kIpTotalLengthLong);
  if (ip.total_length_short) set |= anomaly_bit(Anomaly::kIpTotalLengthShort);
  if (ip.bad_checksum) set |= anomaly_bit(Anomaly::kBadIpChecksum);
  if (ip.bad_options) set |= anomaly_bit(Anomaly::kInvalidIpOptions);
  if (ip.has_deprecated_option) {
    set |= anomaly_bit(Anomaly::kDeprecatedIpOptions);
  }
  if (ip.is_fragment()) set |= anomaly_bit(Anomaly::kIpFragment);

  const bool known_proto =
      ip.protocol == static_cast<std::uint8_t>(IpProto::kTcp) ||
      ip.protocol == static_cast<std::uint8_t>(IpProto::kUdp) ||
      ip.protocol == static_cast<std::uint8_t>(IpProto::kIcmp);
  if (!known_proto) set |= anomaly_bit(Anomaly::kUnknownIpProtocol);

  if (pkt.tcp) {
    const TcpView& tcp = *pkt.tcp;
    if (tcp.bad_data_offset) set |= anomaly_bit(Anomaly::kBadTcpDataOffset);
    if (is_invalid_flag_combo(tcp.flags)) {
      set |= anomaly_bit(Anomaly::kInvalidTcpFlagCombo);
    }
    if (!tcp.payload.empty() && !tcp.ack_flag() && !tcp.syn() && !tcp.rst()) {
      set |= anomaly_bit(Anomaly::kTcpDataNoAck);
    }
    if (!tcp_checksum_ok(ip.payload, ip.src, ip.dst)) {
      set |= anomaly_bit(Anomaly::kBadTcpChecksum);
    }
  }
  if (pkt.udp) {
    const UdpView& udp = *pkt.udp;
    if (udp.length_long) set |= anomaly_bit(Anomaly::kUdpLengthLong);
    if (udp.length_short) set |= anomaly_bit(Anomaly::kUdpLengthShort);
    if (!udp_checksum_ok(ip.payload, ip.src, ip.dst)) {
      set |= anomaly_bit(Anomaly::kBadUdpChecksum);
    }
  }
  return set;
}

std::string describe_anomalies(AnomalySet set) {
  struct Name {
    Anomaly a;
    const char* name;
  };
  static const Name kNames[] = {
      {Anomaly::kBadIpVersion, "bad-ip-version"},
      {Anomaly::kBadIpHeaderLength, "bad-ip-header-length"},
      {Anomaly::kIpTotalLengthLong, "ip-total-length-long"},
      {Anomaly::kIpTotalLengthShort, "ip-total-length-short"},
      {Anomaly::kBadIpChecksum, "bad-ip-checksum"},
      {Anomaly::kUnknownIpProtocol, "unknown-ip-protocol"},
      {Anomaly::kInvalidIpOptions, "invalid-ip-options"},
      {Anomaly::kDeprecatedIpOptions, "deprecated-ip-options"},
      {Anomaly::kBadTcpChecksum, "bad-tcp-checksum"},
      {Anomaly::kBadTcpDataOffset, "bad-tcp-data-offset"},
      {Anomaly::kInvalidTcpFlagCombo, "invalid-tcp-flag-combo"},
      {Anomaly::kTcpDataNoAck, "tcp-data-no-ack"},
      {Anomaly::kBadUdpChecksum, "bad-udp-checksum"},
      {Anomaly::kUdpLengthLong, "udp-length-long"},
      {Anomaly::kUdpLengthShort, "udp-length-short"},
      {Anomaly::kTcpSeqOutOfWindow, "tcp-seq-out-of-window"},
      {Anomaly::kIpFragment, "ip-fragment"},
  };
  std::string out;
  for (const auto& n : kNames) {
    if (has_anomaly(set, n.a)) {
      if (!out.empty()) out += ",";
      out += n.name;
    }
  }
  return out.empty() ? "none" : out;
}

ValidationPolicy ValidationPolicy::strict() {
  ValidationPolicy p;
  p.checked = ~0u & ~anomaly_bit(Anomaly::kIpFragment) &
              ~anomaly_bit(Anomaly::kDeprecatedIpOptions);
  return p;
}

ValidationPolicy ValidationPolicy::none() {
  return ValidationPolicy{};
}

}  // namespace liberate::netsim
