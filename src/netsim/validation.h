// validation.h — packet anomaly detection and configurable validation policy.
//
// Every row of the paper's Table 3 corresponds to one anomaly a crafted inert
// packet can carry. Whether a given element (router hop, middlebox classifier,
// endpoint OS) *checks* each anomaly is exactly what distinguishes the
// environments the paper measured — "middleboxes exhibit different, incomplete
// implementations of network and transport layers" (§1). A ValidationPolicy is
// therefore just the set of anomalies an element rejects packets for.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "netsim/packet.h"

namespace liberate::netsim {

enum class Anomaly : std::uint32_t {
  kBadIpVersion = 1u << 0,
  kBadIpHeaderLength = 1u << 1,
  kIpTotalLengthLong = 1u << 2,   // declared length > actual bytes
  kIpTotalLengthShort = 1u << 3,  // declared length < actual bytes
  kBadIpChecksum = 1u << 4,
  kUnknownIpProtocol = 1u << 5,  // not TCP/UDP/ICMP
  kInvalidIpOptions = 1u << 6,
  kDeprecatedIpOptions = 1u << 7,
  kBadTcpChecksum = 1u << 8,
  kBadTcpDataOffset = 1u << 9,
  kInvalidTcpFlagCombo = 1u << 10,
  kTcpDataNoAck = 1u << 11,       // payload-carrying segment without ACK flag
  kBadUdpChecksum = 1u << 12,
  kUdpLengthLong = 1u << 13,
  kUdpLengthShort = 1u << 14,
  // Stateful anomalies, flagged by flow-tracking code rather than
  // anomalies_of():
  kTcpSeqOutOfWindow = 1u << 15,
  kIpFragment = 1u << 16,         // not an error, but some paths drop these
};

using AnomalySet = std::uint32_t;

constexpr AnomalySet anomaly_bit(Anomaly a) {
  return static_cast<AnomalySet>(a);
}
constexpr bool has_anomaly(AnomalySet set, Anomaly a) {
  return (set & anomaly_bit(a)) != 0;
}

/// All stateless anomalies present in a parsed packet (checksums verified
/// against the addresses in the packet itself).
AnomalySet anomalies_of(const PacketView& pkt);

/// Human-readable list, for reports and error messages.
std::string describe_anomalies(AnomalySet set);

/// A set of anomalies an element rejects packets for. `rejects()` is the
/// single question every element asks: "given what I validate, do I treat
/// this packet as garbage?"
struct ValidationPolicy {
  AnomalySet checked = 0;

  ValidationPolicy& check(Anomaly a) {
    checked |= anomaly_bit(a);
    return *this;
  }
  ValidationPolicy& check_all() {
    checked = ~0u;
    return *this;
  }
  bool rejects(AnomalySet present) const { return (present & checked) != 0; }

  /// Strict end-host policy: everything validated (modern OS default).
  static ValidationPolicy strict();
  /// Validate nothing — a naive classifier.
  static ValidationPolicy none();
};

}  // namespace liberate::netsim
