#include "obs/anomaly.h"

#include <cmath>

namespace liberate::obs {

namespace {
/// Mean-absolute-deviation -> standard-deviation rescale under normality
/// (sqrt(pi/2)).
constexpr double kMadToSigma = 1.2533;
}  // namespace

AnomalyVerdict AnomalyDetector::observe(double x) {
  AnomalyVerdict verdict;
  verdict.mean = mean_;
  verdict.deviation = deviation_;

  if (points_ == 0) {
    // First point seeds the level; deviation starts at the floor.
    mean_ = x;
    deviation_ = config_.min_deviation;
    points_ = 1;
    verdict.flagged = flagged_;
    return verdict;
  }

  const double scale =
      std::max(kMadToSigma * deviation_, config_.min_deviation);
  const double residual = x - mean_;
  verdict.zscore = std::abs(residual) / scale;
  const bool warmed =
      points_ >= static_cast<std::uint64_t>(config_.warmup);
  verdict.anomalous = warmed && verdict.zscore > config_.z_threshold;

  if (verdict.anomalous) {
    normal_streak_ = 0;
    if (++anomalous_streak_ >= config_.points_to_flag) flagged_ = true;
  } else {
    anomalous_streak_ = 0;
    if (++normal_streak_ >= config_.points_to_clear) flagged_ = false;
  }
  verdict.flagged = flagged_;

  // Winsorized EWMA update: clamp the residual so a spike cannot poison
  // the statistics, but a sustained shift still pulls the level over.
  double clamped = x;
  const double limit = config_.clamp_sigmas * scale;
  if (residual > limit) clamped = mean_ + limit;
  if (residual < -limit) clamped = mean_ - limit;
  const double a = config_.alpha;
  deviation_ = a * std::abs(clamped - mean_) + (1.0 - a) * deviation_;
  mean_ = a * clamped + (1.0 - a) * mean_;
  points_ += 1;
  return verdict;
}

}  // namespace liberate::obs
