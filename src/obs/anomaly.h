// anomaly.h — EWMA + robust z-score anomaly detection over telemetry
// series.
//
// The DriftMonitor (deploy/drift.h) compares wave rates against a fixed
// deploy-time baseline with fixed slack — it sees a breach, not a trend.
// The AnomalyDetector watches the *statistics* of a series: it keeps an
// EWMA of the level and an EWMA of the absolute deviation around it, and
// scores each new point by a robust z-score
//
//     z = |x - mean| / max(k * deviation, min_deviation)
//
// (k = 1.2533 rescales mean absolute deviation to a standard deviation
// under normality, the MAD-style robustness trade). Updates are
// winsorized: a wildly anomalous point is clamped to mean ± clamp_sigmas
// deviations before being folded into the EWMAs, so a one-wave spike
// cannot poison the baseline, while a sustained shift still drags the
// mean toward the new level and eventually reads as normal again.
//
// Hysteresis mirrors the DriftMonitor: `points_to_flag` consecutive
// anomalous observations raise the flag, `points_to_clear` consecutive
// normal ones lower it — a single FaultyLink burst never flags. The
// detector is pure arithmetic over the values it is fed (no clocks, no
// registry), so control-plane decisions built on it stay byte-identical
// across worker counts, match backends, and observability levels. The
// control plane treats a flag as a *corroborating* signal only: anomaly +
// rate breach confirms drift faster; anomaly alone annotates, never
// triggers probes (deploy/drift.h).
#pragma once

#include <cstdint>

namespace liberate::obs {

struct AnomalyConfig {
  /// EWMA weight of the newest point for both the level and the deviation.
  double alpha = 0.3;
  /// Robust z-score above which a point is anomalous.
  double z_threshold = 3.0;
  /// Deviation floor: keeps z finite on near-constant series and sets the
  /// smallest step that can ever read as anomalous (z = step / (k * floor)).
  double min_deviation = 0.02;
  /// Observations consumed before any point may flag (the EWMAs need
  /// history before "deviation" means anything).
  int warmup = 3;
  /// Consecutive anomalous points to raise the flag (hysteresis up).
  int points_to_flag = 1;
  /// Consecutive normal points to lower it (hysteresis down).
  int points_to_clear = 2;
  /// Winsorization limit in deviations for EWMA updates.
  double clamp_sigmas = 4.0;
};

struct AnomalyVerdict {
  bool anomalous = false;  // this point scored past the threshold
  bool flagged = false;    // hysteresis state after this point
  double zscore = 0;
  double mean = 0;       // EWMA level before this point
  double deviation = 0;  // EWMA absolute deviation before this point
};

class AnomalyDetector {
 public:
  explicit AnomalyDetector(AnomalyConfig config = {}) : config_(config) {}

  /// Scores x against the running statistics, then folds (a winsorized) x
  /// into them. Deterministic: same value sequence, same verdicts.
  AnomalyVerdict observe(double x);

  bool flagged() const { return flagged_; }
  std::uint64_t points() const { return points_; }
  double mean() const { return mean_; }
  double deviation() const { return deviation_; }

  void reset() {
    points_ = 0;
    mean_ = 0;
    deviation_ = 0;
    flagged_ = false;
    anomalous_streak_ = 0;
    normal_streak_ = 0;
  }

 private:
  AnomalyConfig config_;
  std::uint64_t points_ = 0;
  double mean_ = 0;
  double deviation_ = 0;
  bool flagged_ = false;
  int anomalous_streak_ = 0;
  int normal_streak_ = 0;
};

}  // namespace liberate::obs
