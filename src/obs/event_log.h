// event_log.h — structured event stream with a bounded ring sink.
//
// An Event is {sim-clock timestamp, layer, kind, key/value fields}; the
// per-kind totals are exact (maintained incrementally, never dropped) while
// the ring keeps only the most recent events for inspection — under a
// million-round workload the totals stay meaningful and memory stays flat.
#pragma once

#include <cstdint>
#include <cstdio>
#include <deque>
#include <initializer_list>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "util/thread_pool.h"

namespace liberate::obs {

struct EventField {
  std::string key;
  std::string value;
};

/// Field constructors — keep instrumentation sites terse.
inline EventField fv(std::string_view key, std::string_view value) {
  return EventField{std::string(key), std::string(value)};
}
inline EventField fv(std::string_view key, const char* value) {
  return EventField{std::string(key), std::string(value)};
}
inline EventField fv(std::string_view key, std::uint64_t value) {
  return EventField{std::string(key), std::to_string(value)};
}
inline EventField fv(std::string_view key, std::int64_t value) {
  return EventField{std::string(key), std::to_string(value)};
}
inline EventField fv(std::string_view key, int value) {
  return EventField{std::string(key), std::to_string(value)};
}
// No std::size_t overload: on LP64 it IS std::uint64_t.
inline EventField fv(std::string_view key, double value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6g", value);
  return EventField{std::string(key), buf};
}
inline EventField fv(std::string_view key, bool value) {
  return EventField{std::string(key), value ? "true" : "false"};
}

struct Event {
  std::uint64_t ts_us = 0;  // sim-clock microseconds in the emitting world
  std::string layer;        // "netsim" | "dpi" | "core" | "util" | ...
  std::string kind;
  int worker = -1;
  std::vector<EventField> fields;
};

struct EventLogSnapshot {
  std::vector<Event> recent;                        // oldest -> newest
  std::map<std::string, std::uint64_t> totals;      // "layer.kind" -> count
  std::uint64_t dropped = 0;                        // evicted from the ring
};

class EventLog {
 public:
  static EventLog& instance() {
    static EventLog log;
    return log;
  }

  void record(std::uint64_t ts_us, std::string_view layer,
              std::string_view kind,
              std::initializer_list<EventField> fields) {
    Event e;
    e.ts_us = ts_us;
    e.layer = layer;
    e.kind = kind;
    e.worker = ThreadPool::current_worker_index();
    e.fields.assign(fields.begin(), fields.end());
    std::lock_guard<std::mutex> lock(mutex_);
    totals_[e.layer + "." + e.kind] += 1;
    if (capacity_ == 0) return;
    if (ring_.size() >= capacity_) {
      ring_.pop_front();
      dropped_ += 1;
    }
    ring_.push_back(std::move(e));
  }

  EventLogSnapshot snapshot() const {
    std::lock_guard<std::mutex> lock(mutex_);
    EventLogSnapshot snap;
    snap.recent.assign(ring_.begin(), ring_.end());
    snap.totals = totals_;
    snap.dropped = dropped_;
    return snap;
  }

  void set_capacity(std::size_t capacity) {
    std::lock_guard<std::mutex> lock(mutex_);
    capacity_ = capacity;
    while (ring_.size() > capacity_) ring_.pop_front();
  }
  void reset() {
    std::lock_guard<std::mutex> lock(mutex_);
    ring_.clear();
    totals_.clear();
    dropped_ = 0;
  }

 private:
  EventLog() = default;

  mutable std::mutex mutex_;
  std::deque<Event> ring_;
  std::size_t capacity_ = 4096;
  std::map<std::string, std::uint64_t> totals_;
  std::uint64_t dropped_ = 0;
};

}  // namespace liberate::obs
