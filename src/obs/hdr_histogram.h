// hdr_histogram.h — log-linear bucketed latency histogram.
//
// The fixed-bucket Histogram in metrics.h answers "how many rounds took
// longer than 5 virtual seconds"; it cannot answer "what is the fleet's
// p999 flow latency" without hand-tuning bounds per metric. HdrHistogram
// covers the full uint64 value range with log-linear buckets: values below
// kSubBuckets are recorded exactly, and every power-of-two octave above
// that is split into kSubBuckets/2 linear sub-buckets, bounding the
// relative bucket width at 2^-(kSubBucketBits-1) (3.125% here). That is
// the same trade HdrHistogram-the-library makes, reimplemented on the
// repo's per-worker relaxed-atomic shard cells (see shard.h) so record()
// stays a single uncontended fetch_add on the hot path.
//
// Determinism contract: bucket counts are exact (never sampled, never
// lossy), so merged counts are identical no matter how observations were
// distributed across threads, and quantiles are derived from counts alone
// using the deterministic bucket midpoint — the same recorded multiset
// yields byte-identical quantiles on every worker count and backend.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <vector>

#include "obs/shard.h"

namespace liberate::obs {

/// Plain-value snapshot of an HdrHistogram: exact bucket counts plus the
/// derived summary. Mergeable — merge() adds counts cell-wise, which is
/// exact because counts are exact.
struct HdrSnapshot {
  std::vector<std::uint64_t> counts;  // one per bucket, index = bucket index
  std::uint64_t count = 0;
  std::uint64_t sum = 0;  // exact sum of recorded values
  std::uint64_t max = 0;

  void merge(const HdrSnapshot& other);

  /// Deterministic quantile: the midpoint of the first bucket whose
  /// cumulative count reaches ceil(q * count). q outside [0,1] is clamped.
  std::uint64_t value_at_quantile(double q) const;
  double mean() const {
    return count == 0 ? 0.0
                      : static_cast<double>(sum) / static_cast<double>(count);
  }
};

class HdrHistogram {
 public:
  /// 2^5 = 32 linear sub-buckets per octave: relative bucket width is at
  /// most 1/32, so a bucket-midpoint quantile is within ~1.6% of the true
  /// order statistic.
  static constexpr unsigned kSubBucketBits = 5;
  static constexpr std::uint64_t kSubBuckets = 1ull << kSubBucketBits;
  /// Octaves above the exact region: values up to 2^64-1 land in octave 63,
  /// so every uint64 is representable — no overflow bucket needed.
  static constexpr unsigned kOctaves = 64 - kSubBucketBits;
  static constexpr std::size_t kBucketCount =
      static_cast<std::size_t>(kSubBuckets) +
      static_cast<std::size_t>(kOctaves) * (kSubBuckets / 2);

  /// Bucket index for a value. Values < kSubBuckets map to themselves
  /// (exact); larger values map log-linearly.
  static std::size_t bucket_index(std::uint64_t v) {
    if (v < kSubBuckets) return static_cast<std::size_t>(v);
    // exp >= 1: shifting by exp puts the top set bit at position
    // kSubBucketBits-1, so (v >> exp) is in [kSubBuckets/2, kSubBuckets).
    const unsigned exp = bit_width(v) - kSubBucketBits;
    const std::uint64_t sub = v >> exp;
    return static_cast<std::size_t>(kSubBuckets +
                                    (exp - 1) * (kSubBuckets / 2) +
                                    (sub - kSubBuckets / 2));
  }

  /// Inclusive value range covered by a bucket.
  static std::uint64_t bucket_lower(std::size_t index) {
    if (index < kSubBuckets) return static_cast<std::uint64_t>(index);
    const std::size_t rel = index - kSubBuckets;
    const unsigned exp = static_cast<unsigned>(rel / (kSubBuckets / 2)) + 1;
    const std::uint64_t sub = kSubBuckets / 2 + rel % (kSubBuckets / 2);
    return sub << exp;
  }
  static std::uint64_t bucket_upper(std::size_t index) {
    if (index < kSubBuckets) return static_cast<std::uint64_t>(index);
    const std::size_t rel = index - kSubBuckets;
    const unsigned exp = static_cast<unsigned>(rel / (kSubBuckets / 2)) + 1;
    const std::uint64_t sub = kSubBuckets / 2 + rel % (kSubBuckets / 2);
    // ((sub+1) << exp) - 1; sub+1 can be kSubBuckets, which still fits.
    return ((sub + 1) << exp) - 1;
  }
  /// The deterministic representative value quantiles report: the integer
  /// midpoint of the bucket's inclusive range (exact buckets report the
  /// value itself).
  static std::uint64_t bucket_midpoint(std::size_t index) {
    const std::uint64_t lo = bucket_lower(index);
    const std::uint64_t hi = bucket_upper(index);
    return lo + (hi - lo) / 2;
  }

  /// One relaxed fetch_add into the caller's shard (plus a CAS loop for the
  /// shard-local max, contended only within one shard).
  void record(std::uint64_t v) {
    Shard& s = shards_[shard_index()];
    s.counts[bucket_index(v)].fetch_add(1, std::memory_order_relaxed);
    s.sum.fetch_add(v, std::memory_order_relaxed);
    std::uint64_t m = s.max.load(std::memory_order_relaxed);
    while (v > m &&
           !s.max.compare_exchange_weak(m, v, std::memory_order_relaxed)) {
    }
  }

  HdrSnapshot snapshot() const {
    HdrSnapshot snap;
    snap.counts.assign(kBucketCount, 0);
    for (const Shard& s : shards_) {
      for (std::size_t b = 0; b < kBucketCount; ++b) {
        const std::uint64_t c = s.counts[b].load(std::memory_order_relaxed);
        snap.counts[b] += c;
        snap.count += c;
      }
      snap.sum += s.sum.load(std::memory_order_relaxed);
      const std::uint64_t m = s.max.load(std::memory_order_relaxed);
      if (m > snap.max) snap.max = m;
    }
    return snap;
  }

  std::uint64_t count() const {
    std::uint64_t n = 0;
    for (const Shard& s : shards_) {
      for (std::size_t b = 0; b < kBucketCount; ++b) {
        n += s.counts[b].load(std::memory_order_relaxed);
      }
    }
    return n;
  }

  void reset() {
    for (Shard& s : shards_) {
      for (auto& c : s.counts) c.store(0, std::memory_order_relaxed);
      s.sum.store(0, std::memory_order_relaxed);
      s.max.store(0, std::memory_order_relaxed);
    }
  }

 private:
  static unsigned bit_width(std::uint64_t v) {
    unsigned w = 0;
    while (v != 0) {
      v >>= 1;
      ++w;
    }
    return w;
  }

  struct alignas(64) Shard {
    std::array<std::atomic<std::uint64_t>, kBucketCount> counts{};
    std::atomic<std::uint64_t> sum{0};
    std::atomic<std::uint64_t> max{0};
  };

  std::array<Shard, kShards> shards_{};
};

inline void HdrSnapshot::merge(const HdrSnapshot& other) {
  if (counts.size() < other.counts.size()) {
    counts.resize(other.counts.size(), 0);
  }
  for (std::size_t b = 0; b < other.counts.size(); ++b) {
    counts[b] += other.counts[b];
  }
  count += other.count;
  sum += other.sum;
  if (other.max > max) max = other.max;
}

inline std::uint64_t HdrSnapshot::value_at_quantile(double q) const {
  if (count == 0) return 0;
  if (q < 0) q = 0;
  if (q > 1) q = 1;
  // ceil(q * count), clamped to [1, count]: rank of the order statistic.
  std::uint64_t rank =
      static_cast<std::uint64_t>(q * static_cast<double>(count));
  if (static_cast<double>(rank) < q * static_cast<double>(count)) rank += 1;
  if (rank == 0) rank = 1;
  if (rank > count) rank = count;
  std::uint64_t cumulative = 0;
  for (std::size_t b = 0; b < counts.size(); ++b) {
    cumulative += counts[b];
    if (cumulative >= rank) return HdrHistogram::bucket_midpoint(b);
  }
  return HdrHistogram::bucket_midpoint(counts.empty() ? 0 : counts.size() - 1);
}

}  // namespace liberate::obs
