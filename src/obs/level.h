// level.h — compile-time observability level.
//
// LIBERATE_OBS_LEVEL gates how much instrumentation is compiled in:
//
//   0  off      — every obs macro expands to a no-op; a disabled build
//                 carries no atomics, no registry lookups, no strings.
//   1  metrics  — counters, gauges and histograms (relaxed atomic adds).
//   2  full     — metrics plus sim-clock spans and the structured event log.
//
// The level is normally injected project-wide by CMake
// (-DLIBERATE_OBS_LEVEL=N, default 2). A single translation unit may opt
// out by #undef/#define-ing the macro before its first include of any obs
// header — only the *macros* change meaning per TU; every inline function
// in these headers is level-independent, so mixed-level TUs stay ODR-clean.
#pragma once

#ifndef LIBERATE_OBS_LEVEL
#define LIBERATE_OBS_LEVEL 2
#endif

#define LIBERATE_OBS_LEVEL_OFF 0
#define LIBERATE_OBS_LEVEL_METRICS 1
#define LIBERATE_OBS_LEVEL_FULL 2
