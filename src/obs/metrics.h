// metrics.h — the process-wide metrics registry.
//
// Counters, gauges and fixed-bucket histograms, addressed by name. The hot
// path is a single relaxed atomic add into a per-worker shard (indexed by
// ThreadPool's stable worker index, padded to a cache line each), so
// instrumented code never contends on a lock and never serializes workers;
// shards are summed only when a snapshot is taken. Registration (the
// name -> metric lookup) happens once per instrumentation site via a
// function-local static, behind the registry mutex.
//
// Nothing here reads LIBERATE_OBS_LEVEL: level gating lives entirely in the
// macros of obs.h, so these definitions are identical in every translation
// unit regardless of its level (no ODR hazards), and a fully disabled build
// simply never references them.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <initializer_list>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/hdr_histogram.h"
#include "obs/shard.h"
#include "util/thread_pool.h"

namespace liberate::obs {

/// Monotonic counter. add() is one relaxed fetch_add on the caller's shard.
class Counter {
 public:
  void add(std::uint64_t n) {
    cells_[shard_index()].v.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t total() const {
    std::uint64_t sum = 0;
    for (const ShardCell& c : cells_) sum += c.v.load(std::memory_order_relaxed);
    return sum;
  }
  void reset() {
    for (ShardCell& c : cells_) c.v.store(0, std::memory_order_relaxed);
  }

 private:
  std::array<ShardCell, kShards> cells_{};
};

/// Point-in-time value with a high-water mark. set() races are benign (last
/// writer wins); the high-water mark is maintained with a CAS loop.
class Gauge {
 public:
  void set(std::int64_t v) {
    value_.store(v, std::memory_order_relaxed);
    std::int64_t hwm = high_water_.load(std::memory_order_relaxed);
    while (v > hwm &&
           !high_water_.compare_exchange_weak(hwm, v,
                                              std::memory_order_relaxed)) {
    }
  }
  /// A single fetch_add: two concurrent add()s both land (the old
  /// set(load()+delta) formulation dropped increments under contention).
  /// The high-water mark then races the updated value through the same CAS
  /// loop set() uses.
  void add(std::int64_t delta) {
    const std::int64_t v =
        value_.fetch_add(delta, std::memory_order_relaxed) + delta;
    std::int64_t hwm = high_water_.load(std::memory_order_relaxed);
    while (v > hwm &&
           !high_water_.compare_exchange_weak(hwm, v,
                                              std::memory_order_relaxed)) {
    }
  }
  std::int64_t value() const { return value_.load(std::memory_order_relaxed); }
  std::int64_t high_water() const {
    return high_water_.load(std::memory_order_relaxed);
  }
  void reset() {
    value_.store(0, std::memory_order_relaxed);
    high_water_.store(0, std::memory_order_relaxed);
  }

 private:
  std::atomic<std::int64_t> value_{0};
  std::atomic<std::int64_t> high_water_{0};
};

/// Fixed-bucket histogram. Bucket i counts observations <= bounds[i]; one
/// overflow bucket catches the rest. The sum is accumulated in integer
/// microunits (value * 1e6) so concurrent observation totals are exactly
/// conserved — no floating-point atomics, no lost precision under TSan.
class Histogram {
 public:
  static constexpr std::size_t kMaxBuckets = 16;

  explicit Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
    if (bounds_.size() > kMaxBuckets) bounds_.resize(kMaxBuckets);
  }

  /// Largest magnitude the micro-unit sum accepts per observation. Casting
  /// a double outside the int64 range is UB, so v * 1e6 is clamped to
  /// ±9e18 (just inside int64); NaN contributes 0. The clamp only kicks in
  /// beyond |v| ≈ 9.2e12 — far past any real latency/size — and the bucket
  /// count is still recorded, so count() stays exact even for absurd values.
  static constexpr double kSumClampMicrounits = 9.0e18;

  void observe(double v) {
    Shard& s = shards_[shard_index()];
    std::size_t b = 0;
    while (b < bounds_.size() && v > bounds_[b]) ++b;
    s.counts[b].fetch_add(1, std::memory_order_relaxed);
    double scaled = v * 1e6;
    if (scaled != scaled) {
      scaled = 0;  // NaN: counted, no sum contribution
    } else if (scaled > kSumClampMicrounits) {
      scaled = kSumClampMicrounits;
    } else if (scaled < -kSumClampMicrounits) {
      scaled = -kSumClampMicrounits;
    }
    s.sum_microunits.fetch_add(static_cast<std::int64_t>(scaled),
                               std::memory_order_relaxed);
  }

  const std::vector<double>& bounds() const { return bounds_; }

  /// Merged per-bucket counts (bounds().size() + 1 entries, last = overflow).
  std::vector<std::uint64_t> bucket_counts() const {
    std::vector<std::uint64_t> merged(bounds_.size() + 1, 0);
    for (const Shard& s : shards_) {
      for (std::size_t b = 0; b < merged.size(); ++b) {
        merged[b] += s.counts[b].load(std::memory_order_relaxed);
      }
    }
    return merged;
  }
  std::uint64_t count() const {
    std::uint64_t n = 0;
    for (std::uint64_t c : bucket_counts()) n += c;
    return n;
  }
  double sum() const {
    std::int64_t micro = 0;
    for (const Shard& s : shards_) {
      micro += s.sum_microunits.load(std::memory_order_relaxed);
    }
    return static_cast<double>(micro) / 1e6;
  }
  void reset() {
    for (Shard& s : shards_) {
      for (auto& c : s.counts) c.store(0, std::memory_order_relaxed);
      s.sum_microunits.store(0, std::memory_order_relaxed);
    }
  }

 private:
  struct alignas(64) Shard {
    std::array<std::atomic<std::uint64_t>, kMaxBuckets + 1> counts{};
    std::atomic<std::int64_t> sum_microunits{0};
  };

  std::vector<double> bounds_;  // immutable after construction
  std::array<Shard, kShards> shards_{};
};

struct GaugeSnapshot {
  std::int64_t value = 0;
  std::int64_t high_water = 0;
};

struct HistogramSnapshot {
  std::vector<double> bounds;
  std::vector<std::uint64_t> counts;  // bounds.size() + 1, last = overflow
  std::uint64_t count = 0;
  double sum = 0;
};

struct MetricsSnapshot {
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, GaugeSnapshot> gauges;
  std::map<std::string, HistogramSnapshot> histograms;
  std::map<std::string, HdrSnapshot> hdr_histograms;
};

class MetricsRegistry {
 public:
  static MetricsRegistry& instance() {
    static MetricsRegistry registry;
    return registry;
  }

  Counter& counter(const std::string& name) {
    std::lock_guard<std::mutex> lock(mutex_);
    auto& slot = counters_[name];
    if (!slot) slot = std::make_unique<Counter>();
    return *slot;
  }
  Gauge& gauge(const std::string& name) {
    std::lock_guard<std::mutex> lock(mutex_);
    auto& slot = gauges_[name];
    if (!slot) slot = std::make_unique<Gauge>();
    return *slot;
  }
  /// First registration fixes the bucket bounds; later calls with a
  /// different list reuse the existing buckets.
  Histogram& histogram(const std::string& name,
                       std::initializer_list<double> bounds) {
    std::lock_guard<std::mutex> lock(mutex_);
    auto& slot = histograms_[name];
    if (!slot) slot = std::make_unique<Histogram>(std::vector<double>(bounds));
    return *slot;
  }
  /// Log-linear HDR histogram for integer-valued latencies/sizes; no bounds
  /// to choose — every uint64 value has a bucket (hdr_histogram.h).
  HdrHistogram& hdr(const std::string& name) {
    std::lock_guard<std::mutex> lock(mutex_);
    auto& slot = hdrs_[name];
    if (!slot) slot = std::make_unique<HdrHistogram>();
    return *slot;
  }

  MetricsSnapshot snapshot() const {
    std::lock_guard<std::mutex> lock(mutex_);
    MetricsSnapshot snap;
    for (const auto& [name, c] : counters_) snap.counters[name] = c->total();
    for (const auto& [name, g] : gauges_) {
      snap.gauges[name] = GaugeSnapshot{g->value(), g->high_water()};
    }
    for (const auto& [name, h] : histograms_) {
      HistogramSnapshot hs;
      hs.bounds = h->bounds();
      hs.counts = h->bucket_counts();
      for (std::uint64_t c : hs.counts) hs.count += c;
      hs.sum = h->sum();
      snap.histograms[name] = std::move(hs);
    }
    for (const auto& [name, h] : hdrs_) {
      snap.hdr_histograms[name] = h->snapshot();
    }
    return snap;
  }

  /// Zero every metric in place. Handles cached at instrumentation sites
  /// (function-local statics) stay valid — metrics are never deallocated.
  void reset() {
    std::lock_guard<std::mutex> lock(mutex_);
    for (auto& [name, c] : counters_) c->reset();
    for (auto& [name, g] : gauges_) g->reset();
    for (auto& [name, h] : histograms_) h->reset();
    for (auto& [name, h] : hdrs_) h->reset();
  }

 private:
  MetricsRegistry() = default;

  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
  std::map<std::string, std::unique_ptr<HdrHistogram>> hdrs_;
};

}  // namespace liberate::obs
