// obs.h — the instrumentation macros (the only thing instrumented code
// includes).
//
//   LIBERATE_COUNTER_ADD("dpi.classifications", 1);
//   LIBERATE_GAUGE_SET("util.pool_queue_depth", depth);
//   LIBERATE_HISTOGRAM_OBSERVE("core.round_virtual_seconds",
//                              ({0.5, 1, 2, 5}), seconds);
//   LIBERATE_OBS_SPAN("core.round", [&] { return loop.now(); });
//   LIBERATE_OBS_EVENT(now_us, "dpi", "classified",
//                      liberate::obs::fv("class", name));
//
// Level gating happens HERE and only here (see level.h): below the level,
// a macro expands to an empty statement — arguments are not evaluated, no
// registry is touched, no atomics exist in the emitted code. The metric
// handle lookup is a function-local static, so the name -> metric map is
// consulted once per site, not once per call.
//
// Histogram bounds are written as a parenthesized brace list — the extra
// parens keep the commas inside one macro argument.
#pragma once

#include "obs/level.h"

#if LIBERATE_OBS_LEVEL >= LIBERATE_OBS_LEVEL_METRICS
#include "obs/metrics.h"
#include "obs/prof/context.h"
#include "obs/prof/cost_ledger.h"
#include "obs/timeseries.h"
#endif
#if LIBERATE_OBS_LEVEL >= LIBERATE_OBS_LEVEL_FULL
#include "obs/event_log.h"
#include "obs/provenance/recorder.h"
#include "obs/span.h"
#endif

#define LIBERATE_OBS_CONCAT_INNER(a, b) a##b
#define LIBERATE_OBS_CONCAT(a, b) LIBERATE_OBS_CONCAT_INNER(a, b)

#if LIBERATE_OBS_LEVEL >= LIBERATE_OBS_LEVEL_METRICS

#define LIBERATE_COUNTER_ADD(name, n)                                         \
  do {                                                                        \
    static ::liberate::obs::Counter& liberate_obs_c =                         \
        ::liberate::obs::MetricsRegistry::instance().counter(name);           \
    liberate_obs_c.add(static_cast<std::uint64_t>(n));                        \
  } while (0)

#define LIBERATE_GAUGE_SET(name, v)                                           \
  do {                                                                        \
    static ::liberate::obs::Gauge& liberate_obs_g =                           \
        ::liberate::obs::MetricsRegistry::instance().gauge(name);             \
    liberate_obs_g.set(static_cast<std::int64_t>(v));                         \
  } while (0)

#define LIBERATE_GAUGE_ADD(name, v)                                           \
  do {                                                                        \
    static ::liberate::obs::Gauge& liberate_obs_g =                           \
        ::liberate::obs::MetricsRegistry::instance().gauge(name);             \
    liberate_obs_g.add(static_cast<std::int64_t>(v));                         \
  } while (0)

/// `bounds` is a parenthesized brace list: (({0.5, 1, 5})).
#define LIBERATE_HISTOGRAM_OBSERVE(name, bounds, v)                           \
  do {                                                                        \
    static ::liberate::obs::Histogram& liberate_obs_h =                       \
        ::liberate::obs::MetricsRegistry::instance().histogram(               \
            name, std::initializer_list<double> bounds);                      \
    liberate_obs_h.observe(static_cast<double>(v));                           \
  } while (0)

/// HDR latency histogram: no bounds to pick — every uint64 value has a
/// log-linear bucket (obs/hdr_histogram.h); quantiles come out of the
/// snapshot exporters.
#define LIBERATE_HDR_RECORD(name, v)                                          \
  do {                                                                        \
    static ::liberate::obs::HdrHistogram& liberate_obs_hh =                   \
        ::liberate::obs::MetricsRegistry::instance().hdr(name);               \
    liberate_obs_hh.record(static_cast<std::uint64_t>(v));                    \
  } while (0)

// ---- telemetry hub (obs/timeseries.h) ----
// TUs using these must link liberate_obs_hub (the store is cc-backed).

/// Appends one (sim-clock time, value) point to the (name, shard) series;
/// shard -1 = fleet/process-wide.
#define LIBERATE_TS_SAMPLE(name, shard, t_us, v)                              \
  ::liberate::obs::TimeSeriesStore::instance().sample(                        \
      (name), static_cast<int>(shard), static_cast<std::uint64_t>(t_us),      \
      static_cast<double>(v))

/// Registry sweep at a sim-clock tick: counter deltas + gauge values for
/// every metric matching the given name prefixes (variadic so a brace list
/// with commas stays one argument: LIBERATE_TS_TICK(ts, {"deploy.", "dpi."})).
#define LIBERATE_TS_TICK(t_us, ...)                                           \
  ::liberate::obs::TimeSeriesStore::instance().tick(                          \
      static_cast<std::uint64_t>(t_us), __VA_ARGS__)

// ---- cost ledger (obs/prof/cost_ledger.h) ----

/// Attributes resource ticks in the enclosing block (and in pool tasks
/// whose submission is wrapped in LIBERATE_OBS_PROPAGATE below) to the
/// given phase. `phase` is a bare CostPhase enumerator name (kDetection,
/// kReadapt, ...). Nested scopes override.
#define LIBERATE_COST_SCOPE(phase)                              \
  ::liberate::obs::CostLedger::PhaseScope LIBERATE_OBS_CONCAT(  \
      liberate_obs_cost_scope_, __COUNTER__)(                   \
      ::liberate::obs::CostPhase::phase)

/// Ticks `n` units of a resource kind against the ambient phase. `kind`
/// is a bare CostKind enumerator name (kRounds, kProbes, ...).
#define LIBERATE_COST_TICK(kind, n)                     \
  ::liberate::obs::CostLedger::instance().tick(         \
      ::liberate::obs::CostKind::kind,                  \
      static_cast<std::uint64_t>(n))

// ---- ambient-context propagation (obs/prof/context.h) ----

/// Wraps a task callable at a pool-submission site so the task runs under
/// the ambient span / profile node / cost phase of the *submitting* thread
/// (captured now). Variadic: the callable may contain commas. At level 0
/// this expands to the callable unchanged.
#define LIBERATE_OBS_PROPAGATE(...) \
  ::liberate::obs::propagate_context(__VA_ARGS__)

#else  // level 0: true no-ops, arguments unevaluated

#define LIBERATE_COUNTER_ADD(name, n) \
  do {                                \
  } while (0)
#define LIBERATE_GAUGE_SET(name, v) \
  do {                              \
  } while (0)
#define LIBERATE_GAUGE_ADD(name, v) \
  do {                              \
  } while (0)
#define LIBERATE_HISTOGRAM_OBSERVE(name, bounds, v) \
  do {                                              \
  } while (0)
#define LIBERATE_HDR_RECORD(name, v) \
  do {                               \
  } while (0)
#define LIBERATE_TS_SAMPLE(name, shard, t_us, v) \
  do {                                           \
  } while (0)
#define LIBERATE_TS_TICK(t_us, ...) \
  do {                              \
  } while (0)
#define LIBERATE_COST_SCOPE(phase) \
  do {                             \
  } while (0)
#define LIBERATE_COST_TICK(kind, n) \
  do {                              \
  } while (0)
#define LIBERATE_OBS_PROPAGATE(...) (__VA_ARGS__)

#endif

#if LIBERATE_OBS_LEVEL >= LIBERATE_OBS_LEVEL_FULL

/// Declares a scoped span alive until the end of the enclosing block.
/// The trailing arguments form the clock: any callable returning sim-clock
/// microseconds (variadic so lambda captures may contain commas).
#define LIBERATE_OBS_SPAN(name, ...)                        \
  ::liberate::obs::ScopedSpan LIBERATE_OBS_CONCAT(          \
      liberate_obs_span_, __COUNTER__)((name), (__VA_ARGS__))

/// Trailing arguments are obs::fv(key, value) fields.
#define LIBERATE_OBS_EVENT(ts_us, layer, kind, ...)                           \
  ::liberate::obs::EventLog::instance().record((ts_us), (layer), (kind),      \
                                               {__VA_ARGS__})

// ---- provenance flight recorder (obs/provenance/recorder.h) ----

/// Binds the calling thread to a provenance scope (a round fingerprint)
/// until the end of the enclosing block.
#define LIBERATE_PROV_SCOPE(scope_id)                 \
  ::liberate::obs::prov::ScopedProvScope LIBERATE_OBS_CONCAT( \
      liberate_prov_scope_, __COUNTER__)((scope_id))

/// Registers a packet's lineage node at creation. `datagram` is the
/// serialized bytes (Bytes/BytesView); `kind` names the origin ("tcp",
/// "udp", "icmp", "crafted").
#define LIBERATE_PROV_PACKET(datagram, kind)                         \
  ::liberate::obs::prov::ProvenanceRecorder::instance().packet(      \
      (datagram), (kind))

/// Records a causal hop: `child` was produced from `parent` by `actor`.
#define LIBERATE_PROV_EDGE(ts_us, parent, child, kind, actor)        \
  ::liberate::obs::prov::ProvenanceRecorder::instance().edge(        \
      (ts_us), (parent), (child), (kind), (actor))

/// Appends a decision record to the flow's ledger; trailing arguments are
/// obs::fv(key, value) fields. `flow` is an obs::prov::FlowKey.
#define LIBERATE_PROV_NOTE(ts_us, flow, kind, ...)                   \
  ::liberate::obs::prov::ProvenanceRecorder::instance().note(        \
      (ts_us), (flow), (kind), {__VA_ARGS__})

/// LIBERATE_PROV_NOTE for sites holding the serialized datagram: the flow
/// key is derived from the packet and the record links to its lineage node.
#define LIBERATE_PROV_NOTE_PKT(ts_us, datagram, kind, ...)           \
  ::liberate::obs::prov::ProvenanceRecorder::instance().note_pkt(    \
      (ts_us), (datagram), (kind), {__VA_ARGS__})

#else  // spans/events/provenance compiled out below "full"

#define LIBERATE_OBS_SPAN(name, ...) \
  do {                               \
  } while (0)
#define LIBERATE_OBS_EVENT(ts_us, layer, kind, ...) \
  do {                                              \
  } while (0)
#define LIBERATE_PROV_SCOPE(scope_id) \
  do {                                \
  } while (0)
#define LIBERATE_PROV_PACKET(datagram, kind) \
  do {                                       \
  } while (0)
#define LIBERATE_PROV_EDGE(ts_us, parent, child, kind, actor) \
  do {                                                        \
  } while (0)
#define LIBERATE_PROV_NOTE(ts_us, flow, kind, ...) \
  do {                                             \
  } while (0)
#define LIBERATE_PROV_NOTE_PKT(ts_us, datagram, kind, ...) \
  do {                                                     \
  } while (0)

#endif
