// context.h — ambient observability context, propagated across pool tasks.
//
// Span nesting, the profiler's tree position, and the cost ledger's phase
// are all thread-local ambient state. That breaks the moment work hops
// threads: a wave chunk executed by a (possibly stealing) pool worker would
// either orphan its spans or — worse — nest them under whatever unrelated
// span happens to be open on that worker. TaskContext captures the ambient
// state as plain values (ids, not pointers — the submitting span may close
// before the worker runs), and TaskContextScope installs it around the
// task body, restoring the worker's previous state afterwards.
//
// The LIBERATE_OBS_PROPAGATE macro (obs.h) wraps a task callable at the
// submission site: at level 0 it expands to the callable unchanged.
#pragma once

#include <cstdint>
#include <utility>

#include "obs/prof/cost_ledger.h"
#include "obs/prof/profiler.h"

namespace liberate::obs {

/// The calling thread's innermost open span id (0 = none). Maintained by
/// ScopedSpan (span.h); ids are safe to carry across threads.
inline std::uint64_t& current_span_id() {
  thread_local std::uint64_t t_span_id = 0;
  return t_span_id;
}

struct TaskContext {
  std::uint64_t span_id = 0;
  std::uint32_t profile_node = prof::Profiler::kRootNode;
  CostPhase phase = CostPhase::kUnattributed;

  static TaskContext capture() {
    return TaskContext{current_span_id(), prof::Profiler::current_node(),
                       CostLedger::current_phase()};
  }
};

class TaskContextScope {
 public:
  explicit TaskContextScope(const TaskContext& ctx)
      : saved_span_(current_span_id()),
        saved_node_(prof::Profiler::current_node()),
        saved_phase_(CostLedger::current_phase()) {
    current_span_id() = ctx.span_id;
    prof::Profiler::current_node() = ctx.profile_node;
    CostLedger::current_phase() = ctx.phase;
  }
  ~TaskContextScope() {
    current_span_id() = saved_span_;
    prof::Profiler::current_node() = saved_node_;
    CostLedger::current_phase() = saved_phase_;
  }
  TaskContextScope(const TaskContextScope&) = delete;
  TaskContextScope& operator=(const TaskContextScope&) = delete;

 private:
  std::uint64_t saved_span_;
  std::uint32_t saved_node_;
  CostPhase saved_phase_;
};

/// Wraps a callable so it runs under the context captured *now* (at the
/// submission site, on the submitting thread). The wrapper is copyable iff
/// the callable is, and forwards the callable's return value.
template <typename F>
auto propagate_context(F fn) {
  return [ctx = TaskContext::capture(), fn = std::move(fn)]() mutable {
    TaskContextScope scope(ctx);
    return fn();
  };
}

}  // namespace liberate::obs
