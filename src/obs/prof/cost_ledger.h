// cost_ledger.h — per-phase attribution of the paper's scarce resources.
//
// The paper's unit of cost is the probe round (~75 rounds for a full
// characterization, 5 for the incremental readapt ladder). The ledger
// answers "where did my rounds go": a fixed phase × kind matrix of sharded
// counters, where the *phase* is ambient per-thread state (installed by
// CostLedger::PhaseScope, propagated across pool submissions by
// obs::TaskContextScope) and the *kind* is ticked at the few chokepoints
// that spend the resource — ReplayRunner::run for rounds, the scheduler's
// submission paths for probes, the evasion shim for mutated packets, and
// DpiEngine::run_match for match ops.
//
// Writers are relaxed sharded adds (shard.h); snapshot() merges exactly.
// Phase names are stable and exported in enum order, so snapshots of a
// deterministic run are themselves deterministic. Level-independent like
// every obs class; gating lives in the obs.h macros only.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <string>

#include "obs/shard.h"

namespace liberate::obs {

enum class CostPhase : std::uint8_t {
  kUnattributed = 0,   // no phase scope open (startup, tests, misc)
  kDetection,          // analysis phase 1: differentiation detection
  kBlinding,           // blinding-oracle probes inside characterization
  kCharacterization,   // analysis phase 2 (minus blinding probes)
  kEvaluation,         // analysis phase 3: technique evaluation
  kReadapt,            // incremental readapt ladder (deploy)
  kFleet,              // live fleet waves (deploy)
  kCount_,
};

enum class CostKind : std::uint8_t {
  kRounds = 0,         // replay rounds executed
  kProbes,             // probe requests submitted to the scheduler
  kMutatedPackets,     // packets rewritten/injected by the evasion shim
  kMatchOps,           // DPI match invocations
  kCount_,
};

inline constexpr std::size_t kCostPhases =
    static_cast<std::size_t>(CostPhase::kCount_);
inline constexpr std::size_t kCostKinds =
    static_cast<std::size_t>(CostKind::kCount_);

inline const char* cost_phase_name(CostPhase p) {
  switch (p) {
    case CostPhase::kUnattributed: return "unattributed";
    case CostPhase::kDetection: return "detection";
    case CostPhase::kBlinding: return "blinding";
    case CostPhase::kCharacterization: return "characterization";
    case CostPhase::kEvaluation: return "evaluation";
    case CostPhase::kReadapt: return "readapt";
    case CostPhase::kFleet: return "fleet";
    case CostPhase::kCount_: break;
  }
  return "?";
}

inline const char* cost_kind_name(CostKind k) {
  switch (k) {
    case CostKind::kRounds: return "rounds";
    case CostKind::kProbes: return "probes";
    case CostKind::kMutatedPackets: return "mutated_packets";
    case CostKind::kMatchOps: return "match_ops";
    case CostKind::kCount_: break;
  }
  return "?";
}

/// Merged phase × kind totals; plain value, safe to serialize or diff.
struct CostLedgerSnapshot {
  std::array<std::array<std::uint64_t, kCostKinds>, kCostPhases> totals{};

  std::uint64_t at(CostPhase p, CostKind k) const {
    return totals[static_cast<std::size_t>(p)][static_cast<std::size_t>(k)];
  }
  std::uint64_t kind_total(CostKind k) const {
    std::uint64_t sum = 0;
    for (const auto& row : totals) sum += row[static_cast<std::size_t>(k)];
    return sum;
  }
  std::uint64_t phase_total(CostPhase p) const {
    std::uint64_t sum = 0;
    for (std::uint64_t v : totals[static_cast<std::size_t>(p)]) sum += v;
    return sum;
  }
};

class CostLedger {
 public:
  static CostLedger& instance() {
    static CostLedger ledger;
    return ledger;
  }

  /// The calling thread's ambient phase. Nested scopes override (a full
  /// analysis launched from the readapt ladder attributes its rounds to
  /// its own detection/characterization/evaluation phases).
  static CostPhase& current_phase() {
    thread_local CostPhase t_phase = CostPhase::kUnattributed;
    return t_phase;
  }

  class PhaseScope {
   public:
    explicit PhaseScope(CostPhase phase) : saved_(current_phase()) {
      current_phase() = phase;
    }
    ~PhaseScope() { current_phase() = saved_; }
    PhaseScope(const PhaseScope&) = delete;
    PhaseScope& operator=(const PhaseScope&) = delete;

   private:
    CostPhase saved_;
  };

  void set_enabled(bool on) { enabled_.store(on, std::memory_order_relaxed); }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  void tick(CostKind kind, std::uint64_t n) {
    if (!enabled()) return;
    cells_[static_cast<std::size_t>(current_phase())]
          [static_cast<std::size_t>(kind)][shard_index()]
              .v.fetch_add(n, std::memory_order_relaxed);
  }

  CostLedgerSnapshot snapshot() const {
    CostLedgerSnapshot snap;
    for (std::size_t p = 0; p < kCostPhases; ++p) {
      for (std::size_t k = 0; k < kCostKinds; ++k) {
        std::uint64_t sum = 0;
        for (const ShardCell& c : cells_[p][k]) {
          sum += c.v.load(std::memory_order_relaxed);
        }
        snap.totals[p][k] = sum;
      }
    }
    return snap;
  }

  void reset() {
    for (auto& row : cells_) {
      for (auto& kinds : row) {
        for (ShardCell& c : kinds) c.v.store(0, std::memory_order_relaxed);
      }
    }
  }

 private:
  CostLedger() = default;

  std::array<std::array<std::array<ShardCell, kShards>, kCostKinds>,
             kCostPhases>
      cells_{};
  std::atomic<bool> enabled_{true};
};

}  // namespace liberate::obs
