// export.h — profile-tree and cost-ledger exporters.
//
// Three formats:
//   * write_profile_json()/profile_to_json() — the JSON block embedded in
//     analysis reports and served at /profile.json. `include_wall` controls
//     whether wall-clock totals appear (off for deterministic comparisons).
//   * profile_collapsed() — Brendan Gregg collapsed-stack lines
//     ("core.phase.detect;core.round;core.replay 1234\n"), one line per
//     tree node with a nonzero value, DFS order with children sorted by
//     name. Feed straight into flamegraph.pl.
//   * cost_ledger_prometheus()/write_cost_ledger_json() — the phase × kind
//     matrix as labeled Prometheus counters / a JSON object.
#pragma once

#include <string>

#include "obs/prof/cost_ledger.h"
#include "obs/prof/profiler.h"
#include "util/json.h"

namespace liberate::obs::prof {

inline void write_profile_json(JsonWriter& w, const ProfileNode& node,
                               bool include_wall) {
  w.begin_object();
  w.key("name").value(node.name);
  w.key("count").value(node.count);
  w.key("sim_us").value(node.sim_us);
  w.key("self_sim_us").value(node.self_sim_us);
  if (include_wall) {
    w.key("wall_ns").value(node.wall_ns);
    w.key("self_wall_ns").value(node.self_wall_ns);
  }
  w.key("children").begin_array();
  for (const ProfileNode& child : node.children) {
    write_profile_json(w, child, include_wall);
  }
  w.end_array();
  w.end_object();
}

inline void write_profile_json(JsonWriter& w, const ProfileSnapshot& snap,
                               bool include_wall = true) {
  w.begin_object();
  w.key("node_count").value(snap.node_count);
  w.key("dropped").value(snap.dropped);
  w.key("tree");
  write_profile_json(w, snap.root, include_wall);
  w.end_object();
}

inline std::string profile_to_json(const ProfileSnapshot& snap,
                                   bool include_wall = true) {
  JsonWriter w;
  write_profile_json(w, snap, include_wall);
  return w.take();
}

enum class CollapsedMetric {
  kSelfSimUs,   // exclusive sim-clock microseconds (the deterministic view)
  kSelfWallNs,  // exclusive wall-clock nanoseconds
  kCount,       // call counts
};

inline void collapse_node(const ProfileNode& node, const std::string& prefix,
                          CollapsedMetric metric, std::string& out) {
  std::string stack;
  if (!node.name.empty()) {
    stack = prefix.empty() ? node.name : prefix + ";" + node.name;
    std::uint64_t v = 0;
    switch (metric) {
      case CollapsedMetric::kSelfSimUs: v = node.self_sim_us; break;
      case CollapsedMetric::kSelfWallNs: v = node.self_wall_ns; break;
      case CollapsedMetric::kCount: v = node.count; break;
    }
    if (v > 0) {
      out += stack;
      out += ' ';
      out += std::to_string(v);
      out += '\n';
    }
  }
  for (const ProfileNode& child : node.children) {
    collapse_node(child, stack, metric, out);
  }
}

inline std::string profile_collapsed(
    const ProfileSnapshot& snap,
    CollapsedMetric metric = CollapsedMetric::kSelfSimUs) {
  std::string out;
  collapse_node(snap.root, std::string(), metric, out);
  return out;
}

// ---- cost ledger ----

inline std::string cost_ledger_prometheus(const CostLedgerSnapshot& snap) {
  std::string out = "# TYPE liberate_cost_total counter\n";
  for (std::size_t p = 0; p < kCostPhases; ++p) {
    for (std::size_t k = 0; k < kCostKinds; ++k) {
      out += "liberate_cost_total{phase=\"";
      out += cost_phase_name(static_cast<CostPhase>(p));
      out += "\",kind=\"";
      out += cost_kind_name(static_cast<CostKind>(k));
      out += "\"} ";
      out += std::to_string(snap.totals[p][k]);
      out += '\n';
    }
  }
  return out;
}

inline void write_cost_ledger_json(JsonWriter& w,
                                   const CostLedgerSnapshot& snap) {
  w.begin_object();
  w.key("phases").begin_object();
  for (std::size_t p = 0; p < kCostPhases; ++p) {
    w.key(cost_phase_name(static_cast<CostPhase>(p))).begin_object();
    for (std::size_t k = 0; k < kCostKinds; ++k) {
      w.key(cost_kind_name(static_cast<CostKind>(k))).value(snap.totals[p][k]);
    }
    w.end_object();
  }
  w.end_object();
  w.key("totals").begin_object();
  for (std::size_t k = 0; k < kCostKinds; ++k) {
    w.key(cost_kind_name(static_cast<CostKind>(k)))
        .value(snap.kind_total(static_cast<CostKind>(k)));
  }
  w.end_object();
  w.end_object();
}

}  // namespace liberate::obs::prof
