// profiler.h — span-fed hierarchical profiler.
//
// Every ScopedSpan enter/exit feeds a global profile tree: nodes are
// interned by (parent node, span name), so the tree mirrors the dynamic
// span nesting, and each node accumulates call count, inclusive sim-clock
// microseconds, and inclusive wall-clock nanoseconds into per-worker
// cache-line-sharded cells (same scheme as metrics/HDR shards — relaxed
// adds on the hot path, exact merge on snapshot).
//
// Determinism: node *ids* depend on interning order and are never exported.
// snapshot() re-keys the tree by name and sorts children lexicographically,
// so the exported structure, call counts, and sim-clock totals are
// byte-identical across worker counts and match backends (wall-clock totals
// are real time and are excluded from deterministic comparisons).
//
// Like every obs class, the profiler is level-independent — compile-time
// gating lives only in the obs.h macros, keeping mixed-level TUs ODR-safe.
#pragma once

#include <algorithm>
#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "obs/shard.h"

namespace liberate::obs::prof {

/// Merged, deterministic view of one profile-tree node. `self_*` is
/// inclusive minus the children's inclusive total, clamped at zero —
/// parallel children of a sim-clock span can legitimately accumulate more
/// virtual time than their parent span observed.
struct ProfileNode {
  std::string name;
  std::uint64_t count = 0;
  std::uint64_t sim_us = 0;        // inclusive sim-clock time
  std::uint64_t wall_ns = 0;       // inclusive wall-clock time
  std::uint64_t self_sim_us = 0;   // exclusive sim-clock time
  std::uint64_t self_wall_ns = 0;  // exclusive wall-clock time
  std::vector<ProfileNode> children;  // sorted by name
};

struct ProfileSnapshot {
  ProfileNode root;             // synthetic root, name ""
  std::uint64_t node_count = 0;  // real nodes (root excluded)
  std::uint64_t dropped = 0;     // enters dropped at node capacity
};

class Profiler {
 public:
  /// Node id space: 0 is the synthetic root (also "no node"), kInvalidNode
  /// marks a disabled/dropped enter whose exit must be a no-op.
  static constexpr std::uint32_t kRootNode = 0;
  static constexpr std::uint32_t kInvalidNode = 0xffffffffu;
  static constexpr std::size_t kMaxNodes = 512;

  struct Token {
    std::uint32_t node = kInvalidNode;  // entered node
    std::uint32_t prev = kRootNode;     // ambient node to restore on exit
  };

  static Profiler& instance() {
    static Profiler p;
    return p;
  }

  /// The calling thread's ambient profile node — the interned position the
  /// next child span attaches under. Propagated across pool submissions by
  /// obs::TaskContextScope (prof/context.h).
  static std::uint32_t& current_node() {
    thread_local std::uint32_t t_node = kRootNode;
    return t_node;
  }

  /// Runtime toggle (independent of compile-time gating) so benches can
  /// measure the enabled-vs-disabled delta in one binary.
  void set_enabled(bool on) { enabled_.store(on, std::memory_order_relaxed); }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  Token enter(const std::string& name) {
    Token tok;
    tok.prev = current_node();
    if (!enabled()) return tok;
    tok.node = intern(tok.prev, name);
    if (tok.node != kInvalidNode) current_node() = tok.node;
    return tok;
  }

  void exit(const Token& tok, std::uint64_t sim_us, std::uint64_t wall_ns) {
    if (tok.node == kInvalidNode) return;
    Node* n = nodes_[tok.node].load(std::memory_order_acquire);
    if (n != nullptr) {
      Cell& cell = n->cells[shard_index()];
      cell.count.fetch_add(1, std::memory_order_relaxed);
      cell.sim_us.fetch_add(sim_us, std::memory_order_relaxed);
      cell.wall_ns.fetch_add(wall_ns, std::memory_order_relaxed);
    }
    current_node() = tok.prev;
  }

  /// Exact merge of every shard cell into a deterministic tree.
  ProfileSnapshot snapshot() const {
    std::lock_guard<std::mutex> lock(mutex_);
    struct Merged {
      std::uint32_t parent;
      std::string name;
      std::uint64_t count = 0, sim_us = 0, wall_ns = 0;
      std::vector<std::uint32_t> children;
    };
    std::vector<Merged> merged(count_);
    for (std::uint32_t id = 0; id < count_; ++id) {
      const Node* n = nodes_[id].load(std::memory_order_acquire);
      Merged& m = merged[id];
      m.parent = n->parent;
      m.name = n->name;
      for (const Cell& c : n->cells) {
        m.count += c.count.load(std::memory_order_relaxed);
        m.sim_us += c.sim_us.load(std::memory_order_relaxed);
        m.wall_ns += c.wall_ns.load(std::memory_order_relaxed);
      }
      if (id != kRootNode) merged[n->parent].children.push_back(id);
    }

    ProfileSnapshot snap;
    snap.node_count = count_ > 0 ? count_ - 1 : 0;
    snap.dropped = dropped_.load(std::memory_order_relaxed);
    if (count_ == 0) return snap;

    // Recursive build with children sorted by name (interning guarantees
    // sibling names are unique, so the order is total and deterministic).
    struct Builder {
      const std::vector<Merged>& merged;
      ProfileNode build(std::uint32_t id) const {
        const Merged& m = merged[id];
        ProfileNode out;
        out.name = m.name;
        out.count = m.count;
        out.sim_us = m.sim_us;
        out.wall_ns = m.wall_ns;
        std::vector<std::uint32_t> kids = m.children;
        std::sort(kids.begin(), kids.end(),
                  [&](std::uint32_t a, std::uint32_t b) {
                    return merged[a].name < merged[b].name;
                  });
        std::uint64_t child_sim = 0, child_wall = 0;
        out.children.reserve(kids.size());
        for (std::uint32_t kid : kids) {
          out.children.push_back(build(kid));
          child_sim += out.children.back().sim_us;
          child_wall += out.children.back().wall_ns;
        }
        out.self_sim_us = out.sim_us > child_sim ? out.sim_us - child_sim : 0;
        out.self_wall_ns =
            out.wall_ns > child_wall ? out.wall_ns - child_wall : 0;
        return out;
      }
    };
    snap.root = Builder{merged}.build(kRootNode);
    return snap;
  }

  void reset() {
    std::lock_guard<std::mutex> lock(mutex_);
    for (std::uint32_t id = 1; id < count_; ++id) {
      delete nodes_[id].exchange(nullptr, std::memory_order_acq_rel);
    }
    Node* root = nodes_[kRootNode].load(std::memory_order_acquire);
    for (Cell& c : root->cells) {
      c.count.store(0, std::memory_order_relaxed);
      c.sim_us.store(0, std::memory_order_relaxed);
      c.wall_ns.store(0, std::memory_order_relaxed);
    }
    index_.clear();
    count_ = 1;
    dropped_.store(0, std::memory_order_relaxed);
  }

  std::uint64_t node_count() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return count_ > 0 ? count_ - 1 : 0;
  }

 private:
  struct alignas(64) Cell {
    std::atomic<std::uint64_t> count{0};
    std::atomic<std::uint64_t> sim_us{0};
    std::atomic<std::uint64_t> wall_ns{0};
  };
  struct Node {
    std::uint32_t parent = kRootNode;
    std::string name;
    std::array<Cell, kShards> cells;
  };

  Profiler() {
    nodes_[kRootNode].store(new Node{kRootNode, std::string(), {}},
                            std::memory_order_release);
    count_ = 1;
  }

  std::uint32_t intern(std::uint32_t parent, const std::string& name) {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = index_.find({parent, name});
    if (it != index_.end()) return it->second;
    if (count_ >= kMaxNodes) {
      dropped_.fetch_add(1, std::memory_order_relaxed);
      return kInvalidNode;
    }
    std::uint32_t id = count_;
    nodes_[id].store(new Node{parent, name, {}}, std::memory_order_release);
    count_ += 1;
    index_.emplace(std::make_pair(parent, name), id);
    return id;
  }

  mutable std::mutex mutex_;
  // Fixed slot array so the exit hot path can load a node pointer without
  // taking the interning mutex (a growing vector would race its readers).
  std::array<std::atomic<Node*>, kMaxNodes> nodes_{};
  std::map<std::pair<std::uint32_t, std::string>, std::uint32_t> index_;
  std::uint32_t count_ = 0;  // slots in use, including the root
  std::atomic<std::uint64_t> dropped_{0};
  std::atomic<bool> enabled_{true};
};

}  // namespace liberate::obs::prof
