// chrome_trace.h — export a Snapshot as Chrome trace-event JSON.
//
// The output is the "JSON Object Format" understood by chrome://tracing and
// Perfetto: {"traceEvents":[...]}. PR 2's sim-clock spans become complete
// ("ph":"X") events on one track per pool worker; provenance decision
// records and lineage edges become instant ("ph":"i") events on a per-scope
// track, so a parallel run's rounds line up side by side with the packet
// mutations and rule evaluations that happened inside them. Timestamps are
// simulation microseconds — the trace is a replayable artifact, not a wall
// clock profile.
#pragma once

#include <map>
#include <string>

#include "obs/snapshot.h"
#include "util/json.h"

namespace liberate::obs::prov {

inline void write_chrome_trace(JsonWriter& w, const Snapshot& snap) {
  // Scope ids are 64-bit fingerprints; tracks ("tid") are small ints. Map
  // scopes to tracks in sorted order so numbering is deterministic.
  std::map<std::uint64_t, int> scope_tid;
  for (const LedgerSnapshot& led : snap.provenance.ledgers) {
    scope_tid.emplace(led.scope, 0);
  }
  int next_tid = 1000;  // provenance tracks start above worker tracks
  for (auto& [scope, tid] : scope_tid) tid = next_tid++;

  w.begin_object();
  w.key("traceEvents").begin_array();

  // Track-naming metadata.
  w.begin_object();
  w.key("name").value("process_name");
  w.key("ph").value("M");
  w.key("pid").value(1);
  w.key("args").begin_object().key("name").value("liberate").end_object();
  w.end_object();
  for (const auto& [scope, tid] : scope_tid) {
    w.begin_object();
    w.key("name").value("thread_name");
    w.key("ph").value("M");
    w.key("pid").value(1);
    w.key("tid").value(tid);
    w.key("args")
        .begin_object()
        .key("name")
        .value("prov scope " + id_hex(scope))
        .end_object();
    w.end_object();
  }

  // Spans: complete events, one track per worker (-1 = main thread -> 0).
  for (const SpanRecord& s : snap.spans) {
    w.begin_object();
    w.key("name").value(s.name);
    w.key("cat").value("span");
    w.key("ph").value("X");
    w.key("ts").value(s.start_us);
    w.key("dur").value(s.end_us - s.start_us);
    w.key("pid").value(1);
    w.key("tid").value(s.worker + 1);
    w.key("args").begin_object();
    w.key("id").value(s.id);
    w.key("parent").value(s.parent_id);
    w.end_object();
    w.end_object();
  }

  // Provenance decision records: instants on their scope's track.
  for (const LedgerSnapshot& led : snap.provenance.ledgers) {
    int tid = scope_tid[led.scope];
    for (const ProvRecord& r : led.records) {
      w.begin_object();
      w.key("name").value(r.kind);
      w.key("cat").value("prov");
      w.key("ph").value("i");
      w.key("s").value("t");  // thread-scoped instant
      w.key("ts").value(r.ts_us);
      w.key("pid").value(1);
      w.key("tid").value(tid);
      w.key("args").begin_object();
      w.key("flow").value(led.flow.to_string());
      if (r.pkt != 0) w.key("pkt").value(id_hex(r.pkt));
      for (const EventField& f : r.fields) w.key(f.key).value(f.value);
      w.end_object();
      w.end_object();
    }
  }

  // Lineage edges: process-scoped instants (they belong to no one track).
  for (const EdgeInfo& e : snap.provenance.edges) {
    w.begin_object();
    w.key("name").value("hop:" + e.kind);
    w.key("cat").value("prov");
    w.key("ph").value("i");
    w.key("s").value("p");
    w.key("ts").value(e.ts_us);
    w.key("pid").value(1);
    w.key("tid").value(0);
    w.key("args").begin_object();
    w.key("parent").value(id_hex(e.parent));
    w.key("child").value(id_hex(e.child));
    w.key("actor").value(e.actor);
    if (!e.detail.empty()) w.key("detail").value(e.detail);
    w.end_object();
    w.end_object();
  }

  w.end_array();
  w.key("displayTimeUnit").value("ms");
  w.end_object();
}

inline std::string to_chrome_trace_json(const Snapshot& snap) {
  JsonWriter w;
  write_chrome_trace(w, snap);
  return w.take();
}

}  // namespace liberate::obs::prov
