// explain.h — turn a flow's provenance into a causal story.
//
// explain_verdict(flow) picks the flow's most decisive ledger (the one whose
// latest verdict record is newest; ties broken by scope so parallel and
// serial runs agree), then renders two views of the same data:
//
//   * text — a human-readable chain for terminals:
//       verdict: classified as skype by rule testbed-skype-stun
//       pkt 77bb.. (len 52, udp) <- reorder of pkt 9f3a.. by reorder/udp
//   * json — the machine-readable schema documented in docs/tracing.md.
//
// Both renderings are pure functions of recorder state: no clocks, no
// worker indices, no iteration-order dependence — the property the
// explain-determinism regression test (tests/core) pins across pool sizes.
#pragma once

#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "obs/provenance/recorder.h"
#include "util/json.h"

namespace liberate::obs::prov {

struct Explanation {
  bool found = false;
  FlowKey flow;
  std::uint64_t scope = 0;
  std::string verdict_class;   // traffic class, "" if never classified
  std::string verdict_rule;    // matched rule name
  std::string verdict_action;  // middlebox action ("block", "forward", ...)
  std::string text;
  std::string json;
};

namespace detail {

inline const char* field(const ProvRecord& r, std::string_view key) {
  for (const EventField& f : r.fields) {
    if (f.key == key) return f.value.c_str();
  }
  return nullptr;
}

/// Depth-first lineage walk (child -> parents), bounded and cycle-safe.
inline void walk_lineage_text(const ProvenanceRecorder& rec, std::uint64_t id,
                              int depth, int max_depth,
                              std::set<std::uint64_t>& seen,
                              std::string& out) {
  if (depth > max_depth) return;
  for (const EdgeInfo& e : rec.parents_of(id)) {
    out.append(static_cast<std::size_t>(4 + depth * 2), ' ');
    out += "<- " + e.kind + " of pkt " + id_hex(e.parent);
    if (auto n = rec.node(e.parent)) {
      out += " (len " + std::to_string(n->size) + ", " + n->kind + ")";
    }
    if (!e.detail.empty()) out += " [" + e.detail + "]";
    if (!e.actor.empty()) out += " by " + e.actor;
    out += "\n";
    if (seen.insert(e.parent).second) {
      walk_lineage_text(rec, e.parent, depth + 1, max_depth, seen, out);
    }
  }
}

inline void walk_lineage_json(const ProvenanceRecorder& rec, std::uint64_t id,
                              int depth, int max_depth,
                              std::set<std::uint64_t>& seen, JsonWriter& w) {
  w.begin_array();
  if (depth <= max_depth) {
    for (const EdgeInfo& e : rec.parents_of(id)) {
      w.begin_object();
      w.key("pkt").value(id_hex(e.parent));
      w.key("hop").value(e.kind);
      w.key("actor").value(e.actor);
      if (!e.detail.empty()) w.key("detail").value(e.detail);
      w.key("ts_us").value(e.ts_us);
      if (auto n = rec.node(e.parent)) {
        w.key("len").value(static_cast<std::uint64_t>(n->size));
        w.key("kind").value(n->kind);
      }
      w.key("parents");
      if (seen.insert(e.parent).second) {
        walk_lineage_json(rec, e.parent, depth + 1, max_depth, seen, w);
      } else {
        w.begin_array();
        w.end_array();
      }
      w.end_object();
    }
  }
  w.end_array();
}

}  // namespace detail

/// Render one ledger (records + packet lineage) as an Explanation.
inline Explanation explain_ledger(const LedgerSnapshot& led,
                                  const ProvenanceRecorder& rec =
                                      ProvenanceRecorder::instance(),
                                  int max_depth = 8) {
  Explanation ex;
  ex.found = true;
  ex.flow = led.flow;
  ex.scope = led.scope;

  // The verdict is the newest record that names a traffic class.
  for (auto it = led.records.rbegin(); it != led.records.rend(); ++it) {
    const char* cls = detail::field(*it, "class");
    if (cls == nullptr) continue;
    ex.verdict_class = cls;
    if (const char* rule = detail::field(*it, "rule")) ex.verdict_rule = rule;
    if (const char* act = detail::field(*it, "action")) {
      ex.verdict_action = act;
    }
    if (it->kind == "verdict") break;  // prefer middlebox verdicts
  }

  // --- text rendering -----------------------------------------------------
  std::string& t = ex.text;
  t += "flow " + led.flow.to_string() + "  (scope " + id_hex(led.scope) +
       ", " + std::to_string(led.total) + " records";
  if (led.dropped > 0) t += ", " + std::to_string(led.dropped) + " dropped";
  t += ")\n";
  if (!ex.verdict_class.empty()) {
    t += "verdict: classified as " + ex.verdict_class;
    if (!ex.verdict_rule.empty()) t += " by rule " + ex.verdict_rule;
    if (!ex.verdict_action.empty()) t += " (action: " + ex.verdict_action + ")";
    t += "\n";
  } else {
    t += "verdict: never classified (middlebox blind)\n";
  }
  t += "decision path:\n";
  std::vector<std::uint64_t> pkts;  // distinct, in record order
  for (const ProvRecord& r : led.records) {
    char ts[32];
    std::snprintf(ts, sizeof(ts), "%8llu",
                  static_cast<unsigned long long>(r.ts_us));
    t += "  [" + std::string(ts) + "us] " + r.kind;
    if (r.pkt != 0) {
      t += " pkt " + id_hex(r.pkt);
      bool fresh = true;
      for (std::uint64_t p : pkts) fresh = fresh && p != r.pkt;
      if (fresh) pkts.push_back(r.pkt);
    }
    for (const EventField& f : r.fields) {
      t += " " + f.key + "=" + f.value;
    }
    t += "\n";
  }
  t += "packet lineage:\n";
  bool any_lineage = false;
  for (std::uint64_t id : pkts) {
    std::string sub;
    std::set<std::uint64_t> seen{id};
    detail::walk_lineage_text(rec, id, 0, max_depth, seen, sub);
    if (sub.empty()) continue;
    any_lineage = true;
    t += "  pkt " + id_hex(id);
    if (auto n = rec.node(id)) {
      t += " (len " + std::to_string(n->size) + ", " + n->kind + ")";
    }
    t += "\n" + sub;
  }
  if (!any_lineage) t += "  (all packets original — no mutations recorded)\n";

  // --- json rendering -----------------------------------------------------
  JsonWriter w;
  w.begin_object();
  w.key("flow").value(led.flow.to_string());
  w.key("found").value(true);
  w.key("scope").value(id_hex(led.scope));
  w.key("verdict").begin_object();
  w.key("class").value(ex.verdict_class);
  w.key("rule").value(ex.verdict_rule);
  w.key("action").value(ex.verdict_action);
  w.end_object();
  w.key("records").begin_array();
  for (const ProvRecord& r : led.records) {
    w.begin_object();
    w.key("ts_us").value(r.ts_us);
    w.key("seq").value(r.seq);
    w.key("kind").value(r.kind);
    if (r.pkt != 0) w.key("pkt").value(id_hex(r.pkt));
    w.key("fields").begin_object();
    for (const EventField& f : r.fields) w.key(f.key).value(f.value);
    w.end_object();
    w.end_object();
  }
  w.end_array();
  w.key("records_dropped").value(led.dropped);
  w.key("lineage").begin_array();
  for (std::uint64_t id : pkts) {
    w.begin_object();
    w.key("pkt").value(id_hex(id));
    if (auto n = rec.node(id)) {
      w.key("len").value(static_cast<std::uint64_t>(n->size));
      w.key("kind").value(n->kind);
    }
    w.key("parents");
    std::set<std::uint64_t> seen{id};
    detail::walk_lineage_json(rec, id, 0, max_depth, seen, w);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  ex.json = w.take();
  return ex;
}

/// Explain a flow's verdict from whatever the recorder currently holds.
/// When the flow was replayed in several scopes (parallel rounds), the
/// ledger whose newest classifying record has the largest (ts, seq) wins;
/// remaining ties fall to the lowest scope id — all content-derived, so the
/// winner is the same no matter how many workers ran the rounds.
inline Explanation explain_verdict(const FlowKey& flow,
                                   const ProvenanceRecorder& rec =
                                       ProvenanceRecorder::instance(),
                                   int max_depth = 8) {
  std::vector<LedgerSnapshot> ledgers = rec.ledgers_for(flow);
  if (ledgers.empty()) {
    Explanation ex;
    ex.flow = flow;
    ex.text = "flow " + flow.to_string() + ": no provenance recorded\n";
    ex.json = "{\"flow\":\"" + flow.to_string() + "\",\"found\":false}";
    return ex;
  }
  auto decisiveness = [](const LedgerSnapshot& led) {
    // (has verdict, ts, seq) of the newest classifying record.
    for (auto it = led.records.rbegin(); it != led.records.rend(); ++it) {
      if (detail::field(*it, "class") != nullptr) {
        return std::tuple<int, std::uint64_t, std::uint64_t>(1, it->ts_us,
                                                             it->seq);
      }
    }
    return std::tuple<int, std::uint64_t, std::uint64_t>(0, 0, 0);
  };
  const LedgerSnapshot* best = &ledgers.front();
  auto best_score = decisiveness(*best);
  for (const LedgerSnapshot& led : ledgers) {
    auto score = decisiveness(led);
    if (score > best_score) {  // ledgers are scope-ascending: first wins ties
      best = &led;
      best_score = score;
    }
  }
  return explain_ledger(*best, rec, max_depth);
}

}  // namespace liberate::obs::prov
