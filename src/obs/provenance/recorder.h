// recorder.h — the per-packet provenance flight recorder.
//
// Packets are identified by a content digest of their serialized bytes
// (util/digest FNV lane, 64 bits): identity is derived from the datagram
// itself, so ids are stable across threads, worker counts, and re-runs of
// the same seed — the property the explain-determinism regression test
// pins. Registration is idempotent; a retransmission maps onto the node it
// already has.
//
// Three stores, all bounded:
//   * nodes   — id -> {size, kind}; FIFO eviction past the cap.
//   * edges   — child id -> parent hops ({parent, ts, kind, actor, detail});
//               deduplicated, capped per child. "pkt 7 <- split of pkt 3".
//   * ledgers — per (scope, canonical flow) rings of decision records
//               (rules tried, match offsets, verdicts), bounded like
//               EventLog's ring with exact drop counters.
//
// The *scope* disambiguates parallel replay: every isolated round replays
// the same 10.0.0.1 flow tuple, so a thread-local scope id — set by the
// round scheduler to the content-defined round fingerprint — keeps
// concurrent worlds from interleaving one flow's story. Scope 0 is the
// ambient (serial, non-round) scope.
//
// Like the rest of obs, everything here is level-independent inline code —
// gating lives only in the LIBERATE_PROV_* macros (obs/obs.h), so TUs
// compiled at different levels never disagree on these types.
#pragma once

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <deque>
#include <initializer_list>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <tuple>
#include <unordered_map>
#include <utility>
#include <vector>

#include "obs/event_log.h"
#include "util/digest.h"

namespace liberate::obs::prov {

/// Canonical (direction-free) flow key: endpoints are sorted numerically so
/// client->server and server->client packets land in the same ledger.
struct FlowKey {
  std::uint32_t ip_a = 0;
  std::uint32_t ip_b = 0;
  std::uint16_t port_a = 0;
  std::uint16_t port_b = 0;
  std::uint8_t proto = 0;
  bool valid = false;

  bool operator==(const FlowKey& o) const {
    return ip_a == o.ip_a && ip_b == o.ip_b && port_a == o.port_a &&
           port_b == o.port_b && proto == o.proto && valid == o.valid;
  }
  bool operator<(const FlowKey& o) const {
    auto t = [](const FlowKey& k) {
      return std::tuple(k.valid, k.ip_a, k.port_a, k.ip_b, k.port_b, k.proto);
    };
    return t(*this) < t(o);
  }

  std::string to_string() const {
    if (!valid) return "<no-flow>";
    char buf[96];
    auto ip = [](std::uint32_t v, char* out) {
      std::snprintf(out, 16, "%u.%u.%u.%u", (v >> 24) & 0xff, (v >> 16) & 0xff,
                    (v >> 8) & 0xff, v & 0xff);
    };
    char a[16], b[16];
    ip(ip_a, a);
    ip(ip_b, b);
    const char* p = proto == 6    ? "tcp"
                    : proto == 17 ? "udp"
                    : proto == 1  ? "icmp"
                                  : "?";
    std::snprintf(buf, sizeof(buf), "%s:%u<->%s:%u/%s", a, port_a, b, port_b,
                  p);
    return buf;
  }
};

/// Build a canonical key from one direction's endpoints.
inline FlowKey flow_key(std::uint32_t src_ip, std::uint16_t src_port,
                        std::uint32_t dst_ip, std::uint16_t dst_port,
                        std::uint8_t proto) {
  FlowKey k;
  k.valid = true;
  k.proto = proto;
  if (std::tuple(src_ip, src_port) <= std::tuple(dst_ip, dst_port)) {
    k.ip_a = src_ip;
    k.port_a = src_port;
    k.ip_b = dst_ip;
    k.port_b = dst_port;
  } else {
    k.ip_a = dst_ip;
    k.port_a = dst_port;
    k.ip_b = src_ip;
    k.port_b = src_port;
  }
  return k;
}

/// Minimal raw-IPv4 flow extraction (version/IHL + addresses + transport
/// ports when the header is intact). Deliberately self-contained: obs is
/// below netsim in the layering and must not include its parsers. Returns
/// an invalid key for anything that does not look like a whole IPv4 packet.
inline FlowKey flow_key_of(BytesView datagram) {
  if (datagram.size() < 20) return FlowKey{};
  if ((datagram[0] >> 4) != 4) return FlowKey{};
  std::size_t ihl = static_cast<std::size_t>(datagram[0] & 0x0f) * 4;
  if (ihl < 20 || datagram.size() < ihl) return FlowKey{};
  auto rd32 = [&](std::size_t off) {
    return (static_cast<std::uint32_t>(datagram[off]) << 24) |
           (static_cast<std::uint32_t>(datagram[off + 1]) << 16) |
           (static_cast<std::uint32_t>(datagram[off + 2]) << 8) |
           static_cast<std::uint32_t>(datagram[off + 3]);
  };
  std::uint8_t proto = datagram[9];
  std::uint32_t src = rd32(12), dst = rd32(16);
  std::uint16_t sport = 0, dport = 0;
  // Ports only from the first fragment of TCP/UDP (offset 0, payload >= 4).
  std::uint16_t frag = static_cast<std::uint16_t>((datagram[6] << 8) |
                                                  datagram[7]);
  bool first_fragment = (frag & 0x1fff) == 0;
  if ((proto == 6 || proto == 17) && first_fragment &&
      datagram.size() >= ihl + 4) {
    sport = static_cast<std::uint16_t>((datagram[ihl] << 8) |
                                       datagram[ihl + 1]);
    dport = static_cast<std::uint16_t>((datagram[ihl + 2] << 8) |
                                       datagram[ihl + 3]);
  }
  return flow_key(src, sport, dst, dport, proto);
}

/// Content-derived packet lineage id.
inline std::uint64_t packet_id(BytesView datagram) {
  Digest d;
  d.update(datagram);
  return d.finish().lo;
}

inline std::string id_hex(std::uint64_t id) {
  char buf[20];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(id));
  return buf;
}

struct NodeInfo {
  std::uint64_t id = 0;
  std::uint32_t size = 0;   // serialized datagram length
  std::string kind;         // "tcp" | "udp" | "icmp" | "wire" | ...
};

/// One causal hop: `child` was produced from `parent` by `actor` via `kind`.
struct EdgeInfo {
  std::uint64_t child = 0;
  std::uint64_t parent = 0;
  std::uint64_t ts_us = 0;
  std::string kind;    // "split" | "insert" | "reorder" | "flush" |
                       // "ip-fragment" | "reassembly" | "rewrite"
  std::string actor;   // technique or component name
  std::string detail;  // e.g. "payload[0..8) of parent"
};

/// One decision-path record in a flow's ledger (rule evaluation, skip,
/// verdict, mutation marker). `pkt` links the record to a lineage node when
/// the emitting site had the datagram in hand; 0 means flow-level only.
struct ProvRecord {
  std::uint64_t ts_us = 0;
  std::uint64_t seq = 0;  // arrival order within the ledger
  std::string kind;
  std::uint64_t pkt = 0;
  std::vector<EventField> fields;
};

struct LedgerSnapshot {
  std::uint64_t scope = 0;
  FlowKey flow;
  std::vector<ProvRecord> records;  // oldest -> newest surviving
  std::uint64_t dropped = 0;
  std::uint64_t total = 0;  // exact count including dropped
};

struct ProvSnapshot {
  std::vector<NodeInfo> nodes;       // sorted by id
  std::vector<EdgeInfo> edges;       // sorted by (child, parent, kind)
  std::vector<LedgerSnapshot> ledgers;  // sorted by (scope, flow)
  std::uint64_t nodes_evicted = 0;
  std::uint64_t ledgers_evicted = 0;
  std::uint64_t total_records = 0;
};

class ProvenanceRecorder {
 public:
  static ProvenanceRecorder& instance() {
    static ProvenanceRecorder rec;
    return rec;
  }

  /// The active scope for this thread (0 = ambient). Set via ScopedProvScope.
  static std::uint64_t current_scope() { return scope_slot(); }

  /// Idempotently register a packet node. Returns the lineage id.
  std::uint64_t packet(BytesView datagram, std::string_view kind) {
    std::uint64_t id = packet_id(datagram);
    std::lock_guard<std::mutex> lock(mutex_);
    register_node_locked(id, static_cast<std::uint32_t>(datagram.size()),
                         kind);
    return id;
  }

  /// Record parent -> child causality, digesting both datagrams.
  void edge(std::uint64_t ts_us, BytesView parent, BytesView child,
            std::string_view kind, std::string_view actor,
            std::string_view detail = {}) {
    edge_ids(ts_us, packet_id(parent), static_cast<std::uint32_t>(parent.size()),
             packet_id(child), static_cast<std::uint32_t>(child.size()), kind,
             actor, detail);
  }

  /// Same, for call sites that digested the parent before it was moved.
  void edge_ids(std::uint64_t ts_us, std::uint64_t parent,
                std::uint32_t parent_size, std::uint64_t child,
                std::uint32_t child_size, std::string_view kind,
                std::string_view actor, std::string_view detail = {}) {
    if (parent == child) return;  // pass-through, not a hop
    std::lock_guard<std::mutex> lock(mutex_);
    register_node_locked(parent, parent_size, "wire");
    register_node_locked(child, child_size, "wire");
    auto& hops = edges_[child];
    for (const EdgeInfo& e : hops) {
      if (e.parent == parent && e.kind == kind && e.actor == actor) return;
    }
    if (hops.size() >= kMaxEdgesPerChild) return;
    EdgeInfo e;
    e.child = child;
    e.parent = parent;
    e.ts_us = ts_us;
    e.kind = kind;
    e.actor = actor;
    e.detail = detail;
    hops.push_back(std::move(e));
  }

  /// Append a decision record to the (current scope, flow) ledger.
  void note(std::uint64_t ts_us, const FlowKey& flow, std::string_view kind,
            std::initializer_list<EventField> fields, std::uint64_t pkt = 0) {
    std::lock_guard<std::mutex> lock(mutex_);
    if (max_flows_ == 0) return;
    Ledger& led = ledger_locked(current_scope(), flow);
    ProvRecord r;
    r.ts_us = ts_us;
    r.seq = led.next_seq++;
    r.kind = kind;
    r.pkt = pkt;
    r.fields.assign(fields.begin(), fields.end());
    if (ledger_capacity_ == 0) return;
    if (led.ring.size() >= ledger_capacity_) {
      led.ring.pop_front();
      led.dropped += 1;
    }
    led.ring.push_back(std::move(r));
  }

  /// note() for sites holding the serialized datagram: derives the flow key
  /// and links the record to the packet's lineage node.
  void note_pkt(std::uint64_t ts_us, BytesView datagram, std::string_view kind,
                std::initializer_list<EventField> fields) {
    std::uint64_t id = packet(datagram, "wire");
    note(ts_us, flow_key_of(datagram), kind, fields, id);
  }

  std::optional<NodeInfo> node(std::uint64_t id) const {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = nodes_.find(id);
    if (it == nodes_.end()) return std::nullopt;
    return it->second;
  }

  /// Causal hops into `child`, deterministic order.
  std::vector<EdgeInfo> parents_of(std::uint64_t child) const {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = edges_.find(child);
    if (it == edges_.end()) return {};
    std::vector<EdgeInfo> out = it->second;
    std::sort(out.begin(), out.end(), edge_less);
    return out;
  }

  /// Every ledger recorded for `flow`, across all scopes, sorted by scope.
  std::vector<LedgerSnapshot> ledgers_for(const FlowKey& flow) const {
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<LedgerSnapshot> out;
    for (const auto& [key, led] : ledgers_) {
      if (!(key.second == flow)) continue;
      out.push_back(snapshot_ledger_locked(key, led));
    }
    return out;  // std::map iteration is already (scope, flow)-ordered
  }

  ProvSnapshot snapshot() const {
    std::lock_guard<std::mutex> lock(mutex_);
    ProvSnapshot snap;
    snap.nodes.reserve(nodes_.size());
    for (const auto& [id, n] : nodes_) snap.nodes.push_back(n);
    std::sort(snap.nodes.begin(), snap.nodes.end(),
              [](const NodeInfo& a, const NodeInfo& b) { return a.id < b.id; });
    for (const auto& [child, hops] : edges_) {
      snap.edges.insert(snap.edges.end(), hops.begin(), hops.end());
    }
    std::sort(snap.edges.begin(), snap.edges.end(), edge_less);
    for (const auto& [key, led] : ledgers_) {
      LedgerSnapshot ls = snapshot_ledger_locked(key, led);
      snap.total_records += ls.total;
      snap.ledgers.push_back(std::move(ls));
    }
    snap.nodes_evicted = nodes_evicted_;
    snap.ledgers_evicted = ledgers_evicted_;
    return snap;
  }

  void set_node_capacity(std::size_t cap) {
    std::lock_guard<std::mutex> lock(mutex_);
    node_capacity_ = cap;
    evict_nodes_locked();
  }
  void set_ledger_capacity(std::size_t cap) {
    std::lock_guard<std::mutex> lock(mutex_);
    ledger_capacity_ = cap;
    for (auto& [key, led] : ledgers_) {
      while (led.ring.size() > ledger_capacity_) {
        led.ring.pop_front();
        led.dropped += 1;
      }
    }
  }
  void set_max_flows(std::size_t cap) {
    std::lock_guard<std::mutex> lock(mutex_);
    max_flows_ = cap;
    evict_ledgers_locked();
  }

  void reset() {
    std::lock_guard<std::mutex> lock(mutex_);
    nodes_.clear();
    node_order_.clear();
    edges_.clear();
    ledgers_.clear();
    ledger_order_.clear();
    nodes_evicted_ = 0;
    ledgers_evicted_ = 0;
  }

 private:
  using LedgerKey = std::pair<std::uint64_t, FlowKey>;

  struct Ledger {
    std::deque<ProvRecord> ring;
    std::uint64_t dropped = 0;
    std::uint64_t next_seq = 0;
  };

  ProvenanceRecorder() = default;

  static std::uint64_t& scope_slot() {
    thread_local std::uint64_t t_scope = 0;
    return t_scope;
  }
  friend class ScopedProvScope;

  static bool edge_less(const EdgeInfo& a, const EdgeInfo& b) {
    return std::tuple(a.child, a.parent, a.kind, a.actor) <
           std::tuple(b.child, b.parent, b.kind, b.actor);
  }

  void register_node_locked(std::uint64_t id, std::uint32_t size,
                            std::string_view kind) {
    auto [it, inserted] = nodes_.try_emplace(id);
    if (inserted) {
      it->second.id = id;
      it->second.size = size;
      it->second.kind = kind;
      node_order_.push_back(id);
      evict_nodes_locked();
    } else if (it->second.kind == "wire" && kind != "wire") {
      it->second.kind = kind;  // upgrade a stub to its real origin kind
    }
  }

  void evict_nodes_locked() {
    while (nodes_.size() > node_capacity_ && !node_order_.empty()) {
      std::uint64_t victim = node_order_.front();
      node_order_.pop_front();
      nodes_.erase(victim);
      edges_.erase(victim);
      nodes_evicted_ += 1;
    }
  }

  Ledger& ledger_locked(std::uint64_t scope, const FlowKey& flow) {
    LedgerKey key{scope, flow};
    auto it = ledgers_.find(key);
    if (it == ledgers_.end()) {
      ledgers_.emplace(key, Ledger{});
      ledger_order_.push_back(key);
      evict_ledgers_locked();  // with max_flows_ >= 1 the victim is older
      it = ledgers_.find(key);
    }
    return it->second;
  }

  void evict_ledgers_locked() {
    while (ledgers_.size() > max_flows_ && !ledger_order_.empty()) {
      LedgerKey victim = ledger_order_.front();
      ledger_order_.pop_front();
      if (ledgers_.erase(victim) > 0) ledgers_evicted_ += 1;
    }
  }

  LedgerSnapshot snapshot_ledger_locked(const LedgerKey& key,
                                        const Ledger& led) const {
    LedgerSnapshot ls;
    ls.scope = key.first;
    ls.flow = key.second;
    ls.records.assign(led.ring.begin(), led.ring.end());
    ls.dropped = led.dropped;
    ls.total = led.next_seq;
    return ls;
  }

  static constexpr std::size_t kMaxEdgesPerChild = 16;

  mutable std::mutex mutex_;
  std::unordered_map<std::uint64_t, NodeInfo> nodes_;
  std::deque<std::uint64_t> node_order_;  // FIFO for eviction
  std::unordered_map<std::uint64_t, std::vector<EdgeInfo>> edges_;
  std::map<LedgerKey, Ledger> ledgers_;
  std::deque<LedgerKey> ledger_order_;
  std::size_t node_capacity_ = 65536;
  std::size_t ledger_capacity_ = 512;
  std::size_t max_flows_ = 1024;
  std::uint64_t nodes_evicted_ = 0;
  std::uint64_t ledgers_evicted_ = 0;
};

/// RAII scope binding for the calling thread; the round scheduler opens one
/// per isolated round with the round's content-defined fingerprint.
class ScopedProvScope {
 public:
  explicit ScopedProvScope(std::uint64_t scope)
      : prev_(ProvenanceRecorder::scope_slot()) {
    ProvenanceRecorder::scope_slot() = scope;
  }
  ~ScopedProvScope() { ProvenanceRecorder::scope_slot() = prev_; }

  ScopedProvScope(const ScopedProvScope&) = delete;
  ScopedProvScope& operator=(const ScopedProvScope&) = delete;

 private:
  std::uint64_t prev_;
};

}  // namespace liberate::obs::prov
