#include "obs/serve/obs_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "obs/snapshot.h"
#include "obs/timeseries.h"

namespace liberate::obs::serve {

namespace {

std::string status_line(int status) {
  switch (status) {
    case 200: return "HTTP/1.0 200 OK";
    case 400: return "HTTP/1.0 400 Bad Request";
    case 404: return "HTTP/1.0 404 Not Found";
    case 405: return "HTTP/1.0 405 Method Not Allowed";
    case 431: return "HTTP/1.0 431 Request Header Fields Too Large";
    default: return "HTTP/1.0 500 Internal Server Error";
  }
}

std::string make_response(int status, const std::string& content_type,
                          const std::string& body) {
  std::string out = status_line(status);
  out += "\r\nContent-Type: " + content_type;
  out += "\r\nContent-Length: " + std::to_string(body.size());
  out += "\r\nConnection: close\r\n\r\n";
  out += body;
  return out;
}

bool send_all(int fd, const std::string& data) {
  std::size_t off = 0;
  while (off < data.size()) {
#ifdef MSG_NOSIGNAL
    ssize_t n = ::send(fd, data.data() + off, data.size() - off, MSG_NOSIGNAL);
#else
    ssize_t n = ::send(fd, data.data() + off, data.size() - off, 0);
#endif
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace

ObsServer::ObsServer(ObsServerOptions options) : options_(options) {}

ObsServer::~ObsServer() { stop(); }

bool ObsServer::start() {
  if (running()) return true;
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    error_ = std::string("socket: ") + std::strerror(errno);
    return false;
  }
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);  // loopback only, by design
  addr.sin_port = htons(options_.port);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    error_ = std::string("bind: ") + std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  if (::listen(listen_fd_, options_.backlog) < 0) {
    error_ = std::string("listen: ") + std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) ==
      0) {
    port_ = ntohs(addr.sin_port);
  }
  stop_.store(false, std::memory_order_release);
  running_.store(true, std::memory_order_release);
  thread_ = std::thread([this] { serve_loop(); });
  return true;
}

void ObsServer::stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) {
    if (thread_.joinable()) thread_.join();
    return;
  }
  stop_.store(true, std::memory_order_release);
  if (thread_.joinable()) thread_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

void ObsServer::serve_loop() {
  while (!stop_.load(std::memory_order_acquire)) {
    pollfd pfd{};
    pfd.fd = listen_fd_;
    pfd.events = POLLIN;
    int rc = ::poll(&pfd, 1, options_.poll_interval_ms);
    if (rc < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (rc == 0 || (pfd.revents & POLLIN) == 0) continue;
    int client = ::accept(listen_fd_, nullptr, nullptr);
    if (client < 0) continue;
    timeval tv{};
    tv.tv_sec = options_.io_timeout_ms / 1000;
    tv.tv_usec = (options_.io_timeout_ms % 1000) * 1000;
    ::setsockopt(client, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    ::setsockopt(client, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
    handle_client(client);
    ::close(client);
  }
}

void ObsServer::handle_client(int client_fd) {
  // Read until the end of the request head, the size cap, or timeout. The
  // body (if any) is ignored — every endpoint is a GET.
  std::string req;
  char buf[1024];
  bool have_head = false;
  while (req.size() < options_.max_request_bytes) {
    ssize_t n = ::recv(client_fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    req.append(buf, static_cast<std::size_t>(n));
    // Cap check before the terminator check: a head that exceeds the cap is
    // oversized even when it arrives (terminator and all) in one read.
    if (req.size() > options_.max_request_bytes) break;
    if (req.find("\r\n\r\n") != std::string::npos ||
        req.find("\n\n") != std::string::npos) {
      have_head = true;
      break;
    }
  }
  requests_.fetch_add(1, std::memory_order_relaxed);

  if (!have_head && req.size() >= options_.max_request_bytes) {
    send_all(client_fd,
             make_response(431, "text/plain", "request too large\n"));
    return;
  }
  std::size_t line_end = req.find_first_of("\r\n");
  std::string line =
      line_end == std::string::npos ? req : req.substr(0, line_end);
  // "GET <path> HTTP/1.x" — tolerate a missing version (HTTP/0.9 style).
  std::size_t sp1 = line.find(' ');
  if (sp1 == std::string::npos) {
    send_all(client_fd, make_response(400, "text/plain", "bad request\n"));
    return;
  }
  std::string method = line.substr(0, sp1);
  std::size_t sp2 = line.find(' ', sp1 + 1);
  std::string target = sp2 == std::string::npos
                           ? line.substr(sp1 + 1)
                           : line.substr(sp1 + 1, sp2 - sp1 - 1);
  if (method != "GET") {
    send_all(client_fd,
             make_response(405, "text/plain", "method not allowed\n"));
    return;
  }
  std::string content_type, body;
  int status = render(target, &content_type, &body);
  send_all(client_fd, make_response(status, content_type, body));
}

int ObsServer::render(const std::string& target, std::string* content_type,
                      std::string* body) {
  std::string path = target;
  std::size_t q = path.find('?');
  if (q != std::string::npos) path.resize(q);
  if (path == "/healthz") {
    *content_type = "text/plain";
    *body = "ok\n";
    return 200;
  }
  if (path == "/metrics") {
    *content_type = "text/plain; version=0.0.4";
    *body = to_prometheus_text(MetricsRegistry::instance().snapshot());
    *body += prof::cost_ledger_prometheus(CostLedger::instance().snapshot());
    *body += "# TYPE liberate_profile_nodes gauge\nliberate_profile_nodes " +
             std::to_string(prof::Profiler::instance().node_count()) + "\n";
    return 200;
  }
  if (path == "/profile") {
    *content_type = "text/plain";
    *body = prof::profile_collapsed(prof::Profiler::instance().snapshot(),
                                    prof::CollapsedMetric::kSelfSimUs);
    return 200;
  }
  if (path == "/profile.json") {
    *content_type = "application/json";
    *body = prof::profile_to_json(prof::Profiler::instance().snapshot(),
                                  /*include_wall=*/true);
    return 200;
  }
  if (path == "/timeseries.json") {
    *content_type = "application/json";
    *body = timeseries_to_json(TimeSeriesStore::instance().snapshot());
    return 200;
  }
  *content_type = "text/plain";
  *body = "not found\n";
  return 404;
}

}  // namespace liberate::obs::serve
