// obs_server.h — dependency-free HTTP/1.0 scrape endpoint.
//
// A long fleet soak is only observable from outside the process if there is
// something to scrape. ObsServer binds a loopback TCP port and serves
// point-in-time renders of the obs sinks:
//
//   GET /metrics          Prometheus text (metrics + HDR summaries + the
//                         cost-ledger phase×kind counters)
//   GET /profile          collapsed stacks (self sim-clock us) for
//                         flamegraph.pl
//   GET /profile.json     the full profile tree as JSON
//   GET /timeseries.json  the telemetry hub's series
//   GET /healthz          "ok"
//
// Deliberately minimal and bounded: HTTP/1.0, Connection: close, one
// accept thread handling one connection at a time, requests capped at
// max_request_bytes, socket I/O under SO_RCVTIMEO/SO_SNDTIMEO. It is a
// scrape surface for one Prometheus/curl poller, not a web server.
//
// Level-independent like every obs class (gating stays in obs.h macros and
// the #if around server *startup* in the examples); rendering goes through
// snapshot.h, which merges whatever the instrumented build recorded.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>

namespace liberate::obs::serve {

struct ObsServerOptions {
  std::uint16_t port = 0;  // 0 = pick an ephemeral port (see port())
  int backlog = 16;
  std::size_t max_request_bytes = 4096;  // request head cap; 431 beyond
  int poll_interval_ms = 50;             // stop-flag latency of accept loop
  int io_timeout_ms = 2000;              // per-socket send/recv timeout
};

class ObsServer {
 public:
  explicit ObsServer(ObsServerOptions options = {});
  ~ObsServer();

  ObsServer(const ObsServer&) = delete;
  ObsServer& operator=(const ObsServer&) = delete;

  /// Bind + listen on 127.0.0.1 and start the accept thread. Returns false
  /// (with last_error() set) if the socket setup fails; safe to call once.
  bool start();

  /// Stop accepting, join the thread, close the socket. Idempotent.
  void stop();

  bool running() const { return running_.load(std::memory_order_acquire); }

  /// The bound port (the ephemeral pick when options.port was 0); valid
  /// after a successful start().
  std::uint16_t port() const { return port_; }

  std::uint64_t requests_served() const {
    return requests_.load(std::memory_order_relaxed);
  }

  const std::string& last_error() const { return error_; }

  /// Renders the response body for a request path (query string ignored)
  /// without touching a socket — the single dispatch point, also used
  /// directly by tests and the liberate_profile example. Returns the HTTP
  /// status and fills `content_type`.
  static int render(const std::string& path, std::string* content_type,
                    std::string* body);

 private:
  void serve_loop();
  void handle_client(int client_fd);

  ObsServerOptions options_;
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::thread thread_;
  std::atomic<bool> stop_{false};
  std::atomic<bool> running_{false};
  std::atomic<std::uint64_t> requests_{0};
  std::string error_;
};

}  // namespace liberate::obs::serve
