// shard.h — per-worker metric sharding, shared by every hot-path sink.
//
// Writers index a cache-line-aligned cell by the calling thread's stable
// ThreadPool worker index (shard 0 serves off-pool threads), so concurrent
// instrumented code never contends on a shared line; readers sum the cells
// when a snapshot is taken. Split out of metrics.h so the HDR histogram
// (hdr_histogram.h) can use the same scheme without a circular include.
#pragma once

#include <atomic>
#include <cstdint>

#include "util/thread_pool.h"

namespace liberate::obs {

/// Shard 0 belongs to threads outside any pool; workers hash their stable
/// pool index into shards 1..kShards-1. 32 workers map collision-free.
inline constexpr std::size_t kShards = 33;

inline std::size_t shard_index() {
  int w = ThreadPool::current_worker_index();
  return w < 0 ? 0
               : 1 + static_cast<std::size_t>(w) % (kShards - 1);
}

struct alignas(64) ShardCell {
  std::atomic<std::uint64_t> v{0};
};

}  // namespace liberate::obs
